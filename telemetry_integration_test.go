package batchzk

import (
	"bytes"
	"encoding/json"
	"testing"

	"batchzk/internal/core"
	"batchzk/internal/merkle"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
)

// TestTelemetryCrossLayer is the end-to-end acceptance check for the
// observability layer: with the process-wide sink enabled, one real
// prover batch, one pipelined module schedule, and one simulated device
// run must all record into the same sink — nonzero counters and
// histograms for every prover stage, and a single valid Chrome
// trace_event export holding correctly nested spans from the "core",
// "pipeline", and "gpusim" layers.
func TestTelemetryCrossLayer(t *testing.T) {
	sink := NewTelemetrySink()
	EnableTelemetry(sink)
	defer EnableTelemetry(nil)

	// Layer 1: the real batch prover.
	c, err := RandomCircuit(64, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: RandVector(2), Secret: RandVector(2)}
	}
	for _, r := range prover.ProveBatch(jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	// Layer 2: a pipelined module schedule (functional Merkle batch).
	tasks := make([][]merkle.Block, 3)
	for i := range tasks {
		tasks[i] = make([]merkle.Block, 4)
		for j := range tasks[i] {
			tasks[i][j][0] = byte(i*16 + j)
		}
	}
	if _, err := pipeline.BatchMerkle(tasks); err != nil {
		t.Fatal(err)
	}

	// Layer 3: a simulated device run (picks the sink up globally).
	if _, err := pipeline.SimulateMerkle(perfmodel.GH200(), perfmodel.GPUCosts(), 1<<10, 8, pipeline.Pipelined, true); err != nil {
		t.Fatal(err)
	}

	// Metrics: all four prover stages have counts and latency mass.
	snap := sink.Metrics.Snapshot()
	for _, name := range core.StageNames {
		h, ok := snap.Histograms["core/stage/"+name+"/ns"]
		if !ok || h.Count == 0 || h.Sum <= 0 {
			t.Fatalf("stage %q histogram missing or empty: %+v", name, h)
		}
		if h.Count != int64(len(jobs)) {
			t.Fatalf("stage %q observed %d jobs, want %d", name, h.Count, len(jobs))
		}
	}
	if snap.Counters["core/jobs/completed"] != int64(len(jobs)) {
		t.Fatalf("completed counter = %d", snap.Counters["core/jobs/completed"])
	}
	if snap.Counters["pipeline/merkle/cycles"] == 0 {
		t.Fatal("pipeline module recorded no cycles")
	}
	if snap.Counters["gpusim/runs/pipelined"] == 0 {
		t.Fatal("simulated run not recorded")
	}
	if snap.Histograms["core/job/e2e_ns"].Count != int64(len(jobs)) {
		t.Fatal("per-job end-to-end latency not recorded")
	}

	// Trace: one export with nested spans from all three layers.
	var buf bytes.Buffer
	if err := sink.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("export is not valid trace_event JSON: %v", err)
	}

	// Map pid → layer via the process_name metadata events.
	layerOf := map[int]string{}
	for _, e := range trace.TraceEvents {
		if e.Phase == "M" && e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				layerOf[e.PID] = n
			}
		}
	}
	seen := map[string]bool{}
	byID := map[float64][2]float64{} // id → [ts, ts+dur]
	for _, e := range trace.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		seen[layerOf[e.PID]] = true
		if id, ok := e.Args["id"].(float64); ok {
			byID[id] = [2]float64{e.TS, e.TS + e.Dur}
		}
	}
	for _, layer := range []string{"core", "pipeline", "gpusim"} {
		if !seen[layer] {
			t.Fatalf("no spans from layer %q in export (saw %v)", layer, seen)
		}
	}

	// Every parent-linked span lies inside its parent's interval.
	const eps = 1e-3 // µs tolerance for ns→µs conversion
	nested := 0
	for _, e := range trace.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		pid, ok := e.Args["parent"].(float64)
		if !ok {
			continue
		}
		parent, ok := byID[pid]
		if !ok {
			t.Fatalf("span %q links to unknown parent %v", e.Name, pid)
		}
		if e.TS < parent[0]-eps || e.TS+e.Dur > parent[1]+eps {
			t.Fatalf("span %q [%.3f,%.3f) escapes parent [%.3f,%.3f)",
				e.Name, e.TS, e.TS+e.Dur, parent[0], parent[1])
		}
		nested++
	}
	if nested == 0 {
		t.Fatal("no parent-linked spans in export")
	}
}

// TestTelemetryDisabledIsInert checks the default state: with no sink
// enabled, the instrumented paths still work and record nothing.
func TestTelemetryDisabledIsInert(t *testing.T) {
	if ActiveTelemetry() != nil {
		t.Fatal("telemetry unexpectedly enabled")
	}
	c, err := RandomCircuit(64, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range prover.ProveBatch([]Job{{ID: 0, Public: RandVector(2), Secret: RandVector(2)}}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if prover.Stats().Completed != 1 {
		t.Fatal("prover did not complete the job with telemetry off")
	}
}
