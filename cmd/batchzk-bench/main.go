// Command batchzk-bench regenerates the tables and figures of the BatchZK
// paper's evaluation (§6) on the simulated hardware profiles.
//
// Usage:
//
//	batchzk-bench                       # run every experiment on GH200
//	batchzk-bench -experiment table7    # one experiment
//	batchzk-bench -device V100          # another device profile
//	batchzk-bench -telemetry out/       # + dump metrics & Chrome trace
//	batchzk-bench -debug-addr :6060     # + live pprof/expvar server
//	batchzk-bench -list                 # list experiment ids
//	batchzk-bench -faults all -fault-seed 7
//	                                    # reproducible chaos run through
//	                                    # the resilient batch prover
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"batchzk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("batchzk-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	experiment := fs.String("experiment", "", "experiment id (empty = all); see -list")
	device := fs.String("device", "GH200", "device profile: GH200, H100, A100, V100, 3090Ti")
	format := fs.String("format", "text", "output format: text or csv")
	list := fs.Bool("list", false, "list experiment ids and exit")
	telemetryDir := fs.String("telemetry", "", "directory to dump telemetry (metrics.json, trace.json, spans.jsonl)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/telemetry on this address")
	faultSpec := fs.String("faults", "", `chaos spec, e.g. "all", "all=0.25", "kernel=0.2,straggler=0.05"; runs a fault-injected batch instead of the experiments`)
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the deterministic fault plan (same seed = same faults)")
	faultJobs := fs.Int("fault-jobs", 32, "number of proof jobs in the chaos run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range batchzk.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	if *faultSpec != "" {
		return runChaos(*faultSpec, *faultSeed, *faultJobs, stdout)
	}

	if *telemetryDir != "" {
		// Create the dump directory up front so a bad path fails before
		// the experiments run, not after them.
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			return fmt.Errorf("cannot create telemetry directory %s: %w", *telemetryDir, err)
		}
	}

	// Enable telemetry before any experiment runs so the provers and
	// simulators the harness constructs internally record into the sink.
	var sink *batchzk.TelemetrySink
	if *telemetryDir != "" || *debugAddr != "" {
		sink = batchzk.NewTelemetrySink()
		batchzk.EnableTelemetry(sink)
	}
	if *debugAddr != "" {
		srv, err := batchzk.ServeTelemetryDebug(*debugAddr, sink)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "debug server on http://%s/debug/telemetry\n", srv.Addr)
	}

	spec, err := batchzk.Device(*device)
	if err != nil {
		return err
	}

	render := func(t *batchzk.ExperimentTable) error {
		if *format == "csv" {
			return t.RenderCSV(stdout)
		}
		t.Render(stdout)
		return nil
	}

	if *experiment == "" {
		if *format == "text" {
			fmt.Fprintf(stdout, "BatchZK evaluation reproduction — primary device: %s (%d cores, %.2f GHz)\n\n",
				spec.Name, spec.Cores, spec.ClockGHz)
		}
		for _, id := range batchzk.Experiments() {
			table, err := batchzk.RunExperiment(id, spec)
			if err != nil {
				return err
			}
			if err := render(table); err != nil {
				return err
			}
		}
	} else {
		table, err := batchzk.RunExperiment(*experiment, spec)
		if err != nil {
			return err
		}
		if err := render(table); err != nil {
			return err
		}
	}

	if *telemetryDir != "" {
		if err := sink.Dump(*telemetryDir); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "telemetry written to %s (load trace.json in chrome://tracing)\n", *telemetryDir)
	}
	return nil
}

// runChaos streams a batch of proof jobs through the resilient prover
// under an injected fault plan and reports how the pipeline coped: what
// fired, what was retried, what was quarantined, and whether every
// surviving proof still verifies. The same -faults/-fault-seed pair
// replays the identical fault plan.
func runChaos(spec string, seed uint64, jobs int, stdout io.Writer) error {
	if jobs < 1 {
		return fmt.Errorf("chaos run needs at least one job, got %d", jobs)
	}
	inj, err := batchzk.ParseFaultSpec(spec, seed)
	if err != nil {
		return err
	}
	c, err := batchzk.RandomCircuit(256, 2, 2, int64(seed))
	if err != nil {
		return err
	}
	p, err := batchzk.Setup(c)
	if err != nil {
		return err
	}
	bp, err := batchzk.NewBatchProver(c, p, 4)
	if err != nil {
		return err
	}
	res := batchzk.DefaultResilience()
	res.Injector = inj
	bp.SetResilience(res)

	batch := make([]batchzk.Job, jobs)
	for i := range batch {
		batch[i] = batchzk.Job{ID: i, Public: batchzk.RandVector(2), Secret: batchzk.RandVector(2)}
	}
	results := bp.ProveBatch(batch)

	verified := 0
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		if err := bp.Verify(batch[i].Public, r.Proof); err != nil {
			return fmt.Errorf("job %d survived the chaos run but its proof does not verify: %w", r.ID, err)
		}
		verified++
	}

	st := bp.Stats()
	fmt.Fprintf(stdout, "chaos run: spec=%q seed=%d jobs=%d\n", spec, seed, jobs)
	fmt.Fprintf(stdout, "  completed=%d failed=%d retries=%d quarantined=%d timeouts=%d panics-recovered=%d\n",
		st.Completed, st.Failed, st.Retries, st.Quarantined, st.Timeouts, st.PanicsRecovered)
	fmt.Fprintf(stdout, "  faults: %s\n", inj.Summary())
	for _, q := range bp.Quarantined() {
		fmt.Fprintf(stdout, "  dead-letter: job %d at stage %s after %d attempt(s): %v\n", q.ID, q.Stage, q.Attempts, q.Err)
	}
	fmt.Fprintf(stdout, "  %d/%d surviving proofs verified\n", verified, int(st.Completed))

	if ls := inj.Stats(); ls.Pending != 0 || inj.Conflicts() != 0 {
		return fmt.Errorf("fault ledger not reconciled: %d pending, %d conflicts", ls.Pending, inj.Conflicts())
	}
	return nil
}
