// Command batchzk-bench regenerates the tables and figures of the BatchZK
// paper's evaluation (§6) on the simulated hardware profiles.
//
// Usage:
//
//	batchzk-bench                       # run every experiment on GH200
//	batchzk-bench -experiment table7    # one experiment
//	batchzk-bench -device V100          # another device profile
//	batchzk-bench -telemetry out/       # + dump metrics & Chrome trace
//	batchzk-bench -debug-addr :6060     # + live pprof/expvar server
//	batchzk-bench -list                 # list experiment ids
//	batchzk-bench -faults all -fault-seed 7
//	                                    # reproducible chaos run through
//	                                    # the resilient batch prover
//	batchzk-bench -faults all -workers 8 -shards 2 -autobalance
//	                                    # chaos through pooled/sharded provers
//	batchzk-bench sched -out .          # scheduler bench: throughput vs
//	                                    # worker allocation → BENCH_scheduler.json
//	batchzk-bench kernels -out .        # multicore kernel bench: serial vs
//	                                    # parallel per kernel → BENCH_kernels.json
//	batchzk-bench mem -out .            # flat-memory soak with per-job SLO
//	                                    # summary → BENCH_memory.json
//	batchzk-bench mem -timeline out/    # + per-job flight timelines and
//	                                    # Chrome trace of the soak
//	batchzk-bench service -out .        # proving-as-a-service bench: HTTP
//	                                    # gateway under multi-tenant Poisson
//	                                    # load → BENCH_service.json
//	batchzk-bench service -faults "kernel=0.1,slowshard=0.05"
//	                                    # the same load with injected shard
//	                                    # faults; exactly-once still gated
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"batchzk"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sched" {
		if err := runSched(os.Args[2:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "kernels" {
		if err := runKernels(os.Args[2:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "mem" {
		if err := runMem(os.Args[2:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "service" {
		if err := runService(os.Args[2:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
		os.Exit(1)
	}
}

// runSched implements `batchzk-bench sched`: measure the batch prover's
// throughput under the baseline, proportional, and autobalanced worker
// allocations and write the schema-versioned BENCH_scheduler.json.
func runSched(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gates := fs.Int("gates", 256, "multiplication gates in the bench circuit")
	batch := fs.Int("batch", 48, "proofs per allocation run")
	depth := fs.Int("depth", 16, "pipeline depth (proofs in flight)")
	budget := fs.Int("budget", 8, "worker budget for the proportional and autobalanced allocations")
	seed := fs.Int64("seed", 1, "circuit synthesis seed")
	out := fs.String("out", ".", "directory for BENCH_scheduler.json ('' = don't write)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := batchzk.BuildSchedulerBenchReport(*gates, *batch, *depth, *budget, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scheduler bench: %d gates, batch %d, depth %d, budget %d (%d cores)\n",
		rep.Gates, rep.Batch, rep.Depth, rep.Budget, rep.Cores)
	fmt.Fprintf(stdout, "  %-13s workers %v  %8.2f jobs/s\n", rep.Baseline.Name, rep.Baseline.Workers, rep.Baseline.JobsPerSec)
	fmt.Fprintf(stdout, "  %-13s workers %v  %8.2f jobs/s\n", rep.Proportional.Name, rep.Proportional.Workers, rep.Proportional.JobsPerSec)
	fmt.Fprintf(stdout, "  %-13s workers %v  %8.2f jobs/s\n", rep.Autobalanced.Name, rep.Autobalanced.Workers, rep.Autobalanced.JobsPerSec)
	fmt.Fprintf(stdout, "  measured speedup (proportional/baseline): %.2fx\n", rep.MeasuredSpeedupX)
	fmt.Fprintf(stdout, "  simulated §4 allocation gain vs equal shares: %.2fx\n", rep.SimGainX)
	fmt.Fprintf(stdout, "  order ok: %v, bit-identical to sequential reference: %v\n", rep.OrderOK, rep.BitIdentical)
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("cannot create report directory %s: %w", *out, err)
		}
		path := filepath.Join(*out, batchzk.SchedulerBenchFileName())
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("cannot write report: %w", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("cannot write report %s: %w", path, werr)
		}
		fmt.Fprintf(stderr, "report written to %s\n", path)
	}
	return nil
}

// runKernels implements `batchzk-bench kernels`: time every hot kernel on
// the multicore runtime serial (width 1) vs parallel, assert the outputs
// are bit-identical, and write the schema-versioned BENCH_kernels.json.
func runKernels(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kernels", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shift := fs.Int("shift", 16, "log2 of the per-kernel problem size")
	reps := fs.Int("reps", 3, "runs per kernel; best time is kept")
	workers := fs.Int("workers", 0, "parallel width to measure (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "input synthesis seed")
	out := fs.String("out", ".", "directory for BENCH_kernels.json ('' = don't write)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := batchzk.BuildKernelsBenchReport(*shift, *reps, *workers, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "kernel bench: 2^%d elements, %d rep(s), width %d (%d cores)\n",
		rep.Shift, rep.Reps, rep.Workers, rep.Cores)
	for _, k := range rep.Kernels {
		fmt.Fprintf(stdout, "  %-20s serial %10dns  parallel %10dns  %5.2fx  identical=%v\n",
			k.Name, k.SerialNs, k.ParallelNs, k.SpeedupX, k.Identical)
		if !k.Identical {
			return fmt.Errorf("kernel %s: parallel output is not bit-identical to serial", k.Name)
		}
	}
	fmt.Fprintf(stdout, "field-arith (optimized vs generic reference, serial):\n")
	for _, f := range rep.FieldArith {
		fmt.Fprintf(stdout, "  %-20s ref %8.1fns/op  new %8.1fns/op  %5.2fx  identical=%v\n",
			f.Name, f.RefNsOp, f.NewNsOp, f.SpeedupX, f.Identical)
		if !f.Identical {
			return fmt.Errorf("field-arith %s: optimized output is not bit-identical to the reference", f.Name)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("cannot create report directory %s: %w", *out, err)
		}
		path := filepath.Join(*out, batchzk.KernelsBenchFileName())
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("cannot write report: %w", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("cannot write report %s: %w", path, werr)
		}
		fmt.Fprintf(stderr, "report written to %s\n", path)
	}
	return nil
}

// runMem implements `batchzk-bench mem`: stream identical waves of
// proof jobs through one batch prover under a background memory sampler,
// gate the flat-memory claim, and write the schema-versioned
// BENCH_memory.json. With -timeline it also exports the same run's
// per-job flight timelines (timeline.json) and Chrome trace (trace.json).
func runMem(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mem", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gates := fs.Int("gates", 256, "multiplication gates in the soak circuit")
	jobs := fs.Int("jobs", 32, "proof jobs per wave")
	waves := fs.Int("waves", 6, "identical waves the soak streams")
	depth := fs.Int("depth", 4, "pipeline depth (proofs in flight)")
	seed := fs.Int64("seed", 1, "circuit synthesis seed")
	stream := fs.Bool("stream", false, "also run the streaming-prover sweep: jobs and 8×jobs under ProveStream + out-of-core commits, gated on flat working set")
	out := fs.String("out", ".", "directory for BENCH_memory.json ('' = don't write)")
	timelineDir := fs.String("timeline", "", "directory for the soak's telemetry dump (timeline.json, trace.json, metrics.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, sink, err := batchzk.BuildMemoryBenchReport(*gates, *jobs, *waves, *depth, *seed)
	if err != nil {
		return err
	}
	if *stream {
		rep.Stream, err = batchzk.BuildMemoryStreamSweep(*gates, *jobs, *depth, *seed)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "memory soak: %d gates, %d jobs/wave, %d waves, depth %d (%d cores)\n",
		rep.Gates, rep.Batch, rep.Waves, rep.Depth, rep.Cores)
	for _, w := range rep.WaveDetail {
		fmt.Fprintf(stdout, "  %-8s peak heap %12d B  (%d samples, %d gc)\n",
			w.Name, w.PeakHeapAllocBytes, w.Samples, w.GCCycles)
	}
	fmt.Fprintf(stdout, "  soak peak %d B, growth first→last wave %+.1f%%, flat=%v, all proofs ok=%v\n",
		rep.PeakHeapAllocBytes, rep.GrowthFrac*100, rep.Flat, rep.AllProofsOK)
	fmt.Fprintf(stdout, "  per-job SLO: %d jobs, p50 %s p90 %s p99 %s e2e, %d retries\n",
		rep.SLO.Jobs, nsDur(rep.SLO.P50Ns), nsDur(rep.SLO.P90Ns), nsDur(rep.SLO.P99Ns), rep.SLO.Retries)
	if rep.Stream != nil {
		for _, p := range rep.Stream.Points {
			fmt.Fprintf(stdout, "  stream batch %5d: working set %12d B, peak heap %12d B, proofs ok=%v\n",
				p.Batch, p.WorkingSetBytes, p.PeakHeapAllocBytes, p.AllProofsOK)
		}
		fmt.Fprintf(stdout, "  stream sweep: ×%d batch → working-set growth %+.1f%%, flat=%v\n",
			rep.Stream.Factor, rep.Stream.GrowthFrac*100, rep.Stream.Flat)
	}
	if !rep.Flat {
		return fmt.Errorf("memory soak is not flat: first wave peak %d B, last %d B (%+.1f%%)",
			rep.FirstWavePeakBytes, rep.LastWavePeakBytes, rep.GrowthFrac*100)
	}
	if !rep.AllProofsOK {
		return fmt.Errorf("memory soak had failing proofs")
	}
	if rep.Stream != nil {
		if !rep.Stream.Flat {
			return fmt.Errorf("streaming sweep is not flat: ×%d batch grew the working set %+.1f%%",
				rep.Stream.Factor, rep.Stream.GrowthFrac*100)
		}
		if !rep.Stream.AllProofsOK() {
			return fmt.Errorf("streaming sweep had failing proofs")
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("cannot create report directory %s: %w", *out, err)
		}
		path := filepath.Join(*out, batchzk.MemoryBenchFileName())
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("cannot write report: %w", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("cannot write report %s: %w", path, werr)
		}
		fmt.Fprintf(stderr, "report written to %s\n", path)
	}
	if *timelineDir != "" {
		if err := os.MkdirAll(*timelineDir, 0o755); err != nil {
			return fmt.Errorf("cannot create timeline directory %s: %w", *timelineDir, err)
		}
		if err := sink.Dump(*timelineDir); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "per-job timelines written to %s (timeline.json; trace.json loads in chrome://tracing)\n", *timelineDir)
	}
	return nil
}

// runService implements `batchzk-bench service`: stand up the HTTP
// proving gateway over a sharded prover, replay open-loop Poisson
// arrivals with heavy-tailed bursts from N tenants (optionally under
// injected shard faults), gate the exactly-once traffic accounting and
// the drain contract, and write the schema-versioned BENCH_service.json.
func runService(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("service", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tenants := fs.Int("tenants", 2, "concurrent tenants driving load")
	jobs := fs.Int("jobs", 16, "jobs each tenant submits")
	rate := fs.Float64("rate", 200, "per-tenant mean arrival rate, jobs/second (open-loop Poisson)")
	burstEvery := fs.Int("burst-every", 5, "every Nth arrival is a burst (0 = no bursts)")
	burstMax := fs.Int("burst-max", 4, "cap on the bounded-Pareto burst size")
	gates := fs.Int("gates", 64, "multiplication gates in the bench circuit")
	shards := fs.Int("shards", 2, "prover shards behind the gateway")
	depth := fs.Int("depth", 4, "per-shard pipeline depth (proofs in flight)")
	maxBatch := fs.Int("max-batch", 8, "admission batcher size cap")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "admission batcher latency window")
	queueCap := fs.Int("queue-cap", 0, "admission queue depth before 429 backpressure (0 = default)")
	quotaRate := fs.Float64("quota-rate", 0, "per-tenant token refill rate, jobs/second")
	quotaBurst := fs.Int("quota-burst", 0, "per-tenant token bucket size (0 = no quotas)")
	deadline := fs.Duration("deadline", 0, "per-job proving deadline (0 = none)")
	faultSpec := fs.String("faults", "", `chaos spec applied to the shards, e.g. "kernel=0.1,slowshard=0.05"`)
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the deterministic fault plan")
	seed := fs.Int64("seed", 1, "seed for the circuit and the load generator")
	addr := fs.String("addr", "", "gateway listen address (empty = ephemeral localhost port)")
	out := fs.String("out", ".", "directory for BENCH_service.json ('' = don't write)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := batchzk.BuildServiceBenchReport(batchzk.ServiceBenchConfig{
		Tenants: *tenants, JobsPerTenant: *jobs, Rate: *rate,
		BurstEvery: *burstEvery, BurstMax: *burstMax,
		Gates: *gates, Shards: *shards, Depth: *depth,
		MaxBatch: *maxBatch, MaxWait: *maxWait, QueueCap: *queueCap,
		QuotaRate: *quotaRate, QuotaBurst: *quotaBurst, Deadline: *deadline,
		Faults: *faultSpec, FaultSeed: *faultSeed,
		Addr: *addr, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "service bench: %d tenants x %d jobs @ %.0f/s, %d shards, batch<=%d window %v (%d cores)\n",
		rep.Tenants, rep.JobsPerTenant, rep.RatePerTenant, rep.Shards, rep.MaxBatch,
		time.Duration(rep.MaxWaitMs*float64(time.Millisecond)), rep.Cores)
	fmt.Fprintf(stdout, "  offered=%d accepted=%d rejected=%d completed=%d failed=%d timeouts=%d retries=%d\n",
		rep.Offered, rep.Accepted, rep.Rejected, rep.Completed, rep.Failed, rep.Timeouts, rep.Retries)
	fmt.Fprintf(stdout, "  e2e latency p50 %s p90 %s p99 %s\n",
		nsDur(float64(rep.LatencyP50Ns)), nsDur(float64(rep.LatencyP90Ns)), nsDur(float64(rep.LatencyP99Ns)))
	fmt.Fprintf(stdout, "  %d batches, occupancy %.2f; fairness (Jain) %.3f\n",
		rep.Batches, rep.BatchOccupancy, rep.FairnessJain)
	for _, tr := range rep.PerTenant {
		fmt.Fprintf(stdout, "  tenant %-10s offered=%d completed=%d p99 %s  %.1f jobs/s\n",
			tr.Tenant, tr.Offered, tr.Completed, nsDur(float64(tr.P99Ns)), tr.Throughput)
	}
	fmt.Fprintf(stdout, "  lost=%d duplicated=%d drain_ok=%v all_verified=%v\n",
		rep.Lost, rep.Duplicated, rep.DrainOK, rep.AllVerified)
	if rep.Lost != 0 || rep.Duplicated != 0 {
		return fmt.Errorf("exactly-once violated: %d lost, %d duplicated", rep.Lost, rep.Duplicated)
	}
	if !rep.DrainOK {
		return fmt.Errorf("drain contract failed: /readyz did not flip 200→503→200 across drain and resume")
	}
	if !rep.AllVerified {
		return fmt.Errorf("served proofs failed re-verification")
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("cannot create report directory %s: %w", *out, err)
		}
		path := filepath.Join(*out, batchzk.ServiceBenchFileName())
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("cannot write report: %w", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("cannot write report %s: %w", path, werr)
		}
		fmt.Fprintf(stderr, "report written to %s\n", path)
	}
	return nil
}

// nsDur renders nanoseconds as a rounded time.Duration string.
func nsDur(ns float64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("batchzk-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	experiment := fs.String("experiment", "", "experiment id (empty = all); see -list")
	device := fs.String("device", "GH200", "device profile: GH200, H100, A100, V100, 3090Ti")
	format := fs.String("format", "text", "output format: text or csv")
	list := fs.Bool("list", false, "list experiment ids and exit")
	telemetryDir := fs.String("telemetry", "", "directory to dump telemetry (metrics.json, trace.json, spans.jsonl)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/pprof, /debug/telemetry, /healthz, /readyz and /debug/obs/slo on this address")
	logDest := fs.String("log", "", `structured JSON event log destination: "-" or "stderr" for stderr, "stdout", or a file path; also enables the obs engine`)
	floorsPath := fs.String("floors", "", "roofline report (batchzk-profile roofline -out) whose calibrated per-kernel floors seed the obs anomaly sentinel")
	hold := fs.Duration("hold", 0, "keep the process (and the debug server) alive this long after the run, for live probing")
	faultSpec := fs.String("faults", "", `chaos spec, e.g. "all", "all=0.25", "kernel=0.2,straggler=0.05"; runs a fault-injected batch instead of the experiments`)
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the deterministic fault plan (same seed = same faults)")
	faultJobs := fs.Int("fault-jobs", 32, "number of proof jobs in the chaos run")
	workers := fs.String("workers", "", `chaos-run worker pools: a list "2,4,1,1" or a total budget "8" split by measured stage shares (empty = one worker per stage)`)
	shards := fs.Int("shards", 1, "chaos-run prover shards the batch is split across")
	autobalance := fs.Bool("autobalance", false, "chaos run: elastically rebalance the worker pools at runtime")
	kernelWorkers := fs.Int("kernel-workers", 0, "multicore kernel runtime width: 0 = GOMAXPROCS, 1 = serial")
	if err := fs.Parse(args); err != nil {
		return err
	}
	batchzk.SetKernelWorkers(*kernelWorkers)

	if *list {
		for _, id := range batchzk.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	if *telemetryDir != "" {
		// Create the dump directory up front so a bad path fails before
		// the experiments run, not after them.
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			return fmt.Errorf("cannot create telemetry directory %s: %w", *telemetryDir, err)
		}
	}

	// Enable telemetry before any experiment runs so the provers and
	// simulators the harness constructs internally record into the sink,
	// and before chaos dispatch so fault-injected runs are observable too.
	var sink *batchzk.TelemetrySink
	if *telemetryDir != "" || *debugAddr != "" {
		sink = batchzk.NewTelemetrySink()
		batchzk.EnableTelemetry(sink)
	}

	// The obs engine rides along whenever a log destination or the debug
	// server is requested: the event log, SLO windows, and sentinel all
	// feed from the instrumented layers, and /healthz, /readyz, and
	// /debug/obs/slo on the debug server answer from it.
	if *logDest != "" || *debugAddr != "" {
		logOut, closeLog, err := openLogOutput(*logDest, stderr)
		if err != nil {
			return err
		}
		if closeLog != nil {
			defer closeLog()
		}
		eng := batchzk.NewObsEngine(batchzk.ObsConfig{LogOutput: logOut})
		if *floorsPath != "" {
			f, err := os.Open(*floorsPath)
			if err != nil {
				return fmt.Errorf("cannot open roofline floors: %w", err)
			}
			roof, rerr := batchzk.ReadRooflineReport(f)
			_ = f.Close()
			if rerr != nil {
				return rerr
			}
			eng.SetFloors(roof.Floors())
		}
		batchzk.EnableObs(eng)
		defer batchzk.EnableObs(nil)
	} else if *floorsPath != "" {
		return fmt.Errorf("-floors needs the obs engine; pass -log or -debug-addr as well")
	}
	if *debugAddr != "" {
		srv, err := batchzk.ServeTelemetryDebug(*debugAddr, sink)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "debug server on http://%s/debug/telemetry (health on /healthz, /readyz, SLO on /debug/obs/slo)\n", srv.Addr)
	}
	// holdOpen keeps the debug server reachable after the run so probes
	// (curl, batchzk-top) can read the final state.
	holdOpen := func() {
		if *hold > 0 {
			fmt.Fprintf(stderr, "holding for %v\n", *hold)
			time.Sleep(*hold)
		}
	}

	if *faultSpec != "" {
		err := runChaos(*faultSpec, *faultSeed, *faultJobs, *workers, *shards, *autobalance, stdout)
		holdOpen()
		return err
	}
	if *workers != "" || *shards != 1 || *autobalance {
		return fmt.Errorf("-workers/-shards/-autobalance apply to chaos runs; pass -faults as well")
	}

	spec, err := batchzk.Device(*device)
	if err != nil {
		return err
	}

	render := func(t *batchzk.ExperimentTable) error {
		if *format == "csv" {
			return t.RenderCSV(stdout)
		}
		t.Render(stdout)
		return nil
	}

	if *experiment == "" {
		if *format == "text" {
			fmt.Fprintf(stdout, "BatchZK evaluation reproduction — primary device: %s (%d cores, %.2f GHz)\n\n",
				spec.Name, spec.Cores, spec.ClockGHz)
		}
		for _, id := range batchzk.Experiments() {
			table, err := batchzk.RunExperiment(id, spec)
			if err != nil {
				return err
			}
			if err := render(table); err != nil {
				return err
			}
		}
	} else {
		table, err := batchzk.RunExperiment(*experiment, spec)
		if err != nil {
			return err
		}
		if err := render(table); err != nil {
			return err
		}
	}

	if *telemetryDir != "" {
		if err := sink.Dump(*telemetryDir); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "telemetry written to %s (load trace.json in chrome://tracing)\n", *telemetryDir)
	}
	holdOpen()
	return nil
}

// openLogOutput resolves the -log destination: "-"/"stderr" → the
// process stderr, "stdout" → stdout, anything else → a created file
// (with a closer), "" → nil (no event log, engine still runs).
func openLogOutput(dest string, stderr io.Writer) (io.Writer, func(), error) {
	switch dest {
	case "":
		return nil, nil, nil
	case "-", "stderr":
		return stderr, nil, nil
	case "stdout":
		return os.Stdout, nil, nil
	default:
		f, err := os.Create(dest)
		if err != nil {
			return nil, nil, fmt.Errorf("cannot open log destination %s: %w", dest, err)
		}
		return f, func() { _ = f.Close() }, nil
	}
}

// chaosProver is the surface runChaos needs from either a single
// BatchProver or a ShardedProver.
type chaosProver interface {
	SetResilience(*batchzk.Resilience)
	SetSchedule(*batchzk.ProverSchedule)
	ProveBatch([]batchzk.Job) []batchzk.Result
	Verify([]batchzk.Element, *batchzk.Proof) error
	Stats() batchzk.ProverStats
	Quarantined() []batchzk.QuarantinedJob
}

// runChaos streams a batch of proof jobs through the resilient prover
// under an injected fault plan and reports how the pipeline coped: what
// fired, what was retried, what was quarantined, and whether every
// surviving proof still verifies. The same -faults/-fault-seed pair
// replays the identical fault plan; -workers/-shards/-autobalance route
// the same plan through pooled or sharded provers.
func runChaos(spec string, seed uint64, jobs int, workers string, shards int, autobalance bool, stdout io.Writer) error {
	if jobs < 1 {
		return fmt.Errorf("chaos run needs at least one job, got %d", jobs)
	}
	inj, err := batchzk.ParseFaultSpec(spec, seed)
	if err != nil {
		return err
	}
	c, err := batchzk.RandomCircuit(256, 2, 2, int64(seed))
	if err != nil {
		return err
	}
	p, err := batchzk.Setup(c)
	if err != nil {
		return err
	}
	schedule, err := chaosSchedule(c, p, workers, autobalance)
	if err != nil {
		return err
	}
	depth := 4
	if schedule != nil && depth < schedule.TotalWorkers() {
		depth = schedule.TotalWorkers()
	}
	var bp chaosProver
	if shards > 1 {
		sp, err := batchzk.NewShardedProver(c, p, shards, depth)
		if err != nil {
			return err
		}
		bp = sp
	} else {
		single, err := batchzk.NewBatchProver(c, p, depth)
		if err != nil {
			return err
		}
		bp = single
	}
	bp.SetSchedule(schedule)
	res := batchzk.DefaultResilience()
	res.Injector = inj
	bp.SetResilience(res)

	batch := make([]batchzk.Job, jobs)
	for i := range batch {
		batch[i] = batchzk.Job{ID: i, Public: batchzk.RandVector(2), Secret: batchzk.RandVector(2)}
	}
	results := bp.ProveBatch(batch)

	verified := 0
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		if err := bp.Verify(batch[i].Public, r.Proof); err != nil {
			return fmt.Errorf("job %d survived the chaos run but its proof does not verify: %w", r.ID, err)
		}
		verified++
	}

	st := bp.Stats()
	fmt.Fprintf(stdout, "chaos run: spec=%q seed=%d jobs=%d shards=%d\n", spec, seed, jobs, shards)
	fmt.Fprintf(stdout, "  completed=%d failed=%d retries=%d quarantined=%d timeouts=%d panics-recovered=%d\n",
		st.Completed, st.Failed, st.Retries, st.Quarantined, st.Timeouts, st.PanicsRecovered)
	fmt.Fprintf(stdout, "  faults: %s\n", inj.Summary())
	for _, q := range bp.Quarantined() {
		fmt.Fprintf(stdout, "  dead-letter: job %d at stage %s after %d attempt(s): %v\n", q.ID, q.Stage, q.Attempts, q.Err)
	}
	fmt.Fprintf(stdout, "  %d/%d surviving proofs verified\n", verified, int(st.Completed))

	if ls := inj.Stats(); ls.Pending != 0 || inj.Conflicts() != 0 {
		return fmt.Errorf("fault ledger not reconciled: %d pending, %d conflicts", ls.Pending, inj.Conflicts())
	}
	return nil
}

// chaosSchedule resolves the chaos run's -workers/-autobalance flags,
// mirroring the batchzk CLI's buildSchedule.
func chaosSchedule(c *batchzk.Circuit, p *batchzk.Params, spec string, autobalance bool) (*batchzk.ProverSchedule, error) {
	list, budget, err := batchzk.ParseWorkerSpec(spec)
	if err != nil {
		return nil, err
	}
	if list == nil && budget == 0 && !autobalance {
		return nil, nil
	}
	var s batchzk.ProverSchedule
	switch {
	case list != nil:
		copy(s.Workers[:], list)
	case budget > 0:
		probe, err := batchzk.NewBatchProver(c, p, 1)
		if err != nil {
			return nil, err
		}
		if s, err = probe.CalibrateSchedule(budget, 4); err != nil {
			return nil, err
		}
	default:
		s.Workers = [4]int{1, 1, 1, 1}
	}
	if autobalance {
		s.Autobalance = true
		if budget > 0 {
			s.Budget = budget
		} else {
			s.Budget = s.TotalWorkers()
		}
	}
	return &s, nil
}
