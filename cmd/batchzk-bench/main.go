// Command batchzk-bench regenerates the tables and figures of the BatchZK
// paper's evaluation (§6) on the simulated hardware profiles.
//
// Usage:
//
//	batchzk-bench                       # run every experiment on GH200
//	batchzk-bench -experiment table7    # one experiment
//	batchzk-bench -device V100          # another device profile
//	batchzk-bench -list                 # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"batchzk"
)

func main() {
	experiment := flag.String("experiment", "", "experiment id (empty = all); see -list")
	device := flag.String("device", "GH200", "device profile: GH200, H100, A100, V100, 3090Ti")
	format := flag.String("format", "text", "output format: text or csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range batchzk.Experiments() {
			fmt.Println(id)
		}
		return
	}

	spec, err := batchzk.Device(*device)
	if err != nil {
		fatal(err)
	}

	render := func(t *batchzk.ExperimentTable) {
		switch *format {
		case "csv":
			if err := t.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
		default:
			t.Render(os.Stdout)
		}
	}

	if *experiment == "" {
		if *format == "text" {
			fmt.Printf("BatchZK evaluation reproduction — primary device: %s (%d cores, %.2f GHz)\n\n",
				spec.Name, spec.Cores, spec.ClockGHz)
		}
		for _, id := range batchzk.Experiments() {
			table, err := batchzk.RunExperiment(id, spec)
			if err != nil {
				fatal(err)
			}
			render(table)
		}
		return
	}
	table, err := batchzk.RunExperiment(*experiment, spec)
	if err != nil {
		fatal(err)
	}
	render(table)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
	os.Exit(1)
}
