// Command batchzk-bench regenerates the tables and figures of the BatchZK
// paper's evaluation (§6) on the simulated hardware profiles.
//
// Usage:
//
//	batchzk-bench                       # run every experiment on GH200
//	batchzk-bench -experiment table7    # one experiment
//	batchzk-bench -device V100          # another device profile
//	batchzk-bench -telemetry out/       # + dump metrics & Chrome trace
//	batchzk-bench -debug-addr :6060     # + live pprof/expvar server
//	batchzk-bench -list                 # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"batchzk"
)

func main() {
	experiment := flag.String("experiment", "", "experiment id (empty = all); see -list")
	device := flag.String("device", "GH200", "device profile: GH200, H100, A100, V100, 3090Ti")
	format := flag.String("format", "text", "output format: text or csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	telemetryDir := flag.String("telemetry", "", "directory to dump telemetry (metrics.json, trace.json, spans.jsonl)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/telemetry on this address")
	flag.Parse()

	if *list {
		for _, id := range batchzk.Experiments() {
			fmt.Println(id)
		}
		return
	}

	if *telemetryDir != "" {
		// Create the dump directory up front so a bad path fails before
		// the experiments run, not after them.
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			fatal(fmt.Errorf("cannot create telemetry directory %s: %w", *telemetryDir, err))
		}
	}

	// Enable telemetry before any experiment runs so the provers and
	// simulators the harness constructs internally record into the sink.
	var sink *batchzk.TelemetrySink
	if *telemetryDir != "" || *debugAddr != "" {
		sink = batchzk.NewTelemetrySink()
		batchzk.EnableTelemetry(sink)
	}
	if *debugAddr != "" {
		srv, err := batchzk.ServeTelemetryDebug(*debugAddr, sink)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/telemetry\n", srv.Addr)
	}

	spec, err := batchzk.Device(*device)
	if err != nil {
		fatal(err)
	}

	render := func(t *batchzk.ExperimentTable) {
		switch *format {
		case "csv":
			if err := t.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
		default:
			t.Render(os.Stdout)
		}
	}

	if *experiment == "" {
		if *format == "text" {
			fmt.Printf("BatchZK evaluation reproduction — primary device: %s (%d cores, %.2f GHz)\n\n",
				spec.Name, spec.Cores, spec.ClockGHz)
		}
		for _, id := range batchzk.Experiments() {
			table, err := batchzk.RunExperiment(id, spec)
			if err != nil {
				fatal(err)
			}
			render(table)
		}
	} else {
		table, err := batchzk.RunExperiment(*experiment, spec)
		if err != nil {
			fatal(err)
		}
		render(table)
	}

	if *telemetryDir != "" {
		if err := sink.Dump(*telemetryDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry written to %s (load trace.json in chrome://tracing)\n", *telemetryDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batchzk-bench:", err)
	os.Exit(1)
}
