package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListsExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatalf("run -list: %v\nstderr: %s", err, errOut.String())
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Fatal("-list printed no experiment ids")
	}
}

// A single small experiment renders a table without error.
func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	ids := strings.Fields(listOutput(t))
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	if err := run([]string{"-experiment", ids[0]}, &out, &errOut); err != nil {
		t.Fatalf("run -experiment %s: %v\nstderr: %s", ids[0], err, errOut.String())
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Fatalf("experiment %s produced no output", ids[0])
	}
}

// The chaos path: a reproducible fault-injected batch must reconcile its
// ledger and report verified survivors.
func TestRunChaosSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-faults", "all=0.05", "-fault-seed", "7", "-fault-jobs", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("chaos run: %v\nstderr: %s", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"chaos run:", "completed=", "faults:", "proofs verified"} {
		if !strings.Contains(got, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, got)
		}
	}
}

// The kernels subcommand times every kernel serial vs parallel, asserts
// bit-identity, and writes BENCH_kernels.json.
func TestRunKernelsSmoke(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if err := runKernels([]string{"-shift", "8", "-reps", "1", "-out", dir}, &out, &errOut); err != nil {
		t.Fatalf("kernels run: %v\nstderr: %s", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"kernel bench:", "merkle/build", "pcs/commit", "identical=true"} {
		if !strings.Contains(got, want) {
			t.Fatalf("kernels output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "identical=false") {
		t.Fatalf("a kernel lost bit-identity:\n%s", got)
	}
	path := filepath.Join(dir, "BENCH_kernels.json")
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("report file %s empty or unreadable: %v", path, err)
	}
}

func TestRunKernelsRejectsBadShift(t *testing.T) {
	var out bytes.Buffer
	if err := runKernels([]string{"-shift", "1", "-out", ""}, &out, &out); err == nil {
		t.Fatal("out-of-range shift accepted")
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-faults", "bogus-class=0.5"}, &out, &out); err == nil {
		t.Fatal("bogus fault spec accepted")
	}
}

func listOutput(t *testing.T) string {
	t.Helper()
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}
