package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"batchzk"
)

func TestRunListsExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatalf("run -list: %v\nstderr: %s", err, errOut.String())
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Fatal("-list printed no experiment ids")
	}
}

// A single small experiment renders a table without error.
func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	ids := strings.Fields(listOutput(t))
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	if err := run([]string{"-experiment", ids[0]}, &out, &errOut); err != nil {
		t.Fatalf("run -experiment %s: %v\nstderr: %s", ids[0], err, errOut.String())
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Fatalf("experiment %s produced no output", ids[0])
	}
}

// The chaos path: a reproducible fault-injected batch must reconcile its
// ledger and report verified survivors.
func TestRunChaosSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-faults", "all=0.05", "-fault-seed", "7", "-fault-jobs", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("chaos run: %v\nstderr: %s", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"chaos run:", "completed=", "faults:", "proofs verified"} {
		if !strings.Contains(got, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, got)
		}
	}
}

// The kernels subcommand times every kernel serial vs parallel, asserts
// bit-identity, and writes BENCH_kernels.json.
func TestRunKernelsSmoke(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if err := runKernels([]string{"-shift", "8", "-reps", "1", "-out", dir}, &out, &errOut); err != nil {
		t.Fatalf("kernels run: %v\nstderr: %s", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"kernel bench:", "merkle/build", "pcs/commit", "identical=true",
		"field-arith", "field/mul", "msm/batch-affine"} {
		if !strings.Contains(got, want) {
			t.Fatalf("kernels output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "identical=false") {
		t.Fatalf("a kernel lost bit-identity:\n%s", got)
	}
	path := filepath.Join(dir, "BENCH_kernels.json")
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("report file %s empty or unreadable: %v", path, err)
	}
}

func TestRunKernelsRejectsBadShift(t *testing.T) {
	var out bytes.Buffer
	if err := runKernels([]string{"-shift", "1", "-out", ""}, &out, &out); err == nil {
		t.Fatal("out-of-range shift accepted")
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-faults", "bogus-class=0.5"}, &out, &out); err == nil {
		t.Fatal("bogus fault spec accepted")
	}
}

func listOutput(t *testing.T) string {
	t.Helper()
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// The service subcommand runs the gateway bench end-to-end, prints the
// traffic accounting, and writes a readable BENCH_service.json.
func TestRunServiceSmoke(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	err := runService([]string{
		"-tenants", "2", "-jobs", "5", "-rate", "500",
		"-gates", "32", "-max-batch", "4", "-max-wait", "1ms",
		"-out", dir,
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("service run: %v\nstderr: %s", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"service bench:", "offered=10", "lost=0 duplicated=0", "drain_ok=true"} {
		if !strings.Contains(got, want) {
			t.Fatalf("service output missing %q:\n%s", want, got)
		}
	}
	f, err := os.Open(filepath.Join(dir, batchzk.ServiceBenchFileName()))
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	defer f.Close()
	rep, err := batchzk.ReadServiceBenchReport(f)
	if err != nil {
		t.Fatalf("report does not read back: %v", err)
	}
	if rep.Accepted != 10 || rep.Lost != 0 || rep.Duplicated != 0 {
		t.Fatalf("report accounting: %+v", rep)
	}
}

// The service subcommand under injected faults still settles every job.
func TestRunServiceFaultsSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := runService([]string{
		"-tenants", "2", "-jobs", "4", "-rate", "500",
		"-gates", "32", "-faults", "kernel=0.05,slowshard=0.02",
		"-out", "",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("faulted service run: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "lost=0 duplicated=0") {
		t.Fatalf("faulted run lost jobs:\n%s", out.String())
	}
}
