package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"batchzk"
)

// serveObs exposes the operator routes for a freshly enabled engine and
// restores the previous engine on cleanup.
func serveObs(t *testing.T, cfg batchzk.ObsConfig) (*httptest.Server, *batchzk.ObsEngine) {
	t.Helper()
	prev := batchzk.ActiveObs()
	e := batchzk.NewObsEngine(cfg)
	batchzk.EnableObs(e)
	srv := httptest.NewServer(batchzk.ObsHandler())
	t.Cleanup(func() {
		srv.Close()
		batchzk.EnableObs(prev)
	})
	return srv, e
}

func TestTopRendersLiveSnapshot(t *testing.T) {
	srv, e := serveObs(t, batchzk.ObsConfig{})
	e.ObserveQueueDepth(3)
	for i := 0; i < 10; i++ {
		e.ObserveJob(0, int64(2*time.Millisecond), false, false)
		e.ObserveStage("commit", int64(time.Millisecond))
		e.ObserveStage("opening", int64(3*time.Millisecond))
	}

	var out, errOut bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if err := run([]string{"-addr", addr, "-once"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"HEALTHY", "READY",
		"queue depth 3",
		"commit", "opening",
		"e2e-p99", "error-rate",
		"no active alerts",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("frame missing %q:\n%s", want, got)
		}
	}
}

func TestTopRendersAlertsAndNotReady(t *testing.T) {
	clockNs := int64(time.Hour)
	srv, e := serveObs(t, batchzk.ObsConfig{
		MinJudgeSamples: 4,
		Now:             func() time.Time { return time.Unix(0, clockNs) },
	})
	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Second), true, true)
		clockNs += int64(10 * time.Millisecond)
	}

	var out bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if err := run([]string{"-addr", addr, "-once"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "NOT READY") {
		t.Fatalf("frame does not show not-ready:\n%s", got)
	}
	if !strings.Contains(got, "ACTIVE ALERTS") || !strings.Contains(got, "[CRITICAL]") {
		t.Fatalf("frame does not show the critical alert:\n%s", got)
	}
}

func TestTopObsDisabled(t *testing.T) {
	prev := batchzk.ActiveObs()
	batchzk.EnableObs(nil)
	srv := httptest.NewServer(batchzk.ObsHandler())
	defer func() {
		srv.Close()
		batchzk.EnableObs(prev)
	}()

	var out bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if err := run([]string{"-addr", addr, "-once"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "obs engine disabled") {
		t.Fatalf("frame does not flag the disabled engine:\n%s", out.String())
	}
}

func TestTopUnreachableOneShotFails(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-once", "-timeout", "200ms"}, &out, &bytes.Buffer{})
	if err == nil {
		t.Fatal("one-shot against an unreachable target did not fail")
	}
}

func TestTopMultiFrame(t *testing.T) {
	srv, e := serveObs(t, batchzk.ObsConfig{})
	e.ObserveJob(0, int64(time.Millisecond), false, false)

	var out bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if err := run([]string{"-addr", addr, "-frames", "3", "-plain", "-interval", "1ms"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := strings.Count(out.String(), "batchzk-top —"); n != 3 {
		t.Fatalf("rendered %d frames, want 3", n)
	}
}
