// Command batchzk-top is the live operations console for a running
// batchzk process (batchzk-bench or the vml service) exposing the
// telemetry debug server. It polls /debug/obs/slo, /healthz, and /readyz
// and renders queue depth, per-stage throughput and latency, SLO
// attainment with fast/slow burn rates and error-budget balances, and
// the active alerts — the terminal analogue of an SRE dashboard.
//
// Usage:
//
//	batchzk-top -addr localhost:6060              # refresh every second
//	batchzk-top -addr localhost:6060 -interval 250ms
//	batchzk-top -addr localhost:6060 -once        # one frame, no clearing
//	batchzk-top -addr localhost:6060 -frames 10   # fixed number of frames
//	batchzk-top -addr localhost:6060 -plain       # never clear the screen
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"batchzk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batchzk-top:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("batchzk-top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:6060", "address of the target's telemetry debug server")
	interval := fs.Duration("interval", time.Second, "refresh period")
	frames := fs.Int("frames", 0, "number of frames to render (0 = until interrupted)")
	once := fs.Bool("once", false, "render one frame and exit (same as -frames 1 -plain)")
	plain := fs.Bool("plain", false, "never clear the screen between frames (log-friendly output)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *once {
		*frames = 1
		*plain = true
	}
	client := &http.Client{Timeout: *timeout}
	base := "http://" + strings.TrimPrefix(strings.TrimPrefix(*addr, "http://"), "https://")

	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		frame, err := fetchFrame(client, base)
		if err != nil {
			// A target that is restarting or not yet serving is a state to
			// display, not a reason to die — unless this is a one-shot.
			if *frames == 1 {
				return err
			}
			if !*plain {
				fmt.Fprint(stdout, "\033[H\033[2J")
			}
			fmt.Fprintf(stdout, "batchzk-top: %s unreachable: %v\n", base, err)
			continue
		}
		if !*plain {
			fmt.Fprint(stdout, "\033[H\033[2J")
		}
		renderFrame(stdout, base, frame)
	}
	return nil
}

// frame is one poll's combined state.
type frame struct {
	healthy    bool
	obsEnabled bool
	ready      bool
	readyBody  readyz
	snap       *batchzk.ObsSnapshot
}

type healthz struct {
	Status string `json:"status"`
	Obs    bool   `json:"obs_enabled"`
}

type readyz struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason"`
}

func fetchFrame(client *http.Client, base string) (*frame, error) {
	var f frame

	var h healthz
	code, err := getJSON(client, base+"/healthz", &h)
	if err != nil {
		return nil, err
	}
	f.healthy = code == http.StatusOK && h.Status == "ok"
	f.obsEnabled = h.Obs

	code, err = getJSON(client, base+"/readyz", &f.readyBody)
	if err != nil {
		return nil, err
	}
	f.ready = code == http.StatusOK && f.readyBody.Ready

	var snap batchzk.ObsSnapshot
	code, err = getJSON(client, base+"/debug/obs/slo", &snap)
	if err == nil && code == http.StatusOK {
		f.snap = &snap
	}
	return &f, nil
}

func getJSON(client *http.Client, url string, v any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return resp.StatusCode, fmt.Errorf("%s: bad JSON: %w", url, err)
	}
	return resp.StatusCode, nil
}

func renderFrame(w io.Writer, base string, f *frame) {
	status := "HEALTHY"
	if !f.healthy {
		status = "UNHEALTHY"
	}
	ready := "READY"
	if !f.ready {
		ready = "NOT READY — " + f.readyBody.Reason
	}
	fmt.Fprintf(w, "batchzk-top — %s — %s / %s\n", base, status, ready)

	if f.snap == nil {
		if !f.obsEnabled {
			fmt.Fprintln(w, "obs engine disabled on the target (start it with -log or -debug-addr)")
		} else {
			fmt.Fprintln(w, "no SLO snapshot available")
		}
		return
	}
	s := f.snap
	fmt.Fprintf(w, "uptime %s   jobs %d (failed %d, quarantined %d)   queue depth %d   alerts raised %d\n",
		time.Duration(s.UptimeNs).Round(time.Second), s.Jobs.Total, s.Jobs.Failed,
		s.Jobs.Quarantined, s.Jobs.QueueDepth, s.AlertsTotal)

	if len(s.Stages) > 0 {
		fmt.Fprintf(w, "\n%-18s %12s %12s %12s %10s\n", "STAGE", "RATE/S", "P50", "P99", "COUNT")
		for _, st := range s.Stages {
			fmt.Fprintf(w, "%-18s %12.1f %12s %12s %10d\n",
				st.Name, st.RatePerSec, fmtNs(st.P50Ns), fmtNs(st.P99Ns), st.Count)
		}
	}

	if len(s.Objectives) > 0 {
		fmt.Fprintf(w, "\n%-16s %-10s %14s %14s %8s %10s %10s %9s\n",
			"OBJECTIVE", "KIND", "VALUE", "TARGET", "MET", "FAST-BURN", "SLOW-BURN", "BUDGET")
		for _, o := range s.Objectives {
			value, target := fmtNs(o.Value), fmtNs(float64(o.TargetNs))
			if o.Kind == batchzk.ObsKindErrorRate {
				value = fmt.Sprintf("%.2f%%", o.Value*100)
				target = fmt.Sprintf("%.2f%%", o.TargetRate*100)
			}
			met := "yes"
			if !o.Met {
				met = "NO"
			}
			fmt.Fprintf(w, "%-16s %-10s %14s %14s %8s %10.2f %10.2f %8.1f%%\n",
				o.Name, o.Kind, value, target, met, o.FastBurn, o.SlowBurn, o.BudgetRemaining*100)
		}
	}

	if len(s.ActiveAlerts) > 0 {
		fmt.Fprintf(w, "\nACTIVE ALERTS (%d)\n", len(s.ActiveAlerts))
		alerts := append([]batchzk.ObsAlert(nil), s.ActiveAlerts...)
		sort.SliceStable(alerts, func(i, j int) bool {
			return alerts[i].Severity == batchzk.ObsSeverityCritical &&
				alerts[j].Severity != batchzk.ObsSeverityCritical
		})
		for _, a := range alerts {
			fmt.Fprintf(w, "  [%s] %s %s: %s\n", strings.ToUpper(a.Severity), a.Kind, a.Subject, a.Reason)
		}
	} else {
		fmt.Fprintln(w, "\nno active alerts")
	}
}

// fmtNs renders a nanosecond quantity as a rounded duration.
func fmtNs(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}
