// Command batchzk demonstrates batch proof generation from the command
// line: it synthesizes a circuit at a requested scale, streams a batch of
// proof jobs through the pipelined prover, verifies every proof, and
// reports throughput.
//
// Usage:
//
//	batchzk -gates 1024 -batch 16 -depth 4      # batch proving demo
//	batchzk -batch 64 -workers 8                 # 8 workers split by stage shares (§4)
//	batchzk -batch 64 -workers 2,3,2,1           # explicit per-stage pools
//	batchzk -batch 64 -workers 8 -autobalance    # elastic runtime rebalance
//	batchzk -batch 64 -shards 4                  # split the batch across 4 provers
//	batchzk -batch 64 -kernel-workers 4          # 4-way multicore kernel runtime
//	batchzk -batch 16 -telemetry out/            # + metrics & Chrome trace dump
//	batchzk -debug-addr localhost:6060           # + live pprof/expvar server
//	batchzk prove  -gates 512 -out proof.bzk     # write a proof bundle
//	batchzk verify -in proof.bzk                 # check a proof bundle
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"batchzk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batchzk:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "prove":
			fs := flag.NewFlagSet("prove", flag.ContinueOnError)
			fs.SetOutput(stderr)
			gates := fs.Int("gates", 256, "multiplication gates")
			seed := fs.Int64("seed", 1, "circuit synthesis seed")
			out := fs.String("out", "proof.bzk", "output bundle path")
			if err := fs.Parse(args[1:]); err != nil {
				return err
			}
			return proveToFile(*gates, *seed, *out, stdout)
		case "verify":
			fs := flag.NewFlagSet("verify", flag.ContinueOnError)
			fs.SetOutput(stderr)
			in := fs.String("in", "proof.bzk", "input bundle path")
			if err := fs.Parse(args[1:]); err != nil {
				return err
			}
			return verifyFromFile(*in, stdout)
		}
	}

	fs := flag.NewFlagSet("batchzk", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gates := fs.Int("gates", 256, "multiplication gates in the synthesized circuit (scale S)")
	batch := fs.Int("batch", 8, "number of proofs to generate")
	depth := fs.Int("depth", 4, "pipeline depth (proofs in flight per shard)")
	seed := fs.Int64("seed", 1, "circuit synthesis seed")
	workers := fs.String("workers", "", `per-stage worker pools: a list "2,4,1,1" or a total budget "8" split by measured stage shares (empty = one worker per stage)`)
	shards := fs.Int("shards", 1, "independent prover shards the batch is split across")
	autobalance := fs.Bool("autobalance", false, "elastically rebalance the worker pools from live per-stage busy shares")
	telemetryDir := fs.String("telemetry", "", "directory to dump telemetry (metrics.json, trace.json, spans.jsonl)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/pprof, /debug/telemetry, /healthz, /readyz and /debug/obs/slo on this address")
	logDest := fs.String("log", "", `structured JSON event log destination: "-" or "stderr" for stderr, "stdout", or a file path; also enables the obs engine`)
	kernelWorkers := fs.Int("kernel-workers", 0, "multicore kernel runtime width: 0 = GOMAXPROCS, 1 = serial")
	if err := fs.Parse(args); err != nil {
		return err
	}
	batchzk.SetKernelWorkers(*kernelWorkers)

	if *logDest != "" || *debugAddr != "" {
		logOut, closeLog, err := openLogOutput(*logDest, stderr)
		if err != nil {
			return err
		}
		if closeLog != nil {
			defer closeLog()
		}
		batchzk.EnableObs(batchzk.NewObsEngine(batchzk.ObsConfig{LogOutput: logOut}))
		defer batchzk.EnableObs(nil)
	}

	var sink *batchzk.TelemetrySink
	if *telemetryDir != "" {
		// Create the dump directory up front so a bad path fails before
		// the run, not after it.
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			return fmt.Errorf("cannot create telemetry directory %s: %w", *telemetryDir, err)
		}
	}
	if *telemetryDir != "" || *debugAddr != "" {
		sink = batchzk.NewTelemetrySink()
		batchzk.EnableTelemetry(sink)
	}
	if *debugAddr != "" {
		srv, err := batchzk.ServeTelemetryDebug(*debugAddr, sink)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "debug server on http://%s/debug/telemetry\n", srv.Addr)
	}

	c, err := batchzk.RandomCircuit(*gates, 2, 2, *seed)
	if err != nil {
		return err
	}
	params, err := batchzk.Setup(c)
	if err != nil {
		return err
	}
	schedule, err := buildSchedule(c, params, *workers, *autobalance)
	if err != nil {
		return err
	}
	effDepth := *depth
	if schedule != nil && effDepth < schedule.TotalWorkers() {
		// The in-flight bound gates concurrency; wider pools need at
		// least that many proofs in flight to be useful.
		effDepth = schedule.TotalWorkers()
	}

	var prove func([]batchzk.Job) []batchzk.Result
	var stageWorkers [4]int
	if *shards > 1 {
		sp, err := batchzk.NewShardedProver(c, params, *shards, effDepth)
		if err != nil {
			return err
		}
		sp.SetSchedule(schedule)
		prove = sp.ProveBatch
		stageWorkers = sp.Shard(0).StageWorkers()
	} else {
		bp, err := batchzk.NewBatchProver(c, params, effDepth)
		if err != nil {
			return err
		}
		bp.SetSchedule(schedule)
		prove = bp.ProveBatch
		stageWorkers = bp.StageWorkers()
	}
	fmt.Fprintf(stdout, "circuit: %d mul gates, %d wires\n", c.NumMulGates(), c.NumWires())
	fmt.Fprintf(stdout, "schedule: %d shard(s), stage workers %v, autobalance %v, depth %d\n",
		*shards, stageWorkers, *autobalance, effDepth)

	jobs := make([]batchzk.Job, *batch)
	publics := make([][]batchzk.Element, *batch)
	for i := range jobs {
		publics[i] = batchzk.RandVector(2)
		jobs[i] = batchzk.Job{ID: i, Public: publics[i], Secret: batchzk.RandVector(2)}
	}

	start := time.Now()
	results := prove(jobs)
	elapsed := time.Since(start)

	verified := 0
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("job %d: %w", i, r.Err)
		}
		if err := batchzk.Verify(c, params, publics[i], r.Proof); err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		verified++
	}
	fmt.Fprintf(stdout, "generated and verified %d proofs in %v (%.2f proofs/s, pipeline depth %d)\n",
		verified, elapsed.Round(time.Millisecond),
		float64(verified)/elapsed.Seconds(), effDepth)

	if *telemetryDir != "" {
		if err := sink.Dump(*telemetryDir); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "telemetry written to %s (load trace.json in chrome://tracing)\n", *telemetryDir)
	}
	return nil
}

// buildSchedule resolves the -workers/-autobalance flags into a prover
// schedule (nil = the one-worker-per-stage default). A per-stage list is
// applied directly; a single budget is split by the §4 amortized-time-
// ratio rule, calibrated on a few sample proofs of this circuit.
func buildSchedule(c *batchzk.Circuit, params *batchzk.Params, spec string, autobalance bool) (*batchzk.ProverSchedule, error) {
	list, budget, err := batchzk.ParseWorkerSpec(spec)
	if err != nil {
		return nil, err
	}
	if list == nil && budget == 0 && !autobalance {
		return nil, nil
	}
	var s batchzk.ProverSchedule
	switch {
	case list != nil:
		copy(s.Workers[:], list)
	case budget > 0:
		probe, err := batchzk.NewBatchProver(c, params, 1)
		if err != nil {
			return nil, err
		}
		if s, err = probe.CalibrateSchedule(budget, 4); err != nil {
			return nil, err
		}
	default:
		s.Workers = [4]int{1, 1, 1, 1}
	}
	if autobalance {
		s.Autobalance = true
		if budget > 0 {
			s.Budget = budget
		} else {
			s.Budget = s.TotalWorkers()
		}
	}
	return &s, nil
}

// openLogOutput resolves the -log destination: "-"/"stderr" → the
// process stderr, "stdout" → stdout, anything else → a created file
// (with a closer), "" → nil (no event log, engine still runs).
func openLogOutput(dest string, stderr io.Writer) (io.Writer, func(), error) {
	switch dest {
	case "":
		return nil, nil, nil
	case "-", "stderr":
		return stderr, nil, nil
	case "stdout":
		return os.Stdout, nil, nil
	default:
		f, err := os.Create(dest)
		if err != nil {
			return nil, nil, fmt.Errorf("cannot open log destination %s: %w", dest, err)
		}
		return f, func() { _ = f.Close() }, nil
	}
}
