// Command batchzk demonstrates batch proof generation from the command
// line: it synthesizes a circuit at a requested scale, streams a batch of
// proof jobs through the pipelined prover, verifies every proof, and
// reports throughput.
//
// Usage:
//
//	batchzk -gates 1024 -batch 16 -depth 4      # batch proving demo
//	batchzk -batch 16 -telemetry out/            # + metrics & Chrome trace dump
//	batchzk -debug-addr localhost:6060           # + live pprof/expvar server
//	batchzk prove  -gates 512 -out proof.bzk     # write a proof bundle
//	batchzk verify -in proof.bzk                 # check a proof bundle
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"batchzk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batchzk:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "prove":
			fs := flag.NewFlagSet("prove", flag.ContinueOnError)
			fs.SetOutput(stderr)
			gates := fs.Int("gates", 256, "multiplication gates")
			seed := fs.Int64("seed", 1, "circuit synthesis seed")
			out := fs.String("out", "proof.bzk", "output bundle path")
			if err := fs.Parse(args[1:]); err != nil {
				return err
			}
			return proveToFile(*gates, *seed, *out, stdout)
		case "verify":
			fs := flag.NewFlagSet("verify", flag.ContinueOnError)
			fs.SetOutput(stderr)
			in := fs.String("in", "proof.bzk", "input bundle path")
			if err := fs.Parse(args[1:]); err != nil {
				return err
			}
			return verifyFromFile(*in, stdout)
		}
	}

	fs := flag.NewFlagSet("batchzk", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gates := fs.Int("gates", 256, "multiplication gates in the synthesized circuit (scale S)")
	batch := fs.Int("batch", 8, "number of proofs to generate")
	depth := fs.Int("depth", 4, "pipeline depth (proofs in flight)")
	seed := fs.Int64("seed", 1, "circuit synthesis seed")
	telemetryDir := fs.String("telemetry", "", "directory to dump telemetry (metrics.json, trace.json, spans.jsonl)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/telemetry on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sink *batchzk.TelemetrySink
	if *telemetryDir != "" {
		// Create the dump directory up front so a bad path fails before
		// the run, not after it.
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			return fmt.Errorf("cannot create telemetry directory %s: %w", *telemetryDir, err)
		}
	}
	if *telemetryDir != "" || *debugAddr != "" {
		sink = batchzk.NewTelemetrySink()
		batchzk.EnableTelemetry(sink)
	}
	if *debugAddr != "" {
		srv, err := batchzk.ServeTelemetryDebug(*debugAddr, sink)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "debug server on http://%s/debug/telemetry\n", srv.Addr)
	}

	c, err := batchzk.RandomCircuit(*gates, 2, 2, *seed)
	if err != nil {
		return err
	}
	params, err := batchzk.Setup(c)
	if err != nil {
		return err
	}
	prover, err := batchzk.NewBatchProver(c, params, *depth)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "circuit: %d mul gates, %d wires\n", c.NumMulGates(), c.NumWires())

	jobs := make([]batchzk.Job, *batch)
	publics := make([][]batchzk.Element, *batch)
	for i := range jobs {
		publics[i] = batchzk.RandVector(2)
		jobs[i] = batchzk.Job{ID: i, Public: publics[i], Secret: batchzk.RandVector(2)}
	}

	start := time.Now()
	results := prover.ProveBatch(jobs)
	elapsed := time.Since(start)

	verified := 0
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("job %d: %w", i, r.Err)
		}
		if err := batchzk.Verify(c, params, publics[i], r.Proof); err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		verified++
	}
	fmt.Fprintf(stdout, "generated and verified %d proofs in %v (%.2f proofs/s, pipeline depth %d)\n",
		verified, elapsed.Round(time.Millisecond),
		float64(verified)/elapsed.Seconds(), *depth)

	if *telemetryDir != "" {
		if err := sink.Dump(*telemetryDir); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "telemetry written to %s (load trace.json in chrome://tracing)\n", *telemetryDir)
	}
	return nil
}
