package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"batchzk"
)

// Proof bundles persisted by `batchzk prove` and checked by
// `batchzk verify`: the circuit recipe (gates + seed), the public
// inputs, and the serialized proof.

var bundleMagic = [4]byte{'B', 'Z', 'K', 'B'}

type bundle struct {
	Gates  int
	Seed   int64
	Public []batchzk.Element
	Proof  *batchzk.Proof
}

func (b *bundle) write(w io.Writer) error {
	if _, err := w.Write(bundleMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(b.Gates))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(b.Seed))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(b.Public)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for i := range b.Public {
		eb := b.Public[i].ToBytes()
		if _, err := w.Write(eb[:]); err != nil {
			return err
		}
	}
	_, err := b.Proof.WriteTo(w)
	return err
}

func (b *bundle) read(r io.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	if magic != bundleMagic {
		return fmt.Errorf("not a batchzk proof bundle")
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	b.Gates = int(binary.LittleEndian.Uint32(hdr[0:]))
	b.Seed = int64(binary.LittleEndian.Uint64(hdr[4:]))
	n := int(binary.LittleEndian.Uint32(hdr[12:]))
	if n > 1<<20 {
		return fmt.Errorf("implausible public-input count %d", n)
	}
	b.Public = make([]batchzk.Element, n)
	for i := range b.Public {
		var eb [32]byte
		if _, err := io.ReadFull(r, eb[:]); err != nil {
			return err
		}
		if err := b.Public[i].SetBytes(eb); err != nil {
			return err
		}
	}
	b.Proof = &batchzk.Proof{}
	_, err := b.Proof.ReadFrom(r)
	return err
}

// proveToFile synthesizes the circuit, proves one random execution, and
// writes the bundle.
func proveToFile(gates int, seed int64, path string, stdout io.Writer) error {
	c, err := batchzk.RandomCircuit(gates, 2, 2, seed)
	if err != nil {
		return err
	}
	params, err := batchzk.Setup(c)
	if err != nil {
		return err
	}
	public := batchzk.RandVector(2)
	proof, err := batchzk.Prove(c, params, public, batchzk.RandVector(2))
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	b := &bundle{Gates: gates, Seed: seed, Public: public, Proof: proof}
	if err := b.write(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d-gate circuit (seed %d), proof bundle %d bytes\n",
		path, gates, seed, buf.Len())
	return nil
}

// verifyFromFile re-derives the circuit from the bundle's recipe and
// verifies the proof.
func verifyFromFile(path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b bundle
	if err := b.read(bytes.NewReader(data)); err != nil {
		return err
	}
	c, err := batchzk.RandomCircuit(b.Gates, 2, 2, b.Seed)
	if err != nil {
		return err
	}
	params, err := batchzk.Setup(c)
	if err != nil {
		return err
	}
	if err := batchzk.Verify(c, params, b.Public, b.Proof); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "verified %s: valid proof for the %d-gate circuit (seed %d), %d outputs\n",
		path, b.Gates, b.Seed, len(b.Proof.Outputs))
	return nil
}
