package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFileT(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Smoke test for the batch-proving demo path: a tiny circuit and batch
// should prove, verify, and report throughput without error.
func TestRunBatchDemo(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-gates", "64", "-batch", "2", "-depth", "2"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "generated and verified 2 proofs") {
		t.Fatalf("missing success line in output:\n%s", out.String())
	}
}

// prove writes a bundle that verify then accepts.
func TestProveVerifyRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "proof.bzk")

	var out bytes.Buffer
	if err := run([]string{"prove", "-gates", "64", "-seed", "3", "-out", path}, &out, &out); err != nil {
		t.Fatalf("prove: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("prove output missing bundle path:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"verify", "-in", path}, &out, &out); err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "valid proof") {
		t.Fatalf("verify output missing acceptance line:\n%s", out.String())
	}
}

// A corrupted bundle must be rejected, not crash.
func TestVerifyRejectsCorruptBundle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bzk")
	var out bytes.Buffer
	if err := run([]string{"prove", "-gates", "64", "-out", path}, &out, &out); err != nil {
		t.Fatalf("prove: %v", err)
	}
	data := readFileT(t, path)
	data[len(data)-1] ^= 0xff
	writeFileT(t, path, data)

	out.Reset()
	if err := run([]string{"verify", "-in", path}, &out, &out); err == nil {
		t.Fatalf("verify accepted a corrupted bundle:\n%s", out.String())
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
