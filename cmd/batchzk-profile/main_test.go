package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListsScenarios(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatalf("run -list: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "quickstart") {
		t.Fatalf("-list output missing quickstart scenario:\n%s", out.String())
	}
}

// The tiny scenario writes a report file and renders the contrast table.
func TestRunTinyScenarioWritesReport(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if err := run([]string{"-scenario", "tiny", "-out", dir}, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "scenario tiny") {
		t.Fatalf("missing scenario header:\n%s", out.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one BENCH_*.json in %s, got %v (err %v)", dir, matches, err)
	}
	if fi, err := os.Stat(matches[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("report file %s empty or unreadable: %v", matches[0], err)
	}
}

// compare of a report against itself is clean (exit 0); against a
// missing file it is a usage/IO error (exit 2).
func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scenario", "tiny", "-out", dir}, &out, &out); err != nil {
		t.Fatalf("generating report: %v\n%s", err, out.String())
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if len(matches) != 1 {
		t.Fatalf("expected one report, got %v", matches)
	}
	rep := matches[0]

	var cout, cerr bytes.Buffer
	if code := runCompare([]string{rep, rep}, &cout, &cerr); code != 0 {
		t.Fatalf("self-compare exit %d, want 0\nstdout: %s\nstderr: %s", code, cout.String(), cerr.String())
	}
	if !strings.Contains(cout.String(), "no regressions") {
		t.Fatalf("self-compare output missing clean verdict:\n%s", cout.String())
	}

	if code := runCompare([]string{rep, filepath.Join(dir, "missing.json")}, &cout, &cerr); code != 2 {
		t.Fatalf("compare with missing file exit %d, want 2", code)
	}
	if code := runCompare([]string{rep}, &cout, &cerr); code != 2 {
		t.Fatalf("compare with one arg exit %d, want 2", code)
	}
}

// compare dispatches kernel reports to the kernels comparator and
// refuses to compare across kinds.
func TestRunCompareKernelsKind(t *testing.T) {
	dir := t.TempDir()
	kernels := filepath.Join(dir, "BENCH_kernels.json")
	const rep = `{"schema_version":2,"kind":"kernels","cores":2,"workers":2,"shift":8,"reps":1,
		"kernels":[{"name":"merkle/build","size":256,"serial_ns":100,"parallel_ns":60,"speedup_x":1.67,"identical":true}],
		"field_arith":[{"name":"field/mul","ops":1024,"ref_ns_op":38.0,"new_ns_op":21.0,"speedup_x":1.81,"identical":true}]}`
	if err := os.WriteFile(kernels, []byte(rep), 0o644); err != nil {
		t.Fatal(err)
	}

	var cout, cerr bytes.Buffer
	if code := runCompare([]string{kernels, kernels}, &cout, &cerr); code != 0 {
		t.Fatalf("kernels self-compare exit %d, want 0\nstdout: %s\nstderr: %s", code, cout.String(), cerr.String())
	}
	if !strings.Contains(cout.String(), "compare kernels") {
		t.Fatalf("kernels compare not routed to the kernels comparator:\n%s", cout.String())
	}

	var out bytes.Buffer
	if err := run([]string{"-scenario", "tiny", "-out", dir}, &out, &out); err != nil {
		t.Fatalf("generating scenario report: %v\n%s", err, out.String())
	}
	scenario := filepath.Join(dir, "BENCH_tiny.json")
	cout.Reset()
	cerr.Reset()
	if code := runCompare([]string{kernels, scenario}, &cout, &cerr); code != 2 {
		t.Fatalf("cross-kind compare exit %d, want 2\nstderr: %s", code, cerr.String())
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "no-such-scenario", "-out", ""}, &out, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// compare dispatches service reports to the service comparator, which
// gates the exactly-once invariants even in a self-compare.
func TestRunCompareServiceKind(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "BENCH_service.json")
	const rep = `{"schema_version":1,"kind":"service","cores":2,"tenants":2,
		"offered":8,"accepted":8,"completed":8,"lost":0,"duplicated":0,
		"latency_p99_ns":1000000,"batches":2,"batch_occupancy":0.5,
		"fairness_jain":0.99,"drain_ok":true,"all_verified":true}`
	if err := os.WriteFile(good, []byte(rep), 0o644); err != nil {
		t.Fatal(err)
	}

	var cout, cerr bytes.Buffer
	if code := runCompare([]string{good, good}, &cout, &cerr); code != 0 {
		t.Fatalf("service self-compare exit %d, want 0\nstdout: %s\nstderr: %s", code, cout.String(), cerr.String())
	}
	if !strings.Contains(cout.String(), "compare service") {
		t.Fatalf("service compare not routed to the service comparator:\n%s", cout.String())
	}

	// A report with a lost job fails the gate regardless of the baseline.
	lossy := filepath.Join(dir, "BENCH_service_lossy.json")
	const bad = `{"schema_version":1,"kind":"service","cores":2,"tenants":2,
		"offered":8,"accepted":8,"completed":7,"lost":1,"duplicated":0,
		"latency_p99_ns":1000000,"batches":2,"batch_occupancy":0.5,
		"fairness_jain":0.99,"drain_ok":true,"all_verified":true}`
	if err := os.WriteFile(lossy, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	cout.Reset()
	cerr.Reset()
	if code := runCompare([]string{good, lossy}, &cout, &cerr); code == 0 {
		t.Fatalf("lost job passed the gate\nstdout: %s", cout.String())
	}
	if !strings.Contains(cout.String(), "lost_jobs") {
		t.Fatalf("lost_jobs regression not reported:\n%s", cout.String())
	}
}
