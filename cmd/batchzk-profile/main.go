// Command batchzk-profile runs a named bench scenario under both
// execution schemes, prints the profiler's pipelined-vs-naive bottleneck
// report (the paper's Figure 9 contrast), and writes a schema-versioned
// machine-readable BENCH_<scenario>.json for perf tracking. Its compare
// subcommand diffs two such files and exits non-zero when a gated metric
// regressed past the threshold.
//
// Usage:
//
//	batchzk-profile                          # quickstart scenario on 3090Ti
//	batchzk-profile -scenario sumcheck       # another workload
//	batchzk-profile -device H100 -out out/   # another device, report dir
//	batchzk-profile -format json             # JSON report to stdout too
//	batchzk-profile -list                    # list scenario names
//	batchzk-profile -telemetry out/          # + dump metrics & Chrome trace
//	batchzk-profile -debug-addr :6060        # + live pprof/expvar server
//	batchzk-profile compare OLD.json NEW.json [-threshold 0.10]
//	batchzk-profile roofline                 # host-kernel roofline table:
//	                                         # ns/element vs calibrated ALU floor
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"batchzk"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "roofline" {
		if err := runRoofline(os.Args[2:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "batchzk-profile:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batchzk-profile:", err)
		os.Exit(1)
	}
}

// runRoofline implements `batchzk-profile roofline`: calibrate the host
// ALU (measured Montgomery multiply/add and hash-compress latencies),
// time every hot kernel serially, and print each kernel's ns/element
// against its arithmetic floor with a percent-of-ceiling verdict —
// the host-side mirror of the GPU simulator's bound verdicts.
func runRoofline(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("roofline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shift := fs.Int("shift", 14, "log2 of the per-kernel problem size")
	reps := fs.Int("reps", 3, "runs per kernel; best time is kept")
	seed := fs.Int64("seed", 1, "input synthesis seed")
	out := fs.String("out", "", "file for the JSON roofline report ('' = don't write)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := batchzk.BuildRooflineReport(*shift, *reps, *seed)
	if err != nil {
		return err
	}
	rep.RenderTable(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("cannot write report: %w", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("cannot write report %s: %w", *out, werr)
		}
		fmt.Fprintf(stderr, "report written to %s\n", *out)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("batchzk-profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "quickstart", "bench scenario; see -list")
	device := fs.String("device", "3090Ti", "device profile: GH200, H100, A100, V100, 3090Ti")
	out := fs.String("out", ".", "directory for BENCH_<scenario>.json ('' = don't write)")
	format := fs.String("format", "text", "stdout format: text (profiler report) or json")
	list := fs.Bool("list", false, "list scenario names and exit")
	telemetryDir := fs.String("telemetry", "", "directory to dump telemetry (metrics.json, trace.json, spans.jsonl, timeline.json)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/telemetry on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, sc := range batchzk.BenchScenarios() {
			fmt.Fprintf(stdout, "%-12s %s\n", sc.Name, sc.Title)
		}
		return nil
	}

	if *telemetryDir != "" {
		// Create the dump directory up front so a bad path fails before
		// the scenario runs, not after it.
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			return fmt.Errorf("cannot create telemetry directory %s: %w", *telemetryDir, err)
		}
	}

	// Enable telemetry before the scenario runs so the provers and
	// simulators the harness constructs internally record into the sink.
	var sink *batchzk.TelemetrySink
	if *telemetryDir != "" || *debugAddr != "" {
		sink = batchzk.NewTelemetrySink()
		batchzk.EnableTelemetry(sink)
	}
	if *debugAddr != "" {
		srv, err := batchzk.ServeTelemetryDebug(*debugAddr, sink)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "debug server on http://%s/debug/telemetry\n", srv.Addr)
	}

	sc, err := batchzk.BenchScenarioByName(*scenario)
	if err != nil {
		return err
	}
	spec, err := batchzk.Device(*device)
	if err != nil {
		return err
	}
	report, contrast, err := batchzk.BuildBenchReport(sc, spec)
	if err != nil {
		return err
	}

	switch *format {
	case "json":
		if err := report.WriteJSON(stdout); err != nil {
			return err
		}
	case "text":
		fmt.Fprintf(stdout, "scenario %s on %s (%d cores): %s\n\n", sc.Name, spec.Name, spec.Cores, sc.Title)
		contrast.Render(stdout)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("cannot create report directory %s: %w", *out, err)
		}
		path := filepath.Join(*out, batchzk.BenchReportFileName(sc.Name))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("cannot write report: %w", err)
		}
		werr := report.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("cannot write report %s: %w", path, werr)
		}
		fmt.Fprintf(stderr, "report written to %s\n", path)
	}
	if *telemetryDir != "" {
		if err := sink.Dump(*telemetryDir); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "telemetry written to %s (load trace.json in chrome://tracing)\n", *telemetryDir)
	}
	return nil
}

// runCompare implements `batchzk-profile compare OLD NEW [-threshold F]`.
// Exit codes: 0 clean, 1 regression found, 2 usage/IO error.
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10, "regression gate as a fraction (0.10 = 10%)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: batchzk-profile compare OLD.json NEW.json [-threshold 0.10]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Accept -threshold on either side of the two file arguments (stdlib
	// flag parsing stops at the first positional).
	files := fs.Args()
	if len(files) > 2 {
		if err := fs.Parse(files[2:]); err != nil {
			return 2
		}
		files = append(files[:2], fs.Args()...)
	}
	if len(files) != 2 {
		fs.Usage()
		return 2
	}
	// Reports carry a "kind" discriminator: scenario reports (no kind
	// field), scheduler reports ("scheduler"), kernel reports ("kernels"),
	// memory reports ("memory"), and service reports ("service") are
	// gated by different comparators. Both files must be of the same kind.
	oldKind, err := reportKind(files[0])
	if err != nil {
		fmt.Fprintln(stderr, "batchzk-profile:", err)
		return 2
	}
	newKind, err := reportKind(files[1])
	if err != nil {
		fmt.Fprintln(stderr, "batchzk-profile:", err)
		return 2
	}
	if oldKind != newKind {
		fmt.Fprintf(stderr, "batchzk-profile: cannot compare a %q report against a %q report\n", oldKind, newKind)
		return 2
	}

	var regs []batchzk.BenchRegression
	var label string
	if oldKind == batchzk.KernelsBenchKind() {
		oldRep, err := readKernelsReportFile(files[0])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		newRep, err := readKernelsReportFile(files[1])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		if regs, err = batchzk.CompareKernelsBenchReports(oldRep, newRep, *threshold); err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		label = "kernels"
	} else if oldKind == batchzk.SchedulerBenchKind() {
		oldRep, err := readSchedulerReportFile(files[0])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		newRep, err := readSchedulerReportFile(files[1])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		if regs, err = batchzk.CompareSchedulerBenchReports(oldRep, newRep, *threshold); err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		label = "scheduler"
	} else if oldKind == batchzk.MemoryBenchKind() {
		oldRep, err := readMemoryReportFile(files[0])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		newRep, err := readMemoryReportFile(files[1])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		if regs, err = batchzk.CompareMemoryBenchReports(oldRep, newRep, *threshold); err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		label = "memory"
	} else if oldKind == batchzk.ServiceBenchKind() {
		oldRep, err := readServiceReportFile(files[0])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		newRep, err := readServiceReportFile(files[1])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		if regs, err = batchzk.CompareServiceBenchReports(oldRep, newRep, *threshold); err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		label = "service"
	} else {
		oldRep, err := readReportFile(files[0])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		newRep, err := readReportFile(files[1])
		if err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		if regs, err = batchzk.CompareBenchReports(oldRep, newRep, *threshold); err != nil {
			fmt.Fprintln(stderr, "batchzk-profile:", err)
			return 2
		}
		label = newRep.Scenario
	}
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "compare %s: no regressions past %.0f%% (scenario %s)\n",
			label, *threshold*100, label)
		return 0
	}
	fmt.Fprintf(stdout, "compare %s: %d regression(s) past %.0f%%\n", label, len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Fprintf(stdout, "  %-32s %.4g -> %.4g (%.1f%% worse)\n", r.Metric, r.Old, r.New, r.DeltaFrac*100)
	}
	return 1
}

// reportKind peeks a report file's "kind" discriminator. Scenario
// reports predate the field and report "" here.
func reportKind(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("cannot read report: %w", err)
	}
	defer f.Close()
	var peek struct {
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(f).Decode(&peek); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return peek.Kind, nil
}

func readReportFile(path string) (*batchzk.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read report: %w", err)
	}
	defer f.Close()
	rep, err := batchzk.ReadBenchReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func readKernelsReportFile(path string) (*batchzk.KernelsBenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read report: %w", err)
	}
	defer f.Close()
	rep, err := batchzk.ReadKernelsBenchReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func readMemoryReportFile(path string) (*batchzk.MemoryBenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read report: %w", err)
	}
	defer f.Close()
	rep, err := batchzk.ReadMemoryBenchReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func readServiceReportFile(path string) (*batchzk.ServiceBenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read report: %w", err)
	}
	defer f.Close()
	rep, err := batchzk.ReadServiceBenchReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func readSchedulerReportFile(path string) (*batchzk.SchedulerBenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read report: %w", err)
	}
	defer f.Close()
	rep, err := batchzk.ReadSchedulerBenchReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
