package batchzk

// GKR API: the layered interactive proof underlying the sum-check-based
// protocol family the paper targets (Libra, Virgo, Orion — Table 1),
// with Libra's linear-time two-phase prover. The committed variant
// composes GKR with the polynomial commitment (encoder + Merkle) into a
// complete Virgo/Orion-style argument for secret inputs.

import (
	"fmt"

	"batchzk/internal/encoder"
	"batchzk/internal/gkr"
	"batchzk/internal/pcs"
	"batchzk/internal/transcript"
)

// GKRGate is one gate of a layered circuit.
type GKRGate = gkr.Gate

// GKR gate operations.
const (
	GKRAdd = gkr.Add
	GKRMul = gkr.Mul
)

// GKRCircuit is a layered arithmetic circuit (Layers[0] = outputs).
type GKRCircuit = gkr.Circuit

// GKRProof is a GKR proof for a public-input circuit evaluation.
type GKRProof = gkr.Proof

// GKRCommittedProof is a GKR proof whose secret input is settled by a
// polynomial-commitment opening.
type GKRCommittedProof = gkr.CommittedProof

// GKRProve proves the evaluation of a layered circuit on a public input.
func GKRProve(c *GKRCircuit, input []Element) (*GKRProof, error) {
	proof, _, _, err := gkr.Prove(c, input, transcript.New(gkr.Domain))
	return proof, err
}

// GKRVerify checks a public-input GKR proof and returns the verified
// (padded) outputs.
func GKRVerify(c *GKRCircuit, input []Element, proof *GKRProof) ([]Element, error) {
	return gkr.VerifyPublic(c, input, proof, transcript.New(gkr.Domain))
}

// GKRProveCommitted commits to a secret input and proves the circuit's
// evaluation on it; the verifier never learns the input. The circuit's
// input size must be at least the encoder's base size (16).
func GKRProveCommitted(c *GKRCircuit, secret []Element) (*GKRCommittedProof, error) {
	if c.InputSize < encoder.DefaultParams().BaseSize {
		return nil, fmt.Errorf("batchzk: committed GKR needs input size ≥ %d, got %d",
			encoder.DefaultParams().BaseSize, c.InputSize)
	}
	params := gkrPCSParams(c)
	return gkr.ProveCommitted(c, secret, params, transcript.New(gkr.Domain))
}

// GKRVerifyCommitted checks a committed-input GKR proof and returns the
// verified outputs.
func GKRVerifyCommitted(c *GKRCircuit, proof *GKRCommittedProof) ([]Element, error) {
	params := gkrPCSParams(c)
	return gkr.VerifyCommitted(c, proof, params, transcript.New(gkr.Domain))
}

// gkrPCSParams derives the input-commitment layout from the circuit.
func gkrPCSParams(c *GKRCircuit) pcs.Params {
	logN := 0
	for 1<<logN < c.InputSize {
		logN++
	}
	p := pcs.NewParams(logN)
	if p.NumRows*p.NumCols != c.InputSize {
		// Inputs smaller than the encoder base: single-row layout.
		p = pcs.Params{NumRows: 1, NumCols: c.InputSize, NumOpenings: pcs.DefaultNumOpenings, Enc: encoder.DefaultParams()}
	}
	return p
}
