package batchzk

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment through the calibrated
// performance model and reports the headline metric of that table as a
// custom benchmark metric, so `go test -bench=.` reproduces the whole
// evaluation section.

import (
	"testing"

	"batchzk/internal/baselines"
	"batchzk/internal/bench"
	"batchzk/internal/core"
	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/nn"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
	"batchzk/internal/vml"
)

func benchExperiment(b *testing.B, id string) *bench.Table {
	b.Helper()
	spec := perfmodel.GH200()
	var table *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		table, err = bench.Run(id, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	return table
}

// BenchmarkTable3MerkleThroughput regenerates Table 3 and reports the
// pipelined Merkle throughput at 2^18 blocks (trees/ms).
func BenchmarkTable3MerkleThroughput(b *testing.B) {
	benchExperiment(b, "table3")
	rep, err := pipeline.SimulateMerkle(perfmodel.GH200(), perfmodel.GPUCosts(), 1<<18, 1024, pipeline.Pipelined, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.ThroughputPerMs(), "trees/ms@2^18")
}

// BenchmarkTable4SumcheckThroughput regenerates Table 4 and reports the
// pipelined sum-check throughput at 2^18 (proofs/ms).
func BenchmarkTable4SumcheckThroughput(b *testing.B) {
	benchExperiment(b, "table4")
	rep, err := pipeline.SimulateSumcheck(perfmodel.GH200(), perfmodel.GPUCosts(), 18, 1024, pipeline.Pipelined, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.ThroughputPerMs(), "proofs/ms@2^18")
}

// BenchmarkTable5EncoderThroughput regenerates Table 5 and reports the
// pipelined encoder throughput at 2^18 (codes/ms).
func BenchmarkTable5EncoderThroughput(b *testing.B) {
	benchExperiment(b, "table5")
	work, err := encoder.WorkModel(1<<18, encoder.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := pipeline.SimulateEncoderFromWork(perfmodel.GH200(), perfmodel.GPUCosts(), work, 1<<18, 1024, pipeline.Pipelined, true, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.ThroughputPerMs(), "codes/ms@2^18")
}

// BenchmarkTable6ModuleLatency regenerates Table 6 and reports the
// pipelined Merkle latency at 2^18 (ms).
func BenchmarkTable6ModuleLatency(b *testing.B) {
	benchExperiment(b, "table6")
	rep, err := pipeline.SimulateMerkle(perfmodel.GH200(), perfmodel.GPUCosts(), 1<<18, 8, pipeline.Pipelined, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.LatencyNs/1e6, "latency-ms@2^18")
}

// BenchmarkTable7SystemThroughput regenerates Table 7 and reports our
// amortized per-proof time at S = 2^20 (ms).
func BenchmarkTable7SystemThroughput(b *testing.B) {
	benchExperiment(b, "table7")
	rep, err := core.SimulateSystem(perfmodel.GH200(), perfmodel.GPUCosts(), 1<<20, 256, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.CycleNs/1e6, "ms/proof@2^20")
}

// BenchmarkTable8AcrossGPUs regenerates Table 8 and reports the V100
// throughput speedup over Bellperson (the paper's headline 259.5×).
func BenchmarkTable8AcrossGPUs(b *testing.B) {
	benchExperiment(b, "table8")
	spec := perfmodel.V100()
	bell, err := baselines.Bellperson(spec, 1<<20, 1)
	if err != nil {
		b.Fatal(err)
	}
	ours, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), 1<<20, 256, true)
	if err != nil {
		b.Fatal(err)
	}
	oursPerSec := ours.ThroughputPerMs() * 1000
	bellPerSec := 1e9 / bell.ProofNs
	b.ReportMetric(oursPerSec/bellPerSec, "speedup-x@V100")
}

// BenchmarkTable9Overlap regenerates Table 9 and reports the overlapped
// cycle on the V100 (ms).
func BenchmarkTable9Overlap(b *testing.B) {
	benchExperiment(b, "table9")
	rep, err := core.SimulateSystem(perfmodel.V100(), perfmodel.GPUCosts(), 1<<20, 256, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.CycleNs/1e6, "cycle-ms@V100")
}

// BenchmarkTable10Memory regenerates Table 10 and reports our per-proof
// device footprint at S = 2^18 (GB).
func BenchmarkTable10Memory(b *testing.B) {
	benchExperiment(b, "table10")
	shape, err := core.ShapeForScale(1 << 18)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(core.SystemTaskBytes(shape))/(1<<30), "GB@2^18")
}

// BenchmarkTable11VerifiableML regenerates Table 11 and reports the
// modelled VGG-16 proof throughput (the paper's 9.52 proofs/s headline).
func BenchmarkTable11VerifiableML(b *testing.B) {
	benchExperiment(b, "table11")
	rep, err := vml.SimulatePerformance(perfmodel.GH200(), nn.VGG16(1), 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.ThroughputPerSec, "proofs/s-VGG16")
}

// BenchmarkFig4ThreadWorkload regenerates Figure 4's workload traces.
func BenchmarkFig4ThreadWorkload(b *testing.B) {
	benchExperiment(b, "fig4")
}

// BenchmarkFig6EncoderPipelines regenerates Figure 6's two-pipeline
// schedule, including the functional codeword equality check.
func BenchmarkFig6EncoderPipelines(b *testing.B) {
	benchExperiment(b, "fig6")
}

// BenchmarkFig9Utilization regenerates Figure 9's utilization traces and
// reports the pipelined Merkle module's mean utilization.
func BenchmarkFig9Utilization(b *testing.B) {
	table := benchExperiment(b, "fig9")
	_ = table
	rep, err := pipeline.SimulateMerkle(perfmodel.RTX3090Ti(), perfmodel.GPUCosts(), 1<<18, 256, pipeline.Pipelined, true)
	if err != nil {
		b.Fatal(err)
	}
	sum := 0.0
	for _, s := range rep.Trace {
		sum += s.Util
	}
	b.ReportMetric(100*sum/float64(len(rep.Trace)), "mean-util-%")
}

// BenchmarkBatchProverEndToEnd measures the *real* (executed, not
// modelled) pipelined batch prover on a 256-gate circuit. Beyond the
// wall-clock numbers it reports telemetry-derived metrics: the p99 of
// the slowest stage's latency histogram and the peak number of proofs
// in flight, taken from a per-benchmark sink.
func BenchmarkBatchProverEndToEnd(b *testing.B) {
	c, err := RandomCircuit(256, 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := Setup(c)
	if err != nil {
		b.Fatal(err)
	}
	prover, err := NewBatchProver(c, p, 4)
	if err != nil {
		b.Fatal(err)
	}
	sink := NewTelemetrySink()
	prover.SetTelemetry(sink)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := prover.ProveBatch(jobs)
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(jobs)), "proofs/op")

	snap := sink.Metrics.Snapshot()
	p99 := 0.0
	for _, name := range core.StageNames {
		if h, ok := snap.Histograms["core/stage/"+name+"/ns"]; ok && h.P99 > p99 {
			p99 = h.P99
		}
	}
	b.ReportMetric(p99, "stage-p99-ns")
	b.ReportMetric(float64(snap.Gauges["core/jobs/in_flight"].Peak), "peak-in-flight")
}
