package batchzk

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	b := NewCircuitBuilder()
	x := b.PublicInput()
	w := b.SecretInput()
	b.Output(b.Mul(b.Add(x, w), w))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	public := []Element{NewElement(3)}
	secret := []Element{NewElement(5)}
	proof, err := Prove(c, p, public, secret)
	if err != nil {
		t.Fatal(err)
	}
	// (3+5)·5 = 40
	if v, _ := proof.Outputs[0].Uint64(); v != 40 {
		t.Fatalf("output = %d", v)
	}
	if err := Verify(c, p, public, proof); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIBatch(t *testing.T) {
	c, err := RandomCircuit(32, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{ID: 0, Public: RandVector(1), Secret: RandVector(1)},
		{ID: 1, Public: RandVector(1), Secret: RandVector(1)},
	}
	results := prover.ProveBatch(jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if err := Verify(c, p, jobs[i].Public, r.Proof); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

func TestPublicAPIDevicesAndExperiments(t *testing.T) {
	if _, err := Device("GH200"); err != nil {
		t.Fatal(err)
	}
	if _, err := Device("not-a-gpu"); err == nil {
		t.Fatal("unknown device accepted")
	}
	ids := Experiments()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	spec, _ := Device("GH200")
	table, err := RunExperiment("table10", spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	table.Render(&buf)
	if !strings.Contains(buf.String(), "table10") {
		t.Fatal("render missing table id")
	}
	rep, err := SimulateSystem(spec, 1<<16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThroughputPerMs() <= 0 {
		t.Fatal("degenerate system report")
	}
}

func TestPublicAPIModules(t *testing.T) {
	// Merkle.
	blocks := PadMerkleBlocks(make([]MerkleBlock, 5))
	tree, err := BuildMerkleTree(blocks)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := tree.Prove(2)
	if err != nil || !VerifyMerklePath(tree.Root(), mp) {
		t.Fatalf("merkle path: %v", err)
	}
	roots, err := BatchMerkleRoots([][]MerkleBlock{blocks, blocks})
	if err != nil || roots[0] != tree.Root() || roots[1] != tree.Root() {
		t.Fatalf("batch merkle: %v", err)
	}

	// Sum-check.
	evals := RandVector(64)
	sp, claim, err := ProveSum("t", evals)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySum("t", claim, sp, evals); err != nil {
		t.Fatal(err)
	}
	if err := VerifySum("other-domain", claim, sp, evals); err == nil {
		t.Fatal("domain separation ignored")
	}
	other := RandVector(64)
	if err := VerifySum("t", claim, sp, other); err == nil {
		t.Fatal("verified against the wrong table")
	}
	if _, _, err := ProveSum("t", RandVector(3)); err == nil {
		t.Fatal("non-power-of-two table accepted")
	}
	rs := RandVector(6)
	results, err := BatchProveSums([][]Element{RandVector(64)}, func(_, round int, _, _ Element) Element {
		return rs[round]
	})
	if err != nil || len(results) != 1 {
		t.Fatalf("batch sums: %v", err)
	}

	// Encoder.
	enc, err := NewEncoder(64)
	if err != nil {
		t.Fatal(err)
	}
	msg := RandVector(64)
	cw, err := enc.Encode(msg)
	if err != nil || len(cw) != 256 {
		t.Fatalf("encode: %v len %d", err, len(cw))
	}
	codes, err := BatchEncodeMessages(enc, [][]Element{msg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cw {
		if !codes[0][i].Equal(&cw[i]) {
			t.Fatal("batch codeword differs")
		}
	}
}

func TestPublicAPIProofSerialization(t *testing.T) {
	c, _ := RandomCircuit(32, 1, 1, 9)
	p, _ := Setup(c)
	public := RandVector(1)
	proof, err := Prove(c, p, public, RandVector(1))
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Proof
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := Verify(c, p, public, &back); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIGKR(t *testing.T) {
	// x0·x1 + x2 over a 16-wide input layer: layer1 = [x0·x1, x2+0, …],
	// layer0 = [l1[0]+l1[1], l1[0]·l1[1]].
	c := &GKRCircuit{
		InputSize: 16,
		Layers: [][]GKRGate{
			{{Op: GKRAdd, In0: 0, In1: 1}, {Op: GKRMul, In0: 0, In1: 1}},
			{{Op: GKRMul, In0: 0, In1: 1}, {Op: GKRAdd, In0: 2, In1: 15}},
		},
	}
	input := make([]Element, 16)
	input[0] = NewElement(3)
	input[1] = NewElement(4)
	input[2] = NewElement(10)
	proof, err := GKRProve(c, input)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := GKRVerify(c, input, proof)
	if err != nil {
		t.Fatal(err)
	}
	// layer1 = [12, 10]; outputs = [22, 120].
	if v, _ := outs[0].Uint64(); v != 22 {
		t.Fatalf("out0 = %d", v)
	}
	if v, _ := outs[1].Uint64(); v != 120 {
		t.Fatalf("out1 = %d", v)
	}

	// Committed variant: prove without revealing the input.
	cp, err := GKRProveCommitted(c, input)
	if err != nil {
		t.Fatal(err)
	}
	outs2, err := GKRVerifyCommitted(c, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !outs2[1].Equal(&outs[1]) {
		t.Fatal("committed outputs differ")
	}
	small := &GKRCircuit{InputSize: 4, Layers: [][]GKRGate{{{Op: GKRAdd}, {Op: GKRAdd}}}}
	if _, err := GKRProveCommitted(small, make([]Element, 4)); err == nil {
		t.Fatal("tiny input accepted for committed GKR")
	}
}

func TestPublicAPIMLaaS(t *testing.T) {
	svc, err := NewMLaaSService(TinyCNN(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	img := RandImage(1, 8, 8, 4)
	preds, err := svc.HandleBatch([]*Tensor{img})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Err != nil {
		t.Fatal(preds[0].Err)
	}
	if err := svc.Client().VerifyPrediction(img, &preds[0]); err != nil {
		t.Fatal(err)
	}
	if VGG16(1).MulCount() < 100_000_000 {
		t.Fatal("VGG16 too small")
	}
}
