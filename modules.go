package batchzk

// Module-level API: the paper's three computational modules — Merkle
// tree, sum-check protocol, and linear-time encoder — exposed for
// standalone use ("these modules can work individually or together to
// support our fully pipelined ZKP system", §1). The Batch* functions run
// the pipelined executors of §3: tasks stream through stage-dedicated
// workers and the results are bit-identical to the one-at-a-time
// functions.

import (
	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/pipeline"
	"batchzk/internal/poly"
	"batchzk/internal/sha2"
	"batchzk/internal/sumcheck"
	"batchzk/internal/transcript"
)

// Digest is a 256-bit SHA-256 digest.
type Digest = sha2.Digest

// MerkleBlock is a 512-bit Merkle input block.
type MerkleBlock = merkle.Block

// MerkleTree is a materialized Merkle tree with opening proofs.
type MerkleTree = merkle.Tree

// MerkleProof is an authentication path.
type MerkleProof = merkle.Proof

// BuildMerkleTree constructs a tree over 512-bit blocks (power-of-two
// count; see PadMerkleBlocks).
func BuildMerkleTree(blocks []MerkleBlock) (*MerkleTree, error) {
	return merkle.Build(blocks)
}

// PadMerkleBlocks pads a block slice to a power-of-two length.
func PadMerkleBlocks(blocks []MerkleBlock) []MerkleBlock {
	return merkle.PadBlocks(blocks)
}

// VerifyMerklePath checks an authentication path against a root.
func VerifyMerklePath(root Digest, proof *MerkleProof) bool {
	return merkle.Verify(root, proof)
}

// BatchMerkleRoots builds one tree root per task through the pipelined
// layer-per-stage executor of §3.1. All tasks must share one
// power-of-two block count.
func BatchMerkleRoots(tasks [][]MerkleBlock) ([]Digest, error) {
	return pipeline.BatchMerkle(tasks)
}

// SumcheckProof is a sum-check proof (one message pair per variable).
type SumcheckProof = sumcheck.Proof

// ProveSum proves that the multilinear polynomial given by its
// evaluation table (power-of-two length) sums to the returned claim over
// the Boolean hypercube. The proof is non-interactive (Fiat–Shamir under
// the given domain label) and is verified with VerifySum.
func ProveSum(domain string, evals []Element) (*SumcheckProof, Element, error) {
	m, err := newMultilinear(evals)
	if err != nil {
		return nil, Element{}, err
	}
	proof, _, claim := sumcheck.Prove(m, transcript.New(domain))
	return proof, claim, nil
}

// VerifySum checks a ProveSum proof against the claim and the evaluation
// table (the standalone-module setting, where the verifier can evaluate
// the polynomial itself; inside the proof system the final evaluation is
// settled by a polynomial-commitment opening instead).
func VerifySum(domain string, claim Element, proof *SumcheckProof, evals []Element) error {
	m, err := newMultilinear(evals)
	if err != nil {
		return err
	}
	point, final, err := sumcheck.Verify(claim, proof, transcript.New(domain))
	if err != nil {
		return err
	}
	got, err := m.Evaluate(point)
	if err != nil {
		return err
	}
	if !got.Equal(&final) {
		return sumcheck.ErrReject
	}
	return nil
}

// SumcheckChallenge supplies round randomness to BatchProveSums.
type SumcheckChallenge = pipeline.SumcheckChallenge

// SumcheckResult is one task's proof from the pipelined module.
type SumcheckResult = pipeline.SumcheckResult

// BatchProveSums generates one sum-check proof per table through the
// pipelined round-per-stage executor of §3.2 (with the double-buffer
// memory discipline of Figure 5). The challenge callback supplies each
// task's round randomness, as the full system derives it from Merkle
// roots.
func BatchProveSums(tables [][]Element, challenge SumcheckChallenge) ([]SumcheckResult, error) {
	return pipeline.BatchSumcheck(tables, challenge)
}

// Encoder is a linear-time (Spielman/expander) encoder for a fixed
// power-of-two message length; codewords are 4× the message.
type Encoder = encoder.Encoder

// NewEncoder samples an encoder with the default expander parameters.
func NewEncoder(msgLen int) (*Encoder, error) {
	return encoder.New(msgLen, encoder.DefaultParams())
}

// BatchEncodeMessages encodes one message per task through the
// two-pipeline executor of §3.3 (Figure 6); the codewords equal
// enc.Encode on each message.
func BatchEncodeMessages(enc *Encoder, msgs [][]Element) ([][]Element, error) {
	return pipeline.BatchEncode(enc, msgs)
}

func newMultilinear(evals []Element) (*poly.Multilinear, error) {
	cp := make([]field.Element, len(evals))
	copy(cp, evals)
	return poly.NewMultilinear(cp)
}
