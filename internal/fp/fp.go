// Package fp implements the BN254 *base* field F_p,
//
//	p = 21888242871839275222246405745257275088696311157297823662689037894645226208583,
//
// used only by the elliptic-curve group that realizes the MSM workload of
// the Libsnark/Bellperson baselines. BatchZK's own protocol works entirely
// in the scalar field (package field); G1 points live over F_p so that the
// curve group has prime order r and scalar arithmetic mod r is the honest
// group exponent arithmetic.
//
// The representation mirrors package field (4×64-limb Montgomery form);
// the Montgomery constants are derived from the modulus at init time.
package fp

import (
	"crypto/rand"
	"encoding/binary"
	"math/big"
	"math/bits"
)

// Element is an F_p element in Montgomery form (little-endian limbs).
type Element [4]uint64

var (
	// modulus is p as a big integer.
	modulus, _ = new(big.Int).SetString(
		"21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)

	q       [4]uint64 // modulus limbs
	qInvNeg uint64    // -p^{-1} mod 2^64
	rSquare Element   // R² mod p
	one     Element   // R mod p
)

func init() {
	words := modulus.Bits()
	for i := 0; i < 4; i++ {
		q[i] = uint64(words[i])
	}
	// Newton iteration for the 64-bit Montgomery constant.
	inv := q[0]
	for i := 0; i < 5; i++ {
		inv *= 2 - q[0]*inv
	}
	qInvNeg = -inv

	setFromBig := func(dst *Element, v *big.Int) {
		var t big.Int
		t.Mod(v, modulus)
		*dst = Element{}
		for i, w := range t.Bits() {
			if i < 4 {
				dst[i] = uint64(w)
			}
		}
	}
	R := new(big.Int).Lsh(big.NewInt(1), 256)
	setFromBig(&one, R)
	R2 := new(big.Int).Mul(R, R)
	setFromBig(&rSquare, R2)
}

// Modulus returns a copy of p.
func Modulus() *big.Int { return new(big.Int).Set(modulus) }

// One returns the multiplicative identity.
func One() Element { return one }

// NewElement returns v as a field element.
func NewElement(v uint64) Element {
	var e Element
	e.SetUint64(v)
	return e
}

// SetUint64 sets e to v and returns e.
func (e *Element) SetUint64(v uint64) *Element {
	*e = Element{v}
	return e.Mul(e, &rSquare)
}

// SetBigInt sets e to v mod p and returns e.
func (e *Element) SetBigInt(v *big.Int) *Element {
	var t big.Int
	t.Mod(v, modulus)
	*e = Element{}
	for i, w := range t.Bits() {
		if i < 4 {
			e[i] = uint64(w)
		}
	}
	return e.Mul(e, &rSquare)
}

// BigInt returns the canonical value of e.
func (e *Element) BigInt() *big.Int {
	var c Element
	c.Mul(e, &Element{1})
	b := make([]byte, 32)
	binary.BigEndian.PutUint64(b[0:8], c[3])
	binary.BigEndian.PutUint64(b[8:16], c[2])
	binary.BigEndian.PutUint64(b[16:24], c[1])
	binary.BigEndian.PutUint64(b[24:32], c[0])
	return new(big.Int).SetBytes(b)
}

// IsZero reports whether e is zero.
func (e *Element) IsZero() bool { return e[0]|e[1]|e[2]|e[3] == 0 }

// IsOne reports whether e is one.
func (e *Element) IsOne() bool { return *e == one }

// Equal reports element equality.
func (e *Element) Equal(x *Element) bool { return *e == *x }

// Rand sets e to a uniform random element.
func (e *Element) Rand() *Element {
	var b [48]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("fp: crypto/rand failure: " + err.Error())
	}
	return e.SetBigInt(new(big.Int).SetBytes(b[:]))
}

func lessThanModulus(c *Element) bool {
	for i := 3; i >= 0; i-- {
		if c[i] != q[i] {
			return c[i] < q[i]
		}
	}
	return false
}

func (e *Element) reduce() {
	if !lessThanModulus(e) {
		var b uint64
		e[0], b = bits.Sub64(e[0], q[0], 0)
		e[1], b = bits.Sub64(e[1], q[1], b)
		e[2], b = bits.Sub64(e[2], q[2], b)
		e[3], _ = bits.Sub64(e[3], q[3], b)
	}
}

// Add sets e = x + y and returns e.
func (e *Element) Add(x, y *Element) *Element {
	var c uint64
	e[0], c = bits.Add64(x[0], y[0], 0)
	e[1], c = bits.Add64(x[1], y[1], c)
	e[2], c = bits.Add64(x[2], y[2], c)
	e[3], _ = bits.Add64(x[3], y[3], c)
	e.reduce()
	return e
}

// Double sets e = 2x and returns e.
func (e *Element) Double(x *Element) *Element { return e.Add(x, x) }

// Sub sets e = x − y and returns e.
func (e *Element) Sub(x, y *Element) *Element {
	var b uint64
	e[0], b = bits.Sub64(x[0], y[0], 0)
	e[1], b = bits.Sub64(x[1], y[1], b)
	e[2], b = bits.Sub64(x[2], y[2], b)
	e[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		e[0], c = bits.Add64(e[0], q[0], 0)
		e[1], c = bits.Add64(e[1], q[1], c)
		e[2], c = bits.Add64(e[2], q[2], c)
		e[3], _ = bits.Add64(e[3], q[3], c)
	}
	return e
}

// Neg sets e = −x and returns e.
func (e *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		*e = Element{}
		return e
	}
	var b uint64
	e[0], b = bits.Sub64(q[0], x[0], 0)
	e[1], b = bits.Sub64(q[1], x[1], b)
	e[2], b = bits.Sub64(q[2], x[2], b)
	e[3], _ = bits.Sub64(q[3], x[3], b)
	return e
}

// Mul sets e = x·y (CIOS Montgomery multiplication) and returns e.
func (e *Element) Mul(x, y *Element) *Element {
	var t [5]uint64
	for i := 0; i < 4; i++ {
		var carry, c uint64
		xi := x[i]
		hi, lo := bits.Mul64(xi, y[0])
		t[0], c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[1])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[2])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[3])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[3], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[4] += carry

		m := t[0] * qInvNeg

		hi, lo = bits.Mul64(m, q[0])
		_, c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q[1])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[0], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q[2])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q[3])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[3], c = bits.Add64(t[4], carry, 0)
		t[4] = c
	}
	e[0], e[1], e[2], e[3] = t[0], t[1], t[2], t[3]
	if t[4] != 0 {
		var b uint64
		e[0], b = bits.Sub64(e[0], q[0], 0)
		e[1], b = bits.Sub64(e[1], q[1], b)
		e[2], b = bits.Sub64(e[2], q[2], b)
		e[3], _ = bits.Sub64(e[3], q[3], b)
	}
	e.reduce()
	return e
}

// Square sets e = x² and returns e.
func (e *Element) Square(x *Element) *Element { return e.Mul(x, x) }

// Inverse sets e = x^{-1} (zero maps to zero) and returns e.
func (e *Element) Inverse(x *Element) *Element {
	if x.IsZero() {
		*e = Element{}
		return e
	}
	exp := new(big.Int).Sub(modulus, big.NewInt(2))
	res := one
	b := *x
	for i := 0; i < exp.BitLen(); i++ {
		if exp.Bit(i) == 1 {
			res.Mul(&res, &b)
		}
		b.Square(&b)
	}
	*e = res
	return e
}
