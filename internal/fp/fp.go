// Package fp implements the BN254 *base* field F_p,
//
//	p = 21888242871839275222246405745257275088696311157297823662689037894645226208583,
//
// used only by the elliptic-curve group that realizes the MSM workload of
// the Libsnark/Bellperson baselines. BatchZK's own protocol works entirely
// in the scalar field (package field); G1 points live over F_p so that the
// curve group has prime order r and scalar arithmetic mod r is the honest
// group exponent arithmetic.
//
// The representation mirrors package field (4×64-limb Montgomery form).
// The hot paths are the same fully unrolled no-carry CIOS multiply,
// dedicated squaring, and fixed-chain Fermat inversion as package field —
// the batch-affine Pippenger buckets in internal/msm hammer these, so the
// base field gets the full ALU-floor treatment too. The hardcoded
// Montgomery constants are re-derived and verified at init time.
package fp

import (
	"crypto/rand"
	"encoding/binary"
	"math/big"
	"math/bits"
)

// Element is an F_p element in Montgomery form (little-endian limbs).
type Element [4]uint64

// Limbs of the modulus p (little-endian) and the Montgomery constant
// -p⁻¹ mod 2⁶⁴, hardcoded so the unrolled code reads immediates instead
// of globals; init re-derives and verifies them against the decimal p.
const (
	q0 uint64 = 0x3c208c16d87cfd47
	q1 uint64 = 0x97816a916871ca8d
	q2 uint64 = 0xb85045b68181585d
	q3 uint64 = 0x30644e72e131a029

	qInvNeg uint64 = 0x87d20782e4866389
)

var (
	// modulus is p as a big integer.
	modulus, _ = new(big.Int).SetString(
		"21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)

	rSquare Element // R² mod p
	one     Element // R mod p

	// pMinusTwo is the Fermat exponent p−2 as little-endian limbs
	// (p is odd with q0 ending …47, so only the low limb changes).
	pMinusTwo = [4]uint64{q0 - 2, q1, q2, q3}
)

func init() {
	words := modulus.Bits()
	for i, want := range [4]uint64{q0, q1, q2, q3} {
		if uint64(words[i]) != want {
			panic("fp: hardcoded modulus limb disagrees with decimal p")
		}
	}
	// Newton iteration for the 64-bit Montgomery constant.
	inv := q0
	for i := 0; i < 5; i++ {
		inv *= 2 - q0*inv
	}
	if -inv != qInvNeg {
		panic("fp: hardcoded qInvNeg disagrees with Newton derivation")
	}

	setFromBig := func(dst *Element, v *big.Int) {
		var t big.Int
		t.Mod(v, modulus)
		*dst = Element{}
		for i, w := range t.Bits() {
			if i < 4 {
				dst[i] = uint64(w)
			}
		}
	}
	R := new(big.Int).Lsh(big.NewInt(1), 256)
	setFromBig(&one, R)
	R2 := new(big.Int).Mul(R, R)
	setFromBig(&rSquare, R2)
}

// Modulus returns a copy of p.
func Modulus() *big.Int { return new(big.Int).Set(modulus) }

// One returns the multiplicative identity.
func One() Element { return one }

// NewElement returns v as a field element.
func NewElement(v uint64) Element {
	var e Element
	e.SetUint64(v)
	return e
}

// SetUint64 sets e to v and returns e.
func (e *Element) SetUint64(v uint64) *Element {
	*e = Element{v}
	return e.Mul(e, &rSquare)
}

// SetBigInt sets e to v mod p and returns e.
func (e *Element) SetBigInt(v *big.Int) *Element {
	var t big.Int
	t.Mod(v, modulus)
	*e = Element{}
	for i, w := range t.Bits() {
		if i < 4 {
			e[i] = uint64(w)
		}
	}
	return e.Mul(e, &rSquare)
}

// BigInt returns the canonical value of e.
func (e *Element) BigInt() *big.Int {
	var c Element
	c.Mul(e, &Element{1})
	b := make([]byte, 32)
	binary.BigEndian.PutUint64(b[0:8], c[3])
	binary.BigEndian.PutUint64(b[8:16], c[2])
	binary.BigEndian.PutUint64(b[16:24], c[1])
	binary.BigEndian.PutUint64(b[24:32], c[0])
	return new(big.Int).SetBytes(b)
}

// IsZero reports whether e is zero.
func (e *Element) IsZero() bool { return e[0]|e[1]|e[2]|e[3] == 0 }

// IsOne reports whether e is one.
func (e *Element) IsOne() bool { return *e == one }

// Equal reports element equality.
func (e *Element) Equal(x *Element) bool { return *e == *x }

// Rand sets e to a uniform random element.
func (e *Element) Rand() *Element {
	var b [48]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("fp: crypto/rand failure: " + err.Error())
	}
	return e.SetBigInt(new(big.Int).SetBytes(b[:]))
}

func lessThanModulus(c *Element) bool {
	if c[3] != q3 {
		return c[3] < q3
	}
	if c[2] != q2 {
		return c[2] < q2
	}
	if c[1] != q1 {
		return c[1] < q1
	}
	return c[0] < q0
}

func (e *Element) reduce() {
	if !lessThanModulus(e) {
		var b uint64
		e[0], b = bits.Sub64(e[0], q0, 0)
		e[1], b = bits.Sub64(e[1], q1, b)
		e[2], b = bits.Sub64(e[2], q2, b)
		e[3], _ = bits.Sub64(e[3], q3, b)
	}
}

// Add sets e = x + y and returns e.
func (e *Element) Add(x, y *Element) *Element {
	var c uint64
	e[0], c = bits.Add64(x[0], y[0], 0)
	e[1], c = bits.Add64(x[1], y[1], c)
	e[2], c = bits.Add64(x[2], y[2], c)
	e[3], _ = bits.Add64(x[3], y[3], c)
	e.reduce()
	return e
}

// Double sets e = 2x and returns e.
func (e *Element) Double(x *Element) *Element { return e.Add(x, x) }

// Sub sets e = x − y and returns e.
func (e *Element) Sub(x, y *Element) *Element {
	var b uint64
	e[0], b = bits.Sub64(x[0], y[0], 0)
	e[1], b = bits.Sub64(x[1], y[1], b)
	e[2], b = bits.Sub64(x[2], y[2], b)
	e[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		e[0], c = bits.Add64(e[0], q0, 0)
		e[1], c = bits.Add64(e[1], q1, c)
		e[2], c = bits.Add64(e[2], q2, c)
		e[3], _ = bits.Add64(e[3], q3, c)
	}
	return e
}

// Neg sets e = −x and returns e.
func (e *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		*e = Element{}
		return e
	}
	var b uint64
	e[0], b = bits.Sub64(q0, x[0], 0)
	e[1], b = bits.Sub64(q1, x[1], b)
	e[2], b = bits.Sub64(q2, x[2], b)
	e[3], _ = bits.Sub64(q3, x[3], b)
	return e
}

// madd0 returns the high limb of a·b + c (the low limb is the cancelled
// Montgomery limb).
func madd0(a, b, c uint64) (hi uint64) {
	var carry, lo uint64
	hi, lo = bits.Mul64(a, b)
	_, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd1 returns a·b + c as (hi, lo).
func madd1(a, b, c uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd2 returns a·b + c + d as (hi, lo).
func madd2(a, b, c, d uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd3 returns a·b + c + d + e·2⁶⁴ as (hi, lo).
func madd3(a, b, c, d, e uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return
}

// Mul sets e = x·y and returns e: the same fully unrolled no-carry CIOS
// as the scalar field (p's top limb is also < 2⁶², so the four-limb
// lazy-reduction window applies).
func (e *Element) Mul(x, y *Element) *Element {
	var t0, t1, t2, t3 uint64
	var c0, c1, c2 uint64
	{
		// round 0
		v := x[0]
		c1, c0 = bits.Mul64(v, y[0])
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd1(v, y[1], c1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd1(v, y[2], c1)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd1(v, y[3], c1)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 1
		v := x[1]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 2
		v := x[2]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 3
		v := x[3]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	e[0], e[1], e[2], e[3] = t0, t1, t2, t3
	e.reduce()
	return e
}

// MulGeneric sets e = x·y with the loop-based CIOS the unrolled Mul
// replaced; retained as the differential-test and bench baseline.
func MulGeneric(e, x, y *Element) *Element {
	q := [4]uint64{q0, q1, q2, q3}
	var t [5]uint64
	for i := 0; i < 4; i++ {
		var carry, c uint64
		xi := x[i]
		hi, lo := bits.Mul64(xi, y[0])
		t[0], c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[1])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[2])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[3])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[3], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[4] += carry

		m := t[0] * qInvNeg

		hi, lo = bits.Mul64(m, q[0])
		_, c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q[1])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[0], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q[2])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q[3])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[3], c = bits.Add64(t[4], carry, 0)
		t[4] = c
	}
	e[0], e[1], e[2], e[3] = t[0], t[1], t[2], t[3]
	if t[4] != 0 {
		var b uint64
		e[0], b = bits.Sub64(e[0], q[0], 0)
		e[1], b = bits.Sub64(e[1], q[1], b)
		e[2], b = bits.Sub64(e[2], q[2], b)
		e[3], _ = bits.Sub64(e[3], q[3], b)
	}
	e.reduce()
	return e
}

// Square sets e = x² and returns e, sharing the six symmetric partial
// products instead of delegating to Mul (see field.Element.Square for the
// carry analysis; p has the same two spare top bits as r).
func (e *Element) Square(x *Element) *Element {
	var p1, p2, p3, p4, p5, p6, p7 uint64
	var c uint64
	h01, l01 := bits.Mul64(x[0], x[1])
	h02, l02 := bits.Mul64(x[0], x[2])
	h03, l03 := bits.Mul64(x[0], x[3])
	h12, l12 := bits.Mul64(x[1], x[2])
	h13, l13 := bits.Mul64(x[1], x[3])
	h23, l23 := bits.Mul64(x[2], x[3])

	p1 = l01
	p2, c = bits.Add64(h01, l02, 0)
	p3, c = bits.Add64(h02, l03, c)
	p4, c = bits.Add64(h03, h12, c)
	p5, c = bits.Add64(h13, l23, c)
	p6, c = bits.Add64(h23, 0, c)
	_ = c
	p3, c = bits.Add64(p3, l12, 0)
	p4, c = bits.Add64(p4, l13, c)
	p5, c = bits.Add64(p5, 0, c)
	p6, c = bits.Add64(p6, 0, c)
	p7 = c

	p7 = p7<<1 | p6>>63
	p6 = p6<<1 | p5>>63
	p5 = p5<<1 | p4>>63
	p4 = p4<<1 | p3>>63
	p3 = p3<<1 | p2>>63
	p2 = p2<<1 | p1>>63
	p1 <<= 1

	var t [8]uint64
	var d uint64
	hi, lo := bits.Mul64(x[0], x[0])
	t[0] = lo
	t[1], d = bits.Add64(p1, hi, 0)
	hi, lo = bits.Mul64(x[1], x[1])
	t[2], d = bits.Add64(p2, lo, d)
	t[3], d = bits.Add64(p3, hi, d)
	hi, lo = bits.Mul64(x[2], x[2])
	t[4], d = bits.Add64(p4, lo, d)
	t[5], d = bits.Add64(p5, hi, d)
	hi, lo = bits.Mul64(x[3], x[3])
	t[6], d = bits.Add64(p6, lo, d)
	t[7], _ = bits.Add64(p7, hi, d)

	{
		m := t[0] * qInvNeg
		cc := madd0(m, q0, t[0])
		cc, t[1] = madd2(m, q1, cc, t[1])
		cc, t[2] = madd2(m, q2, cc, t[2])
		cc, t[3] = madd2(m, q3, cc, t[3])
		t[4], d = bits.Add64(t[4], cc, 0)
		t[5], d = bits.Add64(t[5], 0, d)
		t[6], d = bits.Add64(t[6], 0, d)
		t[7], _ = bits.Add64(t[7], 0, d)
	}
	{
		m := t[1] * qInvNeg
		cc := madd0(m, q0, t[1])
		cc, t[2] = madd2(m, q1, cc, t[2])
		cc, t[3] = madd2(m, q2, cc, t[3])
		cc, t[4] = madd2(m, q3, cc, t[4])
		t[5], d = bits.Add64(t[5], cc, 0)
		t[6], d = bits.Add64(t[6], 0, d)
		t[7], _ = bits.Add64(t[7], 0, d)
	}
	{
		m := t[2] * qInvNeg
		cc := madd0(m, q0, t[2])
		cc, t[3] = madd2(m, q1, cc, t[3])
		cc, t[4] = madd2(m, q2, cc, t[4])
		cc, t[5] = madd2(m, q3, cc, t[5])
		t[6], d = bits.Add64(t[6], cc, 0)
		t[7], _ = bits.Add64(t[7], 0, d)
	}
	{
		m := t[3] * qInvNeg
		cc := madd0(m, q0, t[3])
		cc, t[4] = madd2(m, q1, cc, t[4])
		cc, t[5] = madd2(m, q2, cc, t[5])
		cc, t[6] = madd2(m, q3, cc, t[6])
		t[7], _ = bits.Add64(t[7], cc, 0)
	}
	e[0], e[1], e[2], e[3] = t[4], t[5], t[6], t[7]
	e.reduce()
	return e
}

// Inverse sets e = x⁻¹ = x^{p−2} (zero maps to zero) and returns e,
// using the same fixed 4-bit-window chain over hardcoded exponent limbs
// as field.Element.Inverse — no big.Int, no allocation.
func (e *Element) Inverse(x *Element) *Element {
	if x.IsZero() {
		*e = Element{}
		return e
	}
	var tbl [15]Element // tbl[i] = x^{i+1}
	tbl[0] = *x
	tbl[1].Square(x)
	for i := 2; i < 15; i++ {
		tbl[i].Mul(&tbl[i-1], x)
	}
	res := one
	started := false
	for w := 3; w >= 0; w-- {
		limb := pMinusTwo[w]
		for s := 60; s >= 0; s -= 4 {
			if started {
				res.Square(&res)
				res.Square(&res)
				res.Square(&res)
				res.Square(&res)
			}
			if nib := (limb >> uint(s)) & 0xf; nib != 0 {
				res.Mul(&res, &tbl[nib-1])
				started = true
			}
		}
	}
	*e = res
	return e
}

// BatchInverseWithScratch sets dst[i] = v[i]⁻¹ for all i with Montgomery's
// trick — one inversion plus 3(n−1) multiplications — through a caller-
// provided prefix buffer (len(scratch) ≥ len(v)), so the batch-affine MSM
// bucket loop can run allocation-free. Zero entries invert to zero and do
// not disturb the others. dst and v may alias; scratch must not alias
// either and is clobbered.
func BatchInverseWithScratch(dst, v, scratch []Element) {
	if len(dst) != len(v) {
		panic("fp: BatchInverse length mismatch")
	}
	n := len(v)
	if n == 0 {
		return
	}
	if len(scratch) < n {
		panic("fp: BatchInverse scratch too short")
	}
	prefix := scratch[:n]
	acc := one
	for i := 0; i < n; i++ {
		prefix[i] = acc
		if !v[i].IsZero() {
			acc.Mul(&acc, &v[i])
		}
	}
	var inv Element
	inv.Inverse(&acc)
	for i := n - 1; i >= 0; i-- {
		if v[i].IsZero() {
			dst[i] = Element{}
			continue
		}
		vi := v[i] // copy before overwriting when aliased
		dst[i].Mul(&inv, &prefix[i])
		inv.Mul(&inv, &vi)
	}
}
