package fp

import (
	"math/big"
	"math/rand"
	"testing"
)

func randElem(r *rand.Rand) Element {
	var e Element
	e.SetBigInt(new(big.Int).Rand(r, Modulus()))
	return e
}

func TestMontgomeryConstants(t *testing.T) {
	// one must round-trip to 1.
	o := One()
	if got := o.BigInt(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("One() = %v", got)
	}
	e := NewElement(12345)
	if got := e.BigInt(); got.Cmp(big.NewInt(12345)) != 0 {
		t.Fatalf("NewElement round trip = %v", got)
	}
}

func TestArithmeticMatchesBigInt(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b := randElem(r), randElem(r)
		var sum, diff, prod Element
		sum.Add(&a, &b)
		diff.Sub(&a, &b)
		prod.Mul(&a, &b)
		mod := Modulus()
		ws := new(big.Int).Add(a.BigInt(), b.BigInt())
		ws.Mod(ws, mod)
		wd := new(big.Int).Sub(a.BigInt(), b.BigInt())
		wd.Mod(wd, mod)
		wp := new(big.Int).Mul(a.BigInt(), b.BigInt())
		wp.Mod(wp, mod)
		if sum.BigInt().Cmp(ws) != 0 || diff.BigInt().Cmp(wd) != 0 || prod.BigInt().Cmp(wp) != 0 {
			t.Fatalf("arithmetic mismatch at trial %d", i)
		}
	}
}

func TestInverseAndNeg(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randElem(r)
	var inv, prod Element
	inv.Inverse(&a)
	prod.Mul(&a, &inv)
	if !prod.IsOne() {
		t.Fatal("a · a^{-1} != 1")
	}
	var z Element
	inv.Inverse(&z)
	if !inv.IsZero() {
		t.Fatal("inverse of zero should be zero")
	}
	var n, s Element
	n.Neg(&a)
	s.Add(&a, &n)
	if !s.IsZero() {
		t.Fatal("a + (-a) != 0")
	}
	n.Neg(&z)
	if !n.IsZero() {
		t.Fatal("-0 != 0")
	}
}

func TestSquareDoubleRand(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randElem(r)
	var sq, mm Element
	sq.Square(&a)
	mm.Mul(&a, &a)
	if !sq.Equal(&mm) {
		t.Fatal("square != self-multiply")
	}
	var d, s Element
	d.Double(&a)
	s.Add(&a, &a)
	if !d.Equal(&s) {
		t.Fatal("double != self-add")
	}
	var e Element
	e.Rand()
	if e.BigInt().Cmp(Modulus()) >= 0 {
		t.Fatal("Rand produced unreduced value")
	}
}
