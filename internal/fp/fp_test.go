package fp

import (
	"math/big"
	"math/rand"
	"testing"
)

func randElem(r *rand.Rand) Element {
	var e Element
	e.SetBigInt(new(big.Int).Rand(r, Modulus()))
	return e
}

func TestMontgomeryConstants(t *testing.T) {
	// one must round-trip to 1.
	o := One()
	if got := o.BigInt(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("One() = %v", got)
	}
	e := NewElement(12345)
	if got := e.BigInt(); got.Cmp(big.NewInt(12345)) != 0 {
		t.Fatalf("NewElement round trip = %v", got)
	}
}

func TestArithmeticMatchesBigInt(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b := randElem(r), randElem(r)
		var sum, diff, prod Element
		sum.Add(&a, &b)
		diff.Sub(&a, &b)
		prod.Mul(&a, &b)
		mod := Modulus()
		ws := new(big.Int).Add(a.BigInt(), b.BigInt())
		ws.Mod(ws, mod)
		wd := new(big.Int).Sub(a.BigInt(), b.BigInt())
		wd.Mod(wd, mod)
		wp := new(big.Int).Mul(a.BigInt(), b.BigInt())
		wp.Mod(wp, mod)
		if sum.BigInt().Cmp(ws) != 0 || diff.BigInt().Cmp(wd) != 0 || prod.BigInt().Cmp(wp) != 0 {
			t.Fatalf("arithmetic mismatch at trial %d", i)
		}
	}
}

func TestInverseAndNeg(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randElem(r)
	var inv, prod Element
	inv.Inverse(&a)
	prod.Mul(&a, &inv)
	if !prod.IsOne() {
		t.Fatal("a · a^{-1} != 1")
	}
	var z Element
	inv.Inverse(&z)
	if !inv.IsZero() {
		t.Fatal("inverse of zero should be zero")
	}
	var n, s Element
	n.Neg(&a)
	s.Add(&a, &n)
	if !s.IsZero() {
		t.Fatal("a + (-a) != 0")
	}
	n.Neg(&z)
	if !n.IsZero() {
		t.Fatal("-0 != 0")
	}
}

// edgeElems mirrors the scalar field's differential edge set: identities,
// values hugging p, limb boundaries, and the Montgomery radix points.
func edgeElems() []Element {
	bigs := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(Modulus(), big.NewInt(1)),
		new(big.Int).Sub(Modulus(), big.NewInt(2)),
		new(big.Int).Rsh(Modulus(), 1),
		new(big.Int).Lsh(big.NewInt(1), 64),
		new(big.Int).Lsh(big.NewInt(1), 128),
		new(big.Int).Lsh(big.NewInt(1), 192),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1)),
		new(big.Int).Mod(new(big.Int).Lsh(big.NewInt(1), 256), Modulus()),
		new(big.Int).Mod(new(big.Int).Lsh(big.NewInt(1), 512), Modulus()),
	}
	out := make([]Element, len(bigs))
	for i, b := range bigs {
		out[i].SetBigInt(b)
	}
	return out
}

// TestMulSquareInverseDifferential pins the unrolled Mul, the dedicated
// Square, and the fixed-chain Inverse against the loop-CIOS reference and
// big.Int over the edge cross product.
func TestMulSquareInverseDifferential(t *testing.T) {
	cases := edgeElems()
	mod := Modulus()
	for i := range cases {
		for j := range cases {
			x, y := cases[i], cases[j]
			var got, ref Element
			got.Mul(&x, &y)
			MulGeneric(&ref, &x, &y)
			if got != ref {
				t.Fatalf("Mul: unrolled != generic for case (%d,%d)", i, j)
			}
			want := new(big.Int).Mul(x.BigInt(), y.BigInt())
			want.Mod(want, mod)
			if got.BigInt().Cmp(want) != 0 {
				t.Fatalf("Mul case (%d,%d): %v, big.Int wants %v", i, j, got.BigInt(), want)
			}
		}
		x := cases[i]
		var sq, sqRef Element
		sq.Square(&x)
		MulGeneric(&sqRef, &x, &x)
		if sq != sqRef {
			t.Fatalf("Square != MulGeneric(x,x) for case %d", i)
		}
		var inv, prod Element
		inv.Inverse(&x)
		if x.IsZero() {
			if !inv.IsZero() {
				t.Fatal("Inverse(0) != 0")
			}
			continue
		}
		prod.Mul(&x, &inv)
		if !prod.IsOne() {
			t.Fatalf("x·x⁻¹ != 1 for case %d", i)
		}
	}
}

// TestBatchInverseWithScratch checks the batch trick against Inverse,
// with zeros mixed in and aliased dst/v.
func TestBatchInverseWithScratch(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n = 33
	v := make([]Element, n)
	for i := range v {
		if i%7 == 3 {
			continue // leave zeros scattered through the batch
		}
		v[i] = randElem(r)
	}
	dst := make([]Element, n)
	scratch := make([]Element, n)
	BatchInverseWithScratch(dst, v, scratch)
	for i := range v {
		var want Element
		want.Inverse(&v[i])
		if dst[i] != want {
			t.Fatalf("batch inverse disagrees with Inverse at %d", i)
		}
	}
	// Aliased: invert in place.
	aliased := append([]Element(nil), v...)
	BatchInverseWithScratch(aliased, aliased, scratch)
	for i := range aliased {
		if aliased[i] != dst[i] {
			t.Fatalf("aliased batch inverse disagrees at %d", i)
		}
	}
}

// TestHotPathZeroAllocations gates the allocation-free contract of the
// base-field hot ops used by the batch-affine MSM buckets.
func TestHotPathZeroAllocations(t *testing.T) {
	var a, b, out Element
	a.Rand()
	b.Rand()
	checks := []struct {
		name string
		fn   func()
	}{
		{"Mul", func() { out.Mul(&a, &b) }},
		{"Square", func() { out.Square(&a) }},
		{"Inverse", func() { out.Inverse(&a) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", c.name, n)
		}
	}
	const size = 64
	v := make([]Element, size)
	for i := range v {
		v[i].Rand()
	}
	dst := make([]Element, size)
	scratch := make([]Element, size)
	if n := testing.AllocsPerRun(20, func() {
		BatchInverseWithScratch(dst, v, scratch)
	}); n != 0 {
		t.Errorf("BatchInverseWithScratch allocates %.1f times per call, want 0", n)
	}
}

func BenchmarkMul(b *testing.B) {
	var x, y Element
	x.Rand()
	y.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(&x, &y)
	}
}

func BenchmarkMulGeneric(b *testing.B) {
	var x, y Element
	x.Rand()
	y.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulGeneric(&x, &x, &y)
	}
}

func BenchmarkSquare(b *testing.B) {
	var x Element
	x.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Square(&x)
	}
}

func BenchmarkInverse(b *testing.B) {
	var x, out Element
	x.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Inverse(&x)
	}
}

func TestSquareDoubleRand(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randElem(r)
	var sq, mm Element
	sq.Square(&a)
	mm.Mul(&a, &a)
	if !sq.Equal(&mm) {
		t.Fatal("square != self-multiply")
	}
	var d, s Element
	d.Double(&a)
	s.Add(&a, &a)
	if !d.Equal(&s) {
		t.Fatal("double != self-add")
	}
	var e Element
	e.Rand()
	if e.BigInt().Cmp(Modulus()) >= 0 {
		t.Fatal("Rand produced unreduced value")
	}
}
