package fp

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzFpArith extends the field-decode fuzz discipline to the base
// field: arbitrary bytes become two mod-p elements and the unrolled
// Mul/Square and the fixed-chain Inverse are checked against the
// loop-based MulGeneric and the big.Int ground truth.
func FuzzFpArith(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(Modulus().Bytes())
	f.Add([]byte{7}) // single byte: y reduces to zero
	f.Fuzz(func(t *testing.T, data []byte) {
		half := len(data) / 2
		xi := new(big.Int).Mod(new(big.Int).SetBytes(data[:half]), Modulus())
		yi := new(big.Int).Mod(new(big.Int).SetBytes(data[half:]), Modulus())
		var x, y Element
		x.SetBigInt(xi)
		y.SetBigInt(yi)

		var mul, mulRef Element
		mul.Mul(&x, &y)
		MulGeneric(&mulRef, &x, &y)
		if mul != mulRef {
			t.Fatalf("Mul mismatch: unrolled %v, generic %v", mul.BigInt(), mulRef.BigInt())
		}
		want := new(big.Int).Mul(xi, yi)
		want.Mod(want, Modulus())
		if mul.BigInt().Cmp(want) != 0 {
			t.Fatalf("Mul = %v, big.Int wants %v", mul.BigInt(), want)
		}

		var sq, sqRef Element
		sq.Square(&x)
		MulGeneric(&sqRef, &x, &x)
		if sq != sqRef {
			t.Fatalf("Square mismatch: dedicated %v, generic %v", sq.BigInt(), sqRef.BigInt())
		}

		var inv Element
		inv.Inverse(&x)
		if x.IsZero() {
			if !inv.IsZero() {
				t.Fatal("Inverse(0) != 0")
			}
		} else {
			var p Element
			p.Mul(&x, &inv)
			if !p.IsOne() {
				t.Fatalf("x·x⁻¹ = %v for x = %v", p.BigInt(), x.BigInt())
			}
		}
	})
}
