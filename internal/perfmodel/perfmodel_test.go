package perfmodel

import "testing"

func TestDeviceCatalog(t *testing.T) {
	for _, name := range []string{"V100", "A100", "3090Ti", "H100", "GH200", "c5a.8xlarge", "Grace"} {
		spec, err := DeviceByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := DeviceByName("TPU"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestDeviceOrdering(t *testing.T) {
	// Peak compute (cores × clock) must be ordered as the hardware is:
	// V100 < A100 < 3090Ti < H100 ≤ GH200.
	gpus := GPUs()
	if len(gpus) != 4 {
		t.Fatalf("GPUs() returned %d", len(gpus))
	}
	prev := 0.0
	for _, g := range gpus {
		peak := float64(g.Cores) * g.ClockGHz
		if peak <= prev {
			t.Fatalf("%s peak %.0f not increasing", g.Name, peak)
		}
		prev = peak
	}
	gh := GH200()
	if float64(gh.Cores)*gh.ClockGHz < prev {
		t.Fatal("GH200 should be at least H100-class")
	}
	// PCIe bandwidths follow the generations of Table 9.
	if V100().LinkGBs >= A100().LinkGBs || A100().LinkGBs >= H100().LinkGBs {
		t.Fatal("link bandwidths out of order")
	}
}

func TestCostModels(t *testing.T) {
	gpu, cpu := GPUCosts(), CPUCosts()
	// Per-lane, a GPU thread is slower at wide arithmetic than a 64-bit
	// CPU core — the throughput comes from lane count.
	if gpu.FieldMulCycles <= cpu.FieldMulCycles {
		t.Fatal("GPU per-thread field mul should cost more cycles than CPU")
	}
	if gpu.HashCycles <= cpu.HashCycles {
		t.Fatal("GPU per-thread hash should cost more cycles than CPU (SHA extensions)")
	}
	// Internal consistency: a point op is ≈16 field muls; a butterfly is
	// 1 mul + 2 adds.
	if gpu.PointOpCycles != 16*gpu.FieldMulCycles {
		t.Fatal("GPU point-op cost inconsistent")
	}
	if cpu.ButterflyCycles != cpu.FieldMulCycles+2*cpu.FieldAddCycles {
		t.Fatal("CPU butterfly cost inconsistent")
	}
}

func TestCPUProfiles(t *testing.T) {
	c5a := CPUc5a()
	if c5a.Cores != 32 {
		t.Fatalf("c5a.8xlarge has 32 vCPU, profile says %d", c5a.Cores)
	}
	if c5a.SIMDWidth != 1 {
		t.Fatal("CPU profile should not model warps")
	}
	grace := GraceCPU()
	if grace.Cores != 72 {
		t.Fatalf("Grace has 72 cores, profile says %d", grace.Cores)
	}
}
