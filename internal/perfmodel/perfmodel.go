// Package perfmodel centralizes every calibration constant of the
// reproduction's performance model: the hardware profiles of the GPUs the
// paper evaluates (Table 8) and the CPU baselines run on, and the
// per-operation core-cycle costs of the primitive operations.
//
// Keeping all constants in one auditable place is what separates a model
// from a fudge: the module and system simulations in internal/pipeline and
// internal/baselines combine *real work counts* (hash compressions,
// multiply-adds, bytes moved — measured from the actual Go implementations)
// with these constants and the mechanisms in internal/gpusim. Nothing else
// in the repository contains timing numbers.
package perfmodel

import (
	"fmt"

	"batchzk/internal/gpusim"
)

// OpCosts are per-operation costs in core cycles on one execution lane.
type OpCosts struct {
	// FieldMulCycles is one 254-bit Montgomery multiplication.
	FieldMulCycles float64
	// FieldAddCycles is one 254-bit modular addition.
	FieldAddCycles float64
	// HashCycles is one SHA-256 compression (512→256 bits).
	HashCycles float64
	// PointOpCycles is one elliptic-curve Jacobian add/double
	// (≈16 base-field multiplications).
	PointOpCycles float64
	// ButterflyCycles is one NTT butterfly (1 mul + 2 add).
	ButterflyCycles float64
}

// GPUCosts models a single CUDA thread: 254-bit arithmetic is built from
// 32-bit lanes, so field operations cost far more cycles per thread than
// on a 64-bit CPU core; SHA-256 runs entirely in registers (§3.1).
func GPUCosts() OpCosts {
	return OpCosts{
		FieldMulCycles:  300,
		FieldAddCycles:  40,
		HashCycles:      2500,
		PointOpCycles:   16 * 300,
		ButterflyCycles: 300 + 2*40,
	}
}

// CPUCosts models one x86-64 core with 64-bit multipliers and SHA
// extensions.
func CPUCosts() OpCosts {
	return OpCosts{
		FieldMulCycles:  45,
		FieldAddCycles:  8,
		HashCycles:      250,
		PointOpCycles:   16 * 45,
		ButterflyCycles: 45 + 2*8,
	}
}

const gib = int64(1) << 30

// V100 is the NVIDIA Tesla V100 (5120 CUDA cores, PCIe 3.0 x16) — the
// card the paper's resource-allocation example (§4) and Table 8 use.
func V100() gpusim.DeviceSpec {
	return gpusim.DeviceSpec{
		Name: "V100", Cores: 5120, ClockGHz: 1.53,
		MemBandwidthGBs: 700, LinkGBs: 14, DeviceMemBytes: 32 * gib,
		KernelLaunchNs: 5000, SIMDWidth: 32,
	}
}

// A100 is the NVIDIA A100 (6912 cores, PCIe 4.0 x16).
func A100() gpusim.DeviceSpec {
	return gpusim.DeviceSpec{
		Name: "A100", Cores: 6912, ClockGHz: 1.41,
		MemBandwidthGBs: 1200, LinkGBs: 30, DeviceMemBytes: 40 * gib,
		KernelLaunchNs: 5000, SIMDWidth: 32,
	}
}

// RTX3090Ti is the NVIDIA RTX 3090 Ti (10752 cores, PCIe 4.0 x16) used
// for the paper's utilization study (Figure 9).
func RTX3090Ti() gpusim.DeviceSpec {
	return gpusim.DeviceSpec{
		Name: "3090Ti", Cores: 10752, ClockGHz: 1.86,
		MemBandwidthGBs: 800, LinkGBs: 30, DeviceMemBytes: 24 * gib,
		KernelLaunchNs: 5000, SIMDWidth: 32,
	}
}

// H100 is the NVIDIA H100 (16896 cores, PCIe 5.0 x16).
func H100() gpusim.DeviceSpec {
	return gpusim.DeviceSpec{
		Name: "H100", Cores: 16896, ClockGHz: 1.75,
		MemBandwidthGBs: 2000, LinkGBs: 65, DeviceMemBytes: 80 * gib,
		KernelLaunchNs: 5000, SIMDWidth: 32,
	}
}

// GH200 is the NVIDIA GH200 Grace Hopper Superchip (96 GB device memory,
// 480 GB host memory) — the paper's primary evaluation platform.
func GH200() gpusim.DeviceSpec {
	// LinkGBs reflects the Grace-Hopper NVLink-C2C interconnect (450 GB/s
	// nominal, ~60% achievable); MemBandwidthGBs is the effective HBM3
	// bandwidth for the strided access patterns of the ZKP modules.
	return gpusim.DeviceSpec{
		Name: "GH200", Cores: 16896, ClockGHz: 1.83,
		MemBandwidthGBs: 1200, LinkGBs: 400, DeviceMemBytes: 96 * gib,
		KernelLaunchNs: 5000, SIMDWidth: 32,
	}
}

// CPUc5a is the Amazon EC2 c5a.8xlarge instance (32 vCPU, 64 GB) the
// paper runs its CPU baselines on. The published baselines (Orion,
// Arkworks, Libsnark) are single-threaded; callers model that by passing
// Threads: 1 in the run options.
func CPUc5a() gpusim.DeviceSpec {
	return gpusim.DeviceSpec{
		Name: "c5a.8xlarge", Cores: 32, ClockGHz: 3.3,
		MemBandwidthGBs: 50, LinkGBs: 50, DeviceMemBytes: 64 * gib,
		KernelLaunchNs: 0, SIMDWidth: 1,
	}
}

// GraceCPU is the 72-core Arm CPU of the GH200 platform.
func GraceCPU() gpusim.DeviceSpec {
	return gpusim.DeviceSpec{
		Name: "Grace", Cores: 72, ClockGHz: 3.1,
		MemBandwidthGBs: 300, LinkGBs: 65, DeviceMemBytes: 480 * gib,
		KernelLaunchNs: 0, SIMDWidth: 1,
	}
}

// GPUs returns the evaluation GPUs in the order of the paper's Table 8.
func GPUs() []gpusim.DeviceSpec {
	return []gpusim.DeviceSpec{V100(), A100(), RTX3090Ti(), H100()}
}

// DeviceByName resolves a device profile by its table name.
func DeviceByName(name string) (gpusim.DeviceSpec, error) {
	all := append(GPUs(), GH200(), CPUc5a(), GraceCPU())
	for _, d := range all {
		if d.Name == name {
			return d, nil
		}
	}
	return gpusim.DeviceSpec{}, fmt.Errorf("perfmodel: unknown device %q", name)
}

// FieldBytes is the storage size of one field element.
const FieldBytes = 32

// HashBlockBytes / HashDigestBytes are the SHA-256 I/O sizes.
const (
	HashBlockBytes  = 64
	HashDigestBytes = 32
)
