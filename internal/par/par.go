// Package par is the host-side data-parallel kernel runtime of the
// reproduction — the multicore analogue of the paper's premise (§3) that
// the prover's modules decompose into independent data-parallel kernels
// that can saturate the hardware. Every hot kernel (merkle, encoder,
// sumcheck, ntt, pcs, msm) funnels its elementwise loops through this
// package instead of spawning bespoke goroutines.
//
// The runtime is a single shared pool of worker goroutines sized by
// SetWidth (default GOMAXPROCS) plus the calling goroutine itself: a
// caller always executes the first chunk inline and then helps drain the
// shared task queue while waiting, so nested parallel kernels (a parallel
// encoder inside a parallel PCS commit, itself inside a sched.Graph stage
// worker) degrade gracefully to inline execution instead of deadlocking
// or oversubscribing the machine. A saturated queue likewise falls back
// to inline execution, bounding the total goroutine count at
// width-1 pool workers regardless of how many kernels run concurrently.
//
// Determinism contract: For/ForChunks split [0, n) into chunks with
// boundaries that are a pure function of (width, n). Kernels that reduce
// must accumulate per-chunk partials indexed by chunk and combine them in
// chunk order. Field arithmetic is exact, so any kernel that follows this
// discipline is bit-identical to its serial form — the property the
// parallel-vs-serial tests in every kernel package enforce.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// taskQueueCap bounds the shared task queue; dispatch falls back to
// inline execution when the queue is full, so the cap only trades
// scheduling slack against memory.
const taskQueueCap = 256

var (
	// tasks is the shared work queue every pool worker and every helping
	// caller drains.
	tasks = make(chan func(), taskQueueCap)

	// width is the configured parallel width (pool workers + the caller).
	width atomic.Int64

	// mu guards the worker set against concurrent SetWidth calls.
	mu    sync.Mutex
	quits []chan struct{}

	// Dispatch counters, bumped once per ForChunks call (never per
	// element), so instrumented benchmarks can attribute measured kernel
	// time to items processed and detect inline fallbacks. See Stats.
	statCalls  atomic.Int64
	statItems  atomic.Int64
	statChunks atomic.Int64
	statInline atomic.Int64
)

// RuntimeStats is a snapshot of the runtime's cumulative dispatch
// counters since process start (or the last ResetStats).
type RuntimeStats struct {
	// Calls counts ForChunks invocations (every For/ForWidth/ForScratch
	// call funnels through ForChunks).
	Calls int64 `json:"calls"`
	// Items counts total loop items across all calls — the denominator
	// of a ns/element attribution.
	Items int64 `json:"items"`
	// Chunks counts chunks dispatched (including the caller's chunk 0).
	Chunks int64 `json:"chunks"`
	// Inline counts chunks executed on the calling goroutine: chunk 0 of
	// every call plus queue-saturation fallbacks. Inline == Chunks means
	// the runtime is effectively serial (width 1 or fully saturated).
	Inline int64 `json:"inline"`
}

// Stats returns the cumulative dispatch counters.
func Stats() RuntimeStats {
	return RuntimeStats{
		Calls:  statCalls.Load(),
		Items:  statItems.Load(),
		Chunks: statChunks.Load(),
		Inline: statInline.Load(),
	}
}

// Delta returns s minus prev, for windowed attribution around one
// measured region.
func (s RuntimeStats) Delta(prev RuntimeStats) RuntimeStats {
	return RuntimeStats{
		Calls:  s.Calls - prev.Calls,
		Items:  s.Items - prev.Items,
		Chunks: s.Chunks - prev.Chunks,
		Inline: s.Inline - prev.Inline,
	}
}

// ResetStats zeroes the dispatch counters.
func ResetStats() {
	statCalls.Store(0)
	statItems.Store(0)
	statChunks.Store(0)
	statInline.Store(0)
}

func init() {
	SetWidth(0)
}

// SetWidth resizes the runtime to w-way parallelism (w-1 pool workers
// plus the calling goroutine); w <= 0 restores the GOMAXPROCS default.
// Width 1 makes every kernel run serially inline. Safe to call at any
// time; in-flight chunks finish on whichever goroutine picked them up.
func SetWidth(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	mu.Lock()
	defer mu.Unlock()
	width.Store(int64(w))
	for len(quits) < w-1 {
		q := make(chan struct{})
		quits = append(quits, q)
		go worker(q)
	}
	for len(quits) > w-1 {
		q := quits[len(quits)-1]
		quits = quits[:len(quits)-1]
		close(q)
	}
}

// Width reports the current parallel width.
func Width() int { return int(width.Load()) }

func worker(quit chan struct{}) {
	for {
		select {
		case <-quit:
			return
		case t := <-tasks:
			t()
		}
	}
}

// Chunks returns the number of chunks ForChunks will split n items into
// at the given width (0 = current default width): min(width, n), at
// least 1. Chunk boundaries are c*n/k .. (c+1)*n/k — a pure function of
// (width, n), which is what makes parallel reductions deterministic.
func Chunks(w, n int) int {
	if w <= 0 {
		w = Width()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForChunks splits [0, n) into Chunks(width, n) deterministic chunks and
// runs fn once per chunk, concurrently up to the runtime width. fn
// receives the chunk index (for ordered partial reductions) and the
// half-open item range. The call returns when every chunk has finished.
// The caller executes chunk 0 itself and helps drain the shared queue
// while waiting, so ForChunks may be nested freely.
func ForChunks(width, n int, fn func(chunk, lo, hi int)) {
	k := Chunks(width, n)
	statCalls.Add(1)
	statItems.Add(int64(n))
	statChunks.Add(int64(k))
	if k <= 1 {
		statInline.Add(1)
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	statInline.Add(1) // the caller's chunk 0 below
	var pending atomic.Int64
	pending.Store(int64(k - 1))
	done := make(chan struct{})
	for c := 1; c < k; c++ {
		c := c
		t := func() {
			fn(c, c*n/k, (c+1)*n/k)
			if pending.Add(-1) == 0 {
				close(done)
			}
		}
		select {
		case tasks <- t:
		default:
			// Queue saturated (deep nesting or many concurrent kernels):
			// run the chunk inline rather than blocking or growing.
			statInline.Add(1)
			t()
		}
	}
	fn(0, 0, n/k)
	for {
		select {
		case <-done:
			return
		case t := <-tasks:
			// Help: execute queued chunks (ours or another kernel's)
			// instead of idling, so a fully busy pool cannot deadlock
			// nested kernels.
			t()
		}
	}
}

// For runs fn over [0, n) in deterministic chunks at the default width.
func For(n int, fn func(lo, hi int)) {
	ForChunks(0, n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForWidth is For with an explicit chunk-count cap, for kernels that must
// bound their own fan-out (e.g. msm's workers parameter) or tests that
// pin the split.
func ForWidth(width, n int, fn func(lo, hi int)) {
	ForChunks(width, n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForScratch is For with a per-chunk scratch arena: each chunk borrows a
// Scratch from the shared pool for its duration, so kernels can reuse
// []field.Element / []sha2.Digest buffers and Hasher state without
// allocating per call.
func ForScratch(width, n int, fn func(s *Scratch, lo, hi int)) {
	ForChunks(width, n, func(_, lo, hi int) {
		s := GetScratch()
		fn(s, lo, hi)
		PutScratch(s)
	})
}
