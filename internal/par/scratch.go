package par

import (
	"sync"

	"batchzk/internal/field"
	"batchzk/internal/sha2"
)

// Scratch is a per-worker arena of reusable kernel buffers: slot-indexed
// []field.Element buffers, a []sha2.Digest buffer, and an incremental
// SHA-256 hasher. Buffers grow monotonically and are never shrunk, so a
// steady-state kernel loop performs zero heap allocations.
//
// A Scratch is not safe for concurrent use; borrow one per goroutine via
// GetScratch/PutScratch (or let ForScratch do it per chunk).
type Scratch struct {
	elems   [][]field.Element
	digests []sha2.Digest
	h       sha2.Hasher
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a scratch arena from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch arena to the pool. The caller must not
// retain any buffer obtained from it.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// Elements returns a length-n element buffer in the given slot, reusing
// the slot's capacity. Contents are unspecified — use ZeroElements for a
// cleared accumulator. Distinct slots are distinct buffers, so a kernel
// needing several live buffers at once uses one slot per buffer.
func (s *Scratch) Elements(slot, n int) []field.Element {
	for len(s.elems) <= slot {
		s.elems = append(s.elems, nil)
	}
	if cap(s.elems[slot]) < n {
		s.elems[slot] = make([]field.Element, n)
	}
	return s.elems[slot][:n]
}

// ZeroElements is Elements with the returned buffer cleared.
func (s *Scratch) ZeroElements(slot, n int) []field.Element {
	out := s.Elements(slot, n)
	for i := range out {
		out[i] = field.Element{}
	}
	return out
}

// Digests returns a length-n digest buffer, reusing capacity. Contents
// are unspecified.
func (s *Scratch) Digests(n int) []sha2.Digest {
	if cap(s.digests) < n {
		s.digests = make([]sha2.Digest, n)
	}
	return s.digests[:n]
}

// Hasher returns the arena's SHA-256 hasher, reset to the initial state.
// Reusing it across items avoids the per-item sha2.NewHasher allocation
// that used to dominate column hashing.
func (s *Scratch) Hasher() *sha2.Hasher {
	s.h.Reset()
	return &s.h
}

// BatchInverse is field.BatchInverseWithScratch with the prefix buffer
// drawn from the arena (slot 7, reserved), so hot loops invert vectors
// without allocating.
func (s *Scratch) BatchInverse(dst, v []field.Element) {
	field.BatchInverseWithScratch(dst, v, s.Elements(7, len(v)))
}
