package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"batchzk/internal/field"
)

// coverExactlyOnce checks that a For-style call visits every index in
// [0, n) exactly once.
func coverExactlyOnce(t *testing.T, n int, run func(mark func(i int))) {
	t.Helper()
	hits := make([]int32, n)
	run(func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 1023} {
		coverExactlyOnce(t, n, func(mark func(int)) {
			For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					mark(i)
				}
			})
		})
	}
}

func TestForWidthCoversRange(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 17, 256} {
			coverExactlyOnce(t, n, func(mark func(int)) {
				ForWidth(w, n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						mark(i)
					}
				})
			})
		}
	}
}

func TestChunksDeterministic(t *testing.T) {
	if Chunks(4, 0) != 1 || Chunks(4, 1) != 1 {
		t.Fatal("tiny inputs must collapse to one chunk")
	}
	if Chunks(4, 3) != 3 {
		t.Fatal("chunk count must not exceed n")
	}
	if Chunks(4, 100) != 4 {
		t.Fatal("chunk count must equal the requested width")
	}
	// Pinning property the kernels rely on: Chunks(k, n) == k for k ≤ n.
	for _, n := range []int{8, 100, 1 << 12} {
		for w := 1; w <= 8; w++ {
			k := Chunks(w, n)
			if Chunks(k, n) != k {
				t.Fatalf("Chunks not idempotent at w=%d n=%d", w, n)
			}
		}
	}
}

func TestForChunksBoundaries(t *testing.T) {
	// Boundaries must be c*n/k .. (c+1)*n/k — a pure function of (k, n).
	n, k := 103, 7
	type span struct{ lo, hi int }
	got := make([]span, k)
	ForChunks(k, n, func(c, lo, hi int) { got[c] = span{lo, hi} })
	for c := 0; c < k; c++ {
		want := span{c * n / k, (c + 1) * n / k}
		if got[c] != want {
			t.Fatalf("chunk %d: got [%d,%d) want [%d,%d)", c, got[c].lo, got[c].hi, want.lo, want.hi)
		}
	}
}

func TestOrderedReductionDeterministic(t *testing.T) {
	// A chunk-ordered partial reduction must be bit-identical across
	// widths: field addition is exact, so only the combining order could
	// differ, and the contract pins it.
	v := field.RandVector(999)
	sum := func(w int) field.Element {
		k := Chunks(w, len(v))
		partials := make([]field.Element, k)
		ForChunks(k, len(v), func(c, lo, hi int) {
			var acc field.Element
			for i := lo; i < hi; i++ {
				acc.Add(&acc, &v[i])
			}
			partials[c] = acc
		})
		var total field.Element
		for c := range partials {
			total.Add(&total, &partials[c])
		}
		return total
	}
	want := sum(1)
	for _, w := range []int{2, 3, 4, runtime.GOMAXPROCS(0)} {
		if got := sum(w); !got.Equal(&want) {
			t.Fatalf("width %d reduction differs from serial", w)
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	// Outer parallel loop whose chunks each run an inner parallel loop —
	// the shape of a parallel encoder inside a parallel PCS commit. The
	// caller help-drains the queue, so this must terminate even at width 1.
	var total atomic.Int64
	For(16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(32, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if total.Load() != 16*32 {
		t.Fatalf("nested loops covered %d items, want %d", total.Load(), 16*32)
	}
}

func TestConcurrentKernels(t *testing.T) {
	// Many goroutines issuing parallel loops at once must all complete
	// (saturated queue falls back to inline execution).
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n atomic.Int64
			For(100, func(lo, hi int) { n.Add(int64(hi - lo)) })
			if n.Load() != 100 {
				t.Error("concurrent kernel lost items")
			}
		}()
	}
	wg.Wait()
}

func TestSetWidth(t *testing.T) {
	defer SetWidth(0)
	SetWidth(3)
	if Width() != 3 {
		t.Fatalf("Width() = %d after SetWidth(3)", Width())
	}
	SetWidth(1)
	if Width() != 1 {
		t.Fatalf("Width() = %d after SetWidth(1)", Width())
	}
	coverExactlyOnce(t, 50, func(mark func(int)) {
		For(50, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				mark(i)
			}
		})
	})
	SetWidth(0)
	if Width() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Width() = %d after SetWidth(0), want GOMAXPROCS", Width())
	}
}

func TestScratchBuffers(t *testing.T) {
	s := GetScratch()
	defer PutScratch(s)
	e := s.Elements(0, 100)
	if len(e) != 100 {
		t.Fatalf("Elements length %d", len(e))
	}
	e[0] = field.One()
	z := s.ZeroElements(0, 50)
	for i := range z {
		if !z[i].IsZero() {
			t.Fatalf("ZeroElements left entry %d nonzero", i)
		}
	}
	d := s.Digests(33)
	if len(d) != 33 {
		t.Fatalf("Digests length %d", len(d))
	}
	// Slots must be independent.
	a := s.Elements(1, 10)
	b := s.Elements(2, 10)
	a[0] = field.One()
	if !b[0].IsZero() && &a[0] == &b[0] {
		t.Fatal("scratch slots alias")
	}
}

func TestScratchBatchInverse(t *testing.T) {
	s := GetScratch()
	defer PutScratch(s)
	v := field.RandVector(64)
	v[5] = field.Element{}
	dst := make([]field.Element, len(v))
	s.BatchInverse(dst, v)
	want := make([]field.Element, len(v))
	field.BatchInverse(want, v)
	if !field.VectorEqual(dst, want) {
		t.Fatal("Scratch.BatchInverse differs from field.BatchInverse")
	}
}

func TestForScratchDistinctPerChunk(t *testing.T) {
	// Each concurrent chunk gets its own arena: writes to slot 0 in one
	// chunk must never corrupt another chunk's view. Detect by filling a
	// chunk-specific pattern and re-checking it after a yield point.
	n := 64
	bad := atomic.Int32{}
	ForWidth(8, n, func(lo, hi int) {}) // warm pool
	ForScratch(8, n, func(s *Scratch, lo, hi int) {
		buf := s.Elements(0, 16)
		tag := field.NewElement(uint64(lo + 1))
		for i := range buf {
			buf[i] = tag
		}
		runtime.Gosched()
		for i := range buf {
			if !buf[i].Equal(&tag) {
				bad.Add(1)
			}
		}
	})
	if bad.Load() != 0 {
		t.Fatal("scratch arena shared across concurrent chunks")
	}
}

func TestRuntimeStatsAttribution(t *testing.T) {
	// Use deltas, not absolutes: the counters are cumulative and other
	// tests in the package also drive the runtime.
	SetWidth(1)
	defer SetWidth(0)
	before := Stats()
	For(1000, func(lo, hi int) {})
	d := Stats().Delta(before)
	if d.Calls != 1 || d.Items != 1000 || d.Chunks != 1 || d.Inline != 1 {
		t.Fatalf("serial dispatch counters: %+v", d)
	}

	SetWidth(4)
	before = Stats()
	ForWidth(4, 1000, func(lo, hi int) {})
	d = Stats().Delta(before)
	if d.Calls != 1 || d.Items != 1000 || d.Chunks != 4 {
		t.Fatalf("parallel dispatch counters: %+v", d)
	}
	// The caller always runs chunk 0 inline; saturation fallbacks may
	// push inline higher but never past the chunk count.
	if d.Inline < 1 || d.Inline > d.Chunks {
		t.Fatalf("inline count out of range: %+v", d)
	}
}

func TestRuntimeStatsReset(t *testing.T) {
	For(10, func(lo, hi int) {})
	ResetStats()
	s := Stats()
	if s.Calls != 0 || s.Items != 0 || s.Chunks != 0 || s.Inline != 0 {
		t.Fatalf("counters survived reset: %+v", s)
	}
}
