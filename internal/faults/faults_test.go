package faults

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// TestDrawDeterminism pins the core property: the fault plan is a pure
// function of (seed, class, stage, job, attempt), so two injectors with
// the same seed and rates draw identical faults at identical sites.
func TestDrawDeterminism(t *testing.T) {
	a := NewInjector(42)
	b := NewInjector(42)
	a.EnableAll(0.3)
	b.EnableAll(0.3)
	for job := 0; job < 50; job++ {
		for _, stage := range []string{"commit", "gate-sumcheck", "linear-sumcheck", "opening"} {
			for attempt := 1; attempt <= 3; attempt++ {
				fa := a.Draw(stage, job, attempt)
				fb := b.Draw(stage, job, attempt)
				if (fa == nil) != (fb == nil) {
					t.Fatalf("divergent plan at (%s, %d, %d)", stage, job, attempt)
				}
				if fa != nil && (fa.Class != fb.Class || fa.Delay != fb.Delay) {
					t.Fatalf("divergent fault at (%s, %d, %d): %v vs %v", stage, job, attempt, fa, fb)
				}
			}
		}
	}
	if len(a.Ledger()) == 0 {
		t.Fatal("no faults drawn at rate 0.3 over 600 sites")
	}
}

// TestDrawOrderIndependence verifies the plan does not depend on the
// order sites are visited — the property that makes chaos runs replay
// identically under different goroutine schedules.
func TestDrawOrderIndependence(t *testing.T) {
	forward := NewInjector(7)
	backward := NewInjector(7)
	forward.EnableAll(0.25)
	backward.EnableAll(0.25)
	type site struct {
		stage string
		job   int
	}
	var sites []site
	for job := 0; job < 40; job++ {
		sites = append(sites, site{"commit", job}, site{"opening", job})
	}
	plan := make(map[site]Class)
	for _, s := range sites {
		if f := forward.Draw(s.stage, s.job, 1); f != nil {
			plan[s] = f.Class
		}
	}
	for i := len(sites) - 1; i >= 0; i-- {
		s := sites[i]
		f := backward.Draw(s.stage, s.job, 1)
		want, fired := plan[s]
		if (f == nil) == fired {
			t.Fatalf("site %v: fired=%v in forward order, inverted in backward", s, fired)
		}
		if f != nil && f.Class != want {
			t.Fatalf("site %v: class %s forward, %s backward", s, want, f.Class)
		}
	}
}

// TestRateZeroAndDisabled verifies a nil injector and a rate-0 class
// never fire.
func TestRateZeroAndDisabled(t *testing.T) {
	var nilInj *Injector
	if f := nilInj.Draw("commit", 0, 1); f != nil {
		t.Fatal("nil injector fired")
	}
	in := NewInjector(1)
	in.SetRate(KernelFault, 0.5)
	in.SetRate(KernelFault, 0)
	for job := 0; job < 200; job++ {
		if f := in.Draw("commit", job, 1); f != nil {
			t.Fatalf("disabled class fired at job %d", job)
		}
	}
}

// TestEmpiricalRate checks the firing frequency roughly matches the
// configured rate (law of large numbers over 4000 deterministic sites).
func TestEmpiricalRate(t *testing.T) {
	in := NewInjector(99)
	in.SetRate(KernelFault, 0.2)
	fired := 0
	const n = 4000
	for job := 0; job < n; job++ {
		if in.Draw("stage", job, 1) != nil {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.2) > 0.03 {
		t.Fatalf("empirical rate %.3f, want 0.2±0.03", got)
	}
}

// TestSeverityPriority: when two classes would both fire at a site, the
// more severe one (earlier in Classes()) wins, so each failed attempt is
// attributable to exactly one fault.
func TestSeverityPriority(t *testing.T) {
	in := NewInjector(5)
	in.EnableAll(1.0) // every class always fires
	f := in.Draw("commit", 0, 1)
	if f == nil || f.Class != MemCorruption {
		t.Fatalf("got %v, want MemCorruption (highest severity)", f)
	}
	if len(in.Ledger()) != 1 {
		t.Fatalf("ledger has %d entries, want 1 per site", len(in.Ledger()))
	}
}

// TestForce schedules an unconditional fault at an exact site and checks
// it fires exactly once, there and only there.
func TestForce(t *testing.T) {
	in := NewInjector(3) // no rates: only the forced site can fire
	in.Force(WorkerPanic, "opening", 7, 2)
	if f := in.Draw("opening", 7, 1); f != nil {
		t.Fatalf("fired on wrong attempt: %v", f)
	}
	f := in.Draw("opening", 7, 2)
	if f == nil || f.Class != WorkerPanic {
		t.Fatalf("forced fault = %v, want WorkerPanic", f)
	}
	if g := in.Draw("opening", 7, 2); g != nil {
		t.Fatalf("forced fault fired twice: %v", g)
	}
}

// TestErrorChainAttribution verifies faults behave as errors: errors.Is
// reaches the class sentinel and errors.As recovers the fault with its
// site fields through wrapping.
func TestErrorChainAttribution(t *testing.T) {
	in := NewInjector(1)
	in.Force(MemCorruption, "commit", 3, 1)
	f := in.Draw("commit", 3, 1)
	wrapped := errorsWrap(errorsWrap(f))
	if !errors.Is(wrapped, ErrMemCorruption) {
		t.Fatal("errors.Is lost the class sentinel through wrapping")
	}
	var got *Fault
	if !errors.As(wrapped, &got) {
		t.Fatal("errors.As lost the fault")
	}
	if got.Job != 3 || got.Stage != "commit" || !got.Permanent() {
		t.Fatalf("attribution lost: %+v", got)
	}
}

func errorsWrap(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ err error }

func (w *wrapErr) Error() string { return "layer: " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }

// TestOutcomeLedger checks resolution bookkeeping: single resolutions
// stick, repeated identical resolutions are idempotent, and conflicting
// ones are counted.
func TestOutcomeLedger(t *testing.T) {
	in := NewInjector(1)
	in.Force(KernelFault, "s", 0, 1)
	in.Force(TransferStall, "s", 1, 1)
	a := in.Draw("s", 0, 1)
	b := in.Draw("s", 1, 1)
	a.MarkRecovered()
	a.MarkRecovered() // idempotent
	b.MarkQuarantined()
	st := in.Stats()
	if st.Recovered != 1 || st.Quarantined != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if in.Conflicts() != 0 {
		t.Fatalf("conflicts = %d after idempotent marks", in.Conflicts())
	}
	b.MarkRecovered() // conflicting
	if in.Conflicts() != 1 {
		t.Fatalf("conflicts = %d, want 1", in.Conflicts())
	}
}

// TestStragglerDelayDeterministicAndBounded: delays derive from the site
// hash and stay within the configured bounds.
func TestStragglerDelayDeterministicAndBounded(t *testing.T) {
	min, max := 2*time.Millisecond, 9*time.Millisecond
	mk := func() []time.Duration {
		in := NewInjector(11)
		in.SetRate(Straggler, 1)
		in.SetStragglerDelay(min, max)
		var ds []time.Duration
		for job := 0; job < 20; job++ {
			f := in.Draw("s", job, 1)
			if f == nil || f.Class != Straggler {
				t.Fatalf("job %d: %v", job, f)
			}
			if f.Delay < min || f.Delay > max {
				t.Fatalf("delay %v outside [%v, %v]", f.Delay, min, max)
			}
			ds = append(ds, f.Delay)
		}
		return ds
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestParseSpec covers the chaos-spec grammar and its error cases.
func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("all=0.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f := in.Draw("s", 0, 1); f == nil {
		// With every class at 0.5 the site fires with p = 1-(1/2)^5.
		// Scan a few sites; at least one must fire.
		fired := false
		for job := 1; job < 20 && !fired; job++ {
			fired = in.Draw("s", job, 1) != nil
		}
		if !fired {
			t.Fatal("all=0.5 never fired over 20 sites")
		}
	}
	if _, err := ParseSpec("kernel=0.2, straggler=0.05", 1); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if _, err := ParseSpec("PANIC", 1); err != nil {
		t.Fatalf("case-insensitive class rejected: %v", err)
	}
	for _, bad := range []string{"bogus", "kernel=2", "kernel=-1", "kernel=x"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestConcurrentDrawSafety hammers Draw and resolution from many
// goroutines under -race.
func TestConcurrentDrawSafety(t *testing.T) {
	in := NewInjector(123)
	in.EnableAll(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for job := 0; job < 100; job++ {
				if f := in.Draw("s", g*100+job, 1); f != nil {
					if job%2 == 0 {
						f.MarkRecovered()
					} else {
						f.MarkQuarantined()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := in.Stats()
	if st.Pending != 0 {
		t.Fatalf("%d faults left pending", st.Pending)
	}
	if in.Conflicts() != 0 {
		t.Fatalf("conflicts = %d", in.Conflicts())
	}
	if in.Summary() == "" {
		t.Fatal("empty summary")
	}
}
