// Package faults is the seeded, deterministic fault injector behind the
// reproduction's resilience story. BatchZK positions batch proving as a
// service — millions of users' proofs streaming through one pipeline —
// and at that scale the interesting failures are not crashes but
// stragglers, transient kernel faults, and poisoned jobs that would wedge
// a naive pipeline. The injector lets the three execution layers
// (gpusim devices, core.BatchProver stage workers, pipeline schedules)
// rehearse those failures reproducibly:
//
//   - KernelFault      — a transient kernel-launch failure, retryable;
//   - MemCorruption    — ECC-style uncorrectable device-memory corruption,
//     permanent: the affected job must be quarantined, never retried;
//   - TransferStall    — a PCIe/NVLink transfer stall or timeout, retryable;
//   - WorkerPanic      — a stage-worker panic (host-side), recoverable;
//   - Straggler        — a slow-straggler latency spike: the work succeeds
//     but late, exercising deadlines;
//   - SlowShard        — a sustained device-wide slowdown (thermal
//     throttling, a contended link, a degraded neighbor VM): the work
//     still succeeds but pays a delay an order of magnitude above a
//     straggler spike, exercising the service gateway's deadline path.
//
// Determinism. Whether a fault fires at a site is a pure function of
// (seed, class, stage, job, attempt) — never of goroutine scheduling or
// wall time — so a chaos run replays bit-identically from its seed. Every
// fired fault is recorded in a ledger together with its eventual outcome
// (recovered or quarantined), which the chaos tests reconcile against the
// prover's telemetry counters.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Class names one injectable fault class.
type Class string

// The six fault classes, in the priority order they are drawn (at most
// one fault fires per site; the most severe class wins).
const (
	MemCorruption Class = "mem"
	KernelFault   Class = "kernel"
	TransferStall Class = "transfer"
	WorkerPanic   Class = "panic"
	Straggler     Class = "straggler"
	SlowShard     Class = "slowshard"
)

// Classes lists every fault class in draw-priority order.
func Classes() []Class {
	return []Class{MemCorruption, KernelFault, TransferStall, WorkerPanic, Straggler, SlowShard}
}

// Per-class sentinel errors, so error chains stay attributable with
// errors.Is through every wrapping layer.
var (
	ErrKernelFault   = errors.New("faults: transient kernel failure")
	ErrMemCorruption = errors.New("faults: uncorrectable device-memory corruption")
	ErrTransferStall = errors.New("faults: host-device transfer stall")
	ErrWorkerPanic   = errors.New("faults: stage-worker panic")
	ErrStraggler     = errors.New("faults: straggler latency spike")
	ErrSlowShard     = errors.New("faults: slow shard — sustained device-wide slowdown")
)

func sentinel(c Class) error {
	switch c {
	case KernelFault:
		return ErrKernelFault
	case MemCorruption:
		return ErrMemCorruption
	case TransferStall:
		return ErrTransferStall
	case WorkerPanic:
		return ErrWorkerPanic
	case Straggler:
		return ErrStraggler
	case SlowShard:
		return ErrSlowShard
	}
	return fmt.Errorf("faults: unknown class %q", c)
}

// Outcome is the resolution of one injected fault.
type Outcome int

// Fault outcomes. Every drawn fault must end Recovered or Quarantined —
// the chaos tests assert no fault stays Pending and none is resolved
// twice with conflicting outcomes.
const (
	Pending Outcome = iota
	Recovered
	Quarantined
)

func (o Outcome) String() string {
	switch o {
	case Recovered:
		return "recovered"
	case Quarantined:
		return "quarantined"
	default:
		return "pending"
	}
}

// Fault is one injected fault instance. It implements error (wrapping its
// class sentinel) so it can travel through ordinary error chains.
type Fault struct {
	ID      int
	Class   Class
	Stage   string
	Job     int
	Attempt int
	// Delay is the injected latency for Straggler and SlowShard faults.
	Delay time.Duration

	in *Injector
}

// Error renders the fault with its full site attribution.
func (f *Fault) Error() string {
	return fmt.Sprintf("%v (stage %s, job %d, attempt %d)", sentinel(f.Class), f.Stage, f.Job, f.Attempt)
}

// Unwrap exposes the class sentinel for errors.Is.
func (f *Fault) Unwrap() error { return sentinel(f.Class) }

// Permanent reports whether the fault must not be retried (the job is to
// be quarantined immediately).
func (f *Fault) Permanent() bool { return f.Class == MemCorruption }

// MarkRecovered resolves the fault as recovered in the ledger.
func (f *Fault) MarkRecovered() { f.in.resolve(f.ID, Recovered) }

// MarkQuarantined resolves the fault as quarantined in the ledger.
func (f *Fault) MarkQuarantined() { f.in.resolve(f.ID, Quarantined) }

// Record is one ledger row: a drawn fault and its resolution.
type Record struct {
	Fault   Fault
	Outcome Outcome
}

// Injector decides, deterministically from its seed, which faults fire at
// which (stage, job, attempt) sites, and keeps the ledger of everything
// it injected. All methods are safe for concurrent use.
type Injector struct {
	seed uint64

	mu        sync.Mutex
	rates     map[Class]float64
	forced    map[siteKey]Class
	ledger    []Record
	conflicts int

	stragglerMin time.Duration
	stragglerMax time.Duration
	slowShardMin time.Duration
	slowShardMax time.Duration
}

type siteKey struct {
	stage   string
	job     int
	attempt int
}

// NewInjector returns an injector with no classes enabled.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		seed:         seed,
		rates:        make(map[Class]float64),
		forced:       make(map[siteKey]Class),
		stragglerMin: time.Millisecond,
		stragglerMax: 5 * time.Millisecond,
		slowShardMin: 10 * time.Millisecond,
		slowShardMax: 50 * time.Millisecond,
	}
}

// SetRate enables class c with firing probability rate per site (clamped
// to [0, 1]). A rate of zero disables the class again.
func (in *Injector) SetRate(c Class, rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if rate == 0 {
		delete(in.rates, c)
		return
	}
	in.rates[c] = rate
}

// EnableAll enables every fault class at the same per-site rate.
func (in *Injector) EnableAll(rate float64) {
	for _, c := range Classes() {
		in.SetRate(c, rate)
	}
}

// SetStragglerDelay bounds the injected latency of Straggler faults; the
// exact delay within [min, max] is derived deterministically per site.
func (in *Injector) SetStragglerDelay(min, max time.Duration) {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stragglerMin, in.stragglerMax = min, max
}

// SetSlowShardDelay bounds the injected latency of SlowShard faults; the
// exact delay within [min, max] is derived deterministically per site.
// The defaults (10–50 ms) sit an order of magnitude above the straggler
// range, modeling a shard-wide degradation rather than a one-off spike.
func (in *Injector) SetSlowShardDelay(min, max time.Duration) {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.slowShardMin, in.slowShardMax = min, max
}

// Force schedules class c to fire unconditionally at one exact site,
// regardless of rates — the scripted-fault hook unit tests use to hit a
// specific recovery path.
func (in *Injector) Force(c Class, stage string, job, attempt int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.forced[siteKey{stage, job, attempt}] = c
}

// splitmix64 is the finalizer scrambling a site hash into 64 uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// siteHash folds a fault site into 64 bits, FNV-style, independent of map
// order, goroutine scheduling, or wall time.
func (in *Injector) siteHash(c Class, stage string, job, attempt int) uint64 {
	const fnvOffset = 0xcbf29ce484222325
	const fnvPrime = 0x100000001b3
	h := uint64(fnvOffset) ^ in.seed
	mix := func(b byte) { h = (h ^ uint64(b)) * fnvPrime }
	for i := 0; i < len(c); i++ {
		mix(c[i])
	}
	mix(0)
	for i := 0; i < len(stage); i++ {
		mix(stage[i])
	}
	mix(0)
	for _, v := range [2]uint64{uint64(int64(job)), uint64(int64(attempt))} {
		for s := 0; s < 64; s += 8 {
			mix(byte(v >> s))
		}
	}
	return splitmix64(h)
}

// Draw consults the plan for one execution site. At most one fault fires
// per site: classes are evaluated in severity order (MemCorruption first)
// and the first hit wins, which keeps the ledger accounting exact — every
// failed attempt is attributable to exactly one fault. A nil injector
// never fires.
func (in *Injector) Draw(stage string, job, attempt int) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok := in.forced[siteKey{stage, job, attempt}]; ok {
		delete(in.forced, siteKey{stage, job, attempt})
		return in.recordLocked(c, stage, job, attempt)
	}
	for _, c := range Classes() {
		rate, ok := in.rates[c]
		if !ok {
			continue
		}
		h := in.siteHash(c, stage, job, attempt)
		// Fire iff h < rate·2^64, i.e. with probability rate.
		if float64(h) < rate*float64(1<<63)*2 {
			return in.recordLocked(c, stage, job, attempt)
		}
	}
	return nil
}

func (in *Injector) recordLocked(c Class, stage string, job, attempt int) *Fault {
	f := Fault{
		ID:      len(in.ledger),
		Class:   c,
		Stage:   stage,
		Job:     job,
		Attempt: attempt,
		in:      in,
	}
	if c == Straggler || c == SlowShard {
		lo, hi := in.stragglerMin, in.stragglerMax
		if c == SlowShard {
			lo, hi = in.slowShardMin, in.slowShardMax
		}
		span := hi - lo
		d := lo
		if span > 0 {
			d += time.Duration(in.siteHash("delay/"+Class(c), stage, job, attempt) % uint64(span))
		}
		f.Delay = d
	}
	in.ledger = append(in.ledger, Record{Fault: f})
	return &in.ledger[len(in.ledger)-1].Fault
}

func (in *Injector) resolve(id int, o Outcome) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id < 0 || id >= len(in.ledger) {
		return
	}
	r := &in.ledger[id]
	switch {
	case r.Outcome == Pending:
		r.Outcome = o
	case r.Outcome != o:
		// Conflicting double resolution — a bookkeeping bug the chaos
		// tests assert never happens.
		in.conflicts++
	}
}

// Ledger returns a copy of every drawn fault with its current outcome.
func (in *Injector) Ledger() []Record {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Record, len(in.ledger))
	copy(out, in.ledger)
	return out
}

// Conflicts reports how many faults were resolved twice with different
// outcomes (must be zero in a correct run).
func (in *Injector) Conflicts() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.conflicts
}

// Stats summarizes the ledger per class and outcome.
type Stats struct {
	Injected    map[Class]int
	Recovered   int
	Quarantined int
	Pending     int
}

// Stats tallies the ledger.
func (in *Injector) Stats() Stats {
	s := Stats{Injected: make(map[Class]int)}
	for _, r := range in.Ledger() {
		s.Injected[r.Fault.Class]++
		switch r.Outcome {
		case Recovered:
			s.Recovered++
		case Quarantined:
			s.Quarantined++
		default:
			s.Pending++
		}
	}
	return s
}

// Summary renders the ledger tallies in a stable order, e.g.
// "kernel:3 straggler:2 | recovered:4 quarantined:1 pending:0".
func (in *Injector) Summary() string {
	s := in.Stats()
	classes := make([]string, 0, len(s.Injected))
	for c, n := range s.Injected {
		classes = append(classes, fmt.Sprintf("%s:%d", c, n))
	}
	sort.Strings(classes)
	if len(classes) == 0 {
		classes = append(classes, "none")
	}
	return fmt.Sprintf("%s | recovered:%d quarantined:%d pending:%d",
		strings.Join(classes, " "), s.Recovered, s.Quarantined, s.Pending)
}

// ParseSpec builds an injector from a textual chaos spec:
//
//	"all"                        every class at the default 10% rate
//	"all=0.25"                   every class at 25%
//	"kernel=0.2,straggler=0.05"  selected classes at explicit rates
//	"panic"                      one class at the default rate
//
// The spec is case-insensitive; whitespace around entries is ignored.
func ParseSpec(spec string, seed uint64) (*Injector, error) {
	in := NewInjector(seed)
	const defaultRate = 0.10
	valid := make(map[Class]bool)
	for _, c := range Classes() {
		valid[c] = true
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if part == "" {
			continue
		}
		name, rateStr, hasRate := strings.Cut(part, "=")
		rate := defaultRate
		if hasRate {
			v, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("faults: bad rate %q in spec entry %q (want 0..1)", rateStr, part)
			}
			rate = v
		}
		if name == "all" {
			in.EnableAll(rate)
			continue
		}
		c := Class(name)
		if !valid[c] {
			return nil, fmt.Errorf("faults: unknown fault class %q (want mem, kernel, transfer, panic, straggler, slowshard or all)", name)
		}
		in.SetRate(c, rate)
	}
	return in, nil
}
