package encoder

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
	"batchzk/internal/par"
)

// Parallel-vs-serial bit-identity for the row-parallel sparse multiply:
// every row accumulates its entries in order and rows are chunk-disjoint,
// so the codeword must match the serial one exactly at any width.

func lowerGrain(t *testing.T) {
	t.Helper()
	old := parallelRows
	parallelRows = 1
	t.Cleanup(func() {
		parallelRows = old
		par.SetWidth(0)
	})
}

func TestEncodeBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrain(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 << rng.Intn(3) // 16, 32, 64
		e, err := New(n, DefaultParams())
		if err != nil {
			return false
		}
		x := seededMsg(rng, n)
		var want []field.Element
		for wi, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			par.SetWidth(w)
			got, err := e.Encode(x)
			if err != nil {
				return false
			}
			if wi == 0 {
				want = got
			} else if !field.VectorEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecOddDimsAcrossWidths(t *testing.T) {
	lowerGrain(t)
	// Odd, non-power-of-two dimensions: chunk boundaries fall mid-row-range.
	rng := rand.New(rand.NewSource(77))
	m := sampleMatrix(rng, 37, 23, 2, 7)
	x := seededMsg(rng, 37)
	par.SetWidth(1)
	want, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		par.SetWidth(w)
		got, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		if !field.VectorEqual(got, want) {
			t.Fatalf("width %d: sparse multiply differs from serial", w)
		}
	}
}
