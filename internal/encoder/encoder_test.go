package encoder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
)

func mustEncoder(t testing.TB, n int) *Encoder {
	t.Helper()
	e, err := New(n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := New(0, p); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := New(100, p); err == nil {
		t.Fatal("accepted non-power-of-two n")
	}
	if _, err := New(8, p); err == nil {
		t.Fatal("accepted n below base size")
	}
	bad := p
	bad.BaseSize = 3
	if _, err := New(64, bad); err == nil {
		t.Fatal("accepted non-power-of-two base")
	}
	bad = p
	bad.MaxRowWeightD1 = 300
	if _, err := New(64, bad); err == nil {
		t.Fatal("accepted row weight > 255")
	}
	bad = p
	bad.MinRowWeight = 0
	if _, err := New(64, bad); err == nil {
		t.Fatal("accepted zero min row weight")
	}
}

func TestDimensions(t *testing.T) {
	e := mustEncoder(t, 256)
	if e.MessageLen() != 256 || e.CodewordLen() != 1024 {
		t.Fatalf("lens: %d/%d", e.MessageLen(), e.CodewordLen())
	}
	// 256 → 128 → 64 → 32 → 16(base): 4 stages.
	if e.NumStages() != 4 {
		t.Fatalf("stages = %d", e.NumStages())
	}
	for k, s := range e.Stages() {
		n := 256 >> k
		if s.First.InDim != n || s.First.OutDim != n/2 {
			t.Fatalf("stage %d first dims %d→%d", k, s.First.InDim, s.First.OutDim)
		}
		if s.Second.InDim != 2*n || s.Second.OutDim != n {
			t.Fatalf("stage %d second dims %d→%d", k, s.Second.InDim, s.Second.OutDim)
		}
		for _, row := range s.First.Rows {
			if len(row) == 0 || len(row) > MaxRowWeight {
				t.Fatalf("stage %d first row weight %d", k, len(row))
			}
		}
	}
	msg := field.RandVector(256)
	cw, err := e.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 1024 {
		t.Fatalf("codeword length %d", len(cw))
	}
}

func TestSystematicPrefix(t *testing.T) {
	e := mustEncoder(t, 64)
	msg := field.RandVector(64)
	cw, _ := e.Encode(msg)
	if !field.VectorEqual(cw[:64], msg) {
		t.Fatal("codeword does not start with the message")
	}
}

func TestBaseCase(t *testing.T) {
	p := DefaultParams()
	e, err := New(16, p) // equals base size: zero stages, pure repetition
	if err != nil {
		t.Fatal(err)
	}
	if e.NumStages() != 0 {
		t.Fatalf("stages = %d", e.NumStages())
	}
	msg := field.RandVector(16)
	cw, _ := e.Encode(msg)
	for i := 0; i < RateInv; i++ {
		if !field.VectorEqual(cw[i*16:(i+1)*16], msg) {
			t.Fatalf("repetition block %d mismatch", i)
		}
	}
}

func TestIterativeMatchesRecursive(t *testing.T) {
	for _, n := range []int{16, 32, 128, 512} {
		e := mustEncoder(t, n)
		msg := field.RandVector(n)
		rec, err1 := e.Encode(msg)
		it, err2 := e.EncodeIterative(msg)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !field.VectorEqual(rec, it) {
			t.Fatalf("n=%d: iterative and recursive codewords differ", n)
		}
	}
}

func TestEncodeRejectsWrongLength(t *testing.T) {
	e := mustEncoder(t, 64)
	if _, err := e.Encode(field.RandVector(32)); err == nil {
		t.Fatal("accepted short message")
	}
	if _, err := e.EncodeIterative(field.RandVector(128)); err == nil {
		t.Fatal("iterative accepted long message")
	}
}

func TestLinearity(t *testing.T) {
	e := mustEncoder(t, 128)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := field.NewElement(r.Uint64())
		b := field.NewElement(r.Uint64())
		x := field.RandVector(128)
		y := field.RandVector(128)
		// encode(a·x + b·y) == a·encode(x) + b·encode(y)
		comb := make([]field.Element, 128)
		var t1, t2 field.Element
		for i := range comb {
			t1.Mul(&a, &x[i])
			t2.Mul(&b, &y[i])
			comb[i].Add(&t1, &t2)
		}
		ec, _ := e.Encode(comb)
		ex, _ := e.Encode(x)
		ey, _ := e.Encode(y)
		for i := range ec {
			t1.Mul(&a, &ex[i])
			t2.Mul(&b, &ey[i])
			t1.Add(&t1, &t2)
			if !t1.Equal(&ec[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	p := DefaultParams()
	e1, _ := New(128, p)
	e2, _ := New(128, p)
	msg := field.RandVector(128)
	c1, _ := e1.Encode(msg)
	c2, _ := e2.Encode(msg)
	if !field.VectorEqual(c1, c2) {
		t.Fatal("same seed produced different encoders")
	}
	p.Seed++
	e3, _ := New(128, p)
	c3, _ := e3.Encode(msg)
	if field.VectorEqual(c1, c3) {
		t.Fatal("different seeds produced identical encoders")
	}
}

// TestCachedEncoder: the memoized lookup must return one shared instance
// per (n, params) that encodes bit-identically to a fresh New, distinguish
// parameter sets, and propagate (not cache) construction errors.
func TestCachedEncoder(t *testing.T) {
	p := DefaultParams()
	c1, err := Cached(128, p)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Cached(128, p)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("same (n, params) returned distinct instances")
	}
	fresh, _ := New(128, p)
	msg := field.RandVector(128)
	want, _ := fresh.Encode(msg)
	got, _ := c1.Encode(msg)
	if !field.VectorEqual(want, got) {
		t.Fatal("cached encoder diverges from fresh construction")
	}
	p2 := p
	p2.Seed++
	c3, err := Cached(128, p2)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("different params shared one cache entry")
	}
	if _, err := Cached(3, p); err == nil {
		t.Fatal("invalid length must error through the cache")
	}
	if _, err := Cached(3, p); err == nil {
		t.Fatal("error must repeat, not be cached as success")
	}
}

func TestEmpiricalDistance(t *testing.T) {
	// The code must separate distinct messages by many positions. By
	// linearity it suffices to check the weight of codewords of random
	// nonzero messages, including weight-1 messages (worst case for
	// systematic expander codes).
	e := mustEncoder(t, 128)
	minWeight := e.CodewordLen()
	for trial := 0; trial < 20; trial++ {
		msg := make([]field.Element, 128)
		msg[trial%128] = field.NewElement(uint64(trial + 1)) // weight-1 message
		cw, _ := e.Encode(msg)
		w := 0
		for i := range cw {
			if !cw[i].IsZero() {
				w++
			}
		}
		if w < minWeight {
			minWeight = w
		}
	}
	// A weight-1 message touches ≥ the expander's fan-out of positions;
	// with our densities the empirical minimum comfortably exceeds 5% of
	// the codeword length.
	if minWeight < e.CodewordLen()/20 {
		t.Fatalf("empirical min codeword weight %d of %d is too small", minWeight, e.CodewordLen())
	}
}

func TestRowLengthsAndWork(t *testing.T) {
	e := mustEncoder(t, 64)
	total := 0
	for _, s := range e.Stages() {
		lens := s.First.RowLengths()
		sum := 0
		for _, l := range lens {
			sum += int(l)
		}
		if sum != s.First.NumNonZeros() {
			t.Fatal("RowLengths inconsistent with NumNonZeros")
		}
		total += s.First.NumNonZeros() + s.Second.NumNonZeros()
	}
	if e.WorkNonZeros() != total {
		t.Fatalf("WorkNonZeros = %d, want %d", e.WorkNonZeros(), total)
	}
}

func TestWorkModelConsistency(t *testing.T) {
	// The analytic work model must track the materialized encoder: same
	// stage count, same dimensions, and non-zero totals within the
	// distribution's tolerance (both draw row weights uniformly from the
	// same bounds, so totals should agree within ~10%).
	n := 1 << 10
	params := DefaultParams()
	enc, err := New(n, params)
	if err != nil {
		t.Fatal(err)
	}
	work, err := WorkModel(n, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(work) != enc.NumStages() {
		t.Fatalf("work model has %d stages, encoder %d", len(work), enc.NumStages())
	}
	actualTotal, modelTotal := enc.WorkNonZeros(), 0
	for k, sw := range work {
		if sw.InputLen != n>>k {
			t.Fatalf("stage %d input %d, want %d", k, sw.InputLen, n>>k)
		}
		if len(sw.FirstLens) != enc.Stages()[k].First.OutDim {
			t.Fatalf("stage %d first dims differ", k)
		}
		if len(sw.SecondLens) != enc.Stages()[k].Second.OutDim {
			t.Fatalf("stage %d second dims differ", k)
		}
		modelTotal += sw.FirstNNZ + sw.SecondNNZ
	}
	ratio := float64(modelTotal) / float64(actualTotal)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("work-model total %d vs actual %d (ratio %.3f)", modelTotal, actualTotal, ratio)
	}
	if _, err := WorkModel(100, params); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := WorkModel(8, params); err == nil {
		t.Fatal("below-base length accepted")
	}
}

func TestMulVecValidation(t *testing.T) {
	e := mustEncoder(t, 32)
	m := e.Stages()[0].First
	if _, err := m.MulVec(field.RandVector(5)); err == nil {
		t.Fatal("MulVec accepted wrong input length")
	}
}

func BenchmarkEncode1024(b *testing.B) {
	e := mustEncoder(b, 1024)
	msg := field.RandVector(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}
