package encoder

import (
	"math/rand"
	"testing"

	"batchzk/internal/field"
)

// Property tests of the Spielman encoder's linear-map structure across
// every recursion depth (base-size through several matrix levels) — the
// fixed-size linearity check in TestLinearity can miss a bug confined
// to one level of the recursive construction.

func seededMsg(rng *rand.Rand, n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		var b [64]byte
		rng.Read(b[:])
		out[i].SetBytesWide(b[:])
	}
	return out
}

func TestLinearityAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{16, 32, 64, 256} { // base size upward
		e := mustEncoder(t, n)
		x := seededMsg(rng, n)
		y := seededMsg(rng, n)
		var a, b field.Element
		a.SetUint64(rng.Uint64())
		b.SetUint64(rng.Uint64())
		comb := make([]field.Element, n)
		var t1, t2 field.Element
		for i := range comb {
			t1.Mul(&a, &x[i])
			t2.Mul(&b, &y[i])
			comb[i].Add(&t1, &t2)
		}
		ec, err := e.Encode(comb)
		if err != nil {
			t.Fatal(err)
		}
		ex, _ := e.Encode(x)
		ey, _ := e.Encode(y)
		for i := range ec {
			t1.Mul(&a, &ex[i])
			t2.Mul(&b, &ey[i])
			t1.Add(&t1, &t2)
			if !t1.Equal(&ec[i]) {
				t.Fatalf("n=%d: encode(a·x+b·y) != a·encode(x)+b·encode(y) at %d", n, i)
			}
		}
	}
}

// TestZeroMapsToZero: a linear code must send the zero message to the
// zero codeword — any systematic offset would break it.
func TestZeroMapsToZero(t *testing.T) {
	for _, n := range []int{16, 64, 128} {
		e := mustEncoder(t, n)
		cw, err := e.Encode(make([]field.Element, n))
		if err != nil {
			t.Fatal(err)
		}
		for i := range cw {
			if !cw[i].IsZero() {
				t.Fatalf("n=%d: zero message has nonzero codeword symbol at %d", n, i)
			}
		}
	}
}

// TestNegationAntisymmetry: encode(−x) = −encode(x), a cheap full-depth
// probe of every matrix level at once.
func TestNegationAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n = 128
	e := mustEncoder(t, n)
	x := seededMsg(rng, n)
	neg := make([]field.Element, n)
	for i := range neg {
		neg[i].Neg(&x[i])
	}
	cx, err := e.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := e.Encode(neg)
	if err != nil {
		t.Fatal(err)
	}
	var want field.Element
	for i := range cx {
		want.Neg(&cx[i])
		if !want.Equal(&cn[i]) {
			t.Fatalf("encode(-x) != -encode(x) at %d", i)
		}
	}
}
