// Package encoder implements the Spielman-style linear-time error-
// correcting encoder used by Orion/Brakedown-style ZKP protocols (§2.4 and
// §3.3 of the BatchZK paper).
//
// The encoder is recursive: a stage with input vector x (length n)
// multiplies x by a sparse "first" matrix to get a half-length vector,
// encodes that recursively into w, multiplies w by a sparse "second"
// matrix to get a parity vector v, and outputs (x ‖ w ‖ v). With the
// halving parameter α = 1/2 and parity sized |v| = n, every stage's
// codeword is exactly 4× its message — a rate-1/4 systematic code whose
// sizes stay powers of two (convenient for the Merkle module that hashes
// its columns).
//
// EncodeIterative is the pipeline-shaped implementation from Figure 6 of
// the paper: a forward pass of first-matrix multiplications from large to
// small, then a backward pass of second-matrix multiplications from small
// to large. It is bit-identical to the recursive reference Encode, which
// the tests enforce.
//
// Sparse matrices are sampled deterministically from a seed; every output
// row has fewer than 256 non-zero entries (the property §3.3 exploits to
// encode row lengths in a single byte for bucket sorting).
package encoder

import (
	"fmt"
	"math/rand"
	"sync"

	"batchzk/internal/field"
	"batchzk/internal/par"
)

// parallelRows is the output-row count below which MulVec runs serially
// (a row is ~a dozen multiply-adds; tiny stages are not worth chunking).
// Package var so the bit-identity tests can force the parallel path.
var parallelRows = 256

// RateInv is the codeword expansion factor: |codeword| = RateInv · |message|.
const RateInv = 4

// MaxRowWeight bounds the non-zeros per output row (must fit in one byte).
const MaxRowWeight = 255

// Entry is one non-zero coefficient of a sparse matrix row.
type Entry struct {
	Col   int
	Coeff field.Element
}

// SparseMatrix is a row-major sparse matrix: Rows[j] lists the non-zeros
// contributing to output coordinate j (the paper's "right vertices are
// rows" convention, which maps one GPU thread per output row).
type SparseMatrix struct {
	InDim  int
	OutDim int
	Rows   [][]Entry
}

// MulVec computes out[j] = Σ_e e.Coeff · x[e.Col] for every row j.
func (m *SparseMatrix) MulVec(x []field.Element) ([]field.Element, error) {
	out := make([]field.Element, m.OutDim)
	if err := m.MulVecInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto is MulVec into a caller-provided (zeroed) output buffer of
// length OutDim. Rows are independent — one output coordinate per row,
// the paper's one-GPU-thread-per-row mapping — so the row loop runs
// in parallel chunks; each row accumulates its entries in order, making
// the result bit-identical to the serial loop for any chunking.
func (m *SparseMatrix) MulVecInto(out, x []field.Element) error {
	if len(x) != m.InDim {
		return fmt.Errorf("encoder: input length %d, matrix expects %d", len(x), m.InDim)
	}
	if len(out) != m.OutDim {
		return fmt.Errorf("encoder: output length %d, matrix produces %d", len(out), m.OutDim)
	}
	w := 0
	if m.OutDim < parallelRows {
		w = 1
	}
	par.ForWidth(w, m.OutDim, func(lo, hi int) {
		var t field.Element
		for j := lo; j < hi; j++ {
			for _, e := range m.Rows[j] {
				t.Mul(&e.Coeff, &x[e.Col])
				out[j].Add(&out[j], &t)
			}
		}
	})
	return nil
}

// RowLengths returns the per-row non-zero counts (all < 256), the input of
// the bucket-sort warp-balancing scheme in §3.3.
func (m *SparseMatrix) RowLengths() []byte {
	out := make([]byte, len(m.Rows))
	for j, row := range m.Rows {
		out[j] = byte(len(row))
	}
	return out
}

// NumNonZeros returns the total non-zero count — one field multiply-add of
// encoding work per non-zero.
func (m *SparseMatrix) NumNonZeros() int {
	total := 0
	for _, row := range m.Rows {
		total += len(row)
	}
	return total
}

// Params configures the expander sampling.
type Params struct {
	// BaseSize is the message size at which recursion stops and the
	// repetition base code takes over. Must be a power of two ≥ 2.
	BaseSize int
	// MinRowWeight/MaxRowWeightFirst bound row weights of the first
	// (halving) matrices; second matrices use slightly denser rows.
	MinRowWeight   int
	MaxRowWeightD1 int
	MaxRowWeightD2 int
	// Seed drives the deterministic graph sampling.
	Seed int64
}

// DefaultParams mirrors the expander densities used by Orion-style codes,
// scaled down so unit tests stay fast while preserving variable row
// lengths (the warp-imbalance phenomenon §3.3 addresses).
func DefaultParams() Params {
	return Params{
		BaseSize:       16,
		MinRowWeight:   6,
		MaxRowWeightD1: 14,
		MaxRowWeightD2: 18,
		Seed:           0x5a1e4d,
	}
}

// Stage holds the two sparse matrices of one recursion level.
type Stage struct {
	// First halves the stage input: InDim n → OutDim n/2.
	First *SparseMatrix
	// Second maps the recursively encoded half (length 2n) to the parity
	// section (length n).
	Second *SparseMatrix
}

// Encoder is a linear-time encoder for messages of a fixed power-of-two
// length. It is safe for concurrent use once constructed.
type Encoder struct {
	n      int
	params Params
	stages []Stage
}

// New samples an encoder for messages of length n (a power of two
// ≥ params.BaseSize).
func New(n int, params Params) (*Encoder, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("encoder: message length %d is not a positive power of two", n)
	}
	if params.BaseSize < 2 || params.BaseSize&(params.BaseSize-1) != 0 {
		return nil, fmt.Errorf("encoder: base size %d is not a power of two ≥ 2", params.BaseSize)
	}
	if n < params.BaseSize {
		return nil, fmt.Errorf("encoder: message length %d below base size %d", n, params.BaseSize)
	}
	if params.MinRowWeight < 1 || params.MaxRowWeightD1 > MaxRowWeight || params.MaxRowWeightD2 > MaxRowWeight ||
		params.MinRowWeight > params.MaxRowWeightD1 || params.MinRowWeight > params.MaxRowWeightD2 {
		return nil, fmt.Errorf("encoder: invalid row-weight bounds [%d, %d/%d]",
			params.MinRowWeight, params.MaxRowWeightD1, params.MaxRowWeightD2)
	}
	e := &Encoder{n: n, params: params}
	rng := rand.New(rand.NewSource(params.Seed))
	for size := n; size > params.BaseSize; size /= 2 {
		first := sampleMatrix(rng, size, size/2, params.MinRowWeight, params.MaxRowWeightD1)
		second := sampleMatrix(rng, RateInv*size/2, size, params.MinRowWeight, params.MaxRowWeightD2)
		e.stages = append(e.stages, Stage{First: first, Second: second})
	}
	return e, nil
}

// cachedEncoders memoizes Cached lookups. New is deterministic in
// (n, params) — the expander graphs are sampled from params.Seed — so a
// repeat construction yields a bit-identical encoder, and sharing one
// instance is safe: an Encoder is read-only after construction.
var cachedEncoders sync.Map // cacheKey → *Encoder

type cacheKey struct {
	n      int
	params Params
}

// Cached returns a shared encoder for (n, params), constructing it on
// first use. Committing, proving, and verifying re-derive the encoder
// from public parameters on every call; the cache turns those repeat
// constructions — sampling ~n log n sparse rows each — into one map load.
// Construction errors are not cached.
func Cached(n int, params Params) (*Encoder, error) {
	key := cacheKey{n: n, params: params}
	if e, ok := cachedEncoders.Load(key); ok {
		return e.(*Encoder), nil
	}
	e, err := New(n, params)
	if err != nil {
		return nil, err
	}
	actual, _ := cachedEncoders.LoadOrStore(key, e)
	return actual.(*Encoder), nil
}

// sampleMatrix draws a sparse matrix whose rows have a uniformly random
// weight in [minW, min(maxW, inDim)] and distinct random columns with
// non-zero coefficients.
func sampleMatrix(rng *rand.Rand, inDim, outDim, minW, maxW int) *SparseMatrix {
	if maxW > inDim {
		maxW = inDim
	}
	if minW > maxW {
		minW = maxW
	}
	m := &SparseMatrix{InDim: inDim, OutDim: outDim, Rows: make([][]Entry, outDim)}
	seen := make(map[int]struct{}, maxW)
	for j := 0; j < outDim; j++ {
		w := minW + rng.Intn(maxW-minW+1)
		// Rejection-sample w distinct columns (w ≪ inDim in practice, and
		// w ≤ inDim always, so this terminates quickly).
		clear(seen)
		row := make([]Entry, 0, w)
		for len(row) < w {
			c := rng.Intn(inDim)
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			var coeff field.Element
			coeff.SetUint64(rng.Uint64() | 1) // never zero
			row = append(row, Entry{Col: c, Coeff: coeff})
		}
		m.Rows[j] = row
	}
	return m
}

// StageWork summarizes the work of one recursion level without
// materializing coefficient matrices — used by the performance model at
// table scales (N up to 2^22), where full sampling would need gigabytes.
// The row-length distributions are drawn from the same generator family
// as New, so warp-imbalance factors are faithful.
type StageWork struct {
	InputLen   int
	FirstNNZ   int
	SecondNNZ  int
	FirstLens  []byte
	SecondLens []byte
}

// WorkModel returns the per-stage work profile of an encoder for messages
// of length n under params, without building the matrices.
func WorkModel(n int, params Params) ([]StageWork, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("encoder: message length %d is not a positive power of two", n)
	}
	if n < params.BaseSize {
		return nil, fmt.Errorf("encoder: message length %d below base size %d", n, params.BaseSize)
	}
	rng := rand.New(rand.NewSource(params.Seed))
	drawLens := func(outDim, minW, maxW, inDim int) ([]byte, int) {
		if maxW > inDim {
			maxW = inDim
		}
		if minW > maxW {
			minW = maxW
		}
		lens := make([]byte, outDim)
		total := 0
		for j := range lens {
			w := minW + rng.Intn(maxW-minW+1)
			lens[j] = byte(w)
			total += w
		}
		return lens, total
	}
	var out []StageWork
	for size := n; size > params.BaseSize; size /= 2 {
		sw := StageWork{InputLen: size}
		sw.FirstLens, sw.FirstNNZ = drawLens(size/2, params.MinRowWeight, params.MaxRowWeightD1, size)
		sw.SecondLens, sw.SecondNNZ = drawLens(size, params.MinRowWeight, params.MaxRowWeightD2, RateInv*size/2)
		out = append(out, sw)
	}
	return out, nil
}

// MessageLen returns the message length the encoder was built for.
func (e *Encoder) MessageLen() int { return e.n }

// CodewordLen returns the codeword length (RateInv · message length).
func (e *Encoder) CodewordLen() int { return RateInv * e.n }

// NumStages returns the recursion depth (excluding the base code).
func (e *Encoder) NumStages() int { return len(e.stages) }

// Stages exposes the sampled stage matrices (read-only use).
func (e *Encoder) Stages() []Stage { return e.stages }

// Encode is the recursive reference encoder (Figure 3 of the paper).
func (e *Encoder) Encode(x []field.Element) ([]field.Element, error) {
	if len(x) != e.n {
		return nil, fmt.Errorf("encoder: message length %d, want %d", len(x), e.n)
	}
	return e.encodeAt(0, x)
}

func (e *Encoder) encodeAt(stage int, x []field.Element) ([]field.Element, error) {
	if stage == len(e.stages) {
		return baseEncode(x), nil
	}
	s := e.stages[stage]
	y, err := s.First.MulVec(x)
	if err != nil {
		return nil, err
	}
	w, err := e.encodeAt(stage+1, y)
	if err != nil {
		return nil, err
	}
	v, err := s.Second.MulVec(w)
	if err != nil {
		return nil, err
	}
	out := make([]field.Element, 0, RateInv*len(x))
	out = append(out, x...)
	out = append(out, w...)
	out = append(out, v...)
	return out, nil
}

// baseEncode is the repetition base code: the message four times.
func baseEncode(x []field.Element) []field.Element {
	out := make([]field.Element, 0, RateInv*len(x))
	for i := 0; i < RateInv; i++ {
		out = append(out, x...)
	}
	return out
}

// EncodeIterative is the two-pass, pipeline-shaped encoder of Figure 6:
// a forward sweep of all first multiplications (large → small), the base
// code, then a backward sweep of all second multiplications (small →
// large). The result is identical to Encode.
func (e *Encoder) EncodeIterative(x []field.Element) ([]field.Element, error) {
	if len(x) != e.n {
		return nil, fmt.Errorf("encoder: message length %d, want %d", len(x), e.n)
	}
	// Forward pass: inputs[k] is the message at stage k.
	inputs := make([][]field.Element, len(e.stages)+1)
	inputs[0] = x
	for k, s := range e.stages {
		y, err := s.First.MulVec(inputs[k])
		if err != nil {
			return nil, err
		}
		inputs[k+1] = y
	}
	// Base code, then backward pass assembling (x_k ‖ w_{k+1} ‖ v_k).
	w := baseEncode(inputs[len(e.stages)])
	for k := len(e.stages) - 1; k >= 0; k-- {
		v, err := e.stages[k].Second.MulVec(w)
		if err != nil {
			return nil, err
		}
		out := make([]field.Element, 0, RateInv*len(inputs[k]))
		out = append(out, inputs[k]...)
		out = append(out, w...)
		out = append(out, v...)
		w = out
	}
	return w, nil
}

// WorkNonZeros returns the total multiply-add count of one encoding — the
// sum of non-zeros over every stage matrix plus nothing for the
// (copy-only) base code. The performance model consumes this.
func (e *Encoder) WorkNonZeros() int {
	total := 0
	for _, s := range e.stages {
		total += s.First.NumNonZeros() + s.Second.NumNonZeros()
	}
	return total
}
