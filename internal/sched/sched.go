// Package sched is the unified execution layer of the reproduction: one
// stage-graph scheduler that both internal/core's BatchProver and
// internal/pipeline's module schedules run on.
//
// The paper's §4 assigns GPU threads to the prover modules in proportion
// to each module's amortized time ratio — the encoder, Merkle tree, and
// sum-check kernels each own a slice of the device sized so no stage
// starves the pipeline. sched is the host-side realization of that rule,
// in two disciplines over the same stage-graph description:
//
//   - Graph (graph.go): an elastic streaming executor. Each stage runs a
//     worker pool of configurable size; pool sizes are set explicitly,
//     derived from the amortized-time-ratio rule (Proportional), or
//     rebalanced at runtime from live per-stage busy shares
//     (Options.Autobalance). Because parallel stage workers break FIFO
//     ordering, a reorder buffer re-emits results in submission order,
//     and a semaphore bounds the number of items in flight (the paper's
//     dynamic-loading memory bound).
//
//   - RunCycles (cycles.go): the cycle-synchronous executor for modules
//     whose stages share cross-task state (the double-buffer discipline
//     of Figure 5): one task enters per cycle, stages run in descending
//     order within a cycle, with an optional end-of-cycle barrier. It is
//     the degenerate one-worker-per-stage case of the same stage graph,
//     kept synchronous so buffer reads never overtake writes.
//
// Both disciplines share the failure contract (a panicking stage worker
// is recovered and attributed, never allowed to wedge the graph) and the
// telemetry surface: per-stage worker-count gauges
// (sched/<graph>/stage/<name>/workers), queue-wait histograms
// (sched/<graph>/stage/<name>/queue_wait_ns), busy counters, and a
// rebalance counter, all nil-safe when telemetry is disabled.
package sched

import (
	"fmt"
)

// StageSpec describes one stage of a linear stage graph.
type StageSpec struct {
	// Name labels the stage in telemetry and introspection.
	Name string
	// Workers is the stage's worker-pool size (0 means 1).
	Workers int
}

func (s StageSpec) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

// Proportional splits a worker budget across stages in proportion to
// their weights — the paper's §4 amortized-time-ratio rule (thread count
// ∝ per-module amortized time), with a floor of min workers per stage so
// no stage ever starves. Rounding uses the largest-remainder method, so
// the split is deterministic, sums exactly to the budget, and never
// allocates below the floor. A budget smaller than len(weights)·min is
// raised to the floor allocation; zero or negative weights are treated
// as "no measured demand" and share only the floor.
func Proportional(weights []float64, budget, min int) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if min < 1 {
		min = 1
	}
	out := make([]int, n)
	for i := range out {
		out[i] = min
	}
	spare := budget - n*min
	if spare <= 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		// No signal: spread the spare round-robin for a near-even split.
		for i := 0; i < spare; i++ {
			out[i%n]++
		}
		return out
	}
	// Largest-remainder apportionment of the spare workers.
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, n)
	assigned := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		ideal := float64(spare) * w / total
		base := int(ideal)
		out[i] += base
		assigned += base
		fracs[i] = frac{i: i, f: ideal - float64(base)}
	}
	// Hand the leftover to the largest fractional parts; ties break on
	// the lower stage index so the result is stable across runs.
	for assigned < spare {
		best := -1
		for j := range fracs {
			if best < 0 || fracs[j].f > fracs[best].f {
				best = j
			}
		}
		out[fracs[best].i]++
		fracs[best].f = -1
		assigned++
	}
	return out
}

// ParseWorkers parses a CLI worker specification: either a comma-
// separated per-stage list ("2,4,1,1" → explicit pool sizes) or a single
// integer ("8" → a total budget to split by the amortized-time-ratio
// rule). It returns the explicit sizes (nil when a budget was given) and
// the budget (0 when an explicit list was given).
func ParseWorkers(spec string, numStages int) (workers []int, budget int, err error) {
	if spec == "" {
		return nil, 0, nil
	}
	var vals []int
	rest := spec
	for rest != "" {
		var tok string
		if i := indexByte(rest, ','); i >= 0 {
			tok, rest = rest[:i], rest[i+1:]
		} else {
			tok, rest = rest, ""
		}
		v := 0
		if _, err := fmt.Sscanf(tok, "%d", &v); err != nil || v < 1 {
			return nil, 0, fmt.Errorf("sched: bad worker count %q in %q (want positive integers)", tok, spec)
		}
		vals = append(vals, v)
	}
	switch len(vals) {
	case 1:
		return nil, vals[0], nil
	case numStages:
		return vals, 0, nil
	default:
		return nil, 0, fmt.Errorf("sched: worker list %q has %d entries, want %d (one per stage) or a single total budget", spec, len(vals), numStages)
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
