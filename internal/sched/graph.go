package sched

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"batchzk/internal/obs"
	"batchzk/internal/telemetry"
)

// Autobalance configures elastic runtime rebalancing of a Graph's worker
// pools: a controller periodically re-derives the per-stage pool sizes
// from the busy time each stage accumulated since the last rebalance (the
// live analogue of the paper's amortized-time-ratio rule) and applies the
// proportional split of the worker budget.
type Autobalance struct {
	// Interval is the rebalance period (0 means 50ms).
	Interval time.Duration
	// Budget is the total worker count distributed across stages
	// (0 means the sum of the initial pool sizes).
	Budget int
	// MinWorkers is the per-stage floor (0 means 1).
	MinWorkers int
}

func (a *Autobalance) interval() time.Duration {
	if a.Interval <= 0 {
		return 50 * time.Millisecond
	}
	return a.Interval
}

// Options tune a Graph.
type Options struct {
	// Name prefixes the graph's telemetry series (sched/<name>/...).
	Name string
	// InFlight bounds the number of items inside the graph at once —
	// the dynamic-loading memory bound. Must be ≥ 1.
	InFlight int
	// Telemetry overrides the process-wide sink when non-nil.
	Telemetry *telemetry.Sink
	// Autobalance enables elastic pool rebalancing when non-nil.
	Autobalance *Autobalance
}

// Graph drives items of type T through a linear list of stages, each
// served by a worker pool, and emits them in submission order. Build one
// with NewGraph and drive it with Run (one Run per Graph).
//
// Elasticity is implemented as concurrency gating rather than goroutine
// churn: every stage spawns its maximum pool up front, and a resizable
// limiter bounds how many of those workers may process concurrently.
// Resizing the limiter is cheap, race-free, and never strands queued
// items the way retiring worker goroutines could.
type Graph[T any] struct {
	name    string
	specs   []StageSpec
	opts    Options
	process func(stage int, item *T)
	recover func(stage int, item *T, r any)

	limiters []*limiter
	busyNs   []atomic.Int64
	maxPool  []int

	// Telemetry handles (nil-safe when disabled).
	workerGauges []*telemetry.Gauge
	queueWait    []*telemetry.Histogram
	inFlightG    *telemetry.Gauge
	rebalances   *telemetry.Counter
	panics       *telemetry.Counter

	rebalanced atomic.Int64
	started    atomic.Bool
}

// NewGraph builds a graph over the given stages. process runs stage
// `stage` on an item; it is called concurrently from the stage's worker
// pool and must be safe for that (items themselves are never shared
// between concurrent calls). Errors are the caller's concern — encode
// them in T. A panicking process call is recovered, counted, and
// reported through the handler installed with SetRecover; the item still
// flows to emission so the stream never stalls.
func NewGraph[T any](specs []StageSpec, process func(stage int, item *T), opts Options) (*Graph[T], error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sched: graph needs at least one stage")
	}
	if process == nil {
		return nil, fmt.Errorf("sched: graph needs a process function")
	}
	if opts.InFlight < 1 {
		return nil, fmt.Errorf("sched: in-flight bound %d < 1", opts.InFlight)
	}
	if opts.Name == "" {
		opts.Name = "graph"
	}
	n := len(specs)
	g := &Graph[T]{
		name:    opts.Name,
		specs:   append([]StageSpec(nil), specs...),
		opts:    opts,
		process: process,

		limiters: make([]*limiter, n),
		busyNs:   make([]atomic.Int64, n),
		maxPool:  make([]int, n),

		workerGauges: make([]*telemetry.Gauge, n),
		queueWait:    make([]*telemetry.Histogram, n),
	}
	budget := 0
	for i := range specs {
		budget += specs[i].workers()
	}
	if ab := opts.Autobalance; ab != nil && ab.Budget > 0 {
		budget = ab.Budget
	}
	minW := 1
	if ab := opts.Autobalance; ab != nil && ab.MinWorkers > 0 {
		minW = ab.MinWorkers
	}
	for i := range specs {
		w := specs[i].workers()
		g.maxPool[i] = w
		if opts.Autobalance != nil {
			// Any stage may grow to the whole spare budget on top of the
			// other stages' floors.
			g.maxPool[i] = budget - (n-1)*minW
			if g.maxPool[i] < w {
				g.maxPool[i] = w
			}
		}
		g.limiters[i] = newLimiter(w)
	}

	sink := telemetry.Resolve(opts.Telemetry)
	for i := range specs {
		base := "sched/" + g.name + "/stage/" + g.stageName(i)
		g.workerGauges[i] = sink.Gauge(base + "/workers")
		g.workerGauges[i].Set(int64(specs[i].workers()))
		g.queueWait[i] = sink.Histogram(base + "/queue_wait_ns")
	}
	g.inFlightG = sink.Gauge("sched/" + g.name + "/in_flight")
	g.rebalances = sink.Counter("sched/" + g.name + "/rebalances")
	g.panics = sink.Counter("sched/" + g.name + "/panics_recovered")
	return g, nil
}

func (g *Graph[T]) stageName(i int) string {
	if g.specs[i].Name != "" {
		return g.specs[i].Name
	}
	return fmt.Sprintf("stage%d", i)
}

// SetRecover installs the handler called when a process call panics; it
// runs on the recovering worker before the item is forwarded. Call
// before Run.
func (g *Graph[T]) SetRecover(fn func(stage int, item *T, r any)) { g.recover = fn }

// Workers returns the current per-stage pool sizes (the limiter targets,
// which autobalance moves at runtime).
func (g *Graph[T]) Workers() []int {
	out := make([]int, len(g.limiters))
	for i, l := range g.limiters {
		out[i] = l.Limit()
	}
	return out
}

// BusyNs returns the cumulative busy time each stage's workers have
// spent inside process calls.
func (g *Graph[T]) BusyNs() []int64 {
	out := make([]int64, len(g.busyNs))
	for i := range g.busyNs {
		out[i] = g.busyNs[i].Load()
	}
	return out
}

// Rebalances returns how many elastic rebalances have been applied.
func (g *Graph[T]) Rebalances() int64 { return g.rebalanced.Load() }

// envelope carries an item with its submission sequence number and the
// timestamp of its last enqueue (for the queue-wait histograms).
type envelope[T any] struct {
	seq  uint64
	item T
	enq  time.Time
}

// Run consumes items from in, runs each through every stage in order,
// and emits them on the returned channel in submission order. The
// returned channel closes after the last item; Run may be called once
// per Graph.
func (g *Graph[T]) Run(in <-chan T) <-chan T {
	if g.started.Swap(true) {
		panic("sched: Graph.Run called twice")
	}
	n := len(g.specs)
	depth := g.opts.InFlight
	queues := make([]chan *envelope[T], n+1)
	for i := range queues {
		queues[i] = make(chan *envelope[T], depth)
	}
	sem := make(chan struct{}, depth)
	out := make(chan T, depth)
	done := make(chan struct{})

	// Source: admit items under the in-flight bound and stamp sequence
	// numbers for the reorder buffer.
	go func() {
		defer close(queues[0])
		var seq uint64
		for item := range in {
			sem <- struct{}{}
			g.inFlightG.Add(1)
			queues[0] <- &envelope[T]{seq: seq, item: item, enq: time.Now()}
			seq++
		}
	}()

	// Stage worker pools. Workers beyond the limiter target park on
	// acquire; the autobalance controller moves the targets.
	for i := 0; i < n; i++ {
		var wg sync.WaitGroup
		for w := 0; w < g.maxPool[i]; w++ {
			wg.Add(1)
			go g.worker(i, queues[i], queues[i+1], &wg)
		}
		go func(i int) {
			wg.Wait()
			close(queues[i+1])
		}(i)
	}

	// Reorder buffer: emit strictly in submission order, releasing the
	// in-flight slot only at emission so the bound covers the buffer.
	go func() {
		defer close(out)
		defer close(done)
		pending := make(map[uint64]*envelope[T])
		var next uint64
		for env := range queues[n] {
			pending[env.seq] = env
			for {
				e, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- e.item
				g.inFlightG.Add(-1)
				<-sem
				next++
			}
		}
	}()

	if g.opts.Autobalance != nil {
		go g.autobalance(done)
	}
	return out
}

// worker is one pool goroutine of stage i: acquire a concurrency slot,
// pull an item, process it (with last-resort panic recovery), forward.
func (g *Graph[T]) worker(i int, in <-chan *envelope[T], fwd chan<- *envelope[T], wg *sync.WaitGroup) {
	defer wg.Done()
	lim := g.limiters[i]
	for {
		lim.acquire()
		env, ok := <-in
		if !ok {
			lim.release()
			return
		}
		g.queueWait[i].Observe(time.Since(env.enq).Nanoseconds())
		start := time.Now()
		g.runProcess(i, &env.item)
		g.busyNs[i].Add(time.Since(start).Nanoseconds())
		lim.release()
		env.enq = time.Now()
		fwd <- env
	}
}

func (g *Graph[T]) runProcess(stage int, item *T) {
	defer func() {
		if r := recover(); r != nil {
			g.panics.Inc()
			if g.recover != nil {
				g.recover(stage, item, r)
			}
		}
	}()
	g.process(stage, item)
}

// autobalance periodically re-derives the pool split from the busy time
// accumulated since the last rebalance and applies it.
func (g *Graph[T]) autobalance(done <-chan struct{}) {
	ab := g.opts.Autobalance
	ticker := time.NewTicker(ab.interval())
	defer ticker.Stop()
	last := make([]int64, len(g.busyNs))
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			g.RebalanceNow(last)
		}
	}
}

// RebalanceNow applies one elastic rebalance from the busy time
// accumulated since the snapshot in last (which it updates in place);
// pass nil to rebalance from all-time busy totals. It is exported so
// tests and callers with their own pacing can trigger a deterministic
// rebalance without waiting on the controller's ticker. No-op unless
// the graph was built with Options.Autobalance.
func (g *Graph[T]) RebalanceNow(last []int64) {
	ab := g.opts.Autobalance
	if ab == nil {
		return
	}
	n := len(g.specs)
	weights := make([]float64, n)
	total := 0.0
	for i := range g.busyNs {
		d := g.busyNs[i].Load()
		if last != nil {
			cur := d
			d -= last[i]
			last[i] = cur
		}
		if d < 0 {
			d = 0
		}
		weights[i] = float64(d)
		total += weights[i]
	}
	if total <= 0 {
		return // no work observed this window; keep the current split
	}
	budget := ab.Budget
	if budget <= 0 {
		for i := range g.specs {
			budget += g.specs[i].workers()
		}
	}
	minW := ab.MinWorkers
	if minW < 1 {
		minW = 1
	}
	want := Proportional(weights, budget, minW)
	changed := false
	before := make([]int, n)
	after := make([]int, n)
	for i, w := range want {
		if w > g.maxPool[i] {
			w = g.maxPool[i]
		}
		before[i] = g.limiters[i].Limit()
		after[i] = w
		if before[i] != w {
			g.limiters[i].setLimit(w)
			g.workerGauges[i].Set(int64(w))
			changed = true
		}
	}
	if changed {
		g.rebalanced.Add(1)
		g.rebalances.Inc()
		obs.Info("sched", "autobalance.rebalanced",
			slog.String("graph", g.name),
			slog.String("workers_before", fmt.Sprint(before)),
			slog.String("workers_after", fmt.Sprint(after)),
			slog.Int("budget", budget))
	}
}

// limiter is a resizable counting semaphore: at most limit holders at
// once, with setLimit waking parked waiters when the limit grows.
type limiter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	limit  int
	active int
}

func newLimiter(limit int) *limiter {
	l := &limiter{limit: limit}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *limiter) acquire() {
	l.mu.Lock()
	for l.active >= l.limit {
		l.cond.Wait()
	}
	l.active++
	l.mu.Unlock()
}

func (l *limiter) release() {
	l.mu.Lock()
	l.active--
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *limiter) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	l.limit = n
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}
