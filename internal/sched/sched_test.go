package sched

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"batchzk/internal/telemetry"
)

type item struct {
	id   int
	trace []int
	err  error
}

func feed(n int) <-chan item {
	in := make(chan item, n)
	for i := 0; i < n; i++ {
		in <- item{id: i}
	}
	close(in)
	return in
}

func collect(out <-chan item) []item {
	var got []item
	for it := range out {
		got = append(got, it)
	}
	return got
}

func TestGraphValidation(t *testing.T) {
	proc := func(int, *item) {}
	if _, err := NewGraph[item](nil, proc, Options{InFlight: 1}); err == nil {
		t.Fatal("accepted empty stage list")
	}
	if _, err := NewGraph[item]([]StageSpec{{Name: "a"}}, nil, Options{InFlight: 1}); err == nil {
		t.Fatal("accepted nil process")
	}
	if _, err := NewGraph([]StageSpec{{Name: "a"}}, proc, Options{InFlight: 0}); err == nil {
		t.Fatal("accepted zero in-flight bound")
	}
}

// Every item must traverse every stage exactly once, in stage order, and
// emerge in submission order — even with pools > 1 and deliberately
// skewed per-stage latencies that reorder items inside the stages.
func TestGraphOrderingWithPools(t *testing.T) {
	specs := []StageSpec{
		{Name: "a", Workers: 3},
		{Name: "b", Workers: 1},
		{Name: "c", Workers: 2},
	}
	g, err := NewGraph(specs, func(stage int, it *item) {
		// Early items sleep longer, so later items overtake them inside
		// the pools and the reorder buffer has to restore order.
		if stage == 0 {
			time.Sleep(time.Duration((97-it.id)%7) * time.Millisecond / 4)
		}
		it.trace = append(it.trace, stage)
	}, Options{Name: "t", InFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	got := collect(g.Run(feed(n)))
	if len(got) != n {
		t.Fatalf("got %d items, want %d", len(got), n)
	}
	for i, it := range got {
		if it.id != i {
			t.Fatalf("out of order: id %d at position %d", it.id, i)
		}
		if len(it.trace) != len(specs) {
			t.Fatalf("item %d visited %d stages", i, len(it.trace))
		}
		for s, v := range it.trace {
			if v != s {
				t.Fatalf("item %d stage order %v", i, it.trace)
			}
		}
	}
}

// The in-flight bound must hold at every instant: even with a wider
// worker pool, no more than InFlight items may be inside process calls
// at once, because admission is gated by the in-flight semaphore.
func TestGraphInFlightBound(t *testing.T) {
	const bound = 3
	var inProcess, peak atomic.Int64
	g, err := NewGraph([]StageSpec{{Name: "only", Workers: 8}}, func(stage int, it *item) {
		v := inProcess.Add(1)
		for {
			p := peak.Load()
			if v <= p || peak.CompareAndSwap(p, v) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inProcess.Add(-1)
	}, Options{Name: "bound", InFlight: bound})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range g.Run(feed(32)) {
		n++
	}
	if n != 32 {
		t.Fatalf("emitted %d items", n)
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("observed %d concurrent items, bound %d", p, bound)
	}
}

// A panicking process call must be recovered, reported through the
// handler, and the item still emitted in order.
func TestGraphPanicRecovery(t *testing.T) {
	sink := telemetry.NewSink(0)
	g, err := NewGraph([]StageSpec{{Name: "s", Workers: 2}}, func(stage int, it *item) {
		if it.id == 3 {
			panic("boom")
		}
	}, Options{Name: "p", InFlight: 4, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	g.SetRecover(func(stage int, it *item, r any) {
		it.err = fmt.Errorf("stage %d: %v", stage, r)
	})
	got := collect(g.Run(feed(8)))
	if len(got) != 8 {
		t.Fatalf("got %d items", len(got))
	}
	for i, it := range got {
		if it.id != i {
			t.Fatalf("out of order after panic: %d at %d", it.id, i)
		}
		if (it.id == 3) != (it.err != nil) {
			t.Fatalf("item %d error state %v", it.id, it.err)
		}
	}
	if n := sink.Metrics.Snapshot().Counters["sched/p/panics_recovered"]; n != 1 {
		t.Fatalf("panics_recovered = %d", n)
	}
}

func TestGraphWorkerGauges(t *testing.T) {
	sink := telemetry.NewSink(0)
	specs := []StageSpec{{Name: "commit", Workers: 2}, {Name: "open", Workers: 5}}
	g, err := NewGraph(specs, func(int, *item) {}, Options{Name: "core", InFlight: 4, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	collect(g.Run(feed(4)))
	snap := sink.Metrics.Snapshot()
	if v := snap.Gauges["sched/core/stage/commit/workers"].Value; v != 2 {
		t.Fatalf("commit workers gauge = %d", v)
	}
	if v := snap.Gauges["sched/core/stage/open/workers"].Value; v != 5 {
		t.Fatalf("open workers gauge = %d", v)
	}
	if snap.Histograms["sched/core/stage/open/queue_wait_ns"].Count == 0 {
		t.Fatal("no queue-wait observations")
	}
}

// Elastic rebalance must shift workers toward the stage with the
// dominant busy share, never dropping any stage below the floor, and
// keep the total at the budget.
func TestGraphAutobalance(t *testing.T) {
	specs := []StageSpec{
		{Name: "light", Workers: 3},
		{Name: "heavy", Workers: 3},
		{Name: "light2", Workers: 2},
	}
	g, err := NewGraph(specs, func(stage int, it *item) {
		if stage == 1 {
			time.Sleep(2 * time.Millisecond)
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}, Options{
		Name: "ab", InFlight: 16,
		Autobalance: &Autobalance{Interval: 5 * time.Millisecond, Budget: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := g.Run(feed(48))
	for range out {
	}
	// The run is over; apply one final deterministic rebalance from the
	// all-time busy totals so the assertion does not race the ticker.
	g.RebalanceNow(nil)
	w := g.Workers()
	total := 0
	for i, v := range w {
		if v < 1 {
			t.Fatalf("stage %d below floor: %v", i, w)
		}
		total += v
	}
	if total != 8 {
		t.Fatalf("budget not preserved: %v (total %d)", w, total)
	}
	if w[1] <= w[0] || w[1] <= w[2] {
		t.Fatalf("heavy stage not favored: %v", w)
	}
	if g.Rebalances() == 0 {
		t.Fatal("no rebalances recorded")
	}
}

func TestProportional(t *testing.T) {
	cases := []struct {
		w      []float64
		budget int
		min    int
		want   []int
	}{
		{[]float64{1, 1, 1, 1}, 4, 1, []int{1, 1, 1, 1}},
		{[]float64{3, 1, 1, 1}, 8, 1, []int{3, 2, 2, 1}},
		{[]float64{70, 10, 10, 10}, 10, 1, []int{5, 2, 2, 1}},
		{[]float64{0, 0}, 6, 1, []int{3, 3}},
		{[]float64{5, 5}, 1, 1, []int{1, 1}}, // budget below floor → floor
		{[]float64{1, 1000}, 4, 1, []int{1, 3}},
	}
	for i, c := range cases {
		got := Proportional(c.w, c.budget, c.min)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v", i, got)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v want %v", i, got, c.want)
			}
		}
	}
	if Proportional(nil, 4, 1) != nil {
		t.Fatal("empty weights should yield nil")
	}
	// Determinism: same inputs, same split, every time.
	for i := 0; i < 10; i++ {
		a := Proportional([]float64{2.5, 2.5, 5}, 7, 1)
		b := Proportional([]float64{2.5, 2.5, 5}, 7, 1)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("non-deterministic split")
			}
		}
	}
}

func TestParseWorkers(t *testing.T) {
	if w, b, err := ParseWorkers("", 4); err != nil || w != nil || b != 0 {
		t.Fatalf("empty spec: %v %v %v", w, b, err)
	}
	w, b, err := ParseWorkers("2,4,1,1", 4)
	if err != nil || b != 0 {
		t.Fatalf("list spec: %v %v %v", w, b, err)
	}
	if len(w) != 4 || w[0] != 2 || w[1] != 4 || w[2] != 1 || w[3] != 1 {
		t.Fatalf("list spec parsed %v", w)
	}
	if w, b, err = ParseWorkers("8", 4); err != nil || w != nil || b != 8 {
		t.Fatalf("budget spec: %v %v %v", w, b, err)
	}
	for _, bad := range []string{"0", "a", "1,2", "1,2,3,4,5", "-3", "2,,2,2"} {
		if _, _, err := ParseWorkers(bad, 4); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestRunCycles(t *testing.T) {
	sink := telemetry.NewSink(0)
	var order []string
	slots, err := RunCycles(3, 2, func(cycle, stage, task int) error {
		order = append(order, fmt.Sprintf("c%d s%d t%d", cycle, stage, task))
		return nil
	}, nil, CycleConfig{Layer: "pipeline", Module: "m", Telemetry: sink})
	if err != nil || len(slots) != 0 {
		t.Fatalf("clean run: %v %v", slots, err)
	}
	// Figure 4b: stages descend within a cycle; one task enters per cycle.
	want := []string{
		"c0 s0 t0",
		"c1 s1 t0", "c1 s0 t1",
		"c2 s1 t1", "c2 s0 t2",
		"c3 s1 t2",
	}
	if len(order) != len(want) {
		t.Fatalf("slot order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("slot order %v, want %v", order, want)
		}
	}
	snap := sink.Metrics.Snapshot()
	if snap.Counters["pipeline/m/cycles"] != 4 {
		t.Fatalf("cycles counter = %d", snap.Counters["pipeline/m/cycles"])
	}
	if snap.Histograms["pipeline/m/slot_ns"].Count != 6 {
		t.Fatal("slot histogram incomplete")
	}
}

func TestRunCyclesPoisonAndPanic(t *testing.T) {
	sink := telemetry.NewSink(0)
	var ran []string
	slots, err := RunCycles(3, 3, func(cycle, stage, task int) error {
		ran = append(ran, fmt.Sprintf("s%d t%d", stage, task))
		if task == 1 && stage == 0 {
			return fmt.Errorf("bad task")
		}
		if task == 2 && stage == 1 {
			panic("kaboom")
		}
		return nil
	}, nil, CycleConfig{Layer: "pipeline", Module: "m", Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 {
		t.Fatalf("slot errors: %+v", slots)
	}
	if slots[0].Task != 1 || slots[0].Stage != 0 {
		t.Fatalf("first slot error %+v", slots[0])
	}
	if slots[1].Task != 2 || slots[1].Stage != 1 {
		t.Fatalf("second slot error %+v", slots[1])
	}
	// Poisoned tasks must not run later stages.
	for _, s := range ran {
		if s == "s1 t1" || s == "s2 t1" || s == "s2 t2" {
			t.Fatalf("poisoned slot ran: %v", ran)
		}
	}
	snap := sink.Metrics.Snapshot()
	if snap.Counters["pipeline/m/task_errors"] != 2 {
		t.Fatal("task_errors counter wrong")
	}
	if snap.Counters["pipeline/m/panics_recovered"] != 1 {
		t.Fatal("panics_recovered counter wrong")
	}
}

func TestRunCyclesEndCycleAborts(t *testing.T) {
	boom := fmt.Errorf("buffer discipline violated")
	_, err := RunCycles(2, 2, func(int, int, int) error { return nil },
		func(cycle int) error {
			if cycle == 1 {
				return boom
			}
			return nil
		}, CycleConfig{})
	if err != boom {
		t.Fatalf("endCycle error not fatal: %v", err)
	}
	if _, err := RunCycles(0, 2, func(int, int, int) error { return nil }, nil, CycleConfig{}); err == nil {
		t.Fatal("accepted zero tasks")
	}
}
