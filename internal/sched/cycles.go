package sched

import (
	"fmt"
	"time"

	"batchzk/internal/telemetry"
)

// CycleConfig names a cycle-synchronous run for telemetry: series are
// emitted as <layer>/<module>/{cycles,slot_ns,task_errors,
// panics_recovered} and spans as layer Layer with names
// <module>/stage<i>, matching the scheme the pipelined modules have
// always used.
type CycleConfig struct {
	Layer  string
	Module string
	// Telemetry overrides the process-wide sink when non-nil.
	Telemetry *telemetry.Sink
}

// SlotError records one poisoned task of a cycle-synchronous run: the
// stage it first failed in and the underlying cause.
type SlotError struct {
	Task  int
	Stage int
	Err   error
}

// RunCycles drives the static Figure-4b schedule — the cycle-synchronous
// discipline of the unified execution layer, for modules whose stages
// share cross-task state (recyclable double buffers) and therefore must
// not run stages of different tasks concurrently. One task enters per
// cycle; within a cycle stages run in descending order so a cycle's
// writes never overtake its reads; endCycle (when non-nil) runs as a
// barrier after every cycle.
//
// A slot that fails (or panics — recovered and counted) poisons its
// task: the task's remaining slots are skipped, which cannot disturb the
// buffer discipline, and the healthy tasks run to completion. The
// per-task first errors are returned sorted by task. An endCycle failure
// is an infrastructure violation and aborts the whole run with a non-nil
// fatal error.
func RunCycles(numTasks, numStages int, slot func(cycle, stage, task int) error, endCycle func(cycle int) error, cfg CycleConfig) ([]SlotError, error) {
	if numTasks <= 0 || numStages <= 0 {
		return nil, fmt.Errorf("sched: need positive task and stage counts")
	}
	if cfg.Layer == "" {
		cfg.Layer = "sched"
	}
	if cfg.Module == "" {
		cfg.Module = "cycles"
	}
	sink := telemetry.Resolve(cfg.Telemetry)
	tracer := sink.Trace()
	prefix := cfg.Layer + "/" + cfg.Module
	cycles := sink.Counter(prefix + "/cycles")
	slotHist := sink.Histogram(prefix + "/slot_ns")
	taskErrs := sink.Counter(prefix + "/task_errors")
	panics := sink.Counter(prefix + "/panics_recovered")
	root := tracer.Begin(cfg.Layer, cfg.Module, 0, numStages, -1)
	var failed map[int]*SlotError
	for cycle := 0; cycle < numTasks+numStages-1; cycle++ {
		for stage := numStages - 1; stage >= 0; stage-- {
			task := cycle - stage
			if task < 0 || task >= numTasks {
				continue
			}
			if failed[task] != nil {
				continue // poisoned: the task's remaining slots are skipped
			}
			sp := tracer.Begin(cfg.Layer, fmt.Sprintf("%s/stage%d", cfg.Module, stage), root.ID(), stage, task)
			start := time.Now()
			err := runSlot(cfg.Layer, slot, cycle, stage, task, panics)
			slotHist.Observe(time.Since(start).Nanoseconds())
			sp.End()
			if err != nil {
				if failed == nil {
					failed = make(map[int]*SlotError)
				}
				failed[task] = &SlotError{Task: task, Stage: stage, Err: err}
				taskErrs.Inc()
			}
		}
		cycles.Inc()
		if endCycle != nil {
			// endCycle failures are infrastructure (buffer-discipline)
			// violations: the whole schedule is unsound, so abort.
			if err := endCycle(cycle); err != nil {
				root.End()
				return nil, err
			}
		}
	}
	root.End()
	if len(failed) == 0 {
		return nil, nil
	}
	out := make([]SlotError, 0, len(failed))
	for t := 0; t < numTasks; t++ {
		if fe := failed[t]; fe != nil {
			out = append(out, *fe)
		}
	}
	return out, nil
}

// runSlot executes one (stage, task) slot, converting a panicking stage
// into a task error so one poisoned task cannot kill the whole batch.
func runSlot(layer string, slot func(cycle, stage, task int) error, cycle, stage, task int, panics *telemetry.Counter) (err error) {
	defer func() {
		if r := recover(); r != nil {
			panics.Inc()
			err = fmt.Errorf("%s: stage %d panicked on task %d: %v", layer, stage, task, r)
		}
	}()
	return slot(cycle, stage, task)
}
