package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTracerWallSpans(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Begin("core", "job", 0, 0, 7)
	child := tr.Begin("core", "stage/commit", root.ID(), 1, 7)
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Recorded in End order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "stage/commit" || r.Name != "job" {
		t.Fatalf("order: %v %v", c.Name, r.Name)
	}
	if c.Parent != r.ID {
		t.Fatal("parent link broken")
	}
	if c.Dur <= 0 || r.Dur < c.Dur {
		t.Fatalf("durations: child %.0f root %.0f", c.Dur, r.Dur)
	}
	if c.Start < r.Start || c.End() > r.End()+1 {
		t.Fatal("child span escapes parent interval")
	}
	if c.Sim || r.Sim {
		t.Fatal("wall spans must not be marked simulated")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Add("gpusim", "k", 0, 0, i, float64(i), 1)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest first, tail of the run retained.
	for i, s := range spans {
		if s.Task != 6+i {
			t.Fatalf("span %d has task %d, want %d", i, s.Task, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestNilTracerSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "y", 0, 0, -1)
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.End() // no-op
	if sp.ID() != 0 {
		t.Fatal("nil span id must be 0")
	}
	if tr.Add("x", "y", 0, 0, -1, 0, 1) != 0 {
		t.Fatal("nil tracer Add must return 0")
	}
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must read as empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Add("gpusim", "run/pipelined", 0, 0, -1, 0, 100)
	tr.Add("gpusim", "kernel/a", root, 0, 0, 0, 10)
	tr.Add("gpusim", "kernel/b", root, 1, 1, 5, 10)
	wall := tr.Begin("core", "stage/commit", 0, 0, 3)
	wall.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, complete int
	pids := map[string]int{}
	for _, e := range trace.TraceEvents {
		switch e.Phase {
		case "M":
			meta++
			pids[e.Args["name"].(string)] = e.PID
		case "X":
			complete++
			if e.Dur < 0 {
				t.Fatalf("negative duration on %s", e.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if meta != 2 || complete != 4 {
		t.Fatalf("meta=%d complete=%d", meta, complete)
	}
	// Distinct layers land in distinct trace processes.
	if pids["core"] == pids["gpusim"] || pids["core"] == 0 || pids["gpusim"] == 0 {
		t.Fatalf("layer pids not separated: %v", pids)
	}
	// Simulated spans carry their clock domain and parent in args.
	for _, e := range trace.TraceEvents {
		if e.Name == "kernel/a" {
			if e.Args["clock"] != "simulated" {
				t.Fatal("simulated span missing clock arg")
			}
			if e.Args["parent"] == nil {
				t.Fatal("child span missing parent arg")
			}
		}
	}
}

func TestJSONLExport(t *testing.T) {
	tr := NewTracer(16)
	tr.Add("gpusim", "k1", 0, 0, 0, 0, 5)
	tr.Add("gpusim", "k2", 0, 0, 1, 5, 5)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d JSONL lines", lines)
	}
}

func TestSinkDump(t *testing.T) {
	s := NewSink(16)
	s.Counter("c").Inc()
	s.Tracer.Add("gpusim", "k", 0, 0, -1, 0, 1)
	dir := t.TempDir() + "/out"
	if err := s.Dump(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"metrics.json", "trace.json", "spans.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
	}
	var nilSink *Sink
	if err := nilSink.Dump(dir); err == nil {
		t.Fatal("nil sink dump must error")
	}
}

func TestDebugHandler(t *testing.T) {
	s := NewSink(16)
	s.Counter("core/jobs/completed").Add(2)
	s.Tracer.Add("gpusim", "k", 0, 0, -1, 0, 1)
	srv := httptest.NewServer(DebugHandler(s))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	if body := get("/debug/telemetry"); !strings.Contains(body, "core/jobs/completed") {
		t.Fatalf("snapshot body missing counter: %s", body)
	}
	if body := get("/debug/telemetry/trace"); !strings.Contains(body, "traceEvents") {
		t.Fatal("trace body not a chrome trace")
	}
	if body := get("/debug/vars"); !strings.Contains(body, "batchzk.telemetry") {
		t.Fatal("expvar missing batchzk.telemetry")
	}
	get("/debug/pprof/")
}
