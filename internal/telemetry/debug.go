package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Debug-route extension registry: higher layers (internal/obs) mount
// their operator surfaces — /healthz, /readyz, /debug/obs/slo — onto the
// same debug server without telemetry importing them. Handlers are
// registered once per pattern (later registrations overwrite) and are
// mounted into every DebugHandler built afterwards, so register at
// package init or before the server starts.
var (
	debugRouteMu sync.Mutex
	debugRoutes  = map[string]http.Handler{}
)

// RegisterDebugRoute mounts h at pattern on every subsequently built
// debug handler. Registering the same pattern again replaces the
// handler. Handlers should resolve their state at request time, so one
// registration serves every sink and engine lifecycle.
func RegisterDebugRoute(pattern string, h http.Handler) {
	if pattern == "" || h == nil {
		return
	}
	debugRouteMu.Lock()
	debugRoutes[pattern] = h
	debugRouteMu.Unlock()
}

// DebugRoutePatterns returns the registered extension patterns, sorted —
// introspection for tests and the CLI startup banner.
func DebugRoutePatterns() []string {
	debugRouteMu.Lock()
	defer debugRouteMu.Unlock()
	out := make([]string, 0, len(debugRoutes))
	for p := range debugRoutes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DebugHandler returns an http.Handler exposing the live introspection
// surfaces for sink s (falling back to the global sink when s is nil):
//
//	/metrics                 — Prometheus text exposition (v0.0.4)
//	/debug/vars              — expvar (includes batchzk.telemetry)
//	/debug/pprof/...         — runtime profiles
//	/debug/telemetry          — metrics snapshot JSON
//	/debug/telemetry/trace    — Chrome trace_event JSON of spans so far
//	/debug/telemetry/spans    — raw spans as JSONL
//	/debug/telemetry/timeline — per-job flight-recorder timelines JSON
//
// plus any routes registered with RegisterDebugRoute (internal/obs
// mounts /healthz, /readyz, and /debug/obs/slo).
func DebugHandler(s *Sink) http.Handler {
	PublishExpvar()
	resolve := func() *Sink { return Resolve(s) }
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		sink := resolve()
		if sink == nil || sink.Metrics == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = sink.Metrics.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		sink := resolve()
		if sink == nil {
			http.Error(w, `{"error":"telemetry disabled"}`, http.StatusServiceUnavailable)
			return
		}
		_ = sink.Metrics.WriteSnapshot(w)
	})
	mux.HandleFunc("/debug/telemetry/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = resolve().Trace().WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/telemetry/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = resolve().Trace().WriteJSONL(w)
	})
	mux.HandleFunc("/debug/telemetry/timeline", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = resolve().FlightRecorder().WriteJSON(w)
	})
	debugRouteMu.Lock()
	for pattern, h := range debugRoutes {
		mux.Handle(pattern, h)
	}
	debugRouteMu.Unlock()
	return mux
}

// ServeDebug starts the debug server on addr (e.g. "localhost:6060") and
// returns once the listener is bound; the server runs until the returned
// *http.Server is closed. The sink may be nil to follow the global one.
func ServeDebug(addr string, s *Sink) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: DebugHandler(s)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
