package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text-format (v0.0.4) exposition of a metrics registry,
// stdlib-only. Mapping:
//
//   - Counter    → <prefix>_<name>_total, TYPE counter
//   - Gauge      → <prefix>_<name> plus <prefix>_<name>_peak, TYPE gauge
//   - Histogram  → TYPE histogram: cumulative <name>_bucket{le="..."}
//     series over the populated log2 buckets, closed by le="+Inf",
//     plus <name>_sum and <name>_count
//
// Metric names pass through promName, which maps every character
// outside [a-zA-Z0-9_:] to '_' (our names use '/' as a separator) and
// prefixes "batchzk_". Our log2 buckets are [lo, hi) while Prometheus
// buckets are (-inf, le]; exposing hi as le shifts each boundary by at
// most one representable value, which is far below the 2x bucket
// resolution.

// promPrefix namespaces every exposed metric.
const promPrefix = "batchzk"

// promName sanitizes a registry metric name into a Prometheus metric
// name: [a-zA-Z0-9_:] survive, everything else becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(promPrefix)
	b.WriteByte('_')
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes backslashes and newlines for a HELP line.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeFamily emits the HELP/TYPE header for one metric family.
func writeFamily(w io.Writer, name, help, kind string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, promEscapeHelp(help)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

// WritePrometheus writes every metric in the registry in Prometheus
// text exposition format v0.0.4, families sorted by name for stable
// output. Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name) + "_total"
		if err := writeFamily(w, pn, "counter "+name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, s.Counters[name]); err != nil {
			return err
		}
	}

	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		pn := promName(name)
		if err := writeFamily(w, pn, "gauge "+name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, g.Value); err != nil {
			return err
		}
		peak := pn + "_peak"
		if err := writeFamily(w, peak, "high-water mark of gauge "+name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", peak, g.Peak); err != nil {
			return err
		}
	}

	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if err := writeFamily(w, pn, "histogram "+name, "histogram"); err != nil {
			return err
		}
		// Cumulative buckets. The top log2 bucket's upper bound is
		// MaxInt64 — fold it into +Inf rather than printing a bound no
		// observation can exceed. The exposition format requires the
		// +Inf bucket to equal _count, so _count uses the bucket total
		// (a snapshot's Count field may trail it by in-flight Observes).
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Hi == int64(^uint64(0)>>1) { // math.MaxInt64
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Hi, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, cum); err != nil {
			return err
		}
	}
	return nil
}

// promNamesUnique reports whether the registry's sanitized metric names
// collide (e.g. "a/b" and "a_b" both map to batchzk_a_b). Exposed for
// tests; collisions would produce duplicate families in the exposition.
func (r *Registry) promNamesUnique() bool {
	s := r.Snapshot()
	seen := map[string]bool{}
	add := func(names []string, suffix string) bool {
		for _, n := range names {
			pn := promName(n) + suffix
			if seen[pn] {
				return false
			}
			seen[pn] = true
		}
		return true
	}
	return add(sortedKeys(s.Counters), "_total") &&
		add(sortedKeys(s.Gauges), "") &&
		add(sortedKeys(s.Histograms), "")
}
