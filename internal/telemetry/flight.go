package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Job-level flight recorder.
//
// The span tracer answers "where did wall time go, per stage, across all
// jobs"; the flight recorder answers the orthogonal service question:
// "what happened to *this* job". Every proof job is minted a TraceID at
// submission and keeps it across stage hops, worker pools, retries,
// shard assignment, and dead-letter quarantine, accumulating one
// JobTimeline: submit → queue wait → per-stage spans (with attempt
// counts) → (retries/quarantine) → emit. Timelines export as JSON
// (WriteJSON, Sink.Dump's timeline.json, /debug/telemetry/timeline) and
// the same TraceID is stamped on the tracer's spans, so a Chrome trace
// and a timeline cross-reference by id.
//
// Like the rest of the package, every method is safe for concurrent use
// and a no-op on a nil receiver, so instrumentation points never guard.

// TraceID identifies one job across its whole flight; 0 means "none".
// IDs are minted per recorder and unique within it.
type TraceID uint64

// traceIDKey carries a TraceID through a context.Context.
type traceIDKey struct{}

// WithTraceID returns a context carrying the given trace id, for service
// layers that propagate job identity across API boundaries.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace id carried by ctx (0 when absent).
func TraceIDFrom(ctx context.Context) TraceID {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(traceIDKey{}).(TraceID)
	return id
}

// DefaultTimelineCap bounds how many job timelines a recorder retains.
const DefaultTimelineCap = 1 << 14

// StageTimeline is one stage's slice of a job timeline. Attempts counts
// every try including the successful (or terminally failed) one, so a
// stage that succeeded first time reports Attempts == 1.
type StageTimeline struct {
	Stage       string `json:"stage"`
	StartNs     int64  `json:"start_ns"`
	DurNs       int64  `json:"dur_ns"`
	QueueWaitNs int64  `json:"queue_wait_ns"`
	Attempts    int    `json:"attempts"`
}

// JobTimeline is the flight record of one job: every timestamp is in
// nanoseconds since the recorder's epoch (wall clock, monotonic-backed).
type JobTimeline struct {
	TraceID TraceID `json:"trace_id"`
	JobID   int     `json:"job_id"`
	// Shard is the prover shard the job was assigned to (-1 = unsharded).
	Shard    int   `json:"shard"`
	SubmitNs int64 `json:"submit_ns"`
	// StartNs stamps the first stage's dequeue; QueueWaitNs is the
	// admission wait StartNs − SubmitNs.
	StartNs     int64           `json:"start_ns"`
	EmitNs      int64           `json:"emit_ns"`
	QueueWaitNs int64           `json:"queue_wait_ns"`
	Stages      []StageTimeline `json:"stages"`
	// Retries counts retry waits taken across all stages (attempts − 1
	// summed over stages that retried) — recorded exactly once per retry.
	Retries         int    `json:"retries"`
	Quarantined     bool   `json:"quarantined,omitempty"`
	QuarantineStage string `json:"quarantine_stage,omitempty"`
	Error           string `json:"error,omitempty"`
	// Done marks the timeline complete (the job's result was emitted).
	Done bool `json:"done"`
}

// E2ENs returns the job's end-to-end latency (emit − submit), or 0 for
// an unfinished timeline.
func (t *JobTimeline) E2ENs() int64 {
	if !t.Done {
		return 0
	}
	return t.EmitNs - t.SubmitNs
}

// FlightRecorder accumulates job timelines keyed by trace id, bounded to
// a fixed number of jobs (oldest-submitted evicted first, counted in
// Dropped). All methods are nil-safe.
type FlightRecorder struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu      sync.Mutex
	jobs    map[TraceID]*JobTimeline
	order   []TraceID // submission order, drives eviction and export
	dropped int64
	cap     int
}

// NewFlightRecorder builds a recorder retaining at most capacity job
// timelines (0 = DefaultTimelineCap).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &FlightRecorder{
		epoch: time.Now(),
		jobs:  map[TraceID]*JobTimeline{},
		cap:   capacity,
	}
}

// Mint returns a fresh nonzero trace id (0 on a nil recorder).
func (f *FlightRecorder) Mint() TraceID {
	if f == nil {
		return 0
	}
	return TraceID(f.nextID.Add(1))
}

// Now returns nanoseconds since the recorder's epoch (0 on nil).
func (f *FlightRecorder) Now() int64 {
	if f == nil {
		return 0
	}
	return time.Since(f.epoch).Nanoseconds()
}

// timeline returns the timeline for id, creating it if needed; the
// caller must hold f.mu.
func (f *FlightRecorder) timeline(id TraceID) *JobTimeline {
	if t := f.jobs[id]; t != nil {
		return t
	}
	t := &JobTimeline{TraceID: id, Shard: -1}
	if len(f.order) >= f.cap {
		evict := f.order[0]
		f.order = f.order[1:]
		delete(f.jobs, evict)
		f.dropped++
	}
	f.jobs[id] = t
	f.order = append(f.order, t.TraceID)
	return t
}

// Submit opens (or re-opens, for a sharded hand-off) the timeline for a
// job entering a prover: a zero id mints a fresh one, a nonzero id is
// propagated unchanged so one job keeps one timeline across layers. A
// shard ≥ 0 records the assignment; re-submission into a shard updates
// the shard without resetting the original submit stamp. Returns the
// effective trace id (the input id on a nil recorder).
func (f *FlightRecorder) Submit(id TraceID, jobID, shard int) TraceID {
	if f == nil {
		return id
	}
	if id == 0 {
		id = f.Mint()
	}
	now := f.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.timeline(id)
	if t.SubmitNs == 0 && len(t.Stages) == 0 {
		t.SubmitNs = now
		t.JobID = jobID
	}
	if shard >= 0 {
		t.Shard = shard
	}
	return id
}

// Stage records one completed stage of a job: its start/duration (ns
// since epoch), how long the job waited in the queue feeding the stage,
// and how many attempts the stage took. The first stage also stamps the
// job's StartNs and admission QueueWaitNs.
func (f *FlightRecorder) Stage(id TraceID, stage string, startNs, durNs, queueWaitNs int64, attempts int) {
	if f == nil || id == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.timeline(id)
	if len(t.Stages) == 0 {
		t.StartNs = startNs
		t.QueueWaitNs = startNs - t.SubmitNs
	}
	t.Stages = append(t.Stages, StageTimeline{
		Stage:       stage,
		StartNs:     startNs,
		DurNs:       durNs,
		QueueWaitNs: queueWaitNs,
		Attempts:    attempts,
	})
}

// Retry records one retry wait of a job at a stage. Call it exactly once
// per backoff taken — the per-stage attempt totals live in the Stage
// records; this counter is the cross-stage sum the SLO view reads.
func (f *FlightRecorder) Retry(id TraceID, stage string, attempt int) {
	if f == nil || id == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.timeline(id).Retries++
}

// Quarantine marks a job dead-lettered at a stage with its terminal
// error chain.
func (f *FlightRecorder) Quarantine(id TraceID, stage, errMsg string) {
	if f == nil || id == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.timeline(id)
	t.Quarantined = true
	t.QuarantineStage = stage
	t.Error = errMsg
}

// Emit closes a job's timeline when its result leaves the prover. errMsg
// is empty for a successful proof.
func (f *FlightRecorder) Emit(id TraceID, errMsg string) {
	if f == nil || id == 0 {
		return
	}
	now := f.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.timeline(id)
	t.EmitNs = now
	t.Done = true
	if errMsg != "" && t.Error == "" {
		t.Error = errMsg
	}
}

// Timelines returns copies of the recorded timelines in submission order
// (ties broken by trace id, so the order is deterministic). Nil-safe.
func (f *FlightRecorder) Timelines() []JobTimeline {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]JobTimeline, 0, len(f.order))
	for _, id := range f.order {
		if t := f.jobs[id]; t != nil {
			c := *t
			c.Stages = append([]StageTimeline(nil), t.Stages...)
			out = append(out, c)
		}
	}
	f.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SubmitNs != out[j].SubmitNs {
			return out[i].SubmitNs < out[j].SubmitNs
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Timeline returns a copy of one job's timeline by trace id.
func (f *FlightRecorder) Timeline(id TraceID) (JobTimeline, bool) {
	if f == nil {
		return JobTimeline{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.jobs[id]
	if !ok {
		return JobTimeline{}, false
	}
	c := *t
	c.Stages = append([]StageTimeline(nil), t.Stages...)
	return c, true
}

// Dropped returns how many timelines were evicted by the capacity bound.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// timelineExport is the on-disk shape of a timeline dump.
type timelineExport struct {
	SchemaVersion int           `json:"schema_version"`
	Dropped       int64         `json:"dropped"`
	Jobs          []JobTimeline `json:"jobs"`
}

// TimelineSchemaVersion identifies the timeline.json layout.
const TimelineSchemaVersion = 1

// WriteJSON writes the recorded timelines as one indented JSON document,
// jobs in submission order — the per-job flight-recorder export. A nil
// recorder writes an empty document, so Dump never guards.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	exp := timelineExport{
		SchemaVersion: TimelineSchemaVersion,
		Dropped:       f.Dropped(),
		Jobs:          f.Timelines(),
	}
	if exp.Jobs == nil {
		exp.Jobs = []JobTimeline{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exp)
}

// SLOSummary is the service-level view of a set of finished timelines:
// end-to-end latency percentiles and where the pipeline's busy time went
// (per-stage cost attribution shares).
type SLOSummary struct {
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	Quarantined int     `json:"quarantined"`
	Retries     int     `json:"retries"`
	P50Ns       float64 `json:"p50_ns"`
	P90Ns       float64 `json:"p90_ns"`
	P99Ns       float64 `json:"p99_ns"`
	MaxNs       int64   `json:"max_ns"`
	// QueueWaitP99Ns is the p99 admission wait (submit → first dequeue).
	QueueWaitP99Ns float64 `json:"queue_wait_p99_ns"`
	// StageShares maps stage name → its fraction of total stage busy
	// time, summing to 1 over the recorded stages.
	StageShares map[string]float64 `json:"stage_shares"`
}

// SLO condenses the recorder's finished timelines into an SLOSummary.
// Latency percentiles are exact (computed from the sorted per-job
// latencies, nearest-rank), not histogram estimates. Nil-safe.
func (f *FlightRecorder) SLO() SLOSummary {
	s := SLOSummary{StageShares: map[string]float64{}}
	tls := f.Timelines()
	if len(tls) == 0 {
		return s
	}
	var lat, waits []int64
	stageNs := map[string]int64{}
	var totalStageNs int64
	for i := range tls {
		t := &tls[i]
		s.Jobs++
		if t.Quarantined {
			s.Quarantined++
		}
		s.Retries += t.Retries
		for _, st := range t.Stages {
			stageNs[st.Stage] += st.DurNs
			totalStageNs += st.DurNs
		}
		if !t.Done {
			continue
		}
		if !t.Quarantined && t.Error == "" {
			s.Completed++
		}
		lat = append(lat, t.E2ENs())
		waits = append(waits, t.QueueWaitNs)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		rank := func(sorted []int64, q float64) float64 {
			i := int(q * float64(len(sorted)-1))
			return float64(sorted[i])
		}
		s.P50Ns = rank(lat, 0.50)
		s.P90Ns = rank(lat, 0.90)
		s.P99Ns = rank(lat, 0.99)
		s.MaxNs = lat[len(lat)-1]
		s.QueueWaitP99Ns = rank(waits, 0.99)
	}
	if totalStageNs > 0 {
		for name, ns := range stageNs {
			s.StageShares[name] = float64(ns) / float64(totalStageNs)
		}
	}
	return s
}
