package telemetry

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Host memory accountant.
//
// The ROADMAP's memory-bounded streaming prover needs a CI-enforceable
// claim: a soak run's host heap stays flat, wave after wave. Go's
// allocator makes that claim invisible to a single end-of-run
// measurement — the high-water mark is what matters — so the accountant
// samples runtime.ReadMemStats on a background ticker, folds every
// sample into gauges on the sink's registry (whose Peak values surface
// on /metrics as *_peak series and on expvar via PublishExpvar), and
// keeps per-phase high-water marks so a report can attribute the peak
// to the wave or pipeline phase that caused it.

// DefaultMemSampleInterval is the sampler ticker period when none is
// given: fine enough to catch per-wave peaks, coarse enough that
// ReadMemStats' stop-the-world cost stays invisible.
const DefaultMemSampleInterval = 10 * time.Millisecond

// MemPhase is the high-water record of one named sampling phase. A
// phase records one visit: re-entering a name via SetPhase starts a
// fresh window (baseline and peaks reset), so per-wave gates measure
// each wave's own high-water mark rather than a running session max.
type MemPhase struct {
	Name    string `json:"name"`
	Samples int64  `json:"samples"`
	// PeakHeapAllocBytes is the phase's high-water live-heap mark — the
	// figure the flat-memory gate compares across soak waves.
	PeakHeapAllocBytes uint64 `json:"peak_heap_alloc_bytes"`
	// PeakHeapSysBytes is the high-water mark of heap memory obtained
	// from the OS (what the process actually holds).
	PeakHeapSysBytes uint64 `json:"peak_heap_sys_bytes"`
	// BaselineHeapAllocBytes is the live heap at phase entry; the phase
	// inherits whatever was already resident when it began.
	BaselineHeapAllocBytes uint64 `json:"baseline_heap_alloc_bytes"`
	// WorkingSetBytes is PeakHeapAllocBytes − BaselineHeapAllocBytes
	// (clamped at zero): the heap growth attributable to this phase
	// itself, the number a streaming prover is supposed to hold flat.
	WorkingSetBytes uint64 `json:"working_set_bytes"`
	// GCCycles is how many collections completed during the phase.
	GCCycles uint32 `json:"gc_cycles"`
}

// MemSampler is a background runtime.ReadMemStats sampler with named
// phases. All methods are safe for concurrent use and no-ops on a nil
// receiver, matching the rest of the package.
type MemSampler struct {
	sink     *Sink
	interval time.Duration

	mu       sync.Mutex
	phase    string
	phases   map[string]*MemPhase
	order    []string
	lastGC   uint32
	lastHeap uint64 // most recent HeapAlloc reading (phase baselines)
	peak     uint64 // process-wide HeapAlloc high-water mark

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartMemSampler starts a sampler ticking every interval
// (0 = DefaultMemSampleInterval) into sink (nil = the global sink at
// each sample). Every sample updates the registry gauges
//
//	mem/heap_alloc_bytes   — live heap (peak series = high-water mark)
//	mem/heap_sys_bytes     — heap obtained from the OS
//	mem/heap_objects       — live object count
//	mem/stack_inuse_bytes  — goroutine stack memory
//	mem/gc_cycles          — completed collections
//
// so the high-water marks are visible on /metrics and expvar while the
// run is still going. Stop the sampler to get the per-phase report.
func StartMemSampler(sink *Sink, interval time.Duration) *MemSampler {
	if interval <= 0 {
		interval = DefaultMemSampleInterval
	}
	m := &MemSampler{
		sink:     sink,
		interval: interval,
		phase:    "init",
		phases:   map[string]*MemPhase{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.Sample()
	go func() {
		defer close(m.done)
		tick := time.NewTicker(m.interval)
		defer tick.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				m.Sample()
			}
		}
	}()
	return m
}

// SetPhase switches the sampler to a named phase, taking one sample
// first so the boundary belongs to the phase that just ended. Entering
// a phase always starts a fresh record — baseline at the boundary
// reading, peaks reset — so a re-entered name reports its most recent
// visit, not a cumulative session max.
func (m *MemSampler) SetPhase(name string) {
	if m == nil {
		return
	}
	m.Sample()
	m.mu.Lock()
	m.phase = name
	if _, seen := m.phases[name]; !seen {
		m.order = append(m.order, name)
	}
	m.phases[name] = &MemPhase{Name: name, BaselineHeapAllocBytes: m.lastHeap}
	m.mu.Unlock()
}

// Sample takes one ReadMemStats reading immediately — call it at the
// moments that matter (wave boundaries, right after a burst) so peaks
// cannot slip between ticks.
func (m *MemSampler) Sample() {
	if m == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	m.mu.Lock()
	p := m.phases[m.phase]
	if p == nil {
		// First sample of an implicitly entered phase ("init"): its own
		// reading is the baseline.
		p = &MemPhase{Name: m.phase, BaselineHeapAllocBytes: ms.HeapAlloc}
		m.phases[m.phase] = p
		m.order = append(m.order, m.phase)
	}
	p.Samples++
	if ms.HeapAlloc > p.PeakHeapAllocBytes {
		p.PeakHeapAllocBytes = ms.HeapAlloc
	}
	if p.PeakHeapAllocBytes > p.BaselineHeapAllocBytes {
		p.WorkingSetBytes = p.PeakHeapAllocBytes - p.BaselineHeapAllocBytes
	}
	if ms.HeapSys > p.PeakHeapSysBytes {
		p.PeakHeapSysBytes = ms.HeapSys
	}
	p.GCCycles += ms.NumGC - m.lastGC
	m.lastGC = ms.NumGC
	m.lastHeap = ms.HeapAlloc
	if ms.HeapAlloc > m.peak {
		m.peak = ms.HeapAlloc
	}
	m.mu.Unlock()

	sink := Resolve(m.sink)
	sink.Gauge("mem/heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	sink.Gauge("mem/heap_sys_bytes").Set(int64(ms.HeapSys))
	sink.Gauge("mem/heap_objects").Set(int64(ms.HeapObjects))
	sink.Gauge("mem/stack_inuse_bytes").Set(int64(ms.StackInuse))
	sink.Gauge("mem/gc_cycles").Set(int64(ms.NumGC))
}

// PeakHeapAllocBytes returns the process-wide live-heap high-water mark
// observed so far.
func (m *MemSampler) PeakHeapAllocBytes() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Phases returns copies of the per-phase high-water records in the
// order the phases were first entered. Nil-safe.
func (m *MemSampler) Phases() []MemPhase {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemPhase, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, *m.phases[name])
	}
	return out
}

// PhasePeaks returns phase name → peak live-heap bytes, for gates that
// compare waves without caring about order. Nil-safe.
func (m *MemSampler) PhasePeaks() map[string]uint64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.phases))
	for name, p := range m.phases {
		out[name] = p.PeakHeapAllocBytes
	}
	return out
}

// PhaseNames returns the sampled phase names, sorted. Nil-safe.
func (m *MemSampler) PhaseNames() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// Stop takes a final sample, stops the background goroutine, waits for
// it to exit, and returns the per-phase report. Idempotent — including
// under concurrent Stop calls — and nil-safe.
func (m *MemSampler) Stop() []MemPhase {
	if m == nil {
		return nil
	}
	m.Sample()
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	return m.Phases()
}
