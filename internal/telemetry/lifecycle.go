package telemetry

import (
	"net/http"
	"sync"
	"time"
)

// Lifecycle management for the long-running telemetry components.
//
// The sink itself is passive — counters and histograms live and die with
// the process — but the mem sampler and the debug server own goroutines
// and a listener. A Runtime collects every such component started through
// it and shuts all of them down with one idempotent Close, so a CLI's
// exit path (or a test's cleanup) cannot leak a ticker goroutine or a
// bound port no matter how many times, or from how many goroutines, it
// runs. Components started twice are both tracked; Close stops both.

// Runtime owns the started telemetry components of one process (or one
// test). The zero value is ready to use. Nil-safe like the rest of the
// package: every method no-ops on a nil receiver.
type Runtime struct {
	mu       sync.Mutex
	closed   bool
	done     chan struct{} // closed when the first Close finishes
	samplers []*MemSampler
	servers  []*http.Server
	cleanup  []func()
}

// StartMemSampler starts a mem sampler (see the package-level function)
// and registers it for Close. Starting after Close returns a running
// sampler that Close has already passed — the caller keeps the handle
// and remains responsible for it — so start components before closing.
func (rt *Runtime) StartMemSampler(sink *Sink, interval time.Duration) *MemSampler {
	m := StartMemSampler(sink, interval)
	if rt == nil {
		return m
	}
	rt.mu.Lock()
	rt.samplers = append(rt.samplers, m)
	rt.mu.Unlock()
	return m
}

// ServeDebug starts the debug server (see the package-level function)
// and registers it for Close.
func (rt *Runtime) ServeDebug(addr string, s *Sink) (*http.Server, error) {
	srv, err := ServeDebug(addr, s)
	if err != nil {
		return nil, err
	}
	if rt == nil {
		return srv, nil
	}
	rt.mu.Lock()
	rt.servers = append(rt.servers, srv)
	rt.mu.Unlock()
	return srv, nil
}

// OnClose registers an arbitrary cleanup to run during Close, after the
// samplers and servers stop. Nil-safe; nil funcs are ignored.
func (rt *Runtime) OnClose(f func()) {
	if rt == nil || f == nil {
		return
	}
	rt.mu.Lock()
	rt.cleanup = append(rt.cleanup, f)
	rt.mu.Unlock()
}

// Close stops every registered component: samplers stop and drain their
// goroutines, debug servers close their listeners, cleanups run in
// registration order. Safe to call any number of times from any number
// of goroutines; only the first call does the work, and every call
// returns after that work is done. Nil-safe.
func (rt *Runtime) Close() {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	if rt.closed {
		// A later or concurrent Close: wait for the first one to finish so
		// every caller returns to a fully shut-down runtime.
		done := rt.done
		rt.mu.Unlock()
		<-done
		return
	}
	rt.closed = true
	rt.done = make(chan struct{})
	done := rt.done
	samplers := rt.samplers
	servers := rt.servers
	cleanup := rt.cleanup
	rt.mu.Unlock()

	defer close(done)
	for _, m := range samplers {
		m.Stop()
	}
	for _, srv := range servers {
		_ = srv.Close()
	}
	for _, f := range cleanup {
		f()
	}
}
