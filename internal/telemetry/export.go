package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (the "X" complete-event flavor plus "M" metadata events), loadable in
// chrome://tracing and https://ui.perfetto.dev.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event container object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the recorded spans in Chrome trace_event
// format. Each layer becomes its own trace process (wall-clock and
// simulated layers therefore never share a timeline), and each span's
// TID becomes a named thread track, so a pipelined run renders as
// Figure 9's staggered parallelogram while a naive run renders as
// sequential blocks. Events are emitted in a canonical order — metadata
// first, then spans sorted by (timestamp, pid, tid, id) — so two exports
// of the same spans are byte-identical and trace snapshots diff cleanly
// in tests and CI artifacts, regardless of the concurrent record order.
// Nil-safe: a nil tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Layer != spans[j].Layer {
			return spans[i].Layer < spans[j].Layer
		}
		if spans[i].TID != spans[j].TID {
			return spans[i].TID < spans[j].TID
		}
		return spans[i].ID < spans[j].ID
	})

	// Stable layer → pid assignment.
	layers := map[string]int{}
	var layerNames []string
	for _, s := range spans {
		if _, ok := layers[s.Layer]; !ok {
			layers[s.Layer] = 0
			layerNames = append(layerNames, s.Layer)
		}
	}
	sort.Strings(layerNames)
	for i, l := range layerNames {
		layers[l] = i + 1
	}

	trace := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for _, l := range layerNames {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: layers[l],
			Args: map[string]any{"name": l},
		})
	}
	for _, s := range spans {
		args := map[string]any{"id": uint64(s.ID)}
		if s.Parent != 0 {
			args["parent"] = uint64(s.Parent)
		}
		if s.Task >= 0 {
			args["task"] = s.Task
		}
		if s.Trace != 0 {
			args["trace"] = uint64(s.Trace)
		}
		if s.Sim {
			args["clock"] = "simulated"
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name:  s.Name,
			Cat:   s.Layer,
			Phase: "X",
			TS:    s.Start / 1e3,
			Dur:   s.Dur / 1e3,
			PID:   layers[s.Layer],
			TID:   s.TID,
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// WriteJSONL writes one span per line as JSON, oldest first — the raw
// export for ad-hoc analysis. Nil-safe.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot writes the registry's metrics snapshot as indented JSON.
// Nil-safe: a nil registry writes an empty snapshot.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Dump writes the sink's full state into dir (created if missing):
//
//	metrics.json  — the metrics snapshot (counters, gauges, histograms)
//	trace.json    — Chrome trace_event timeline (chrome://tracing, Perfetto)
//	spans.jsonl   — raw spans, one JSON object per line
//	timeline.json — per-job flight-recorder timelines (trace ids, stage
//	                spans, retries, shard assignment, quarantine)
//
// Nil-safe: a nil sink is an error (nothing to dump).
func (s *Sink) Dump(dir string) error {
	if s == nil {
		return fmt.Errorf("telemetry: no sink to dump")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name  string
		write func(io.Writer) error
	}{
		{"metrics.json", s.Metrics.WriteSnapshot},
		{"trace.json", s.Tracer.WriteChromeTrace},
		{"spans.jsonl", s.Tracer.WriteJSONL},
		{"timeline.json", s.Flight.WriteJSON},
	}
	for _, f := range files {
		out, err := os.Create(filepath.Join(dir, f.name))
		if err != nil {
			return err
		}
		werr := f.write(out)
		cerr := out.Close()
		if werr != nil {
			return fmt.Errorf("telemetry: writing %s: %w", f.name, werr)
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
