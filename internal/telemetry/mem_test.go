package telemetry

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

func TestMemSamplerPhases(t *testing.T) {
	s := NewSink(0)
	// A huge interval makes the ticker irrelevant: only the explicit
	// Sample/SetPhase/Stop calls below contribute, so counts are exact.
	m := StartMemSampler(s, time.Hour)

	m.SetPhase("wave00")
	hold := make([]byte, 1<<20)
	m.Sample()
	m.SetPhase("wave01")
	m.Sample()
	phases := m.Stop()
	_ = hold[0]

	names := m.PhaseNames()
	want := []string{"init", "wave00", "wave01"}
	if len(names) != len(want) {
		t.Fatalf("phases: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases: %v, want %v", names, want)
		}
	}
	// Phases() preserves entry order; "init" is first.
	if phases[0].Name != "init" || phases[1].Name != "wave00" {
		t.Fatalf("phase order: %+v", phases)
	}
	for _, p := range phases {
		if p.Samples == 0 || p.PeakHeapAllocBytes == 0 || p.PeakHeapSysBytes == 0 {
			t.Fatalf("phase %s has empty high-water record: %+v", p.Name, p)
		}
	}
	if m.PeakHeapAllocBytes() == 0 {
		t.Fatal("no process-wide peak recorded")
	}
	peaks := m.PhasePeaks()
	if peaks["wave00"] == 0 {
		t.Fatalf("phase peaks: %v", peaks)
	}

	// Every sample feeds the registry gauges, whose Peak values are the
	// live view of the same high-water marks.
	g := s.Gauge("mem/heap_alloc_bytes")
	if g.Value() == 0 || g.Peak() == 0 {
		t.Fatalf("gauge not fed: value %d peak %d", g.Value(), g.Peak())
	}
	if uint64(g.Peak()) != m.PeakHeapAllocBytes() {
		t.Fatalf("gauge peak %d != sampler peak %d", g.Peak(), m.PeakHeapAllocBytes())
	}

	// Stop is idempotent.
	if again := m.Stop(); len(again) != len(phases) {
		t.Fatalf("second Stop: %+v", again)
	}
}

// TestMemSamplerPhaseReset: re-entering a phase name starts a fresh
// high-water window. Without the reset, a streaming gate comparing
// waves would see every wave inherit the session max and read as flat
// even when memory balloons (or as ballooning when it is flat).
func TestMemSamplerPhaseReset(t *testing.T) {
	m := StartMemSampler(NewSink(0), time.Hour)

	m.SetPhase("wave")
	hold := make([]byte, 16<<20)
	m.Sample()
	firstPeak := m.PhasePeaks()["wave"]
	_ = hold[0]
	hold = nil
	runtime.GC()

	m.SetPhase("idle")
	m.SetPhase("wave") // second visit: the record must start over
	m.Sample()
	phases := m.Stop()

	secondPeak := m.PhasePeaks()["wave"]
	if secondPeak >= firstPeak {
		t.Fatalf("revisited phase kept the old high-water mark: first %d, second %d", firstPeak, secondPeak)
	}
	// Entry order lists each name once, in first-entry order.
	var names []string
	for _, p := range phases {
		names = append(names, p.Name)
	}
	want := []string{"init", "wave", "idle"}
	if len(names) != len(want) {
		t.Fatalf("phases: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases: %v, want %v", names, want)
		}
	}
	// Working-set attribution: every visited phase has a baseline, and
	// the 16 MiB hold is attributed to the first wave's working set —
	// which we can only observe via the live record before the revisit,
	// i.e. peak − baseline at first sample time.
	for _, p := range phases {
		if p.Samples > 0 && p.BaselineHeapAllocBytes == 0 {
			t.Errorf("phase %s has no baseline: %+v", p.Name, p)
		}
		if p.WorkingSetBytes != p.PeakHeapAllocBytes-p.BaselineHeapAllocBytes &&
			!(p.WorkingSetBytes == 0 && p.PeakHeapAllocBytes <= p.BaselineHeapAllocBytes) {
			t.Errorf("phase %s working set inconsistent: %+v", p.Name, p)
		}
	}
}

func TestMemSamplerBackgroundTicks(t *testing.T) {
	m := StartMemSampler(NewSink(0), time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	phases := m.Stop()
	if len(phases) != 1 || phases[0].Samples < 3 {
		t.Fatalf("background ticker barely sampled: %+v", phases)
	}
}

func TestNilMemSamplerSafety(t *testing.T) {
	var m *MemSampler
	m.SetPhase("x")
	m.Sample()
	if m.PeakHeapAllocBytes() != 0 || m.Phases() != nil || m.PhasePeaks() != nil || m.PhaseNames() != nil {
		t.Fatal("nil sampler leaked state")
	}
	if m.Stop() != nil {
		t.Fatal("nil Stop returned phases")
	}
}

// TestDebugServerReenable is the double-registration guard: enabling
// telemetry, serving debug handlers, disabling, and enabling again must
// not panic on expvar re-registration (expvar.Publish panics on reuse).
func TestDebugServerReenable(t *testing.T) {
	defer Enable(nil)
	for round := 0; round < 3; round++ {
		s := NewSink(0)
		Enable(s)
		srv, err := ServeDebug("127.0.0.1:0", s)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		resp, err := http.Get("http://" + srv.Addr + "/debug/telemetry/timeline")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: timeline endpoint returned %s", round, resp.Status)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
		Enable(nil)
	}
}
