package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/b")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a/b") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.Peak() != 5 {
		t.Fatalf("gauge value=%d peak=%d, want 1/5", g.Value(), g.Peak())
	}
	g.Set(7)
	if g.Peak() != 7 {
		t.Fatalf("peak after Set = %d", g.Peak())
	}

	// Nil-safety of every recording surface.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	var nr *Registry
	var ns *Sink
	nc.Add(1)
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if nr.Counter("x") != nil || ns.Histogram("y") != nil || ns.Trace() != nil {
		t.Fatal("nil registry/sink must hand out nil instruments")
	}
	nr.Snapshot() // must not panic
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// Log-bucketed estimates: within a factor of 2 of the true quantile.
	checks := []struct{ q, want float64 }{{0.5, 500}, {0.9, 900}, {0.99, 990}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Fatalf("q%.2f = %.0f, want within 2x of %.0f", c.q, got, c.want)
		}
	}
	if s.P50 != s.Quantile(0.5) || s.P99 != s.Quantile(0.99) {
		t.Fatal("summary fields must match Quantile")
	}
	// Quantiles clamp to the observed range.
	if s.Quantile(0) < float64(s.Min) || s.Quantile(1) > float64(s.Max) {
		t.Fatal("quantiles escaped [min, max]")
	}
	// Degenerate and edge inputs.
	var empty Histogram
	if es := empty.Snapshot(); es.Count != 0 || es.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must be all-zero")
	}
	var neg Histogram
	neg.Observe(-5) // clamps to 0
	if ns := neg.Snapshot(); ns.Count != 1 || ns.Min != 0 || ns.Max != 0 {
		t.Fatalf("negative observation: %+v", ns)
	}
	var big Histogram
	big.Observe(math.MaxInt64)
	if bs := big.Snapshot(); bs.Max != math.MaxInt64 || bs.Count != 1 {
		t.Fatalf("max observation: %+v", bs)
	}
}

func TestBucketBoundsCoverInt64(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 1023, 1024, math.MaxInt64} {
		i := bucketOf(v)
		lo, hi := bucketBounds(i)
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d landed in bucket %d = [%d, %d)", v, i, lo, hi)
		}
	}
}

// TestConcurrentRegistry hammers counters, gauges and histograms from
// many goroutines while snapshotting concurrently, asserting no torn
// reads (bucket totals never below the snapshot count), monotone
// counters across successive snapshots, and exact final totals. Run with
// -race (the Makefile's `race` target does).
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot reader: counters must be monotone between snapshots and
	// histogram bucket sums must cover the reported count.
	snapErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := map[string]int64{}
		for {
			s := r.Snapshot()
			for name, v := range s.Counters {
				if v < prev[name] {
					select {
					case snapErr <- errf("counter %s went backwards: %d < %d", name, v, prev[name]):
					default:
					}
					return
				}
				prev[name] = v
			}
			for name, h := range s.Histograms {
				sum := int64(0)
				for _, b := range h.Buckets {
					sum += b.Count
				}
				if sum < h.Count {
					select {
					case snapErr <- errf("histogram %s: buckets %d < count %d", name, sum, h.Count):
					default:
					}
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("hits")
			h := r.Histogram("lat")
			gauge := r.Gauge("inflight")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i%1000 + 1))
				gauge.Add(1)
				gauge.Add(-1)
			}
		}(g)
	}
	// Wait for the writers (all but the snapshotter), then stop it.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish quickly; signal the snapshotter once counters reach
	// the final total.
	for r.Counter("hits").Value() < goroutines*perG {
		runtime.Gosched()
	}
	close(stop)
	<-done

	select {
	case err := <-snapErr:
		t.Fatal(err)
	default:
	}
	s := r.Snapshot()
	if s.Counters["hits"] != goroutines*perG {
		t.Fatalf("final count %d, want %d", s.Counters["hits"], goroutines*perG)
	}
	h := s.Histograms["lat"]
	if h.Count != goroutines*perG || h.Min != 1 || h.Max != 1000 {
		t.Fatalf("final histogram %+v", h)
	}
	if g := s.Gauges["inflight"]; g.Value != 0 || g.Peak < 1 {
		t.Fatalf("final gauge %+v", g)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(100)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 3 || s.Gauges["g"].Value != 9 || s.Histograms["h"].Count != 1 {
		t.Fatalf("round-tripped snapshot %+v", s)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty: every quantile is 0, never NaN.
	var empty HistogramSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty quantile(%v) = %v, want 0", q, got)
		}
	}

	// Single observation → single bucket: the quantile collapses to the
	// observed value (midpoint clamped by Min == Max).
	var one Histogram
	one.Observe(5)
	s := one.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 5 {
			t.Fatalf("single-observation quantile(%v) = %v, want 5", q, got)
		}
	}

	// Several observations in one log2 bucket: defined, inside the
	// bucket, NaN-free.
	var oneBucket Histogram
	for _, v := range []int64{4, 5, 6, 7} {
		oneBucket.Observe(v)
	}
	sb := oneBucket.Snapshot()
	if len(sb.Buckets) != 1 {
		t.Fatalf("expected one bucket, got %+v", sb.Buckets)
	}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		got := sb.Quantile(q)
		if math.IsNaN(got) || got < 4 || got > 7 {
			t.Fatalf("one-bucket quantile(%v) = %v, want in [4, 7]", q, got)
		}
	}
	if mid := sb.Quantile(0.5); mid != 6 {
		t.Fatalf("one-bucket median = %v, want bucket midpoint 6", mid)
	}

	// Hand-assembled snapshot without Min/Max (as a bench report might
	// build): the midpoint must not be clamped to the zero range.
	hand := HistogramSnapshot{
		Count:   4,
		Buckets: []HistogramBucket{{Lo: 4, Hi: 8, Count: 4}},
	}
	if got := hand.Quantile(0.5); got != 6 {
		t.Fatalf("hand-built single-bucket quantile = %v, want 6", got)
	}

	// All-zero observations stay exactly 0.
	var zeros Histogram
	zeros.Observe(0)
	zeros.Observe(0)
	if got := zeros.Snapshot().Quantile(0.9); got != 0 {
		t.Fatalf("all-zero quantile = %v, want 0", got)
	}
}

func TestExpvarPerRegistry(t *testing.T) {
	// Two registries must both be reachable on expvar under their own
	// names — the old process-wide once silently dropped the second.
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("hits").Add(11)
	r2.Counter("hits").Add(22)
	if err := r1.PublishExpvar("batchzk.test.reg1"); err != nil {
		t.Fatal(err)
	}
	if err := r2.PublishExpvar("batchzk.test.reg2"); err != nil {
		t.Fatal(err)
	}
	read := func(name string) Snapshot {
		t.Helper()
		v := expvar.Get(name)
		if v == nil {
			t.Fatalf("%s not published", name)
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return s
	}
	if got := read("batchzk.test.reg1").Counters["hits"]; got != 11 {
		t.Fatalf("reg1 hits = %d, want 11", got)
	}
	if got := read("batchzk.test.reg2").Counters["hits"]; got != 22 {
		t.Fatalf("reg2 hits = %d, want 22", got)
	}

	// The snapshot is live, not captured at publish time.
	r1.Counter("hits").Add(1)
	if got := read("batchzk.test.reg1").Counters["hits"]; got != 12 {
		t.Fatalf("reg1 snapshot is stale: %d, want 12", got)
	}

	// Republishing a taken name errors instead of panicking.
	err := r2.PublishExpvar("batchzk.test.reg1")
	if !errors.Is(err, ErrExpvarPublished) {
		t.Fatalf("duplicate publish: err = %v, want ErrExpvarPublished", err)
	}
	// Degenerate inputs.
	if err := (*Registry)(nil).PublishExpvar("x"); err == nil {
		t.Fatal("nil registry publish must error")
	}
	if err := r1.PublishExpvar(""); err == nil {
		t.Fatal("empty name must error")
	}

	// The package-level PublishExpvar stays idempotent alongside.
	PublishExpvar()
	PublishExpvar()
	if expvar.Get("batchzk.telemetry") == nil {
		t.Fatal("batchzk.telemetry not published")
	}
}

func TestGlobalSink(t *testing.T) {
	defer Enable(nil)
	if Active() != nil {
		t.Fatal("telemetry must start disabled")
	}
	s := NewSink(16)
	Enable(s)
	if Active() != s || Resolve(nil) != s {
		t.Fatal("global sink not resolvable")
	}
	other := NewSink(16)
	if Resolve(other) != other {
		t.Fatal("explicit sink must win")
	}
	Enable(nil)
	if Active() != nil {
		t.Fatal("Enable(nil) must disable")
	}
}
