package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestTraceIDContext(t *testing.T) {
	if got := TraceIDFrom(context.Background()); got != 0 {
		t.Fatalf("empty context carries trace id %d", got)
	}
	if got := TraceIDFrom(nil); got != 0 {
		t.Fatalf("nil context carries trace id %d", got)
	}
	ctx := WithTraceID(context.Background(), 42)
	if got := TraceIDFrom(ctx); got != 42 {
		t.Fatalf("TraceIDFrom = %d, want 42", got)
	}
}

func TestFlightRecorderLifecycle(t *testing.T) {
	f := NewFlightRecorder(0)

	id := f.Submit(0, 7, -1)
	if id == 0 {
		t.Fatal("Submit(0, ...) did not mint a trace id")
	}
	// Re-submission with the minted id (a sharded hand-off) keeps one
	// timeline and records the shard without resetting the submit stamp.
	tl0, _ := f.Timeline(id)
	if got := f.Submit(id, 7, 2); got != id {
		t.Fatalf("re-Submit changed the trace id: %d -> %d", id, got)
	}
	tl, ok := f.Timeline(id)
	if !ok {
		t.Fatal("timeline lost after re-submit")
	}
	if tl.Shard != 2 || tl.SubmitNs != tl0.SubmitNs || tl.JobID != 7 {
		t.Fatalf("re-submit corrupted the timeline: %+v", tl)
	}

	f.Stage(id, "commit", 100, 50, 10, 1)
	f.Stage(id, "opening", 200, 80, 5, 3)
	f.Retry(id, "opening", 1)
	f.Retry(id, "opening", 2)
	f.Emit(id, "")

	tl, _ = f.Timeline(id)
	if !tl.Done || tl.Retries != 2 || len(tl.Stages) != 2 {
		t.Fatalf("timeline: %+v", tl)
	}
	// The first stage stamps the job's StartNs and admission queue wait.
	if tl.StartNs != 100 || tl.QueueWaitNs != 100-tl.SubmitNs {
		t.Fatalf("admission stamps: start %d wait %d submit %d", tl.StartNs, tl.QueueWaitNs, tl.SubmitNs)
	}
	if tl.Stages[1].Attempts != 3 || tl.Stages[1].Stage != "opening" {
		t.Fatalf("stage record: %+v", tl.Stages[1])
	}
	if tl.E2ENs() <= 0 {
		t.Fatalf("finished timeline has e2e %d", tl.E2ENs())
	}
}

func TestFlightRecorderQuarantine(t *testing.T) {
	f := NewFlightRecorder(0)
	id := f.Submit(0, 0, -1)
	f.Stage(id, "commit", 1, 1, 0, 4)
	f.Quarantine(id, "commit", "kernel fault")
	f.Emit(id, "prove job 0: kernel fault")
	tl, _ := f.Timeline(id)
	if !tl.Quarantined || tl.QuarantineStage != "commit" {
		t.Fatalf("quarantine not recorded: %+v", tl)
	}
	// The quarantine's error chain wins over the emit error.
	if tl.Error != "kernel fault" {
		t.Fatalf("error = %q", tl.Error)
	}
	if !tl.Done {
		t.Fatal("quarantined job never emitted")
	}
}

func TestFlightRecorderEviction(t *testing.T) {
	f := NewFlightRecorder(2)
	a := f.Submit(0, 0, -1)
	b := f.Submit(0, 1, -1)
	c := f.Submit(0, 2, -1)
	if f.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", f.Dropped())
	}
	if _, ok := f.Timeline(a); ok {
		t.Fatal("oldest timeline survived eviction")
	}
	for _, id := range []TraceID{b, c} {
		if _, ok := f.Timeline(id); !ok {
			t.Fatalf("timeline %d evicted out of order", id)
		}
	}
}

func TestFlightWriteJSONSchema(t *testing.T) {
	f := NewFlightRecorder(0)
	id := f.Submit(0, 3, 1)
	f.Stage(id, "commit", 10, 5, 2, 1)
	f.Emit(id, "")

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var exp struct {
		SchemaVersion int           `json:"schema_version"`
		Dropped       int64         `json:"dropped"`
		Jobs          []JobTimeline `json:"jobs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &exp); err != nil {
		t.Fatal(err)
	}
	if exp.SchemaVersion != TimelineSchemaVersion || len(exp.Jobs) != 1 {
		t.Fatalf("export: %+v", exp)
	}
	if exp.Jobs[0].TraceID != id || exp.Jobs[0].Shard != 1 {
		t.Fatalf("exported job: %+v", exp.Jobs[0])
	}

	// A nil recorder still writes a well-formed empty document.
	buf.Reset()
	var nilRec *FlightRecorder
	if err := nilRec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"jobs": []`) {
		t.Fatalf("nil export: %s", buf.String())
	}
}

func TestFlightSLO(t *testing.T) {
	f := NewFlightRecorder(0)
	for i := 0; i < 10; i++ {
		id := f.Submit(0, i, -1)
		f.Stage(id, "commit", 10, 30, 0, 1)
		f.Stage(id, "opening", 40, 10, 0, 1)
		if i == 9 {
			f.Retry(id, "opening", 1)
			f.Quarantine(id, "opening", "boom")
		}
		f.Emit(id, "")
	}
	s := f.SLO()
	if s.Jobs != 10 || s.Completed != 9 || s.Quarantined != 1 || s.Retries != 1 {
		t.Fatalf("slo: %+v", s)
	}
	if s.P50Ns > s.P90Ns || s.P90Ns > s.P99Ns || int64(s.P99Ns) > s.MaxNs {
		t.Fatalf("percentiles out of order: %+v", s)
	}
	var total float64
	for _, share := range s.StageShares {
		total += share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("stage shares sum to %v: %v", total, s.StageShares)
	}
	// commit burned 3/4 of the stage time in every job.
	if share := s.StageShares["commit"]; share < 0.74 || share > 0.76 {
		t.Fatalf("commit share = %v", share)
	}
}

func TestNilFlightRecorderSafety(t *testing.T) {
	var f *FlightRecorder
	if id := f.Submit(9, 0, 0); id != 9 {
		t.Fatalf("nil Submit returned %d, want the input id", id)
	}
	f.Stage(1, "s", 0, 0, 0, 1)
	f.Retry(1, "s", 1)
	f.Quarantine(1, "s", "e")
	f.Emit(1, "")
	if f.Mint() != 0 || f.Now() != 0 || f.Dropped() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if tls := f.Timelines(); tls != nil {
		t.Fatalf("nil Timelines = %v", tls)
	}
	if s := f.SLO(); s.Jobs != 0 {
		t.Fatalf("nil SLO = %+v", s)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := f.Submit(0, g*50+i, g)
				f.Stage(id, "commit", int64(i), 1, 0, 1)
				f.Retry(id, "commit", 1)
				f.Emit(id, "")
			}
		}(g)
	}
	wg.Wait()
	tls := f.Timelines()
	if len(tls) != 400 {
		t.Fatalf("recorded %d timelines, want 400", len(tls))
	}
	if s := f.SLO(); s.Retries != 400 || s.Completed != 400 {
		t.Fatalf("slo: %+v", s)
	}
}

// TestChromeTraceDeterministicOrder is the export-ordering contract: the
// same set of spans produces byte-identical trace.json no matter what
// order concurrent workers recorded them in, so trace snapshots diff.
func TestChromeTraceDeterministicOrder(t *testing.T) {
	// Span ids are assigned at record time, so they are the one field
	// allowed to vary with recording order; mask them before comparing.
	idArg := regexp.MustCompile(`"id":\d+`)
	render := func(perm []int) string {
		tr := NewTracer(64)
		for _, i := range perm {
			tr.Add("core", fmt.Sprintf("stage%d", i%3), 0, i%2, i,
				float64(1000+10*i), 5)
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return idArg.ReplaceAllString(buf.String(), `"id":0`)
	}
	want := render([]int{0, 1, 2, 3, 4, 5})
	for _, perm := range [][]int{
		{5, 4, 3, 2, 1, 0},
		{2, 0, 4, 1, 5, 3},
	} {
		if got := render(perm); got != want {
			t.Fatalf("trace export depends on recording order:\n%s\nvs\n%s", got, want)
		}
	}
}

// TestSpanCarriesTraceID: a span tagged with a flight trace id exports it
// in its Chrome trace args, so timelines and traces cross-reference.
func TestSpanCarriesTraceID(t *testing.T) {
	s := NewSink(16)
	sp := s.Trace().Begin("core", "commit", 0, 0, 1)
	sp.SetTrace(77)
	sp.End()
	var buf bytes.Buffer
	if err := s.Trace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"trace":77`) {
		t.Fatalf("trace id missing from Chrome export: %s", buf.String())
	}
}
