package telemetry

import (
	"errors"
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (no-op on nil; negative d is ignored
// so the counter stays monotone).
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, resident bytes) that can
// move both ways; it additionally tracks its high-water mark.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

func (g *Gauge) bumpPeak(v int64) {
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Set replaces the gauge value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpPeak(v)
}

// Add moves the gauge by d and returns the new value (0 on nil).
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	v := g.v.Add(d)
	g.bumpPeak(v)
	return v
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Peak returns the high-water mark (0 on nil).
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// histBuckets is the number of log2 buckets: bucket 0 holds the value 0,
// bucket i ≥ 1 holds values in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a log-bucketed distribution of non-negative int64
// observations (latencies in nanoseconds, byte counts). Observations and
// snapshots are lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	minInit sync.Once
	buckets [histBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1) << i
}

// Observe records one value (no-op on nil; negatives clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.minInit.Do(func() { h.min.Store(math.MaxInt64) })
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.count.Add(1) // last: a snapshot's count never exceeds its buckets
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the distribution. Concurrent Observe calls may add
// observations between field reads; counts are read bucket-first so the
// snapshot's Count is never larger than the bucket total.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, HistogramBucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		if s.Min == math.MaxInt64 { // racing first Observe
			s.Min = 0
		}
		s.P50 = s.Quantile(0.50)
		s.P90 = s.Quantile(0.90)
		s.P99 = s.Quantile(0.99)
	}
	return s
}

// HistogramBucket is one populated log2 bucket: Count values in [Lo, Hi).
type HistogramBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram with summary
// quantiles (estimated by linear interpolation within log2 buckets).
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the buckets,
// clamped to the observed [Min, Max] range. Edge cases return defined
// values — these estimates feed the machine-readable bench reports, so
// NaN or garbage here would poison BENCH_*.json: an empty histogram
// yields 0, and a single-bucket histogram yields the bucket midpoint
// (collapsing to the exact value when Min == Max).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	est := float64(s.Max)
	if len(s.Buckets) == 1 {
		b := s.Buckets[0]
		est = (float64(b.Lo) + float64(b.Hi)) / 2
	} else {
		total := int64(0)
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total == 0 {
			return 0
		}
		rank := q * float64(total)
		cum := 0.0
		for _, b := range s.Buckets {
			next := cum + float64(b.Count)
			if rank <= next {
				frac := 0.0
				if b.Count > 0 {
					frac = (rank - cum) / float64(b.Count)
				}
				est = float64(b.Lo) + frac*float64(b.Hi-b.Lo)
				break
			}
			cum = next
		}
	}
	// Clamp to the observed range — unless the snapshot was assembled by
	// hand without Min/Max (all-zero range below a positive first
	// bucket), where clamping would collapse every estimate to 0.
	if s.Min == 0 && s.Max == 0 && s.Buckets[0].Lo > 0 {
		return est
	}
	if est < float64(s.Min) {
		est = float64(s.Min)
	}
	if est > float64(s.Max) {
		est = float64(s.Max)
	}
	return est
}

// Registry is a concurrency-safe, name-keyed collection of metrics.
// Lookup methods create on first use; callers on hot paths should cache
// the returned pointers.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// GaugeSnapshot is a point-in-time gauge view.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Peak  int64 `json:"peak"`
}

// Snapshot is a consistent-enough view of every metric in a registry:
// each individual metric is read atomically; the set of metrics is read
// under the registry lock.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Names returns the sorted metric names of kind maps, for stable output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot captures every registered metric. Nil-safe.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.RUnlock()
	for _, k := range sortedKeys(counters) {
		s.Counters[k] = counters[k].Value()
	}
	for _, k := range sortedKeys(gauges) {
		s.Gauges[k] = GaugeSnapshot{Value: gauges[k].Value(), Peak: gauges[k].Peak()}
	}
	for _, k := range sortedKeys(hists) {
		s.Histograms[k] = hists[k].Snapshot()
	}
	return s
}

// expvarNames tracks which expvar names this package has published, so
// publication is idempotent per name instead of once per process —
// expvar.Publish itself panics on duplicates, and the old sync.Once
// guard silently made every registry after the first invisible on
// /debug/vars.
var (
	expvarMu    sync.Mutex
	expvarNames = map[string]bool{}
)

// ErrExpvarPublished is returned when an expvar name is already taken.
var ErrExpvarPublished = errors.New("telemetry: expvar name already published")

// publishExpvarFunc publishes fn under name exactly once; republishing
// the same name reports ErrExpvarPublished instead of panicking.
func publishExpvarFunc(name string, fn expvar.Func) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarNames[name] || expvar.Get(name) != nil {
		return fmt.Errorf("%w: %q", ErrExpvarPublished, name)
	}
	expvarNames[name] = true
	expvar.Publish(name, fn)
	return nil
}

// PublishExpvar exposes the *active* sink's metrics snapshot under the
// expvar name "batchzk.telemetry" (and therefore on /debug/vars). The
// published Func reads the global sink at request time, so it tracks
// later Enable calls. Safe to call more than once.
func PublishExpvar() {
	_ = publishExpvarFunc("batchzk.telemetry", func() any {
		return Active().snapshotOrNil()
	})
}

// PublishExpvar exposes this registry's live snapshot under the given
// expvar name, so multiple registries coexist on /debug/vars (each under
// its own name). Publishing a name twice — including the reserved
// "batchzk.telemetry" — returns ErrExpvarPublished; expvar offers no
// unpublish, so names live for the life of the process.
func (r *Registry) PublishExpvar(name string) error {
	if r == nil {
		return fmt.Errorf("telemetry: cannot publish a nil registry")
	}
	if name == "" {
		return fmt.Errorf("telemetry: expvar name must be non-empty")
	}
	return publishExpvarFunc(name, func() any { return r.Snapshot() })
}

func (s *Sink) snapshotOrNil() any {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Snapshot()
}
