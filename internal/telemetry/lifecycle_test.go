package telemetry

import (
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// goroutineCount samples the goroutine count after giving stragglers a
// moment to exit; retries make the leak check robust to scheduler noise.
func stableGoroutines(t *testing.T, want int) bool {
	t.Helper()
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= want {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine() <= want
}

// TestRuntimeCloseStopsEverything: components started twice all stop on
// Close, the listener ports are released, and no goroutines leak.
func TestRuntimeCloseStopsEverything(t *testing.T) {
	before := runtime.NumGoroutine()

	var rt Runtime
	s := NewSink(0)
	rt.StartMemSampler(s, time.Millisecond)
	rt.StartMemSampler(s, time.Millisecond) // started twice, deliberately
	srv1, err := rt.ServeDebug("127.0.0.1:0", s)
	if err != nil {
		t.Fatalf("first debug server: %v", err)
	}
	if _, err := rt.ServeDebug("127.0.0.1:0", s); err != nil {
		t.Fatalf("second debug server: %v", err)
	}

	// The servers are live before Close.
	resp, err := http.Get("http://" + srv1.Addr + "/metrics")
	if err != nil {
		t.Fatalf("debug server not serving: %v", err)
	}
	resp.Body.Close()

	cleaned := 0
	rt.OnClose(func() { cleaned++ })

	rt.Close()
	if cleaned != 1 {
		t.Fatalf("cleanup ran %d times, want 1", cleaned)
	}
	if _, err := http.Get("http://" + srv1.Addr + "/metrics"); err == nil {
		t.Fatal("debug server still serving after Close")
	}
	if !stableGoroutines(t, before) {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
	}
}

// TestRuntimeCloseIdempotent: Close twice sequentially and many times
// concurrently — one cleanup run, no panic, every call returns.
func TestRuntimeCloseIdempotent(t *testing.T) {
	var rt Runtime
	rt.StartMemSampler(NewSink(0), time.Millisecond)
	cleaned := 0
	rt.OnClose(func() { cleaned++ })

	rt.Close()
	rt.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); rt.Close() }()
	}
	wg.Wait()
	if cleaned != 1 {
		t.Fatalf("cleanup ran %d times, want 1", cleaned)
	}
}

// TestMemSamplerStopConcurrent: racing Stop calls must not double-close.
func TestMemSamplerStopConcurrent(t *testing.T) {
	m := StartMemSampler(NewSink(0), time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); m.Stop() }()
	}
	wg.Wait()
	m.Stop() // and once more after everyone is done
}

func TestRuntimeNilSafe(t *testing.T) {
	var rt *Runtime
	m := rt.StartMemSampler(NewSink(0), time.Millisecond)
	if m == nil {
		t.Fatal("nil runtime did not start the sampler")
	}
	m.Stop() // untracked: the caller owns it
	srv, err := rt.ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("nil runtime ServeDebug: %v", err)
	}
	_ = srv.Close()
	rt.OnClose(func() {})
	rt.Close()
}
