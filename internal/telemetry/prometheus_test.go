package telemetry

import (
	"bufio"
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Exposition-grammar line shapes (text format v0.0.4). Every non-blank
// line must match exactly one of these.
var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? -?(\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$`)
)

func promRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("gpusim/runs/pipelined").Add(3)
	r.Counter("host/bytes_in").Add(1 << 20)
	g := r.Gauge("mem/peak_bytes")
	g.Set(4096)
	g.Set(1024)
	h := r.Histogram("task/latency_ns")
	for _, v := range []int64{10, 20, 300, 4000, 4000, 50000} {
		h.Observe(v)
	}
	return r
}

func TestPrometheusGrammar(t *testing.T) {
	r := promRegistry(t)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}

	typed := map[string]string{} // family -> TYPE
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRe.MatchString(line) {
				t.Fatalf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !promTypeRe.MatchString(line) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			f := strings.Fields(line)
			if _, dup := typed[f[2]]; dup {
				t.Fatalf("family %q declared twice", f[2])
			}
			typed[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line: %q", line)
		default:
			if !promSampleRe.MatchString(line) {
				t.Fatalf("malformed sample line: %q", line)
			}
			// Every sample must belong to a declared family: its name,
			// or its name minus a histogram suffix.
			name := line[:strings.IndexAny(line, "{ ")]
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suf); ok && typed[cut] == "histogram" {
					base = cut
				}
			}
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", name)
			}
			if !strings.HasPrefix(name, promPrefix+"_") {
				t.Fatalf("sample %q not namespaced under %s_", name, promPrefix)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Mapping spot checks.
	for _, want := range []string{
		"# TYPE batchzk_gpusim_runs_pipelined_total counter",
		"batchzk_gpusim_runs_pipelined_total 3",
		"# TYPE batchzk_mem_peak_bytes gauge",
		"batchzk_mem_peak_bytes 1024",
		"batchzk_mem_peak_bytes_peak 4096",
		"# TYPE batchzk_task_latency_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !r.promNamesUnique() {
		t.Fatal("sanitized names collide")
	}
}

func TestPrometheusHistogramInvariants(t *testing.T) {
	r := promRegistry(t)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	const fam = "batchzk_task_latency_ns"
	var (
		prevLe  float64
		prevCum int64 = -1
		infSeen bool
		infVal  int64
		count   int64 = -1
		sum     int64 = -1
	)
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, fam+"_bucket{le=\""):
			rest := strings.TrimPrefix(line, fam+"_bucket{le=\"")
			le, val, ok := strings.Cut(rest, "\"} ")
			if !ok {
				t.Fatalf("bad bucket line %q", line)
			}
			cum, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			if cum < prevCum {
				t.Fatalf("bucket counts not cumulative: %d after %d", cum, prevCum)
			}
			prevCum = cum
			if le == "+Inf" {
				infSeen, infVal = true, cum
				continue
			}
			if infSeen {
				t.Fatal("+Inf bucket must come last")
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("le %q: %v", le, err)
			}
			if bound <= prevLe {
				t.Fatalf("le bounds not increasing: %v after %v", bound, prevLe)
			}
			prevLe = bound
		case strings.HasPrefix(line, fam+"_count "):
			count, _ = strconv.ParseInt(strings.TrimPrefix(line, fam+"_count "), 10, 64)
		case strings.HasPrefix(line, fam+"_sum "):
			sum, _ = strconv.ParseInt(strings.TrimPrefix(line, fam+"_sum "), 10, 64)
		}
	}
	if !infSeen {
		t.Fatal("histogram has no +Inf bucket")
	}
	if count != infVal {
		t.Fatalf("_count %d != +Inf bucket %d", count, infVal)
	}
	if count != 6 {
		t.Fatalf("_count = %d, want 6", count)
	}
	if sum != 10+20+300+4000+4000+50000 {
		t.Fatalf("_sum = %d", sum)
	}
}

func TestPrometheusNameSanitization(t *testing.T) {
	cases := map[string]string{
		"gpusim/task/latency_ns": "batchzk_gpusim_task_latency_ns",
		"simple":                 "batchzk_simple",
		"with-dash.dot":          "batchzk_with_dash_dot",
		"colon:kept":             "batchzk_colon:kept",
		"unicode→arrow":          "batchzk_unicode_arrow",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promEscapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Fatalf("promEscapeHelp = %q", got)
	}
}

func TestPrometheusNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (*Registry)(nil).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
	if err := NewRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry wrote %q", buf.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	defer Enable(nil)
	s := NewSink(64)
	s.Metrics.Counter("http/test").Inc()
	srv := httptest.NewServer(DebugHandler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "batchzk_http_test_total 1") {
		t.Fatalf("endpoint output missing counter:\n%s", buf.String())
	}

	// With no sink at all the endpoint degrades to 503, not a panic.
	srv2 := httptest.NewServer(DebugHandler(nil))
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled telemetry: status %d, want 503", resp2.StatusCode)
	}
}
