package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCap is the tracer ring-buffer capacity when none is given.
const DefaultSpanCap = 1 << 16

// SpanID identifies one recorded span; 0 means "no span" / "no parent".
type SpanID uint64

// Span is one completed timed region. Two clock domains coexist:
//
//   - wall spans (Begin/End) measure real elapsed time with the
//     monotonic clock, with StartNs relative to the tracer's epoch;
//   - simulated spans (Add) carry model-derived timestamps, e.g.
//     gpusim's kernel occupancy windows.
//
// The Chrome export separates the domains into distinct trace processes
// so their timelines are not visually conflated.
type Span struct {
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	Layer  string  `json:"layer"`          // "core", "pipeline", "gpusim"
	Name   string  `json:"name"`           // e.g. "stage/commit", "kernel/merkle/leaves"
	TID    int     `json:"tid"`            // logical track (stage index, stream id)
	Start  float64 `json:"start_ns"`       // ns since epoch (wall) or simulated ns
	Dur    float64 `json:"dur_ns"`         // duration in ns
	Sim    bool    `json:"sim,omitempty"`  // simulated-clock span
	Task   int     `json:"task,omitempty"` // job/task id when meaningful (-1 = none)
	// Trace links the span to a job's flight-recorder timeline (0 = none).
	Trace TraceID `json:"trace,omitempty"`
}

// End returns the span's end timestamp in its clock domain.
func (s Span) End() float64 { return s.Start + s.Dur }

// Tracer records spans into a bounded ring buffer. When the buffer is
// full the oldest spans are overwritten, so the tail of a long run is
// always represented. All methods are safe for concurrent use and no-ops
// on a nil receiver.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int   // ring write position
	total int64 // spans ever recorded
}

// NewTracer builds a tracer holding at most capacity spans
// (0 = DefaultSpanCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, 0, capacity)}
}

// sinceEpoch is the wall-clock offset in ns (monotonic-clock backed).
func (t *Tracer) sinceEpoch() float64 {
	return float64(time.Since(t.epoch).Nanoseconds())
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
}

// ActiveSpan is an in-progress wall-clock span returned by Begin; call
// End to record it. Nil-safe throughout.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	start time.Time
}

// ID returns the span's id (0 on nil), usable as a Parent link.
func (a *ActiveSpan) ID() SpanID {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// SetTrace stamps the job trace id the span belongs to; call between
// Begin and End. Nil-safe.
func (a *ActiveSpan) SetTrace(id TraceID) {
	if a == nil {
		return
	}
	a.span.Trace = id
}

// End records the span with its measured wall duration.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.span.Dur = float64(time.Since(a.start).Nanoseconds())
	a.t.record(a.span)
}

// Begin opens a wall-clock span. task is the job/task id (-1 = none).
// Returns nil on a nil tracer.
func (t *Tracer) Begin(layer, name string, parent SpanID, tid, task int) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &ActiveSpan{
		t:     t,
		start: now,
		span: Span{
			ID:     SpanID(t.nextID.Add(1)),
			Parent: parent,
			Layer:  layer,
			Name:   name,
			TID:    tid,
			Task:   task,
			Start:  float64(now.Sub(t.epoch).Nanoseconds()),
		},
	}
}

// Add records a completed simulated-clock span (model-derived
// timestamps, e.g. gpusim occupancy windows) and returns its id for
// parent links. No-op on a nil tracer (returns 0).
func (t *Tracer) Add(layer, name string, parent SpanID, tid, task int, startNs, durNs float64) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(t.nextID.Add(1))
	t.record(Span{
		ID:     id,
		Parent: parent,
		Layer:  layer,
		Name:   name,
		TID:    tid,
		Task:   task,
		Start:  startNs,
		Dur:    durNs,
		Sim:    true,
	})
	return id
}

// Spans returns the recorded spans, oldest first. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) && t.next != 0 {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
		return out
	}
	return append(out, t.ring...)
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.ring))
}
