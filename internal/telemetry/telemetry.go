// Package telemetry is the unified observability layer of the
// reproduction: a concurrency-safe metrics registry (counters, gauges,
// log-bucketed latency histograms), a lightweight span tracer with a
// bounded ring buffer and Chrome trace_event export, and introspection
// surfaces (expvar publication, a pprof/expvar debug server, file dumps).
//
// The paper's central claim is an occupancy argument — pipelining keeps
// the device busy (Figure 9) — and arguments of that kind are only
// checkable with per-stage visibility: queue depths, stage-latency
// distributions, host↔device byte counts, in-flight proof counts. The
// three execution layers record into this package:
//
//   - internal/core's BatchProver emits one span per prover stage per
//     job (layer "core") plus per-job end-to-end latency, queue-wait
//     histograms and an in-flight gauge;
//   - internal/pipeline's functional module schedules emit one span per
//     (cycle, stage) slot (layer "pipeline");
//   - internal/gpusim emits simulated-clock spans for kernel occupancy
//     and host↔device transfers (layer "gpusim"), so a single export
//     visually reproduces the pipelined-vs-naive contrast of Figure 9
//     in chrome://tracing or Perfetto.
//
// Telemetry is disabled by default and costs a nil check per
// instrumentation point. Enable it process-wide with Enable, or hand an
// explicit *Sink to the layers that accept one (gpusim.Options.Telemetry,
// BatchProver.SetTelemetry). All types are safe for concurrent use, and
// every recording method is a no-op on a nil receiver, so call sites
// never guard.
package telemetry

import "sync/atomic"

// Sink bundles the recording surfaces one run writes into: the metrics
// registry, the span tracer, and the job-level flight recorder.
type Sink struct {
	Metrics *Registry
	Tracer  *Tracer
	Flight  *FlightRecorder
}

// NewSink builds a sink with a fresh registry, a tracer bounded to
// spanCap spans (0 = DefaultSpanCap), and a flight recorder with the
// default timeline capacity.
func NewSink(spanCap int) *Sink {
	return &Sink{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(spanCap),
		Flight:  NewFlightRecorder(0),
	}
}

// global is the process-wide default sink; nil means disabled.
var global atomic.Pointer[Sink]

// Enable installs s as the process-wide default sink picked up by every
// instrumented layer that was not handed an explicit sink. Enable(nil)
// disables global telemetry again.
func Enable(s *Sink) { global.Store(s) }

// Active returns the process-wide sink, or nil when telemetry is off.
func Active() *Sink { return global.Load() }

// Resolve returns the explicit sink when non-nil, else the global one.
func Resolve(explicit *Sink) *Sink {
	if explicit != nil {
		return explicit
	}
	return Active()
}

// Counter returns the named counter from the sink's registry (nil-safe).
func (s *Sink) Counter(name string) *Counter {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge returns the named gauge from the sink's registry (nil-safe).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Histogram returns the named histogram from the sink's registry
// (nil-safe).
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Histogram(name)
}

// Trace returns the sink's tracer (nil when the sink is nil).
func (s *Sink) Trace() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// FlightRecorder returns the sink's job flight recorder (nil when the
// sink is nil), whose methods are themselves nil-safe.
func (s *Sink) FlightRecorder() *FlightRecorder {
	if s == nil {
		return nil
	}
	return s.Flight
}
