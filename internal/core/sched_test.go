package core

import (
	"errors"
	"testing"
	"time"

	"batchzk/internal/faults"
	"batchzk/internal/field"
	"batchzk/internal/gpusim"
	"batchzk/internal/perfmodel"
	"batchzk/internal/protocol"
)

// TestPooledOrderingBitIdenticalUnderFaults is the issue's ordering
// invariant: with per-stage worker pools > 1 AND fault injection enabled,
// results still arrive in submission order, every surviving proof is
// bit-identical to the sequential reference prover, and the quarantine
// ledger reconciles against the injector's.
func TestPooledOrderingBitIdenticalUnderFaults(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	bp.SetSchedule(&Schedule{Workers: [4]int{2, 3, 2, 2}})
	inj := faults.NewInjector(chaosSeed)
	inj.EnableAll(0.05)
	inj.SetStragglerDelay(200*time.Microsecond, time.Millisecond)
	res := DefaultResilience()
	res.Injector = inj
	res.JobDeadline = 30 * time.Second
	bp.SetResilience(res)

	jobs := make([]Job, 48)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	results := bp.ProveBatch(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("lost results: %d of %d", len(results), len(jobs))
	}

	// Submission order, despite 9 concurrent stage workers racing.
	for i, r := range results {
		if r.ID != i {
			t.Fatalf("out of order: job %d at position %d", r.ID, i)
		}
	}

	// Surviving proofs are bit-identical to the sequential reference.
	survivors := 0
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		survivors++
		want, err := protocol.Prove(c, p, jobs[r.ID].Public, jobs[r.ID].Secret)
		if err != nil {
			t.Fatal(err)
		}
		if r.Proof.Commitment.Root != want.Commitment.Root {
			t.Fatalf("job %d: commitment differs from sequential prover", r.ID)
		}
		if !r.Proof.OTau.Equal(&want.OTau) || !r.Proof.WSigma.Equal(&want.WSigma) {
			t.Fatalf("job %d: proof scalars differ from sequential prover", r.ID)
		}
	}
	if survivors == 0 {
		t.Fatal("no survivors — rates too hot for a meaningful run")
	}

	// The quarantine ledger reconciles: every injected fault resolved
	// exactly once, failures and dead letters agree, all jobs accounted.
	ls := inj.Stats()
	if totalInjected(ls) == 0 {
		t.Fatal("no faults injected — seed no longer exercises the pools")
	}
	if ls.Pending != 0 || inj.Conflicts() != 0 {
		t.Fatalf("ledger not reconciled: %+v conflicts=%d", ls, inj.Conflicts())
	}
	st := bp.Stats()
	if st.Failed != st.Quarantined {
		t.Fatalf("failed %d != quarantined %d", st.Failed, st.Quarantined)
	}
	if st.Completed+st.Failed != int64(len(jobs)) {
		t.Fatalf("jobs unaccounted: %d + %d != %d", st.Completed, st.Failed, len(jobs))
	}
	dead := bp.Quarantined()
	if int64(len(dead)) != st.Quarantined {
		t.Fatalf("dead letters %d != quarantined %d", len(dead), st.Quarantined)
	}
	deadIDs := make(map[int]bool)
	for _, q := range dead {
		deadIDs[q.ID] = true
	}
	for _, r := range results {
		if (r.Err != nil) != deadIDs[r.ID] {
			t.Fatalf("job %d: result error %v disagrees with dead-letter list", r.ID, r.Err)
		}
	}
}

// Autobalanced pools must keep every correctness property: order,
// verifying proofs, and a split that still covers all four stages.
func TestAutobalancedProver(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	bp.SetSchedule(&Schedule{
		Workers:        [4]int{2, 2, 2, 2},
		Autobalance:    true,
		RebalanceEvery: 2 * time.Millisecond,
		Budget:         8,
	})
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	results := bp.ProveBatch(jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.ID != i {
			t.Fatalf("out of order: %d at %d", r.ID, i)
		}
		if err := bp.Verify(jobs[i].Public, r.Proof); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	w := bp.StageWorkers()
	total := 0
	for i, v := range w {
		if v < 1 {
			t.Fatalf("stage %s starved: %v", StageNames[i], w)
		}
		total += v
	}
	if total > 8 {
		t.Fatalf("autobalance exceeded budget: %v", w)
	}
}

func TestProportionalSchedule(t *testing.T) {
	var st Stats
	st.StageNs = [4]int64{700, 100, 100, 100}
	s := ProportionalSchedule(st, 10)
	total := 0
	for i, w := range s.Workers {
		if w < 1 {
			t.Fatalf("stage %d starved: %v", i, s.Workers)
		}
		total += w
	}
	if total != 10 {
		t.Fatalf("budget not preserved: %v", s.Workers)
	}
	if s.Workers[0] <= s.Workers[1] {
		t.Fatalf("dominant stage not favored: %v", s.Workers)
	}
	if s.TotalWorkers() != 10 {
		t.Fatalf("TotalWorkers = %d", s.TotalWorkers())
	}
}

func TestCalibrateSchedule(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := bp.CalibrateSchedule(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, w := range s.Workers {
		if w < 1 {
			t.Fatalf("stage %d got no workers: %v", i, s.Workers)
		}
		total += w
	}
	if total != 8 {
		t.Fatalf("calibrated split %v does not sum to budget", s.Workers)
	}
	if _, err := bp.CalibrateSchedule(2, 3); err == nil {
		t.Fatal("accepted budget below the stage count")
	}
}

// The sharded prover must reconstruct global submission order and emit
// proofs bit-identical to a single prover's (and hence the sequential
// reference's).
func TestShardedProver(t *testing.T) {
	c, p := testCircuit(t)
	sp, err := NewShardedProver(c, p, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shards() != 3 {
		t.Fatalf("Shards() = %d", sp.Shards())
	}
	jobs := make([]Job, 10) // not a multiple of 3: uneven tail rotation
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	results := sp.ProveBatch(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.ID != i {
			t.Fatalf("merge broke submission order: %d at %d", r.ID, i)
		}
		want, err := protocol.Prove(c, p, jobs[i].Public, jobs[i].Secret)
		if err != nil {
			t.Fatal(err)
		}
		if r.Proof.Commitment.Root != want.Commitment.Root {
			t.Fatalf("job %d: commitment differs from sequential prover", i)
		}
		if err := sp.Verify(jobs[i].Public, r.Proof); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if st := sp.Stats(); st.Completed != int64(len(jobs)) {
		t.Fatalf("aggregated completed = %d", st.Completed)
	}
	if _, err := NewShardedProver(c, p, 0, 4); err == nil {
		t.Fatal("accepted zero shards")
	}
}

func TestSimulateSystemSharded(t *testing.T) {
	spec := perfmodel.GH200()
	costs := perfmodel.GPUCosts()
	one, err := SimulateSystemSharded(spec, costs, 1<<16, 128, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	four, err := SimulateSystemSharded(spec, costs, 1<<16, 128, 4, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(four.PerShard) != 4 {
		t.Fatalf("per-shard reports: %d", len(four.PerShard))
	}
	// Four devices finish the same batch materially faster than one.
	if four.TotalNs >= one.TotalNs {
		t.Fatalf("sharding did not help: %v vs %v", four.TotalNs, one.TotalNs)
	}
	ratio := four.ThroughputPerMs / one.ThroughputPerMs
	if ratio < 2.0 {
		t.Fatalf("4-shard throughput scaling = %.2f×", ratio)
	}
	// Per-device memory budgets are enforced per shard.
	if _, err := SimulateSystemSharded(spec, costs, 1<<16, 128, 4, true, 1<<20); !errors.Is(err, gpusim.ErrOutOfMemory) {
		t.Fatalf("starved device budget not rejected: %v", err)
	}
}
