package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"batchzk/internal/faults"
	"batchzk/internal/field"
	"batchzk/internal/telemetry"
)

// resilientProver builds a prover with a fast, virtual-clock retry policy:
// backoff sleeps are recorded, not waited out.
func resilientProver(t *testing.T, inj *faults.Injector) (*BatchProver, *Resilience) {
	t.Helper()
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResilience()
	res.Injector = inj
	res.Sleep = func(time.Duration) {} // virtual clock: no real waiting
	bp.SetResilience(res)
	return bp, res
}

func resilienceJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	return jobs
}

func TestRetryRecoversTransientFault(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.Force(faults.KernelFault, StageNames[1], 2, 1) // job 2, gate-sumcheck, attempt 1 only
	bp, _ := resilientProver(t, inj)
	results := bp.ProveBatch(resilienceJobs(4))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed despite retry: %v", r.ID, r.Err)
		}
	}
	st := bp.Stats()
	if st.Retries != 1 || st.Quarantined != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if ls := inj.Stats(); ls.Recovered != 1 || ls.Pending != 0 {
		t.Fatalf("ledger: %+v", ls)
	}
}

func TestPermanentFaultQuarantinesImmediately(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.Force(faults.MemCorruption, StageNames[0], 1, 1)
	bp, _ := resilientProver(t, inj)
	results := bp.ProveBatch(resilienceJobs(3))
	if results[1].Err == nil {
		t.Fatal("corrupted job succeeded")
	}
	if !errors.Is(results[1].Err, faults.ErrMemCorruption) {
		t.Fatalf("error chain does not reach ErrMemCorruption: %v", results[1].Err)
	}
	// The other jobs ride through untouched — no stall on the poison job.
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	st := bp.Stats()
	if st.Quarantined != 1 || st.Retries != 0 || st.Completed != 2 || st.Failed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	q := bp.Quarantined()
	if len(q) != 1 || q[0].ID != 1 || q[0].Stage != StageNames[0] || q[0].Attempts != 1 {
		t.Fatalf("dead letters: %+v", q)
	}
	if ls := inj.Stats(); ls.Quarantined != 1 || ls.Pending != 0 {
		t.Fatalf("ledger: %+v", ls)
	}
}

func TestExhaustedRetriesQuarantine(t *testing.T) {
	inj := faults.NewInjector(1)
	bp, res := resilientProver(t, inj)
	for attempt := 1; attempt <= res.Retry.MaxAttempts; attempt++ {
		inj.Force(faults.KernelFault, StageNames[2], 0, attempt)
	}
	results := bp.ProveBatch(resilienceJobs(1))
	if results[0].Err == nil {
		t.Fatal("persistently faulty job succeeded")
	}
	if !errors.Is(results[0].Err, faults.ErrKernelFault) {
		t.Fatalf("error chain does not reach ErrKernelFault: %v", results[0].Err)
	}
	st := bp.Stats()
	if st.Retries != int64(res.Retry.MaxAttempts-1) || st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
	q := bp.Quarantined()
	if len(q) != 1 || q[0].Attempts != res.Retry.MaxAttempts || q[0].Stage != StageNames[2] {
		t.Fatalf("dead letters: %+v", q)
	}
	// All four drawn faults resolved as quarantined, none pending.
	if ls := inj.Stats(); ls.Quarantined != res.Retry.MaxAttempts || ls.Pending != 0 {
		t.Fatalf("ledger: %+v", ls)
	}
}

func TestWorkerPanicRecovered(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.Force(faults.WorkerPanic, StageNames[3], 1, 1) // transient: retry succeeds
	bp, _ := resilientProver(t, inj)
	results := bp.ProveBatch(resilienceJobs(2))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.ID, r.Err)
		}
	}
	st := bp.Stats()
	if st.PanicsRecovered != 1 || st.Retries != 1 || st.Completed != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNonFaultPanicBecomesError(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// No Resilience configured at all: panic recovery is still on. A job
	// with mismatched public-input length makes Evaluate return an error,
	// so provoke a real panic instead: nil InFlight via witness of wrong
	// shape panics inside the protocol layer.
	jobs := resilienceJobs(2)
	jobs[0].Witness = make([]field.Element, 1) // wrong assignment size
	results := bp.ProveBatch(jobs)
	if results[0].Err == nil {
		t.Fatal("malformed witness produced a proof")
	}
	if !strings.Contains(results[0].Err.Error(), "quarantined") {
		t.Fatalf("error lacks quarantine framing: %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("healthy job failed: %v", results[1].Err)
	}
	if st := bp.Stats(); st.Quarantined != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStragglerBlowsDeadline(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.SetStragglerDelay(200*time.Millisecond, 200*time.Millisecond)
	inj.Force(faults.Straggler, StageNames[1], 0, 1)
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResilience()
	res.Injector = inj
	res.JobDeadline = 20 * time.Millisecond // straggler sleep alone blows it
	bp.SetResilience(res)
	results := bp.ProveBatch(resilienceJobs(1))
	if results[0].Err == nil {
		t.Fatal("job survived a 10x-deadline straggler")
	}
	if !errors.Is(results[0].Err, ErrJobDeadline) {
		t.Fatalf("error chain does not reach ErrJobDeadline: %v", results[0].Err)
	}
	st := bp.Stats()
	if st.Timeouts != 1 || st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The straggler fault itself resolves as quarantined: its latency
	// spike is what killed the job.
	if ls := inj.Stats(); ls.Quarantined != 1 || ls.Pending != 0 {
		t.Fatalf("ledger: %+v", ls)
	}
}

func TestStragglerWithinDeadlineRecovers(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.SetStragglerDelay(time.Millisecond, time.Millisecond)
	inj.Force(faults.Straggler, StageNames[2], 0, 1)
	bp, _ := resilientProver(t, inj) // no deadline configured
	results := bp.ProveBatch(resilienceJobs(1))
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if ls := inj.Stats(); ls.Recovered != 1 || ls.Pending != 0 {
		t.Fatalf("ledger: %+v", ls)
	}
}

func TestResilienceTelemetryCounters(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.Force(faults.KernelFault, StageNames[1], 0, 1)
	inj.Force(faults.MemCorruption, StageNames[0], 1, 1)
	sink := telemetry.NewSink(0)
	bp, _ := resilientProver(t, inj)
	bp.SetTelemetry(sink)
	bp.ProveBatch(resilienceJobs(2))
	st := bp.Stats()
	if got := sink.Counter("core/jobs/retries").Value(); got != st.Retries {
		t.Fatalf("retries counter %d != stats %d", got, st.Retries)
	}
	if got := sink.Counter("core/jobs/quarantined").Value(); got != st.Quarantined {
		t.Fatalf("quarantined counter %d != stats %d", got, st.Quarantined)
	}
	if st.Retries != 1 || st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Zero policy gets sane defaults.
	z := RetryPolicy{}
	if z.attempts() != 1 || z.backoff(1) != time.Millisecond {
		t.Fatalf("zero policy: attempts=%d backoff=%v", z.attempts(), z.backoff(1))
	}
}
