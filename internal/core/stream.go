package core

// Streaming ingestion and emission. ProveBatch buffers the whole batch —
// every witness — before the pipeline admits its first job, and callers
// collect every proof before acting on any. ProveStream retires both
// ends of that assumption: jobs are pulled from an iterator only as the
// pipeline has room for them (the submission channel is unbuffered, so
// at most depth+1 witnesses are ever materialized), and each proof is
// handed to the caller the moment it leaves the reorder buffer. Combined
// with SetStreamingCommit this is the host-side analogue of the paper's
// ~2N-block device bound: peak memory tracks the in-flight window, not
// the batch.

// SetStreamingCommit switches the commit and opening stages to the
// out-of-core pcs.StreamingCommitter path: no encoded matrix is ever
// materialized, and challenged columns are re-encoded on demand at the
// opening. Proofs stay bit-identical to the buffered path. Call before
// Run/ProveBatch/ProveStream.
func (bp *BatchProver) SetStreamingCommit(on bool) { bp.streamCommit = on }

// SetStreamingCommit switches every shard to the out-of-core commit path.
func (sp *ShardedProver) SetStreamingCommit(on bool) {
	for _, bp := range sp.shards {
		bp.SetStreamingCommit(on)
	}
}

// ProveStream pulls jobs from next until it reports exhaustion and calls
// emit once per job, in submission order, as each proof finalizes. next
// is called lazily — the pipeline's in-flight bound is also the bound on
// outstanding witnesses — so next may materialize each witness on
// demand. emit runs on the result goroutine; a slow emit back-pressures
// the pipeline rather than buffering.
func (bp *BatchProver) ProveStream(next func() (Job, bool), emit func(Result)) {
	proveStream(bp.Run, next, emit)
}

// ProveStream is the sharded form: jobs are scattered round-robin as
// they are pulled, results emitted in global submission order.
func (sp *ShardedProver) ProveStream(next func() (Job, bool), emit func(Result)) {
	proveStream(sp.Run, next, emit)
}

func proveStream(run func(<-chan Job) <-chan Result, next func() (Job, bool), emit func(Result)) {
	in := make(chan Job) // unbuffered: a pull happens only when a slot frees
	go func() {
		defer close(in)
		for {
			job, ok := next()
			if !ok {
				return
			}
			in <- job
		}
	}()
	for r := range run(in) {
		emit(r)
	}
}
