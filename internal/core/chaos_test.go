package core

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"batchzk/internal/faults"
	"batchzk/internal/field"
	"batchzk/internal/telemetry"
)

// chaosSeed pins the soak test's fault plan. The plan is a pure function
// of the seed, so the test's expectations hold on every machine and
// under -race; changing the seed is safe but re-rolls which faults fire.
const chaosSeed = 20250806

// chaosRun streams jobs through a prover with every fault class enabled
// and returns the prover, its injector, and the results.
func chaosRun(t *testing.T, jobs []Job) (*BatchProver, *faults.Injector, []Result) {
	t.Helper()
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(chaosSeed)
	inj.EnableAll(0.05)
	inj.SetStragglerDelay(200*time.Microsecond, time.Millisecond)
	res := DefaultResilience()
	res.Injector = inj
	// The deadline exists to prove the path is wired, but is far above
	// any latency this run can produce — so wall-clock noise can never
	// make the pinned-seed expectations flake. The deadline-kill path
	// has its own deterministic test (TestStragglerBlowsDeadline).
	res.JobDeadline = 30 * time.Second
	bp.SetResilience(res)
	return bp, inj, bp.ProveBatch(jobs)
}

// TestChaosSoak is the end-to-end resilience soak of the issue's
// acceptance criteria: all six fault classes at a pinned seed, and
// afterwards (1) no goroutine leak, (2) every injected fault resolved
// exactly once with telemetry matching the ledger, (3) every surviving
// proof verifies, and (4) a tampered proof is rejected.
func TestChaosSoak(t *testing.T) {
	before := runtime.NumGoroutine()

	sink := telemetry.NewSink(0)
	jobs := make([]Job, 48)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	bp.SetTelemetry(sink)
	inj := faults.NewInjector(chaosSeed)
	inj.EnableAll(0.05)
	inj.SetStragglerDelay(200*time.Microsecond, time.Millisecond)
	res := DefaultResilience()
	res.Injector = inj
	res.JobDeadline = 30 * time.Second
	bp.SetResilience(res)
	results := bp.ProveBatch(jobs)

	if len(results) != len(jobs) {
		t.Fatalf("lost results: %d of %d", len(results), len(jobs))
	}
	st := bp.Stats()
	ls := inj.Stats()
	if total := totalInjected(ls); total == 0 {
		t.Fatal("chaos run injected nothing — seed no longer exercises the fault paths")
	}

	// (1) No goroutine leak: the four stage workers exit once the jobs
	// drain. Allow the runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
	}

	// (2) Exactly-once resolution, no conflicts, telemetry == ledger.
	if ls.Pending != 0 || inj.Conflicts() != 0 {
		t.Fatalf("ledger not reconciled: %+v conflicts=%d", ls, inj.Conflicts())
	}
	for _, r := range inj.Ledger() {
		if r.Outcome == faults.Pending {
			t.Fatalf("fault %d (%s at %s job %d) never resolved", r.Fault.ID, r.Fault.Class, r.Fault.Stage, r.Fault.Job)
		}
	}
	if got := sink.Counter("core/jobs/retries").Value(); got != st.Retries {
		t.Fatalf("retries counter %d != stats %d", got, st.Retries)
	}
	if got := sink.Counter("core/jobs/quarantined").Value(); got != st.Quarantined {
		t.Fatalf("quarantined counter %d != stats %d", got, st.Quarantined)
	}
	if got := sink.Counter("core/jobs/timeouts").Value(); got != st.Timeouts {
		t.Fatalf("timeouts counter %d != stats %d", got, st.Timeouts)
	}
	if got := sink.Counter("core/jobs/panics_recovered").Value(); got != st.PanicsRecovered {
		t.Fatalf("panics counter %d != stats %d", got, st.PanicsRecovered)
	}
	if got := sink.Counter("core/jobs/completed").Value(); got != st.Completed {
		t.Fatalf("completed counter %d != stats %d", got, st.Completed)
	}
	// Every failure in this run is a quarantine, and the dead-letter
	// list names each failed job exactly once.
	if st.Failed != st.Quarantined {
		t.Fatalf("failed %d != quarantined %d", st.Failed, st.Quarantined)
	}
	if st.Completed+st.Failed != int64(len(jobs)) {
		t.Fatalf("jobs unaccounted: completed %d + failed %d != %d", st.Completed, st.Failed, len(jobs))
	}
	dead := bp.Quarantined()
	if int64(len(dead)) != st.Quarantined {
		t.Fatalf("dead letters %d != quarantined %d", len(dead), st.Quarantined)
	}
	deadIDs := make(map[int]bool)
	for _, q := range dead {
		if deadIDs[q.ID] {
			t.Fatalf("job %d dead-lettered twice", q.ID)
		}
		deadIDs[q.ID] = true
		if q.Err == nil {
			t.Fatalf("dead letter for job %d has no error chain", q.ID)
		}
	}

	// (3) Every surviving proof verifies; failed results match the
	// dead-letter list.
	var survivor *Result
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			if !deadIDs[r.ID] {
				t.Fatalf("job %d failed but is not in the dead-letter list: %v", r.ID, r.Err)
			}
			continue
		}
		if err := bp.Verify(jobs[r.ID].Public, r.Proof); err != nil {
			t.Fatalf("job %d survived chaos but does not verify: %v", r.ID, err)
		}
		survivor = r
	}
	if survivor == nil {
		t.Fatal("no job survived — rates too hot for a meaningful soak")
	}

	// (4) A tampered surviving proof is rejected.
	tampered := *survivor.Proof
	one := field.NewElement(1)
	tampered.OTau.Add(&tampered.OTau, &one)
	if err := bp.Verify(jobs[survivor.ID].Public, &tampered); err == nil {
		t.Fatal("tampered proof verified")
	}
}

// TestChaosSoakDeterministic: two runs at the pinned seed draw the
// identical fault multiset and end in the identical counters, no matter
// how the stage goroutines interleave.
func TestChaosSoakDeterministic(t *testing.T) {
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	run := func() ([]string, Stats) {
		bp, inj, results := chaosRun(t, jobs)
		if len(results) != len(jobs) {
			t.Fatalf("lost results: %d", len(results))
		}
		var sites []string
		for _, r := range inj.Ledger() {
			sites = append(sites, fmt.Sprintf("%s/%s/job%d/try%d=%v",
				r.Fault.Class, r.Fault.Stage, r.Fault.Job, r.Fault.Attempt, r.Outcome))
		}
		// Ledger append order tracks goroutine interleaving; the multiset
		// of (site, outcome) must not.
		sort.Strings(sites)
		return sites, bp.Stats()
	}
	sitesA, statsA := run()
	sitesB, statsB := run()
	if len(sitesA) != len(sitesB) {
		t.Fatalf("fault count differs between runs: %d vs %d", len(sitesA), len(sitesB))
	}
	for i := range sitesA {
		if sitesA[i] != sitesB[i] {
			t.Fatalf("fault plan diverged at %d: %s vs %s", i, sitesA[i], sitesB[i])
		}
	}
	if statsA.Completed != statsB.Completed || statsA.Failed != statsB.Failed ||
		statsA.Retries != statsB.Retries || statsA.Quarantined != statsB.Quarantined ||
		statsA.Timeouts != statsB.Timeouts || statsA.PanicsRecovered != statsB.PanicsRecovered {
		t.Fatalf("counters diverged:\n%+v\n%+v", statsA, statsB)
	}
}

func totalInjected(s faults.Stats) int {
	n := 0
	for _, v := range s.Injected {
		n += v
	}
	return n
}
