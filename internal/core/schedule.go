package core

import (
	"fmt"
	"time"

	"batchzk/internal/field"
	"batchzk/internal/sched"
)

// Schedule configures how the batch prover's four stages are staffed —
// the host-side analogue of the paper's §4 thread allocation, where each
// prover module owns a share of the device proportional to its amortized
// time ratio.
type Schedule struct {
	// Workers is the per-stage pool size (entries ≤ 0 mean 1). The
	// zero-value Schedule is the classic one-worker-per-stage pipeline.
	Workers [4]int
	// Autobalance enables elastic rebalancing: a controller re-derives the
	// pool split from live per-stage busy shares while the run progresses.
	Autobalance bool
	// RebalanceEvery is the controller period (0 means 50ms).
	RebalanceEvery time.Duration
	// Budget is the total worker count the controller may distribute
	// (0 means the sum of the initial Workers).
	Budget int
}

// TotalWorkers returns the sum of the per-stage pool sizes.
func (s Schedule) TotalWorkers() int {
	total := 0
	for _, w := range s.Workers {
		if w < 1 {
			w = 1
		}
		total += w
	}
	return total
}

// SetSchedule installs a stage-scheduling configuration. Call before
// Run/ProveBatch; nil restores the default one-worker-per-stage pipeline.
// For the wider pools to help, the prover's depth (proofs in flight)
// should be at least the schedule's total worker count — otherwise the
// dynamic-loading bound, not the pools, limits concurrency.
func (bp *BatchProver) SetSchedule(s *Schedule) { bp.schedCfg = s }

// Schedule returns the installed scheduling configuration (the
// one-worker-per-stage default when none was set).
func (bp *BatchProver) Schedule() Schedule { return bp.scheduleOrDefault() }

func (bp *BatchProver) scheduleOrDefault() Schedule {
	if bp.schedCfg != nil {
		return *bp.schedCfg
	}
	return Schedule{Workers: [4]int{1, 1, 1, 1}}
}

// StageWorkers returns the current per-stage pool sizes of the live run —
// the values autobalance moves at runtime — or the configured schedule
// when no run is active.
func (bp *BatchProver) StageWorkers() [4]int {
	if g := bp.graph; g != nil {
		var out [4]int
		copy(out[:], g.Workers())
		return out
	}
	sc := bp.scheduleOrDefault()
	for i, w := range sc.Workers {
		if w < 1 {
			sc.Workers[i] = 1
		}
	}
	return sc.Workers
}

// ProportionalSchedule derives a schedule from measured stage busy times
// by the paper's §4 amortized-time-ratio rule: a budget of workers split
// across the four stages in proportion to each stage's share of the
// total busy time, with at least one worker per stage. The stats
// typically come from a calibration run (see CalibrateSchedule) or a
// previous production run of the same circuit.
func ProportionalSchedule(stats Stats, budget int) Schedule {
	weights := make([]float64, len(stats.StageNs))
	for i, ns := range stats.StageNs {
		weights[i] = float64(ns)
	}
	split := sched.Proportional(weights, budget, 1)
	var s Schedule
	copy(s.Workers[:], split)
	return s
}

// CalibrateSchedule measures the prover's per-stage amortized times on
// samples random jobs (run through a fresh sequential prover so the
// measurement is undisturbed by concurrency) and returns the
// proportional split of budget workers. This is the reproduction of the
// paper's offline profiling step that feeds the §4 thread allocation.
func (bp *BatchProver) CalibrateSchedule(budget, samples int) (Schedule, error) {
	if budget < len(StageNames) {
		return Schedule{}, fmt.Errorf("core: calibration budget %d < %d stages", budget, len(StageNames))
	}
	if samples < 1 {
		samples = 4
	}
	probe, err := NewBatchProver(bp.c, bp.p, 1)
	if err != nil {
		return Schedule{}, err
	}
	probe.SetTelemetry(bp.tel)
	jobs := make([]Job, samples)
	for i := range jobs {
		jobs[i] = Job{
			ID:     i,
			Public: field.RandVector(bp.c.NumPublic),
			Secret: field.RandVector(bp.c.NumSecret),
		}
	}
	for _, r := range probe.ProveBatch(jobs) {
		if r.Err != nil {
			return Schedule{}, fmt.Errorf("core: calibration job %d failed: %w", r.ID, r.Err)
		}
	}
	return ProportionalSchedule(probe.Stats(), budget), nil
}
