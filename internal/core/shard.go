package core

import (
	"fmt"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
	"batchzk/internal/protocol"
	"batchzk/internal/telemetry"
)

// ShardedProver splits one batch across S independent prover shards —
// the multi-device scaling mode of §6: each shard is a full four-stage
// pipelined prover (one simulated device), jobs are scattered round-robin
// in submission order, and results are merged back deterministically so
// the combined stream is in global submission order with proofs
// bit-identical to the single-prover (and sequential-reference) output.
type ShardedProver struct {
	shards []*BatchProver
}

// NewShardedProver builds shards independent provers over the same
// circuit, each with its own in-flight budget of depth proofs (so total
// memory scales with shards·depth, one device budget per shard).
func NewShardedProver(c *circuit.Circuit, p *protocol.Params, shards, depth int) (*ShardedProver, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: shard count %d < 1", shards)
	}
	sp := &ShardedProver{shards: make([]*BatchProver, shards)}
	for i := range sp.shards {
		bp, err := NewBatchProver(c, p, depth)
		if err != nil {
			return nil, err
		}
		// Each shard knows its own index, so the shard's intake records
		// the assignment on every job's flight timeline as it lands.
		bp.shard = i
		sp.shards[i] = bp
	}
	return sp, nil
}

// Shards returns the number of prover shards.
func (sp *ShardedProver) Shards() int { return len(sp.shards) }

// Shard returns shard i, for per-shard inspection (stats, quarantine).
func (sp *ShardedProver) Shard(i int) *BatchProver { return sp.shards[i] }

// SetSchedule installs the same stage-scheduling configuration on every
// shard. Call before Run/ProveBatch.
func (sp *ShardedProver) SetSchedule(s *Schedule) {
	for _, bp := range sp.shards {
		bp.SetSchedule(s)
	}
}

// SetResilience installs the same failure-handling configuration on
// every shard. A shared *Resilience (including a shared fault injector,
// whose ledger is thread-safe) is fine: all per-attempt state lives in
// the shards.
func (sp *ShardedProver) SetResilience(r *Resilience) {
	for _, bp := range sp.shards {
		bp.SetResilience(r)
	}
}

// SetTelemetry directs every shard's metrics and spans into s.
func (sp *ShardedProver) SetTelemetry(s *telemetry.Sink) {
	for _, bp := range sp.shards {
		bp.SetTelemetry(s)
	}
}

// Stats aggregates the shards' counters.
func (sp *ShardedProver) Stats() Stats {
	var agg Stats
	for _, bp := range sp.shards {
		s := bp.Stats()
		agg.Completed += s.Completed
		agg.Failed += s.Failed
		agg.QueueDepth += s.QueueDepth
		for i := range agg.StageNs {
			agg.StageNs[i] += s.StageNs[i]
		}
		agg.Retries += s.Retries
		agg.Quarantined += s.Quarantined
		agg.Timeouts += s.Timeouts
		agg.PanicsRecovered += s.PanicsRecovered
	}
	return agg
}

// Quarantined returns the concatenated dead-letter lists of all shards.
func (sp *ShardedProver) Quarantined() []QuarantinedJob {
	var out []QuarantinedJob
	for _, bp := range sp.shards {
		out = append(out, bp.Quarantined()...)
	}
	return out
}

// Run scatters jobs round-robin across the shards (job k to shard k mod
// S, in submission order) and merges the shard outputs back in the same
// rotation. Because every shard emits its own jobs in submission order,
// the round-robin merge reconstructs the global submission order exactly
// — the sharded stream is indistinguishable from a single prover's,
// just wider.
func (sp *ShardedProver) Run(jobs <-chan Job) <-chan Result {
	s := len(sp.shards)
	ins := make([]chan Job, s)
	outs := make([]<-chan Result, s)
	for i := range ins {
		ins[i] = make(chan Job, sp.shards[i].depth)
		outs[i] = sp.shards[i].Run(ins[i])
	}

	go func() {
		k := 0
		for j := range jobs {
			ins[k%s] <- j
			k++
		}
		for i := range ins {
			close(ins[i])
		}
	}()

	results := make(chan Result, s)
	go func() {
		defer close(results)
		for {
			for i := 0; i < s; i++ {
				r, ok := <-outs[i]
				if !ok {
					// Shard i is drained. Round-robin scatter gives shard
					// i at least as many jobs as every shard after it, so
					// the whole rotation — and the run — is over.
					for _, rest := range outs[i+1:] {
						for range rest {
						}
					}
					return
				}
				results <- r
			}
		}
	}()
	return results
}

// ProveBatch is the convenience form: scatter a slice of jobs across the
// shards, collect all results in global submission order.
func (sp *ShardedProver) ProveBatch(jobs []Job) []Result {
	in := make(chan Job, len(jobs))
	for _, j := range jobs {
		in <- j
	}
	close(in)
	results := make([]Result, 0, len(jobs))
	for r := range sp.Run(in) {
		results = append(results, r)
	}
	return results
}

// Verify checks a result produced by any shard.
func (sp *ShardedProver) Verify(public []field.Element, proof *protocol.Proof) error {
	return protocol.Verify(sp.shards[0].c, sp.shards[0].p, public, proof)
}
