package core

import (
	"fmt"
	"math/bits"
	"strings"

	"batchzk/internal/encoder"
	"batchzk/internal/gpusim"
	"batchzk/internal/pcs"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
)

// SystemShape fixes the derived sizes of one proof at circuit scale S
// (the paper's S = number of multiplication gates).
type SystemShape struct {
	Scale    int // S
	NumGates int // padded gate count m (hypercube of the Hadamard check)
	NumWires int // padded wire-vector length N_w (the committed vector)
	Rows     int // PCS matrix rows
	Cols     int // PCS matrix columns (per-row message length)
	CwLen    int // per-row codeword length (RateInv · Cols)
	GateVars int
	WireVars int
}

// ShapeForScale derives the proof shape for a power-of-two scale S. A
// compiled circuit with S multiplication gates carries ≈S/4 interleaved
// additions plus inputs and constants, so both the padded gate count and
// the padded wire count land at 2S.
func ShapeForScale(S int) (SystemShape, error) {
	if S < 16 || S&(S-1) != 0 {
		return SystemShape{}, fmt.Errorf("core: scale %d must be a power of two ≥ 16", S)
	}
	nw := 2 * S
	ng := 2 * S
	p := pcs.NewParams(bits.TrailingZeros(uint(nw)))
	return SystemShape{
		Scale:    S,
		NumGates: ng,
		NumWires: nw,
		Rows:     p.NumRows,
		Cols:     p.NumCols,
		CwLen:    encoder.RateInv * p.NumCols,
		GateVars: bits.TrailingZeros(uint(ng)),
		WireVars: bits.TrailingZeros(uint(nw)),
	}, nil
}

// SystemStages composes the full per-proof stage list of the paper's
// Figure 7 pipeline: linear-time encoders over every matrix row, Merkle
// hashing of the encoded columns plus the tree above them, the
// gate-consistency (degree-3) sum-check, the batched linear (degree-2)
// sum-check, and the commitment-opening row combinations. Stage names are
// prefixed encoder/, merkle/, sumcheck/ so reports can aggregate per
// module family.
func SystemStages(shape SystemShape, costs perfmodel.OpCosts, encP encoder.Params) ([]gpusim.Stage, error) {
	enc, err := encoder.Cached(shape.Cols, encP)
	if err != nil {
		return nil, err
	}
	var stages []gpusim.Stage

	// Encoder: each of the Rows rows is encoded; one pipeline stage per
	// recursion level, with all rows of one proof flowing together.
	encStages := pipeline.EncoderStages(enc, costs, true)
	rows := float64(shape.Rows)
	for i := range encStages {
		st := encStages[i]
		st.WorkOps *= rows
		st.ParallelOps *= rows
		st.MemBytes *= rows
		st.HostBytesIn *= rows // witness rows stream in (dynamic loading)
		st.HostBytesOut = 0    // codewords stay on device for hashing
		stages = append(stages, st)
	}

	// Merkle: hash every encoded column (Rows elements → Rows/2
	// compressions each), then the binary tree over CwLen leaves.
	leafCompressions := float64(shape.CwLen) * float64(maxI(shape.Rows/2, 1))
	stages = append(stages, gpusim.Stage{
		Name:        "merkle/columns",
		WorkOps:     leafCompressions,
		CyclesPerOp: costs.HashCycles,
		MemBytes:    float64(shape.CwLen*shape.Rows) * perfmodel.FieldBytes,
	})
	for sz := shape.CwLen / 2; sz >= 1; sz /= 2 {
		stages = append(stages, gpusim.Stage{
			Name:        "merkle/layer",
			WorkOps:     float64(sz),
			CyclesPerOp: costs.HashCycles,
			MemBytes:    float64(sz) * 3 * perfmodel.HashDigestBytes,
		})
	}

	// Sum-check A: the degree-3 gate-consistency rounds. Per table pair:
	// the round polynomial is evaluated at 4 points (3 lerps + 2 muls
	// each) and the three tables fold (3 lerps) ≈ 23 muls + 46 adds.
	// sumcheckLoad folds in the additional sum-check instances a
	// production protocol of this family runs over the wiring predicates
	// (Orion's GKR layers); calibrated against Table 7's sum-check
	// breakdown at S = 2^18.
	const sumcheckLoad = 2.5
	tripleCycles := sumcheckLoad * (23*costs.FieldMulCycles + 46*costs.FieldAddCycles)
	for i := 0; i < shape.GateVars; i++ {
		in := 1 << (shape.GateVars - i)
		st := gpusim.Stage{
			Name:        "sumcheck/gate-round",
			WorkOps:     float64(in / 2),
			CyclesPerOp: tripleCycles,
			MemBytes:    sumcheckLoad * float64(3*(in+in/2)) * perfmodel.FieldBytes * 2,
		}
		if i == 0 {
			// The L, R, O tables are interpolated from intermediate
			// results held in host memory (§4) and stream in per cycle.
			st.HostBytesIn = float64(3*in) * perfmodel.FieldBytes
		}
		stages = append(stages, st)
	}
	// Sum-check B: the degree-2 linear-check rounds over the wire vector,
	// preceded by building the public combination vector V.
	stages = append(stages, gpusim.Stage{
		Name:        "sumcheck/combine-v",
		WorkOps:     float64(shape.NumWires),
		CyclesPerOp: costs.FieldMulCycles + costs.FieldAddCycles,
		MemBytes:    float64(shape.NumWires) * perfmodel.FieldBytes * 2,
	})
	prodCycles := sumcheckLoad * (11*costs.FieldMulCycles + 22*costs.FieldAddCycles)
	for i := 0; i < shape.WireVars; i++ {
		in := 1 << (shape.WireVars - i)
		st := gpusim.Stage{
			Name:        "sumcheck/linear-round",
			WorkOps:     float64(in / 2),
			CyclesPerOp: prodCycles,
			MemBytes:    sumcheckLoad * float64(2*(in+in/2)) * perfmodel.FieldBytes * 2,
		}
		if i == 0 {
			st.HostBytesIn = float64(in) * perfmodel.FieldBytes
		}
		stages = append(stages, st)
	}
	// Opening: the two committed-row combinations γᵀM and eqᵀM.
	stages = append(stages, gpusim.Stage{
		Name:        "sumcheck/open-rows",
		WorkOps:     float64(2 * shape.NumWires),
		CyclesPerOp: costs.FieldMulCycles + costs.FieldAddCycles,
		MemBytes:    float64(2*shape.NumWires) * perfmodel.FieldBytes,
		// The assembled proof (a few MB) returns to the host.
		HostBytesOut: proofBytes(shape),
	})
	return stages, nil
}

// proofBytes estimates the serialized proof size: the opened columns
// dominate ("the proof size … reaches several MB").
func proofBytes(shape SystemShape) float64 {
	colBytes := float64(shape.Rows) * perfmodel.FieldBytes
	pathBytes := float64(bits.Len(uint(shape.CwLen))) * perfmodel.HashDigestBytes
	openings := float64(pcs.DefaultNumOpenings) * (colBytes + pathBytes)
	rowsOut := 2 * float64(shape.Cols) * perfmodel.FieldBytes
	sumchecks := float64(4*shape.GateVars+3*shape.WireVars) * perfmodel.FieldBytes
	return openings + rowsOut + sumchecks
}

// SystemTaskBytes is the device-memory footprint of the pipeline under
// the dynamic loading/storing discipline of §4:
//
//   - the message rows being encoded (the encoded matrix itself streams
//     back to host after column hashing; openings are recomputed from the
//     host copy);
//   - the Merkle layers in flight;
//   - the sum-check double buffers: the L and R tables of the gate check
//     (the eq table is tensor-structured and generated on the fly) and
//     the W table of the linear check (V is publicly derivable), each
//     slot ping-ponged per Figure 5, with slot sizes decaying
//     geometrically (Σ slots ≈ 2× the first).
func SystemTaskBytes(shape SystemShape) int64 {
	bytes := int64(shape.NumWires) * perfmodel.FieldBytes                 // message rows
	bytes += 2 * int64(shape.CwLen) * perfmodel.HashDigestBytes           // tree layers
	bytes += 2 * 2 * int64(2*2*shape.NumGates) * perfmodel.FieldBytes / 2 // gate L,R double buffers
	bytes += 2 * 2 * int64(2*shape.NumWires) * perfmodel.FieldBytes / 2   // linear W double buffers
	return bytes
}

// SystemReport extends the simulator report with the per-module breakdown
// of Table 7 and the paper's thread-allocation ratio (§4).
type SystemReport struct {
	gpusim.Report
	Shape SystemShape
	// Amortized per-proof time attributed to each module family (ns).
	EncoderNs  float64
	MerkleNs   float64
	SumcheckNs float64
	// ThreadAllocation maps module family → threads, computed from the
	// work proportions the way the paper derives 2240/768/7296 on V100.
	ThreadAllocation map[string]int
}

// SimulateSystem models batch proof generation at scale S on a device.
func SimulateSystem(spec gpusim.DeviceSpec, costs perfmodel.OpCosts, S, batch int, overlap bool) (*SystemReport, error) {
	shape, err := ShapeForScale(S)
	if err != nil {
		return nil, err
	}
	stages, err := SystemStages(shape, costs, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	rep, err := gpusim.RunPipelined(spec, stages, batch, gpusim.Options{
		Overlap:   overlap,
		TaskBytes: SystemTaskBytes(shape),
	})
	if err != nil {
		return nil, err
	}
	out := &SystemReport{Report: *rep, Shape: shape, ThreadAllocation: map[string]int{}}

	// Work-proportional attribution of the amortized cycle, and the
	// matching thread allocation.
	famCycles := map[string]float64{}
	total := 0.0
	for i := range stages {
		fam := strings.SplitN(stages[i].Name, "/", 2)[0]
		w := stages[i].WorkOps * stages[i].CyclesPerOp
		famCycles[fam] += w
		total += w
	}
	for fam, w := range famCycles {
		share := w / total
		out.ThreadAllocation[fam] = int(share * float64(spec.Cores))
		ns := share * rep.CycleNs
		switch fam {
		case "encoder":
			out.EncoderNs = ns
		case "merkle":
			out.MerkleNs = ns
		case "sumcheck":
			out.SumcheckNs = ns
		}
	}
	return out, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ShardedSystemReport summarizes a sharded simulation: one batch split
// across S simulated devices with per-device memory budgets.
type ShardedSystemReport struct {
	Shape  SystemShape
	Shards int
	Batch  int
	// PerShard holds each simulated device's pipeline report, in the
	// deterministic scatter order (device i proves jobs i, i+S, …).
	PerShard []*gpusim.Report
	// TotalNs is the batch wall time (the slowest device).
	TotalNs float64
	// ThroughputPerMs is aggregate proofs per millisecond.
	ThroughputPerMs float64
	// PeakDeviceBytes is the largest per-device memory high-water mark.
	PeakDeviceBytes int64
}

// SimulateSystemSharded models batch proof generation at scale S with the
// batch split across shards simulated devices — the system-model twin of
// core.ShardedProver. deviceMemBytes, when positive, overrides each
// device's memory budget (so a budget too small for the dynamic-loading
// working set surfaces as gpusim.ErrOutOfMemory, per device).
func SimulateSystemSharded(spec gpusim.DeviceSpec, costs perfmodel.OpCosts, S, batch, shards int, overlap bool, deviceMemBytes int64) (*ShardedSystemReport, error) {
	shape, err := ShapeForScale(S)
	if err != nil {
		return nil, err
	}
	stages, err := SystemStages(shape, costs, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	if deviceMemBytes > 0 {
		spec.DeviceMemBytes = deviceMemBytes
	}
	rep, err := gpusim.RunSharded(spec, stages, batch, shards, gpusim.Options{
		Overlap:   overlap,
		TaskBytes: SystemTaskBytes(shape),
	})
	if err != nil {
		return nil, err
	}
	return &ShardedSystemReport{
		Shape:           shape,
		Shards:          shards,
		Batch:           batch,
		PerShard:        rep.PerShard,
		TotalNs:         rep.TotalNs,
		ThroughputPerMs: rep.ThroughputPerMs(),
		PeakDeviceBytes: rep.PeakDeviceBytes,
	}, nil
}

// MultiGPUReport summarizes a multi-device deployment.
type MultiGPUReport struct {
	PerDevice       *SystemReport
	NumDevices      int
	ThroughputPerMs float64
	// HostBound reports whether aggregate host↔device traffic exceeded
	// the host-memory bandwidth, capping the scaling.
	HostBound bool
}

// SimulateMultiGPU models batch proving across several identical devices,
// each running an independent pipeline fed from shared host memory — the
// natural scale-out of the paper's design (proof jobs are independent).
// Scaling is linear until the aggregate per-cycle transfer demand exceeds
// hostMemGBs, the host-memory bandwidth all device links draw from.
func SimulateMultiGPU(spec gpusim.DeviceSpec, numDevices int, costs perfmodel.OpCosts, S, batchPerDevice int, hostMemGBs float64) (*MultiGPUReport, error) {
	if numDevices < 1 {
		return nil, fmt.Errorf("core: need at least one device")
	}
	if hostMemGBs <= 0 {
		return nil, fmt.Errorf("core: host bandwidth must be positive")
	}
	per, err := SimulateSystem(spec, costs, S, batchPerDevice, true)
	if err != nil {
		return nil, err
	}
	rep := &MultiGPUReport{PerDevice: per, NumDevices: numDevices}

	// Aggregate host traffic: each device moves TransferNsPerTask·link
	// bytes per cycle; K devices demand K× that from host memory.
	perDeviceBytesPerCycle := per.TransferNsPerTask * spec.LinkGBs
	demand := float64(numDevices) * perDeviceBytesPerCycle / per.CycleNs // bytes/ns
	linear := float64(numDevices) * per.ThroughputPerMs()
	if demand > hostMemGBs {
		// Host-bound: throughput capped by how many proofs' worth of
		// transfers the host can serve per unit time (never above the
		// devices' own aggregate capability).
		rep.HostBound = true
		capped := hostMemGBs / perDeviceBytesPerCycle * 1e6
		if capped > linear {
			capped = linear
		}
		rep.ThroughputPerMs = capped
		return rep, nil
	}
	rep.ThroughputPerMs = linear
	return rep, nil
}
