package core

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"batchzk/internal/faults"
	"batchzk/internal/obs"
)

// Failure semantics of the batch prover.
//
// The paper's service setting (§5 — proofs for millions of users) makes
// the pipeline's behavior under faults as important as its throughput: a
// single poisoned job or stalled stage must not wedge the stream. Every
// stage execution therefore runs through runStage, which layers four
// defenses over the raw stage work:
//
//   - panic recovery: a panicking stage worker (or an injected
//     WorkerPanic fault) is converted into a job error instead of
//     killing the pipeline;
//   - bounded retries with exponential backoff: transient faults
//     (kernel failures, transfer stalls, panics) are retried up to
//     Retry.MaxAttempts times;
//   - per-job deadlines: a job that exceeds JobDeadline wall time inside
//     the pipeline (straggler latency spikes included) is cut off;
//   - dead-letter quarantine: a job whose failure is permanent
//     (memory corruption, exhausted retries, blown deadline, or a
//     deterministic witness/protocol error) is quarantined — its Result
//     carries the full error chain, a QuarantinedJob record is kept, and
//     the pipeline moves on to the next job.
//
// All recovery actions are counted in Stats and mirrored to telemetry
// (core/jobs/retries, core/jobs/quarantined, core/jobs/timeouts,
// core/jobs/panics_recovered, core/job/retry_backoff_ns), so a chaos run
// is fully reconcilable against the injector's ledger.

// ErrJobDeadline marks a job cut off for exceeding its pipeline deadline.
var ErrJobDeadline = errors.New("core: job deadline exceeded")

// RetryPolicy bounds how transient stage failures are retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per stage (1 = no retry).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it (exponential backoff).
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry wait. Zero means 100·BaseBackoff.
	MaxBackoff time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the wait before retrying after the given 1-based
// failed attempt: BaseBackoff·2^(attempt-1), capped at MaxBackoff.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 100 * base
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// Resilience configures the batch prover's failure handling. The zero
// configuration (a nil *Resilience) keeps the seed behavior — no
// deadlines, no retries — except that stage panics are always recovered
// into job errors.
type Resilience struct {
	// JobDeadline bounds a job's wall time inside the pipeline, measured
	// from its dequeue by the commit stage. Zero disables deadlines.
	JobDeadline time.Duration
	// Retry bounds transient-failure retries per stage.
	Retry RetryPolicy
	// RetryAll also retries errors that are not injected faults. Off by
	// default: the prover's real failure modes (bad witness, malformed
	// job) are deterministic, and retrying them only delays quarantine.
	RetryAll bool
	// Injector, when set, injects deterministic faults into every stage
	// attempt (see the faults package).
	Injector *faults.Injector
	// Sleep overrides time.Sleep for backoff and straggler delays —
	// tests substitute a virtual clock. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultResilience returns the recommended service configuration:
// 4 attempts per stage, 1 ms base backoff capped at 50 ms, no deadline.
func DefaultResilience() *Resilience {
	return &Resilience{
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	}
}

// SetResilience installs a failure-handling configuration. Call before
// Run/ProveBatch; nil restores the default (quarantine-only) behavior.
func (bp *BatchProver) SetResilience(r *Resilience) { bp.res = r }

// quarantineCap bounds the dead-letter list so a pathological stream
// cannot grow it without bound; the counters remain exact regardless.
const quarantineCap = 1024

// QuarantinedJob is one dead-letter record: a job the pipeline gave up
// on, with the stage it died in, how many attempts were made, and the
// full error chain (errors.Is/As reach the root cause, including any
// injected fault and its class sentinel).
type QuarantinedJob struct {
	ID       int
	Stage    string
	Attempts int
	Err      error
}

// Quarantined returns a copy of the dead-letter list (capped at
// quarantineCap records; Stats().Quarantined counts all of them).
func (bp *BatchProver) Quarantined() []QuarantinedJob {
	bp.qmu.Lock()
	defer bp.qmu.Unlock()
	out := make([]QuarantinedJob, len(bp.quarantined))
	copy(out, bp.quarantined)
	return out
}

// sleep waits d, through the configured clock.
func (bp *BatchProver) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if res := bp.res; res != nil && res.Sleep != nil {
		res.Sleep(d)
		return
	}
	time.Sleep(d)
}

// deadlineLeft returns a non-nil ErrJobDeadline-wrapping error when the
// job has outlived its deadline.
func (bp *BatchProver) deadlineLeft(m *stageMsg) error {
	res := bp.res
	if res == nil || res.JobDeadline <= 0 {
		return nil
	}
	if lived := time.Since(m.started); lived > res.JobDeadline {
		return fmt.Errorf("%w: job %d lived %v > %v", ErrJobDeadline, m.id, lived.Round(time.Microsecond), res.JobDeadline)
	}
	return nil
}

// attemptStage runs one try of stage i: consult the fault plan, then the
// real work, converting panics into errors. Injected faults fire before
// the stage work touches any state, so retrying an injected failure is
// always sound; real (non-injected) errors are treated as deterministic
// and are not retried unless RetryAll is set.
func (bp *BatchProver) attemptStage(i int, ins instruments, m *stageMsg, attempt int, pending *[]*faults.Fault, work func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			bp.panicsRecovered.Add(1)
			ins.panics.Inc()
			if f, ok := r.(*faults.Fault); ok {
				err = f
			} else {
				err = fmt.Errorf("core: stage %s panicked on job %d: %v", StageNames[i], m.id, r)
			}
		}
	}()
	if res := bp.res; res != nil && res.Injector != nil {
		if f := res.Injector.Draw(StageNames[i], m.id, attempt); f != nil {
			switch f.Class {
			case faults.Straggler, faults.SlowShard:
				// The stage completes, but late. The fault stays pending
				// until the stage outcome is known: the spike may blow
				// the job's deadline, which quarantines it.
				*pending = append(*pending, f)
				bp.sleep(f.Delay)
			case faults.WorkerPanic:
				panic(f)
			default:
				return f
			}
		}
	}
	if err := bp.deadlineLeft(m); err != nil {
		return err
	}
	return work()
}

// runStage drives stage i for one job to a terminal outcome: success, or
// quarantine with an attributable error chain. It never lets a failure
// escape as a panic or a stall — the message always continues down the
// pipeline so the job's Result is emitted.
func (bp *BatchProver) runStage(i int, ins instruments, m *stageMsg, work func() error) {
	if m.err != nil {
		return // already terminal from an earlier stage
	}
	res := bp.res
	maxAttempts := 1
	if res != nil {
		maxAttempts = res.Retry.attempts()
	}
	// One flight-recorder Stage record covers the whole stage — every
	// attempt and backoff — so the timeline's stage duration is what the
	// job experienced, with the attempt count alongside.
	stageStart := ins.flight.Now()
	var pending []*faults.Fault
	for attempt := 1; ; attempt++ {
		var err error
		bp.timeStage(i, ins, m.job.ID(), m.id, func() {
			err = bp.attemptStage(i, ins, m, attempt, &pending, work)
		})
		if err == nil {
			for _, f := range pending {
				f.MarkRecovered()
			}
			ins.flight.Stage(m.trace, StageNames[i], stageStart, ins.flight.Now()-stageStart, m.waitNs, attempt)
			return
		}
		var f *faults.Fault
		isFault := errors.As(err, &f)
		if isFault && f != nil && !containsFault(pending, f) {
			pending = append(pending, f)
		}
		retryable := false
		switch {
		case errors.Is(err, ErrJobDeadline):
			// A blown deadline is terminal no matter what caused it.
		case isFault:
			retryable = !f.Permanent()
		default:
			retryable = res != nil && res.RetryAll
		}
		if !retryable || attempt >= maxAttempts {
			bp.quarantine(ins, m, i, attempt, err, pending)
			ins.flight.Stage(m.trace, StageNames[i], stageStart, ins.flight.Now()-stageStart, m.waitNs, attempt)
			return
		}
		d := res.Retry.backoff(attempt)
		bp.retries.Add(1)
		ins.retries.Inc()
		ins.backoff.Observe(d.Nanoseconds())
		ins.flight.Retry(m.trace, StageNames[i], attempt)
		obs.Warn("core", "stage.retry",
			obs.Job(m.id), obs.Trace(m.trace), obs.Stage(StageNames[i]),
			obs.Shard(bp.shard), obs.Attempt(attempt), obs.Err(err),
			slog.Int64("backoff_ns", d.Nanoseconds()))
		bp.sleep(d)
	}
}

func containsFault(pending []*faults.Fault, f *faults.Fault) bool {
	for _, p := range pending {
		if p == f {
			return true
		}
	}
	return false
}

// quarantine records a terminal job failure: the message's error becomes
// the full chain, every fault that contributed is resolved as
// quarantined in the injector's ledger, and the dead-letter list and
// counters are updated. The job still flows to the result stage, so the
// stream never stalls on a poison job.
func (bp *BatchProver) quarantine(ins instruments, m *stageMsg, stage, attempts int, err error, pending []*faults.Fault) {
	m.err = fmt.Errorf("core: job %d quarantined at stage %s after %d attempt(s): %w",
		m.id, StageNames[stage], attempts, err)
	m.quarantined = true
	for _, f := range pending {
		f.MarkQuarantined()
	}
	ins.flight.Quarantine(m.trace, StageNames[stage], m.err.Error())
	bp.quarantinedN.Add(1)
	ins.quarantined.Inc()
	obs.Error("core", "job.quarantined",
		obs.Job(m.id), obs.Trace(m.trace), obs.Stage(StageNames[stage]),
		obs.Shard(bp.shard), obs.Attempt(attempts), obs.Err(m.err))
	if errors.Is(err, ErrJobDeadline) {
		bp.timeouts.Add(1)
		ins.timeouts.Inc()
		obs.Warn("core", "job.deadline_exceeded",
			obs.Job(m.id), obs.Trace(m.trace), obs.Stage(StageNames[stage]),
			obs.Shard(bp.shard), obs.Err(err))
	}
	bp.qmu.Lock()
	if len(bp.quarantined) < quarantineCap {
		bp.quarantined = append(bp.quarantined, QuarantinedJob{
			ID: m.id, Stage: StageNames[stage], Attempts: attempts, Err: m.err,
		})
	}
	bp.qmu.Unlock()
}
