package core

import (
	"testing"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
	"batchzk/internal/perfmodel"
	"batchzk/internal/protocol"
)

func testCircuit(t testing.TB) (*circuit.Circuit, *protocol.Params) {
	t.Helper()
	c, err := circuit.RandomCircuit(64, 2, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := protocol.Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestNewBatchProverValidation(t *testing.T) {
	c, p := testCircuit(t)
	if _, err := NewBatchProver(nil, p, 4); err == nil {
		t.Fatal("accepted nil circuit")
	}
	if _, err := NewBatchProver(c, nil, 4); err == nil {
		t.Fatal("accepted nil params")
	}
	if _, err := NewBatchProver(c, p, 0); err == nil {
		t.Fatal("accepted zero depth")
	}
}

func TestBatchProofsMatchSequential(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)})
	}
	results := bp.ProveBatch(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.ID != i {
			t.Fatalf("results out of order: got ID %d at %d", r.ID, i)
		}
		// Identical to the sequential reference prover.
		want, err := protocol.Prove(c, p, jobs[i].Public, jobs[i].Secret)
		if err != nil {
			t.Fatal(err)
		}
		if r.Proof.Commitment.Root != want.Commitment.Root {
			t.Fatalf("job %d: commitment differs from sequential prover", i)
		}
		if !r.Proof.OTau.Equal(&want.OTau) || !r.Proof.WSigma.Equal(&want.WSigma) {
			t.Fatalf("job %d: proof scalars differ from sequential prover", i)
		}
		// And it verifies.
		if err := bp.Verify(jobs[i].Public, r.Proof); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

func TestBatchWithPrecomputedWitness(t *testing.T) {
	c, p := testCircuit(t)
	bp, _ := NewBatchProver(c, p, 2)
	pub, sec := field.RandVector(2), field.RandVector(2)
	w, err := c.Evaluate(pub, sec)
	if err != nil {
		t.Fatal(err)
	}
	results := bp.ProveBatch([]Job{{ID: 0, Public: pub, Witness: w}})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if err := bp.Verify(pub, results[0].Proof); err != nil {
		t.Fatal(err)
	}
}

func TestBatchReportsBadJobs(t *testing.T) {
	c, p := testCircuit(t)
	bp, _ := NewBatchProver(c, p, 2)
	jobs := []Job{
		{ID: 0, Public: field.RandVector(2), Secret: field.RandVector(2)},
		{ID: 1, Public: field.RandVector(1), Secret: field.RandVector(2)}, // wrong arity
		{ID: 2, Public: field.RandVector(2), Secret: field.RandVector(2)},
	}
	results := bp.ProveBatch(jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatal("good jobs failed")
	}
	if results[1].Err == nil {
		t.Fatal("bad job did not error")
	}
	if err := bp.Verify(jobs[2].Public, results[2].Proof); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingRun(t *testing.T) {
	c, p := testCircuit(t)
	bp, _ := NewBatchProver(c, p, 3)
	in := make(chan Job)
	out := bp.Run(in)
	go func() {
		for i := 0; i < 5; i++ {
			in <- Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
		}
		close(in)
	}()
	n := 0
	for r := range out {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.ID != n {
			t.Fatalf("out of order: %d at %d", r.ID, n)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("got %d results", n)
	}
}

func TestBatchProverStats(t *testing.T) {
	c, p := testCircuit(t)
	bp, _ := NewBatchProver(c, p, 2)
	if s := bp.Stats(); s.Completed != 0 || s.Failed != 0 {
		t.Fatal("fresh prover has non-zero counters")
	}
	jobs := []Job{
		{ID: 0, Public: field.RandVector(2), Secret: field.RandVector(2)},
		{ID: 1, Public: field.RandVector(1)}, // bad arity
		{ID: 2, Public: field.RandVector(2), Secret: field.RandVector(2)},
	}
	bp.ProveBatch(jobs)
	s := bp.Stats()
	if s.Completed != 2 || s.Failed != 1 {
		t.Fatalf("completed=%d failed=%d", s.Completed, s.Failed)
	}
	// Every stage must have accumulated some busy time for the good jobs.
	total := 0.0
	for i := range s.StageNs {
		if s.StageNs[i] <= 0 {
			t.Fatalf("stage %s has no recorded time", StageNames[i])
		}
		total += s.StageShare(i)
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("stage shares sum to %v", total)
	}
	if (Stats{}).StageShare(0) != 0 {
		t.Fatal("empty stats should have zero shares")
	}
}

func TestShapeForScale(t *testing.T) {
	shape, err := ShapeForScale(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if shape.NumWires != 2<<10 || shape.NumGates != 2<<10 {
		t.Fatalf("shape: %+v", shape)
	}
	if shape.Rows*shape.Cols != shape.NumWires {
		t.Fatal("layout does not cover the wire vector")
	}
	if shape.CwLen != 4*shape.Cols {
		t.Fatal("codeword length mismatch")
	}
	if _, err := ShapeForScale(100); err == nil {
		t.Fatal("accepted non-power-of-two scale")
	}
	if _, err := ShapeForScale(2); err == nil {
		t.Fatal("accepted tiny scale")
	}
}

func TestSimulateSystem(t *testing.T) {
	spec := perfmodel.GH200()
	costs := perfmodel.GPUCosts()
	rep, err := SimulateSystem(spec, costs, 1<<16, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CycleNs <= 0 || rep.ThroughputPerMs() <= 0 {
		t.Fatal("degenerate report")
	}
	// Breakdown must roughly add up to the amortized proof time.
	sum := rep.EncoderNs + rep.MerkleNs + rep.SumcheckNs
	if sum < rep.CycleNs*0.95 || sum > rep.CycleNs*1.05 {
		t.Fatalf("breakdown %.0f vs cycle %.0f", sum, rep.CycleNs)
	}
	// Thread allocation covers the three families and sums below cores.
	total := 0
	for _, fam := range []string{"encoder", "merkle", "sumcheck"} {
		n, ok := rep.ThreadAllocation[fam]
		if !ok || n <= 0 {
			t.Fatalf("missing thread allocation for %s", fam)
		}
		total += n
	}
	if total > spec.Cores {
		t.Fatalf("allocated %d threads on %d cores", total, spec.Cores)
	}
	// Larger scales take longer per proof.
	rep2, err := SimulateSystem(spec, costs, 1<<18, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CycleNs <= rep.CycleNs {
		t.Fatal("larger scale should cost more per proof")
	}
	// Memory footprint grows with scale (Table 10's "Ours" row).
	s1, _ := ShapeForScale(1 << 16)
	s2, _ := ShapeForScale(1 << 18)
	if SystemTaskBytes(s2) <= SystemTaskBytes(s1) {
		t.Fatal("footprint should grow with scale")
	}
}

func TestSimulateMultiGPU(t *testing.T) {
	spec := perfmodel.H100()
	costs := perfmodel.GPUCosts()
	one, err := SimulateMultiGPU(spec, 1, costs, 1<<18, 64, 350)
	if err != nil {
		t.Fatal(err)
	}
	four, err := SimulateMultiGPU(spec, 4, costs, 1<<18, 64, 350)
	if err != nil {
		t.Fatal(err)
	}
	ratio := four.ThroughputPerMs / one.ThroughputPerMs
	if ratio < 3.9 || ratio > 4.01 {
		t.Fatalf("4-GPU scaling = %.2f×", ratio)
	}
	// A starved host must cap and never exceed linear scaling.
	starved, err := SimulateMultiGPU(spec, 16, costs, 1<<18, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !starved.HostBound {
		t.Fatal("16 GPUs on a 50 GB/s host should be host-bound")
	}
	if starved.ThroughputPerMs > 16*one.ThroughputPerMs {
		t.Fatal("host-bound throughput exceeds linear scaling")
	}
	if _, err := SimulateMultiGPU(spec, 0, costs, 1<<18, 64, 350); err == nil {
		t.Fatal("zero devices accepted")
	}
	if _, err := SimulateMultiGPU(spec, 2, costs, 1<<18, 64, 0); err == nil {
		t.Fatal("zero host bandwidth accepted")
	}
}

func TestSimulateSystemOverlapHelps(t *testing.T) {
	spec := perfmodel.V100()
	costs := perfmodel.GPUCosts()
	with, err := SimulateSystem(spec, costs, 1<<16, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := SimulateSystem(spec, costs, 1<<16, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if with.CycleNs >= without.CycleNs {
		t.Fatal("multi-stream overlap should reduce the cycle (Table 9)")
	}
}
