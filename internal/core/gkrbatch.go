package core

import (
	"fmt"

	"batchzk/internal/field"
	"batchzk/internal/gkr"
	"batchzk/internal/pcs"
	"batchzk/internal/transcript"
)

// GKRJob is one committed-input GKR proof request.
type GKRJob struct {
	ID    int
	Input []field.Element
}

// GKRResult pairs a job with its proof, in submission order.
type GKRResult struct {
	ID    int
	Proof *gkr.CommittedProof
	Err   error
}

// GKRBatchProver streams committed-input GKR proofs (the Virgo/Orion
// protocol shape) through a three-stage pipeline: commit (encoder +
// Merkle), layer sum-checks, and the input opening. Like BatchProver, the
// emitted proofs are identical to the one-at-a-time gkr.ProveCommitted.
type GKRBatchProver struct {
	c      *gkr.Circuit
	params pcs.Params
	depth  int
}

// NewGKRBatchProver builds a batch prover for one layered circuit.
func NewGKRBatchProver(c *gkr.Circuit, params pcs.Params, depth int) (*GKRBatchProver, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil circuit")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if depth < 1 {
		return nil, fmt.Errorf("core: pipeline depth %d < 1", depth)
	}
	return &GKRBatchProver{c: c, params: params, depth: depth}, nil
}

// Run consumes jobs until the channel closes, emitting one result per job
// in order; the three stages work on different proofs concurrently.
func (bp *GKRBatchProver) Run(jobs <-chan GKRJob) <-chan GKRResult {
	results := make(chan GKRResult, bp.depth)

	type inflight struct {
		id    int
		tr    *transcript.Transcript
		st    *pcs.ProverState
		comm  pcs.Commitment
		input []field.Element
		proof *gkr.Proof
		u, v  []field.Element
		err   error
	}

	// Stage 1: commit to the input.
	s1 := make(chan *inflight, bp.depth)
	go func() {
		defer close(s1)
		for job := range jobs {
			f := &inflight{id: job.ID, tr: transcript.New(gkr.Domain), input: job.Input}
			padded := make([]field.Element, bp.c.InputSize)
			n := copy(padded, job.Input)
			if n < len(job.Input) {
				f.err = fmt.Errorf("core: job %d input exceeds circuit input size", job.ID)
			} else {
				f.st, f.err = pcs.Commit(padded, bp.params)
				if f.err == nil {
					f.comm = f.st.Commitment()
					f.tr.AppendDigest("gkr/input-commitment", f.comm.Root)
				}
			}
			s1 <- f
		}
	}()

	// Stage 2: evaluate + layer sum-checks.
	s2 := make(chan *inflight, bp.depth)
	go func() {
		defer close(s2)
		for f := range s1 {
			if f.err == nil {
				var values [][]field.Element
				values, f.err = bp.c.Evaluate(f.input)
				if f.err == nil {
					f.proof, f.u, f.v, f.err = gkr.ProveFromValues(bp.c, values, f.tr)
				}
			}
			s2 <- f
		}
	}()

	// Stage 3: input opening + assembly.
	go func() {
		defer close(results)
		for f := range s2 {
			if f.err != nil {
				results <- GKRResult{ID: f.id, Err: f.err}
				continue
			}
			opening, _, err := f.st.ProveEvalMulti([][]field.Element{f.u, f.v}, f.tr)
			if err != nil {
				results <- GKRResult{ID: f.id, Err: err}
				continue
			}
			results <- GKRResult{ID: f.id, Proof: &gkr.CommittedProof{
				GKR: f.proof, Commitment: f.comm, Opening: opening,
			}}
		}
	}()
	return results
}

// ProveBatch submits a slice of jobs and collects all results in order.
func (bp *GKRBatchProver) ProveBatch(jobs []GKRJob) []GKRResult {
	in := make(chan GKRJob)
	out := bp.Run(in)
	done := make(chan []GKRResult)
	go func() {
		var results []GKRResult
		for r := range out {
			results = append(results, r)
		}
		done <- results
	}()
	for _, j := range jobs {
		in <- j
	}
	close(in)
	return <-done
}

// Verify checks a result against the circuit and parameters.
func (bp *GKRBatchProver) Verify(proof *gkr.CommittedProof) ([]field.Element, error) {
	return gkr.VerifyCommitted(bp.c, proof, bp.params, transcript.New(gkr.Domain))
}
