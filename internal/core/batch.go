// Package core implements BatchZK's primary contribution (§4 of the
// paper): the fully pipelined system for batch generation of
// zero-knowledge proofs.
//
// It has two coupled faces, like the module layer in internal/pipeline:
//
//   - BatchProver, a functional streaming prover: proof jobs enter one per
//     cycle and flow through four stage workers (encode+Merkle commit →
//     gate sum-check → linear sum-check → opening), each stage busy on a
//     different proof at any moment, with a bounded number of proofs in
//     flight (the dynamic-loading discipline). The proofs it emits are
//     bit-identical to the sequential reference prover in
//     internal/protocol, which the tests enforce.
//
//   - SimulateSystem, the system-level performance model: the per-proof
//     work of every stage (encoder multiply-adds, Merkle compressions,
//     sum-check table traffic) is composed into one gpusim pipeline and
//     evaluated on a device profile, producing the numbers of Tables 7–10.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
	"batchzk/internal/obs"
	"batchzk/internal/protocol"
	"batchzk/internal/sched"
	"batchzk/internal/telemetry"
)

// Job is one proof-generation request: the inputs to the committed
// function (customer input and model, in the §5 application).
type Job struct {
	ID     int
	Public []field.Element
	Secret []field.Element
	// Witness may carry a precomputed wire assignment (e.g. from the ML
	// engine); when nil, the prover evaluates the circuit itself.
	Witness circuit.Assignment
	// Trace is the job's flight-recorder trace id. Zero (the default)
	// mints a fresh id at submission; a caller that already holds one —
	// e.g. a service layer that extracted it from a request context with
	// telemetry.TraceIDFrom — sets it here so the job keeps one timeline
	// across API boundaries, shard hand-offs, retries, and quarantine.
	Trace telemetry.TraceID
}

// Result pairs a job with its proof or error. Results arrive in
// completion order, which equals submission order (the pipeline is FIFO).
type Result struct {
	ID    int
	Proof *protocol.Proof
	Err   error
	// Trace is the job's flight-recorder trace id (0 when telemetry was
	// disabled), the key into the exported per-job timeline.
	Trace telemetry.TraceID
}

// StageNames labels the four prover pipeline stages.
var StageNames = [4]string{"commit", "gate-sumcheck", "linear-sumcheck", "opening"}

// Stats is a point-in-time snapshot of a BatchProver's counters: completed
// and failed proofs, the cumulative busy time of each pipeline stage —
// the software analogue of the paper's per-module amortized-time ratio,
// which drives its thread allocation (§4) — and QueueDepth, the number
// of proofs currently inside the pipeline (dequeued by the commit stage
// but not yet emitted as results), the live in-flight gauge the dynamic
// loading discipline bounds.
type Stats struct {
	Completed  int64
	Failed     int64
	QueueDepth int64
	StageNs    [4]int64
	// Resilience counters (see resilience.go): stage retries performed,
	// jobs dead-lettered, deadline kills, and panics converted to errors.
	Retries         int64
	Quarantined     int64
	Timeouts        int64
	PanicsRecovered int64
}

// StageShare returns stage i's fraction of the total busy time.
func (s Stats) StageShare(i int) float64 {
	total := int64(0)
	for _, ns := range s.StageNs {
		total += ns
	}
	if total == 0 {
		return 0
	}
	return float64(s.StageNs[i]) / float64(total)
}

// BatchProver streams proof jobs through the four prover stages.
type BatchProver struct {
	c *circuit.Circuit
	p *protocol.Params
	// depth bounds the number of proofs in flight (device-memory budget).
	depth int

	completed atomic.Int64
	failed    atomic.Int64
	inFlight  atomic.Int64
	stageNs   [4]atomic.Int64

	// Resilience state (see resilience.go).
	res             *Resilience
	retries         atomic.Int64
	quarantinedN    atomic.Int64
	timeouts        atomic.Int64
	panicsRecovered atomic.Int64
	qmu             sync.Mutex
	quarantined     []QuarantinedJob

	// tel overrides the process-wide telemetry sink when non-nil.
	tel *telemetry.Sink

	// shard is this prover's index inside a ShardedProver (-1 when the
	// prover is unsharded), recorded on every job's flight timeline.
	shard int

	// streamCommit routes the commit and opening stages through the
	// out-of-core pcs.StreamingCommitter path (see stream.go).
	streamCommit bool

	// schedCfg configures the stage worker pools (see schedule.go); graph
	// is the live scheduler of the current Run, for introspection.
	schedCfg *Schedule
	graph    *sched.Graph[stageMsg]
}

// Stats returns a snapshot of the prover's counters.
func (bp *BatchProver) Stats() Stats {
	s := Stats{
		Completed:  bp.completed.Load(),
		Failed:     bp.failed.Load(),
		QueueDepth: bp.inFlight.Load(),
	}
	for i := range s.StageNs {
		s.StageNs[i] = bp.stageNs[i].Load()
	}
	s.Retries = bp.retries.Load()
	s.Quarantined = bp.quarantinedN.Load()
	s.Timeouts = bp.timeouts.Load()
	s.PanicsRecovered = bp.panicsRecovered.Load()
	return s
}

// SetTelemetry directs the prover's metrics and spans into s instead of
// the process-wide sink. Call before Run/ProveBatch; a nil s restores
// the global-sink behavior.
func (bp *BatchProver) SetTelemetry(s *telemetry.Sink) { bp.tel = s }

// instruments is the per-Run bundle of resolved telemetry handles. Every
// field may be nil (telemetry disabled) — all recording methods tolerate
// that — so the hot path costs one nil check per record.
type instruments struct {
	tracer    *telemetry.Tracer
	stageHist [4]*telemetry.Histogram
	e2e       *telemetry.Histogram
	queueWait *telemetry.Histogram
	inFlight  *telemetry.Gauge
	completed *telemetry.Counter
	failed    *telemetry.Counter
	// Resilience instruments.
	retries     *telemetry.Counter
	quarantined *telemetry.Counter
	timeouts    *telemetry.Counter
	panics      *telemetry.Counter
	backoff     *telemetry.Histogram
	// flight is the per-job timeline recorder (nil when telemetry is off).
	flight *telemetry.FlightRecorder
}

func (bp *BatchProver) instruments() instruments {
	sink := telemetry.Resolve(bp.tel) // nil-safe: nil sink → nil handles
	var ins instruments
	ins.tracer = sink.Trace()
	for i, name := range StageNames {
		ins.stageHist[i] = sink.Histogram("core/stage/" + name + "/ns")
	}
	ins.e2e = sink.Histogram("core/job/e2e_ns")
	ins.queueWait = sink.Histogram("core/job/queue_wait_ns")
	ins.inFlight = sink.Gauge("core/jobs/in_flight")
	ins.completed = sink.Counter("core/jobs/completed")
	ins.failed = sink.Counter("core/jobs/failed")
	ins.retries = sink.Counter("core/jobs/retries")
	ins.quarantined = sink.Counter("core/jobs/quarantined")
	ins.timeouts = sink.Counter("core/jobs/timeouts")
	ins.panics = sink.Counter("core/jobs/panics_recovered")
	ins.backoff = sink.Histogram("core/job/retry_backoff_ns")
	ins.flight = sink.FlightRecorder()
	return ins
}

// timeStage accumulates wall time into a stage counter, the stage's
// latency histogram, and a "core" layer span parented to the job's span.
func (bp *BatchProver) timeStage(i int, ins instruments, parent telemetry.SpanID, task int, f func()) {
	sp := ins.tracer.Begin("core", "stage/"+StageNames[i], parent, i, task)
	start := time.Now()
	f()
	ns := time.Since(start).Nanoseconds()
	bp.stageNs[i].Add(ns)
	ins.stageHist[i].Observe(ns)
	obs.Active().ObserveStage(StageNames[i], ns)
	sp.End()
}

// observeWait records how long a message sat in an inter-stage queue —
// the live signal (together with per-stage histograms) for choosing the
// pipeline depth from data rather than the static StageShare ratio —
// and returns the wait in ns for the job's flight timeline.
func (ins instruments) observeWait(enq time.Time) int64 {
	if enq.IsZero() {
		return 0
	}
	ns := time.Since(enq).Nanoseconds()
	ins.queueWait.Observe(ns)
	return ns
}

// NewBatchProver builds a batch prover for one circuit. depth is the
// number of proofs in flight (≥ 1); it bounds memory exactly the way the
// paper's dynamic loading does — one proof's data per pipeline stage.
func NewBatchProver(c *circuit.Circuit, p *protocol.Params, depth int) (*BatchProver, error) {
	if c == nil || p == nil {
		return nil, fmt.Errorf("core: nil circuit or params")
	}
	if depth < 1 {
		return nil, fmt.Errorf("core: pipeline depth %d < 1", depth)
	}
	return &BatchProver{c: c, p: p, depth: depth, shard: -1}, nil
}

// Circuit returns the circuit being proven.
func (bp *BatchProver) Circuit() *circuit.Circuit { return bp.c }

// Params returns the protocol parameters.
func (bp *BatchProver) Params() *protocol.Params { return bp.p }

// stageMsg carries an in-flight proof between stage workers.
type stageMsg struct {
	id    int
	src   Job
	f     *protocol.InFlight
	proof *protocol.Proof
	err   error
	// started stamps stage-1 dequeue for the end-to-end latency metric;
	// enq stamps the end of the previous stage for the queue-wait metric.
	started time.Time
	enq     time.Time
	// job is the per-job telemetry span, open from dequeue to result.
	job *telemetry.ActiveSpan
	// trace is the job's flight-recorder id, stamped at submission and
	// carried across every stage hop, retry, and quarantine; waitNs is the
	// queue wait ahead of the stage currently running, for its timeline.
	trace  telemetry.TraceID
	waitNs int64
	// quarantined marks a job the resilience layer dead-lettered, so the
	// result loop can distinguish "failed" from "failed and given up on"
	// when it feeds the obs quarantine-storm detector.
	quarantined bool
}

// processStage runs one prover stage on one message, from whichever
// worker goroutine the scheduler assigned. All mutable state is either
// inside the message or atomic, so any number of concurrent workers per
// stage is safe; runStage layers the resilience semantics (retries,
// deadlines, panic recovery, quarantine) per message.
func (bp *BatchProver) processStage(stage int, ins instruments, m *stageMsg) {
	switch stage {
	case 0:
		m.started = time.Now()
		obs.Active().ObserveQueueDepth(bp.inFlight.Add(1))
		ins.inFlight.Add(1)
		m.job = ins.tracer.Begin("core", "job", 0, len(StageNames), m.id)
		m.job.SetTrace(m.trace)
		m.waitNs = 0 // admission wait is stamped by the flight recorder
		job := m.src
		bp.runStage(0, ins, m, func() error {
			w := job.Witness
			var err error
			if w == nil {
				w, err = bp.c.Evaluate(job.Public, job.Secret)
			}
			if err != nil {
				return err
			}
			if bp.streamCommit {
				m.f, err = protocol.StartProofStreaming(bp.c, bp.p, w)
			} else {
				m.f, err = protocol.StartProof(bp.c, bp.p, w)
			}
			return err
		})
		m.src = Job{} // drop the witness; the in-flight proof carries on
	case 1:
		m.waitNs = ins.observeWait(m.enq)
		bp.runStage(1, ins, m, func() error { return m.f.RunHadamard() })
	case 2:
		m.waitNs = ins.observeWait(m.enq)
		bp.runStage(2, ins, m, func() error { return m.f.RunLinear() })
	case 3:
		m.waitNs = ins.observeWait(m.enq)
		bp.runStage(3, ins, m, func() error {
			var err error
			m.proof, err = m.f.Finish()
			return err
		})
		// The in-flight state (PCS matrices or tree, padded witness) is
		// dead once the proof exists; drop it before the message waits in
		// the reorder buffer so only finished proofs occupy that window.
		m.f = nil
	}
	m.enq = time.Now()
}

// Run consumes jobs until the channel closes and emits one Result per job
// on the returned channel, in submission order. The four stages run
// concurrently on the sched execution layer, each served by a worker
// pool sized by the prover's Schedule (one worker per stage by default —
// the software realization of the full-workload state of §4; wider pools
// realize the §4 amortized-time-ratio thread allocation). The scheduler's
// reorder buffer restores submission order, and at most depth proofs are
// in flight (the dynamic-loading memory bound).
func (bp *BatchProver) Run(jobs <-chan Job) <-chan Result {
	ins := bp.instruments()
	sc := bp.scheduleOrDefault()

	specs := make([]sched.StageSpec, len(StageNames))
	for i, name := range StageNames {
		specs[i] = sched.StageSpec{Name: name, Workers: sc.Workers[i]}
	}
	opts := sched.Options{
		Name:      "core",
		InFlight:  bp.depth,
		Telemetry: bp.tel,
	}
	if sc.Autobalance {
		opts.Autobalance = &sched.Autobalance{
			Interval: sc.RebalanceEvery,
			Budget:   sc.Budget,
		}
	}
	g, err := sched.NewGraph(specs, func(stage int, m *stageMsg) {
		bp.processStage(stage, ins, m)
	}, opts)
	if err != nil {
		// Unreachable: specs are fixed and depth is validated at
		// construction. Surface loudly rather than wedging the stream.
		panic(fmt.Sprintf("core: scheduler rejected prover stage graph: %v", err))
	}
	// Last-resort backstop: runStage already converts stage panics into
	// job errors, so this only fires if the resilience layer itself dies.
	g.SetRecover(func(stage int, m *stageMsg, r any) {
		if m.err == nil {
			m.err = fmt.Errorf("core: stage %s scheduler panic on job %d: %v", StageNames[stage], m.id, r)
		}
	})
	bp.graph = g

	gin := make(chan stageMsg, bp.depth)
	go func() {
		defer close(gin)
		for job := range jobs {
			// Submit mints a trace id for untagged jobs and re-submits
			// tagged ones unchanged, so a sharded hand-off keeps one
			// timeline while recording which shard the job landed on.
			trace := ins.flight.Submit(job.Trace, job.ID, bp.shard)
			gin <- stageMsg{id: job.ID, src: job, trace: trace}
		}
	}()

	results := make(chan Result, bp.depth)
	go func() {
		defer close(results)
		for m := range g.Run(gin) {
			m.job.End()
			e2eNs := time.Since(m.started).Nanoseconds()
			ins.e2e.Observe(e2eNs)
			obs.Active().ObserveQueueDepth(bp.inFlight.Add(-1))
			ins.inFlight.Add(-1)
			obs.Active().ObserveJob(bp.shard, e2eNs, m.err != nil, m.quarantined)
			if m.err != nil {
				bp.failed.Add(1)
				ins.failed.Inc()
				ins.flight.Emit(m.trace, m.err.Error())
				results <- Result{ID: m.id, Err: m.err, Trace: m.trace}
				continue
			}
			bp.completed.Add(1)
			ins.completed.Inc()
			ins.flight.Emit(m.trace, "")
			obs.Debug("core", "job.completed", obs.Job(m.id), obs.Trace(m.trace), obs.Shard(bp.shard))
			results <- Result{ID: m.id, Proof: m.proof, Trace: m.trace}
		}
	}()
	return results
}

// ProveBatch is the convenience form: submit a slice of jobs, collect all
// results (in order). The whole batch is buffered up front so a slow
// stage or consumer never serializes submission.
func (bp *BatchProver) ProveBatch(jobs []Job) []Result {
	in := make(chan Job, len(jobs))
	for _, j := range jobs {
		in <- j
	}
	close(in)
	results := make([]Result, 0, len(jobs))
	for r := range bp.Run(in) {
		results = append(results, r)
	}
	return results
}

// Verify checks a result produced by this prover.
func (bp *BatchProver) Verify(public []field.Element, proof *protocol.Proof) error {
	return protocol.Verify(bp.c, bp.p, public, proof)
}
