package core

import (
	"testing"
	"time"

	"batchzk/internal/field"
)

// TestStageShareEdgeCases pins the degenerate StageShare inputs: an empty
// snapshot yields zero for every stage, and a snapshot where a single
// stage holds all the busy time yields exactly 1 for it and 0 elsewhere.
func TestStageShareEdgeCases(t *testing.T) {
	var empty Stats
	for i := range empty.StageNs {
		if got := empty.StageShare(i); got != 0 {
			t.Fatalf("empty stats: StageShare(%d) = %v, want 0", i, got)
		}
	}
	single := Stats{StageNs: [4]int64{0, 0, 1234, 0}}
	for i := range single.StageNs {
		want := 0.0
		if i == 2 {
			want = 1.0
		}
		if got := single.StageShare(i); got != want {
			t.Fatalf("single-stage stats: StageShare(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestQueueDepthTracksInFlight drives the streaming prover while holding
// back the result reader, so proofs pile up inside the pipeline, and
// checks the QueueDepth gauge rises above zero and falls back to zero
// once every result is drained.
func TestQueueDepthTracksInFlight(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := bp.Stats().QueueDepth; d != 0 {
		t.Fatalf("fresh prover QueueDepth = %d", d)
	}

	const n = 12
	in := make(chan Job)
	out := bp.Run(in)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
		}
	}()

	// With nobody reading results, the pipeline must back up: poll until
	// the gauge shows at least one proof in flight.
	deadline := time.After(10 * time.Second)
	for bp.Stats().QueueDepth <= 0 {
		select {
		case <-deadline:
			t.Fatal("QueueDepth never rose above zero")
		case <-time.After(time.Millisecond):
		}
	}

	// Drain; once the channel closes every job has been emitted and the
	// gauge must be back at zero.
	got := 0
	for r := range out {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.ID, r.Err)
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d results, want %d", got, n)
	}
	if d := bp.Stats().QueueDepth; d != 0 {
		t.Fatalf("QueueDepth = %d after drain, want 0", d)
	}
}
