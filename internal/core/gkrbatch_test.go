package core

import (
	"testing"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/gkr"
	"batchzk/internal/pcs"
	"batchzk/internal/transcript"
)

func gkrTestSetup(t testing.TB) (*gkr.Circuit, pcs.Params) {
	t.Helper()
	c := &gkr.Circuit{
		InputSize: 16,
		Layers: [][]gkr.Gate{
			{{Op: gkr.Add, In0: 0, In1: 1}, {Op: gkr.Mul, In0: 2, In1: 3}},
			{{Op: gkr.Mul, In0: 0, In1: 8}, {Op: gkr.Add, In0: 1, In1: 9},
				{Op: gkr.Mul, In0: 2, In1: 10}, {Op: gkr.Add, In0: 3, In1: 11}},
		},
	}
	params := pcs.Params{NumRows: 1, NumCols: 16, NumOpenings: 8, Enc: encoder.DefaultParams()}
	return c, params
}

func TestGKRBatchMatchesSequential(t *testing.T) {
	c, params := gkrTestSetup(t)
	bp, err := NewGKRBatchProver(c, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]GKRJob, 6)
	for i := range jobs {
		jobs[i] = GKRJob{ID: i, Input: field.RandVector(16)}
	}
	results := bp.ProveBatch(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.ID != i {
			t.Fatalf("out of order: %d at %d", r.ID, i)
		}
		// Identical to the sequential prover.
		want, err := gkr.ProveCommitted(c, jobs[i].Input, params, transcript.New(gkr.Domain))
		if err != nil {
			t.Fatal(err)
		}
		if r.Proof.Commitment.Root != want.Commitment.Root {
			t.Fatalf("job %d: commitment differs", i)
		}
		if !r.Proof.GKR.Layers[0].VU.Equal(&want.GKR.Layers[0].VU) {
			t.Fatalf("job %d: proof differs from sequential", i)
		}
		// And verifies.
		if _, err := bp.Verify(r.Proof); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

func TestGKRBatchValidation(t *testing.T) {
	c, params := gkrTestSetup(t)
	if _, err := NewGKRBatchProver(nil, params, 2); err == nil {
		t.Fatal("nil circuit accepted")
	}
	if _, err := NewGKRBatchProver(c, params, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
	bad := params
	bad.NumRows = 3
	if _, err := NewGKRBatchProver(c, bad, 2); err == nil {
		t.Fatal("bad params accepted")
	}
	bp, _ := NewGKRBatchProver(c, params, 2)
	results := bp.ProveBatch([]GKRJob{{ID: 0, Input: field.RandVector(99)}})
	if results[0].Err == nil {
		t.Fatal("oversized input accepted")
	}
}
