package core

import (
	"testing"
	"time"

	"batchzk/internal/faults"
	"batchzk/internal/telemetry"
)

// The flight-recorder integration contract: a job keeps exactly one
// coherent timeline across the pipeline, including the hard path —
// retries under fault injection and the dead-letter quarantine.

func TestFlightTimelineCleanRun(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink(0)
	bp.SetTelemetry(sink)

	results := bp.ProveBatch(resilienceJobs(6))
	fr := sink.FlightRecorder()
	tls := fr.Timelines()
	if len(tls) != 6 {
		t.Fatalf("recorded %d timelines for 6 jobs", len(tls))
	}
	seen := map[telemetry.TraceID]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.ID, r.Err)
		}
		if r.Trace == 0 {
			t.Fatalf("job %d result carries no trace id", r.ID)
		}
		if seen[r.Trace] {
			t.Fatalf("trace id %d reused across jobs", r.Trace)
		}
		seen[r.Trace] = true
		tl, ok := fr.Timeline(r.Trace)
		if !ok {
			t.Fatalf("job %d: no timeline for trace %d", r.ID, r.Trace)
		}
		if tl.JobID != r.ID || !tl.Done || tl.Quarantined || tl.Retries != 0 {
			t.Fatalf("job %d timeline: %+v", r.ID, tl)
		}
		if len(tl.Stages) != len(StageNames) {
			t.Fatalf("job %d recorded %d stages, want %d", r.ID, len(tl.Stages), len(StageNames))
		}
		for i, st := range tl.Stages {
			if st.Stage != StageNames[i] || st.Attempts != 1 || st.DurNs <= 0 {
				t.Fatalf("job %d stage %d: %+v", r.ID, i, st)
			}
		}
		if tl.EmitNs < tl.StartNs || tl.StartNs < tl.SubmitNs {
			t.Fatalf("job %d timeline out of order: %+v", r.ID, tl)
		}
	}
	if s := fr.SLO(); s.Jobs != 6 || s.Completed != 6 || s.Retries != 0 {
		t.Fatalf("slo: %+v", s)
	}
}

func TestFlightTimelineSurvivesRetry(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.Force(faults.KernelFault, StageNames[1], 0, 1) // transient: attempt 2 succeeds
	bp, _ := resilientProver(t, inj)
	sink := telemetry.NewSink(0)
	bp.SetTelemetry(sink)

	results := bp.ProveBatch(resilienceJobs(2))
	if results[0].Err != nil {
		t.Fatalf("job 0 failed despite retry: %v", results[0].Err)
	}
	tl, ok := sink.FlightRecorder().Timeline(results[0].Trace)
	if !ok {
		t.Fatal("retried job lost its timeline")
	}
	// The backoff was taken once, so exactly one retry is recorded — not
	// one per observer or one per attempt.
	if tl.Retries != 1 {
		t.Fatalf("retries recorded %d times, want exactly 1", tl.Retries)
	}
	if tl.Quarantined || !tl.Done {
		t.Fatalf("timeline: %+v", tl)
	}
	if len(tl.Stages) != len(StageNames) {
		t.Fatalf("recorded %d stages: %+v", len(tl.Stages), tl.Stages)
	}
	// The faulted stage's record covers both attempts.
	if tl.Stages[1].Attempts != 2 {
		t.Fatalf("faulted stage attempts = %d, want 2", tl.Stages[1].Attempts)
	}
	// The healthy neighbor stayed untouched.
	other, _ := sink.FlightRecorder().Timeline(results[1].Trace)
	if other.Retries != 0 || other.Quarantined {
		t.Fatalf("healthy job timeline: %+v", other)
	}
}

func TestFlightTimelineSurvivesQuarantine(t *testing.T) {
	inj := faults.NewInjector(1)
	bp, res := resilientProver(t, inj)
	for attempt := 1; attempt <= res.Retry.MaxAttempts; attempt++ {
		inj.Force(faults.KernelFault, StageNames[2], 0, attempt)
	}
	sink := telemetry.NewSink(0)
	bp.SetTelemetry(sink)

	results := bp.ProveBatch(resilienceJobs(1))
	if results[0].Err == nil {
		t.Fatal("persistently faulty job succeeded")
	}
	fr := sink.FlightRecorder()
	tls := fr.Timelines()
	if len(tls) != 1 {
		t.Fatalf("one job produced %d timelines", len(tls))
	}
	tl := tls[0]
	if tl.TraceID != results[0].Trace {
		t.Fatalf("result trace %d != timeline trace %d", results[0].Trace, tl.TraceID)
	}
	if !tl.Quarantined || tl.QuarantineStage != StageNames[2] {
		t.Fatalf("quarantine not on the timeline: %+v", tl)
	}
	// Retries recorded exactly once per backoff: MaxAttempts-1 in total.
	if tl.Retries != res.Retry.MaxAttempts-1 {
		t.Fatalf("retries = %d, want %d", tl.Retries, res.Retry.MaxAttempts-1)
	}
	if tl.Error == "" || !tl.Done {
		t.Fatalf("quarantined timeline not closed: %+v", tl)
	}
	// Stages up to and including the failing one are recorded; the
	// stages the job skipped on its way out are not.
	if len(tl.Stages) != 3 {
		t.Fatalf("recorded stages: %+v", tl.Stages)
	}
	if last := tl.Stages[2]; last.Stage != StageNames[2] || last.Attempts != res.Retry.MaxAttempts {
		t.Fatalf("failing stage record: %+v", last)
	}
	if s := fr.SLO(); s.Quarantined != 1 || s.Completed != 0 || s.Retries != res.Retry.MaxAttempts-1 {
		t.Fatalf("slo: %+v", s)
	}
}

func TestFlightTimelineRecordsShard(t *testing.T) {
	c, p := testCircuit(t)
	sp, err := NewShardedProver(c, p, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink(0)
	sp.SetTelemetry(sink)

	results := sp.ProveBatch(resilienceJobs(8))
	fr := sink.FlightRecorder()
	shardsSeen := map[int]int{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.ID, r.Err)
		}
		tl, ok := fr.Timeline(r.Trace)
		if !ok {
			t.Fatalf("job %d: no timeline", r.ID)
		}
		if tl.Shard < 0 || tl.Shard > 1 {
			t.Fatalf("job %d assigned to shard %d", r.ID, tl.Shard)
		}
		shardsSeen[tl.Shard]++
		if !tl.Done || len(tl.Stages) != len(StageNames) {
			t.Fatalf("job %d timeline: %+v", r.ID, tl)
		}
	}
	if len(shardsSeen) != 2 {
		t.Fatalf("8 jobs over 2 shards landed on %v", shardsSeen)
	}
}

// TestFlightTraceIDPropagatesFromCaller: a job tagged by the caller (the
// service layer propagating an external trace id) keeps that id through
// the pipeline instead of being re-minted.
func TestFlightTraceIDPropagatesFromCaller(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink(0)
	bp.SetTelemetry(sink)

	jobs := resilienceJobs(1)
	jobs[0].Trace = 12345
	results := bp.ProveBatch(jobs)
	if results[0].Trace != 12345 {
		t.Fatalf("caller's trace id replaced: %d", results[0].Trace)
	}
	tl, ok := sink.FlightRecorder().Timeline(12345)
	if !ok || !tl.Done {
		t.Fatalf("caller-tagged timeline missing: %+v", tl)
	}
}

// TestFlightDisabledZeroOverheadPath: with no sink, jobs still prove and
// results carry no trace ids — the recording path is fully nil-safe.
func TestFlightDisabledZeroOverheadPath(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := bp.ProveBatch(resilienceJobs(2))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.ID, r.Err)
		}
		if r.Trace != 0 {
			t.Fatalf("telemetry disabled but job %d carries trace %d", r.ID, r.Trace)
		}
	}
}

// Guard against the sampler interacting with the prover's hot path: a
// soak-style run under an aggressive sampler must not deadlock or slow
// to a crawl.
func TestMemSamplerUnderProverLoad(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink(0)
	bp.SetTelemetry(sink)
	ms := telemetry.StartMemSampler(sink, 100*time.Microsecond)
	defer ms.Stop()
	for _, r := range bp.ProveBatch(resilienceJobs(4)) {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.ID, r.Err)
		}
	}
	if ms.PeakHeapAllocBytes() == 0 {
		t.Fatal("sampler recorded nothing under load")
	}
}
