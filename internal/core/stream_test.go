package core

import (
	"sync/atomic"
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/protocol"
)

// TestProveStreamBitIdentical: pulling jobs lazily through ProveStream
// under the out-of-core commit path must emit the same proofs, in the
// same order, as the sequential reference prover.
func TestProveStreamBitIdentical(t *testing.T) {
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	bp.SetStreamingCommit(true)

	const n = 6
	var jobs []Job
	for i := 0; i < n; i++ {
		jobs = append(jobs, Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)})
	}
	k := 0
	next := func() (Job, bool) {
		if k == len(jobs) {
			return Job{}, false
		}
		j := jobs[k]
		k++
		return j, true
	}
	var results []Result
	bp.ProveStream(next, func(r Result) { results = append(results, r) })

	if len(results) != n {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.ID != i {
			t.Fatalf("out of order: ID %d at %d", r.ID, i)
		}
		want, err := protocol.Prove(c, p, jobs[i].Public, jobs[i].Secret)
		if err != nil {
			t.Fatal(err)
		}
		if r.Proof.Commitment.Root != want.Commitment.Root {
			t.Fatalf("job %d: streamed commitment differs from sequential prover", i)
		}
		if !r.Proof.WSigma.Equal(&want.WSigma) {
			t.Fatalf("job %d: streamed proof scalars differ", i)
		}
		if err := bp.Verify(jobs[i].Public, r.Proof); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

// TestProveStreamBoundsPulls: the iterator is consulted only as the
// pipeline frees slots. Every spot a job can occupy between the
// iterator and the emitter is depth-sized or a single goroutine hand:
// producer hand (1) + forwarder hand (1) + submission buffer (depth) +
// scheduler in-flight window (depth) + result buffer (depth) + result
// hand (1) — so at most 3·depth+3 jobs exist before the first emission,
// independent of batch size.
func TestProveStreamBoundsPulls(t *testing.T) {
	c, p := testCircuit(t)
	const depth = 2
	bp, _ := NewBatchProver(c, p, depth)
	bp.SetStreamingCommit(true)

	const n = 16
	var pulled atomic.Int64
	next := func() (Job, bool) {
		i := int(pulled.Add(1)) - 1
		if i == n {
			return Job{}, false
		}
		return Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}, true
	}
	var pulledAtFirst int64
	emitted := 0
	bp.ProveStream(next, func(r Result) {
		if emitted == 0 {
			pulledAtFirst = pulled.Load()
		}
		if r.Err != nil {
			t.Errorf("job %d: %v", r.ID, r.Err)
		}
		emitted++
	})
	if emitted != n {
		t.Fatalf("emitted %d of %d", emitted, n)
	}
	if pulledAtFirst > 3*depth+3 {
		t.Fatalf("%d jobs pulled before first emission; ingestion is not bounded", pulledAtFirst)
	}
}

// TestShardedProveStream: the sharded form keeps global submission order
// and verifiable proofs under the streaming commit path.
func TestShardedProveStream(t *testing.T) {
	c, p := testCircuit(t)
	sp, err := NewShardedProver(c, p, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetStreamingCommit(true)
	const n = 7
	pubs := make([][]field.Element, n)
	k := 0
	next := func() (Job, bool) {
		if k == n {
			return Job{}, false
		}
		pubs[k] = field.RandVector(2)
		j := Job{ID: k, Public: pubs[k], Secret: field.RandVector(2)}
		k++
		return j, true
	}
	i := 0
	sp.ProveStream(next, func(r Result) {
		if r.Err != nil {
			t.Errorf("job %d: %v", r.ID, r.Err)
			i++
			return
		}
		if r.ID != i {
			t.Errorf("out of order: ID %d at %d", r.ID, i)
		}
		if err := sp.Verify(pubs[r.ID], r.Proof); err != nil {
			t.Errorf("job %d: %v", r.ID, err)
		}
		i++
	})
	if i != n {
		t.Fatalf("emitted %d of %d", i, n)
	}
}

// TestStreamingCommitMatchesBuffered: flipping SetStreamingCommit must
// not change a single proof byte relative to the default path.
func TestStreamingCommitMatchesBuffered(t *testing.T) {
	c, p := testCircuit(t)
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)})
	}
	buffered, _ := NewBatchProver(c, p, 2)
	streamed, _ := NewBatchProver(c, p, 2)
	streamed.SetStreamingCommit(true)
	rb := buffered.ProveBatch(jobs)
	rs := streamed.ProveBatch(jobs)
	for i := range jobs {
		if rb[i].Err != nil || rs[i].Err != nil {
			t.Fatalf("job %d: %v / %v", i, rb[i].Err, rs[i].Err)
		}
		if rb[i].Proof.Commitment.Root != rs[i].Proof.Commitment.Root {
			t.Fatalf("job %d: commitment differs across commit modes", i)
		}
		if !rb[i].Proof.WSigma.Equal(&rs[i].Proof.WSigma) {
			t.Fatalf("job %d: proof differs across commit modes", i)
		}
	}
}
