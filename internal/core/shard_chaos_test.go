package core

import (
	"errors"
	"testing"
	"time"

	"batchzk/internal/faults"
	"batchzk/internal/field"
)

// Sharded chaos: injected shard faults (all six classes, slow shards
// included) must not disturb the two contracts the service gateway
// builds on — the round-robin merge still emits results in global
// submission order, and the injector's ledger plus the shards'
// dead-letter lists stay exactly-once.

func shardedChaosRun(t *testing.T, shards, njobs int, rate float64) (*ShardedProver, *faults.Injector, []Job, []Result) {
	t.Helper()
	c, p := testCircuit(t)
	sp, err := NewShardedProver(c, p, shards, 4)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(chaosSeed)
	inj.EnableAll(rate)
	inj.SetStragglerDelay(200*time.Microsecond, time.Millisecond)
	// Keep slow-shard episodes short: this test wants their scheduling
	// disturbance, not their wall-clock.
	inj.SetSlowShardDelay(time.Millisecond, 3*time.Millisecond)
	res := DefaultResilience()
	res.Injector = inj
	res.JobDeadline = 30 * time.Second
	sp.SetResilience(res)

	jobs := make([]Job, njobs)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	return sp, inj, jobs, sp.ProveBatch(jobs)
}

// TestShardedChaosSubmissionOrder: with faults hammering every shard,
// the merged result stream is still exactly the submission order.
func TestShardedChaosSubmissionOrder(t *testing.T) {
	for _, shards := range []int{2, 3} {
		sp, inj, jobs, results := shardedChaosRun(t, shards, 36, 0.08)
		if totalInjected(inj.Stats()) == 0 {
			t.Fatal("chaos run injected nothing — seed no longer exercises the fault paths")
		}
		if len(results) != 36 {
			t.Fatalf("shards=%d: %d results for 36 jobs", shards, len(results))
		}
		for i, r := range results {
			if r.ID != i {
				t.Fatalf("shards=%d: result %d carries job %d — merge broke submission order", shards, i, r.ID)
			}
		}
		// Every non-quarantined proof verifies; every failure really is
		// in a shard's dead-letter list.
		quarantined := make(map[int]bool)
		for _, q := range sp.Quarantined() {
			if quarantined[q.ID] {
				t.Errorf("shards=%d: job %d dead-lettered twice", shards, q.ID)
			}
			quarantined[q.ID] = true
		}
		for _, r := range results {
			if r.Err != nil {
				if !quarantined[r.ID] {
					t.Errorf("shards=%d: job %d failed without a quarantine record", shards, r.ID)
				}
				continue
			}
			if err := sp.Verify(jobs[r.ID].Public, r.Proof); err != nil {
				t.Errorf("shards=%d: surviving proof %d: %v", shards, r.ID, err)
			}
		}
	}
}

// TestShardedChaosLedgerExactlyOnce: after a sharded chaos run every
// drawn fault is resolved exactly once (no Pending, no conflicting
// double resolution), and the shard counters reconcile with both the
// ledger and the result stream.
func TestShardedChaosLedgerExactlyOnce(t *testing.T) {
	sp, inj, _, results := shardedChaosRun(t, 3, 48, 0.08)

	ls := inj.Stats()
	if ls.Pending != 0 {
		t.Errorf("%d faults left pending after the run", ls.Pending)
	}
	for _, rec := range inj.Ledger() {
		if rec.Outcome != faults.Recovered && rec.Outcome != faults.Quarantined {
			t.Errorf("fault %+v resolved as %v", rec.Fault, rec.Outcome)
		}
	}

	failed := 0
	seen := make(map[int]int)
	for _, r := range results {
		seen[r.ID]++
		if r.Err != nil {
			failed++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %d appeared %d times in the merged stream", id, n)
		}
	}
	st := sp.Stats()
	if int(st.Failed) != failed {
		t.Errorf("aggregated Failed=%d, result stream saw %d", st.Failed, failed)
	}
	if int(st.Quarantined) != failed {
		t.Errorf("aggregated Quarantined=%d, want %d (every failure dead-letters exactly once)", st.Quarantined, failed)
	}
	if got := len(sp.Quarantined()); got != failed {
		t.Errorf("dead-letter list has %d entries, want %d", got, failed)
	}
	if int(st.Completed) != len(results)-failed {
		t.Errorf("aggregated Completed=%d, want %d", st.Completed, len(results)-failed)
	}
}

// TestSlowShardBlowsDeadline: the new SlowShard class models a
// sustained device-wide slowdown; when its delay exceeds the job
// deadline, the job must be cut off with ErrJobDeadline (the signal the
// gateway surfaces as StatusTimeout) rather than succeed late.
func TestSlowShardBlowsDeadline(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.SetSlowShardDelay(150*time.Millisecond, 150*time.Millisecond)
	inj.Force(faults.SlowShard, StageNames[1], 0, 1)
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResilience()
	res.Injector = inj
	res.JobDeadline = 30 * time.Millisecond
	bp.SetResilience(res)

	results := bp.ProveBatch([]Job{{ID: 0, Public: field.RandVector(2), Secret: field.RandVector(2)}})
	if results[0].Err == nil {
		t.Fatal("slow shard past the deadline still produced a proof")
	}
	if !errors.Is(results[0].Err, ErrJobDeadline) {
		t.Fatalf("error %v, want ErrJobDeadline in the chain", results[0].Err)
	}
	st := bp.Stats()
	if st.Timeouts != 1 || st.Quarantined != 1 {
		t.Errorf("timeouts=%d quarantined=%d, want 1/1", st.Timeouts, st.Quarantined)
	}
	// The fault resolved exactly once, as quarantined.
	ls := inj.Stats()
	if ls.Pending != 0 || ls.Quarantined != 1 {
		t.Errorf("ledger recovered=%d quarantined=%d pending=%d, want 0/1/0", ls.Recovered, ls.Quarantined, ls.Pending)
	}
}

// TestSlowShardRecoversUnderDeadline: a slow shard whose delay fits
// inside the deadline just makes the job late, not dead.
func TestSlowShardRecoversUnderDeadline(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.SetSlowShardDelay(2*time.Millisecond, 2*time.Millisecond)
	inj.Force(faults.SlowShard, StageNames[1], 0, 1)
	c, p := testCircuit(t)
	bp, err := NewBatchProver(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResilience()
	res.Injector = inj
	res.JobDeadline = 30 * time.Second
	bp.SetResilience(res)

	results := bp.ProveBatch([]Job{{ID: 0, Public: field.RandVector(2), Secret: field.RandVector(2)}})
	if results[0].Err != nil {
		t.Fatalf("slow shard under the deadline killed the job: %v", results[0].Err)
	}
	if ls := inj.Stats(); ls.Recovered != 1 || ls.Pending != 0 {
		t.Errorf("ledger recovered=%d pending=%d, want 1/0", ls.Recovered, ls.Pending)
	}
}
