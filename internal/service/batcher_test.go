package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// drainCollect consumes every batch from b until Drain closes the
// stream, returning all items in emission order.
func drainCollect[T any](t *testing.T, b *Batcher[T], done <-chan struct{}) []T {
	t.Helper()
	var items []T
	for batch := range b.Out() {
		if len(batch.Items) == 0 {
			t.Error("empty batch emitted")
		}
		if len(batch.Items) > b.Config().MaxBatch {
			t.Errorf("batch of %d items exceeds cap %d", len(batch.Items), b.Config().MaxBatch)
		}
		items = append(items, batch.Items...)
	}
	if done != nil {
		<-done
	}
	return items
}

// Invariant: batches never exceed the size cap, and a full queue
// flushes immediately in cap-sized batches.
func TestBatcherSizeCap(t *testing.T) {
	b := NewBatcher[int](BatcherConfig{MaxBatch: 4, MaxWait: time.Hour, QueueCap: 128})
	for i := 0; i < 10; i++ {
		if err := b.Submit("a", 0, i); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	go b.Drain()
	items := drainCollect(t, b, nil)
	if len(items) != 10 {
		t.Fatalf("flushed %d items, want 10", len(items))
	}
	for i, v := range items {
		if v != i {
			t.Fatalf("item %d = %d, want FIFO order", i, v)
		}
	}
}

// Invariant: no job waits (much) past the latency window — an
// under-full batch still flushes once its oldest member ages out. The
// assertion uses generous slack (scheduling noise under -race) but
// still catches both failure modes that matter: waiting forever, and
// waiting a multiple of the window.
func TestBatcherLatencyWindow(t *testing.T) {
	const window = 20 * time.Millisecond
	b := NewBatcher[int](BatcherConfig{MaxBatch: 1000, MaxWait: window, QueueCap: 1000})
	start := time.Now()
	if err := b.Submit("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-b.Out():
		waited := time.Since(start)
		if len(batch.Items) != 1 {
			t.Fatalf("batch size %d, want 1", len(batch.Items))
		}
		if waited < window {
			t.Errorf("flushed after %v, before the %v window", waited, window)
		}
		if waited > 10*window {
			t.Errorf("flushed after %v, far past the %v window", waited, window)
		}
	case <-time.After(10 * window):
		t.Fatal("under-full batch never flushed")
	}
	b.Drain()
}

// Invariant: batches fill highest-priority-first, FIFO within a class.
func TestBatcherPriorityOrder(t *testing.T) {
	b := NewBatcher[string](BatcherConfig{MaxBatch: 16, MaxWait: time.Hour, QueueCap: 64, Priorities: 3})
	// Interleave submissions across classes; the flush must re-sort.
	b.Submit("a", 2, "low-0")
	b.Submit("a", 0, "high-0")
	b.Submit("a", 1, "mid-0")
	b.Submit("a", 2, "low-1")
	b.Submit("a", 0, "high-1")
	go b.Drain()
	items := drainCollect(t, b, nil)
	want := []string{"high-0", "high-1", "mid-0", "low-0", "low-1"}
	if len(items) != len(want) {
		t.Fatalf("flushed %d items, want %d", len(items), len(want))
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("order %v, want %v", items, want)
		}
	}
}

// Out-of-range priorities clamp instead of panicking or dropping.
func TestBatcherPriorityClamp(t *testing.T) {
	b := NewBatcher[int](BatcherConfig{MaxBatch: 8, MaxWait: time.Hour, Priorities: 2})
	if err := b.Submit("a", -5, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Submit("a", 99, 2); err != nil {
		t.Fatal(err)
	}
	go b.Drain()
	if items := drainCollect(t, b, nil); len(items) != 2 {
		t.Fatalf("flushed %d items, want 2", len(items))
	}
}

// Invariant: queue depth is bounded; submissions above the cap get
// ErrQueueFull and are NOT admitted (no token spent, no item queued).
func TestBatcherQueueCapBackpressure(t *testing.T) {
	b := NewBatcher[int](BatcherConfig{MaxBatch: 1000, MaxWait: time.Hour, QueueCap: 8})
	var full int
	for i := 0; i < 20; i++ {
		err := b.Submit("a", 0, i)
		if errors.Is(err, ErrQueueFull) {
			full++
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if full != 12 {
		t.Fatalf("%d rejections, want 12 (cap 8 of 20)", full)
	}
	s := b.Stats()
	if s.Accepted != 8 || s.RejectedQueue != 12 {
		t.Fatalf("stats accepted=%d rejectedQueue=%d, want 8/12", s.Accepted, s.RejectedQueue)
	}
	go b.Drain()
	if items := drainCollect(t, b, nil); len(items) != 8 {
		t.Fatalf("flushed %d items, want 8", len(items))
	}
}

// Invariant: per-tenant quota accounting is exact under concurrent
// submission — with a hard allowance of K tokens and many goroutines
// racing, exactly K submissions are admitted, and every rejection is a
// QuotaError carrying a Retry-After hint.
func TestBatcherQuotaExactUnderConcurrency(t *testing.T) {
	const allowance = 25
	const submitters = 8
	const perSubmitter = 20 // 160 offered total
	b := NewBatcher[int](BatcherConfig{
		MaxBatch: 32, MaxWait: time.Millisecond, QueueCap: 1000,
		DefaultQuota: QuotaSpec{Burst: allowance}, // Rate 0: hard allowance
	})
	collected := make(chan []int, 1)
	go func() { // consume concurrently so flushing never stalls admission
		var items []int
		for batch := range b.Out() {
			items = append(items, batch.Items...)
		}
		collected <- items
	}()

	var accepted, quotaRejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				err := b.Submit("tenant", 0, g*perSubmitter+i)
				mu.Lock()
				switch {
				case err == nil:
					accepted++
				default:
					var qe *QuotaError
					if !errors.As(err, &qe) {
						t.Errorf("unexpected error: %v", err)
					} else if qe.RetryAfter <= 0 {
						t.Errorf("quota rejection without Retry-After hint")
					}
					quotaRejected++
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	b.Drain()
	items := <-collected

	if accepted != allowance {
		t.Errorf("accepted %d, want exactly %d", accepted, allowance)
	}
	if quotaRejected != submitters*perSubmitter-allowance {
		t.Errorf("quota-rejected %d, want %d", quotaRejected, submitters*perSubmitter-allowance)
	}
	if int64(len(items)) != accepted {
		t.Errorf("flushed %d items, want the %d accepted", len(items), accepted)
	}
	s := b.Stats()
	if s.Accepted != accepted || s.RejectedQuota != quotaRejected || s.Flushed != accepted {
		t.Errorf("stats %+v disagree with observed accepted=%d rejected=%d", s, accepted, quotaRejected)
	}
}

// A refilling bucket admits again after the refill interval.
func TestBatcherQuotaRefill(t *testing.T) {
	b := NewBatcher[int](BatcherConfig{
		MaxBatch: 8, MaxWait: time.Millisecond, QueueCap: 64,
		Quotas: map[string]QuotaSpec{"slow": {Rate: 100, Burst: 1}},
	})
	go func() {
		for range b.Out() {
		}
	}()
	if err := b.Submit("slow", 0, 1); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	err := b.Submit("slow", 0, 2)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("second immediate submit: got %v, want QuotaError", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := b.Submit("slow", 0, 3); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled at 100 tokens/s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Drain()
}

// Invariant: drain flushes every accepted job exactly once, even with
// submissions racing the drain; post-drain submissions get ErrDraining.
func TestBatcherDrainFlushesExactlyOnce(t *testing.T) {
	b := NewBatcher[int](BatcherConfig{MaxBatch: 4, MaxWait: time.Hour, QueueCap: 10000})
	var accepted sync.Map
	var acceptedN int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := g*1000 + i
				if err := b.Submit("t", g%2, id); err == nil {
					accepted.Store(id, true)
					mu.Lock()
					acceptedN++
					mu.Unlock()
				} else if !errors.Is(err, ErrDraining) {
					t.Errorf("submit: %v", err)
				}
			}
		}(g)
	}
	collected := make(chan map[int]int, 1)
	go func() {
		seen := make(map[int]int)
		for batch := range b.Out() {
			for _, id := range batch.Items {
				seen[id]++
			}
		}
		collected <- seen
	}()
	// Let some submissions land, then drain mid-stream.
	time.Sleep(2 * time.Millisecond)
	b.Drain()
	wg.Wait()
	seen := <-collected

	mu.Lock()
	wantN := acceptedN
	mu.Unlock()
	if int64(len(seen)) != wantN {
		t.Fatalf("flushed %d distinct jobs, want %d accepted", len(seen), wantN)
	}
	accepted.Range(func(k, _ any) bool {
		if seen[k.(int)] != 1 {
			t.Errorf("job %v flushed %d times, want exactly once", k, seen[k.(int)])
		}
		return true
	})
	if err := b.Submit("t", 0, -1); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
}

// Property test: random config + random concurrent traffic, then
// drain; conservation (accepted == flushed, no duplicates, caps held)
// must survive any seed.
func TestBatcherPropertyConservation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := BatcherConfig{
				MaxBatch:   1 + rng.Intn(16),
				MaxWait:    time.Duration(1+rng.Intn(5)) * time.Millisecond,
				QueueCap:   32 + rng.Intn(256),
				Priorities: 1 + rng.Intn(4),
			}
			b := NewBatcher[int](cfg)
			var flushedMu sync.Mutex
			flushed := make(map[int]int)
			consumerDone := make(chan struct{})
			go func() {
				defer close(consumerDone)
				for batch := range b.Out() {
					if len(batch.Items) > cfg.MaxBatch {
						t.Errorf("batch %d > cap %d", len(batch.Items), cfg.MaxBatch)
					}
					flushedMu.Lock()
					for _, id := range batch.Items {
						flushed[id]++
					}
					flushedMu.Unlock()
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
					}
				}
			}()
			var acceptedMu sync.Mutex
			acceptedIDs := make(map[int]bool)
			var wg sync.WaitGroup
			workers := 2 + rng.Intn(4)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed*100 + int64(g)))
					for i := 0; i < 150; i++ {
						id := g*10000 + i
						err := b.Submit(fmt.Sprintf("t%d", r.Intn(3)), r.Intn(cfg.Priorities+1)-1, id)
						if err == nil {
							acceptedMu.Lock()
							acceptedIDs[id] = true
							acceptedMu.Unlock()
						}
						if r.Intn(8) == 0 {
							time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond)
						}
					}
				}(g)
			}
			wg.Wait()
			b.Drain()
			<-consumerDone

			flushedMu.Lock()
			defer flushedMu.Unlock()
			acceptedMu.Lock()
			defer acceptedMu.Unlock()
			if len(flushed) != len(acceptedIDs) {
				t.Fatalf("flushed %d distinct, accepted %d", len(flushed), len(acceptedIDs))
			}
			for id, n := range flushed {
				if n != 1 {
					t.Errorf("job %d flushed %d times", id, n)
				}
				if !acceptedIDs[id] {
					t.Errorf("job %d flushed but never accepted", id)
				}
			}
		})
	}
}
