package service

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"batchzk/internal/core"
	"batchzk/internal/faults"
	"batchzk/internal/protocol"
)

// TestStreamIncrementalDelivery: under the streaming prover, /v1/stream
// is per-job — the first NDJSON event arrives while later jobs are
// still proving, not after the batch drains. The last job is pinned in
// a long injected commit-stage slowdown, so observing any event before
// it turns terminal is deterministic, not a scheduling accident.
func TestStreamIncrementalDelivery(t *testing.T) {
	const n = 4
	sp, _ := newTestProver(t, 1)
	inj := faults.NewInjector(11)
	inj.SetSlowShardDelay(500*time.Millisecond, 600*time.Millisecond)
	inj.Force(faults.SlowShard, "commit", n, 1) // internal seq of the last job
	res := core.DefaultResilience()
	res.Injector = inj
	gw, err := NewGateway(sp, Config{
		MaxBatch: 2, MaxWait: time.Millisecond,
		StreamingCommit: true, Resilience: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	defer func() {
		srv.Close()
		gw.Drain()
	}()

	streamResp, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()

	ids := submitN(t, gw, "acme", n)

	sc := bufio.NewScanner(streamResp.Body)
	deadline := time.AfterFunc(20*time.Second, func() { streamResp.Body.Close() })
	defer deadline.Stop()
	if !sc.Scan() {
		t.Fatalf("stream closed before first event: %v", sc.Err())
	}
	var first Event
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
	}
	if !first.Status.Terminal() {
		t.Fatalf("streamed a non-terminal event: %+v", first)
	}
	last, ok := gw.Job(ids[n-1])
	if !ok {
		t.Fatalf("last job %s vanished", ids[n-1])
	}
	if last.Status.Terminal() {
		t.Fatal("first stream event arrived only after the last job completed; emission is not incremental")
	}

	// The remaining events still arrive, exactly one per job.
	seen := map[string]int{first.JobID: 1}
	for len(seen) < n && sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		seen[ev.JobID]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("job %s: %d stream events, want 1", id, seen[id])
		}
	}
}

// TestHTTPBinaryProof: the raw proof endpoint serves the exact wire
// encoding with an exact Content-Length, and agrees byte for byte with
// the poll endpoint's base64 detour.
func TestHTTPBinaryProof(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		MaxBatch: 2, MaxWait: time.Millisecond, StreamingCommit: true,
	})
	resp := postJob(t, srv.URL, "acme", submitBody(2), nil)
	var ack SubmitResponse
	json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()

	poll, err := http.Get(srv.URL + "/v1/jobs/" + ack.JobID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	json.NewDecoder(poll.Body).Decode(&jr)
	poll.Body.Close()
	if jr.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", jr.Status, jr.Err)
	}
	viaBase64, err := base64.StdEncoding.DecodeString(jr.Proof)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := http.Get(srv.URL + "/v1/jobs/" + ack.JobID + "/proof")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.StatusCode != http.StatusOK {
		t.Fatalf("proof endpoint: %s", raw.Status)
	}
	if ct := raw.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	blob, err := io.ReadAll(raw.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cl := raw.ContentLength; cl != int64(len(blob)) {
		t.Errorf("Content-Length %d, body %d bytes", cl, len(blob))
	}
	if !bytes.Equal(blob, viaBase64) {
		t.Fatal("binary endpoint and base64 poll serve different proof bytes")
	}
	var proof protocol.Proof
	if _, err := proof.ReadFrom(bytes.NewReader(blob)); err != nil {
		t.Fatalf("served proof does not deserialize: %v", err)
	}

	if resp, _ := http.Get(srv.URL + "/v1/jobs/nope/proof"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s", resp.Status)
	}
}

// TestHTTPBinaryProofNotDone: a job that is not done yet answers 409,
// not an empty body.
func TestHTTPBinaryProofNotDone(t *testing.T) {
	// A wide batch window keeps the job queued long enough to probe it.
	srv, gw := newTestServer(t, Config{MaxBatch: 64, MaxWait: time.Minute})
	info, err := gw.Submit("acme", 0, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + info.ID + "/proof")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued job proof: %s, want 409", resp.Status)
	}
}
