package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/faults"
	"batchzk/internal/field"
	"batchzk/internal/protocol"
	"batchzk/internal/telemetry"
)

// newTestProver builds a small sharded prover for gateway tests.
func newTestProver(t *testing.T, shards int) (*core.ShardedProver, *circuit.Circuit) {
	t.Helper()
	c, err := circuit.RandomCircuit(32, 2, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := protocol.Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.NewShardedProver(c, p, shards, 4)
	if err != nil {
		t.Fatal(err)
	}
	return sp, c
}

func submitN(t *testing.T, gw *Gateway, tenant string, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		info, err := gw.Submit(tenant, 0, field.RandVector(2), field.RandVector(2), 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, info.ID)
	}
	return ids
}

func waitAll(t *testing.T, gw *Gateway, ids []string) []JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	infos := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		info, ok := gw.WaitJob(ctx, id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if !info.Status.Terminal() {
			t.Fatalf("job %s still %s after wait", id, info.Status)
		}
		infos = append(infos, info)
	}
	return infos
}

// End-to-end: multi-tenant traffic through a sharded prover; every job
// completes, every proof verifies, batching and trace ids are live.
func TestGatewayEndToEnd(t *testing.T) {
	sp, _ := newTestProver(t, 2)
	sink := telemetry.NewSink(0)
	sp.SetTelemetry(sink)
	gw, err := NewGateway(sp, Config{MaxBatch: 4, MaxWait: time.Millisecond, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Drain()

	var ids []string
	for tenant := 0; tenant < 3; tenant++ {
		ids = append(ids, submitN(t, gw, fmt.Sprintf("t%d", tenant), 6)...)
	}
	for _, info := range waitAll(t, gw, ids) {
		if info.Status != StatusDone {
			t.Errorf("job %s: %s (%s)", info.ID, info.Status, info.Err)
		}
		if info.TraceID == 0 {
			t.Errorf("job %s has no trace id despite live telemetry", info.ID)
		}
		if info.LatencyNs <= 0 {
			t.Errorf("job %s reported non-positive latency", info.ID)
		}
	}
	for _, id := range ids {
		if err := gw.VerifyJob(id); err != nil {
			t.Errorf("verify %s: %v", id, err)
		}
	}
	gs := gw.Stats()
	if gs.Completed != int64(len(ids)) || gs.Accepted != int64(len(ids)) {
		t.Errorf("stats completed=%d accepted=%d, want %d", gs.Completed, gs.Accepted, len(ids))
	}
	if gs.Batches == 0 || gs.BatchOccupancy <= 0 || gs.BatchOccupancy > 1 {
		t.Errorf("implausible batching stats: %+v", gs)
	}
	// Flight recorder saw every job: admission minted the trace.
	if got := len(sink.FlightRecorder().Timelines()); got < len(ids) {
		t.Errorf("flight recorder has %d timelines, want ≥ %d", got, len(ids))
	}
}

// Quarantine-aware retry: a job whose every prover-level attempt is
// killed by a transient injected fault gets re-submitted by the gateway
// under a fresh internal id and succeeds, keeping one trace id.
func TestGatewayQuarantineRetry(t *testing.T) {
	sp, _ := newTestProver(t, 1)
	inj := faults.NewInjector(7)
	// Exhaust the prover's whole per-stage retry budget for job 1 only;
	// the gateway's re-submission (internal id 2) runs clean.
	for attempt := 1; attempt <= 4; attempt++ {
		inj.Force(faults.KernelFault, "commit", 1, attempt)
	}
	res := core.DefaultResilience()
	res.Injector = inj
	gw, err := NewGateway(sp, Config{MaxBatch: 2, MaxWait: time.Millisecond, Resilience: res, RetryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Drain()

	info, err := gw.Submit("t0", 0, field.RandVector(2), field.RandVector(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitAll(t, gw, []string{info.ID})[0]
	if final.Status != StatusDone {
		t.Fatalf("job ended %s (%s), want done after gateway retry", final.Status, final.Err)
	}
	if final.Retries != 1 {
		t.Errorf("job recorded %d gateway retries, want 1", final.Retries)
	}
	if gw.Stats().Retries != 1 {
		t.Errorf("gateway counted %d retries, want 1", gw.Stats().Retries)
	}
	if len(gw.Quarantined()) != 1 {
		t.Errorf("prover quarantine ledger has %d entries, want 1 (the first attempt)", len(gw.Quarantined()))
	}
	if err := gw.VerifyJob(info.ID); err != nil {
		t.Errorf("retried job's proof fails verification: %v", err)
	}
}

// A job that keeps quarantining beyond the retry budget ends failed,
// not lost.
func TestGatewayRetryBudgetExhausted(t *testing.T) {
	sp, _ := newTestProver(t, 1)
	inj := faults.NewInjector(7)
	for job := 1; job <= 2; job++ { // internal ids: original + one retry
		for attempt := 1; attempt <= 4; attempt++ {
			inj.Force(faults.KernelFault, "commit", job, attempt)
		}
	}
	res := core.DefaultResilience()
	res.Injector = inj
	gw, err := NewGateway(sp, Config{MaxBatch: 2, MaxWait: time.Millisecond, Resilience: res, RetryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Drain()

	info, err := gw.Submit("t0", 0, field.RandVector(2), field.RandVector(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitAll(t, gw, []string{info.ID})[0]
	if final.Status != StatusFailed {
		t.Fatalf("job ended %s, want failed after budget exhaustion", final.Status)
	}
	if final.Err == "" {
		t.Error("terminal error message lost")
	}
	if final.Retries != 1 {
		t.Errorf("recorded %d retries, want exactly the budget (1)", final.Retries)
	}
}

// A permanent fault (memory corruption) is never retried by the
// gateway: the first quarantine is terminal.
func TestGatewayPermanentFaultNoRetry(t *testing.T) {
	sp, _ := newTestProver(t, 1)
	inj := faults.NewInjector(7)
	inj.Force(faults.MemCorruption, "commit", 1, 1)
	res := core.DefaultResilience()
	res.Injector = inj
	gw, err := NewGateway(sp, Config{MaxBatch: 2, MaxWait: time.Millisecond, Resilience: res, RetryBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Drain()

	info, err := gw.Submit("t0", 0, field.RandVector(2), field.RandVector(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitAll(t, gw, []string{info.ID})[0]
	if final.Status != StatusFailed || final.Retries != 0 {
		t.Fatalf("permanent fault: status=%s retries=%d, want failed/0", final.Status, final.Retries)
	}
}

// The deadline path: a SlowShard fault whose sustained delay exceeds
// the gateway's JobDeadline must surface as StatusTimeout — and must
// NOT be retried (the shard is still slow; the client needs the
// verdict, not another lap).
func TestGatewaySlowShardDeadline(t *testing.T) {
	sp, _ := newTestProver(t, 1)
	inj := faults.NewInjector(7)
	inj.SetSlowShardDelay(60*time.Millisecond, 80*time.Millisecond)
	inj.Force(faults.SlowShard, "commit", 1, 1)
	res := core.DefaultResilience()
	res.Injector = inj
	gw, err := NewGateway(sp, Config{
		MaxBatch: 2, MaxWait: time.Millisecond,
		JobDeadline: 20 * time.Millisecond, Resilience: res, RetryBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Drain()

	info, err := gw.Submit("t0", 0, field.RandVector(2), field.RandVector(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitAll(t, gw, []string{info.ID})[0]
	if final.Status != StatusTimeout {
		t.Fatalf("slow shard past deadline: status=%s (%s), want timeout", final.Status, final.Err)
	}
	if final.Retries != 0 {
		t.Errorf("deadline kill was retried %d times; deadlines are terminal", final.Retries)
	}
	if gw.ProverStats().Timeouts != 1 {
		t.Errorf("prover counted %d timeouts, want 1", gw.ProverStats().Timeouts)
	}
	// A healthy job behind the slow one still completes: the slowdown
	// is contained to the deadline, not the gateway.
	info2, err := gw.Submit("t0", 0, field.RandVector(2), field.RandVector(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitAll(t, gw, []string{info2.ID})[0]; got.Status != StatusDone {
		t.Errorf("follow-up job: %s (%s), want done", got.Status, got.Err)
	}
}

// Drain resolves every in-flight job, rejects new work, and Resume
// restores service; nothing is lost across the cycle.
func TestGatewayDrainResume(t *testing.T) {
	sp, _ := newTestProver(t, 2)
	gw, err := NewGateway(sp, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, gw, "t0", 8)
	gw.Drain()

	// Every accepted job reached a terminal state during the drain.
	for _, id := range ids {
		info, ok := gw.Job(id)
		if !ok || !info.Status.Terminal() {
			t.Fatalf("job %s not terminal after drain", id)
		}
		if info.Status != StatusDone {
			t.Errorf("job %s: %s (%s)", id, info.Status, info.Err)
		}
	}
	if _, err := gw.Submit("t0", 0, field.RandVector(2), field.RandVector(2), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while drained: %v, want ErrDraining", err)
	}
	if ready, reason := gw.Ready(); ready || reason != "draining" {
		t.Fatalf("drained gateway reports ready=%v (%s)", ready, reason)
	}

	gw.Resume()
	defer gw.Drain()
	ids2 := submitN(t, gw, "t0", 4)
	for _, info := range waitAll(t, gw, ids2) {
		if info.Status != StatusDone {
			t.Errorf("post-resume job %s: %s (%s)", info.ID, info.Status, info.Err)
		}
	}
	// History from before the drain is still queryable.
	if _, ok := gw.Job(ids[0]); !ok {
		t.Error("pre-drain job history lost across resume")
	}
}

// The event stream delivers exactly one terminal event per job.
func TestGatewayStreamExactlyOnce(t *testing.T) {
	sp, _ := newTestProver(t, 1)
	gw, err := NewGateway(sp, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := gw.Subscribe()
	defer cancel()
	ids := submitN(t, gw, "t0", 6)
	waitAll(t, gw, ids)
	gw.Drain()

	counts := make(map[string]int)
	timeout := time.After(5 * time.Second)
	for n := 0; n < len(ids); {
		select {
		case ev := <-events:
			counts[ev.JobID]++
			n++
		case <-timeout:
			t.Fatalf("stream delivered %d events, want %d", n, len(ids))
		}
	}
	for _, id := range ids {
		if counts[id] != 1 {
			t.Errorf("job %s emitted %d terminal events, want 1", id, counts[id])
		}
	}
	if gw.DroppedEvents() != 0 {
		t.Errorf("%d events dropped with an attentive subscriber", gw.DroppedEvents())
	}
}
