package service

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"strconv"
	"time"

	"batchzk/internal/field"
	"batchzk/internal/obs"
	"batchzk/internal/telemetry"
)

// HTTP API of the gateway:
//
//	POST /v1/jobs             submit one job → 202 {job_id, trace_id, status}
//	GET  /v1/jobs/{id}        poll a job; ?wait=2s long-polls to terminal
//	GET  /v1/jobs/{id}/proof  raw binary proof, streamed zero-copy
//	GET  /v1/stream           NDJSON terminal events; ?tenant= filters
//	GET  /v1/stats            gateway counters
//	GET  /healthz             liveness
//	GET  /readyz              admission readiness (503 while draining)
//
// Backpressure contract: over-quota and queue-full submissions get 429
// with a Retry-After hint; a draining gateway answers 503 Retry-After;
// oversized bodies get 413. Trace ids round-trip via X-Trace-Id exactly
// as in internal/vml: send one to adopt it, read the response header
// (or body) for the id the job ran under.

// SubmitRequest is the wire form of one job submission. Field elements
// travel as decimal strings: 254-bit values do not survive JSON numbers.
type SubmitRequest struct {
	Tenant   string   `json:"tenant,omitempty"` // X-Tenant header wins
	Priority int      `json:"priority"`
	Public   []string `json:"public"`
	Secret   []string `json:"secret"`
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	JobID   string            `json:"job_id"`
	TraceID telemetry.TraceID `json:"trace_id"`
	Status  Status            `json:"status"`
}

// JobResponse is the poll view of a job; the proof appears base64-coded
// once the job is done.
type JobResponse struct {
	JobInfo
	Proof string `json:"proof,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// retryAfterSeconds formats d for a Retry-After header, rounding up so
// a sub-second hint never becomes "retry immediately".
func retryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// parseElements decodes decimal-string field elements, bounding count
// so a handful of huge arrays cannot exhaust memory past the body cap.
func parseElements(vals []string, max int, what string) ([]field.Element, error) {
	if len(vals) > max {
		return nil, fmt.Errorf("%s has %d elements, limit %d", what, len(vals), max)
	}
	out := make([]field.Element, len(vals))
	for i, s := range vals {
		n, ok := new(big.Int).SetString(s, 10)
		if !ok || n.Sign() < 0 {
			return nil, fmt.Errorf("%s[%d]: %q is not a decimal field element", what, i, s)
		}
		if n.Cmp(field.Modulus()) >= 0 {
			return nil, fmt.Errorf("%s[%d]: value ≥ field modulus", what, i)
		}
		out[i].SetBigInt(n)
	}
	return out, nil
}

// maxWireElements bounds each of the public/secret arrays per request.
const maxWireElements = 1 << 16

// Handler returns the gateway's HTTP API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/proof", g.handleProof)
	mux.HandleFunc("GET /v1/stream", g.handleStream)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, g.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": g.Draining()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		ready, reason := g.Ready()
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, map[string]any{"ready": ready, "reason": reason})
	})
	return mux
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader makes oversized bodies a distinct error class, so
	// they answer 413 rather than a generic decode 400/500.
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBody)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = req.Tenant
	}
	if tenant == "" {
		writeError(w, http.StatusBadRequest, "missing tenant (X-Tenant header or body field)")
		return
	}
	public, err := parseElements(req.Public, maxWireElements, "public")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	secret, err := parseElements(req.Secret, maxWireElements, "secret")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var callerTrace telemetry.TraceID
	if h := r.Header.Get("X-Trace-Id"); h != "" {
		if id, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			callerTrace = telemetry.TraceID(id)
		}
	}
	info, err := g.Submit(tenant, req.Priority, public, secret, callerTrace)
	if err != nil {
		var quota *QuotaError
		switch {
		case errors.As(err, &quota):
			w.Header().Set("Retry-After", retryAfterSeconds(quota.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrQueueFull):
			// The queue clears at batch-window cadence; hint one window.
			w.Header().Set("Retry-After", retryAfterSeconds(g.batcher.Config().MaxWait))
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	if info.TraceID != 0 {
		w.Header().Set("X-Trace-Id", strconv.FormatUint(uint64(info.TraceID), 10))
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		JobID: info.ID, TraceID: info.TraceID, Status: info.Status,
	})
}

func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		info JobInfo
		ok   bool
	)
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad wait duration")
			return
		}
		ctx := r.Context()
		if d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		info, ok = g.WaitJob(ctx, id)
	} else {
		info, ok = g.Job(id)
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	resp := JobResponse{JobInfo: info}
	if info.Status == StatusDone && info.Proof != nil {
		blob, err := info.Proof.MarshalBinary()
		if err != nil {
			obs.Error("service", "proof.serialize_failed", obs.Trace(info.TraceID), obs.Err(err))
			writeError(w, http.StatusInternalServerError, "proof serialization failed")
			return
		}
		resp.Proof = base64.StdEncoding.EncodeToString(blob)
	}
	if info.TraceID != 0 {
		w.Header().Set("X-Trace-Id", strconv.FormatUint(uint64(info.TraceID), 10))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleProof serves a completed job's proof as its wire encoding,
// written straight to the response through Proof.WriteTo — proofs in
// this protocol family run to megabytes, and the poll endpoint's
// marshal-then-base64 detour costs ~2.3× the proof size in transient
// allocations per download. Content-Length is exact, so clients can
// preallocate.
func (g *Gateway) handleProof(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := g.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	if info.Status != StatusDone || info.Proof == nil {
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s, not done", id, info.Status))
		return
	}
	size, err := info.Proof.Size()
	if err != nil {
		obs.Error("service", "proof.serialize_failed", obs.Trace(info.TraceID), obs.Err(err))
		writeError(w, http.StatusInternalServerError, "proof serialization failed")
		return
	}
	if info.TraceID != 0 {
		w.Header().Set("X-Trace-Id", strconv.FormatUint(uint64(info.TraceID), 10))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(size))
	w.WriteHeader(http.StatusOK)
	if _, err := info.Proof.WriteTo(w); err != nil {
		// Headers are gone; all we can do is log the broken download.
		obs.Warn("service", "proof.stream_aborted", obs.Trace(info.TraceID), obs.Err(err))
	}
}

// handleStream serves terminal events as NDJSON until the client goes
// away. Slow clients miss events (the gateway never stalls the prover
// for a reader); the poll endpoint stays authoritative.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	events, cancel := g.Subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if tenant != "" && ev.Tenant != tenant {
				continue
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
