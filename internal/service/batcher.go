// Package service is the multi-tenant proving-as-a-service gateway: the
// layer that turns "many concurrent clients" into "batched proving" in
// front of core.ShardedProver — the paper's §5 MLaaS scenario served as
// real traffic rather than a pre-built batch.
//
// It has four parts:
//
//   - an admission batcher (this file): jobs from many tenants coalesce
//     into batches under a latency/size window (dynamic batching), with
//     per-tenant token-bucket quotas, priority queues, a bounded queue
//     with backpressure, and a graceful drain that flushes every
//     accepted job exactly once;
//   - the Gateway (service.go): job lifecycle in front of a prover —
//     admission, fan-out, quarantine-aware retry, terminal resolution;
//   - the HTTP API (http.go): submit / poll / stream endpoints with
//     trace-id propagation into the flight recorder;
//   - the load generator (loadgen.go): open-loop Poisson arrivals with
//     heavy-tailed bursts, driving the HTTP API closed-loop per job.
package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission errors. ErrDraining and ErrQueueFull are sentinels;
// quota rejections carry a retry hint and are matched with errors.As.
var (
	// ErrDraining rejects submissions once Drain has begun: the gateway
	// finishes accepted work but admits no more.
	ErrDraining = errors.New("service: gateway is draining")
	// ErrQueueFull rejects submissions when the admission queue is at
	// capacity — the backpressure signal (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: admission queue full")
)

// QuotaError rejects a submission that exceeded its tenant's token
// bucket. RetryAfter estimates when one token will be available.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota (retry after %v)", e.Tenant, e.RetryAfter)
}

// QuotaSpec is a per-tenant token bucket: Burst tokens capacity,
// refilled at Rate tokens/second. The zero value means unlimited.
// Burst > 0 with Rate == 0 is a hard allowance: exactly Burst jobs are
// ever admitted for the tenant — useful for exact accounting tests.
type QuotaSpec struct {
	Rate  float64
	Burst int
}

func (q QuotaSpec) unlimited() bool { return q.Burst <= 0 }

// bucket is the live token-bucket state for one tenant.
type bucket struct {
	spec   QuotaSpec
	tokens float64
	last   time.Time
}

func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.spec.unlimited() {
		return true, 0
	}
	if b.spec.Rate > 0 {
		b.tokens += now.Sub(b.last).Seconds() * b.spec.Rate
		if max := float64(b.spec.Burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.spec.Rate <= 0 {
		// A hard allowance never refills; tell the client to go away
		// for a while rather than busy-poll.
		return false, time.Second
	}
	return false, time.Duration((1 - b.tokens) / b.spec.Rate * float64(time.Second))
}

// BatcherConfig shapes the admission window. The zero value gets the
// documented defaults.
type BatcherConfig struct {
	// MaxBatch caps the number of jobs per emitted batch (default 32).
	MaxBatch int
	// MaxWait bounds how long the oldest queued job waits before its
	// batch is flushed even if under-full (default 2ms) — the latency
	// half of the latency/size window.
	MaxWait time.Duration
	// QueueCap bounds the number of admitted-but-unflushed jobs; above
	// it Submit returns ErrQueueFull (default 1024).
	QueueCap int
	// Priorities is the number of priority classes (default 2). Class 0
	// is the most urgent; batches are filled highest-priority-first,
	// FIFO within a class.
	Priorities int
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota QuotaSpec
	// Quotas overrides the token bucket per tenant name.
	Quotas map[string]QuotaSpec
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Priorities <= 0 {
		c.Priorities = 2
	}
	return c
}

// Batch is one flushed group of admitted items.
type Batch[T any] struct {
	Items []T
	// Full reports whether the size cap (rather than the latency
	// window or a drain) triggered the flush.
	Full bool
}

// BatcherStats is a point-in-time snapshot of admission accounting.
type BatcherStats struct {
	Accepted         int64
	RejectedQuota    int64
	RejectedQueue    int64
	RejectedDraining int64
	Batches          int64
	Flushed          int64
	QueueDepth       int
}

// Occupancy is the mean batch fill fraction: flushed items over
// batches × MaxBatch capacity.
func (s BatcherStats) Occupancy(maxBatch int) float64 {
	if s.Batches == 0 || maxBatch <= 0 {
		return 0
	}
	return float64(s.Flushed) / float64(s.Batches*int64(maxBatch))
}

type entry[T any] struct {
	item T
	enq  time.Time
}

// Batcher coalesces admitted items into batches under the configured
// latency/size window. All methods are safe for concurrent use.
type Batcher[T any] struct {
	cfg BatcherConfig

	mu       sync.Mutex
	queues   [][]entry[T] // one FIFO per priority class
	count    int
	buckets  map[string]*bucket
	draining bool
	stats    BatcherStats

	kick chan struct{}
	out  chan Batch[T]
	done chan struct{}

	drainOnce sync.Once
	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewBatcher starts a batcher and its flush loop. Callers must consume
// Out; an unread Out channel is the backpressure that stalls flushing
// (and, transitively, admission once the queue cap is hit).
func NewBatcher[T any](cfg BatcherConfig) *Batcher[T] {
	b := &Batcher[T]{
		cfg:     cfg.withDefaults(),
		buckets: make(map[string]*bucket),
		kick:    make(chan struct{}, 1),
		out:     make(chan Batch[T], 1),
		done:    make(chan struct{}),
		now:     time.Now,
	}
	b.queues = make([][]entry[T], b.cfg.Priorities)
	go b.loop()
	return b
}

// Config returns the effective (defaulted) configuration.
func (b *Batcher[T]) Config() BatcherConfig { return b.cfg }

// Out delivers flushed batches until Drain closes it.
func (b *Batcher[T]) Out() <-chan Batch[T] { return b.out }

// Stats snapshots the admission counters.
func (b *Batcher[T]) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.QueueDepth = b.count
	return s
}

// Submit admits one item for tenant at the given priority class
// (clamped into range). The admission checks run in order — draining,
// queue capacity, tenant quota — under one lock, so quota accounting is
// exact under concurrent submission: a token is consumed if and only if
// the item is admitted.
func (b *Batcher[T]) Submit(tenant string, priority int, item T) error {
	if priority < 0 {
		priority = 0
	}
	if priority >= b.cfg.Priorities {
		priority = b.cfg.Priorities - 1
	}
	b.mu.Lock()
	if b.draining {
		b.stats.RejectedDraining++
		b.mu.Unlock()
		return ErrDraining
	}
	if b.count >= b.cfg.QueueCap {
		b.stats.RejectedQueue++
		b.mu.Unlock()
		return ErrQueueFull
	}
	now := b.now()
	bk := b.buckets[tenant]
	if bk == nil {
		spec, ok := b.cfg.Quotas[tenant]
		if !ok {
			spec = b.cfg.DefaultQuota
		}
		bk = &bucket{spec: spec, tokens: float64(spec.Burst), last: now}
		b.buckets[tenant] = bk
	}
	if ok, retry := bk.take(now); !ok {
		b.stats.RejectedQuota++
		b.mu.Unlock()
		return &QuotaError{Tenant: tenant, RetryAfter: retry}
	}
	b.queues[priority] = append(b.queues[priority], entry[T]{item: item, enq: now})
	b.count++
	b.stats.Accepted++
	b.mu.Unlock()

	select {
	case b.kick <- struct{}{}:
	default:
	}
	return nil
}

// Drain stops admission, flushes every already-accepted item (in as
// many batches as needed), closes Out, and returns. Safe to call more
// than once; concurrent Submits that lose the race get ErrDraining.
func (b *Batcher[T]) Drain() {
	b.drainOnce.Do(func() {
		b.mu.Lock()
		b.draining = true
		b.mu.Unlock()
		select {
		case b.kick <- struct{}{}:
		default:
		}
	})
	<-b.done
}

// popLocked removes up to MaxBatch items, highest priority class first,
// FIFO within a class. Callers hold b.mu.
func (b *Batcher[T]) popLocked() []T {
	n := b.count
	if n > b.cfg.MaxBatch {
		n = b.cfg.MaxBatch
	}
	items := make([]T, 0, n)
	for p := 0; p < len(b.queues) && len(items) < n; p++ {
		q := b.queues[p]
		take := n - len(items)
		if take > len(q) {
			take = len(q)
		}
		for i := 0; i < take; i++ {
			items = append(items, q[i].item)
			q[i] = entry[T]{} // release for GC
		}
		b.queues[p] = q[take:]
		if len(b.queues[p]) == 0 {
			b.queues[p] = nil // reset backing array
		}
	}
	b.count -= len(items)
	return items
}

// oldestLocked returns the earliest enqueue time across all priority
// classes (each class is FIFO, so its head is its oldest). Callers hold
// b.mu and guarantee count > 0.
func (b *Batcher[T]) oldestLocked() time.Time {
	var oldest time.Time
	for _, q := range b.queues {
		if len(q) > 0 && (oldest.IsZero() || q[0].enq.Before(oldest)) {
			oldest = q[0].enq
		}
	}
	return oldest
}

// loop is the flush pump: emit a batch whenever the size cap is hit,
// the oldest queued item has aged past MaxWait, or a drain needs the
// queue emptied; otherwise sleep until the window deadline or the next
// Submit kick.
func (b *Batcher[T]) loop() {
	defer close(b.done)
	defer close(b.out)
	for {
		b.mu.Lock()
		var batch []T
		full := false
		var due time.Time
		switch {
		case b.count >= b.cfg.MaxBatch:
			batch = b.popLocked()
			full = true
		case b.count > 0 && b.draining:
			batch = b.popLocked()
		case b.count > 0:
			oldest := b.oldestLocked()
			if b.now().Sub(oldest) >= b.cfg.MaxWait {
				batch = b.popLocked()
			} else {
				due = oldest.Add(b.cfg.MaxWait)
			}
		}
		if batch != nil {
			b.stats.Batches++
			b.stats.Flushed += int64(len(batch))
		}
		draining, empty := b.draining, b.count == 0
		b.mu.Unlock()

		if batch != nil {
			b.out <- Batch[T]{Items: batch, Full: full}
			continue
		}
		if draining && empty {
			return
		}
		if due.IsZero() {
			<-b.kick
			continue
		}
		t := time.NewTimer(time.Until(due))
		select {
		case <-b.kick:
		case <-t.C:
		}
		t.Stop()
	}
}
