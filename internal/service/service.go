package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"batchzk/internal/core"
	"batchzk/internal/faults"
	"batchzk/internal/field"
	"batchzk/internal/obs"
	"batchzk/internal/protocol"
	"batchzk/internal/telemetry"
)

// Prover is the proving backend the gateway fans batches out to.
// core.BatchProver and core.ShardedProver both satisfy it.
type Prover interface {
	Run(jobs <-chan core.Job) <-chan core.Result
	Stats() core.Stats
	SetResilience(r *core.Resilience)
	SetStreamingCommit(on bool)
	Quarantined() []core.QuarantinedJob
	Verify(public []field.Element, proof *protocol.Proof) error
}

// Status is a job's lifecycle state. queued → proving → one terminal
// state; transitions are exactly-once.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusProving Status = "proving"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
	StatusTimeout Status = "timeout"
)

// Terminal reports whether s is an end state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusTimeout
}

// Config shapes the gateway. Zero values get the batcher defaults plus:
// JobDeadline 0 (off), RetryBudget 1, MaxBody 1 MiB.
type Config struct {
	// Batching window, queue bound, priorities, and quotas — see
	// BatcherConfig.
	MaxBatch     int
	MaxWait      time.Duration
	QueueCap     int
	Priorities   int
	DefaultQuota QuotaSpec
	Quotas       map[string]QuotaSpec

	// JobDeadline bounds a job's wall time inside the prover pipeline
	// (installed into the prover's Resilience). Zero disables it.
	JobDeadline time.Duration
	// RetryBudget is how many times the gateway re-submits a job whose
	// quarantine was caused by a transient injected fault (a slow or
	// flaky shard), on top of the prover's own per-stage retries.
	// Negative disables gateway retries; zero means the default (1).
	RetryBudget int
	// MaxBody caps the HTTP request body in bytes (default 1 MiB);
	// larger submissions get 413.
	MaxBody int64
	// StreamingCommit routes the prover's commit and opening stages
	// through the out-of-core streaming path (core.SetStreamingCommit):
	// per-job peak memory drops from the full encoded matrix to one row
	// block plus hasher states, with bit-identical proofs. The natural
	// setting for a long-lived gateway, whose working set should track
	// the in-flight window, not the traffic history.
	StreamingCommit bool
	// Resilience, when set, is the base failure-handling configuration
	// installed on the prover (JobDeadline above is applied on top).
	// Nil means core.DefaultResilience.
	Resilience *core.Resilience
	// Telemetry overrides the process-wide sink for trace minting.
	Telemetry *telemetry.Sink
}

func (c Config) withDefaults() Config {
	if c.RetryBudget == 0 {
		c.RetryBudget = 1
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	return c
}

// JobInfo is an external snapshot of one job's state.
type JobInfo struct {
	ID        string            `json:"job_id"`
	Tenant    string            `json:"tenant"`
	Priority  int               `json:"priority"`
	Status    Status            `json:"status"`
	TraceID   telemetry.TraceID `json:"trace_id"`
	Retries   int               `json:"retries"`
	Err       string            `json:"error,omitempty"`
	LatencyNs int64             `json:"latency_ns,omitempty"`
	// Proof is set only on StatusDone.
	Proof *protocol.Proof `json:"-"`
}

// Event is one terminal job notification on the results stream.
type Event struct {
	JobID     string            `json:"job_id"`
	Tenant    string            `json:"tenant"`
	Status    Status            `json:"status"`
	TraceID   telemetry.TraceID `json:"trace_id"`
	Err       string            `json:"error,omitempty"`
	LatencyNs int64             `json:"latency_ns"`
}

// job is the gateway-side record of one submission.
type job struct {
	extID    string
	tenant   string
	priority int
	trace    telemetry.TraceID
	public   []field.Element
	secret   []field.Element

	mu        sync.Mutex
	seq       int // internal id of the current prover attempt
	status    Status
	proof     *protocol.Proof
	errMsg    string
	retries   int
	submitted time.Time
	finished  time.Time
	done      chan struct{}
}

func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID: j.extID, Tenant: j.tenant, Priority: j.priority,
		Status: j.status, TraceID: j.trace, Retries: j.retries,
		Err: j.errMsg, Proof: j.proof,
	}
	if j.status.Terminal() {
		info.LatencyNs = j.finished.Sub(j.submitted).Nanoseconds()
	}
	return info
}

// GatewayStats is a point-in-time snapshot of the gateway counters.
type GatewayStats struct {
	Accepted         int64   `json:"accepted"`
	RejectedQuota    int64   `json:"rejected_quota"`
	RejectedQueue    int64   `json:"rejected_queue"`
	RejectedDraining int64   `json:"rejected_draining"`
	Completed        int64   `json:"completed"`
	Failed           int64   `json:"failed"`
	Timeouts         int64   `json:"timeouts"`
	Retries          int64   `json:"retries"`
	Batches          int64   `json:"batches"`
	BatchOccupancy   float64 `json:"batch_occupancy"`
	QueueDepth       int     `json:"queue_depth"`
	Draining         bool    `json:"draining"`
}

// Gateway is the multi-tenant proving service in front of a Prover.
// Construct with NewGateway, stop with Drain (resumable via Resume).
type Gateway struct {
	cfg    Config
	prover Prover

	mu   sync.Mutex
	jobs map[string]*job // external id → record
	byID map[int]*job    // in-flight internal seq → record
	seq  int

	// in feeds the prover's current Run; inMu guards the close against
	// late retry re-submissions.
	inMu     sync.RWMutex
	in       chan core.Job
	inClosed bool

	batcher  *Batcher[*job]
	draining atomic.Bool
	pumps    sync.WaitGroup

	completed atomic.Int64
	failed    atomic.Int64
	timeouts  atomic.Int64
	retries   atomic.Int64

	subMu   sync.Mutex
	subs    map[int]chan Event
	subSeq  int
	dropped atomic.Int64
}

// NewGateway builds and starts a gateway over prover. The prover must
// be idle (no Run in progress); the gateway installs its resilience
// configuration and owns the prover's job stream from here on.
func NewGateway(prover Prover, cfg Config) (*Gateway, error) {
	if prover == nil {
		return nil, fmt.Errorf("service: nil prover")
	}
	g := &Gateway{
		cfg:    cfg.withDefaults(),
		prover: prover,
		jobs:   make(map[string]*job),
		byID:   make(map[int]*job),
		subs:   make(map[int]chan Event),
	}
	res := g.cfg.Resilience
	if res == nil {
		res = core.DefaultResilience()
	}
	if g.cfg.JobDeadline > 0 {
		res.JobDeadline = g.cfg.JobDeadline
	}
	prover.SetResilience(res)
	prover.SetStreamingCommit(g.cfg.StreamingCommit)
	g.start()
	return g, nil
}

// Config returns the effective gateway configuration.
func (g *Gateway) Config() Config { return g.cfg }

// start wires a fresh batcher and prover run and launches the pumps.
// Called at construction and again by Resume.
func (g *Gateway) start() {
	g.batcher = NewBatcher[*job](BatcherConfig{
		MaxBatch: g.cfg.MaxBatch, MaxWait: g.cfg.MaxWait,
		QueueCap: g.cfg.QueueCap, Priorities: g.cfg.Priorities,
		DefaultQuota: g.cfg.DefaultQuota, Quotas: g.cfg.Quotas,
	})
	g.inMu.Lock()
	g.in = make(chan core.Job, g.batcher.Config().MaxBatch)
	g.inClosed = false
	g.inMu.Unlock()
	out := g.prover.Run(g.in)
	g.pumps.Add(2)
	go g.batchPump()
	go g.resultPump(out)
}

// Submit admits one proving job for tenant. The caller's trace id (zero
// to mint a fresh one) seeds the job's flight-recorder timeline at
// admission, so queue wait is part of the recorded end-to-end latency.
func (g *Gateway) Submit(tenant string, priority int, public, secret []field.Element, callerTrace telemetry.TraceID) (JobInfo, error) {
	if g.draining.Load() {
		return JobInfo{}, ErrDraining
	}
	g.mu.Lock()
	g.seq++
	seq := g.seq
	g.mu.Unlock()

	flight := telemetry.Resolve(g.cfg.Telemetry).FlightRecorder()
	trace := flight.Submit(callerTrace, seq, -1)
	if trace == 0 {
		trace = callerTrace
	}
	j := &job{
		extID: fmt.Sprintf("j-%d", seq), tenant: tenant, priority: priority,
		trace: trace, public: public, secret: secret,
		seq: seq, status: StatusQueued, submitted: time.Now(),
		done: make(chan struct{}),
	}
	g.mu.Lock()
	g.jobs[j.extID] = j
	g.byID[seq] = j
	g.mu.Unlock()

	if err := g.batcher.Submit(tenant, priority, j); err != nil {
		g.mu.Lock()
		delete(g.jobs, j.extID)
		delete(g.byID, seq)
		g.mu.Unlock()
		return JobInfo{}, err
	}
	obs.Debug("service", "job.accepted", obs.Job(seq), obs.Trace(trace))
	return j.info(), nil
}

// batchPump forwards flushed batches into the prover's job stream.
func (g *Gateway) batchPump() {
	defer g.pumps.Done()
	for batch := range g.batcher.Out() {
		for _, j := range batch.Items {
			j.mu.Lock()
			j.status = StatusProving
			seq := j.seq
			j.mu.Unlock()
			g.sendJob(core.Job{ID: seq, Public: j.public, Secret: j.secret, Trace: j.trace})
		}
	}
	g.closeIn()
}

// sendJob delivers one job to the prover's current run. It returns
// false if the stream is already closed (a retry that lost the race
// with drain); the caller resolves the job instead of losing it.
func (g *Gateway) sendJob(cj core.Job) bool {
	g.inMu.RLock()
	defer g.inMu.RUnlock()
	if g.inClosed {
		return false
	}
	g.in <- cj
	return true
}

func (g *Gateway) closeIn() {
	g.inMu.Lock()
	defer g.inMu.Unlock()
	if !g.inClosed {
		g.inClosed = true
		close(g.in)
	}
}

// resultPump resolves prover results into terminal job states, retrying
// transient quarantines within the budget.
func (g *Gateway) resultPump(out <-chan core.Result) {
	defer g.pumps.Done()
	for r := range out {
		g.mu.Lock()
		j := g.byID[r.ID]
		delete(g.byID, r.ID)
		g.mu.Unlock()
		if j == nil {
			// A result for a job the gateway never issued — only
			// possible if the prover is shared, which NewGateway forbids.
			obs.Warn("service", "result.orphaned", obs.Job(r.ID))
			continue
		}
		if r.Err == nil {
			g.resolve(j, StatusDone, r.Proof, "")
			continue
		}
		if g.shouldRetry(j, r.Err) {
			continue
		}
		if errors.Is(r.Err, core.ErrJobDeadline) {
			g.resolve(j, StatusTimeout, nil, r.Err.Error())
		} else {
			g.resolve(j, StatusFailed, nil, r.Err.Error())
		}
	}
}

// shouldRetry re-submits a quarantined job when the failure was a
// transient injected fault (flaky kernel, stalled transfer, worker
// panic — a shard having a bad day) and the budget allows. Permanent
// faults (memory corruption), blown deadlines, and real witness errors
// are terminal: retrying them only delays the verdict the client gets.
func (g *Gateway) shouldRetry(j *job, err error) bool {
	if errors.Is(err, core.ErrJobDeadline) {
		return false
	}
	var f *faults.Fault
	if !errors.As(err, &f) || f.Permanent() {
		return false
	}
	j.mu.Lock()
	if j.retries >= g.cfg.RetryBudget {
		j.mu.Unlock()
		return false
	}
	j.retries++
	j.mu.Unlock()

	g.mu.Lock()
	g.seq++
	seq := g.seq
	g.byID[seq] = j
	g.mu.Unlock()
	j.mu.Lock()
	j.seq = seq
	j.mu.Unlock()
	g.retries.Add(1)
	obs.Warn("service", "job.retry", obs.Job(seq), obs.Trace(j.trace), obs.Err(err))

	// Re-submit from a fresh goroutine: the result pump must keep
	// draining prover output, or a full pipeline would deadlock against
	// this send. The job keeps its trace id — one timeline across the
	// retry — and a send that loses the race with drain resolves the
	// job instead of dropping it.
	g.pumps.Add(1)
	go func() {
		defer g.pumps.Done()
		if !g.sendJob(core.Job{ID: seq, Public: j.public, Secret: j.secret, Trace: j.trace}) {
			g.mu.Lock()
			delete(g.byID, seq)
			g.mu.Unlock()
			g.resolve(j, StatusFailed, nil, fmt.Sprintf("retry abandoned by drain: %v", err))
		}
	}()
	return true
}

// resolve moves a job to a terminal state exactly once and notifies
// pollers and stream subscribers.
func (g *Gateway) resolve(j *job, st Status, proof *protocol.Proof, errMsg string) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = st
	j.proof = proof
	j.errMsg = errMsg
	j.finished = time.Now()
	latency := j.finished.Sub(j.submitted).Nanoseconds()
	close(j.done)
	j.mu.Unlock()

	switch st {
	case StatusDone:
		g.completed.Add(1)
	case StatusTimeout:
		g.timeouts.Add(1)
	default:
		g.failed.Add(1)
	}
	g.publish(Event{
		JobID: j.extID, Tenant: j.tenant, Status: st,
		TraceID: j.trace, Err: errMsg, LatencyNs: latency,
	})
}

// Job returns the current snapshot of a job by external id.
func (g *Gateway) Job(id string) (JobInfo, bool) {
	g.mu.Lock()
	j := g.jobs[id]
	g.mu.Unlock()
	if j == nil {
		return JobInfo{}, false
	}
	return j.info(), true
}

// WaitJob blocks until the job reaches a terminal state or ctx expires,
// returning the snapshot either way.
func (g *Gateway) WaitJob(ctx context.Context, id string) (JobInfo, bool) {
	g.mu.Lock()
	j := g.jobs[id]
	g.mu.Unlock()
	if j == nil {
		return JobInfo{}, false
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return j.info(), true
}

// VerifyJob re-verifies a completed job's proof against its public
// input through the prover's verifier.
func (g *Gateway) VerifyJob(id string) error {
	g.mu.Lock()
	j := g.jobs[id]
	g.mu.Unlock()
	if j == nil {
		return fmt.Errorf("service: unknown job %q", id)
	}
	info := j.info()
	if info.Status != StatusDone || info.Proof == nil {
		return fmt.Errorf("service: job %q is %s, not done", id, info.Status)
	}
	return g.prover.Verify(j.public, info.Proof)
}

// Subscribe registers a terminal-event stream. Slow subscribers drop
// events (counted in DroppedEvents) rather than stall the prover.
func (g *Gateway) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 256)
	g.subMu.Lock()
	g.subSeq++
	id := g.subSeq
	g.subs[id] = ch
	g.subMu.Unlock()
	cancel := func() {
		g.subMu.Lock()
		if _, ok := g.subs[id]; ok {
			delete(g.subs, id)
			close(ch)
		}
		g.subMu.Unlock()
	}
	return ch, cancel
}

func (g *Gateway) publish(ev Event) {
	g.subMu.Lock()
	defer g.subMu.Unlock()
	for _, ch := range g.subs {
		select {
		case ch <- ev:
		default:
			g.dropped.Add(1)
		}
	}
}

// DroppedEvents counts stream events lost to slow subscribers.
func (g *Gateway) DroppedEvents() int64 { return g.dropped.Load() }

// Draining reports whether the gateway is refusing new work.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Ready reports whether the gateway should receive traffic: not
// draining, and the process-wide health engine (when enabled) agrees.
func (g *Gateway) Ready() (bool, string) {
	if g.draining.Load() {
		return false, "draining"
	}
	return obs.Active().Ready()
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() GatewayStats {
	bs := g.batcher.Stats()
	return GatewayStats{
		Accepted:         bs.Accepted,
		RejectedQuota:    bs.RejectedQuota,
		RejectedQueue:    bs.RejectedQueue,
		RejectedDraining: bs.RejectedDraining,
		Completed:        g.completed.Load(),
		Failed:           g.failed.Load(),
		Timeouts:         g.timeouts.Load(),
		Retries:          g.retries.Load(),
		Batches:          bs.Batches,
		BatchOccupancy:   bs.Occupancy(g.batcher.Config().MaxBatch),
		QueueDepth:       bs.QueueDepth,
		Draining:         g.draining.Load(),
	}
}

// ProverStats exposes the backend prover's counters.
func (g *Gateway) ProverStats() core.Stats { return g.prover.Stats() }

// Quarantined exposes the backend prover's dead-letter list.
func (g *Gateway) Quarantined() []core.QuarantinedJob { return g.prover.Quarantined() }

// Drain gracefully stops the gateway: admission closes (new submissions
// get ErrDraining / 503), every accepted job is flushed, proven, and
// resolved, then the prover's stream is closed. Blocks until the last
// result lands. The gateway can be restarted with Resume.
func (g *Gateway) Drain() {
	if g.draining.Swap(true) {
		return
	}
	obs.Info("service", "gateway.draining")
	g.batcher.Drain() // flush accepted jobs; batch pump then closes in
	g.pumps.Wait()    // prover drains, result pump resolves everything
	obs.Info("service", "gateway.drained")
}

// Resume restarts a drained gateway with a fresh admission window and a
// new prover run. Job history (terminal records) is retained.
func (g *Gateway) Resume() {
	if !g.draining.Load() {
		return
	}
	g.start()
	g.draining.Store(false)
	obs.Info("service", "gateway.resumed")
}
