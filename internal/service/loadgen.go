package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/big"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"batchzk/internal/field"
)

// Load generator: open-loop Poisson arrivals (submission times do not
// wait on completions — the paper's MLaaS traffic model) with periodic
// heavy-tailed bursts drawn from a bounded Pareto, driven against the
// gateway's HTTP API. Each accepted job is then tracked closed-loop: a
// waiter long-polls it to its terminal state, so "lost" (accepted but
// never resolved) and server-side end-to-end latency are measured
// authoritatively, while a stream subscription cross-checks that no job
// terminates twice.

// LoadConfig shapes one load-generation run.
type LoadConfig struct {
	// Tenants is the number of concurrent tenants ("t0".."tN-1").
	Tenants int
	// JobsPerTenant is the number of arrivals each tenant offers.
	JobsPerTenant int
	// Rate is the mean arrival rate per tenant, jobs/second (Poisson:
	// exponential inter-arrival gaps). Zero or negative means
	// back-to-back submission.
	Rate float64
	// BurstEvery makes every k-th arrival a burst; 0 disables bursts.
	BurstEvery int
	// BurstMax caps the bounded-Pareto burst size (default 8, α=1.5 —
	// heavy-tailed: most bursts are small, a few hit the cap).
	BurstMax int
	// PublicLen / SecretLen size each job's input vectors; they must
	// match the gateway's circuit.
	PublicLen, SecretLen int
	// Priority assigns a priority class per (tenant, arrival); nil
	// means tenant index modulo the gateway's class count.
	Priority func(tenant, arrival int) int
	// WaitTimeout bounds how long a job may take from acceptance to a
	// terminal state before the generator counts it lost (default 30s).
	WaitTimeout time.Duration
	// Seed makes the arrival process and inputs reproducible.
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.JobsPerTenant <= 0 {
		c.JobsPerTenant = 1
	}
	if c.BurstMax <= 0 {
		c.BurstMax = 8
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 30 * time.Second
	}
	return c
}

// TenantResult is one tenant's view of the run.
type TenantResult struct {
	Tenant    string `json:"tenant"`
	Offered   int64  `json:"offered"`
	Accepted  int64  `json:"accepted"`
	Rejected  int64  `json:"rejected"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	Timeouts  int64  `json:"timeouts"`
	Lost      int64  `json:"lost"`
	P99Ns     int64  `json:"p99_ns"`
}

// LoadResult aggregates a load-generation run. Latencies are the
// server-reported end-to-end times (admission to terminal state) of
// every job that reached one.
type LoadResult struct {
	Offered     int64
	Accepted    int64
	Rejected    int64
	Completed   int64
	Failed      int64
	Timeouts    int64
	Lost        int64
	Duplicated  int64
	PerTenant   []TenantResult
	LatenciesNs []int64
}

// Percentile returns the exact nearest-rank p-quantile (0 < p ≤ 1) of
// the run's latencies, 0 when none were recorded.
func (r *LoadResult) Percentile(p float64) int64 {
	if len(r.LatenciesNs) == 0 {
		return 0
	}
	s := make([]int64, len(r.LatenciesNs))
	copy(s, r.LatenciesNs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// FairnessJain computes Jain's index over per-tenant completed counts:
// 1.0 is perfectly fair, 1/N is one tenant taking everything.
func (r *LoadResult) FairnessJain() float64 {
	var sum, sumSq float64
	n := 0
	for _, t := range r.PerTenant {
		x := float64(t.Completed)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Client drives a gateway over HTTP.
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// SubmitJob posts one job; it returns the acknowledgment, the HTTP
// status, and a transport error (a non-2xx status is not an error).
func (c *Client) SubmitJob(tenant string, priority int, public, secret []field.Element) (SubmitResponse, int, error) {
	req := SubmitRequest{
		Priority: priority,
		Public:   encodeElements(public),
		Secret:   encodeElements(secret),
	}
	body, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, 0, err
	}
	hreq, err := http.NewRequest(http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return SubmitResponse{}, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Tenant", tenant)
	resp, err := c.httpc().Do(hreq)
	if err != nil {
		return SubmitResponse{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return SubmitResponse{}, resp.StatusCode, nil
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return SubmitResponse{}, resp.StatusCode, err
	}
	return ack, resp.StatusCode, nil
}

// PollJob fetches a job's state, long-polling up to wait.
func (c *Client) PollJob(id string, wait time.Duration) (JobResponse, error) {
	url := c.Base + "/v1/jobs/" + id
	if wait > 0 {
		url += "?wait=" + wait.String()
	}
	resp, err := c.httpc().Get(url)
	if err != nil {
		return JobResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return JobResponse{}, fmt.Errorf("service: poll %s: %s: %s", id, resp.Status, bytes.TrimSpace(msg))
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return JobResponse{}, err
	}
	return jr, nil
}

func encodeElements(v []field.Element) []string {
	out := make([]string, len(v))
	for i := range v {
		out[i] = v[i].BigInt().String()
	}
	return out
}

// boundedPareto draws a burst size in [1, max] with tail index α=1.5:
// P(X > x) ∝ x^-1.5, truncated.
func boundedPareto(rng *rand.Rand, max int) int {
	const alpha = 1.5
	u := rng.Float64()
	x := int(math.Pow(1-u, -1/alpha))
	if x < 1 {
		x = 1
	}
	if x > max {
		x = max
	}
	return x
}

// Run drives the configured load against the gateway at base and
// blocks until every accepted job is resolved or times out.
func (cfg LoadConfig) Run(base string) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	client := &Client{Base: base}

	// One stream subscription for the whole run, counting terminal
	// events per job id: any id seen twice is a duplicated resolution.
	streamCtx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	seen := make(map[string]int)
	var seenMu sync.Mutex
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, base+"/v1/stream", nil)
		if err != nil {
			return
		}
		resp, err := client.httpc().Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			var ev Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.JobID != "" {
				seenMu.Lock()
				seen[ev.JobID]++
				seenMu.Unlock()
			}
		}
	}()

	res := &LoadResult{PerTenant: make([]TenantResult, cfg.Tenants)}
	var resMu sync.Mutex
	var tenants sync.WaitGroup

	for t := 0; t < cfg.Tenants; t++ {
		tenants.Add(1)
		go func(t int) {
			defer tenants.Done()
			tenant := "t" + strconv.Itoa(t)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
			tr := TenantResult{Tenant: tenant}
			var trMu sync.Mutex
			var latencies []int64
			var waiters sync.WaitGroup

			submit := func(arrival int) {
				prio := t % 2
				if cfg.Priority != nil {
					prio = cfg.Priority(t, arrival)
				}
				public := randElements(rng, cfg.PublicLen)
				secret := randElements(rng, cfg.SecretLen)
				tr.Offered++
				ack, status, err := client.SubmitJob(tenant, prio, public, secret)
				if err != nil || status != http.StatusAccepted {
					tr.Rejected++
					return
				}
				tr.Accepted++
				waiters.Add(1)
				go func(id string) {
					defer waiters.Done()
					deadline := time.Now().Add(cfg.WaitTimeout)
					for {
						wait := 2 * time.Second
						if left := time.Until(deadline); left < wait {
							wait = left
						}
						trMu.Lock()
						lost := wait <= 0
						if lost {
							tr.Lost++
						}
						trMu.Unlock()
						if lost {
							return
						}
						jr, err := client.PollJob(id, wait)
						if err != nil {
							trMu.Lock()
							tr.Lost++
							trMu.Unlock()
							return
						}
						if !jr.Status.Terminal() {
							continue
						}
						trMu.Lock()
						switch jr.Status {
						case StatusDone:
							tr.Completed++
						case StatusTimeout:
							tr.Timeouts++
						default:
							tr.Failed++
						}
						latencies = append(latencies, jr.LatencyNs)
						trMu.Unlock()
						return
					}
				}(ack.JobID)
			}

			arrival := 0
			for arrival < cfg.JobsPerTenant {
				if cfg.Rate > 0 {
					gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
					time.Sleep(gap)
				}
				n := 1
				if cfg.BurstEvery > 0 && arrival > 0 && arrival%cfg.BurstEvery == 0 {
					n = boundedPareto(rng, cfg.BurstMax)
				}
				for i := 0; i < n && arrival < cfg.JobsPerTenant; i++ {
					submit(arrival)
					arrival++
				}
			}
			waiters.Wait()

			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			if n := len(latencies); n > 0 {
				idx := int(math.Ceil(0.99*float64(n))) - 1
				if idx < 0 {
					idx = 0
				}
				tr.P99Ns = latencies[idx]
			}
			resMu.Lock()
			res.PerTenant[t] = tr
			res.LatenciesNs = append(res.LatenciesNs, latencies...)
			resMu.Unlock()
		}(t)
	}
	tenants.Wait()
	stopStream()
	<-streamDone

	seenMu.Lock()
	for _, n := range seen {
		if n > 1 {
			res.Duplicated += int64(n - 1)
		}
	}
	seenMu.Unlock()

	for i := range res.PerTenant {
		t := &res.PerTenant[i]
		res.Offered += t.Offered
		res.Accepted += t.Accepted
		res.Rejected += t.Rejected
		res.Completed += t.Completed
		res.Failed += t.Failed
		res.Timeouts += t.Timeouts
		res.Lost += t.Lost
	}
	return res, nil
}

func randElements(rng *rand.Rand, n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		v := new(big.Int).Rand(rng, field.Modulus())
		out[i].SetBigInt(v)
	}
	return out
}
