package service

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"batchzk/internal/core"
	"batchzk/internal/field"
	"batchzk/internal/protocol"
	"batchzk/internal/telemetry"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Gateway) {
	t.Helper()
	sp, _ := newTestProver(t, 1)
	gw, err := NewGateway(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		srv.Close()
		gw.Drain()
	})
	return srv, gw
}

func submitBody(n int) []byte {
	req := SubmitRequest{
		Public: encodeElements(field.RandVector(n)),
		Secret: encodeElements(field.RandVector(n)),
	}
	b, _ := json.Marshal(req)
	return b
}

func postJob(t *testing.T, base, tenant string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// Submit → poll round-trip: accepted job resolves to done with a
// verifiable proof and a consistent trace id across both responses.
func TestHTTPSubmitPollRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})
	resp := postJob(t, srv.URL, "acme", submitBody(2), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.JobID == "" || ack.Status != StatusQueued {
		t.Fatalf("bad ack: %+v", ack)
	}
	submitTrace := resp.Header.Get("X-Trace-Id")

	poll, err := http.Get(srv.URL + "/v1/jobs/" + ack.JobID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	defer poll.Body.Close()
	if poll.StatusCode != http.StatusOK {
		t.Fatalf("poll: %s", poll.Status)
	}
	var jr JobResponse
	if err := json.NewDecoder(poll.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Status != StatusDone {
		t.Fatalf("job %s ended %s (%s)", ack.JobID, jr.Status, jr.Err)
	}
	if jr.Tenant != "acme" || jr.LatencyNs <= 0 {
		t.Errorf("bad terminal record: %+v", jr.JobInfo)
	}
	if got := poll.Header.Get("X-Trace-Id"); submitTrace != "" && got != submitTrace {
		t.Errorf("trace id changed across poll: submit=%s poll=%s", submitTrace, got)
	}
	blob, err := base64.StdEncoding.DecodeString(jr.Proof)
	if err != nil || len(blob) == 0 {
		t.Fatalf("done job carries no decodable proof: %v", err)
	}
	var proof protocol.Proof
	if err := proof.UnmarshalBinary(blob); err != nil {
		t.Fatalf("served proof does not deserialize: %v", err)
	}
}

// A caller-supplied X-Trace-Id is adopted and echoed — the job keeps
// one flight-recorder timeline across the API boundary.
func TestHTTPTraceIDPropagation(t *testing.T) {
	sink := telemetry.NewSink(0)
	sp, _ := newTestProver(t, 1)
	sp.SetTelemetry(sink)
	gw, err := NewGateway(sp, Config{MaxBatch: 2, MaxWait: time.Millisecond, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	defer func() { srv.Close(); gw.Drain() }()

	const caller = "12345"
	resp := postJob(t, srv.URL, "acme", submitBody(2), map[string]string{"X-Trace-Id": caller})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != caller {
		t.Fatalf("response trace %s, want caller's %s", got, caller)
	}
	if _, ok := sink.FlightRecorder().Timeline(telemetry.TraceID(12345)); !ok {
		t.Error("caller's trace id has no flight-recorder timeline")
	}
}

// Oversized bodies answer 413, not 500 (and not a bare decode 400).
func TestHTTPRequestTooLarge(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond, MaxBody: 2048})
	big := make([]byte, 64*1024)
	for i := range big {
		big[i] = 'a'
	}
	body, _ := json.Marshal(map[string]any{"public": []string{string(big)}})
	resp := postJob(t, srv.URL, "acme", body, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: %s, want 413", resp.Status)
	}
}

// Over-quota tenants get 429 with a Retry-After header; other tenants
// are unaffected (isolation).
func TestHTTPQuotaBackpressure(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		MaxBatch: 8, MaxWait: time.Millisecond,
		Quotas: map[string]QuotaSpec{"capped": {Burst: 2}}, // hard allowance
	})
	for i := 0; i < 2; i++ {
		resp := postJob(t, srv.URL, "capped", submitBody(2), nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
	}
	resp := postJob(t, srv.URL, "capped", submitBody(2), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	other := postJob(t, srv.URL, "other", submitBody(2), nil)
	other.Body.Close()
	if other.StatusCode != http.StatusAccepted {
		t.Errorf("unrelated tenant rejected: %s", other.Status)
	}
}

// A full admission queue answers 429 + Retry-After.
func TestHTTPQueueFullBackpressure(t *testing.T) {
	// MaxWait pins the window far out so the queue cannot clear.
	srv, _ := newTestServer(t, Config{MaxBatch: 1000, MaxWait: time.Hour, QueueCap: 2})
	saw429 := false
	for i := 0; i < 6; i++ {
		resp := postJob(t, srv.URL, "acme", submitBody(2), nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("queue-full 429 without Retry-After")
			}
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("queue cap 2 never produced a 429 across 6 submissions")
	}
}

// Draining: submissions 503, /readyz flips, and both recover on resume.
func TestHTTPDrainReadyz(t *testing.T) {
	srv, gw := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})
	check := func(wantReady bool) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		wantCode := http.StatusOK
		if !wantReady {
			wantCode = http.StatusServiceUnavailable
		}
		if resp.StatusCode != wantCode {
			t.Fatalf("/readyz: %s, want %d", resp.Status, wantCode)
		}
	}
	check(true)
	gw.Drain()
	check(false)
	resp := postJob(t, srv.URL, "acme", submitBody(2), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %s, want 503", resp.Status)
	}
	gw.Resume()
	check(true)
	resp = postJob(t, srv.URL, "acme", submitBody(2), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after resume: %s, want 202", resp.Status)
	}
}

// Unknown jobs and malformed requests map to 404 / 400.
func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})
	resp, err := http.Get(srv.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s, want 404", resp.Status)
	}

	for name, body := range map[string]string{
		"not json":       "{",
		"missing tenant": `{"public":["1"],"secret":["2"]}`,
		"bad element":    `{"public":["zzz"],"secret":[]}`,
		"over modulus":   fmt.Sprintf(`{"public":["%s0"],"secret":[]}`, field.Modulus().String()),
	} {
		tenant := "acme"
		if name == "missing tenant" {
			tenant = ""
		}
		resp := postJob(t, srv.URL, tenant, []byte(body), nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %s, want 400", name, resp.Status)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/j-1?wait=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad wait duration: %s, want 400", resp.Status)
	}
}

// The NDJSON stream carries each terminal event once, filtered by
// tenant when requested.
func TestHTTPStream(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})
	streamResp, err := http.Get(srv.URL + "/v1/stream?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("stream content type %q", ct)
	}

	var ids []string
	for i := 0; i < 3; i++ {
		resp := postJob(t, srv.URL, "acme", submitBody(2), nil)
		var ack SubmitResponse
		json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		ids = append(ids, ack.JobID)
	}
	// One foreign-tenant job that must NOT appear on the filtered stream.
	resp := postJob(t, srv.URL, "other", submitBody(2), nil)
	resp.Body.Close()

	sc := bufio.NewScanner(streamResp.Body)
	seen := make(map[string]int)
	deadline := time.AfterFunc(15*time.Second, func() { streamResp.Body.Close() })
	defer deadline.Stop()
	for len(seen) < len(ids) && sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Tenant != "acme" {
			t.Errorf("foreign tenant %s leaked onto filtered stream", ev.Tenant)
		}
		seen[ev.JobID]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("job %s: %d stream events, want 1", id, seen[id])
		}
	}
}

// The Prover interface is satisfied by both prover flavors — a compile
// check that the gateway composes with either backend.
var (
	_ Prover = (*core.BatchProver)(nil)
	_ Prover = (*core.ShardedProver)(nil)
)
