package ntt

import (
	"testing"

	"batchzk/internal/field"
)

func TestRootOfUnityOrders(t *testing.T) {
	for _, n := range []int{2, 4, 1024} {
		w, err := RootOfUnity(n)
		if err != nil {
			t.Fatal(err)
		}
		// w^n = 1, w^{n/2} = −1.
		var p field.Element
		p.ExpUint64(&w, uint64(n))
		if !p.IsOne() {
			t.Fatalf("n=%d: w^n != 1", n)
		}
		p.ExpUint64(&w, uint64(n/2))
		var minusOne field.Element
		one := field.One()
		minusOne.Neg(&one)
		if !p.Equal(&minusOne) {
			t.Fatalf("n=%d: w^(n/2) != -1", n)
		}
	}
	if _, err := RootOfUnity(3); err == nil {
		t.Fatal("accepted non-power-of-two")
	}
	if _, err := RootOfUnity(1 << 29); err == nil {
		t.Fatal("accepted size beyond 2-adicity")
	}
	if _, err := RootOfUnity(0); err == nil {
		t.Fatal("accepted zero")
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512} {
		orig := field.RandVector(n)
		a := append([]field.Element{}, orig...)
		if err := Forward(a); err != nil {
			t.Fatal(err)
		}
		if field.VectorEqual(a, orig) {
			t.Fatalf("n=%d: transform was identity", n)
		}
		if err := Inverse(a); err != nil {
			t.Fatal(err)
		}
		if !field.VectorEqual(a, orig) {
			t.Fatalf("n=%d: INTT(NTT(x)) != x", n)
		}
	}
}

func TestForwardMatchesDirectEvaluation(t *testing.T) {
	// NTT output k must equal p(ω^k) for the coefficient polynomial p.
	n := 8
	coeffs := field.RandVector(n)
	a := append([]field.Element{}, coeffs...)
	if err := Forward(a); err != nil {
		t.Fatal(err)
	}
	w, _ := RootOfUnity(n)
	for k := 0; k < n; k++ {
		var x, acc field.Element
		x.ExpUint64(&w, uint64(k))
		for j := n - 1; j >= 0; j-- {
			acc.Mul(&acc, &x)
			acc.Add(&acc, &coeffs[j])
		}
		if !acc.Equal(&a[k]) {
			t.Fatalf("NTT[%d] != p(w^%d)", k, k)
		}
	}
}

func TestPolyMulMatchesSchoolbook(t *testing.T) {
	a := field.RandVector(5)
	b := field.RandVector(9)
	got, err := PolyMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]field.Element, len(a)+len(b)-1)
	var t1 field.Element
	for i := range a {
		for j := range b {
			t1.Mul(&a[i], &b[j])
			want[i+j].Add(&want[i+j], &t1)
		}
	}
	if !field.VectorEqual(got, want) {
		t.Fatal("PolyMul != schoolbook")
	}
	if out, err := PolyMul(nil, b); err != nil || out != nil {
		t.Fatal("empty input should give nil, nil")
	}
}

func TestLinearity(t *testing.T) {
	n := 32
	x := field.RandVector(n)
	y := field.RandVector(n)
	var alpha field.Element
	alpha.Rand()
	// NTT(x + α·y) == NTT(x) + α·NTT(y)
	comb := make([]field.Element, n)
	var t1 field.Element
	for i := range comb {
		t1.Mul(&alpha, &y[i])
		comb[i].Add(&x[i], &t1)
	}
	fx := append([]field.Element{}, x...)
	fy := append([]field.Element{}, y...)
	fc := append([]field.Element{}, comb...)
	Forward(fx)
	Forward(fy)
	Forward(fc)
	for i := range fc {
		t1.Mul(&alpha, &fy[i])
		t1.Add(&t1, &fx[i])
		if !t1.Equal(&fc[i]) {
			t.Fatal("NTT is not linear")
		}
	}
}

func TestWorkButterflies(t *testing.T) {
	if WorkButterflies(1) != 0 {
		t.Fatal("size-1 transform should be free")
	}
	if got := WorkButterflies(8); got != 12 { // 8/2 * 3
		t.Fatalf("WorkButterflies(8) = %d", got)
	}
	if got := WorkButterflies(1 << 20); got != (1<<19)*20 {
		t.Fatalf("WorkButterflies(2^20) = %d", got)
	}
}

func BenchmarkForward4096(b *testing.B) {
	a := field.RandVector(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Forward(a); err != nil {
			b.Fatal(err)
		}
	}
}
