// Package ntt implements the number-theoretic transform over the 254-bit
// field — the other expensive operation (besides MSM) that dominates the
// Groth16/Plonk-family baselines in the paper's Table 1.
//
// The BN254 scalar field has 2-adicity 28 (r − 1 = 2²⁸·odd), so radix-2
// transforms exist for every size up to 2²⁸. The root of unity is derived
// from the multiplicative generator 5 at package init and verified.
package ntt

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync/atomic"

	"batchzk/internal/field"
	"batchzk/internal/par"
)

// parallelButterflies is the per-stage butterfly count below which a
// stage runs serially. Package var so the bit-identity tests can force
// the parallel path at small sizes.
var parallelButterflies = 2048

// MaxLogSize is the field's 2-adicity: the largest supported transform is
// 2^MaxLogSize points.
const MaxLogSize = 28

// rootOfUnity is a primitive 2^28-th root of unity.
var rootOfUnity field.Element

func init() {
	// ω = g^((r−1)/2^28) for the multiplicative generator g = 5.
	exp := new(big.Int).Sub(field.Modulus(), big.NewInt(1))
	exp.Rsh(exp, MaxLogSize)
	g := field.NewElement(5)
	rootOfUnity.Exp(&g, exp)
	// Verify: ω^(2^28) = 1 and ω^(2^27) ≠ 1.
	var check field.Element
	check = rootOfUnity
	for i := 0; i < MaxLogSize-1; i++ {
		check.Square(&check)
	}
	if check.IsOne() {
		panic("ntt: root of unity has order < 2^28")
	}
	check.Square(&check)
	if !check.IsOne() {
		panic("ntt: root of unity has order > 2^28")
	}
}

// RootOfUnity returns a primitive n-th root of unity for power-of-two n.
func RootOfUnity(n int) (field.Element, error) {
	if n <= 0 || n&(n-1) != 0 {
		return field.Element{}, fmt.Errorf("ntt: size %d is not a positive power of two", n)
	}
	logN := bits.TrailingZeros(uint(n))
	if logN > MaxLogSize {
		return field.Element{}, fmt.Errorf("ntt: size 2^%d exceeds the field's 2-adicity %d", logN, MaxLogSize)
	}
	w := rootOfUnity
	for i := 0; i < MaxLogSize-logN; i++ {
		w.Square(&w)
	}
	return w, nil
}

// Twiddle-table cache. A stage of size `length` uses the primitive
// length-th root wl = w^(n/length), which depends only on (direction,
// length) — never on the transform size n — so its power table
// [1, wl, …, wl^{length/2−1}] is shared by every transform that reaches
// that stage. Tables are built once and published through atomic
// pointers, making the hot-path lookup a single lock-free load; a lost
// build race publishes a bit-identical table, so last-write-wins is
// harmless. Stages above maxCachedTwiddleLog (table > ~4 MiB) fall back
// to the running-product butterflies with per-chunk ExpUint64 seeding,
// which produce the same canonical values.
const (
	dirForward = 0
	dirInverse = 1
)

// maxCachedTwiddleLog bounds cached table memory (Σ 2^{l−1} elements per
// direction ≈ 8 MiB each). Variable so tests can disable the cache and
// check bit-identity against the seeded path.
var maxCachedTwiddleLog = 18

var twiddleTables [2][MaxLogSize + 1]atomic.Pointer[[]field.Element]

// stageTwiddleTable returns the cached powers [1, wl, …, wl^{half−1}] for
// a stage of the given length, or nil when the stage is above the cache
// cap.
func stageTwiddleTable(dir int, wl *field.Element, length int) []field.Element {
	logLen := bits.TrailingZeros(uint(length))
	if logLen > maxCachedTwiddleLog {
		return nil
	}
	slot := &twiddleTables[dir][logLen]
	if p := slot.Load(); p != nil {
		return *p
	}
	half := length / 2
	tbl := make([]field.Element, half)
	tbl[0] = field.One()
	for j := 1; j < half; j++ {
		tbl[j].Mul(&tbl[j-1], wl)
	}
	slot.Store(&tbl)
	return tbl
}

// Forward computes the in-place NTT of a (length a power of two):
// a[k] ← Σ_j a[j]·ω^{jk}.
func Forward(a []field.Element) error {
	w, err := RootOfUnity(len(a))
	if err != nil {
		return err
	}
	transform(a, w, dirForward)
	return nil
}

// Inverse computes the in-place inverse NTT.
func Inverse(a []field.Element) error {
	w, err := RootOfUnity(len(a))
	if err != nil {
		return err
	}
	var wInv field.Element
	wInv.Inverse(&w)
	transform(a, wInv, dirInverse)
	var nInv field.Element
	nInv.SetUint64(uint64(len(a)))
	nInv.Inverse(&nInv)
	pw := 0
	if len(a) < parallelButterflies {
		pw = 1
	}
	par.ForWidth(pw, len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i].Mul(&a[i], &nInv)
		}
	})
	return nil
}

// transform is the iterative Cooley–Tukey butterfly network. Each stage's
// n/2 butterflies are independent (each touches a disjoint index pair),
// so a stage parallelizes along the recursion's natural split: early
// stages have many blocks and chunk across blocks; late stages have few
// large blocks and chunk the twiddle range within each block. Twiddles
// come from the shared per-stage tables where cached; above the cache cap
// a chunk seeds its running twiddle at wl^lo by exponentiation. Field
// multiplication and exponentiation are exact, so every mode is
// bit-identical to the serial sweep.
func transform(a []field.Element, w field.Element, dir int) {
	n := len(a)
	bitReverse(a)
	for length := 2; length <= n; length <<= 1 {
		// ω_length = w^(n/length)
		wl := w
		for m := n; m > length; m >>= 1 {
			wl.Square(&wl)
		}
		stageButterflies(a, wl, length, dir)
	}
}

// stageButterflies runs one stage's butterflies over every block.
func stageButterflies(a []field.Element, wl field.Element, length, dir int) {
	n := len(a)
	half := length / 2
	blocks := n / length
	tbl := stageTwiddleTable(dir, &wl, length)
	if n/2 < parallelButterflies {
		for start := 0; start < n; start += length {
			if tbl != nil {
				butterflyRangeTbl(a, tbl, start, half, 0, half)
			} else {
				butterflyRange(a, wl, start, half, 0, half, field.One())
			}
		}
		return
	}
	if blocks >= half {
		// Block-parallel: each chunk owns whole blocks (disjoint
		// [start, start+length) windows).
		par.For(blocks, func(lo, hi int) {
			for blk := lo; blk < hi; blk++ {
				if tbl != nil {
					butterflyRangeTbl(a, tbl, blk*length, half, 0, half)
				} else {
					butterflyRange(a, wl, blk*length, half, 0, half, field.One())
				}
			}
		})
		return
	}
	// Twiddle-parallel: split each block's j-range; chunk c reads its
	// twiddles straight from the table, or seeds at wl^lo above the cap.
	for start := 0; start < n; start += length {
		start := start
		par.For(half, func(lo, hi int) {
			if tbl != nil {
				butterflyRangeTbl(a, tbl, start, half, lo, hi)
				return
			}
			var wj0 field.Element
			wj0.ExpUint64(&wl, uint64(lo))
			butterflyRange(a, wl, start, half, lo, hi, wj0)
		})
	}
}

// butterflyRange applies butterflies j ∈ [jlo, jhi) of one block, with
// the twiddle for jlo supplied (wl^jlo).
func butterflyRange(a []field.Element, wl field.Element, start, half, jlo, jhi int, wj field.Element) {
	for j := jlo; j < jhi; j++ {
		var t field.Element
		t.Mul(&wj, &a[start+j+half])
		u := a[start+j]
		a[start+j].Add(&u, &t)
		a[start+j+half].Sub(&u, &t)
		wj.Mul(&wj, &wl)
	}
}

// butterflyRangeTbl is butterflyRange with twiddles read from the cached
// per-stage table instead of a running product.
func butterflyRangeTbl(a []field.Element, tbl []field.Element, start, half, jlo, jhi int) {
	for j := jlo; j < jhi; j++ {
		var t field.Element
		t.Mul(&tbl[j], &a[start+j+half])
		u := a[start+j]
		a[start+j].Add(&u, &t)
		a[start+j+half].Sub(&u, &t)
	}
}

func bitReverse(a []field.Element) {
	n := len(a)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
}

// PolyMul multiplies two coefficient vectors via NTT (cyclic-free: the
// result length is padded to the next power of two ≥ len(a)+len(b)−1).
func PolyMul(a, b []field.Element) ([]field.Element, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, nil
	}
	outLen := len(a) + len(b) - 1
	n := 1
	for n < outLen {
		n <<= 1
	}
	fa := make([]field.Element, n)
	fb := make([]field.Element, n)
	copy(fa, a)
	copy(fb, b)
	if err := Forward(fa); err != nil {
		return nil, err
	}
	if err := Forward(fb); err != nil {
		return nil, err
	}
	w := 0
	if n < parallelButterflies {
		w = 1
	}
	par.ForWidth(w, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fa[i].Mul(&fa[i], &fb[i])
		}
	})
	if err := Inverse(fa); err != nil {
		return nil, err
	}
	return fa[:outLen], nil
}

// WorkButterflies returns the butterfly count of one size-n transform
// (n/2·log₂n), the unit the Libsnark/Bellperson cost models charge.
func WorkButterflies(n int) int {
	if n <= 1 {
		return 0
	}
	return n / 2 * bits.Len(uint(n-1))
}
