package ntt

import (
	"sync"
	"testing"

	"batchzk/internal/field"
)

// TestTwiddleTableBitIdentity: transforms through the cached tables must
// reproduce the seeded running-product path bit-for-bit, in both
// directions, across the serial and both parallel regimes.
func TestTwiddleTableBitIdentity(t *testing.T) {
	lowerGrain(t) // force the parallel paths even at tiny sizes
	defaultCap := maxCachedTwiddleLog
	t.Cleanup(func() { maxCachedTwiddleLog = defaultCap })
	for _, logN := range []int{1, 3, 6, 9, 12} {
		n := 1 << uint(logN)
		in := field.RandVector(n)

		cached := append([]field.Element(nil), in...)
		if err := Forward(cached); err != nil {
			t.Fatal(err)
		}
		cachedInv := append([]field.Element(nil), cached...)
		if err := Inverse(cachedInv); err != nil {
			t.Fatal(err)
		}

		maxCachedTwiddleLog = -1 // reference pass: tables off
		seeded := append([]field.Element(nil), in...)
		if err := Forward(seeded); err != nil {
			t.Fatal(err)
		}
		seededInv := append([]field.Element(nil), seeded...)
		if err := Inverse(seededInv); err != nil {
			t.Fatal(err)
		}
		maxCachedTwiddleLog = defaultCap // next size's cached pass

		for i := range cached {
			if cached[i] != seeded[i] {
				t.Fatalf("n=%d: forward diverges at %d with twiddle tables", n, i)
			}
			if cachedInv[i] != seededInv[i] {
				t.Fatalf("n=%d: inverse diverges at %d with twiddle tables", n, i)
			}
			if cachedInv[i] != in[i] {
				t.Fatalf("n=%d: round trip not identity at %d", n, i)
			}
		}
	}
}

// TestTwiddleTableConcurrentBuild hammers the lock-free publication from
// many goroutines on first use; the race detector (make race) checks the
// atomic discipline, and every transform must still be correct.
func TestTwiddleTableConcurrentBuild(t *testing.T) {
	// Fresh slots so this test actually races the build.
	for d := 0; d < 2; d++ {
		for l := range twiddleTables[d] {
			twiddleTables[d][l].Store(nil)
		}
	}
	const n = 1 << 8
	in := field.RandVector(n)
	want := append([]field.Element(nil), in...)
	if err := Forward(want); err != nil {
		t.Fatal(err)
	}
	// Reset again so the concurrent runs start cold.
	for d := 0; d < 2; d++ {
		for l := range twiddleTables[d] {
			twiddleTables[d][l].Store(nil)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([][]field.Element, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := append([]field.Element(nil), in...)
			errs[g] = Forward(buf)
			outs[g] = buf
		}(g)
	}
	wg.Wait()
	for g := range outs {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		for i := range want {
			if outs[g][i] != want[i] {
				t.Fatalf("goroutine %d diverges at %d", g, i)
			}
		}
	}
}

func BenchmarkForwardCached4096(b *testing.B) {
	in := field.RandVector(4096)
	buf := make([]field.Element, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		if err := Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardUncached4096(b *testing.B) {
	old := maxCachedTwiddleLog
	maxCachedTwiddleLog = -1
	defer func() { maxCachedTwiddleLog = old }()
	in := field.RandVector(4096)
	buf := make([]field.Element, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		if err := Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}
