package ntt

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
	"batchzk/internal/par"
)

// Parallel-vs-serial bit-identity for the butterfly network: each stage's
// butterflies touch disjoint index pairs and chunk twiddles are seeded by
// exact exponentiation, so the transform must match the serial sweep
// exactly at any width, in both the block-parallel (many small blocks)
// and twiddle-parallel (few large blocks) regimes.

func lowerGrain(t *testing.T) {
	t.Helper()
	old := parallelButterflies
	parallelButterflies = 2
	t.Cleanup(func() {
		parallelButterflies = old
		par.SetWidth(0)
	})
}

func TestForwardBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrain(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(7)) // 4..256: sweeps both stage regimes
		a := make([]field.Element, n)
		for i := range a {
			var b [64]byte
			rng.Read(b[:])
			a[i].SetBytesWide(b[:])
		}
		par.SetWidth(1)
		want := append([]field.Element(nil), a...)
		if err := Forward(want); err != nil {
			return false
		}
		for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
			par.SetWidth(w)
			got := append([]field.Element(nil), a...)
			if err := Forward(got); err != nil {
				return false
			}
			if !field.VectorEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrain(t)
	a := field.RandVector(128)
	par.SetWidth(1)
	want := append([]field.Element(nil), a...)
	if err := Inverse(want); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		par.SetWidth(w)
		got := append([]field.Element(nil), a...)
		if err := Inverse(got); err != nil {
			t.Fatal(err)
		}
		if !field.VectorEqual(got, want) {
			t.Fatalf("width %d: inverse NTT differs from serial", w)
		}
	}
}

func TestPolyMulOddLengthsAcrossWidths(t *testing.T) {
	lowerGrain(t)
	// Odd, non-power-of-two operand lengths: the padded transform size
	// exercises mid-range chunk boundaries and the pointwise multiply.
	a := field.RandVector(17)
	b := field.RandVector(23)
	par.SetWidth(1)
	want, err := PolyMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		par.SetWidth(w)
		got, err := PolyMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !field.VectorEqual(got, want) {
			t.Fatalf("width %d: PolyMul differs from serial", w)
		}
	}
}
