package ntt

import (
	"math/big"
	"math/rand"
	"testing"

	"batchzk/internal/field"
)

// Differential property tests: the Cooley–Tukey butterfly network
// against an independent O(n²) DFT whose root of unity is re-derived
// from the field's multiplicative generator — so a shared bug in
// RootOfUnity cannot mask itself — across many sizes and with
// adversarial inputs (zeros, constants, single spikes).

// naiveDFT computes â[k] = Σ_j a[j]·ω^{jk} by the definition, with its
// own root: ω = 5^((r−1)/n).
func naiveDFT(t *testing.T, a []field.Element) []field.Element {
	t.Helper()
	n := len(a)
	exp := new(big.Int).Sub(field.Modulus(), big.NewInt(1))
	if new(big.Int).Mod(exp, big.NewInt(int64(n))).Sign() != 0 {
		t.Fatalf("n=%d does not divide r-1", n)
	}
	exp.Div(exp, big.NewInt(int64(n)))
	g := field.NewElement(5)
	var w field.Element
	w.Exp(&g, exp)
	out := make([]field.Element, n)
	for k := 0; k < n; k++ {
		var wk, x field.Element
		wk.ExpUint64(&w, uint64(k))
		x.SetOne()
		var acc, term field.Element
		for j := 0; j < n; j++ {
			term.Mul(&a[j], &x)
			acc.Add(&acc, &term)
			x.Mul(&x, &wk)
		}
		out[k] = acc
	}
	return out
}

// seededVector mixes uniform, zero, and spike inputs deterministically.
func seededVector(rng *rand.Rand, n int) []field.Element {
	out := make([]field.Element, n)
	switch rng.Intn(4) {
	case 0: // delta spike: DFT must be a geometric sequence
		out[rng.Intn(n)].SetOne()
	case 1: // constant: DFT concentrates in bin 0
		for i := range out {
			out[i].SetUint64(7)
		}
	default:
		for i := range out {
			var b [64]byte
			rng.Read(b[:])
			out[i].SetBytesWide(b[:])
		}
	}
	return out
}

func TestForwardMatchesNaiveDFTAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 16, 32, 128, 256} {
		for trial := 0; trial < 3; trial++ {
			orig := seededVector(rng, n)
			want := naiveDFT(t, orig)
			got := append([]field.Element{}, orig...)
			if err := Forward(got); err != nil {
				t.Fatal(err)
			}
			if !field.VectorEqual(got, want) {
				t.Fatalf("n=%d trial %d: butterfly network diverges from O(n^2) DFT", n, trial)
			}
			// And the round trip restores the input exactly.
			if err := Inverse(got); err != nil {
				t.Fatal(err)
			}
			if !field.VectorEqual(got, orig) {
				t.Fatalf("n=%d trial %d: INTT(NTT(x)) != x", n, trial)
			}
		}
	}
}

// TestInverseIsTrueLeftInverse: NTT(INTT(x)) = x too — Inverse is a
// two-sided inverse, not just a left one.
func TestInverseIsTrueLeftInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{2, 8, 64} {
		orig := seededVector(rng, n)
		a := append([]field.Element{}, orig...)
		if err := Inverse(a); err != nil {
			t.Fatal(err)
		}
		if err := Forward(a); err != nil {
			t.Fatal(err)
		}
		if !field.VectorEqual(a, orig) {
			t.Fatalf("n=%d: NTT(INTT(x)) != x", n)
		}
	}
}

// TestConvolutionTheorem: pointwise products in the evaluation domain
// equal polynomial products in the coefficient domain, at random
// degrees — the property PolyMul's correctness rides on.
func TestConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		la, lb := 1+rng.Intn(20), 1+rng.Intn(20)
		a := seededVector(rng, la)
		b := seededVector(rng, lb)
		got, err := PolyMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]field.Element, la+lb-1)
		var term field.Element
		for i := range a {
			for j := range b {
				term.Mul(&a[i], &b[j])
				want[i+j].Add(&want[i+j], &term)
			}
		}
		if !field.VectorEqual(got, want) {
			t.Fatalf("trial %d (deg %d x %d): PolyMul != schoolbook", trial, la-1, lb-1)
		}
	}
}
