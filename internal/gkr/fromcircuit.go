package gkr

import (
	"fmt"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
)

// FromCircuit compiles a general (DAG-shaped) arithmetic circuit into a
// layered GKR circuit, for delegating the circuit's *evaluation* to the
// GKR prover (output/zero-wire constraints are the front-end protocol's
// concern, not GKR's).
//
// The layering is layout-preserving and deliberately simple: every layer
// has one lane per circuit wire (padded to a power of two, plus a
// guaranteed-zero lane); a wire's value appears in its lane from its
// level onward, carried by pass-through Add(w, zero) gates. Production
// compilers do liveness analysis to shrink layers; this one optimizes for
// auditability.
//
// Sub gates are not supported — run circuit.RemoveSub first.
type CompiledCircuit struct {
	GKR *Circuit
	// src is the original circuit, for input-vector construction.
	src *circuit.Circuit
	// outputLanes maps GKR output positions to circuit outputs.
	outputLanes []int
	width       int
	zeroLane    int
}

// FromCircuit builds the layered form of c.
func FromCircuit(c *circuit.Circuit) (*CompiledCircuit, error) {
	// Level of each wire: inputs/constants at 0, gate outputs at
	// 1 + max(level of operands).
	level := make([]int, c.NumWires())
	isGate := make([]bool, c.NumWires())
	gateFor := make([]circuit.Gate, c.NumWires())
	maxLevel := 0
	for _, g := range c.Gates {
		if g.Op == circuit.OpSub {
			return nil, fmt.Errorf("gkr: Sub gates unsupported; run circuit.RemoveSub first")
		}
		l := 1 + maxI(level[g.A], level[g.B])
		level[g.Out] = l
		isGate[g.Out] = true
		gateFor[g.Out] = g
		if l > maxLevel {
			maxLevel = l
		}
	}
	if maxLevel == 0 {
		return nil, fmt.Errorf("gkr: circuit has no gates")
	}

	// Lane layout: lane w = wire w; one extra guaranteed-zero lane; pad
	// to a power of two.
	width := nextPow2(c.NumWires() + 1)
	zeroLane := width - 1 // padding lanes are zero; use the last one

	cc := &CompiledCircuit{src: c, width: width, zeroLane: zeroLane}
	gc := &Circuit{InputSize: width}
	// Layers are output-first: layer index i corresponds to level
	// maxLevel − i.
	for l := maxLevel; l >= 1; l-- {
		layer := make([]Gate, width)
		for w := 0; w < width; w++ {
			switch {
			case w < c.NumWires() && isGate[w] && level[w] == l:
				g := gateFor[w]
				op := Add
				if g.Op == circuit.OpMul {
					op = Mul
				}
				layer[w] = Gate{Op: op, In0: int(g.A), In1: int(g.B)}
			case w < c.NumWires() && level[w] < l:
				// Carry the value forward (inputs have level 0, so they
				// are carried from the base layer up).
				layer[w] = Gate{Op: Add, In0: w, In1: zeroLane}
			default:
				// Not yet defined at this level, or a padding lane: zero.
				layer[w] = Gate{Op: Add, In0: zeroLane, In1: zeroLane}
			}
		}
		gc.Layers = append(gc.Layers, layer)
	}
	cc.GKR = gc
	for _, o := range c.Outputs {
		cc.outputLanes = append(cc.outputLanes, int(o))
	}
	return cc, nil
}

// InputVector lays the circuit inputs out as the GKR base layer: the
// constant-one wire, public inputs, secret inputs and declared constants
// in their wire lanes, zero elsewhere.
func (cc *CompiledCircuit) InputVector(public, secret []field.Element) ([]field.Element, error) {
	c := cc.src
	if len(public) != c.NumPublic || len(secret) != c.NumSecret {
		return nil, fmt.Errorf("gkr: want %d public / %d secret inputs, got %d / %d",
			c.NumPublic, c.NumSecret, len(public), len(secret))
	}
	in := make([]field.Element, cc.width)
	in[0] = field.One()
	copy(in[1:], public)
	copy(in[1+c.NumPublic:], secret)
	for i, cw := range c.ConstWires {
		in[cw] = c.Constants[i]
	}
	return in, nil
}

// Outputs extracts the circuit's declared outputs from the GKR proof's
// (width-sized) output layer.
func (cc *CompiledCircuit) Outputs(gkrOutputs []field.Element) ([]field.Element, error) {
	if len(gkrOutputs) != cc.width {
		return nil, fmt.Errorf("gkr: output layer has %d lanes, want %d", len(gkrOutputs), cc.width)
	}
	out := make([]field.Element, len(cc.outputLanes))
	for i, lane := range cc.outputLanes {
		out[i] = gkrOutputs[lane]
	}
	return out, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
