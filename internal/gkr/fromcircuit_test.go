package gkr

import (
	"testing"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
	"batchzk/internal/transcript"
)

// buildDAG returns y = (x + w)·w − 3 (contains a Sub, add, mul, const).
func buildDAG(t testing.TB) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	x := b.PublicInput()
	w := b.SecretInput()
	s := b.Add(x, w)
	m := b.Mul(s, w)
	y := b.Sub(m, b.Const(field.NewElement(3)))
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRemoveSub(t *testing.T) {
	c := buildDAG(t)
	flat, err := circuit.RemoveSub(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range flat.Gates {
		if g.Op == circuit.OpSub {
			t.Fatal("Sub gate survived")
		}
	}
	// Same function: y = (4+6)·6 − 3 = 57.
	pub := []field.Element{field.NewElement(4)}
	sec := []field.Element{field.NewElement(6)}
	w1, err := c.Evaluate(pub, sec)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := flat.Evaluate(pub, sec)
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := c.OutputValues(w1)
	o2, _ := flat.OutputValues(w2)
	if !o1[0].Equal(&o2[0]) {
		t.Fatal("RemoveSub changed the function")
	}
	if err := flat.CheckWitness(w2); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSubPreservesConstraints(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.PublicInput()
	y := b.PublicInput()
	b.AssertZero(b.Sub(x, y)) // x == y via a Sub-based zero wire
	b.Output(b.Mul(x, y))
	c, _ := b.Build()
	flat, err := circuit.RemoveSub(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.ZeroWires) != len(c.ZeroWires) {
		t.Fatal("zero wires lost")
	}
	same := []field.Element{field.NewElement(5), field.NewElement(5)}
	w, _ := flat.Evaluate(same, nil)
	if err := flat.CheckWitness(w); err != nil {
		t.Fatal(err)
	}
	diff := []field.Element{field.NewElement(5), field.NewElement(6)}
	w, _ = flat.Evaluate(diff, nil)
	if err := flat.CheckWitness(w); err == nil {
		t.Fatal("violated constraint survived RemoveSub")
	}
}

func TestFromCircuitEvaluation(t *testing.T) {
	c := buildDAG(t)
	flat, err := circuit.RemoveSub(c)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := FromCircuit(flat)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.GKR.Validate(); err != nil {
		t.Fatal(err)
	}
	pub := []field.Element{field.NewElement(4)}
	sec := []field.Element{field.NewElement(6)}
	in, err := cc.InputVector(pub, sec)
	if err != nil {
		t.Fatal(err)
	}
	values, err := cc.GKR.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := cc.Outputs(values[0])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := outs[0].Uint64(); v != 57 {
		t.Fatalf("GKR evaluation = %d, want 57", v)
	}
	// Sub circuits are rejected without normalization.
	if _, err := FromCircuit(c); err == nil {
		t.Fatal("Sub circuit accepted")
	}
	if _, err := cc.InputVector(nil, sec); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := cc.Outputs(values[1]); err == nil && len(values[1]) != cc.width {
		t.Fatal("wrong layer width accepted")
	}
}

func TestFromCircuitProveVerify(t *testing.T) {
	// End to end: random DAG circuit → layered form → GKR proof.
	c, err := circuit.RandomCircuit(24, 2, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := circuit.RemoveSub(c)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := FromCircuit(flat)
	if err != nil {
		t.Fatal(err)
	}
	pub, sec := field.RandVector(2), field.RandVector(2)
	in, err := cc.InputVector(pub, sec)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, _, err := Prove(cc.GKR, in, transcript.New(Domain))
	if err != nil {
		t.Fatal(err)
	}
	gkrOuts, err := VerifyPublic(cc.GKR, in, proof, transcript.New(Domain))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := cc.Outputs(gkrOuts)
	if err != nil {
		t.Fatal(err)
	}
	// Matches direct circuit evaluation.
	w, _ := flat.Evaluate(pub, sec)
	want, _ := flat.OutputValues(w)
	for i := range outs {
		if !outs[i].Equal(&want[i]) {
			t.Fatalf("output %d differs from circuit evaluation", i)
		}
	}
}
