// Package gkr implements the GKR interactive proof for layered arithmetic
// circuits — the protocol core of the sum-check-based ZKP family the
// paper targets (Libra, Virgo, Virgo++, Orion in Table 1), with the
// linear-time two-phase prover of Libra built on the affine-product
// sum-check.
//
// For a layered circuit with values V_0 (outputs) … V_d (inputs), each
// layer satisfies
//
//	Ṽ_i(z) = Σ_{x,y} mul_i(z,x,y)·Ṽ_{i+1}(x)·Ṽ_{i+1}(y)
//	               + add_i(z,x,y)·(Ṽ_{i+1}(x) + Ṽ_{i+1}(y)).
//
// A claim about layer i is reduced to two claims about layer i+1 by a
// 2s-round sum-check, run as two phases of s rounds each: phase 1 folds x
// with prover tables h(x) = Σ_y mul·Ṽ(y) + add and g(x) = Σ_y add·Ṽ(y)
// (each built in O(#gates)); phase 2 folds y with tables conditioned on
// the bound u. The two resulting claims Ṽ_{i+1}(u), Ṽ_{i+1}(v) are merged
// with random α, β into the next layer's claim. At the input layer the
// claims are settled either directly (public input) or by a polynomial-
// commitment opening (Prover/VerifierCommitted — the Virgo/Orion
// composition, using the pcs package's batched multi-point opening).
package gkr

import (
	"errors"
	"fmt"
	"math/bits"

	"batchzk/internal/field"
	"batchzk/internal/pcs"
	"batchzk/internal/poly"
	"batchzk/internal/sumcheck"
	"batchzk/internal/transcript"
)

// GateOp is a layered-circuit gate type.
type GateOp uint8

// Gate operations.
const (
	Add GateOp = iota
	Mul
)

// Gate is one gate of a layer; In0/In1 index into the next layer's
// (or, for the last layer, the input vector's) values.
type Gate struct {
	Op       GateOp
	In0, In1 int
}

// Circuit is a layered arithmetic circuit: Layers[0] computes the outputs
// and Layers[len-1] reads the inputs. Every layer's gate count and the
// input size must be powers of two (pad with zero-producing gates and
// zero inputs).
type Circuit struct {
	InputSize int
	Layers    [][]Gate
}

// Validate checks the structural invariants.
func (c *Circuit) Validate() error {
	if c.InputSize < 2 || c.InputSize&(c.InputSize-1) != 0 {
		return fmt.Errorf("gkr: input size %d is not a power of two ≥ 2", c.InputSize)
	}
	if len(c.Layers) == 0 {
		return fmt.Errorf("gkr: no layers")
	}
	for i, layer := range c.Layers {
		n := len(layer)
		if n < 2 || n&(n-1) != 0 {
			return fmt.Errorf("gkr: layer %d has %d gates (not a power of two ≥ 2)", i, n)
		}
		width := c.InputSize
		if i+1 < len(c.Layers) {
			width = len(c.Layers[i+1])
		}
		for g, gate := range layer {
			if gate.In0 < 0 || gate.In0 >= width || gate.In1 < 0 || gate.In1 >= width {
				return fmt.Errorf("gkr: layer %d gate %d references out-of-range input", i, g)
			}
		}
	}
	return nil
}

// Depth returns the number of layers.
func (c *Circuit) Depth() int { return len(c.Layers) }

// OutputSize returns the (padded) output count.
func (c *Circuit) OutputSize() int { return len(c.Layers[0]) }

// Evaluate runs the circuit, returning the values of every layer:
// values[0] = outputs … values[depth] = the (padded) input.
func (c *Circuit) Evaluate(input []field.Element) ([][]field.Element, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(input) > c.InputSize {
		return nil, fmt.Errorf("gkr: %d inputs exceed input size %d", len(input), c.InputSize)
	}
	padded := make([]field.Element, c.InputSize)
	copy(padded, input)
	values := make([][]field.Element, c.Depth()+1)
	values[c.Depth()] = padded
	for i := c.Depth() - 1; i >= 0; i-- {
		prev := values[i+1]
		out := make([]field.Element, len(c.Layers[i]))
		for g, gate := range c.Layers[i] {
			switch gate.Op {
			case Add:
				out[g].Add(&prev[gate.In0], &prev[gate.In1])
			case Mul:
				out[g].Mul(&prev[gate.In0], &prev[gate.In1])
			default:
				return nil, fmt.Errorf("gkr: unknown op %d", gate.Op)
			}
		}
		values[i] = out
	}
	return values, nil
}

// LayerProof is the two-phase sum-check transcript of one layer
// reduction plus the two carried claims.
type LayerProof struct {
	Phase1 *sumcheck.ProductProof
	Phase2 *sumcheck.ProductProof
	VU, VV field.Element // claimed Ṽ_{i+1}(u), Ṽ_{i+1}(v)
}

// Proof is a complete GKR proof: the claimed outputs plus one layer proof
// per circuit layer. The input-layer claims are settled by the caller
// (directly for public inputs, via a commitment opening for secret ones).
type Proof struct {
	Outputs []field.Element
	Layers  []LayerProof
}

// Domain is the Fiat–Shamir domain label.
const Domain = "batchzk/gkr"

// Prove generates a GKR proof for the circuit on the given input.
// finalU/finalV/claimU/claimV describe the input-layer obligation the
// verifier must settle: Ṽ_input(finalU) = claimU and likewise for V.
func Prove(c *Circuit, input []field.Element, tr *transcript.Transcript) (*Proof, []field.Element, []field.Element, error) {
	values, err := c.Evaluate(input)
	if err != nil {
		return nil, nil, nil, err
	}
	return ProveFromValues(c, values, tr)
}

// ProveFromValues runs the GKR prover over precomputed layer values (as
// returned by Evaluate) — the form the batch pipeline uses, where
// evaluation and proving live in different stages.
func ProveFromValues(c *Circuit, values [][]field.Element, tr *transcript.Transcript) (*Proof, []field.Element, []field.Element, error) {
	proof := &Proof{Outputs: values[0]}
	tr.AppendElements("gkr/outputs", proof.Outputs)
	outBits := log2(len(values[0]))
	r := tr.ChallengeElements("gkr/r", outBits)

	// eWeights[z] is the current layer's claim weight table; initially
	// eq(r, z), later α·eq(u,z) + β·eq(v,z).
	eWeights := poly.EqTable(r)
	outML, err := poly.NewMultilinear(append([]field.Element{}, values[0]...))
	if err != nil {
		return nil, nil, nil, err
	}
	claim, err := outML.Evaluate(r)
	if err != nil {
		return nil, nil, nil, err
	}

	var u, v []field.Element
	for i := 0; i < c.Depth(); i++ {
		layer := c.Layers[i]
		next := values[i+1]
		sNext := log2(len(next))

		// Phase 1 tables over x.
		h := make([]field.Element, len(next))
		g := make([]field.Element, len(next))
		var t field.Element
		for z, gate := range layer {
			switch gate.Op {
			case Mul:
				t.Mul(&eWeights[z], &next[gate.In1])
				h[gate.In0].Add(&h[gate.In0], &t)
			case Add:
				h[gate.In0].Add(&h[gate.In0], &eWeights[z])
				t.Mul(&eWeights[z], &next[gate.In1])
				g[gate.In0].Add(&g[gate.In0], &t)
			}
		}
		hML, _ := poly.NewMultilinear(h)
		vML, _ := poly.NewMultilinear(append([]field.Element{}, next...))
		gML, _ := poly.NewMultilinear(g)
		p1, pointU, finals1, err := sumcheck.ProveAffineProduct(hML, vML, gML, claim, tr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("gkr: layer %d phase 1: %w", i, err)
		}
		u = pointU
		vu := finals1[1]
		tr.AppendElement("gkr/vu", &vu)

		// The running claim after phase 1 = h̃(u)·Ṽ(u) + g̃(u).
		var claim2 field.Element
		claim2.Mul(&finals1[0], &finals1[1])
		claim2.Add(&claim2, &finals1[2])

		// Phase 2 tables over y, conditioned on u.
		eqU := poly.EqTable(u)
		a2 := make([]field.Element, len(next))
		b2 := make([]field.Element, len(next))
		for z, gate := range layer {
			var w field.Element
			w.Mul(&eWeights[z], &eqU[gate.In0])
			switch gate.Op {
			case Mul:
				t.Mul(&w, &vu)
				a2[gate.In1].Add(&a2[gate.In1], &t)
			case Add:
				a2[gate.In1].Add(&a2[gate.In1], &w)
				t.Mul(&w, &vu)
				b2[gate.In1].Add(&b2[gate.In1], &t)
			}
		}
		aML, _ := poly.NewMultilinear(a2)
		vML2, _ := poly.NewMultilinear(append([]field.Element{}, next...))
		bML, _ := poly.NewMultilinear(b2)
		p2, pointV, finals2, err := sumcheck.ProveAffineProduct(aML, vML2, bML, claim2, tr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("gkr: layer %d phase 2: %w", i, err)
		}
		v = pointV
		vv := finals2[1]
		tr.AppendElement("gkr/vv", &vv)

		proof.Layers = append(proof.Layers, LayerProof{Phase1: p1, Phase2: p2, VU: vu, VV: vv})

		// Merge the two claims for the next layer.
		alpha := tr.ChallengeElement("gkr/alpha")
		beta := tr.ChallengeElement("gkr/beta")
		var cu, cv field.Element
		cu.Mul(&alpha, &vu)
		cv.Mul(&beta, &vv)
		claim.Add(&cu, &cv)
		if i+1 < c.Depth() {
			eqV := poly.EqTable(v)
			eWeights = make([]field.Element, 1<<sNext)
			for z := range eWeights {
				var wu, wv field.Element
				wu.Mul(&alpha, &eqU[z])
				wv.Mul(&beta, &eqV[z])
				eWeights[z].Add(&wu, &wv)
			}
		}
	}
	return proof, u, v, nil
}

// ErrReject is returned when a GKR proof fails verification.
var ErrReject = errors.New("gkr: proof rejected")

// Verify checks a GKR proof. It returns the input-layer obligation:
// points u, v and claims Ṽ_input(u), Ṽ_input(v), which the caller settles
// against the public input (VerifyPublic) or a commitment opening.
func Verify(c *Circuit, proof *Proof, tr *transcript.Transcript) (u, v []field.Element, vu, vv field.Element, err error) {
	if err = c.Validate(); err != nil {
		return
	}
	if proof == nil || len(proof.Layers) != c.Depth() || len(proof.Outputs) != c.OutputSize() {
		err = fmt.Errorf("%w: malformed proof", ErrReject)
		return
	}
	tr.AppendElements("gkr/outputs", proof.Outputs)
	outBits := log2(len(proof.Outputs))
	r := tr.ChallengeElements("gkr/r", outBits)
	outML, mlErr := poly.NewMultilinear(append([]field.Element{}, proof.Outputs...))
	if mlErr != nil {
		err = mlErr
		return
	}
	claim, mlErr := outML.Evaluate(r)
	if mlErr != nil {
		err = mlErr
		return
	}

	// Weight evaluator: eTable over the current layer's indices.
	eWeights := poly.EqTable(r)
	for i := 0; i < c.Depth(); i++ {
		lp := &proof.Layers[i]
		if lp.Phase1 == nil || lp.Phase2 == nil {
			err = fmt.Errorf("%w: layer %d missing phases", ErrReject, i)
			return
		}
		var expected1, expected2 field.Element
		u, expected1, err = sumcheck.VerifyAffineProduct(claim, lp.Phase1, tr)
		if err != nil {
			err = fmt.Errorf("%w: layer %d phase 1: %v", ErrReject, i, err)
			return
		}
		tr.AppendElement("gkr/vu", &lp.VU)
		v, expected2, err = sumcheck.VerifyAffineProduct(expected1, lp.Phase2, tr)
		if err != nil {
			err = fmt.Errorf("%w: layer %d phase 2: %v", ErrReject, i, err)
			return
		}
		tr.AppendElement("gkr/vv", &lp.VV)

		// Final wiring check: expected2 must equal
		// Σ_gates e[z]·eq(u,a)·eq(v,b)·(mul ? VU·VV : VU+VV).
		eqU := poly.EqTable(u)
		eqV := poly.EqTable(v)
		var mulVal, addVal, want, t field.Element
		mulVal.Mul(&lp.VU, &lp.VV)
		addVal.Add(&lp.VU, &lp.VV)
		for z, gate := range c.Layers[i] {
			t.Mul(&eWeights[z], &eqU[gate.In0])
			t.Mul(&t, &eqV[gate.In1])
			if gate.Op == Mul {
				t.Mul(&t, &mulVal)
			} else {
				t.Mul(&t, &addVal)
			}
			want.Add(&want, &t)
		}
		if !want.Equal(&expected2) {
			err = fmt.Errorf("%w: layer %d wiring check", ErrReject, i)
			return
		}

		alpha := tr.ChallengeElement("gkr/alpha")
		beta := tr.ChallengeElement("gkr/beta")
		var cu, cv field.Element
		cu.Mul(&alpha, &lp.VU)
		cv.Mul(&beta, &lp.VV)
		claim.Add(&cu, &cv)
		vu, vv = lp.VU, lp.VV
		if i+1 < c.Depth() {
			width := len(c.Layers[i+1])
			eWeights = make([]field.Element, width)
			eqVt := poly.EqTable(v)
			for z := 0; z < width; z++ {
				var wu, wv field.Element
				wu.Mul(&alpha, &eqU[z])
				wv.Mul(&beta, &eqVt[z])
				eWeights[z].Add(&wu, &wv)
			}
		}
	}
	return u, v, vu, vv, nil
}

// VerifyPublic verifies a GKR proof for a public input, settling the
// input-layer claims by direct evaluation. It returns the verified
// outputs.
func VerifyPublic(c *Circuit, input []field.Element, proof *Proof, tr *transcript.Transcript) ([]field.Element, error) {
	u, v, vu, vv, err := Verify(c, proof, tr)
	if err != nil {
		return nil, err
	}
	padded := make([]field.Element, c.InputSize)
	copy(padded, input)
	inML, err := poly.NewMultilinear(padded)
	if err != nil {
		return nil, err
	}
	gotU, err := inML.Evaluate(u)
	if err != nil {
		return nil, err
	}
	gotV, err := inML.Evaluate(v)
	if err != nil {
		return nil, err
	}
	if !gotU.Equal(&vu) || !gotV.Equal(&vv) {
		return nil, fmt.Errorf("%w: input-layer claims", ErrReject)
	}
	return proof.Outputs, nil
}

// CommittedProof is a GKR proof whose input layer is settled by a
// polynomial-commitment opening — the Virgo/Orion composition, making
// the input a committed witness the verifier never sees.
type CommittedProof struct {
	GKR        *Proof
	Commitment pcs.Commitment
	Opening    *pcs.MultiEvalProof
}

// ProveCommitted commits to the (secret) input and produces a GKR proof
// plus the batched opening of the input polynomial at the two final
// points.
func ProveCommitted(c *Circuit, input []field.Element, params pcs.Params, tr *transcript.Transcript) (*CommittedProof, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	padded := make([]field.Element, c.InputSize)
	copy(padded, input)
	st, err := pcs.Commit(padded, params)
	if err != nil {
		return nil, err
	}
	comm := st.Commitment()
	tr.AppendDigest("gkr/input-commitment", comm.Root)
	values, err := c.Evaluate(input)
	if err != nil {
		return nil, err
	}
	proof, u, v, err := ProveFromValues(c, values, tr)
	if err != nil {
		return nil, err
	}
	opening, _, err := st.ProveEvalMulti([][]field.Element{u, v}, tr)
	if err != nil {
		return nil, err
	}
	return &CommittedProof{GKR: proof, Commitment: comm, Opening: opening}, nil
}

// VerifyCommitted checks a committed-input GKR proof and returns the
// verified outputs.
func VerifyCommitted(c *Circuit, cp *CommittedProof, params pcs.Params, tr *transcript.Transcript) ([]field.Element, error) {
	if cp == nil || cp.GKR == nil || cp.Opening == nil {
		return nil, fmt.Errorf("%w: malformed committed proof", ErrReject)
	}
	tr.AppendDigest("gkr/input-commitment", cp.Commitment.Root)
	u, v, vu, vv, err := Verify(c, cp.GKR, tr)
	if err != nil {
		return nil, err
	}
	err = pcs.VerifyEvalMulti(cp.Commitment, [][]field.Element{u, v},
		[]field.Element{vu, vv}, cp.Opening, params, tr)
	if err != nil {
		return nil, fmt.Errorf("%w: input opening: %v", ErrReject, err)
	}
	return cp.GKR.Outputs, nil
}

func log2(n int) int { return bits.TrailingZeros(uint(n)) }
