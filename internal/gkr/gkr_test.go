package gkr

import (
	"errors"
	"math/rand"
	"testing"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/pcs"
	"batchzk/internal/transcript"
)

// smallCircuit: inputs (a,b,c,d) →
// layer1: [a·b, c+d, a+b, c·d]
// layer0 (outputs): [(a·b)·(c+d), (a+b)+(c·d)]
func smallCircuit() *Circuit {
	return &Circuit{
		InputSize: 4,
		Layers: [][]Gate{
			{{Op: Mul, In0: 0, In1: 1}, {Op: Add, In0: 2, In1: 3}},
			{{Op: Mul, In0: 0, In1: 1}, {Op: Add, In0: 2, In1: 3}, {Op: Add, In0: 0, In1: 1}, {Op: Mul, In0: 2, In1: 3}},
		},
	}
}

func TestEvaluate(t *testing.T) {
	c := smallCircuit()
	in := []field.Element{
		field.NewElement(2), field.NewElement(3),
		field.NewElement(5), field.NewElement(7),
	}
	values, err := c.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	// layer1 = [6, 12, 5, 35]; outputs = [6·12, 5+35] = [72, 40].
	if v, _ := values[0][0].Uint64(); v != 72 {
		t.Fatalf("out0 = %d", v)
	}
	if v, _ := values[0][1].Uint64(); v != 40 {
		t.Fatalf("out1 = %d", v)
	}
}

func TestValidate(t *testing.T) {
	c := smallCircuit()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Circuit{InputSize: 3, Layers: c.Layers}
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two input accepted")
	}
	bad = &Circuit{InputSize: 4}
	if bad.Validate() == nil {
		t.Fatal("empty circuit accepted")
	}
	bad = &Circuit{InputSize: 4, Layers: [][]Gate{{{Op: Add, In0: 0, In1: 9}}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range wiring accepted")
	}
	if _, err := c.Evaluate(field.RandVector(5)); err == nil {
		t.Fatal("oversized input accepted")
	}
}

func TestProveVerifyPublic(t *testing.T) {
	c := smallCircuit()
	in := field.RandVector(4)
	proof, _, _, err := Prove(c, in, transcript.New(Domain))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := VerifyPublic(c, in, proof, transcript.New(Domain))
	if err != nil {
		t.Fatal(err)
	}
	values, _ := c.Evaluate(in)
	for i := range outs {
		if !outs[i].Equal(&values[0][i]) {
			t.Fatalf("output %d mismatch", i)
		}
	}
}

// randomCircuit builds a deterministic random layered circuit.
func randomCircuit(depth, width, inputSize int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{InputSize: inputSize}
	for l := 0; l < depth; l++ {
		// The first layer generated is prepended last → it is the deepest
		// layer, reading the input.
		prevWidth := width
		if l == 0 {
			prevWidth = inputSize
		}
		layer := make([]Gate, width)
		for g := range layer {
			op := Add
			if rng.Intn(2) == 0 {
				op = Mul
			}
			layer[g] = Gate{Op: op, In0: rng.Intn(prevWidth), In1: rng.Intn(prevWidth)}
		}
		// Layers are stored output-first; build in reverse.
		c.Layers = append([][]Gate{layer}, c.Layers...)
	}
	return c
}

func TestRandomCircuits(t *testing.T) {
	for _, cfg := range []struct{ depth, width, in int }{
		{1, 2, 4}, {3, 8, 8}, {5, 16, 16}, {4, 64, 32},
	} {
		c := randomCircuit(cfg.depth, cfg.width, cfg.in, int64(cfg.depth*100+cfg.width))
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		in := field.RandVector(cfg.in)
		proof, _, _, err := Prove(c, in, transcript.New(Domain))
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if _, err := VerifyPublic(c, in, proof, transcript.New(Domain)); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}

func TestRejectWrongInput(t *testing.T) {
	c := smallCircuit()
	in := field.RandVector(4)
	proof, _, _, err := Prove(c, in, transcript.New(Domain))
	if err != nil {
		t.Fatal(err)
	}
	other := field.RandVector(4)
	if _, err := VerifyPublic(c, other, proof, transcript.New(Domain)); !errors.Is(err, ErrReject) {
		t.Fatalf("proof accepted for a different input: %v", err)
	}
}

func TestRejectTamperedProof(t *testing.T) {
	c := randomCircuit(3, 8, 8, 42)
	in := field.RandVector(8)
	one := field.One()

	mutate := func(f func(*Proof)) error {
		proof, _, _, err := Prove(c, in, transcript.New(Domain))
		if err != nil {
			t.Fatal(err)
		}
		f(proof)
		_, err = VerifyPublic(c, in, proof, transcript.New(Domain))
		return err
	}

	if err := mutate(func(p *Proof) { p.Outputs[0].Add(&p.Outputs[0], &one) }); err == nil {
		t.Fatal("tampered outputs accepted")
	}
	if err := mutate(func(p *Proof) { p.Layers[1].VU.Add(&p.Layers[1].VU, &one) }); err == nil {
		t.Fatal("tampered VU accepted")
	}
	if err := mutate(func(p *Proof) { p.Layers[0].VV.Add(&p.Layers[0].VV, &one) }); err == nil {
		t.Fatal("tampered VV accepted")
	}
	if err := mutate(func(p *Proof) {
		p.Layers[2].Phase1.Rounds[0].At2.Add(&p.Layers[2].Phase1.Rounds[0].At2, &one)
	}); err == nil {
		t.Fatal("tampered phase-1 round accepted")
	}
	if err := mutate(func(p *Proof) {
		p.Layers[0].Phase2.Rounds[1].At0.Add(&p.Layers[0].Phase2.Rounds[1].At0, &one)
	}); err == nil {
		t.Fatal("tampered phase-2 round accepted")
	}
	if err := mutate(func(p *Proof) { p.Layers = p.Layers[:len(p.Layers)-1] }); err == nil {
		t.Fatal("dropped layer accepted")
	}
	if _, _, _, _, err := Verify(c, nil, transcript.New(Domain)); err == nil {
		t.Fatal("nil proof accepted")
	}
}

func TestCommittedInput(t *testing.T) {
	c := randomCircuit(3, 16, 16, 7)
	secret := field.RandVector(16)
	params := pcs.Params{NumRows: 1, NumCols: 16, NumOpenings: 8, Enc: encoder.DefaultParams()}
	cp, err := ProveCommitted(c, secret, params, transcript.New(Domain))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := VerifyCommitted(c, cp, params, transcript.New(Domain))
	if err != nil {
		t.Fatal(err)
	}
	values, _ := c.Evaluate(secret)
	for i := range outs {
		if !outs[i].Equal(&values[0][i]) {
			t.Fatalf("output %d mismatch", i)
		}
	}

	// Tampered output must fail.
	cp2, _ := ProveCommitted(c, secret, params, transcript.New(Domain))
	one := field.One()
	cp2.GKR.Outputs[0].Add(&cp2.GKR.Outputs[0], &one)
	if _, err := VerifyCommitted(c, cp2, params, transcript.New(Domain)); err == nil {
		t.Fatal("tampered committed proof accepted")
	}
	// A proof generated from a different witness fails against the first
	// commitment (swap openings).
	cp3, _ := ProveCommitted(c, field.RandVector(16), params, transcript.New(Domain))
	cp3.Commitment = cp.Commitment
	if _, err := VerifyCommitted(c, cp3, params, transcript.New(Domain)); err == nil {
		t.Fatal("cross-witness committed proof accepted")
	}
	if _, err := VerifyCommitted(c, nil, params, transcript.New(Domain)); err == nil {
		t.Fatal("nil committed proof accepted")
	}
}

func TestDeterministicProofs(t *testing.T) {
	c := smallCircuit()
	in := field.RandVector(4)
	p1, _, _, _ := Prove(c, in, transcript.New(Domain))
	p2, _, _, _ := Prove(c, in, transcript.New(Domain))
	if !p1.Layers[0].VU.Equal(&p2.Layers[0].VU) || !p1.Layers[1].VV.Equal(&p2.Layers[1].VV) {
		t.Fatal("proofs not deterministic")
	}
}
