package sha2

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSum256MatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("abc"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{0xaa}, 55), // padding fits in one block
		bytes.Repeat([]byte{0xbb}, 56), // padding spills to a second block
		bytes.Repeat([]byte{0xcc}, 63),
		bytes.Repeat([]byte{0xdd}, 64),
		bytes.Repeat([]byte{0xee}, 65),
		bytes.Repeat([]byte{0x11}, 1000),
	}
	for i, c := range cases {
		got := Sum256(c)
		want := sha256.Sum256(c)
		if got != Digest(want) {
			t.Fatalf("case %d: Sum256 mismatch", i)
		}
	}
}

func TestSum256MatchesStdlibProperty(t *testing.T) {
	f := func(data []byte) bool {
		got := Sum256(data)
		want := sha256.Sum256(data)
		return got == Digest(want)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHasherMatchesSum256(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := make([]byte, 3000)
	r.Read(data)
	h := NewHasher()
	// Write in irregular pieces to stress buffering.
	for i := 0; i < len(data); {
		n := r.Intn(97) + 1
		if i+n > len(data) {
			n = len(data) - i
		}
		h.Write(data[i : i+n])
		i += n
	}
	if got, want := h.Sum(), Sum256(data); got != want {
		t.Fatalf("Hasher digest mismatch")
	}
	// Sum must not consume the state.
	h.Write([]byte("more"))
	want := Sum256(append(append([]byte{}, data...), []byte("more")...))
	if got := h.Sum(); got != want {
		t.Fatalf("Hasher continuation mismatch")
	}
	h.Reset()
	h.Write([]byte("abc"))
	if got, want := h.Sum(), Sum256([]byte("abc")); got != want {
		t.Fatalf("Reset mismatch")
	}
}

func TestCompressIsRawCompression(t *testing.T) {
	// Compress of block B must equal the stdlib hash of B *without padding*:
	// emulate by comparing against a manual single compressBlock run — i.e.
	// Compress is deterministic and differs from the padded hash.
	var block [BlockSize]byte
	for i := range block {
		block[i] = byte(i)
	}
	d1 := Compress(&block)
	d2 := Compress(&block)
	if d1 != d2 {
		t.Fatalf("Compress not deterministic")
	}
	padded := Sum256(block[:])
	if d1 == padded {
		t.Fatalf("Compress should not include padding/length strengthening")
	}
	// Flipping one input bit must change the digest (sanity avalanche check).
	block[0] ^= 1
	if Compress(&block) == d1 {
		t.Fatalf("Compress ignored an input bit")
	}
}

func TestCompress2(t *testing.T) {
	var l, r Digest
	for i := range l {
		l[i] = byte(i)
		r[i] = byte(255 - i)
	}
	got := Compress2(&l, &r)
	var block [BlockSize]byte
	copy(block[:32], l[:])
	copy(block[32:], r[:])
	if want := Compress(&block); got != want {
		t.Fatalf("Compress2 != Compress(l‖r)")
	}
	if Compress2(&l, &r) == Compress2(&r, &l) {
		t.Fatalf("Compress2 should be order-sensitive")
	}
}

func BenchmarkCompress(b *testing.B) {
	var block [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		block[0] = byte(i)
		_ = Compress(&block)
	}
}

func BenchmarkSum256_1KiB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		_ = Sum256(data)
	}
}

// BenchmarkCompress2 measures the interior-node hash — the unit cost the
// Merkle module's 2N−1 compression budget is priced in.
func BenchmarkCompress2(b *testing.B) {
	var l, r Digest
	for i := range l {
		l[i] = byte(i)
		r[i] = byte(255 - i)
	}
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		l = Compress2(&l, &r)
	}
}
