// Package sha2 is a from-scratch SHA-256 implementation specialized for the
// Merkle-tree workload of BatchZK.
//
// The paper's Merkle module converts 512-bit blocks into 256-bit digests
// with the raw SHA-256 compression function, keeping the sixteen 32-bit
// message chunks in GPU registers (§3.1). This package exposes exactly that
// primitive — Compress, a single-block 512→256-bit compression with the
// standard IV — alongside a full streaming implementation (Sum256) that is
// cross-checked against crypto/sha256 in the tests.
//
// Merkle interior nodes use Compress2, which packs two 256-bit child
// digests into one 512-bit block; this is one compression call per node,
// matching the cost model used throughout the benchmarks.
package sha2

import "encoding/binary"

// Size is the digest size in bytes.
const Size = 32

// BlockSize is the compression-function input size in bytes.
const BlockSize = 64

// Digest is a 256-bit hash value.
type Digest [Size]byte

// iv is the SHA-256 initial hash value (FIPS 180-4 §5.3.3).
var iv = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// k holds the SHA-256 round constants.
var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// compressBlock runs the 64 SHA-256 rounds over one 512-bit block, updating
// the eight working state words h in place. The sixteen message chunks live
// in the w schedule array — the structure the paper maps onto GPU registers.
func compressBlock(h *[8]uint32, block *[BlockSize]byte) {
	var w [64]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(block[i*4:])
	}
	for i := 16; i < 64; i++ {
		s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ w[i-15]>>3
		s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ w[i-2]>>10
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}

	a, b, c, d, e, f, g, hh := h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]
	for i := 0; i < 64; i++ {
		s1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := e&f ^ ^e&g
		t1 := hh + s1 + ch + k[i] + w[i]
		s0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := a&b ^ a&c ^ b&c
		t2 := s0 + maj
		hh, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
	}
	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e
	h[5] += f
	h[6] += g
	h[7] += hh
}

// Compress applies the raw SHA-256 compression function (with the standard
// IV, no length padding) to one 512-bit block. This is the Merkle-leaf
// primitive from the paper: a fixed 512-bit block in, a 256-bit digest out.
func Compress(block *[BlockSize]byte) Digest {
	h := iv
	compressBlock(&h, block)
	var d Digest
	for i, v := range h {
		binary.BigEndian.PutUint32(d[i*4:], v)
	}
	return d
}

// Compress2 hashes two child digests into a parent digest with a single
// compression call (left ‖ right as the 512-bit block).
func Compress2(left, right *Digest) Digest {
	var block [BlockSize]byte
	copy(block[:Size], left[:])
	copy(block[Size:], right[:])
	return Compress(&block)
}

// Sum256 computes the full (padded, length-strengthened) SHA-256 digest of
// data, bit-compatible with crypto/sha256.
func Sum256(data []byte) Digest {
	h := iv
	var block [BlockSize]byte

	full := len(data) / BlockSize
	for i := 0; i < full; i++ {
		copy(block[:], data[i*BlockSize:])
		compressBlock(&h, &block)
	}

	// Padding: 0x80, zeros, 64-bit big-endian bit length.
	rem := data[full*BlockSize:]
	var pad [2 * BlockSize]byte
	n := copy(pad[:], rem)
	pad[n] = 0x80
	padLen := BlockSize
	if n+1+8 > BlockSize {
		padLen = 2 * BlockSize
	}
	binary.BigEndian.PutUint64(pad[padLen-8:], uint64(len(data))*8)
	for off := 0; off < padLen; off += BlockSize {
		copy(block[:], pad[off:])
		compressBlock(&h, &block)
	}

	var d Digest
	for i, v := range h {
		binary.BigEndian.PutUint32(d[i*4:], v)
	}
	return d
}

// Hasher is an incremental SHA-256 writer (unpadded Compress semantics are
// available through Compress/Compress2; Hasher matches crypto/sha256).
type Hasher struct {
	h      [8]uint32
	buf    [BlockSize]byte
	n      int    // bytes buffered in buf
	length uint64 // total bytes written
}

// NewHasher returns a Hasher initialized with the standard IV.
func NewHasher() *Hasher {
	return &Hasher{h: iv}
}

// Reset restores the initial state.
func (s *Hasher) Reset() {
	s.h = iv
	s.n = 0
	s.length = 0
}

// Write absorbs p; it never fails.
func (s *Hasher) Write(p []byte) (int, error) {
	total := len(p)
	s.length += uint64(total)
	if s.n > 0 {
		c := copy(s.buf[s.n:], p)
		s.n += c
		p = p[c:]
		if s.n == BlockSize {
			compressBlock(&s.h, &s.buf)
			s.n = 0
		}
		if len(p) == 0 {
			return total, nil
		}
	}
	for len(p) >= BlockSize {
		copy(s.buf[:], p[:BlockSize])
		compressBlock(&s.h, &s.buf)
		p = p[BlockSize:]
	}
	s.n = copy(s.buf[:], p)
	return total, nil
}

// Sum finalizes a copy of the state and returns the digest; the Hasher can
// continue to absorb afterwards.
func (s *Hasher) Sum() Digest {
	c := *s // copy so finalization does not disturb the stream
	var pad [2 * BlockSize]byte
	copy(pad[:], c.buf[:c.n])
	pad[c.n] = 0x80
	padLen := BlockSize
	if c.n+1+8 > BlockSize {
		padLen = 2 * BlockSize
	}
	binary.BigEndian.PutUint64(pad[padLen-8:], c.length*8)
	for off := 0; off < padLen; off += BlockSize {
		var block [BlockSize]byte
		copy(block[:], pad[off:])
		compressBlock(&c.h, &block)
	}
	var d Digest
	for i, v := range c.h {
		binary.BigEndian.PutUint32(d[i*4:], v)
	}
	return d
}
