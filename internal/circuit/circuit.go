// Package circuit provides the arithmetic-circuit layer of the
// reproduction: the function F in y = F(x, w) is compiled to a circuit,
// the prover evaluates it to obtain the full wire assignment (witness),
// and the ZKP systems prove knowledge of a satisfying assignment.
//
// The paper's experiments are parameterized by the scale S, "the number of
// multiplication gates in the circuit compiled from the function to be
// proved" (Table 7); RandomCircuit synthesizes benchmark circuits with a
// requested multiplication-gate count, and the R1CS export feeds the
// Groth16-style baselines, whose MSM/NTT sizes are functions of the
// constraint count.
package circuit

import (
	"fmt"
	"math/rand"

	"batchzk/internal/field"
)

// Wire identifies a value in the circuit; wire 0 is the constant 1.
type Wire int

// GateOp is the operation of a gate.
type GateOp uint8

// Gate operations.
const (
	OpAdd GateOp = iota // out = a + b
	OpMul               // out = a · b
	OpSub               // out = a − b
)

func (op GateOp) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	case OpSub:
		return "sub"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Gate is a two-input arithmetic gate writing to its own output wire.
type Gate struct {
	Op   GateOp
	A, B Wire
	Out  Wire
}

// Circuit is a compiled arithmetic circuit. Wire 0 carries the constant 1,
// wires 1..NumPublic the public inputs, the next NumSecret wires the
// secret inputs; constant wires and gate-output wires follow in creation
// order (ConstWires records where each constant landed). Gates are stored
// in topological (creation) order.
type Circuit struct {
	NumPublic  int
	NumSecret  int
	Constants  []field.Element
	ConstWires []Wire
	Gates      []Gate
	Outputs    []Wire
	// ZeroWires must carry 0 in any satisfying assignment; the protocol
	// pins each with its own post-commitment random coefficient, which is
	// how gadget constraints (bit checks, range recompositions) are
	// soundly enforced without inflating the proof.
	ZeroWires []Wire
	numWires  int
}

// NumWires returns the total wire count (the witness vector length).
func (c *Circuit) NumWires() int { return c.numWires }

// NumMulGates returns the multiplication-gate count — the paper's scale S.
func (c *Circuit) NumMulGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Op == OpMul {
			n++
		}
	}
	return n
}

// Assignment is a full wire assignment (witness), indexed by Wire.
type Assignment []field.Element

// Evaluate computes the witness for the given inputs.
func (c *Circuit) Evaluate(public, secret []field.Element) (Assignment, error) {
	if len(public) != c.NumPublic {
		return nil, fmt.Errorf("circuit: %d public inputs, want %d", len(public), c.NumPublic)
	}
	if len(secret) != c.NumSecret {
		return nil, fmt.Errorf("circuit: %d secret inputs, want %d", len(secret), c.NumSecret)
	}
	w := make(Assignment, c.numWires)
	w[0] = field.One()
	copy(w[1:], public)
	copy(w[1+c.NumPublic:], secret)
	for i, cw := range c.ConstWires {
		w[cw] = c.Constants[i]
	}
	for _, g := range c.Gates {
		switch g.Op {
		case OpAdd:
			w[g.Out].Add(&w[g.A], &w[g.B])
		case OpMul:
			w[g.Out].Mul(&w[g.A], &w[g.B])
		case OpSub:
			w[g.Out].Sub(&w[g.A], &w[g.B])
		default:
			return nil, fmt.Errorf("circuit: unknown gate op %v", g.Op)
		}
	}
	return w, nil
}

// OutputValues extracts the circuit outputs from a witness.
func (c *Circuit) OutputValues(w Assignment) ([]field.Element, error) {
	if len(w) != c.numWires {
		return nil, fmt.Errorf("circuit: witness length %d, want %d", len(w), c.numWires)
	}
	out := make([]field.Element, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = w[o]
	}
	return out, nil
}

// CheckWitness re-executes every gate against a claimed witness.
func (c *Circuit) CheckWitness(w Assignment) error {
	if len(w) != c.numWires {
		return fmt.Errorf("circuit: witness length %d, want %d", len(w), c.numWires)
	}
	if !w[0].IsOne() {
		return fmt.Errorf("circuit: wire 0 must be 1")
	}
	for i, cw := range c.ConstWires {
		if !w[cw].Equal(&c.Constants[i]) {
			return fmt.Errorf("circuit: constant wire %d has wrong value", cw)
		}
	}
	var want field.Element
	for gi, g := range c.Gates {
		switch g.Op {
		case OpAdd:
			want.Add(&w[g.A], &w[g.B])
		case OpMul:
			want.Mul(&w[g.A], &w[g.B])
		case OpSub:
			want.Sub(&w[g.A], &w[g.B])
		}
		if !want.Equal(&w[g.Out]) {
			return fmt.Errorf("circuit: gate %d (%v) unsatisfied", gi, g.Op)
		}
	}
	for _, z := range c.ZeroWires {
		if !w[z].IsZero() {
			return fmt.Errorf("circuit: zero wire %d carries a non-zero value", z)
		}
	}
	return nil
}

// Builder assembles a circuit incrementally.
type Builder struct {
	c         Circuit
	nextWire  Wire
	constPool map[[32]byte]Wire
	finalized bool
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	return &Builder{nextWire: 1, constPool: map[[32]byte]Wire{}}
}

// PublicInput declares a public input wire. All inputs must be declared
// before any gate or constant is added.
func (b *Builder) PublicInput() Wire {
	if len(b.c.Gates) > 0 || len(b.c.Constants) > 0 {
		panic("circuit: declare inputs before gates/constants")
	}
	b.c.NumPublic++
	w := b.nextWire
	b.nextWire++
	return w
}

// SecretInput declares a secret (witness) input wire.
func (b *Builder) SecretInput() Wire {
	if len(b.c.Gates) > 0 || len(b.c.Constants) > 0 {
		panic("circuit: declare inputs before gates/constants")
	}
	b.c.NumSecret++
	w := b.nextWire
	b.nextWire++
	return w
}

// Const returns a wire carrying the constant v (deduplicated).
func (b *Builder) Const(v field.Element) Wire {
	key := v.ToBytes()
	if w, ok := b.constPool[key]; ok {
		return w
	}
	w := b.nextWire
	b.nextWire++
	b.c.Constants = append(b.c.Constants, v)
	b.c.ConstWires = append(b.c.ConstWires, w)
	b.constPool[key] = w
	return w
}

// One returns the constant-1 wire.
func (b *Builder) One() Wire { return 0 }

func (b *Builder) gate(op GateOp, x, y Wire) Wire {
	if x >= b.nextWire || y >= b.nextWire || x < 0 || y < 0 {
		panic(fmt.Sprintf("circuit: gate references undefined wire (%d, %d)", x, y))
	}
	out := b.nextWire
	b.nextWire++
	b.c.Gates = append(b.c.Gates, Gate{Op: op, A: x, B: y, Out: out})
	return out
}

// Add returns a wire carrying x + y.
func (b *Builder) Add(x, y Wire) Wire { return b.gate(OpAdd, x, y) }

// Sub returns a wire carrying x − y.
func (b *Builder) Sub(x, y Wire) Wire { return b.gate(OpSub, x, y) }

// Mul returns a wire carrying x · y.
func (b *Builder) Mul(x, y Wire) Wire { return b.gate(OpMul, x, y) }

// MulConst returns a wire carrying v · x.
func (b *Builder) MulConst(v field.Element, x Wire) Wire {
	return b.Mul(b.Const(v), x)
}

// AddConst returns a wire carrying x + v.
func (b *Builder) AddConst(x Wire, v field.Element) Wire {
	return b.Add(x, b.Const(v))
}

// Output marks a wire as a circuit output.
func (b *Builder) Output(w Wire) { b.c.Outputs = append(b.c.Outputs, w) }

// AssertZero constrains a wire to be zero in every satisfying assignment.
func (b *Builder) AssertZero(w Wire) { b.c.ZeroWires = append(b.c.ZeroWires, w) }

// Build finalizes and returns the circuit; the builder cannot be reused.
func (b *Builder) Build() (*Circuit, error) {
	if b.finalized {
		return nil, fmt.Errorf("circuit: builder already finalized")
	}
	b.finalized = true
	b.c.numWires = int(b.nextWire)
	out := b.c
	return &out, nil
}

// RandomCircuit synthesizes a benchmark circuit with exactly mulGates
// multiplication gates (plus interleaved additions), numPublic public and
// numSecret secret inputs — the random-circuit workloads behind the
// paper's Table 7 scales. The generator is deterministic in seed.
func RandomCircuit(mulGates, numPublic, numSecret int, seed int64) (*Circuit, error) {
	if mulGates < 1 || numPublic < 1 || numSecret < 1 {
		return nil, fmt.Errorf("circuit: need at least one mul gate and one input of each kind")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	wires := make([]Wire, 0, mulGates+numPublic+numSecret)
	for i := 0; i < numPublic; i++ {
		wires = append(wires, b.PublicInput())
	}
	for i := 0; i < numSecret; i++ {
		wires = append(wires, b.SecretInput())
	}
	pick := func() Wire { return wires[rng.Intn(len(wires))] }
	for m := 0; m < mulGates; m++ {
		w := b.Mul(pick(), pick())
		if rng.Intn(4) == 0 {
			w = b.Add(w, pick())
		}
		wires = append(wires, w)
	}
	b.Output(wires[len(wires)-1])
	return b.Build()
}
