package circuit

import (
	"testing"

	"batchzk/internal/field"
)

// evalWith builds a circuit with the given wiring function over two
// public inputs and evaluates it on (a, b), returning outputs and the
// witness-check error.
func evalWith(t *testing.T, wire func(b *Builder, x, y Wire), a, bv uint64) ([]field.Element, error) {
	t.Helper()
	b := NewBuilder()
	x := b.PublicInput()
	y := b.PublicInput()
	wire(b, x, y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Evaluate([]field.Element{field.NewElement(a), field.NewElement(bv)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.OutputValues(w)
	if err != nil {
		t.Fatal(err)
	}
	return out, c.CheckWitness(w)
}

func TestBooleanGadgets(t *testing.T) {
	truth := []struct{ a, b, and, or, xor uint64 }{
		{0, 0, 0, 0, 0},
		{0, 1, 0, 1, 1},
		{1, 0, 0, 1, 1},
		{1, 1, 1, 1, 0},
	}
	for _, row := range truth {
		out, err := evalWith(t, func(b *Builder, x, y Wire) {
			b.Output(b.And(x, y))
			b.Output(b.Or(x, y))
			b.Output(b.Xor(x, y))
			b.Output(b.Not(x))
		}, row.a, row.b)
		if err != nil {
			t.Fatal(err)
		}
		got := func(i int) uint64 { v, _ := out[i].Uint64(); return v }
		if got(0) != row.and || got(1) != row.or || got(2) != row.xor || got(3) != 1-row.a {
			t.Fatalf("(%d,%d): and=%d or=%d xor=%d not=%d", row.a, row.b, got(0), got(1), got(2), got(3))
		}
	}
}

func TestAssertBoolAndEqual(t *testing.T) {
	// Valid booleans pass.
	_, err := evalWith(t, func(b *Builder, x, y Wire) {
		b.AssertBool(x)
		b.AssertEqual(x, y)
		b.Output(x)
	}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Non-boolean violates.
	_, err = evalWith(t, func(b *Builder, x, y Wire) {
		b.AssertBool(x)
		b.Output(x)
	}, 2, 0)
	if err == nil {
		t.Fatal("AssertBool accepted 2")
	}
	// Unequal violates.
	_, err = evalWith(t, func(b *Builder, x, y Wire) {
		b.AssertEqual(x, y)
		b.Output(x)
	}, 3, 4)
	if err == nil {
		t.Fatal("AssertEqual accepted 3 == 4")
	}
}

func TestSelectAndSquare(t *testing.T) {
	out, err := evalWith(t, func(b *Builder, x, y Wire) {
		one := b.One()
		zero := b.Const(field.Zero())
		b.Output(b.Select(one, x, y))  // → x
		b.Output(b.Select(zero, x, y)) // → y
		b.Output(b.Square(x))
	}, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{7, 9, 49} {
		if v, _ := out[i].Uint64(); v != want {
			t.Fatalf("output %d = %d, want %d", i, v, want)
		}
	}
}

func TestInnerProductGadget(t *testing.T) {
	b := NewBuilder()
	xs := []Wire{b.PublicInput(), b.PublicInput()}
	ys := []Wire{b.PublicInput(), b.PublicInput()}
	ip, err := b.InnerProduct(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	b.Output(ip)
	if _, err := b.InnerProduct(xs, ys[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	c, _ := b.Build()
	w, _ := c.Evaluate([]field.Element{
		field.NewElement(2), field.NewElement(3),
		field.NewElement(10), field.NewElement(20),
	}, nil)
	out, _ := c.OutputValues(w)
	if v, _ := out[0].Uint64(); v != 80 {
		t.Fatalf("2·10 + 3·20 = %d", v)
	}
}

func TestExpConstAndHorner(t *testing.T) {
	out, err := evalWith(t, func(b *Builder, x, y Wire) {
		b.Output(b.ExpConst(x, 0))
		b.Output(b.ExpConst(x, 1))
		b.Output(b.ExpConst(x, 5))
		// 3 + 2t + t² at t = x
		coeffs := []Wire{b.Const(field.NewElement(3)), b.Const(field.NewElement(2)), b.One()}
		b.Output(b.Horner(x, coeffs))
		b.Output(b.Horner(x, nil))
	}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{1, 3, 243, 3 + 6 + 9, 0} {
		if v, _ := out[i].Uint64(); v != want {
			t.Fatalf("output %d = %d, want %d", i, v, want)
		}
	}
}

func TestIsZeroGadget(t *testing.T) {
	build := func() (*Circuit, Wire) {
		b := NewBuilder()
		x := b.PublicInput()
		inv := b.SecretInput()
		flag := b.IsZero(x, inv)
		b.Output(flag)
		c, _ := b.Build()
		return c, x
	}
	c, _ := build()
	check := func(x uint64, wantFlag uint64) {
		var xe field.Element
		xe.SetUint64(x)
		hint := IsZeroHint(&xe)
		w, err := c.Evaluate([]field.Element{xe}, []field.Element{hint})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckWitness(w); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		out, _ := c.OutputValues(w)
		if v, _ := out[0].Uint64(); v != wantFlag {
			t.Fatalf("IsZero(%d) = %d", x, v)
		}
	}
	check(0, 1)
	check(5, 0)

	// A malicious hint must not flip the flag: claim x=5 is zero.
	var xe field.Element
	xe.SetUint64(5)
	bad := field.Zero() // inv = 0 ⇒ flag = 1, but x·flag = 5 ≠ 0
	w, err := c.Evaluate([]field.Element{xe}, []field.Element{bad})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckWitness(w); err == nil {
		t.Fatal("malicious IsZero hint escaped")
	}
}

func TestRangeCheckGadget(t *testing.T) {
	const bits = 8
	b := NewBuilder()
	x := b.PublicInput()
	hints := make([]Wire, bits)
	for i := range hints {
		hints[i] = b.SecretInput()
	}
	b.RangeCheck(x, hints)
	b.Output(x)
	c, _ := b.Build()

	check := func(v uint64) error {
		var xe field.Element
		xe.SetUint64(v)
		w, err := c.Evaluate([]field.Element{xe}, RangeCheckHints(v, bits))
		if err != nil {
			return err
		}
		return c.CheckWitness(w)
	}
	if err := check(0); err != nil {
		t.Fatal(err)
	}
	if err := check(255); err != nil {
		t.Fatal(err)
	}
	// 256 does not fit in 8 bits: every possible hint fails either the
	// boolean or the recomposition constraint.
	var xe field.Element
	xe.SetUint64(256)
	w, err := c.Evaluate([]field.Element{xe}, RangeCheckHints(256, bits))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckWitness(w); err == nil {
		t.Fatal("RangeCheck accepted 256 in 8 bits")
	}
}
