package circuit

import (
	"fmt"

	"batchzk/internal/field"
)

// Gadget library: reusable sub-circuits built on the Builder primitives.
// Boolean gadgets assume (and, where noted, enforce) that their operand
// wires carry 0 or 1.

// AssertEqual constrains x == y.
func (b *Builder) AssertEqual(x, y Wire) {
	b.AssertZero(b.Sub(x, y))
}

// AssertBool constrains w ∈ {0, 1} via w·(w−1) = 0.
func (b *Builder) AssertBool(w Wire) {
	b.AssertZero(b.Mul(w, b.Sub(w, b.One())))
}

// Not returns 1 − w (the boolean negation of an already-boolean wire).
func (b *Builder) Not(w Wire) Wire {
	return b.Sub(b.One(), w)
}

// And returns x ∧ y = x·y for boolean wires.
func (b *Builder) And(x, y Wire) Wire { return b.Mul(x, y) }

// Or returns x ∨ y = x + y − x·y for boolean wires.
func (b *Builder) Or(x, y Wire) Wire {
	return b.Sub(b.Add(x, y), b.Mul(x, y))
}

// Xor returns x ⊕ y = x + y − 2·x·y for boolean wires.
func (b *Builder) Xor(x, y Wire) Wire {
	xy := b.Mul(x, y)
	return b.Sub(b.Add(x, y), b.Add(xy, xy))
}

// Select returns cond·x + (1−cond)·y — x when the boolean cond is 1,
// else y.
func (b *Builder) Select(cond, x, y Wire) Wire {
	d := b.Sub(x, y)
	return b.Add(y, b.Mul(cond, d))
}

// Square returns x².
func (b *Builder) Square(x Wire) Wire { return b.Mul(x, x) }

// InnerProduct returns Σ xs[i]·ys[i]; the slices must have equal length.
func (b *Builder) InnerProduct(xs, ys []Wire) (Wire, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("circuit: inner product over %d vs %d wires", len(xs), len(ys))
	}
	acc := b.Const(field.Zero())
	for i := range xs {
		acc = b.Add(acc, b.Mul(xs[i], ys[i]))
	}
	return acc, nil
}

// ExpConst returns x^k for a small constant exponent via square-and-
// multiply (k ≥ 0; x⁰ = 1).
func (b *Builder) ExpConst(x Wire, k uint) Wire {
	result := b.One()
	base := x
	for k > 0 {
		if k&1 == 1 {
			result = b.Mul(result, base)
		}
		k >>= 1
		if k > 0 {
			base = b.Mul(base, base)
		}
	}
	return result
}

// Horner returns Σ coeffs[i]·x^i evaluated by Horner's rule
// (coefficients low-degree first).
func (b *Builder) Horner(x Wire, coeffs []Wire) Wire {
	if len(coeffs) == 0 {
		return b.Const(field.Zero())
	}
	acc := coeffs[len(coeffs)-1]
	for i := len(coeffs) - 2; i >= 0; i-- {
		acc = b.Add(b.Mul(acc, x), coeffs[i])
	}
	return acc
}

// IsZero returns a boolean wire that is 1 iff x == 0. It requires two
// prover-supplied hints (declared as secret inputs by the caller):
// inv ≈ x^{-1} and the claimed flag. The constraints
//
//	flag = 1 − x·inv,  x·flag = 0,  flag boolean
//
// force flag = 1 when x = 0 (second equation trivial, first gives 1) and
// flag = 0 when x ≠ 0 (second forces it; first then pins inv = x^{-1}).
func (b *Builder) IsZero(x, invHint Wire) Wire {
	flag := b.Sub(b.One(), b.Mul(x, invHint))
	b.AssertZero(b.Mul(x, flag))
	b.AssertBool(flag)
	return flag
}

// IsZeroHint computes the hint value IsZero needs for a concrete x.
func IsZeroHint(x *field.Element) field.Element {
	var inv field.Element
	inv.Inverse(x) // Inverse(0) = 0, which satisfies the gadget
	return inv
}

// RangeCheck constrains x < 2^bits using prover-supplied bit hints
// (len(bitHints) = bits, each declared as a secret input): every hint is
// forced boolean and their weighted sum must equal x.
func (b *Builder) RangeCheck(x Wire, bitHints []Wire) {
	two := field.NewElement(2)
	pow := field.One()
	acc := b.Const(field.Zero())
	for _, bit := range bitHints {
		b.AssertBool(bit)
		acc = b.Add(acc, b.MulConst(pow, bit))
		pow.Mul(&pow, &two)
	}
	b.AssertEqual(acc, x)
}

// RangeCheckHints decomposes v into the bit values RangeCheck consumes.
func RangeCheckHints(v uint64, bits int) []field.Element {
	out := make([]field.Element, bits)
	for i := range out {
		out[i].SetUint64(v >> uint(i) & 1)
	}
	return out
}
