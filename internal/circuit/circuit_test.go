package circuit

import (
	"testing"

	"batchzk/internal/field"
)

// buildQuadratic builds y = x² + w·x + 7 with public x and secret w.
func buildQuadratic(t *testing.T) (*Circuit, Wire, Wire) {
	t.Helper()
	b := NewBuilder()
	x := b.PublicInput()
	w := b.SecretInput()
	x2 := b.Mul(x, x)
	wx := b.Mul(w, x)
	s := b.Add(x2, wx)
	y := b.AddConst(s, field.NewElement(7))
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, x, w
}

func TestEvaluateQuadratic(t *testing.T) {
	c, _, _ := buildQuadratic(t)
	if c.NumMulGates() != 2 {
		t.Fatalf("mul gates = %d", c.NumMulGates())
	}
	// x=3, w=5: y = 9 + 15 + 7 = 31.
	wit, err := c.Evaluate(
		[]field.Element{field.NewElement(3)},
		[]field.Element{field.NewElement(5)},
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.OutputValues(wit)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out[0].Uint64(); v != 31 {
		t.Fatalf("y = %d", v)
	}
	if err := c.CheckWitness(wit); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateValidation(t *testing.T) {
	c, _, _ := buildQuadratic(t)
	if _, err := c.Evaluate(nil, []field.Element{field.NewElement(5)}); err == nil {
		t.Fatal("accepted missing public input")
	}
	if _, err := c.Evaluate([]field.Element{field.NewElement(3)}, nil); err == nil {
		t.Fatal("accepted missing secret input")
	}
	if _, err := c.OutputValues(make(Assignment, 3)); err == nil {
		t.Fatal("accepted short witness")
	}
}

func TestCheckWitnessRejectsTampering(t *testing.T) {
	c, _, _ := buildQuadratic(t)
	wit, _ := c.Evaluate(
		[]field.Element{field.NewElement(3)},
		[]field.Element{field.NewElement(5)},
	)
	// Tamper a gate output.
	bad := append(Assignment{}, wit...)
	bad[len(bad)-1] = field.NewElement(999)
	if err := c.CheckWitness(bad); err == nil {
		t.Fatal("accepted tampered output wire")
	}
	// Tamper the constant-one wire.
	bad = append(Assignment{}, wit...)
	bad[0] = field.NewElement(2)
	if err := c.CheckWitness(bad); err == nil {
		t.Fatal("accepted wrong one-wire")
	}
	// Tamper a constant wire.
	bad = append(Assignment{}, wit...)
	bad[c.ConstWires[0]] = field.NewElement(8)
	if err := c.CheckWitness(bad); err == nil {
		t.Fatal("accepted wrong constant wire")
	}
	if err := c.CheckWitness(wit[:3]); err == nil {
		t.Fatal("accepted short witness")
	}
}

func TestSubGate(t *testing.T) {
	b := NewBuilder()
	x := b.PublicInput()
	y := b.PublicInput()
	d := b.Sub(x, y)
	b.Output(d)
	c, _ := b.Build()
	wit, _ := c.Evaluate([]field.Element{field.NewElement(10), field.NewElement(4)}, nil)
	out, _ := c.OutputValues(wit)
	if v, _ := out[0].Uint64(); v != 6 {
		t.Fatalf("10-4 = %d", v)
	}
}

func TestConstDeduplication(t *testing.T) {
	b := NewBuilder()
	x := b.PublicInput()
	c1 := b.Const(field.NewElement(42))
	c2 := b.Const(field.NewElement(42))
	if c1 != c2 {
		t.Fatal("identical constants got different wires")
	}
	c3 := b.Const(field.NewElement(43))
	if c3 == c1 {
		t.Fatal("distinct constants shared a wire")
	}
	b.Output(b.Mul(x, c1))
	c, _ := b.Build()
	if len(c.Constants) != 2 {
		t.Fatalf("constants stored: %d", len(c.Constants))
	}
}

func TestBuilderMisuse(t *testing.T) {
	b := NewBuilder()
	x := b.PublicInput()
	b.Output(b.Mul(x, b.One()))
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("double Build accepted")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("input after gate should panic")
		}
	}()
	b2 := NewBuilder()
	y := b2.PublicInput()
	b2.Mul(y, y)
	b2.PublicInput()
}

func TestGateWireValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undefined wire reference should panic")
		}
	}()
	b := NewBuilder()
	x := b.PublicInput()
	b.Mul(x, Wire(99))
}

func TestRandomCircuit(t *testing.T) {
	for _, s := range []int{1, 10, 1000} {
		c, err := RandomCircuit(s, 4, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumMulGates() != s {
			t.Fatalf("wanted %d mul gates, got %d", s, c.NumMulGates())
		}
		wit, err := c.Evaluate(field.RandVector(4), field.RandVector(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckWitness(wit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RandomCircuit(0, 1, 1, 0); err == nil {
		t.Fatal("accepted zero mul gates")
	}
	// Determinism.
	c1, _ := RandomCircuit(50, 2, 2, 11)
	c2, _ := RandomCircuit(50, 2, 2, 11)
	if len(c1.Gates) != len(c2.Gates) {
		t.Fatal("same seed gave different circuits")
	}
	for i := range c1.Gates {
		if c1.Gates[i] != c2.Gates[i] {
			t.Fatal("same seed gave different gates")
		}
	}
}

func TestMulConstAndOne(t *testing.T) {
	b := NewBuilder()
	x := b.PublicInput()
	y := b.MulConst(field.NewElement(3), x)
	z := b.Add(y, b.One())
	b.Output(z)
	c, _ := b.Build()
	wit, _ := c.Evaluate([]field.Element{field.NewElement(5)}, nil)
	out, _ := c.OutputValues(wit)
	if v, _ := out[0].Uint64(); v != 16 {
		t.Fatalf("3·5+1 = %d", v)
	}
}
