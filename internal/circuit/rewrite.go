package circuit

import (
	"fmt"

	"batchzk/internal/field"
)

// RemoveSub rewrites a circuit into an equivalent one using only Add and
// Mul gates: every Sub(a, b) becomes Add(a, Mul(b, −1)). Layered-circuit
// backends (the GKR prover) support only Add/Mul, so this is the
// normalization pass in front of gkr.FromCircuit.
func RemoveSub(c *Circuit) (*Circuit, error) {
	b := NewBuilder()
	remap := make(map[Wire]Wire, c.NumWires())
	remap[0] = 0
	for i := 0; i < c.NumPublic; i++ {
		remap[Wire(1+i)] = b.PublicInput()
	}
	for i := 0; i < c.NumSecret; i++ {
		remap[Wire(1+c.NumPublic+i)] = b.SecretInput()
	}
	for i, cw := range c.ConstWires {
		remap[cw] = b.Const(c.Constants[i])
	}
	var minusOne field.Element
	one := field.One()
	minusOne.Neg(&one)
	for _, g := range c.Gates {
		a, okA := remap[g.A]
		bb, okB := remap[g.B]
		if !okA || !okB {
			return nil, fmt.Errorf("circuit: gate output %d references unmapped wire", g.Out)
		}
		switch g.Op {
		case OpAdd:
			remap[g.Out] = b.Add(a, bb)
		case OpMul:
			remap[g.Out] = b.Mul(a, bb)
		case OpSub:
			negB := b.Mul(bb, b.Const(minusOne))
			remap[g.Out] = b.Add(a, negB)
		default:
			return nil, fmt.Errorf("circuit: unknown op %v", g.Op)
		}
	}
	for _, o := range c.Outputs {
		w, ok := remap[o]
		if !ok {
			return nil, fmt.Errorf("circuit: output references unmapped wire %d", o)
		}
		b.Output(w)
	}
	for _, z := range c.ZeroWires {
		w, ok := remap[z]
		if !ok {
			return nil, fmt.Errorf("circuit: zero wire %d unmapped", z)
		}
		b.AssertZero(w)
	}
	return b.Build()
}
