package obs

import (
	"context"
	"io"
	"log/slog"

	"batchzk/internal/telemetry"
)

// Structured event log.
//
// Every operationally significant event in the system — a retry, a
// quarantine, an autobalance decision, a launch fault, an alert — is
// emitted as one JSON object on a stable schema, built on stdlib
// log/slog. The schema contract (kept stable by CI's obs-smoke jq
// check) is: every record has "time", "level", "msg" (the event name,
// dot-namespaced like "job.quarantined"), and "component" (the layer
// that emitted it: core, sched, gpusim, vml, obs). Everything else is
// typed attributes; the helpers below fix the attribute names the rest
// of the codebase uses, so "trace_id" is always "trace_id".

// Log schema attribute helpers.

// Trace stamps a job's flight-recorder trace id on an event, keying the
// log line to /debug/telemetry/timeline and the Chrome trace.
func Trace(id telemetry.TraceID) slog.Attr { return slog.Uint64("trace_id", uint64(id)) }

// Job stamps the caller-assigned job id.
func Job(id int) slog.Attr { return slog.Int("job_id", id) }

// Stage names the pipeline stage an event happened in.
func Stage(name string) slog.Attr { return slog.String("stage", name) }

// Shard names the prover shard (-1 = unsharded).
func Shard(i int) slog.Attr { return slog.Int("shard", i) }

// Attempt records which try of a retried operation this was (1-based).
func Attempt(n int) slog.Attr { return slog.Int("attempt", n) }

// Err records an error chain as a string attribute ("error"); a nil
// error renders as the empty string.
func Err(err error) slog.Attr {
	if err == nil {
		return slog.String("error", "")
	}
	return slog.String("error", err.Error())
}

// newLogger builds the engine's slog JSON logger. A nil output keeps
// events off entirely (the engine's metrics/SLO machinery still runs).
func newLogger(out io.Writer, level slog.Leveler) *slog.Logger {
	if out == nil {
		return nil
	}
	if level == nil {
		level = slog.LevelInfo
	}
	return slog.New(slog.NewJSONHandler(out, &slog.HandlerOptions{Level: level}))
}

// Event emits one structured event: level, the emitting component, the
// dot-namespaced event name (the record's msg), and attributes. Nil-safe
// on a nil engine and on an engine with logging disabled, so call sites
// never guard.
func (e *Engine) Event(level slog.Level, component, event string, attrs ...slog.Attr) {
	if e == nil || e.log == nil {
		return
	}
	ctx := context.Background()
	if !e.log.Enabled(ctx, level) {
		return
	}
	args := make([]any, 0, len(attrs)+1)
	args = append(args, slog.String("component", component))
	for _, a := range attrs {
		args = append(args, a)
	}
	e.log.Log(ctx, level, event, args...)
}

// Package-level event helpers on the process-wide engine, for
// instrumentation points that do not hold an explicit engine.

// Info logs an info-level event on the active engine.
func Info(component, event string, attrs ...slog.Attr) {
	Active().Event(slog.LevelInfo, component, event, attrs...)
}

// Warn logs a warning-level event on the active engine.
func Warn(component, event string, attrs ...slog.Attr) {
	Active().Event(slog.LevelWarn, component, event, attrs...)
}

// Error logs an error-level event on the active engine.
func Error(component, event string, attrs ...slog.Attr) {
	Active().Event(slog.LevelError, component, event, attrs...)
}

// Debug logs a debug-level event on the active engine.
func Debug(component, event string, attrs ...slog.Attr) {
	Active().Event(slog.LevelDebug, component, event, attrs...)
}
