package obs

import (
	"sort"
	"time"
)

// Sliding windows.
//
// The SLO engine evaluates objectives over rolling time windows: "the
// p99 end-to-end latency over the last minute", "the error rate over the
// last ten seconds". Both are implemented as bucket rings: the window is
// divided into fixed-width time buckets, samples land in the bucket their
// timestamp falls into, and a query merges the buckets still inside the
// window. Advancing time lazily retires buckets (their epoch no longer
// fits), so there is no background goroutine and queries at any
// moment see exactly the samples whose age is below the window span.
//
// Clock discipline: samples may arrive slightly out of order (worker
// goroutines race to record). A sample whose timestamp is older than the
// newest bucket already opened is clamped into the oldest bucket still
// inside the window — it is never dropped and never resurrects a retired
// bucket, so a skewed clock cannot corrupt the ring. Samples from the
// future are clamped to "now".

// windowBuckets is how many buckets a window is divided into: enough
// resolution that the window slides smoothly, few enough that a quantile
// merge stays cheap.
const windowBuckets = 16

// bucketSampleCap bounds how many raw values one bucket retains for
// quantile queries. Past the cap the bucket keeps counting (rates stay
// exact) but stops storing values, so quantiles over a flooded window
// are computed from the first bucketSampleCap samples per bucket.
const bucketSampleCap = 4096

// sampleBucket is one time slice of a sampleWindow.
type sampleBucket struct {
	epoch int64 // bucket index since the unix epoch; -1 = empty
	vals  []int64
	count int64 // all samples, including those past bucketSampleCap
	bad   int64 // samples the objective's predicate marked bad
}

// sampleWindow is a bucketed sliding window of int64 samples (latencies,
// in this package). Not safe for concurrent use; the engine locks.
type sampleWindow struct {
	bucketNs int64
	buckets  [windowBuckets]sampleBucket
	// lastEpoch is the newest bucket epoch a sample or query has touched;
	// skewed (older) samples are clamped against it.
	lastEpoch int64
}

// newSampleWindow builds a window spanning roughly span (the ring covers
// windowBuckets buckets of span/windowBuckets each).
func newSampleWindow(span time.Duration) *sampleWindow {
	if span <= 0 {
		span = time.Minute
	}
	w := &sampleWindow{bucketNs: int64(span) / windowBuckets}
	if w.bucketNs < 1 {
		w.bucketNs = 1
	}
	for i := range w.buckets {
		w.buckets[i].epoch = -1
	}
	return w
}

// epochAt clamps a sample timestamp into the valid epoch range: no newer
// than now's epoch, no older than the oldest epoch still in the window.
func (w *sampleWindow) epochAt(tsNs int64) int64 {
	e := tsNs / w.bucketNs
	if e > w.lastEpoch {
		w.lastEpoch = e
	}
	if min := w.lastEpoch - windowBuckets + 1; e < min {
		e = min
	}
	return e
}

// bucketFor returns the live bucket for epoch e, resetting the slot if a
// previous ring lap still occupies it.
func (w *sampleWindow) bucketFor(e int64) *sampleBucket {
	b := &w.buckets[e%windowBuckets]
	if b.epoch != e {
		b.epoch = e
		b.vals = b.vals[:0]
		b.count = 0
		b.bad = 0
	}
	return b
}

// Add records one sample at tsNs (unix-ish nanoseconds; any monotonic
// base works as long as it is consistent). bad marks the sample as an
// objective violation so rates need no second pass.
func (w *sampleWindow) Add(tsNs, v int64, bad bool) {
	b := w.bucketFor(w.epochAt(tsNs))
	b.count++
	if bad {
		b.bad++
	}
	if len(b.vals) < bucketSampleCap {
		b.vals = append(b.vals, v)
	}
}

// live reports whether bucket b is inside the window ending at epoch
// `now` (inclusive).
func liveBucket(b *sampleBucket, nowEpoch int64) bool {
	return b.epoch >= 0 && b.epoch > nowEpoch-windowBuckets && b.epoch <= nowEpoch
}

// Counts returns (total, bad) over the window ending at nowNs.
func (w *sampleWindow) Counts(nowNs int64) (total, bad int64) {
	nowEpoch := w.epochAt(nowNs)
	for i := range w.buckets {
		if b := &w.buckets[i]; liveBucket(b, nowEpoch) {
			total += b.count
			bad += b.bad
		}
	}
	return total, bad
}

// BadFrac returns the fraction of window samples marked bad, and whether
// the window held any samples at all.
func (w *sampleWindow) BadFrac(nowNs int64) (float64, bool) {
	total, bad := w.Counts(nowNs)
	if total == 0 {
		return 0, false
	}
	return float64(bad) / float64(total), true
}

// Quantile merges the live buckets' retained samples and returns the
// nearest-rank q-quantile (q in [0,1]). ok is false for an empty window.
// A single sample is every quantile of itself.
func (w *sampleWindow) Quantile(nowNs int64, q float64) (int64, bool) {
	nowEpoch := w.epochAt(nowNs)
	var merged []int64
	for i := range w.buckets {
		if b := &w.buckets[i]; liveBucket(b, nowEpoch) {
			merged = append(merged, b.vals...)
		}
	}
	if len(merged) == 0 {
		return 0, false
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(merged)-1))
	return merged[idx], true
}

// SumRate returns the per-second rate of sample values over the window
// (sum of values / window span in seconds) — used for throughput where
// each sample's value is a count of completed items (usually 1).
func (w *sampleWindow) SumRate(nowNs int64) float64 {
	nowEpoch := w.epochAt(nowNs)
	var total int64
	for i := range w.buckets {
		if b := &w.buckets[i]; liveBucket(b, nowEpoch) {
			total += b.count
		}
	}
	span := float64(w.bucketNs*windowBuckets) / 1e9
	if span <= 0 {
		return 0
	}
	return float64(total) / span
}
