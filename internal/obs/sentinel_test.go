package obs

import (
	"strings"
	"testing"
)

func testSentinel() *Sentinel {
	return NewSentinel(SentinelConfig{
		Alpha: 0.2, DegradeFactor: 2, FloorFactor: 4,
		MinSamples: 4, RaiseAfter: 3, ClearAfter: 3,
	})
}

// feedHealthy warms a stream's EWMA baseline past MinSamples.
func feedHealthy(s *Sentinel, kind, subject string, v float64, n int) {
	for i := 0; i < n; i++ {
		s.Observe(kind, subject, v, int64(i))
	}
}

func TestSentinelRaisesAfterConsecutiveBreaches(t *testing.T) {
	s := testSentinel()
	feedHealthy(s, AlertKernelRegression, "ntt", 100, 8)
	// Two breaches: below RaiseAfter, no alert yet.
	if a := s.Observe(AlertKernelRegression, "ntt", 1000, 100); a != nil {
		t.Fatalf("alert after 1 breach: %+v", a)
	}
	if a := s.Observe(AlertKernelRegression, "ntt", 1000, 101); a != nil {
		t.Fatalf("alert after 2 breaches: %+v", a)
	}
	a := s.Observe(AlertKernelRegression, "ntt", 1000, 102)
	if a == nil {
		t.Fatal("no alert after RaiseAfter consecutive breaches")
	}
	if a.Kind != AlertKernelRegression || a.Subject != "ntt" || !a.Active() {
		t.Fatalf("bad alert: %+v", a)
	}
	if a.Baseline != 100 {
		t.Fatalf("alert baseline = %v, want the EWMA 100", a.Baseline)
	}
	if len(s.ActiveAlerts()) != 1 {
		t.Fatalf("active alerts = %d, want 1", len(s.ActiveAlerts()))
	}
	// Continued breaching must not raise duplicates.
	if a := s.Observe(AlertKernelRegression, "ntt", 1000, 103); a != nil {
		t.Fatalf("duplicate alert while active: %+v", a)
	}
	if len(s.ActiveAlerts()) != 1 {
		t.Fatal("continued breach duplicated the alert")
	}
}

// TestSentinelNoFlapping oscillates a value across the threshold every
// observation: hysteresis must keep the alert count at zero, because the
// streak never reaches RaiseAfter.
func TestSentinelNoFlapping(t *testing.T) {
	s := testSentinel()
	feedHealthy(s, AlertStageRegression, "commit", 100, 8)
	for i := 0; i < 100; i++ {
		v := 100.0
		if i%2 == 0 {
			v = 1000 // breach on even observations, recover on odd
		}
		if a := s.Observe(AlertStageRegression, "commit", v, int64(200+i)); a != nil {
			t.Fatalf("flapping stream raised an alert at i=%d: %+v", i, a)
		}
	}
	if n := len(s.Alerts()); n != 0 {
		t.Fatalf("flapping stream produced %d alerts, want 0", n)
	}
}

// TestSentinelClearsAfterRecovery drives raise → sustained recovery →
// clear, and checks the history entry mirrors the clear stamp.
func TestSentinelClearsAfterRecovery(t *testing.T) {
	s := testSentinel()
	feedHealthy(s, AlertStageRegression, "opening", 100, 8)
	for i := 0; i < 3; i++ {
		s.Observe(AlertStageRegression, "opening", 1000, int64(100+i))
	}
	if len(s.ActiveAlerts()) != 1 {
		t.Fatal("breach did not raise")
	}
	// Two healthy observations: not enough to clear.
	s.Observe(AlertStageRegression, "opening", 100, 200)
	s.Observe(AlertStageRegression, "opening", 100, 201)
	if len(s.ActiveAlerts()) != 1 {
		t.Fatal("alert cleared before ClearAfter healthy observations")
	}
	s.Observe(AlertStageRegression, "opening", 100, 202)
	if len(s.ActiveAlerts()) != 0 {
		t.Fatal("alert did not clear after ClearAfter healthy observations")
	}
	hist := s.Alerts()
	if len(hist) != 1 || hist[0].Active() || hist[0].ClearedNs != 202 {
		t.Fatalf("history after clear: %+v", hist)
	}
}

// TestSentinelEWMAFrozenDuringBreach: the baseline must not absorb
// breaching samples, or the anomaly would become the new normal and the
// alert would self-clear while the regression persists.
func TestSentinelEWMAFrozenDuringBreach(t *testing.T) {
	s := testSentinel()
	feedHealthy(s, AlertKernelRegression, "msm", 100, 8)
	// A long sustained regression: if the EWMA chased it, later samples at
	// the same degraded level would stop counting as breaches.
	raised := false
	for i := 0; i < 50; i++ {
		if a := s.Observe(AlertKernelRegression, "msm", 1000, int64(100+i)); a != nil {
			raised = true
		}
	}
	if !raised {
		t.Fatal("sustained regression never raised")
	}
	if len(s.ActiveAlerts()) != 1 {
		t.Fatal("alert self-cleared during a sustained regression")
	}
	// Recovery to the original level must clear against the original baseline.
	for i := 0; i < 3; i++ {
		s.Observe(AlertKernelRegression, "msm", 100, int64(200+i))
	}
	if len(s.ActiveAlerts()) != 0 {
		t.Fatal("alert did not clear after recovery to the original level")
	}
}

// TestSentinelRooflineFloor: a value far above the calibrated floor
// breaches immediately, before any EWMA history exists.
func TestSentinelRooflineFloor(t *testing.T) {
	s := testSentinel()
	s.SetFloor("ntt-butterfly", 10) // floor 10 ns/elem, FloorFactor 4
	var a *Alert
	for i := 0; i < 3; i++ {
		a = s.Observe(AlertKernelRegression, "ntt-butterfly", 100, int64(i))
	}
	if a == nil {
		t.Fatal("floor breach with no EWMA history did not raise")
	}
	if a.Baseline != 10 || !strings.Contains(a.Reason, "roofline floor") {
		t.Fatalf("floor alert: baseline=%v reason=%q", a.Baseline, a.Reason)
	}
	// Within FloorFactor × floor is healthy regardless of magnitude.
	s2 := testSentinel()
	s2.SetFloor("ntt-butterfly", 10)
	for i := 0; i < 20; i++ {
		if a := s2.Observe(AlertKernelRegression, "ntt-butterfly", 39, int64(i)); a != nil {
			t.Fatalf("value under FloorFactor×floor raised: %+v", a)
		}
	}
}

// TestSentinelJudge drives the engine-computed-condition path (SLO burn,
// quarantine storms) through the same hysteresis.
func TestSentinelJudge(t *testing.T) {
	s := testSentinel()
	var a *Alert
	for i := 0; i < 3; i++ {
		a = s.Judge(AlertQuarantineStorm, "fleet", SeverityCritical, true, 0.5, 0.25, "storm", int64(i))
	}
	if a == nil || a.Severity != SeverityCritical {
		t.Fatalf("judge did not raise critical: %+v", a)
	}
	for i := 0; i < 3; i++ {
		s.Judge(AlertQuarantineStorm, "fleet", SeverityCritical, false, 0.1, 0.25, "", int64(10+i))
	}
	if len(s.ActiveAlerts()) != 0 {
		t.Fatal("judged alert did not clear")
	}
}

// TestSentinelIndependentStreams: one subject's breach must not leak into
// another subject's track.
func TestSentinelIndependentStreams(t *testing.T) {
	s := testSentinel()
	feedHealthy(s, AlertStageRegression, "commit", 100, 8)
	feedHealthy(s, AlertStageRegression, "opening", 100, 8)
	for i := 0; i < 3; i++ {
		s.Observe(AlertStageRegression, "commit", 1000, int64(100+i))
		s.Observe(AlertStageRegression, "opening", 100, int64(100+i))
	}
	active := s.ActiveAlerts()
	if len(active) != 1 || active[0].Subject != "commit" {
		t.Fatalf("active alerts = %+v, want exactly commit", active)
	}
}

func TestSentinelNilSafe(t *testing.T) {
	var s *Sentinel
	s.SetFloor("x", 1)
	s.SetFloors(map[string]float64{"y": 2})
	if a := s.Observe("k", "s", 1, 0); a != nil {
		t.Fatal("nil sentinel observed")
	}
	if a := s.Judge("k", "s", SeverityWarning, true, 1, 1, "", 0); a != nil {
		t.Fatal("nil sentinel judged")
	}
	if s.ActiveAlerts() != nil || s.Alerts() != nil {
		t.Fatal("nil sentinel returned alerts")
	}
}

func TestSentinelAlertCap(t *testing.T) {
	s := NewSentinel(SentinelConfig{MinSamples: 1, RaiseAfter: 1, ClearAfter: 1, AlertCap: 4, DegradeFactor: 2})
	for i := 0; i < 10; i++ {
		subj := "s" + string(rune('a'+i))
		feedHealthy(s, AlertKernelRegression, subj, 100, 2)
		s.Observe(AlertKernelRegression, subj, 1000, int64(100+i))
	}
	if n := len(s.Alerts()); n != 4 {
		t.Fatalf("alert history = %d entries, want capped at 4", n)
	}
}
