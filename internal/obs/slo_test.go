package obs

import (
	"math"
	"testing"
	"time"
)

func latencyState(q float64, targetNs int64) *objectiveState {
	return &objectiveState{
		obj:  Objective{Name: "t-lat", Kind: KindLatency, Quantile: q, TargetNs: targetNs},
		fast: newSampleWindow(10 * time.Second),
		slow: newSampleWindow(time.Minute),
	}
}

func errorState(rate float64) *objectiveState {
	return &objectiveState{
		obj:  Objective{Name: "t-err", Kind: KindErrorRate, TargetRate: rate},
		fast: newSampleWindow(10 * time.Second),
		slow: newSampleWindow(time.Minute),
	}
}

func TestObjectiveValidate(t *testing.T) {
	bad := []Objective{
		{Name: "x", Kind: KindLatency, Quantile: 0, TargetNs: 1},
		{Name: "x", Kind: KindLatency, Quantile: 1, TargetNs: 1},
		{Name: "x", Kind: KindLatency, Quantile: 0.99, TargetNs: 0},
		{Name: "x", Kind: KindErrorRate, TargetRate: 0},
		{Name: "x", Kind: KindErrorRate, TargetRate: 1},
		{Name: "x", Kind: "bogus"},
		{Name: "", Kind: KindLatency, Quantile: 0.5, TargetNs: 1},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("objective %d (%+v): validate passed, want error", i, o)
		}
	}
	for _, o := range DefaultObjectives() {
		if err := o.validate(); err != nil {
			t.Errorf("default objective %q invalid: %v", o.Name, err)
		}
	}
}

// TestBurnRateEmptyWindow: no samples must mean no burn — an idle service
// is not violating its SLO.
func TestBurnRateEmptyWindow(t *testing.T) {
	s := latencyState(0.99, 100)
	st := s.status(0)
	if st.FastBurn != 0 || st.SlowBurn != 0 {
		t.Fatalf("empty window burn = %v/%v, want 0/0", st.FastBurn, st.SlowBurn)
	}
	if !st.Met {
		t.Fatal("empty window must meet its objective vacuously")
	}
	if st.BudgetRemaining != 1 {
		t.Fatalf("empty ledger budget = %v, want 1", st.BudgetRemaining)
	}
}

// TestBurnRateSingleSample: one good sample burns 0; one bad sample burns
// at 1/allowed (every sample in the window is bad).
func TestBurnRateSingleSample(t *testing.T) {
	good := latencyState(0.99, 100)
	good.observe(0, 50, false)
	if st := good.status(0); st.FastBurn != 0 || !st.Met {
		t.Fatalf("single good sample: burn=%v met=%v, want 0, true", st.FastBurn, st.Met)
	}

	bad := latencyState(0.99, 100)
	bad.observe(0, 500, false) // over target
	st := bad.status(0)
	wantBurn := 1 / bad.obj.allowedBadFrac() // 1 / 0.01 = 100
	if math.Abs(st.FastBurn-wantBurn) > 1e-6 || math.Abs(st.SlowBurn-wantBurn) > 1e-6 {
		t.Fatalf("single bad sample burn = %v/%v, want %v", st.FastBurn, st.SlowBurn, wantBurn)
	}
	if st.Met {
		t.Fatal("single over-target sample: p99 must be unmet")
	}
}

// TestBurnRateSteadyViolation checks the canonical reading: a service
// failing at exactly N× its allowed bad fraction burns at N.
func TestBurnRateSteadyViolation(t *testing.T) {
	s := errorState(0.02)
	now := int64(time.Second)
	for i := 0; i < 100; i++ {
		s.observe(now, 10, i < 4) // 4% failures against a 2% target
	}
	st := s.status(now)
	if math.Abs(st.FastBurn-2) > 1e-6 || math.Abs(st.SlowBurn-2) > 1e-6 {
		t.Fatalf("4%% failures on 2%% target: burn = %v/%v, want 2", st.FastBurn, st.SlowBurn)
	}
	if st.Met {
		t.Fatal("error rate above target must be unmet")
	}
	if math.Abs(st.Value-0.04) > 1e-9 {
		t.Fatalf("error-rate value = %v, want 0.04", st.Value)
	}
}

// TestBurnRateClockSkewedSamples: samples with wandering timestamps still
// land in the windows and produce a finite, sane burn.
func TestBurnRateClockSkewedSamples(t *testing.T) {
	s := errorState(0.1)
	now := int64(10 * time.Minute)
	s.observe(now, 10, true)
	s.observe(now-int64(3*time.Minute), 10, true) // stale stamp, clamped
	s.observe(now+int64(time.Second), 10, false)  // slightly future stamp
	st := s.status(now + int64(time.Second))
	if st.Samples != 3 {
		t.Fatalf("ledger samples = %d, want 3 (skewed samples kept)", st.Samples)
	}
	if st.SlowBurn <= 0 || math.IsInf(st.SlowBurn, 0) || math.IsNaN(st.SlowBurn) {
		t.Fatalf("skewed-sample burn = %v, want finite positive", st.SlowBurn)
	}
}

// TestFastSlowWindowDivergence: after a burst of failures stops, the fast
// window forgives before the slow window does — the property multi-window
// alerting depends on.
func TestFastSlowWindowDivergence(t *testing.T) {
	s := errorState(0.02)
	start := int64(time.Minute)
	for i := 0; i < 50; i++ {
		s.observe(start, 10, true) // total outage burst
	}
	// 30s later: fast (10s) window has slid past the burst, slow (60s) has not.
	later := start + int64(30*time.Second)
	for i := 0; i < 5; i++ {
		s.observe(later, 10, false)
	}
	st := s.status(later)
	if st.FastBurn != 0 {
		t.Fatalf("fast burn 30s after burst = %v, want 0", st.FastBurn)
	}
	if st.SlowBurn <= 1 {
		t.Fatalf("slow burn 30s after burst = %v, want > 1 (burst still in window)", st.SlowBurn)
	}
}

func TestBudgetLedger(t *testing.T) {
	var l budgetLedger
	if r := l.remaining(0.02); r != 1 {
		t.Fatalf("empty ledger remaining = %v, want 1", r)
	}
	// 1000 samples at exactly the allowed rate: budget exactly spent.
	l = budgetLedger{total: 1000, bad: 20}
	if r := l.remaining(0.02); math.Abs(r) > 1e-9 {
		t.Fatalf("at-rate ledger remaining = %v, want 0", r)
	}
	// Half the allowed rate: half the budget left.
	l = budgetLedger{total: 1000, bad: 10}
	if r := l.remaining(0.02); math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("half-rate ledger remaining = %v, want 0.5", r)
	}
	// Twice the allowed rate: blown, negative.
	l = budgetLedger{total: 1000, bad: 40}
	if r := l.remaining(0.02); r >= 0 {
		t.Fatalf("blown ledger remaining = %v, want negative", r)
	}
}

func TestLatencyObjectiveStatusValue(t *testing.T) {
	s := latencyState(0.5, 100)
	now := int64(time.Second)
	for _, v := range []int64{10, 20, 90, 95, 400} {
		s.observe(now, v, false)
	}
	st := s.status(now)
	if st.Value != 90 {
		t.Fatalf("p50 value = %v, want 90", st.Value)
	}
	if !st.Met {
		t.Fatal("p50=90 against 100 target: want met")
	}
	// 1 of 5 samples over target vs 50% allowed → burn 0.2/0.5 = 0.4.
	if math.Abs(st.SlowBurn-0.4) > 1e-6 {
		t.Fatalf("slow burn = %v, want 0.4", st.SlowBurn)
	}
}
