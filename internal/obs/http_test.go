package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"batchzk/internal/telemetry"
)

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: body is not JSON: %q: %v", path, rec.Body.String(), err)
	}
	return rec, body
}

func TestHealthzAlwaysOK(t *testing.T) {
	prev := Active()
	defer Enable(prev)
	h := Handler()

	Enable(nil)
	rec, body := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" || body["obs_enabled"] != false {
		t.Fatalf("healthz with obs off: %d %v", rec.Code, body)
	}

	Enable(New(Config{}))
	rec, body = get(t, h, "/healthz")
	if rec.Code != http.StatusOK || body["obs_enabled"] != true {
		t.Fatalf("healthz with obs on: %d %v", rec.Code, body)
	}
}

func TestReadyzFlipsWithCriticalAlert(t *testing.T) {
	prev := Active()
	defer Enable(prev)
	h := Handler()

	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, nil)
	Enable(e)

	rec, body := get(t, h, "/readyz")
	if rec.Code != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh engine readyz: %d %v", rec.Code, body)
	}

	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Second), true, true)
		clk.advance(10 * time.Millisecond)
	}
	rec, body = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("storm readyz: %d %v", rec.Code, body)
	}
	if body["reason"] == "" {
		t.Fatal("not-ready response carries no reason")
	}

	clk.advance(15 * time.Second)
	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Millisecond), false, false)
		clk.advance(10 * time.Millisecond)
	}
	if rec, _ := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz did not recover: %d", rec.Code)
	}
}

func TestSLOEndpoint(t *testing.T) {
	prev := Active()
	defer Enable(prev)
	h := Handler()

	Enable(nil)
	if rec, _ := get(t, h, "/debug/obs/slo"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("slo with obs off: %d", rec.Code)
	}

	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, nil)
	Enable(e)
	e.ObserveJob(0, int64(time.Millisecond), false, false)
	e.ObserveStage("commit", int64(time.Millisecond))

	rec, body := get(t, h, "/debug/obs/slo")
	if rec.Code != http.StatusOK {
		t.Fatalf("slo: %d %q", rec.Code, rec.Body.String())
	}
	if body["schema_version"] != float64(SnapshotSchemaVersion) {
		t.Fatalf("slo schema version: %v", body["schema_version"])
	}
	jobs, ok := body["jobs"].(map[string]any)
	if !ok || jobs["total"] != float64(1) {
		t.Fatalf("slo jobs block: %v", body["jobs"])
	}
	if _, ok := body["objectives"].([]any); !ok {
		t.Fatalf("slo objectives block: %v", body["objectives"])
	}
}

// TestRoutesRegisteredOnDebugServer: linking obs mounts the operator
// routes onto telemetry's debug handler via the extension registry.
func TestRoutesRegisteredOnDebugServer(t *testing.T) {
	patterns := telemetry.DebugRoutePatterns()
	want := map[string]bool{"/healthz": false, "/readyz": false, "/debug/obs/slo": false}
	for _, p := range patterns {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("route %s not registered on the debug server (got %v)", p, patterns)
		}
	}

	prev := Active()
	defer Enable(prev)
	Enable(New(Config{}))
	h := telemetry.DebugHandler(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug server /healthz: %d", rec.Code)
	}
}
