package obs

import (
	"testing"
	"time"
)

func TestWindowQuantileEmpty(t *testing.T) {
	w := newSampleWindow(time.Second)
	if v, ok := w.Quantile(0, 0.99); ok || v != 0 {
		t.Fatalf("empty window: got (%d, %v), want (0, false)", v, ok)
	}
	if frac, ok := w.BadFrac(0); ok || frac != 0 {
		t.Fatalf("empty window bad frac: got (%v, %v), want (0, false)", frac, ok)
	}
}

func TestWindowQuantileSingleSample(t *testing.T) {
	w := newSampleWindow(time.Second)
	w.Add(100, 42, false)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v, ok := w.Quantile(100, q)
		if !ok || v != 42 {
			t.Fatalf("single sample q=%v: got (%d, %v), want (42, true)", q, v, ok)
		}
	}
}

// TestWindowQuantileMergesBuckets spreads samples across several time
// buckets and checks the quantile is computed over the merged set, not
// any single bucket.
func TestWindowQuantileMergesBuckets(t *testing.T) {
	w := newSampleWindow(time.Second)
	bucket := w.bucketNs
	// 100 samples 1..100, one per sub-bucket step, spanning ~8 buckets.
	for i := int64(1); i <= 100; i++ {
		w.Add(i*bucket/13, i, false)
	}
	now := 100 * bucket / 13
	p50, ok := w.Quantile(now, 0.5)
	if !ok {
		t.Fatal("merged window reported empty")
	}
	if p50 < 40 || p50 > 60 {
		t.Fatalf("merged p50 = %d, want ≈ 50", p50)
	}
	p99, _ := w.Quantile(now, 0.99)
	if p99 < 95 {
		t.Fatalf("merged p99 = %d, want ≥ 95", p99)
	}
	if total, _ := w.Counts(now); total != 100 {
		t.Fatalf("merged count = %d, want 100", total)
	}
}

// TestWindowSlidesOutOldSamples advances time past the window span and
// checks retired buckets no longer contribute.
func TestWindowSlidesOutOldSamples(t *testing.T) {
	w := newSampleWindow(time.Second)
	w.Add(0, 1_000_000, true) // an old, bad, slow sample
	// Two window spans later, only the fresh samples remain.
	later := int64(2 * time.Second)
	w.Add(later, 10, false)
	if total, bad := w.Counts(later); total != 1 || bad != 0 {
		t.Fatalf("after slide: total=%d bad=%d, want 1, 0", total, bad)
	}
	if v, ok := w.Quantile(later, 0.99); !ok || v != 10 {
		t.Fatalf("after slide p99 = (%d, %v), want (10, true)", v, ok)
	}
}

// TestWindowClockSkewedSamples feeds a sample stamped before already-seen
// time: it must land inside the window (clamped), never be dropped, and
// never corrupt the ring.
func TestWindowClockSkewedSamples(t *testing.T) {
	w := newSampleWindow(time.Second)
	now := int64(10 * time.Second)
	w.Add(now, 100, false)
	// A worker with a lagging stamp: several windows in the past.
	w.Add(now-int64(5*time.Second), 200, true)
	total, bad := w.Counts(now)
	if total != 2 || bad != 1 {
		t.Fatalf("skewed sample lost: total=%d bad=%d, want 2, 1", total, bad)
	}
	// Mildly skewed (within the window) keeps its own bucket.
	w.Add(now-w.bucketNs, 300, false)
	if total, _ = w.Counts(now); total != 3 {
		t.Fatalf("mildly skewed sample lost: total=%d, want 3", total)
	}
	// Future-stamped samples advance the window rather than vanish. The
	// heavily skewed sample was clamped into the oldest live bucket, so
	// this one-bucket advance retires exactly it: 4 recorded, 3 live.
	w.Add(now+w.bucketNs, 400, false)
	if total, _ = w.Counts(now + w.bucketNs); total != 3 {
		t.Fatalf("after future sample: total=%d, want 3 (clamped sample retired)", total)
	}
}

func TestWindowBadFracAndSumRate(t *testing.T) {
	w := newSampleWindow(time.Second)
	now := int64(time.Second)
	for i := 0; i < 8; i++ {
		w.Add(now, 10, i < 2) // 2 of 8 bad
	}
	frac, ok := w.BadFrac(now)
	if !ok || frac != 0.25 {
		t.Fatalf("bad frac = (%v, %v), want (0.25, true)", frac, ok)
	}
	// 8 samples over a 1s window = 8/s.
	if rate := w.SumRate(now); rate < 7.9 || rate > 8.1 {
		t.Fatalf("sum rate = %v, want ≈ 8", rate)
	}
}

// TestWindowBucketCapKeepsCounting floods one bucket past the sample cap
// and checks rates stay exact even though quantile storage is bounded.
func TestWindowBucketCapKeepsCounting(t *testing.T) {
	w := newSampleWindow(time.Second)
	now := int64(time.Second)
	n := int64(bucketSampleCap + 100)
	for i := int64(0); i < n; i++ {
		w.Add(now, 5, true)
	}
	total, bad := w.Counts(now)
	if total != n || bad != n {
		t.Fatalf("capped bucket counts: total=%d bad=%d, want %d", total, bad, n)
	}
	if v, ok := w.Quantile(now, 0.5); !ok || v != 5 {
		t.Fatalf("capped bucket quantile = (%d, %v), want (5, true)", v, ok)
	}
}
