package obs

import (
	"fmt"
	"sync"
)

// Anomaly sentinel.
//
// The sentinel watches live measurement streams — per-kernel ns/element,
// per-stage latency, per-shard failure rates, SLO burn — and raises
// structured Alerts when a stream departs from where it should be. Two
// reference points anchor "should":
//
//   - the calibrated roofline floors (batchzk-profile roofline): a
//     kernel's measured ns/element can never legitimately sit far above
//     the arithmetic it cannot avoid, so measured > FloorFactor × floor
//     is a regression regardless of history;
//   - the recent baseline: an exponentially weighted moving average of
//     the stream's own past, so drift is caught even for streams with no
//     analytic floor (ZKProphet's observation that ZKP bottlenecks move
//     as inputs scale is exactly this failure mode).
//
// Alerts are hysteretic: a stream must breach for RaiseAfter consecutive
// observations to raise and recover for ClearAfter consecutive
// observations to clear, so a value oscillating across the threshold
// cannot flap an alert. The EWMA baseline is frozen while a stream is in
// breach — otherwise the anomaly itself would become the new normal and
// the alert would clear spuriously.

// Alert kinds.
const (
	AlertKernelRegression = "kernel-regression"
	AlertStageRegression  = "stage-regression"
	AlertShardFailures    = "shard-failure-rate"
	AlertSLOBurn          = "slo-burn"
	AlertQuarantineStorm  = "quarantine-storm"
)

// Alert severities. Critical alerts flip /readyz to not-ready.
const (
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// Alert is one structured sentinel finding, also emitted as an
// "alert.raised"/"alert.cleared" log event.
type Alert struct {
	ID       int64  `json:"id"`
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	// Subject names the degraded thing: a kernel, a stage, "shard/3", an
	// objective name.
	Subject string `json:"subject"`
	// Value is the observation that breached; Baseline is the reference
	// it was judged against (EWMA, floor, fleet rate, or burn threshold).
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	// Reason is the human-readable one-liner.
	Reason   string `json:"reason"`
	RaisedNs int64  `json:"raised_ns"`
	// ClearedNs is zero while the alert is active.
	ClearedNs int64 `json:"cleared_ns,omitempty"`
}

// Active reports whether the alert has not yet cleared.
func (a Alert) Active() bool { return a.ClearedNs == 0 }

// SentinelConfig tunes the sentinel's judgment. The zero value is
// usable: every field defaults as documented.
type SentinelConfig struct {
	// Alpha is the EWMA weight of a new sample (default 0.2).
	Alpha float64
	// DegradeFactor raises when value > DegradeFactor × EWMA baseline
	// (default 2.5).
	DegradeFactor float64
	// FloorFactor raises when value > FloorFactor × the subject's
	// calibrated roofline floor (default 8; floors describe serial
	// arithmetic lower bounds, so honest measurements sit a few × above).
	FloorFactor float64
	// MinSamples is the EWMA warm-up: no baseline judgment before this
	// many observations of a stream (default 8).
	MinSamples int
	// RaiseAfter is how many consecutive breaches raise an alert
	// (default 3); ClearAfter is how many consecutive healthy
	// observations clear it (default 3).
	RaiseAfter int
	ClearAfter int
	// AlertCap bounds the retained alert history (default 256).
	AlertCap int
}

func (c SentinelConfig) withDefaults() SentinelConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.DegradeFactor <= 1 {
		c.DegradeFactor = 2.5
	}
	if c.FloorFactor <= 1 {
		c.FloorFactor = 8
	}
	if c.MinSamples < 1 {
		c.MinSamples = 8
	}
	if c.RaiseAfter < 1 {
		c.RaiseAfter = 3
	}
	if c.ClearAfter < 1 {
		c.ClearAfter = 3
	}
	if c.AlertCap < 1 {
		c.AlertCap = 256
	}
	return c
}

// track is one watched stream's state.
type track struct {
	ewma    float64
	n       int
	breach  int // consecutive breaching observations
	healthy int // consecutive healthy observations
}

// Sentinel holds the tracked baselines and the alert ledger. Safe for
// concurrent use; nil-safe like the rest of the package.
type Sentinel struct {
	cfg SentinelConfig

	mu     sync.Mutex
	floors map[string]float64
	tracks map[string]*track
	active map[string]*Alert // key → the live alert
	log    []Alert           // raised alerts, oldest first, capped
	nextID int64
	// onRaise/onClear let the engine log and count without the sentinel
	// knowing about loggers; called outside the judgment hot path but
	// under mu, so handlers must not call back into the sentinel.
	onRaise func(Alert)
	onClear func(Alert)
}

// NewSentinel builds a sentinel with the given config (zero = defaults).
func NewSentinel(cfg SentinelConfig) *Sentinel {
	return &Sentinel{
		cfg:    cfg.withDefaults(),
		floors: map[string]float64{},
		tracks: map[string]*track{},
		active: map[string]*Alert{},
	}
}

// SetFloor installs (or updates) subject's calibrated roofline floor in
// ns/element. Nil-safe.
func (s *Sentinel) SetFloor(subject string, floorNsPerElement float64) {
	if s == nil || floorNsPerElement <= 0 {
		return
	}
	s.mu.Lock()
	s.floors[subject] = floorNsPerElement
	s.mu.Unlock()
}

// SetFloors installs a batch of roofline floors. Nil-safe.
func (s *Sentinel) SetFloors(floors map[string]float64) {
	for k, v := range floors {
		s.SetFloor(k, v)
	}
}

// Observe feeds one measurement of a stream identified by (kind,
// subject): per-kernel or per-stage ns values. The sentinel judges it
// against the subject's roofline floor (when one is installed) and its
// EWMA baseline, applies hysteresis, and returns the alert raised by
// this observation (nil otherwise). Nil-safe.
func (s *Sentinel) Observe(kind, subject string, value float64, nowNs int64) *Alert {
	if s == nil || value < 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := kind + "/" + subject
	t := s.tracks[key]
	if t == nil {
		t = &track{}
		s.tracks[key] = t
	}

	breach := false
	baseline := 0.0
	reason := ""
	if floor, ok := s.floors[subject]; ok && value > s.cfg.FloorFactor*floor {
		breach = true
		baseline = floor
		reason = fmt.Sprintf("%s at %.1f ns/elem exceeds %gx its calibrated roofline floor (%.1f ns/elem)",
			subject, value, s.cfg.FloorFactor, floor)
	}
	if !breach && t.n >= s.cfg.MinSamples && value > s.cfg.DegradeFactor*t.ewma {
		breach = true
		baseline = t.ewma
		reason = fmt.Sprintf("%s at %.1f exceeds %gx its recent baseline (%.1f)",
			subject, value, s.cfg.DegradeFactor, t.ewma)
	}
	if !breach {
		// Fold healthy samples into the baseline; breaching samples are
		// excluded so the anomaly cannot become the new normal.
		if t.n == 0 {
			t.ewma = value
		} else {
			t.ewma = s.cfg.Alpha*value + (1-s.cfg.Alpha)*t.ewma
		}
		t.n++
	}
	return s.judgeLocked(key, kind, subject, SeverityWarning, t, breach, value, baseline, reason, nowNs)
}

// Judge applies pure hysteresis to a stream the caller has already
// judged: breach says whether this observation violates the stream's
// condition, baseline documents the reference. The engine uses it for
// conditions the sentinel cannot derive itself (SLO burn thresholds,
// fleet-relative shard failure rates, quarantine storms). Returns the
// alert raised by this observation, if any. Nil-safe.
func (s *Sentinel) Judge(kind, subject, severity string, breach bool, value, baseline float64, reason string, nowNs int64) *Alert {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := kind + "/" + subject
	t := s.tracks[key]
	if t == nil {
		t = &track{}
		s.tracks[key] = t
	}
	return s.judgeLocked(key, kind, subject, severity, t, breach, value, baseline, reason, nowNs)
}

// judgeLocked runs the raise/clear hysteresis for one observation; the
// caller holds s.mu.
func (s *Sentinel) judgeLocked(key, kind, subject, severity string, t *track, breach bool, value, baseline float64, reason string, nowNs int64) *Alert {
	if breach {
		t.breach++
		t.healthy = 0
		if t.breach >= s.cfg.RaiseAfter && s.active[key] == nil {
			s.nextID++
			a := Alert{
				ID: s.nextID, Kind: kind, Severity: severity, Subject: subject,
				Value: value, Baseline: baseline, Reason: reason, RaisedNs: nowNs,
			}
			s.active[key] = &a
			if len(s.log) >= s.cfg.AlertCap {
				s.log = s.log[1:]
			}
			s.log = append(s.log, a)
			if s.onRaise != nil {
				s.onRaise(a)
			}
			return &a
		}
		return nil
	}
	t.healthy++
	t.breach = 0
	if a := s.active[key]; a != nil && t.healthy >= s.cfg.ClearAfter {
		a.ClearedNs = nowNs
		if a.ClearedNs == 0 {
			a.ClearedNs = 1 // a zero clear stamp would read as still-active
		}
		// Mirror the clear into the history entry with the same ID.
		for i := range s.log {
			if s.log[i].ID == a.ID {
				s.log[i].ClearedNs = a.ClearedNs
			}
		}
		delete(s.active, key)
		if s.onClear != nil {
			s.onClear(*a)
		}
	}
	return nil
}

// ActiveAlerts returns the live alerts, most recently raised first.
func (s *Sentinel) ActiveAlerts() []Alert {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, 0, len(s.active))
	for _, a := range s.active {
		out = append(out, *a)
	}
	sortAlerts(out)
	return out
}

// Alerts returns the alert history (active and cleared), most recently
// raised first, capped at AlertCap entries.
func (s *Sentinel) Alerts() []Alert {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, len(s.log))
	copy(out, s.log)
	sortAlerts(out)
	return out
}

// sortAlerts orders newest-raised first with ID as the tiebreaker.
func sortAlerts(a []Alert) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j-1], a[j]); j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func less(x, y Alert) bool {
	if x.RaisedNs != y.RaisedNs {
		return x.RaisedNs < y.RaisedNs
	}
	return x.ID < y.ID
}
