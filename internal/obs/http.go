package obs

import (
	"encoding/json"
	"net/http"

	"batchzk/internal/telemetry"
)

// Operator surfaces. Three routes ride on the telemetry debug server
// (registered at package init, resolved against the active engine at
// request time, so they exist as soon as any instrumented layer links
// this package):
//
//	/healthz        — liveness: 200 whenever the process serves requests,
//	                  with uptime and whether obs is enabled.
//	/readyz         — readiness: 200 while no critical alert is active;
//	                  503 with the blocking reason during a quarantine
//	                  storm or sustained SLO burn. Flips back on recovery.
//	/debug/obs/slo  — the full Snapshot JSON: job counters, per-stage
//	                  throughput and latency, objective attainment and
//	                  burn rates, budget ledgers, active alerts. This is
//	                  the feed batchzk-top renders.

func init() {
	telemetry.RegisterDebugRoute("/healthz", http.HandlerFunc(handleHealthz))
	telemetry.RegisterDebugRoute("/readyz", http.HandlerFunc(handleReadyz))
	telemetry.RegisterDebugRoute("/debug/obs/slo", http.HandlerFunc(handleSLO))
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	Status   string `json:"status"`
	Obs      bool   `json:"obs_enabled"`
	UptimeNs int64  `json:"uptime_ns,omitempty"`
}

// readyzResponse is the /readyz body.
type readyzResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	e := Active()
	resp := healthzResponse{Status: "ok", Obs: e != nil}
	if e != nil {
		resp.UptimeNs = e.Uptime().Nanoseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := Active().Ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, readyzResponse{Ready: ready, Reason: reason})
}

func handleSLO(w http.ResponseWriter, _ *http.Request) {
	e := Active()
	if e == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "obs disabled"})
		return
	}
	writeJSON(w, http.StatusOK, e.Snapshot())
}

// Handler returns a standalone mux with the three operator routes, for
// embedding into servers that do not use the telemetry debug handler
// (the vml predict server, tests).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/readyz", handleReadyz)
	mux.HandleFunc("/debug/obs/slo", handleSLO)
	return mux
}
