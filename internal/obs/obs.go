// Package obs is the always-on operations layer of the reproduction: the
// live answer to "is the prover healthy, and will anyone notice before
// the clients do?".
//
// internal/telemetry records what happened — metrics, spans, per-job
// flight timelines. This package judges it, in four coupled parts:
//
//   - a structured, leveled event log (log/slog, JSON, trace-id-aware)
//     that core, sched, gpusim, and vml emit operational events into;
//   - an SLO engine: configurable objectives (end-to-end p99 latency,
//     per-stage latency, error rate) evaluated over sliding windows,
//     with multi-window burn rates and an error-budget ledger;
//   - an anomaly sentinel comparing live per-kernel ns/element against
//     the calibrated roofline floors and EWMA baselines, and per-shard
//     failure rates against the fleet, raising hysteretic Alerts;
//   - operator surfaces: /healthz, /readyz, and /debug/obs/slo on the
//     telemetry debug server, consumed by the batchzk-top console.
//
// Like internal/telemetry, the package is disabled by default and costs
// one nil check per instrumentation point: Enable installs a process-wide
// Engine, every method is a no-op on a nil receiver, and all state is
// safe for concurrent use.
package obs

import (
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Config assembles an Engine. The zero value is usable: logging off,
// default objectives, default windows and sentinel thresholds.
type Config struct {
	// LogOutput receives the JSON event log; nil disables logging (the
	// SLO engine and sentinel still run).
	LogOutput io.Writer
	// LogLevel is the minimum emitted level (default Info).
	LogLevel slog.Leveler
	// Objectives are the SLOs to track (nil = DefaultObjectives).
	Objectives []Objective
	// FastWindow and SlowWindow are the burn-rate evaluation windows
	// (defaults 10s and 60s). The fast window catches cliffs, the slow
	// window confirms they are not blips.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold pages when both windows burn at or above it
	// (default 2: spending budget at twice the sustainable rate).
	BurnThreshold float64
	// QuarantineStormFrac flips readiness when the quarantined fraction
	// of jobs in the fast window reaches it (default 0.25).
	QuarantineStormFrac float64
	// MinJudgeSamples is the fewest fast-window samples before storm,
	// burn, or shard judgments fire (default 8) — one bad job in an
	// empty window is not a storm.
	MinJudgeSamples int
	// ShardFailFactor and ShardFailMargin raise a shard alert when a
	// shard's fast-window failure rate exceeds
	// fleet×ShardFailFactor + ShardFailMargin (defaults 2 and 0.1).
	ShardFailFactor float64
	ShardFailMargin float64
	// Sentinel tunes the anomaly sentinel (zero = defaults).
	Sentinel SentinelConfig
	// Floors seeds the sentinel's per-kernel roofline floors
	// (kernel name → calibrated ns/element).
	Floors map[string]float64
	// Now overrides the clock for tests (default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Objectives == nil {
		c.Objectives = DefaultObjectives()
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 10 * time.Second
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Minute
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 2
	}
	if c.QuarantineStormFrac <= 0 || c.QuarantineStormFrac > 1 {
		c.QuarantineStormFrac = 0.25
	}
	if c.MinJudgeSamples < 1 {
		c.MinJudgeSamples = 8
	}
	if c.ShardFailFactor <= 0 {
		c.ShardFailFactor = 2
	}
	if c.ShardFailMargin <= 0 {
		c.ShardFailMargin = 0.1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// stageTrack accumulates one pipeline stage's live stream.
type stageTrack struct {
	window  *sampleWindow
	count   int64
	totalNs int64
}

// Engine is the live health evaluator. Build with New, install
// process-wide with Enable. All methods are nil-safe and safe for
// concurrent use.
type Engine struct {
	cfg   Config
	log   *slog.Logger
	start time.Time

	queueDepth atomic.Int64

	mu         sync.Mutex
	objectives []*objectiveState
	stages     map[string]*stageTrack
	stageOrder []string
	shards     map[int]*sampleWindow
	fleet      *sampleWindow // all jobs, bad = failed (shard comparison base)
	quar       *sampleWindow // all jobs, bad = quarantined (storm detection)
	jobs       int64
	failed     int64
	quarN      int64

	sentinel *Sentinel
}

// New builds an Engine from cfg (zero Config = sane defaults).
// Objectives are validated; an invalid objective is dropped with an
// error event rather than failing construction, so a misconfigured
// target can never take observability down with it.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:      cfg,
		log:      newLogger(cfg.LogOutput, cfg.LogLevel),
		start:    cfg.Now(),
		stages:   map[string]*stageTrack{},
		shards:   map[int]*sampleWindow{},
		fleet:    newSampleWindow(cfg.FastWindow),
		quar:     newSampleWindow(cfg.FastWindow),
		sentinel: NewSentinel(cfg.Sentinel),
	}
	for _, o := range cfg.Objectives {
		if err := o.validate(); err != nil {
			e.Event(slog.LevelError, "obs", "objective.invalid", Err(err))
			continue
		}
		e.objectives = append(e.objectives, &objectiveState{
			obj:  o,
			fast: newSampleWindow(cfg.FastWindow),
			slow: newSampleWindow(cfg.SlowWindow),
		})
	}
	e.sentinel.SetFloors(cfg.Floors)
	e.sentinel.onRaise = func(a Alert) {
		e.Event(slog.LevelError, "obs", "alert.raised",
			slog.String("kind", a.Kind), slog.String("subject", a.Subject),
			slog.String("severity", a.Severity), slog.Float64("value", a.Value),
			slog.Float64("baseline", a.Baseline), slog.String("reason", a.Reason))
	}
	e.sentinel.onClear = func(a Alert) {
		e.Event(slog.LevelInfo, "obs", "alert.cleared",
			slog.String("kind", a.Kind), slog.String("subject", a.Subject),
			slog.String("severity", a.Severity))
	}
	e.Event(slog.LevelInfo, "obs", "engine.started",
		slog.Int("objectives", len(e.objectives)),
		slog.Duration("fast_window", cfg.FastWindow),
		slog.Duration("slow_window", cfg.SlowWindow))
	return e
}

// global is the process-wide engine; nil means obs is off.
var global atomic.Pointer[Engine]

// Enable installs e as the process-wide engine picked up by every
// instrumented layer. Enable(nil) disables obs again.
func Enable(e *Engine) { global.Store(e) }

// Active returns the process-wide engine, or nil when obs is off.
func Active() *Engine { return global.Load() }

// Resolve returns the explicit engine when non-nil, else the global one.
func Resolve(explicit *Engine) *Engine {
	if explicit != nil {
		return explicit
	}
	return Active()
}

// nowNs returns the engine clock in unix nanoseconds.
func (e *Engine) nowNs() int64 { return e.cfg.Now().UnixNano() }

// Sentinel exposes the engine's sentinel (nil on a nil engine), for
// callers that feed measurements directly (the roofline profiler).
func (e *Engine) Sentinel() *Sentinel {
	if e == nil {
		return nil
	}
	return e.sentinel
}

// SetFloors installs calibrated roofline floors (kernel →
// ns/element) on the sentinel. Nil-safe.
func (e *Engine) SetFloors(floors map[string]float64) {
	if e == nil {
		return
	}
	e.sentinel.SetFloors(floors)
	e.Event(slog.LevelInfo, "obs", "roofline.floors_loaded", slog.Int("kernels", len(floors)))
}

// ObserveQueueDepth records the live number of jobs inside the pipeline.
func (e *Engine) ObserveQueueDepth(depth int64) {
	if e == nil {
		return
	}
	e.queueDepth.Store(depth)
}

// ObserveJob folds one finished job into every end-to-end objective, the
// fleet and quarantine windows, and the per-shard failure tracking, then
// re-judges the storm, burn, and shard conditions. shard is -1 for an
// unsharded prover.
func (e *Engine) ObserveJob(shard int, e2eNs int64, failed, quarantined bool) {
	if e == nil {
		return
	}
	now := e.nowNs()
	e.mu.Lock()
	e.jobs++
	if failed {
		e.failed++
	}
	if quarantined {
		e.quarN++
	}
	for _, st := range e.objectives {
		if st.obj.Kind == KindErrorRate || (st.obj.Kind == KindLatency && st.obj.Stage == "") {
			st.observe(now, e2eNs, failed)
		}
	}
	e.fleet.Add(now, 1, failed)
	e.quar.Add(now, 1, quarantined)
	sw := e.shards[shard]
	if sw == nil {
		sw = newSampleWindow(e.cfg.FastWindow)
		e.shards[shard] = sw
	}
	sw.Add(now, 1, failed)
	e.judgeLocked(now, shard)
	e.mu.Unlock()
}

// ObserveStage folds one completed stage execution into the stage's
// live stream, any per-stage latency objectives, and the sentinel's
// stage baseline.
func (e *Engine) ObserveStage(stage string, ns int64) {
	if e == nil {
		return
	}
	now := e.nowNs()
	e.mu.Lock()
	t := e.stages[stage]
	if t == nil {
		t = &stageTrack{window: newSampleWindow(e.cfg.FastWindow)}
		e.stages[stage] = t
		e.stageOrder = append(e.stageOrder, stage)
	}
	t.window.Add(now, ns, false)
	t.count++
	t.totalNs += ns
	for _, st := range e.objectives {
		if st.obj.Kind == KindLatency && st.obj.Stage == stage {
			st.observe(now, ns, false)
		}
	}
	e.mu.Unlock()
	e.sentinel.Observe(AlertStageRegression, "stage/"+stage, float64(ns), now)
}

// ObserveKernel feeds one per-kernel ns/element measurement to the
// sentinel, judged against the kernel's calibrated roofline floor and
// its recent baseline.
func (e *Engine) ObserveKernel(kernel string, nsPerElement float64) {
	if e == nil {
		return
	}
	e.sentinel.Observe(AlertKernelRegression, kernel, nsPerElement, e.nowNs())
}

// judgeLocked re-evaluates the storm, SLO-burn, and shard-vs-fleet
// conditions after a job observation; e.mu is held.
func (e *Engine) judgeLocked(now int64, shard int) {
	minN := int64(e.cfg.MinJudgeSamples)

	// Quarantine storm: the fast window's quarantined fraction.
	total, bad := e.quar.Counts(now)
	frac := 0.0
	if total > 0 {
		frac = float64(bad) / float64(total)
	}
	e.sentinel.Judge(AlertQuarantineStorm, "pipeline", SeverityCritical,
		total >= minN && frac >= e.cfg.QuarantineStormFrac,
		frac, e.cfg.QuarantineStormFrac,
		"quarantined job fraction over the fast window at or above the storm threshold", now)

	// Multi-window SLO burn per objective.
	for _, st := range e.objectives {
		allowed := st.obj.allowedBadFrac()
		fastN, _ := st.fast.Counts(now)
		fb := burn(st.fast, now, allowed)
		sb := burn(st.slow, now, allowed)
		e.sentinel.Judge(AlertSLOBurn, st.obj.Name, SeverityCritical,
			fastN >= minN && fb >= e.cfg.BurnThreshold && sb >= e.cfg.BurnThreshold,
			fb, e.cfg.BurnThreshold,
			"error budget burning above threshold in both the fast and slow windows", now)
	}

	// This shard's failure rate against the fleet.
	if sw := e.shards[shard]; sw != nil && shard >= 0 {
		sTotal, sBad := sw.Counts(now)
		fTotal, fBad := e.fleet.Counts(now)
		if sTotal >= minN && fTotal > 0 {
			sRate := float64(sBad) / float64(sTotal)
			fRate := float64(fBad) / float64(fTotal)
			limit := fRate*e.cfg.ShardFailFactor + e.cfg.ShardFailMargin
			e.sentinel.Judge(AlertShardFailures, shardSubject(shard), SeverityWarning,
				sRate > limit, sRate, limit,
				"shard failure rate departing from the fleet", now)
		}
	}
}

func shardSubject(shard int) string {
	if shard < 0 {
		return "shard/unsharded"
	}
	return "shard/" + itoa(shard)
}

// itoa avoids strconv in the hot path signature (tiny shard counts).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Ready reports readiness: false (with a reason) while any critical
// alert is active. A nil engine is ready — obs off means "don't gate".
func (e *Engine) Ready() (bool, string) {
	if e == nil {
		return true, "obs disabled"
	}
	for _, a := range e.sentinel.ActiveAlerts() {
		if a.Severity == SeverityCritical {
			return false, a.Kind + " on " + a.Subject + ": " + a.Reason
		}
	}
	return true, "ok"
}

// ActiveAlerts returns the live alerts, newest first. Nil-safe.
func (e *Engine) ActiveAlerts() []Alert {
	if e == nil {
		return nil
	}
	return e.sentinel.ActiveAlerts()
}

// Alerts returns the alert history, newest first. Nil-safe.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	return e.sentinel.Alerts()
}

// SnapshotSchemaVersion identifies the /debug/obs/slo JSON layout.
const SnapshotSchemaVersion = 1

// StageStatus is one pipeline stage's live view in a Snapshot.
type StageStatus struct {
	Name string `json:"name"`
	// RatePerSec is the stage's completion throughput over the fast
	// window; P50Ns/P99Ns are its fast-window latency quantiles.
	RatePerSec float64 `json:"rate_per_sec"`
	P50Ns      float64 `json:"p50_ns"`
	P99Ns      float64 `json:"p99_ns"`
	// Count and TotalNs are lifetime accumulations.
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

// JobCounters is the lifetime job accounting of a Snapshot.
type JobCounters struct {
	Total       int64 `json:"total"`
	Failed      int64 `json:"failed"`
	Quarantined int64 `json:"quarantined"`
	QueueDepth  int64 `json:"queue_depth"`
}

// Snapshot is the operator view served on /debug/obs/slo and rendered
// by batchzk-top.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	NowNs         int64  `json:"now_ns"`
	UptimeNs      int64  `json:"uptime_ns"`
	Ready         bool   `json:"ready"`
	ReadyReason   string `json:"ready_reason"`

	Jobs       JobCounters       `json:"jobs"`
	Stages     []StageStatus     `json:"stages"`
	Objectives []ObjectiveStatus `json:"objectives"`
	// ActiveAlerts are the live alerts; AlertsTotal counts every alert
	// ever raised (history is capped, the counter is not).
	ActiveAlerts []Alert `json:"active_alerts"`
	AlertsTotal  int64   `json:"alerts_total"`
}

// Snapshot evaluates everything at the engine clock's now. Nil-safe: a
// nil engine returns a ready, empty snapshot.
func (e *Engine) Snapshot() Snapshot {
	if e == nil {
		ready, reason := e.Ready()
		return Snapshot{SchemaVersion: SnapshotSchemaVersion, Ready: ready, ReadyReason: reason}
	}
	now := e.nowNs()
	ready, reason := e.Ready()
	s := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		NowNs:         now,
		UptimeNs:      now - e.start.UnixNano(),
		Ready:         ready,
		ReadyReason:   reason,
		ActiveAlerts:  e.sentinel.ActiveAlerts(),
	}
	if s.ActiveAlerts == nil {
		s.ActiveAlerts = []Alert{}
	}
	e.sentinel.mu.Lock()
	s.AlertsTotal = e.sentinel.nextID
	e.sentinel.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	s.Jobs = JobCounters{
		Total: e.jobs, Failed: e.failed, Quarantined: e.quarN,
		QueueDepth: e.queueDepth.Load(),
	}
	s.Stages = make([]StageStatus, 0, len(e.stageOrder))
	for _, name := range e.stageOrder {
		t := e.stages[name]
		st := StageStatus{Name: name, Count: t.count, TotalNs: t.totalNs,
			RatePerSec: t.window.SumRate(now)}
		if q, ok := t.window.Quantile(now, 0.50); ok {
			st.P50Ns = float64(q)
		}
		if q, ok := t.window.Quantile(now, 0.99); ok {
			st.P99Ns = float64(q)
		}
		s.Stages = append(s.Stages, st)
	}
	s.Objectives = make([]ObjectiveStatus, 0, len(e.objectives))
	for _, st := range e.objectives {
		s.Objectives = append(s.Objectives, st.status(now))
	}
	return s
}

// Uptime returns how long the engine has been alive. Nil-safe.
func (e *Engine) Uptime() time.Duration {
	if e == nil {
		return 0
	}
	return e.cfg.Now().Sub(e.start)
}
