package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable engine clock.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns) }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

func testEngine(clk *fakeClock, out *bytes.Buffer) *Engine {
	cfg := Config{
		Now:             clk.now,
		MinJudgeSamples: 4,
		Sentinel:        SentinelConfig{MinSamples: 4, RaiseAfter: 2, ClearAfter: 2},
	}
	if out != nil {
		cfg.LogOutput = out
	}
	return New(cfg)
}

func TestEngineNilSafe(t *testing.T) {
	var e *Engine
	e.ObserveJob(0, 100, false, false)
	e.ObserveStage("commit", 100)
	e.ObserveKernel("ntt", 1)
	e.ObserveQueueDepth(3)
	e.SetFloors(map[string]float64{"x": 1})
	e.Event(slog.LevelInfo, "test", "noop")
	if ready, reason := e.Ready(); !ready || reason != "obs disabled" {
		t.Fatalf("nil engine Ready = %v, %q", ready, reason)
	}
	s := e.Snapshot()
	if !s.Ready || s.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("nil engine snapshot: %+v", s)
	}
	if e.Uptime() != 0 {
		t.Fatal("nil engine uptime nonzero")
	}
}

// TestQuarantineStormFlipsReadiness drives the storm condition end to
// end: healthy → storm (readiness false, critical alert) → recovery
// (readiness true again, alert cleared).
func TestQuarantineStormFlipsReadiness(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, nil)

	// Healthy traffic.
	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Millisecond), false, false)
		clk.advance(10 * time.Millisecond)
	}
	if ready, _ := e.Ready(); !ready {
		t.Fatal("healthy traffic left the engine not-ready")
	}

	// Storm: every job quarantined.
	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Second), true, true)
		clk.advance(10 * time.Millisecond)
	}
	ready, reason := e.Ready()
	if ready {
		t.Fatal("quarantine storm did not flip readiness")
	}
	if !strings.Contains(reason, AlertQuarantineStorm) {
		t.Fatalf("not-ready reason %q does not name the storm", reason)
	}
	var storm bool
	for _, a := range e.ActiveAlerts() {
		if a.Kind == AlertQuarantineStorm && a.Severity == SeverityCritical {
			storm = true
		}
	}
	if !storm {
		t.Fatalf("no critical quarantine-storm alert among %+v", e.ActiveAlerts())
	}

	// Recovery: clean jobs slide the storm out of the fast window.
	clk.advance(15 * time.Second) // fast window (10s) fully slides
	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Millisecond), false, false)
		clk.advance(10 * time.Millisecond)
	}
	if ready, reason := e.Ready(); !ready {
		t.Fatalf("engine did not recover after the storm passed: %q", reason)
	}
	// The storm alert is in history, cleared.
	var cleared bool
	for _, a := range e.Alerts() {
		if a.Kind == AlertQuarantineStorm && !a.Active() {
			cleared = true
		}
	}
	if !cleared {
		t.Fatal("storm alert missing or still active in history")
	}
}

// TestSLOBurnAlert drives sustained objective violation into a critical
// slo-burn alert via the multi-window rule.
func TestSLOBurnAlert(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, nil)
	// Fail half of all jobs against the default 2% error budget: burn 25×.
	for i := 0; i < 40; i++ {
		e.ObserveJob(0, int64(time.Millisecond), i%2 == 0, false)
		clk.advance(50 * time.Millisecond)
	}
	var burnAlert bool
	for _, a := range e.ActiveAlerts() {
		if a.Kind == AlertSLOBurn && a.Severity == SeverityCritical {
			burnAlert = true
		}
	}
	if !burnAlert {
		t.Fatalf("sustained burn raised no slo-burn alert; active = %+v", e.ActiveAlerts())
	}
	if ready, _ := e.Ready(); ready {
		t.Fatal("critical slo-burn alert did not gate readiness")
	}
}

// TestShardFailureDivergence: one shard failing while the fleet is
// healthy raises a warning-severity shard alert that does NOT gate
// readiness.
func TestShardFailureDivergence(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, nil)
	// Three healthy shards, one failing: fleet rate 25%, shard 1 at 100%,
	// past the fleet×2 + 0.1 divergence limit.
	for i := 0; i < 30; i++ {
		e.ObserveJob(0, int64(time.Millisecond), false, false)
		e.ObserveJob(2, int64(time.Millisecond), false, false)
		e.ObserveJob(3, int64(time.Millisecond), false, false)
		e.ObserveJob(1, int64(time.Millisecond), true, false)
		clk.advance(10 * time.Millisecond)
	}
	var shardAlert *Alert
	for _, a := range e.ActiveAlerts() {
		if a.Kind == AlertShardFailures {
			cp := a
			shardAlert = &cp
		}
	}
	if shardAlert == nil {
		t.Fatalf("diverging shard raised no alert; active = %+v", e.ActiveAlerts())
	}
	if shardAlert.Subject != "shard/1" {
		t.Fatalf("shard alert subject = %q, want shard/1", shardAlert.Subject)
	}
	if shardAlert.Severity != SeverityWarning {
		t.Fatalf("shard alert severity = %q, want warning", shardAlert.Severity)
	}
}

// TestCleanRunRaisesNoAlerts is the acceptance criterion's negative
// space: steady healthy traffic must never alert.
func TestCleanRunRaisesNoAlerts(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, nil)
	for i := 0; i < 500; i++ {
		shard := i % 4
		e.ObserveJob(shard, int64(time.Millisecond)+int64(i%7)*int64(100*time.Microsecond), false, false)
		for _, st := range []string{"commit", "gate-sumcheck", "linear-sumcheck", "opening"} {
			e.ObserveStage(st, int64(200*time.Microsecond)+int64(i%5)*int64(10*time.Microsecond))
		}
		e.ObserveKernel("ntt", 2.0+float64(i%3)*0.1)
		clk.advance(5 * time.Millisecond)
	}
	if alerts := e.Alerts(); len(alerts) != 0 {
		t.Fatalf("clean run raised %d alerts: %+v", len(alerts), alerts)
	}
	if ready, _ := e.Ready(); !ready {
		t.Fatal("clean run not ready")
	}
}

// TestLogEventSchema checks the JSON log contract CI's jq check relies
// on: time, level, msg, component on every record, fixed attr names.
func TestLogEventSchema(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, &buf)
	e.Event(slog.LevelWarn, "core", "job.quarantined",
		Job(7), Trace(42), Stage("opening"), Shard(2), Attempt(3), Err(nil))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		for _, key := range []string{"time", "level", "msg", "component"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("log record missing %q: %q", key, line)
			}
		}
	}
	last := lines[len(lines)-1]
	var rec map[string]any
	_ = json.Unmarshal([]byte(last), &rec)
	if rec["msg"] != "job.quarantined" || rec["component"] != "core" {
		t.Fatalf("event record: %q", last)
	}
	if rec["job_id"] != float64(7) || rec["trace_id"] != float64(42) ||
		rec["stage"] != "opening" || rec["shard"] != float64(2) ||
		rec["attempt"] != float64(3) || rec["error"] != "" {
		t.Fatalf("attr names drifted: %q", last)
	}
}

// TestAlertEventsLogged: raising and clearing alerts emits the
// alert.raised / alert.cleared events.
func TestAlertEventsLogged(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, &buf)
	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Second), true, true)
		clk.advance(10 * time.Millisecond)
	}
	clk.advance(15 * time.Second)
	for i := 0; i < 20; i++ {
		e.ObserveJob(0, int64(time.Millisecond), false, false)
		clk.advance(10 * time.Millisecond)
	}
	logs := buf.String()
	if !strings.Contains(logs, `"msg":"alert.raised"`) {
		t.Fatal("no alert.raised event in the log")
	}
	if !strings.Contains(logs, `"msg":"alert.cleared"`) {
		t.Fatal("no alert.cleared event in the log")
	}
}

func TestSnapshot(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	e := testEngine(clk, nil)
	e.ObserveQueueDepth(5)
	for i := 0; i < 10; i++ {
		e.ObserveJob(0, int64(2*time.Millisecond), false, false)
		e.ObserveStage("commit", int64(time.Millisecond))
		clk.advance(100 * time.Millisecond)
	}
	s := e.Snapshot()
	if s.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("schema version = %d", s.SchemaVersion)
	}
	if s.Jobs.Total != 10 || s.Jobs.Failed != 0 || s.Jobs.QueueDepth != 5 {
		t.Fatalf("job counters: %+v", s.Jobs)
	}
	if len(s.Stages) != 1 || s.Stages[0].Name != "commit" || s.Stages[0].Count != 10 {
		t.Fatalf("stages: %+v", s.Stages)
	}
	if s.Stages[0].RatePerSec <= 0 || s.Stages[0].P99Ns != float64(time.Millisecond) {
		t.Fatalf("stage stats: %+v", s.Stages[0])
	}
	if len(s.Objectives) != 2 {
		t.Fatalf("objectives: %+v", s.Objectives)
	}
	if !s.Ready || s.ActiveAlerts == nil {
		t.Fatalf("snapshot readiness: ready=%v alerts=%v", s.Ready, s.ActiveAlerts)
	}
	if s.UptimeNs != clk.ns-int64(time.Hour) {
		t.Fatalf("uptime = %d", s.UptimeNs)
	}
	// The snapshot must serialize (it is the /debug/obs/slo body).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

func TestInvalidObjectiveDropped(t *testing.T) {
	var buf bytes.Buffer
	e := New(Config{
		LogOutput: &buf,
		Objectives: []Objective{
			{Name: "good", Kind: KindErrorRate, TargetRate: 0.1},
			{Name: "bad", Kind: KindLatency, Quantile: 7, TargetNs: 1},
		},
	})
	e.mu.Lock()
	n := len(e.objectives)
	e.mu.Unlock()
	if n != 1 {
		t.Fatalf("engine kept %d objectives, want 1 (invalid dropped)", n)
	}
	if !strings.Contains(buf.String(), "objective.invalid") {
		t.Fatal("dropped objective not logged")
	}
}

func TestEnableResolve(t *testing.T) {
	prev := Active()
	defer Enable(prev)
	e := New(Config{})
	Enable(e)
	if Active() != e {
		t.Fatal("Enable did not install the engine")
	}
	if Resolve(nil) != e {
		t.Fatal("Resolve(nil) did not fall back to the global engine")
	}
	other := New(Config{})
	if Resolve(other) != other {
		t.Fatal("Resolve ignored the explicit engine")
	}
	Enable(nil)
	if Active() != nil {
		t.Fatal("Enable(nil) did not disable")
	}
}
