package obs

import (
	"fmt"
	"time"
)

// SLO engine.
//
// An Objective is a service-level objective over a rolling window:
// either a latency quantile ("p99 end-to-end ≤ 250ms", "p99 of the
// commit stage ≤ 50ms") or an error-rate bound ("≤ 2% of jobs fail").
// Every objective reduces to an allowed-bad-fraction: a pXX latency
// target allows (1 − XX/100) of samples over the target, an error-rate
// target allows TargetRate of jobs to fail. That single reduction gives
// the whole SRE toolkit in one place:
//
//   - attainment: is the windowed value (quantile or rate) within target;
//   - burn rate: observed bad fraction ÷ allowed bad fraction, computed
//     over both a fast and a slow window (the multi-window burn-rate rule:
//     paging only when both windows burn avoids both false alarms from
//     one bad second and blindness to slow leaks);
//   - error budget: a ledger of every sample since the engine started —
//     remaining = 1 − bad/(allowed·total), so 1.0 means untouched budget,
//     0 means exactly spent, negative means the objective is blown.

// Objective kinds.
const (
	// KindLatency targets a quantile of a latency stream: end-to-end when
	// Stage is empty, one pipeline stage otherwise.
	KindLatency = "latency"
	// KindErrorRate bounds the fraction of jobs that fail (quarantines
	// included — a dead-lettered job is a failed job to its client).
	KindErrorRate = "error-rate"
)

// Objective is one configurable service-level objective.
type Objective struct {
	// Name labels the objective in logs, snapshots, and reports.
	Name string `json:"name"`
	// Kind is KindLatency or KindErrorRate.
	Kind string `json:"kind"`
	// Stage scopes a latency objective to one pipeline stage; empty means
	// end-to-end job latency.
	Stage string `json:"stage,omitempty"`
	// Quantile is the targeted latency quantile in (0,1), e.g. 0.99.
	Quantile float64 `json:"quantile,omitempty"`
	// TargetNs is the latency bound for KindLatency.
	TargetNs int64 `json:"target_ns,omitempty"`
	// TargetRate is the allowed failure fraction for KindErrorRate.
	TargetRate float64 `json:"target_rate,omitempty"`
}

// allowedBadFrac is the fraction of samples the objective tolerates out
// of compliance.
func (o Objective) allowedBadFrac() float64 {
	if o.Kind == KindErrorRate {
		return o.TargetRate
	}
	return 1 - o.Quantile
}

// bad reports whether one sample violates the objective.
func (o Objective) bad(latencyNs int64, failed bool) bool {
	if o.Kind == KindErrorRate {
		return failed
	}
	return latencyNs > o.TargetNs
}

// validate rejects malformed objectives at engine construction.
func (o Objective) validate() error {
	switch o.Kind {
	case KindLatency:
		if o.Quantile <= 0 || o.Quantile >= 1 {
			return fmt.Errorf("obs: objective %q: latency quantile %v outside (0,1)", o.Name, o.Quantile)
		}
		if o.TargetNs <= 0 {
			return fmt.Errorf("obs: objective %q: latency target %d ≤ 0", o.Name, o.TargetNs)
		}
	case KindErrorRate:
		if o.TargetRate <= 0 || o.TargetRate >= 1 {
			return fmt.Errorf("obs: objective %q: error-rate target %v outside (0,1)", o.Name, o.TargetRate)
		}
	default:
		return fmt.Errorf("obs: objective %q: unknown kind %q", o.Name, o.Kind)
	}
	if o.Name == "" {
		return fmt.Errorf("obs: objective with empty name")
	}
	return nil
}

// DefaultObjectives returns the stock service objectives: end-to-end p99
// latency under 250ms and under 2% failed jobs. Callers with calibrated
// workloads pass their own targets instead.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "e2e-p99", Kind: KindLatency, Quantile: 0.99, TargetNs: int64(250 * time.Millisecond)},
		{Name: "error-rate", Kind: KindErrorRate, TargetRate: 0.02},
	}
}

// budgetLedger is the since-start error-budget account of one objective.
type budgetLedger struct {
	total int64
	bad   int64
}

// remaining returns the unspent budget fraction given the allowed bad
// fraction: 1 with no samples, negative when blown.
func (l budgetLedger) remaining(allowed float64) float64 {
	if l.total == 0 || allowed <= 0 {
		return 1
	}
	budget := allowed * float64(l.total)
	return 1 - float64(l.bad)/budget
}

// objectiveState is one objective's live evaluation machinery.
type objectiveState struct {
	obj    Objective
	fast   *sampleWindow
	slow   *sampleWindow
	ledger budgetLedger
}

// observe folds one sample into the objective's windows and ledger.
func (s *objectiveState) observe(nowNs, latencyNs int64, failed bool) {
	bad := s.obj.bad(latencyNs, failed)
	s.fast.Add(nowNs, latencyNs, bad)
	s.slow.Add(nowNs, latencyNs, bad)
	s.ledger.total++
	if bad {
		s.ledger.bad++
	}
}

// burn returns the window's burn rate: bad fraction over allowed
// fraction. A window with no samples burns at 0.
func burn(w *sampleWindow, nowNs int64, allowed float64) float64 {
	frac, ok := w.BadFrac(nowNs)
	if !ok || allowed <= 0 {
		return 0
	}
	return frac / allowed
}

// ObjectiveStatus is one objective's point-in-time evaluation, as served
// on /debug/obs/slo and embedded in bench reports.
type ObjectiveStatus struct {
	Objective
	// Value is the windowed measurement over the slow window: the latency
	// quantile in ns, or the error-rate fraction.
	Value float64 `json:"value"`
	// Met is attainment over the slow window (vacuously true when the
	// window is empty).
	Met bool `json:"met"`
	// FastBurn and SlowBurn are the multi-window burn rates; sustained
	// FastBurn ≥ threshold with SlowBurn ≥ threshold pages.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BudgetRemaining is the unspent error-budget fraction since start
	// (1 = untouched, ≤ 0 = blown).
	BudgetRemaining float64 `json:"budget_remaining"`
	// Samples is the objective's lifetime sample count.
	Samples int64 `json:"samples"`
}

// status evaluates the objective at nowNs.
func (s *objectiveState) status(nowNs int64) ObjectiveStatus {
	allowed := s.obj.allowedBadFrac()
	st := ObjectiveStatus{
		Objective:       s.obj,
		Met:             true,
		FastBurn:        burn(s.fast, nowNs, allowed),
		SlowBurn:        burn(s.slow, nowNs, allowed),
		BudgetRemaining: s.ledger.remaining(allowed),
		Samples:         s.ledger.total,
	}
	if s.obj.Kind == KindErrorRate {
		if rate, ok := s.slow.BadFrac(nowNs); ok {
			st.Value = rate
			st.Met = rate <= s.obj.TargetRate
		}
		return st
	}
	if q, ok := s.slow.Quantile(nowNs, s.obj.Quantile); ok {
		st.Value = float64(q)
		st.Met = q <= s.obj.TargetNs
	}
	return st
}
