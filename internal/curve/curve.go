// Package curve implements the elliptic-curve group arithmetic needed by
// the MSM-based baseline ZKP systems (Libsnark/Bellperson in the paper's
// Table 2): a short-Weierstrass curve y² = x³ + 3 with Jacobian-coordinate
// point arithmetic and scalar multiplication.
//
// The curve is BN254's G1: y² = x³ + 3 over the base field F_p (package
// fp), whose group of rational points has prime order r — the scalar field
// used everywhere else in the library — so scalar arithmetic mod r is the
// honest exponent arithmetic. BatchZK's own protocol never touches a curve
// — that is the point of Table 1 — so this group exists purely to realize
// the expensive multi-scalar-multiplication workload the baselines are
// dominated by, with honest per-operation costs for the performance model.
package curve

import (
	"fmt"

	"batchzk/internal/field"
	"batchzk/internal/fp"
)

// B is the curve constant in y² = x³ + B.
var B = fp.NewElement(3)

// AffinePoint is a curve point in affine coordinates; Infinity marks the
// identity element.
type AffinePoint struct {
	X, Y     fp.Element
	Infinity bool
}

// JacobianPoint represents (X/Z², Y/Z³); Z = 0 encodes the identity.
type JacobianPoint struct {
	X, Y, Z fp.Element
}

// Generator returns the fixed base point (1, 2), which satisfies
// 2² = 1³ + 3.
func Generator() AffinePoint {
	return AffinePoint{X: fp.NewElement(1), Y: fp.NewElement(2)}
}

// Identity returns the affine identity element.
func Identity() AffinePoint { return AffinePoint{Infinity: true} }

// IsOnCurve reports whether p satisfies the curve equation.
func (p *AffinePoint) IsOnCurve() bool {
	if p.Infinity {
		return true
	}
	var lhs, rhs fp.Element
	lhs.Square(&p.Y)
	rhs.Square(&p.X)
	rhs.Mul(&rhs, &p.X)
	rhs.Add(&rhs, &B)
	return lhs.Equal(&rhs)
}

// Equal reports whether two affine points are the same.
func (p *AffinePoint) Equal(q *AffinePoint) bool {
	if p.Infinity || q.Infinity {
		return p.Infinity == q.Infinity
	}
	return p.X.Equal(&q.X) && p.Y.Equal(&q.Y)
}

// Neg returns -p.
func (p *AffinePoint) Neg() AffinePoint {
	if p.Infinity {
		return *p
	}
	var y fp.Element
	y.Neg(&p.Y)
	return AffinePoint{X: p.X, Y: y}
}

// ToJacobian lifts an affine point.
func (p *AffinePoint) ToJacobian() JacobianPoint {
	if p.Infinity {
		return JacobianPoint{} // Z = 0
	}
	return JacobianPoint{X: p.X, Y: p.Y, Z: fp.One()}
}

// IsIdentity reports whether j is the group identity.
func (j *JacobianPoint) IsIdentity() bool { return j.Z.IsZero() }

// ToAffine normalizes a Jacobian point.
func (j *JacobianPoint) ToAffine() AffinePoint {
	if j.IsIdentity() {
		return Identity()
	}
	var zInv, zInv2, zInv3 fp.Element
	zInv.Inverse(&j.Z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	var out AffinePoint
	out.X.Mul(&j.X, &zInv2)
	out.Y.Mul(&j.Y, &zInv3)
	return out
}

// Double sets j = 2p and returns j ("dbl-2007-bl"-style formulas for a=0).
func (j *JacobianPoint) Double(p *JacobianPoint) *JacobianPoint {
	if p.IsIdentity() || p.Y.IsZero() {
		*j = JacobianPoint{}
		return j
	}
	var a, b, c, d, e, f fp.Element
	a.Square(&p.X) // A = X²
	b.Square(&p.Y) // B = Y²
	c.Square(&b)   // C = B²
	// D = 2((X+B)² − A − C)
	d.Add(&p.X, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	// E = 3A, F = E²
	e.Double(&a)
	e.Add(&e, &a)
	f.Square(&e)

	var x3, y3, z3, t fp.Element
	x3.Double(&d)
	x3.Sub(&f, &x3) // X3 = F − 2D
	t.Sub(&d, &x3)
	y3.Mul(&e, &t)
	var c8 fp.Element
	c8.Double(&c)
	c8.Double(&c8)
	c8.Double(&c8)
	y3.Sub(&y3, &c8) // Y3 = E(D−X3) − 8C
	z3.Mul(&p.Y, &p.Z)
	z3.Double(&z3) // Z3 = 2YZ

	j.X, j.Y, j.Z = x3, y3, z3
	return j
}

// Add sets j = p + q and returns j ("add-2007-bl" formulas).
func (j *JacobianPoint) Add(p, q *JacobianPoint) *JacobianPoint {
	if p.IsIdentity() {
		*j = *q
		return j
	}
	if q.IsIdentity() {
		*j = *p
		return j
	}
	var z1z1, z2z2, u1, u2, s1, s2 fp.Element
	z1z1.Square(&p.Z)
	z2z2.Square(&q.Z)
	u1.Mul(&p.X, &z2z2)
	u2.Mul(&q.X, &z1z1)
	s1.Mul(&p.Y, &q.Z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&q.Y, &p.Z)
	s2.Mul(&s2, &z1z1)

	if u1.Equal(&u2) {
		if s1.Equal(&s2) {
			return j.Double(p)
		}
		*j = JacobianPoint{} // p = −q
		return j
	}

	var h, i, jj, r, v fp.Element
	h.Sub(&u2, &u1) // H
	i.Double(&h)
	i.Square(&i) // I = (2H)²
	jj.Mul(&h, &i)
	r.Sub(&s2, &s1)
	r.Double(&r) // r = 2(S2−S1)
	v.Mul(&u1, &i)

	var x3, y3, z3, t fp.Element
	x3.Square(&r)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t) // X3 = r² − J − 2V
	t.Sub(&v, &x3)
	y3.Mul(&r, &t)
	t.Mul(&s1, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t) // Y3 = r(V−X3) − 2 S1 J
	z3.Add(&p.Z, &q.Z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h) // Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H

	j.X, j.Y, j.Z = x3, y3, z3
	return j
}

// AddMixed sets j = p + q for an affine q using the dedicated
// "madd-2007-bl" formulas (7M + 4S versus the 11M + 5S a full Jacobian add
// costs after lifting q). This is the form the Pippenger running-sum sweep
// uses, so the savings multiply by 2^c buckets per window.
func (j *JacobianPoint) AddMixed(p *JacobianPoint, q *AffinePoint) *JacobianPoint {
	if q.Infinity {
		*j = *p
		return j
	}
	if p.IsIdentity() {
		*j = q.ToJacobian()
		return j
	}
	var z1z1, u2, s2 fp.Element
	z1z1.Square(&p.Z)
	u2.Mul(&q.X, &z1z1)
	s2.Mul(&q.Y, &p.Z)
	s2.Mul(&s2, &z1z1)

	if u2.Equal(&p.X) {
		if s2.Equal(&p.Y) {
			return j.Double(p)
		}
		*j = JacobianPoint{} // p = −q
		return j
	}

	var h, hh, i, jj, r, v fp.Element
	h.Sub(&u2, &p.X) // H = U2 − X1
	hh.Square(&h)
	i.Double(&hh)
	i.Double(&i)    // I = 4·HH
	jj.Mul(&h, &i)  // J = H·I
	r.Sub(&s2, &p.Y)
	r.Double(&r)    // r = 2(S2 − Y1)
	v.Mul(&p.X, &i) // V = X1·I

	var x3, y3, z3, t fp.Element
	x3.Square(&r)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t) // X3 = r² − J − 2V
	t.Sub(&v, &x3)
	y3.Mul(&r, &t)
	t.Mul(&p.Y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t) // Y3 = r(V − X3) − 2·Y1·J
	z3.Add(&p.Z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh) // Z3 = (Z1+H)² − Z1Z1 − HH

	j.X, j.Y, j.Z = x3, y3, z3
	return j
}

// AddMixedGeneric is the pre-optimization mixed add — lift q to Jacobian
// and run the full add — retained as a differential-test reference.
func AddMixedGeneric(j, p *JacobianPoint, q *AffinePoint) *JacobianPoint {
	if q.Infinity {
		*j = *p
		return j
	}
	qj := q.ToJacobian()
	return j.Add(p, &qj)
}

// AffineAddKind classifies an affine p+q for the batch-affine bucket
// accumulation: the two productive cases share one field inversion across
// the whole batch, the rest resolve without one.
type AffineAddKind uint8

const (
	// AffineAddGeneric is the x1 ≠ x2 chord case; denominator x2 − x1.
	AffineAddGeneric AffineAddKind = iota
	// AffineAddDouble is the tangent case p == q, y ≠ 0; denominator 2y.
	AffineAddDouble
	// AffineAddInfinity covers p = −q (and both-infinity): sum is identity.
	AffineAddInfinity
	// AffineAddP means q is the identity: the sum is p unchanged.
	AffineAddP
	// AffineAddQ means p is the identity: the sum is q unchanged.
	AffineAddQ
)

// ClassifyAffineAdd returns the addition case for p+q and, for the two
// cases that need a division, writes the denominator into denom so the
// caller can fold it into a shared batch inversion.
func ClassifyAffineAdd(p, q *AffinePoint, denom *fp.Element) AffineAddKind {
	if q.Infinity {
		if p.Infinity {
			return AffineAddInfinity
		}
		return AffineAddP
	}
	if p.Infinity {
		return AffineAddQ
	}
	if !p.X.Equal(&q.X) {
		denom.Sub(&q.X, &p.X)
		return AffineAddGeneric
	}
	if p.Y.Equal(&q.Y) && !p.Y.IsZero() {
		denom.Double(&p.Y)
		return AffineAddDouble
	}
	return AffineAddInfinity // p = −q, or degenerate y = 0
}

// CompleteAffineAdd writes p+q into out, given the classification and the
// batch-inverted denominator dInv (only read for Generic/Double). out may
// alias p or q.
func CompleteAffineAdd(out, p, q *AffinePoint, kind AffineAddKind, dInv *fp.Element) {
	switch kind {
	case AffineAddP:
		*out = *p
		return
	case AffineAddQ:
		*out = *q
		return
	case AffineAddInfinity:
		*out = AffinePoint{Infinity: true}
		return
	}
	var lambda fp.Element
	if kind == AffineAddGeneric {
		lambda.Sub(&q.Y, &p.Y)
	} else {
		lambda.Square(&p.X)
		var three fp.Element
		three.Double(&lambda)
		lambda.Add(&lambda, &three) // 3x²
	}
	lambda.Mul(&lambda, dInv)
	var x3, y3 fp.Element
	x3.Square(&lambda)
	x3.Sub(&x3, &p.X)
	x3.Sub(&x3, &q.X)
	y3.Sub(&p.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &p.Y)
	out.X, out.Y, out.Infinity = x3, y3, false
}

// ScalarMul sets j = k·p by double-and-add over the canonical bits of the
// scalar k, which lives in the scalar field F_r (the group's order).
func (j *JacobianPoint) ScalarMul(p *AffinePoint, k *field.Element) *JacobianPoint {
	bytes := k.ToBytes()
	acc := JacobianPoint{}
	pj := p.ToJacobian()
	for _, b := range bytes[:] {
		for bit := 7; bit >= 0; bit-- {
			acc.Double(&acc)
			if b>>uint(bit)&1 == 1 {
				acc.Add(&acc, &pj)
			}
		}
	}
	*j = acc
	return j
}

// RandPoint returns a pseudo-random curve point k·G for a random scalar k.
func RandPoint() AffinePoint {
	var k field.Element
	k.Rand()
	g := Generator()
	var j JacobianPoint
	j.ScalarMul(&g, &k)
	return j.ToAffine()
}

// CheckSubgroupSmoke sanity-checks the basic group laws on small
// multiples; used in tests and at calibration time.
func CheckSubgroupSmoke() error {
	g := Generator()
	if !g.IsOnCurve() {
		return fmt.Errorf("curve: generator off curve")
	}
	gj := g.ToJacobian()
	var two, three, sum JacobianPoint
	two.Double(&gj)
	three.Add(&two, &gj)
	sum.Add(&gj, &gj)
	a2, s := two.ToAffine(), sum.ToAffine()
	if !a2.Equal(&s) {
		return fmt.Errorf("curve: G+G != 2G")
	}
	a3 := three.ToAffine()
	if !a3.IsOnCurve() || !a2.IsOnCurve() {
		return fmt.Errorf("curve: small multiples off curve")
	}
	return nil
}
