package curve

import (
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/fp"
)

func TestGeneratorOnCurve(t *testing.T) {
	g := Generator()
	if !g.IsOnCurve() {
		t.Fatal("generator not on curve")
	}
	if err := CheckSubgroupSmoke(); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityLaws(t *testing.T) {
	gen := Generator()
	g := gen.ToJacobian()
	id := JacobianPoint{}
	var r JacobianPoint
	r.Add(&g, &id)
	a := r.ToAffine()
	gg := Generator()
	if !a.Equal(&gg) {
		t.Fatal("G + 0 != G")
	}
	r.Add(&id, &g)
	a = r.ToAffine()
	if !a.Equal(&gg) {
		t.Fatal("0 + G != G")
	}
	if !id.IsIdentity() {
		t.Fatal("zero Jacobian point should be identity")
	}
	aff := id.ToAffine()
	if !aff.Infinity {
		t.Fatal("identity should normalize to infinity")
	}
}

func TestNegation(t *testing.T) {
	g := Generator()
	ng := g.Neg()
	if !ng.IsOnCurve() {
		t.Fatal("-G off curve")
	}
	gj, ngj := g.ToJacobian(), ng.ToJacobian()
	var sum JacobianPoint
	sum.Add(&gj, &ngj)
	if !sum.IsIdentity() {
		t.Fatal("G + (-G) != 0")
	}
	id := Identity()
	nid := id.Neg()
	if !nid.Infinity {
		t.Fatal("-0 != 0")
	}
}

func TestAddCommutesAndAssociates(t *testing.T) {
	p := RandPoint()
	q := RandPoint()
	s := RandPoint()
	pj, qj, sj := p.ToJacobian(), q.ToJacobian(), s.ToJacobian()
	var a, b JacobianPoint
	a.Add(&pj, &qj)
	b.Add(&qj, &pj)
	aa, ba := a.ToAffine(), b.ToAffine()
	if !aa.Equal(&ba) {
		t.Fatal("addition not commutative")
	}
	var l, r JacobianPoint
	l.Add(&pj, &qj)
	l.Add(&l, &sj)
	r.Add(&qj, &sj)
	r.Add(&pj, &r)
	la, ra := l.ToAffine(), r.ToAffine()
	if !la.Equal(&ra) {
		t.Fatal("addition not associative")
	}
	if !la.IsOnCurve() {
		t.Fatal("sum off curve")
	}
}

func TestDoubleMatchesAdd(t *testing.T) {
	p := RandPoint()
	pj := p.ToJacobian()
	var d, s JacobianPoint
	d.Double(&pj)
	s.Add(&pj, &pj)
	da, sa := d.ToAffine(), s.ToAffine()
	if !da.Equal(&sa) {
		t.Fatal("2P != P+P")
	}
}

func TestScalarMulSmallMultiples(t *testing.T) {
	g := Generator()
	gj := g.ToJacobian()
	// Accumulate G, 2G, 3G, ... and compare against ScalarMul.
	acc := JacobianPoint{}
	for k := uint64(1); k <= 10; k++ {
		acc.Add(&acc, &gj)
		kf := field.NewElement(k)
		var sm JacobianPoint
		sm.ScalarMul(&g, &kf)
		a1, a2 := acc.ToAffine(), sm.ToAffine()
		if !a1.Equal(&a2) {
			t.Fatalf("k=%d: repeated add != scalar mul", k)
		}
	}
}

func TestScalarMulDistributes(t *testing.T) {
	// (a+b)·G == a·G + b·G
	var a, b, sum field.Element
	a.Rand()
	b.Rand()
	sum.Add(&a, &b)
	g := Generator()
	var ag, bg, sg, absum JacobianPoint
	ag.ScalarMul(&g, &a)
	bg.ScalarMul(&g, &b)
	sg.ScalarMul(&g, &sum)
	absum.Add(&ag, &bg)
	l, r := sg.ToAffine(), absum.ToAffine()
	if !l.Equal(&r) {
		t.Fatal("scalar multiplication does not distribute")
	}
}

func TestScalarMulZero(t *testing.T) {
	g := Generator()
	z := field.Zero()
	var r JacobianPoint
	r.ScalarMul(&g, &z)
	if !r.IsIdentity() {
		t.Fatal("0·G != identity")
	}
}

func TestAddMixed(t *testing.T) {
	p := RandPoint()
	q := RandPoint()
	pj := p.ToJacobian()
	var mixed, full JacobianPoint
	mixed.AddMixed(&pj, &q)
	qj := q.ToJacobian()
	full.Add(&pj, &qj)
	m, f := mixed.ToAffine(), full.ToAffine()
	if !m.Equal(&f) {
		t.Fatal("mixed addition mismatch")
	}
	id := Identity()
	mixed.AddMixed(&pj, &id)
	m = mixed.ToAffine()
	if !m.Equal(&p) {
		t.Fatal("P + 0 (mixed) != P")
	}
}

// TestAddMixedDifferential pins the dedicated madd formulas against the
// lift-and-add reference across the edge cases the unrolled path branches
// on: generic, doubling (q = p), cancellation (q = −p), and identities.
func TestAddMixedDifferential(t *testing.T) {
	p := RandPoint()
	q := RandPoint()
	pj := p.ToJacobian()
	// Give p a non-trivial Z so the Z1Z1 terms are exercised.
	pj.Double(&pj)
	pAff := pj.ToAffine()

	cases := []struct {
		name string
		base JacobianPoint
		add  AffinePoint
	}{
		{"generic", pj, q},
		{"double", pj, pAff},
		{"cancel", pj, pAff.Neg()},
		{"q-infinity", pj, Identity()},
		{"p-identity", JacobianPoint{}, q},
		{"both-identity", JacobianPoint{}, Identity()},
	}
	for _, c := range cases {
		var got, want JacobianPoint
		got.AddMixed(&c.base, &c.add)
		AddMixedGeneric(&want, &c.base, &c.add)
		g, w := got.ToAffine(), want.ToAffine()
		if !g.Equal(&w) {
			t.Fatalf("%s: AddMixed != AddMixedGeneric", c.name)
		}
		if !g.IsOnCurve() {
			t.Fatalf("%s: result off curve", c.name)
		}
	}
}

// TestAffineAddHelpers drives the classify/complete pair that the
// batch-affine MSM buckets are built on, checking every case against the
// Jacobian ground truth.
func TestAffineAddHelpers(t *testing.T) {
	p := RandPoint()
	q := RandPoint()
	cases := []struct {
		name string
		a, b AffinePoint
		want AffineAddKind
	}{
		{"generic", p, q, AffineAddGeneric},
		{"double", p, p, AffineAddDouble},
		{"cancel", p, p.Neg(), AffineAddInfinity},
		{"q-inf", p, Identity(), AffineAddP},
		{"p-inf", Identity(), q, AffineAddQ},
		{"both-inf", Identity(), Identity(), AffineAddInfinity},
	}
	for _, c := range cases {
		var denom, dInv fp.Element
		kind := ClassifyAffineAdd(&c.a, &c.b, &denom)
		if kind != c.want {
			t.Fatalf("%s: kind = %d, want %d", c.name, kind, c.want)
		}
		if kind == AffineAddGeneric || kind == AffineAddDouble {
			dInv.Inverse(&denom)
		}
		var got AffinePoint
		CompleteAffineAdd(&got, &c.a, &c.b, kind, &dInv)

		aj := c.a.ToJacobian()
		var sum JacobianPoint
		sum.AddMixed(&aj, &c.b)
		want := sum.ToAffine()
		if !got.Equal(&want) {
			t.Fatalf("%s: affine add disagrees with Jacobian add", c.name)
		}
		if !got.IsOnCurve() {
			t.Fatalf("%s: result off curve", c.name)
		}
	}

	// Aliasing: out may be the left operand (the bucket accumulate shape).
	var denom, dInv fp.Element
	kind := ClassifyAffineAdd(&p, &q, &denom)
	dInv.Inverse(&denom)
	acc := p
	CompleteAffineAdd(&acc, &acc, &q, kind, &dInv)
	pj := p.ToJacobian()
	var sum JacobianPoint
	sum.AddMixed(&pj, &q)
	want := sum.ToAffine()
	if !acc.Equal(&want) {
		t.Fatal("aliased CompleteAffineAdd disagrees")
	}
}

func BenchmarkAddMixed(b *testing.B) {
	p := RandPoint()
	q := RandPoint()
	pj := p.ToJacobian()
	pj.Double(&pj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pj.AddMixed(&pj, &q)
	}
}

func BenchmarkAddMixedGeneric(b *testing.B) {
	p := RandPoint()
	q := RandPoint()
	pj := p.ToJacobian()
	pj.Double(&pj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMixedGeneric(&pj, &pj, &q)
	}
}

func TestRandPointOnCurve(t *testing.T) {
	for i := 0; i < 4; i++ {
		p := RandPoint()
		if !p.IsOnCurve() {
			t.Fatal("RandPoint off curve")
		}
	}
}
