package nn

import (
	"testing"

	"batchzk/internal/field"
)

func compileTiny(t testing.TB) (*Compiled, *Tensor) {
	t.Helper()
	net := TinyCNN(13)
	cc, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	img := RandImage(1, 8, 8, 21)
	return cc, img
}

func TestCompiledCircuitMatchesEngine(t *testing.T) {
	cc, img := compileTiny(t)
	public, secret, err := cc.BuildInputs(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(public) != cc.NumPixels {
		t.Fatalf("public inputs %d, want %d", len(public), cc.NumPixels)
	}
	if len(secret) != cc.NumParams+cc.NumHints {
		t.Fatalf("secret inputs %d, want %d", len(secret), cc.NumParams+cc.NumHints)
	}
	w, err := cc.Circuit.Evaluate(public, secret)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Circuit.CheckWitness(w); err != nil {
		t.Fatalf("gadget constraints unsatisfied: %v", err)
	}
	// Circuit outputs (logits) must match the fixed-point engine exactly.
	outs, err := cc.Circuit.OutputValues(w)
	if err != nil {
		t.Fatal(err)
	}
	engineOut, _, err := cc.Net.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != engineOut.Len() {
		t.Fatalf("%d circuit outputs vs %d logits", len(outs), engineOut.Len())
	}
	for i, v := range engineOut.Data {
		var want field.Element
		want.SetInt64(v)
		if !outs[i].Equal(&want) {
			t.Fatalf("logit %d: circuit %v, engine %d", i, outs[i].String(), v)
		}
	}
}

func TestCompiledRejectsBadHints(t *testing.T) {
	cc, img := compileTiny(t)
	public, secret, _ := cc.BuildInputs(img)
	// Corrupt one hint bit: the zero-wire constraints must break.
	bad := append([]field.Element{}, secret...)
	idx := cc.NumParams + cc.NumHints/2
	bad[idx] = field.NewElement(7) // not a bit
	w, err := cc.Circuit.Evaluate(public, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Circuit.CheckWitness(w); err == nil {
		t.Fatal("tampered hint escaped the zero-wire constraints")
	}
}

func TestCompiledRejectsWrongImage(t *testing.T) {
	cc, _ := compileTiny(t)
	if _, _, err := cc.BuildInputs(RandImage(3, 8, 8, 1)); err == nil {
		t.Fatal("accepted wrong image shape")
	}
}

func TestCompiledScaleAccounting(t *testing.T) {
	cc, _ := compileTiny(t)
	if cc.Circuit.NumMulGates() == 0 {
		t.Fatal("no multiplication gates")
	}
	if cc.NumHints == 0 || cc.NumParams == 0 {
		t.Fatal("hint/parameter accounting empty")
	}
	t.Logf("TinyCNN circuit: %d wires, %d mul gates, %d hints, %d zero wires",
		cc.Circuit.NumWires(), cc.Circuit.NumMulGates(), cc.NumHints, len(cc.Circuit.ZeroWires))
}
