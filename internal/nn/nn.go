// Package nn is the machine-learning engine of the paper's §5
// application: a fixed-point convolutional-network inference engine with
// the exact VGG-16 layer shapes for 32×32×3 (CIFAR-10-sized) inputs, plus
// a compiler from small networks to arithmetic circuits so the inference
// can be proven end to end with the batch prover.
//
// Substitution note (DESIGN.md): the paper uses a PyTorch-trained VGG-16
// reaching 93.93% accuracy. Proof-generation cost depends only on the
// circuit's shape — the number of multiplications — not on the learned
// weight values, so this package generates deterministic synthetic weights
// and reports the accuracy row of Table 11 as not reproducible.
//
// Values are fixed-point integers with FracBits fractional bits. Every
// layer rescales its output back to FracBits, matching how verifiable-ML
// systems quantize (zkCNN, ZENO).
package nn

import (
	"fmt"
	"math/rand"
)

// FracBits is the fixed-point precision (scale = 2^FracBits).
const FracBits = 8

// Scale is the fixed-point scaling factor.
const Scale = 1 << FracBits

// Tensor is a 3-D fixed-point tensor (channels × height × width),
// flattened row-major as [c][h][w].
type Tensor struct {
	C, H, W int
	Data    []int64
}

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) *Tensor {
	return &Tensor{C: c, H: h, W: w, Data: make([]int64, c*h*w)}
}

// At returns the element at (c, h, w).
func (t *Tensor) At(c, h, w int) int64 {
	return t.Data[(c*t.H+h)*t.W+w]
}

// Set writes the element at (c, h, w).
func (t *Tensor) Set(c, h, w int, v int64) {
	t.Data[(c*t.H+h)*t.W+w] = v
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Layer is one network layer.
type Layer interface {
	// Forward computes the layer output and returns it.
	Forward(in *Tensor) (*Tensor, error)
	// MulCount returns the number of fixed-point multiplications the
	// layer performs on an input of the given shape — the quantity that
	// sets the proof-generation circuit scale.
	MulCount(c, h, w int) int
	// OutShape maps an input shape to the output shape.
	OutShape(c, h, w int) (int, int, int)
	// Name describes the layer.
	Name() string
}

// Conv2D is a 3×3 (or k×k) same-padding convolution.
type Conv2D struct {
	InC, OutC, K int
	Stride       int
	// Weights[o][i][ky][kx] and Biases[o], fixed-point.
	Weights []int64
	Biases  []int64
}

// NewConv2D builds a convolution with deterministic synthetic weights.
func NewConv2D(inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: 1}
	c.Weights = make([]int64, outC*inC*k*k)
	for i := range c.Weights {
		// Small weights in (−1, 1) keep fixed-point accumulations sane.
		c.Weights[i] = int64(rng.Intn(Scale/2)) - Scale/4
	}
	c.Biases = make([]int64, outC)
	for i := range c.Biases {
		c.Biases[i] = int64(rng.Intn(Scale)) - Scale/2
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv%dx%d(%d→%d)", c.K, c.K, c.InC, c.OutC) }

// OutShape implements Layer (same padding, stride 1).
func (c *Conv2D) OutShape(_, h, w int) (int, int, int) { return c.OutC, h, w }

// MulCount implements Layer.
func (c *Conv2D) MulCount(_, h, w int) int {
	return c.OutC * c.InC * c.K * c.K * h * w
}

// weight indexes Weights[o][i][ky][kx].
func (c *Conv2D) weight(o, i, ky, kx int) int64 {
	return c.Weights[((o*c.InC+i)*c.K+ky)*c.K+kx]
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *Tensor) (*Tensor, error) {
	if in.C != c.InC {
		return nil, fmt.Errorf("nn: %s: input has %d channels", c.Name(), in.C)
	}
	out := NewTensor(c.OutC, in.H, in.W)
	pad := c.K / 2
	for o := 0; o < c.OutC; o++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				acc := c.Biases[o] << FracBits
				for i := 0; i < c.InC; i++ {
					for ky := 0; ky < c.K; ky++ {
						sy := y + ky - pad
						if sy < 0 || sy >= in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							sx := x + kx - pad
							if sx < 0 || sx >= in.W {
								continue
							}
							acc += c.weight(o, i, ky, kx) * in.At(i, sy, sx)
						}
					}
				}
				out.Set(o, y, x, acc>>FracBits) // rescale to FracBits
			}
		}
	}
	return out, nil
}

// ReLU is the rectifier nonlinearity.
type ReLU struct{}

// Name implements Layer.
func (ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (ReLU) OutShape(c, h, w int) (int, int, int) { return c, h, w }

// MulCount implements Layer: nonlinearities are proven with
// bit-decomposition gadgets costing ≈ one constraint per value bit; we
// charge 16 multiplications per activation.
func (ReLU) MulCount(c, h, w int) int { return 16 * c * h * w }

// Forward implements Layer.
func (ReLU) Forward(in *Tensor) (*Tensor, error) {
	out := NewTensor(in.C, in.H, in.W)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out, nil
}

// MaxPool2 is 2×2 max pooling with stride 2.
type MaxPool2 struct{}

// Name implements Layer.
func (MaxPool2) Name() string { return "maxpool2" }

// OutShape implements Layer.
func (MaxPool2) OutShape(c, h, w int) (int, int, int) { return c, h / 2, w / 2 }

// MulCount implements Layer: comparisons cost like ReLU gadgets, three
// per output value.
func (MaxPool2) MulCount(c, h, w int) int { return 3 * 16 * c * (h / 2) * (w / 2) }

// Forward implements Layer.
func (MaxPool2) Forward(in *Tensor) (*Tensor, error) {
	if in.H%2 != 0 || in.W%2 != 0 {
		return nil, fmt.Errorf("nn: maxpool2 needs even dims, got %dx%d", in.H, in.W)
	}
	out := NewTensor(in.C, in.H/2, in.W/2)
	for c := 0; c < in.C; c++ {
		for y := 0; y < in.H/2; y++ {
			for x := 0; x < in.W/2; x++ {
				m := in.At(c, 2*y, 2*x)
				for _, v := range []int64{in.At(c, 2*y, 2*x+1), in.At(c, 2*y+1, 2*x), in.At(c, 2*y+1, 2*x+1)} {
					if v > m {
						m = v
					}
				}
				out.Set(c, y, x, m)
			}
		}
	}
	return out, nil
}

// Linear is a fully connected layer over the flattened input.
type Linear struct {
	In, Out int
	Weights []int64 // [out][in]
	Biases  []int64
}

// NewLinear builds a fully connected layer with synthetic weights.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out}
	l.Weights = make([]int64, in*out)
	for i := range l.Weights {
		l.Weights[i] = int64(rng.Intn(Scale/2)) - Scale/4
	}
	l.Biases = make([]int64, out)
	for i := range l.Biases {
		l.Biases[i] = int64(rng.Intn(Scale)) - Scale/2
	}
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("fc(%d→%d)", l.In, l.Out) }

// OutShape implements Layer.
func (l *Linear) OutShape(int, int, int) (int, int, int) { return l.Out, 1, 1 }

// MulCount implements Layer.
func (l *Linear) MulCount(int, int, int) int { return l.In * l.Out }

// Forward implements Layer.
func (l *Linear) Forward(in *Tensor) (*Tensor, error) {
	if in.Len() != l.In {
		return nil, fmt.Errorf("nn: %s: input has %d values", l.Name(), in.Len())
	}
	out := NewTensor(l.Out, 1, 1)
	for o := 0; o < l.Out; o++ {
		acc := l.Biases[o] << FracBits
		for i := 0; i < l.In; i++ {
			acc += l.Weights[o*l.In+i] * in.Data[i]
		}
		out.Data[o] = acc >> FracBits
	}
	return out, nil
}

// Network is a sequential model.
type Network struct {
	Name   string
	InC    int
	InH    int
	InW    int
	Layers []Layer
}

// Forward runs inference, returning the output tensor and every
// intermediate activation (the "intermediate results" the ZKP system
// consumes, §4/§5).
func (n *Network) Forward(input *Tensor) (*Tensor, []*Tensor, error) {
	if input.C != n.InC || input.H != n.InH || input.W != n.InW {
		return nil, nil, fmt.Errorf("nn: %s expects %dx%dx%d input, got %dx%dx%d",
			n.Name, n.InC, n.InH, n.InW, input.C, input.H, input.W)
	}
	cur := input
	intermediates := make([]*Tensor, 0, len(n.Layers))
	for _, l := range n.Layers {
		next, err := l.Forward(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("nn: %s: %w", l.Name(), err)
		}
		intermediates = append(intermediates, next)
		cur = next
	}
	return cur, intermediates, nil
}

// Classify returns the argmax class of the network output.
func (n *Network) Classify(input *Tensor) (int, error) {
	out, _, err := n.Forward(input)
	if err != nil {
		return 0, err
	}
	best := 0
	for i := 1; i < out.Len(); i++ {
		if out.Data[i] > out.Data[best] {
			best = i
		}
	}
	return best, nil
}

// MulCount totals the multiplication count of one inference — the circuit
// scale the verifiable-ML proof must cover.
func (n *Network) MulCount() int {
	total := 0
	c, h, w := n.InC, n.InH, n.InW
	for _, l := range n.Layers {
		total += l.MulCount(c, h, w)
		c, h, w = l.OutShape(c, h, w)
	}
	return total
}

// NumParameters counts the weight/bias values — the model commitment's
// input size.
func (n *Network) NumParameters() int {
	total := 0
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			total += len(v.Weights) + len(v.Biases)
		case *Linear:
			total += len(v.Weights) + len(v.Biases)
		}
	}
	return total
}

// Parameters returns all weights and biases in a flat deterministic order.
func (n *Network) Parameters() []int64 {
	var out []int64
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			out = append(out, v.Weights...)
			out = append(out, v.Biases...)
		case *Linear:
			out = append(out, v.Weights...)
			out = append(out, v.Biases...)
		}
	}
	return out
}

// VGG16 builds the VGG-16 architecture for 32×32×3 inputs and 10 classes
// (the CIFAR-10 configuration of the paper's Table 11) with deterministic
// synthetic weights.
func VGG16(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	cfg := []interface{}{
		64, 64, "M",
		128, 128, "M",
		256, 256, 256, "M",
		512, 512, 512, "M",
		512, 512, 512, "M",
	}
	n := &Network{Name: "VGG-16", InC: 3, InH: 32, InW: 32}
	inC := 3
	for _, item := range cfg {
		switch v := item.(type) {
		case int:
			n.Layers = append(n.Layers, NewConv2D(inC, v, 3, rng), ReLU{})
			inC = v
		case string:
			n.Layers = append(n.Layers, MaxPool2{})
		}
	}
	// Classifier: 512 → 512 → 10 (the compact CIFAR-10 head).
	n.Layers = append(n.Layers,
		NewLinear(512, 512, rng), ReLU{},
		NewLinear(512, 10, rng),
	)
	return n
}

// TinyCNN builds a small CNN (8×8×1 input, one conv, pool, one FC) whose
// inference is compiled to a circuit and proven end to end in tests and
// examples.
func TinyCNN(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{
		Name: "TinyCNN", InC: 1, InH: 8, InW: 8,
		Layers: []Layer{
			NewConv2D(1, 4, 3, rng),
			ReLU{},
			MaxPool2{},
			NewLinear(4*4*4, 10, rng),
		},
	}
}

// TinyMLP builds a small fully connected network (16-dim input, one
// hidden layer) — the second provable model, exercising the Linear/ReLU
// compilation path without convolutions.
func TinyMLP(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{
		Name: "TinyMLP", InC: 1, InH: 4, InW: 4,
		Layers: []Layer{
			NewLinear(16, 12, rng),
			ReLU{},
			NewLinear(12, 4, rng),
		},
	}
}

// RandImage generates a deterministic synthetic input image in the
// fixed-point [0, 1) range.
func RandImage(c, h, w int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := NewTensor(c, h, w)
	for i := range t.Data {
		t.Data[i] = int64(rng.Intn(Scale))
	}
	return t
}
