package nn

import (
	"fmt"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
)

// HintBits is the bit width used by the nonlinearity gadgets: every value
// entering a ReLU/max comparison must fit in (−2^(HintBits−1), 2^(HintBits−1)).
const HintBits = 26

// Compiled is a network compiled to an arithmetic circuit, following the
// verifiable-ML compilation approach of the paper's references (zkCNN,
// ZKML, ZENO): linear layers become multiply–add gates over the secret
// weights; nonlinearities (ReLU, max) and fixed-point rescaling become
// bit-decomposition gadgets whose decompositions the prover supplies as
// secret hint inputs, pinned by bit constraints b·(b−1) = 0 and
// recomposition equalities.
type Compiled struct {
	Net     *Network
	Circuit *circuit.Circuit
	// NumPixels public inputs (the customer's image), then the secret
	// inputs: the model parameters followed by the gadget hints.
	NumPixels int
	NumParams int
	NumHints  int
	// Bound reports whether the circuit's last output is the model-binding
	// Horner hash (see CompileBound).
	Bound bool
}

// compiler carries the two-pass state: pass 1 (hints=nil) only counts
// hint values; pass 2 consumes them while emitting gates.
type compiler struct {
	b        *circuit.Builder
	counting bool
	numHints int

	hintWires []circuit.Wire // pass 2: hint inputs in consumption order
	hintIdx   int
}

// nextHint returns the next hint wire (pass 2) or just counts (pass 1).
func (cp *compiler) nextHint() circuit.Wire {
	cp.numHints++
	if cp.counting {
		return 0
	}
	w := cp.hintWires[cp.hintIdx]
	cp.hintIdx++
	return w
}

// powerOfTwo returns the constant wire 2^k.
func (cp *compiler) powerOfTwo(k int) circuit.Wire {
	if cp.counting {
		return 0
	}
	var v field.Element
	v.SetUint64(1)
	two := field.NewElement(2)
	for i := 0; i < k; i++ {
		v.Mul(&v, &two)
	}
	return cp.b.Const(v)
}

// decompose takes the hint bits of u = v + 2^(HintBits−1), pins every bit
// with the constraint b·(b−1) = 0, recomposes u, asserts
// u − 2^(HintBits−1) − v = 0, and returns the sign indicator (1 when
// v ≥ 0). Every constraint is an individually pinned zero wire, so the
// protocol's random-coefficient batching enforces each one separately.
func (cp *compiler) decompose(v circuit.Wire) (sign circuit.Wire) {
	bits := make([]circuit.Wire, HintBits)
	for i := range bits {
		bits[i] = cp.nextHint()
	}
	if cp.counting {
		return 0
	}
	b := cp.b
	one := b.One()
	for _, bit := range bits {
		bm1 := b.Sub(bit, one)
		b.AssertZero(b.Mul(bit, bm1)) // 0 iff bit ∈ {0,1}
	}
	// Recompose u and check u − 2^(HintBits−1) − v = 0.
	u := b.Const(field.Zero())
	for i, bit := range bits {
		u = b.Add(u, b.Mul(bit, cp.powerOfTwo(i)))
	}
	shifted := b.Sub(u, cp.powerOfTwo(HintBits-1))
	b.AssertZero(b.Sub(shifted, v))
	return bits[HintBits-1]
}

// relu returns max(v, 0) using a sign gadget: s = sign(v), out = s·v.
func (cp *compiler) relu(v circuit.Wire) circuit.Wire {
	s := cp.decompose(v)
	if cp.counting {
		return 0
	}
	return cp.b.Mul(s, v)
}

// maxWire returns max(a, b) = b + relu(a − b).
func (cp *compiler) maxWire(a, bw circuit.Wire) circuit.Wire {
	if cp.counting {
		cp.relu(0)
		return 0
	}
	d := cp.b.Sub(a, bw)
	return cp.b.Add(bw, cp.relu(d))
}

// rescale divides v by 2^FracBits with floor semantics: the prover hints
// the quotient q and the FracBits remainder bits; the circuit checks
// v = q·2^F + Σ r_i·2^i with boolean r_i.
func (cp *compiler) rescale(v circuit.Wire) circuit.Wire {
	q := cp.nextHint()
	rbits := make([]circuit.Wire, FracBits)
	for i := range rbits {
		rbits[i] = cp.nextHint()
	}
	if cp.counting {
		return 0
	}
	b := cp.b
	one := b.One()
	r := b.Const(field.Zero())
	for i, bit := range rbits {
		bm1 := b.Sub(bit, one)
		b.AssertZero(b.Mul(bit, bm1))
		r = b.Add(r, b.Mul(bit, cp.powerOfTwo(i)))
	}
	recon := b.Add(b.Mul(q, cp.powerOfTwo(FracBits)), r)
	b.AssertZero(b.Sub(recon, v))
	return q
}

// CompileBound compiles the network with a model-binding output: the
// circuit additionally computes the Horner hash H = Σ params[i]·ρ^i and
// exposes it as the last output. With ρ derived by Fiat–Shamir from the
// model's Merkle root (vml does this), H binds the proof to the committed
// parameters: a prover substituting a different model would have to find
// a second parameter vector with the same ρ-evaluation, which
// Schwartz–Zippel rules out for random ρ. This realizes §5's "prove that
// this Merkle root is correctly calculated from the committed model"
// without hashing inside the circuit.
func CompileBound(n *Network, rho field.Element) (*Compiled, error) {
	return compile(n, &rho)
}

// Compile translates a network into a circuit. Two passes: the first
// counts hint inputs, the second emits gates.
func Compile(n *Network) (*Compiled, error) {
	return compile(n, nil)
}

func compile(n *Network, rho *field.Element) (*Compiled, error) {
	// Pass 1: count hints.
	counter := &compiler{counting: true}
	if err := buildGates(counter, n, nil, nil, nil); err != nil {
		return nil, err
	}
	numHints := counter.numHints

	// Pass 2: declare inputs, then emit gates.
	b := circuit.NewBuilder()
	numPixels := n.InC * n.InH * n.InW
	pixels := make([]circuit.Wire, numPixels)
	for i := range pixels {
		pixels[i] = b.PublicInput()
	}
	params := n.Parameters()
	paramWires := make([]circuit.Wire, len(params))
	for i := range paramWires {
		paramWires[i] = b.SecretInput()
	}
	hintWires := make([]circuit.Wire, numHints)
	for i := range hintWires {
		hintWires[i] = b.SecretInput()
	}
	cp := &compiler{b: b, hintWires: hintWires}
	if err := buildGates(cp, n, pixels, paramWires, nil); err != nil {
		return nil, err
	}
	if cp.hintIdx != numHints {
		return nil, fmt.Errorf("nn: hint count mismatch: declared %d, consumed %d", numHints, cp.hintIdx)
	}
	bound := false
	if rho != nil {
		// Horner hash over the parameter wires, exposed as the final
		// output: H = ((p_0·ρ + p_1)·ρ + p_2)·ρ + …
		rhoW := b.Const(*rho)
		h := b.Const(field.Zero())
		for _, pw := range paramWires {
			h = b.Add(b.Mul(h, rhoW), pw)
		}
		b.Output(h)
		bound = true
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Compiled{
		Net: n, Circuit: c,
		NumPixels: numPixels, NumParams: len(params), NumHints: numHints,
		Bound: bound,
	}, nil
}

// ParamsHash computes the Horner hash H = Σ params[i]·ρ^i of a parameter
// vector — what the bound circuit's final output must equal.
func ParamsHash(params []int64, rho field.Element) field.Element {
	var h, p field.Element
	for _, v := range params {
		h.Mul(&h, &rho)
		p.SetInt64(v)
		h.Add(&h, &p)
	}
	return h
}

// buildGates walks the network, emitting (or counting) gates. outWires
// is unused and reserved for future multi-head networks.
func buildGates(cp *compiler, n *Network, pixels, paramWires []circuit.Wire, _ []circuit.Wire) error {
	// Current activation grid as wires, plus shape.
	var cur []circuit.Wire
	c, h, w := n.InC, n.InH, n.InW
	if !cp.counting {
		cur = pixels
	} else {
		cur = make([]circuit.Wire, c*h*w)
	}
	at := func(grid []circuit.Wire, gw, gc, gy, gx int) circuit.Wire {
		return grid[(gc*h+gy)*gw+gx]
	}
	paramIdx := 0
	takeParams := func(k int) []circuit.Wire {
		if cp.counting {
			paramIdx += k
			return make([]circuit.Wire, k)
		}
		out := paramWires[paramIdx : paramIdx+k]
		paramIdx += k
		return out
	}

	for _, layer := range n.Layers {
		switch l := layer.(type) {
		case *Conv2D:
			weights := takeParams(len(l.Weights))
			biases := takeParams(len(l.Biases))
			next := make([]circuit.Wire, l.OutC*h*w)
			pad := l.K / 2
			for o := 0; o < l.OutC && !cp.counting; o++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						acc := cp.b.Mul(biases[o], cp.powerOfTwo(FracBits))
						for i := 0; i < l.InC; i++ {
							for ky := 0; ky < l.K; ky++ {
								sy := y + ky - pad
								if sy < 0 || sy >= h {
									continue
								}
								for kx := 0; kx < l.K; kx++ {
									sx := x + kx - pad
									if sx < 0 || sx >= w {
										continue
									}
									wi := weights[((o*l.InC+i)*l.K+ky)*l.K+kx]
									prod := cp.b.Mul(wi, at(cur, w, i, sy, sx))
									acc = cp.b.Add(acc, prod)
								}
							}
						}
						next[(o*h+y)*w+x] = acc
					}
				}
			}
			// Rescale every output back to FracBits.
			for i := range next {
				next[i] = cp.rescale(next[i])
			}
			cur, c = next, l.OutC

		case ReLU:
			next := make([]circuit.Wire, len(cur))
			for i := range cur {
				next[i] = cp.relu(cur[i])
			}
			cur = next

		case MaxPool2:
			if h%2 != 0 || w%2 != 0 {
				return fmt.Errorf("nn: maxpool2 needs even dims")
			}
			next := make([]circuit.Wire, c*(h/2)*(w/2))
			for cc := 0; cc < c; cc++ {
				for y := 0; y < h/2; y++ {
					for x := 0; x < w/2; x++ {
						var a, b2, c2, d circuit.Wire
						if !cp.counting {
							a = at(cur, w, cc, 2*y, 2*x)
							b2 = at(cur, w, cc, 2*y, 2*x+1)
							c2 = at(cur, w, cc, 2*y+1, 2*x)
							d = at(cur, w, cc, 2*y+1, 2*x+1)
						}
						m1 := cp.maxWire(a, b2)
						m2 := cp.maxWire(c2, d)
						m := cp.maxWire(m1, m2)
						if !cp.counting {
							next[(cc*(h/2)+y)*(w/2)+x] = m
						}
					}
				}
			}
			cur, h, w = next, h/2, w/2

		case *Linear:
			weights := takeParams(len(l.Weights))
			biases := takeParams(len(l.Biases))
			next := make([]circuit.Wire, l.Out)
			for o := 0; o < l.Out && !cp.counting; o++ {
				acc := cp.b.Mul(biases[o], cp.powerOfTwo(FracBits))
				for i := 0; i < l.In; i++ {
					acc = cp.b.Add(acc, cp.b.Mul(weights[o*l.In+i], cur[i]))
				}
				next[o] = acc
			}
			for i := range next {
				next[i] = cp.rescale(next[i])
			}
			cur, c, h, w = next, l.Out, 1, 1

		default:
			return fmt.Errorf("nn: cannot compile layer %s", layer.Name())
		}
	}
	// Expose the logits as public outputs.
	if !cp.counting {
		for _, wv := range cur {
			cp.b.Output(wv)
		}
	}
	return nil
}

// BuildInputs runs the fixed-point engine to produce the circuit inputs
// for one image: the public pixels and the secret vector (parameters then
// gadget hints, in the order Compile consumes them).
func (cc *Compiled) BuildInputs(img *Tensor) (public, secret []field.Element, err error) {
	n := cc.Net
	if img.C != n.InC || img.H != n.InH || img.W != n.InW {
		return nil, nil, fmt.Errorf("nn: image shape %dx%dx%d, want %dx%dx%d",
			img.C, img.H, img.W, n.InC, n.InH, n.InW)
	}
	public = make([]field.Element, img.Len())
	for i, v := range img.Data {
		public[i].SetInt64(v)
	}
	secret = make([]field.Element, 0, cc.NumParams+cc.NumHints)
	for _, p := range n.Parameters() {
		var e field.Element
		e.SetInt64(p)
		secret = append(secret, e)
	}

	// Replay inference, emitting hints in gate order.
	hints := &hintEmitter{}
	cur := img
	for _, layer := range n.Layers {
		switch l := layer.(type) {
		case *Conv2D:
			raw, err := l.forwardRaw(cur)
			if err != nil {
				return nil, nil, err
			}
			out := NewTensor(l.OutC, cur.H, cur.W)
			for i, v := range raw.Data {
				out.Data[i] = hints.rescale(v)
			}
			cur = out
		case ReLU:
			out := NewTensor(cur.C, cur.H, cur.W)
			for i, v := range cur.Data {
				out.Data[i] = hints.relu(v)
			}
			cur = out
		case MaxPool2:
			out := NewTensor(cur.C, cur.H/2, cur.W/2)
			for ch := 0; ch < cur.C; ch++ {
				for y := 0; y < cur.H/2; y++ {
					for x := 0; x < cur.W/2; x++ {
						a := cur.At(ch, 2*y, 2*x)
						b := cur.At(ch, 2*y, 2*x+1)
						c := cur.At(ch, 2*y+1, 2*x)
						d := cur.At(ch, 2*y+1, 2*x+1)
						m1 := hints.max(a, b)
						m2 := hints.max(c, d)
						out.Set(ch, y, x, hints.max(m1, m2))
					}
				}
			}
			cur = out
		case *Linear:
			raw, err := l.forwardRaw(cur)
			if err != nil {
				return nil, nil, err
			}
			out := NewTensor(l.Out, 1, 1)
			for i, v := range raw.Data {
				out.Data[i] = hints.rescale(v)
			}
			cur = out
		default:
			return nil, nil, fmt.Errorf("nn: cannot hint layer %s", layer.Name())
		}
	}
	if len(hints.vals) != cc.NumHints {
		return nil, nil, fmt.Errorf("nn: produced %d hints, circuit wants %d", len(hints.vals), cc.NumHints)
	}
	secret = append(secret, hints.vals...)
	return public, secret, nil
}

// hintEmitter mirrors the gadget order of the compiler, producing the
// secret hint values.
type hintEmitter struct {
	vals []field.Element
}

func (h *hintEmitter) emitInt(v int64) {
	var e field.Element
	e.SetInt64(v)
	h.vals = append(h.vals, e)
}

// decomposeBits emits the HintBits bits of u = v + 2^(HintBits−1) and
// returns the sign (1 if v ≥ 0).
func (h *hintEmitter) decomposeBits(v int64) int64 {
	u := v + 1<<(HintBits-1)
	if u < 0 || u >= 1<<HintBits {
		panic(fmt.Sprintf("nn: value %d exceeds the %d-bit gadget range", v, HintBits))
	}
	for i := 0; i < HintBits; i++ {
		h.emitInt(u >> uint(i) & 1)
	}
	if v >= 0 {
		return 1
	}
	return 0
}

func (h *hintEmitter) relu(v int64) int64 {
	s := h.decomposeBits(v)
	return s * v
}

func (h *hintEmitter) max(a, b int64) int64 {
	return b + h.relu(a-b)
}

func (h *hintEmitter) rescale(v int64) int64 {
	q := v >> FracBits // arithmetic shift = floor division
	r := v - q<<FracBits
	h.emitInt(q)
	for i := 0; i < FracBits; i++ {
		h.emitInt(r >> uint(i) & 1)
	}
	return q
}

// forwardRaw computes a convolution without the final rescale (the
// circuit rescales explicitly via the gadget).
func (c *Conv2D) forwardRaw(in *Tensor) (*Tensor, error) {
	if in.C != c.InC {
		return nil, fmt.Errorf("nn: %s: input has %d channels", c.Name(), in.C)
	}
	out := NewTensor(c.OutC, in.H, in.W)
	pad := c.K / 2
	for o := 0; o < c.OutC; o++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				acc := c.Biases[o] << FracBits
				for i := 0; i < c.InC; i++ {
					for ky := 0; ky < c.K; ky++ {
						sy := y + ky - pad
						if sy < 0 || sy >= in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							sx := x + kx - pad
							if sx < 0 || sx >= in.W {
								continue
							}
							acc += c.weight(o, i, ky, kx) * in.At(i, sy, sx)
						}
					}
				}
				out.Set(o, y, x, acc)
			}
		}
	}
	return out, nil
}

// forwardRaw computes the FC layer without the final rescale.
func (l *Linear) forwardRaw(in *Tensor) (*Tensor, error) {
	if in.Len() != l.In {
		return nil, fmt.Errorf("nn: %s: input has %d values", l.Name(), in.Len())
	}
	out := NewTensor(l.Out, 1, 1)
	for o := 0; o < l.Out; o++ {
		acc := l.Biases[o] << FracBits
		for i := 0; i < l.In; i++ {
			acc += l.Weights[o*l.In+i] * in.Data[i]
		}
		out.Data[o] = acc
	}
	return out, nil
}
