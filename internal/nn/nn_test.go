package nn

import (
	"testing"
)

func TestTensorBasics(t *testing.T) {
	tt := NewTensor(2, 3, 4)
	tt.Set(1, 2, 3, 42)
	if tt.At(1, 2, 3) != 42 {
		t.Fatal("At/Set mismatch")
	}
	if tt.Len() != 24 {
		t.Fatalf("Len = %d", tt.Len())
	}
}

func TestConvShapesAndDeterminism(t *testing.T) {
	net := TinyCNN(7)
	img := RandImage(1, 8, 8, 3)
	out1, inter, err := net.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Len() != 10 {
		t.Fatalf("output length %d", out1.Len())
	}
	if len(inter) != len(net.Layers) {
		t.Fatalf("%d intermediates for %d layers", len(inter), len(net.Layers))
	}
	// Deterministic across reconstructions.
	net2 := TinyCNN(7)
	out2, _, _ := net2.Forward(img)
	for i := range out1.Data {
		if out1.Data[i] != out2.Data[i] {
			t.Fatal("inference not deterministic")
		}
	}
	// Wrong input shape rejected.
	if _, _, err := net.Forward(RandImage(3, 8, 8, 1)); err == nil {
		t.Fatal("accepted wrong shape")
	}
}

func TestReLUAndPool(t *testing.T) {
	in := NewTensor(1, 2, 2)
	in.Data = []int64{-5, 3, 0, -1}
	out, err := (ReLU{}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 3, 0, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("relu[%d] = %d", i, out.Data[i])
		}
	}
	p, err := (MaxPool2{}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Data[0] != 3 {
		t.Fatalf("maxpool = %v", p.Data)
	}
	odd := NewTensor(1, 3, 3)
	if _, err := (MaxPool2{}).Forward(odd); err == nil {
		t.Fatal("accepted odd dims")
	}
}

func TestVGG16Architecture(t *testing.T) {
	net := VGG16(1)
	// 13 conv + 13 relu + 5 pool + 2 fc + 1 relu + ... = count: cfg has
	// 13 convs each followed by ReLU (26) + 5 pools + fc,relu,fc (3).
	if len(net.Layers) != 26+5+3 {
		t.Fatalf("layer count = %d", len(net.Layers))
	}
	// Parameter count: VGG-16 CIFAR variant ≈ 14.7M weights.
	params := net.NumParameters()
	if params < 14_000_000 || params > 16_000_000 {
		t.Fatalf("parameters = %d, want ≈14.7M", params)
	}
	// Multiplication count ≈ 313M MACs plus gadget costs.
	muls := net.MulCount()
	if muls < 300_000_000 {
		t.Fatalf("mul count = %d, want > 300M", muls)
	}
	if len(net.Parameters()) != params {
		t.Fatal("Parameters() length mismatch")
	}
}

func TestVGG16ForwardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("VGG-16 inference is slow in -short mode")
	}
	net := VGG16(1)
	img := RandImage(3, 32, 32, 5)
	class, err := net.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if class < 0 || class >= 10 {
		t.Fatalf("class = %d", class)
	}
}

func TestMulCountsPerLayer(t *testing.T) {
	conv := &Conv2D{InC: 3, OutC: 8, K: 3}
	if got := conv.MulCount(3, 16, 16); got != 8*3*9*16*16 {
		t.Fatalf("conv mul count = %d", got)
	}
	fc := &Linear{In: 100, Out: 10}
	if got := fc.MulCount(0, 0, 0); got != 1000 {
		t.Fatalf("fc mul count = %d", got)
	}
	if got := (ReLU{}).MulCount(2, 4, 4); got != 16*32 {
		t.Fatalf("relu mul count = %d", got)
	}
}

func TestForwardRawMatchesRescaledForward(t *testing.T) {
	// Conv2D.Forward must equal forwardRaw followed by arithmetic shift.
	net := TinyCNN(9)
	conv := net.Layers[0].(*Conv2D)
	img := RandImage(1, 8, 8, 11)
	full, err := conv.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := conv.forwardRaw(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw.Data {
		if raw.Data[i]>>FracBits != full.Data[i] {
			t.Fatalf("element %d: raw>>F=%d, forward=%d", i, raw.Data[i]>>FracBits, full.Data[i])
		}
	}
}
