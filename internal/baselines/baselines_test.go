package baselines

import (
	"testing"

	"batchzk/internal/core"
	"batchzk/internal/encoder"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
)

func TestCPUModuleBaselinesScale(t *testing.T) {
	// CPU baselines must scale ~linearly with input size.
	m1, err := OrionMerkleCPU(1<<14, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := OrionMerkleCPU(1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := m2.AmortizedNsPerTask() / m1.AmortizedNsPerTask()
	if ratio < 3 || ratio > 5 {
		t.Fatalf("merkle CPU scaling ratio %.2f, want ≈4", ratio)
	}

	s1, err := ArkworksSumcheckCPU(14, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ArkworksSumcheckCPU(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio = s2.AmortizedNsPerTask() / s1.AmortizedNsPerTask()
	if ratio < 3 || ratio > 5 {
		t.Fatalf("sumcheck CPU scaling ratio %.2f, want ≈4", ratio)
	}
	if _, err := ArkworksSumcheckCPU(0, 1); err == nil {
		t.Fatal("accepted zero variables")
	}

	e1, err := OrionEncoderCPU(1<<14, 4)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := OrionEncoderCPU(1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio = e2.AmortizedNsPerTask() / e1.AmortizedNsPerTask()
	if ratio < 3 || ratio > 5 {
		t.Fatalf("encoder CPU scaling ratio %.2f, want ≈4", ratio)
	}
	if _, err := OrionEncoderCPU(100, 1); err == nil {
		t.Fatal("accepted non-power-of-two length")
	}
}

func TestGPUBeatsCPUByOrders(t *testing.T) {
	// Table 3-5's headline: our pipelined GPU modules are hundreds of
	// times faster than the single-threaded CPU baselines.
	spec := perfmodel.GH200()
	costs := perfmodel.GPUCosts()

	cpu, _ := OrionMerkleCPU(1<<16, 8)
	gpu, err := pipeline.SimulateMerkle(spec, costs, 1<<16, 64, pipeline.Pipelined, true)
	if err != nil {
		t.Fatal(err)
	}
	speedup := cpu.AmortizedNsPerTask() / gpu.AmortizedNsPerTask()
	if speedup < 100 {
		t.Fatalf("merkle GPU speedup only %.0f×", speedup)
	}

	cpuS, _ := ArkworksSumcheckCPU(16, 8)
	gpuS, err := pipeline.SimulateSumcheck(spec, costs, 16, 64, pipeline.Pipelined, true)
	if err != nil {
		t.Fatal(err)
	}
	speedup = cpuS.AmortizedNsPerTask() / gpuS.AmortizedNsPerTask()
	if speedup < 100 {
		t.Fatalf("sumcheck GPU speedup only %.0f×", speedup)
	}
}

func TestPipelinedBeatsNaiveGPUBaselines(t *testing.T) {
	spec := perfmodel.GH200()
	costs := perfmodel.GPUCosts()

	simon, err := SimonMerkleGPU(spec, 1<<16, 64)
	if err != nil {
		t.Fatal(err)
	}
	ours, _ := pipeline.SimulateMerkle(spec, costs, 1<<16, 64, pipeline.Pipelined, true)
	if ours.ThroughputPerMs() <= simon.ThroughputPerMs() {
		t.Fatal("ours should beat Simon")
	}

	icicle, err := IcicleSumcheckGPU(spec, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	oursS, _ := pipeline.SimulateSumcheck(spec, costs, 16, 64, pipeline.Pipelined, true)
	if oursS.ThroughputPerMs() <= icicle.ThroughputPerMs() {
		t.Fatal("ours should beat Icicle")
	}

	np, err := NonPipelinedEncoderGPU(spec, 1<<16, 64)
	if err != nil {
		t.Fatal(err)
	}
	work, err := encoder.WorkModel(1<<16, encoder.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	oursE, err := pipeline.SimulateEncoderFromWork(spec, costs, work, 1<<16, 64, pipeline.Pipelined, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if oursE.ThroughputPerMs() <= np.ThroughputPerMs() {
		t.Fatal("ours should beat ours-np")
	}
}

func TestGrothModels(t *testing.T) {
	lib, err := Libsnark(1<<18, 1)
	if err != nil {
		t.Fatal(err)
	}
	// MSM must dominate NTT (Table 7's Libsnark shape).
	if lib.MSMNs <= lib.NTTNs {
		t.Fatalf("MSM %.0f should dominate NTT %.0f", lib.MSMNs, lib.NTTNs)
	}
	if lib.ProofNs < lib.MSMNs+lib.NTTNs {
		t.Fatal("proof time below component sum")
	}
	// Calibration anchor: Table 7 reports 23.19 s at S=2^18; the model
	// must land within 2×.
	if secs := lib.ProofNs / 1e9; secs < 12 || secs > 46 {
		t.Fatalf("Libsnark 2^18 = %.1f s, paper says 23.2 s", secs)
	}
	if _, err := Libsnark(1, 1); err == nil {
		t.Fatal("accepted tiny scale")
	}

	bell, err := Bellperson(perfmodel.GH200(), 1<<18, 1)
	if err != nil {
		t.Fatal(err)
	}
	// GPU Groth16 must be far faster than CPU Groth16 but far slower
	// than our pipelined system.
	if bell.ProofNs >= lib.ProofNs {
		t.Fatal("Bellperson should beat Libsnark")
	}
	ours, err := core.SimulateSystem(perfmodel.GH200(), perfmodel.GPUCosts(), 1<<18, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	speedup := bell.ProofNs / ours.CycleNs
	if speedup < 50 {
		t.Fatalf("ours vs Bellperson speedup only %.0f× (paper: ≈515×)", speedup)
	}
	// Memory: Bellperson's working set far exceeds ours (Table 10).
	shape, _ := core.ShapeForScale(1 << 18)
	if bell.PeakDeviceBytes <= core.SystemTaskBytes(shape) {
		t.Fatal("Bellperson memory should exceed ours")
	}
	if _, err := Bellperson(perfmodel.GH200(), 1, 1); err == nil {
		t.Fatal("accepted tiny scale")
	}
	var badSpec = perfmodel.GH200()
	badSpec.Cores = 0
	if _, err := Bellperson(badSpec, 1<<18, 1); err == nil {
		t.Fatal("accepted invalid spec")
	}
}

func TestOrionArkworks(t *testing.T) {
	rep, err := OrionArkworks(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProofNs != rep.MerkleNs+rep.SumcheckNs+rep.EncoderNs {
		t.Fatal("breakdown does not sum")
	}
	// Sum-check dominates (Table 7's Orion&Arkworks shape).
	if rep.SumcheckNs <= rep.MerkleNs || rep.SumcheckNs <= rep.EncoderNs {
		t.Fatalf("sumcheck %.0f should dominate merkle %.0f and encoder %.0f",
			rep.SumcheckNs, rep.MerkleNs, rep.EncoderNs)
	}
	// Ours (GPU) beats it by orders of magnitude.
	ours, err := core.SimulateSystem(perfmodel.GH200(), perfmodel.GPUCosts(), 1<<16, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProofNs/ours.CycleNs < 50 {
		t.Fatalf("speedup vs Orion&Arkworks only %.0f×", rep.ProofNs/ours.CycleNs)
	}
	if _, err := OrionArkworks(10); err == nil {
		t.Fatal("accepted invalid scale")
	}
}
