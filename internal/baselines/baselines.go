// Package baselines models the comparator systems of the paper's Table 2:
//
//	Merkle tree:  Orion (CPU, C++),   Simon (GPU, OpenCL)
//	Sum-check:    Arkworks (CPU, Rust), Icicle (GPU, CUDA)
//	Encoder:      Orion (CPU),        Ours-np (GPU, non-pipelined)
//	Full ZKPs:    Libsnark (CPU) and Bellperson (GPU) — Groth16-family,
//	              dominated by MSM and NTT; Orion&Arkworks (CPU) — the
//	              same modules as ours.
//
// GPU baselines are the *naive* (one-kernel-per-task) schedules of
// internal/pipeline run on the same simulator as our system. CPU baselines
// run the same work counts single-threaded (the published Orion, Arkworks
// and Libsnark provers are single-threaded) on the c5a.8xlarge profile
// the paper uses.
//
// Three constants are fitted to single cells of the paper's tables and
// then *extrapolated* across every other scale and device — the honest
// test of the model is how well the untuned cells match (EXPERIMENTS.md):
//
//	libsnarkPointOpCycles   — fitted to Table 7's Libsnark MSM at S=2^18
//	libsnarkButterflyCycles — fitted to Table 7's Libsnark NTT at S=2^18
//	arkworksPairCycles      — fitted to Table 4's Arkworks row at 2^18
//	bellpersonBaseEff       — fitted to Table 7's Bellperson proof at 2^18
package baselines

import (
	"fmt"
	"math"
	"strings"

	"batchzk/internal/core"
	"batchzk/internal/encoder"
	"batchzk/internal/gpusim"
	"batchzk/internal/msm"
	"batchzk/internal/ntt"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
)

// Fitted implementation constants (see the package comment).
const (
	// libsnark uses generic no-asm Fp arithmetic: one Jacobian point
	// operation ≈ 1300 cycles on a c5a core.
	libsnarkPointOpCycles = 1300
	// libsnark's radix-2 FFT with allocation churn: one butterfly ≈ 400
	// cycles.
	libsnarkButterflyCycles = 400
	// Arkworks' generic-field multilinear sum-check spends ≈1900 cycles
	// per table pair (trait dispatch + allocation).
	arkworksPairCycles = 1900
	// Bellperson's OpenCL kernels reach ≈0.6% of device peak at S=2^18;
	// occupancy improves with input size as √S (the GZKP observation).
	bellpersonBaseEff = 0.006
)

// cpuSingleThread runs stages on one core of the c5a.8xlarge profile.
func cpuSingleThread(stages []gpusim.Stage, batch int, taskBytes int64) (*gpusim.Report, error) {
	spec := perfmodel.CPUc5a()
	return gpusim.RunNaive(spec, stages, batch, 1, gpusim.Options{
		Threads:   1,
		TaskBytes: taskBytes,
	})
}

// OrionMerkleCPU models Orion's single-threaded CPU Merkle generation
// (Table 3, first column).
func OrionMerkleCPU(numBlocks, batch int) (*gpusim.Report, error) {
	stages, err := pipeline.MerkleStages(numBlocks, perfmodel.CPUCosts())
	if err != nil {
		return nil, err
	}
	for i := range stages {
		stages[i].HostBytesIn, stages[i].HostBytesOut = 0, 0 // no device link
	}
	return cpuSingleThread(stages, batch, int64(numBlocks)*perfmodel.HashBlockBytes)
}

// ArkworksSumcheckCPU models the Arkworks multilinear sum-check prover
// (Table 4, first column).
func ArkworksSumcheckCPU(nVars, batch int) (*gpusim.Report, error) {
	if nVars < 1 {
		return nil, fmt.Errorf("baselines: need at least one variable")
	}
	var stages []gpusim.Stage
	for i := 0; i < nVars; i++ {
		half := 1 << (nVars - i - 1)
		stages = append(stages, gpusim.Stage{
			Name:        "sumcheck/round",
			WorkOps:     float64(half),
			CyclesPerOp: arkworksPairCycles,
			MemBytes:    float64(3*half) * perfmodel.FieldBytes,
		})
	}
	return cpuSingleThread(stages, batch, int64(1<<nVars)*perfmodel.FieldBytes)
}

// OrionEncoderCPU models Orion's single-threaded CPU linear-time encoder
// (Table 5, first column) from the analytic work profile.
func OrionEncoderCPU(msgLen, batch int) (*gpusim.Report, error) {
	work, err := encoder.WorkModel(msgLen, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	stages := pipeline.EncoderStagesFromWork(work, msgLen, perfmodel.CPUCosts(), false)
	for i := range stages {
		stages[i].HostBytesIn, stages[i].HostBytesOut = 0, 0
		stages[i].WarpImbalance = 1 // no SIMD warps on a CPU core
	}
	return cpuSingleThread(stages, batch, pipeline.EncoderTaskBytesForLen(msgLen, len(work)))
}

// SimonMerkleGPU models Simon's one-kernel-per-tree GPU scheme
// (Table 3, second column).
func SimonMerkleGPU(spec gpusim.DeviceSpec, numBlocks, batch int) (*gpusim.Report, error) {
	return pipeline.SimulateMerkle(spec, perfmodel.GPUCosts(), numBlocks, batch, pipeline.Naive, false)
}

// IcicleSumcheckGPU models Icicle's one-kernel-per-proof GPU scheme
// (Table 4, second column).
func IcicleSumcheckGPU(spec gpusim.DeviceSpec, nVars, batch int) (*gpusim.Report, error) {
	return pipeline.SimulateSumcheck(spec, perfmodel.GPUCosts(), nVars, batch, pipeline.Naive, false)
}

// NonPipelinedEncoderGPU models "Ours-np": our encoder kernels without
// the pipeline (Table 5, second column).
func NonPipelinedEncoderGPU(spec gpusim.DeviceSpec, msgLen, batch int) (*gpusim.Report, error) {
	work, err := encoder.WorkModel(msgLen, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	return pipeline.SimulateEncoderFromWork(spec, perfmodel.GPUCosts(), work, msgLen, batch, pipeline.Naive, false, true)
}

// grothWork returns the per-proof MSM and NTT work of a Groth16-style
// prover at scale S: three G1 multi-scalar multiplications over ≈2S
// points, one G2 MSM over S points (≈3× the per-point cost), and seven
// (i)NTTs over the 2S evaluation domain for the quotient polynomial.
func grothWork(S int) (pointOps, butterflies float64) {
	pointOps = 3*float64(msm.WorkPointOps(2*S)) + 3*float64(msm.WorkPointOps(S))
	butterflies = 7 * float64(ntt.WorkButterflies(2*S))
	return pointOps, butterflies
}

// GrothReport is the Table 7 row shape for the Groth16-family systems.
type GrothReport struct {
	MSMNs   float64
	NTTNs   float64
	ProofNs float64
	// PeakDeviceBytes reports the per-proof working set (Table 10).
	PeakDeviceBytes int64
}

// BellpersonMemBytes estimates the per-proof device working set of the
// Groth16 GPU prover: the proving key's curve points plus the NTT buffers
// and witness vectors — all resident for the whole proof (no dynamic
// loading).
func BellpersonMemBytes(S int) int64 {
	pkPoints := int64(8*S) * 96 // affine G1/G2 key material
	nttBuffers := int64(7*2*S) * perfmodel.FieldBytes
	witness := int64(2*S) * perfmodel.FieldBytes
	return pkPoints + nttBuffers + witness
}

// Libsnark models the single-threaded CPU Groth16 prover (Table 7).
func Libsnark(S, batch int) (*GrothReport, error) {
	if S < 2 {
		return nil, fmt.Errorf("baselines: scale %d too small", S)
	}
	pointOps, butterflies := grothWork(S)
	spec := perfmodel.CPUc5a()
	cyclesPerNs := spec.ClockGHz // one core
	msmNs := pointOps * libsnarkPointOpCycles / cyclesPerNs
	nttNs := butterflies * libsnarkButterflyCycles / cyclesPerNs
	return &GrothReport{
		MSMNs:           msmNs,
		NTTNs:           nttNs,
		ProofNs:         msmNs + nttNs,
		PeakDeviceBytes: BellpersonMemBytes(S), // same working set, in host RAM
	}, nil
}

// Bellperson models the GPU Groth16 prover (Table 7, Table 8): the same
// work at a device-peak efficiency that starts at bellpersonBaseEff and
// grows with √S as occupancy improves.
func Bellperson(spec gpusim.DeviceSpec, S, batch int) (*GrothReport, error) {
	if S < 2 {
		return nil, fmt.Errorf("baselines: scale %d too small", S)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pointOps, butterflies := grothWork(S)
	costs := perfmodel.GPUCosts()
	eff := bellpersonBaseEff * math.Sqrt(float64(S)/float64(1<<18))
	if eff > 1 {
		eff = 1
	}
	peakCyclesPerNs := float64(spec.Cores) * spec.ClockGHz
	msmNs := pointOps * costs.PointOpCycles / (peakCyclesPerNs * eff)
	nttNs := butterflies * costs.ButterflyCycles / (peakCyclesPerNs * eff)
	// Host transfers of witness and proving key serialize with compute
	// (bellperson does not overlap streams).
	transferNs := float64(BellpersonMemBytes(S)) / spec.LinkGBs
	return &GrothReport{
		MSMNs:           msmNs,
		NTTNs:           nttNs,
		ProofNs:         msmNs + nttNs + transferNs,
		PeakDeviceBytes: BellpersonMemBytes(S),
	}, nil
}

// ModulesReport is the Table 7 row shape for the module-based systems.
type ModulesReport struct {
	MerkleNs   float64
	SumcheckNs float64
	EncoderNs  float64
	ProofNs    float64
}

// OrionArkworks models the CPU system with our modules (Table 7): Orion's
// encoder+Merkle and Arkworks' sum-check executing our system's exact
// work counts single-threaded. Sum-check pairs use the Arkworks
// per-pair cost scaled by the round-polynomial degree.
func OrionArkworks(S int) (*ModulesReport, error) {
	shape, err := core.ShapeForScale(S)
	if err != nil {
		return nil, err
	}
	stages, err := core.SystemStages(shape, perfmodel.CPUCosts(), encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	spec := perfmodel.CPUc5a()
	cyclesPerNs := spec.ClockGHz
	out := &ModulesReport{}
	for i := range stages {
		st := &stages[i]
		fam := strings.SplitN(st.Name, "/", 2)[0]
		cycles := st.WorkOps * st.CyclesPerOp
		if fam == "sumcheck" {
			// Arkworks' sum-check machinery: its measured per-pair cost,
			// scaled from the plain (degree-1) protocol to our degree-3
			// gate rounds and degree-2 linear rounds.
			switch {
			case strings.Contains(st.Name, "gate-round"):
				cycles = st.WorkOps * arkworksPairCycles * 3
			case strings.Contains(st.Name, "linear-round"):
				cycles = st.WorkOps * arkworksPairCycles * 2
			}
		}
		ns := cycles / cyclesPerNs
		switch fam {
		case "merkle":
			out.MerkleNs += ns
		case "sumcheck":
			out.SumcheckNs += ns
		case "encoder":
			out.EncoderNs += ns
		}
	}
	out.ProofNs = out.MerkleNs + out.SumcheckNs + out.EncoderNs
	return out, nil
}
