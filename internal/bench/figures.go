package bench

import (
	"fmt"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/gpusim"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
)

// sparkline renders a 0..1 series as a compact text plot.
func sparkline(vals []float64) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	out := make([]rune, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[i] = levels[int(v*float64(len(levels)-1)+0.5)]
	}
	return string(out)
}

// resample reduces a utilization trace to width points.
func resample(trace []gpusim.UtilSample, width int) []float64 {
	if len(trace) == 0 {
		return nil
	}
	out := make([]float64, width)
	for i := range out {
		idx := i * len(trace) / width
		out[i] = trace[idx].Util
	}
	return out
}

// traceStats returns the mean utilization of a trace.
func traceStats(trace []gpusim.UtilSample) float64 {
	if len(trace) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range trace {
		sum += s.Util
	}
	return sum / float64(len(trace))
}

// Fig9 reproduces the GPU core-utilization study (Figure 9): utilization
// over time for each module, pipelined vs the non-pipelined baseline, on
// the RTX 3090 Ti (the paper's choice).
func Fig9() (*Table, error) {
	spec := perfmodel.RTX3090Ti()
	costs := perfmodel.GPUCosts()
	const logN = 18
	const batch = 256
	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("GPU core utilization over time, %s, size 2^%d, batch %d", spec.Name, logN, batch),
		Header: []string{"Module", "Scheme", "Mean util", "Timeline (time →)"},
	}
	add := func(module, scheme string, rep *gpusim.Report) {
		t.Rows = append(t.Rows, []string{
			module, scheme,
			fmt.Sprintf("%4.1f%%", traceStats(rep.Trace)*100),
			sparkline(resample(rep.Trace, 60)),
		})
	}

	pm, err := pipeline.SimulateMerkle(spec, costs, 1<<logN, batch, pipeline.Pipelined, true)
	if err != nil {
		return nil, err
	}
	nm, err := pipeline.SimulateMerkle(spec, costs, 1<<logN, batch, pipeline.Naive, false)
	if err != nil {
		return nil, err
	}
	add("Merkle", "ours (pipelined)", pm)
	add("Merkle", "Simon (naive)", nm)

	ps, err := pipeline.SimulateSumcheck(spec, costs, logN, batch, pipeline.Pipelined, true)
	if err != nil {
		return nil, err
	}
	ns, err := pipeline.SimulateSumcheck(spec, costs, logN, batch, pipeline.Naive, false)
	if err != nil {
		return nil, err
	}
	add("Sumcheck", "ours (pipelined)", ps)
	add("Sumcheck", "Icicle (naive)", ns)

	work, err := encoder.WorkModel(1<<logN, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	pe, err := pipeline.SimulateEncoderFromWork(spec, costs, work, 1<<logN, batch, pipeline.Pipelined, true, true)
	if err != nil {
		return nil, err
	}
	ne, err := pipeline.SimulateEncoderFromWork(spec, costs, work, 1<<logN, batch, pipeline.Naive, false, true)
	if err != nil {
		return nil, err
	}
	add("Encoder", "ours (pipelined)", pe)
	add("Encoder", "ours-np (naive)", ne)

	t.Notes = append(t.Notes,
		"pipelined schemes hold a high plateau; naive schemes decay as reduction stages idle threads (paper Fig. 9)")
	return t, nil
}

// Fig4 reproduces the thread-workload schematic of Figure 4: per-cycle
// busy-thread fractions for the naive and pipelined Merkle schemes.
func Fig4() (*Table, error) {
	spec := perfmodel.V100()
	costs := perfmodel.GPUCosts()
	const logN = 14
	const batch = 32
	naive, err := pipeline.SimulateMerkle(spec, costs, 1<<logN, batch, pipeline.Naive, false)
	if err != nil {
		return nil, err
	}
	pipe, err := pipeline.SimulateMerkle(spec, costs, 1<<logN, batch, pipeline.Pipelined, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("Thread workload, Merkle batch of %d trees of 2^%d blocks (%s)", batch, logN, spec.Name),
		Header: []string{"Scheme", "Mean util", "Busy threads over time"},
		Rows: [][]string{
			{"(a) intuitive", fmt.Sprintf("%4.1f%%", traceStats(naive.Trace)*100), sparkline(resample(naive.Trace, 60))},
			{"(b) pipelined", fmt.Sprintf("%4.1f%%", traceStats(pipe.Trace)*100), sparkline(resample(pipe.Trace, 60))},
		},
		Notes: []string{"the pipelined scheme ramps up, holds every thread busy, and drains (paper Fig. 4b)"},
	}
	return t, nil
}

// Fig6 demonstrates the two-pipeline encoder workflow of Figure 6 by
// running the *functional* pipelined encoder on a small batch and
// printing which task occupies which stage at every cycle.
func Fig6() (*Table, error) {
	enc, err := encoder.New(64, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	numStages := 2*enc.NumStages() + 1
	const tasks = 5
	t := &Table{
		ID:    "fig6",
		Title: fmt.Sprintf("Two-pipeline encoder schedule: %d tasks through %d stages (fwd ×%d, base, bwd ×%d)", tasks, numStages, enc.NumStages(), enc.NumStages()),
	}
	t.Header = []string{"Cycle"}
	for s := 0; s < enc.NumStages(); s++ {
		t.Header = append(t.Header, fmt.Sprintf("fwd%d", s))
	}
	t.Header = append(t.Header, "base")
	for s := enc.NumStages() - 1; s >= 0; s-- {
		t.Header = append(t.Header, fmt.Sprintf("bwd%d", s))
	}
	for cycle := 0; cycle < tasks+numStages-1; cycle++ {
		row := []string{fmt.Sprintf("%d", cycle)}
		for stage := 0; stage < numStages; stage++ {
			task := cycle - stage
			if task >= 0 && task < tasks {
				row = append(row, fmt.Sprintf("T%d", task))
			} else {
				row = append(row, "·")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	// Run the functional pipeline to confirm the schedule computes the
	// right codewords.
	msgs := make([][]field.Element, tasks)
	for i := range msgs {
		msgs[i] = field.RandVector(64)
	}
	got, err := pipeline.BatchEncode(enc, msgs)
	if err != nil {
		return nil, err
	}
	for i := range msgs {
		want, err := enc.Encode(msgs[i])
		if err != nil {
			return nil, err
		}
		if !field.VectorEqual(got[i], want) {
			return nil, fmt.Errorf("bench: pipelined codeword %d mismatch", i)
		}
	}
	t.Notes = append(t.Notes, "all pipelined codewords verified bit-identical to the recursive encoder")
	return t, nil
}

// Experiment names in paper order, followed by the ablations this
// reproduction adds for the design choices DESIGN.md calls out.
var experimentOrder = []string{
	"table3", "table4", "table5", "table6", "fig9",
	"table7", "table8", "table9", "table10", "table11",
	"fig4", "fig6",
	"alloc", "ablation-alloc", "ablation-sort", "ablation-overlap",
	"ablation-multigpu", "ablation-pipeline", "proofsize",
}

// Run executes one experiment by id on the given primary device.
func Run(id string, spec gpusim.DeviceSpec) (*Table, error) {
	switch id {
	case "table3":
		return Table3(spec)
	case "table4":
		return Table4(spec)
	case "table5":
		return Table5(spec)
	case "table6":
		return Table6(spec)
	case "table7":
		return Table7(spec)
	case "table8":
		return Table8()
	case "table9":
		return Table9()
	case "table10":
		return Table10()
	case "table11":
		return Table11(spec)
	case "fig4":
		return Fig4()
	case "fig6":
		return Fig6()
	case "fig9":
		return Fig9()
	case "alloc":
		return Alloc()
	case "ablation-alloc":
		return AblationAlloc()
	case "ablation-sort":
		return AblationSort()
	case "ablation-overlap":
		return AblationOverlap()
	case "ablation-multigpu":
		return AblationMultiGPU()
	case "ablation-pipeline":
		return AblationPipeline()
	case "proofsize":
		return ProofSize()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, experimentOrder)
	}
}

// All runs every experiment in paper order.
func All(spec gpusim.DeviceSpec) ([]*Table, error) {
	var out []*Table
	for _, id := range experimentOrder {
		t, err := Run(id, spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Experiments lists the available experiment ids.
func Experiments() []string {
	return append([]string(nil), experimentOrder...)
}
