package bench

import (
	"fmt"
	"time"

	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/gpusim"
	"batchzk/internal/pcs"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
	"batchzk/internal/protocol"
	"batchzk/internal/transcript"
)

// Alloc reproduces the resource-allocation worked example of §4: the
// per-module thread split the system derives from the modules' amortized
// execution-time ratio (the paper's 35 : 12 : 113 → 2240/768/7296 threads
// on a 5120-core V100 driving 10240 threads).
func Alloc() (*Table, error) {
	t := &Table{
		ID:     "alloc",
		Title:  "Thread allocation across module families (paper §4)",
		Header: []string{"GPU", "S", "Encoder", "Merkle", "Sumcheck", "Ratio (enc:mer:sum)"},
		Notes: []string{
			"the paper's V100 example derives 2240/768/7296 from the measured ratio 35:12:113",
			"our ratio is recomputed from the model's work counts, normalized to merkle = 12",
		},
	}
	for _, spec := range []gpusim.DeviceSpec{perfmodel.V100(), perfmodel.GH200()} {
		for _, logS := range []int{18, 20} {
			rep, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), 1<<logS, 256, true)
			if err != nil {
				return nil, err
			}
			enc := rep.ThreadAllocation["encoder"]
			mer := rep.ThreadAllocation["merkle"]
			sum := rep.ThreadAllocation["sumcheck"]
			norm := 12.0 / float64(mer)
			t.Rows = append(t.Rows, []string{
				spec.Name, fmt.Sprintf("2^%d", logS),
				fmt.Sprintf("%d", enc), fmt.Sprintf("%d", mer), fmt.Sprintf("%d", sum),
				fmt.Sprintf("%.0f : 12 : %.0f", float64(enc)*norm, float64(sum)*norm),
			})
		}
	}
	return t, nil
}

// AblationAlloc contrasts the paper's work-proportional thread allocation
// against a naive equal split across pipeline stages.
func AblationAlloc() (*Table, error) {
	t := &Table{
		ID:     "ablation-alloc",
		Title:  "Resource-allocation ablation: work-proportional vs equal stage shares (GH200)",
		Header: []string{"S", "Proportional (ms/proof)", "Equal shares (ms/proof)", "Slowdown"},
	}
	spec := perfmodel.GH200()
	costs := perfmodel.GPUCosts()
	for _, logS := range []int{18, 20, 22} {
		shape, err := core.ShapeForScale(1 << logS)
		if err != nil {
			return nil, err
		}
		stages, err := core.SystemStages(shape, costs, encoder.DefaultParams())
		if err != nil {
			return nil, err
		}
		prop, err := gpusim.RunPipelined(spec, stages, 256, gpusim.Options{
			Overlap: true, TaskBytes: core.SystemTaskBytes(shape),
		})
		if err != nil {
			return nil, err
		}
		equal, err := gpusim.RunPipelined(spec, stages, 256, gpusim.Options{
			Overlap: true, TaskBytes: core.SystemTaskBytes(shape), EqualShares: true,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logS),
			f3(prop.CycleNs / 1e6), f3(equal.CycleNs / 1e6),
			f2x(equal.CycleNs / prop.CycleNs),
		})
	}
	return t, nil
}

// AblationSort measures the warp-balancing scheme of §3.3: encoder
// throughput with and without bucket-sorted row assignment, plus the raw
// SIMD-imbalance factors of the sampled expanders.
func AblationSort() (*Table, error) {
	t := &Table{
		ID:     "ablation-sort",
		Title:  "Encoder warp-balancing ablation: bucket-sorted vs unsorted rows (GH200)",
		Header: []string{"Size", "Sorted (codes/ms)", "Unsorted (codes/ms)", "Gain", "Imbalance factor (unsorted)"},
	}
	spec := perfmodel.GH200()
	costs := perfmodel.GPUCosts()
	for _, logN := range []int{18, 20, 22} {
		n := 1 << logN
		work, err := encoder.WorkModel(n, encoder.DefaultParams())
		if err != nil {
			return nil, err
		}
		sorted, err := pipeline.SimulateEncoderFromWork(spec, costs, work, n, moduleBatch, pipeline.Pipelined, true, true)
		if err != nil {
			return nil, err
		}
		unsorted, err := pipeline.SimulateEncoderFromWork(spec, costs, work, n, moduleBatch, pipeline.Pipelined, true, false)
		if err != nil {
			return nil, err
		}
		imb := pipeline.WarpImbalance(work[0].SecondLens, false)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logN),
			f3(sorted.ThroughputPerMs()), f3(unsorted.ThroughputPerMs()),
			f2x(sorted.ThroughputPerMs() / unsorted.ThroughputPerMs()),
			fmt.Sprintf("%.3f", imb),
		})
	}
	return t, nil
}

// AblationOverlap measures the multi-stream technology of §3.1/§4:
// system cycle time with and without compute/transfer overlap, per GPU.
func AblationOverlap() (*Table, error) {
	t := &Table{
		ID:     "ablation-overlap",
		Title:  "Multi-stream ablation: pipeline cycle with and without transfer overlap, S = 2^20",
		Header: []string{"GPU", "No overlap (ms)", "Overlap (ms)", "Gain"},
	}
	const S = 1 << 20
	for _, spec := range append(perfmodel.GPUs(), perfmodel.GH200()) {
		with, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), S, 256, true)
		if err != nil {
			return nil, err
		}
		without, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), S, 256, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			f3(without.CycleNs / 1e6), f3(with.CycleNs / 1e6),
			f2x(without.CycleNs / with.CycleNs),
		})
	}
	return t, nil
}

// AblationMultiGPU models scale-out across multiple GPUs sharing one
// host: linear until the aggregate link traffic saturates host memory.
func AblationMultiGPU() (*Table, error) {
	t := &Table{
		ID:     "ablation-multigpu",
		Title:  "Multi-GPU scale-out at S = 2^20 (shared 350 GB/s host memory)",
		Header: []string{"GPUs", "Throughput (proofs/s)", "Scaling", "Host-bound"},
	}
	const S = 1 << 20
	const hostGBs = 350
	spec := perfmodel.H100()
	var base float64
	for _, k := range []int{1, 2, 4, 8, 16} {
		rep, err := core.SimulateMultiGPU(spec, k, perfmodel.GPUCosts(), S, 256, hostGBs)
		if err != nil {
			return nil, err
		}
		thr := rep.ThroughputPerMs * 1000
		if k == 1 {
			base = thr
		}
		bound := "no"
		if rep.HostBound {
			bound = "yes"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), fmt.Sprintf("%.1f", thr),
			f2x(thr / base), bound,
		})
	}
	t.Notes = append(t.Notes, "proof jobs are independent, so scaling is linear until the shared host link saturates")
	return t, nil
}

// ProofSize measures real serialized proof sizes across circuit scales
// (the paper, §2.1: proofs of this protocol family "reach several MB"),
// including the shared-path saving of the compact openings.
func ProofSize() (*Table, error) {
	t := &Table{
		ID:     "proofsize",
		Title:  "Serialized proof size vs circuit scale (real proofs, this host)",
		Header: []string{"Gates", "Wires", "Proof size", "Opening-path digests (indep → shared)"},
	}
	for _, gates := range []int{64, 512, 4096} {
		c, err := circuit.RandomCircuit(gates, 2, 2, int64(gates))
		if err != nil {
			return nil, err
		}
		p, err := protocol.Setup(c)
		if err != nil {
			return nil, err
		}
		proof, err := protocol.Prove(c, p, field.RandVector(2), field.RandVector(2))
		if err != nil {
			return nil, err
		}
		size, err := proof.Size()
		if err != nil {
			return nil, err
		}
		// Compact-opening comparison on the same commitment layout.
		st, err := pcs.Commit(make([]field.Element, p.NumWires), p.PCS)
		if err != nil {
			return nil, err
		}
		point := field.RandVector(log2i(p.NumWires))
		compactProof, _, err := st.ProveEvalCompact(point, newTr())
		if err != nil {
			return nil, err
		}
		shared, indep := compactProof.PathDigests()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", gates),
			fmt.Sprintf("%d", p.NumWires),
			fmt.Sprintf("%d KiB", size/1024),
			fmt.Sprintf("%d → %d (%.0f%% saved)", indep, shared, 100*(1-float64(shared)/float64(indep))),
		})
	}
	t.Notes = append(t.Notes,
		"opened columns dominate; size grows ≈√S with the matrix rows, reaching MBs at the paper's 2^18+ scales")
	return t, nil
}

func newTr() *transcript.Transcript { return transcript.New("bench/proofsize") }

// AblationPipeline measures the *real executed* software pipeline: the
// batch prover's wall-clock throughput against a strictly sequential
// prover on the same jobs — the functional counterpart of the modelled
// pipelined-vs-naive comparisons.
func AblationPipeline() (*Table, error) {
	t := &Table{
		ID:     "ablation-pipeline",
		Title:  "Executed batch prover vs sequential prover (real wall clock, this host)",
		Header: []string{"Gates", "Batch", "Sequential (proofs/s)", "Pipelined (proofs/s)", "Gain"},
		Notes:  []string{"runs the actual Go provers; the gain reflects stage overlap on host CPUs"},
	}
	for _, gates := range []int{128, 512} {
		c, err := circuit.RandomCircuit(gates, 2, 2, int64(gates))
		if err != nil {
			return nil, err
		}
		p, err := protocol.Setup(c)
		if err != nil {
			return nil, err
		}
		const batch = 8
		jobs := make([]core.Job, batch)
		for i := range jobs {
			jobs[i] = core.Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
		}

		seqStart := time.Now()
		for _, j := range jobs {
			if _, err := protocol.Prove(c, p, j.Public, j.Secret); err != nil {
				return nil, err
			}
		}
		seqElapsed := time.Since(seqStart)

		prover, err := core.NewBatchProver(c, p, 4)
		if err != nil {
			return nil, err
		}
		pipeStart := time.Now()
		results := prover.ProveBatch(jobs)
		pipeElapsed := time.Since(pipeStart)
		for _, r := range results {
			if r.Err != nil {
				return nil, r.Err
			}
		}

		seqRate := float64(batch) / seqElapsed.Seconds()
		pipeRate := float64(batch) / pipeElapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", gates), fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.1f", seqRate), fmt.Sprintf("%.1f", pipeRate),
			f2x(pipeRate / seqRate),
		})
	}
	return t, nil
}
