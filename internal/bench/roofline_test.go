package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRooflineReport(t *testing.T) {
	rep, err := BuildRooflineReport(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != RooflineReportKind || rep.SchemaVersion != RooflineSchemaVersion {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Calibration.MulNs <= 0 || rep.Calibration.AddNs <= 0 || rep.Calibration.CompressNs <= 0 {
		t.Fatalf("calibration: %+v", rep.Calibration)
	}
	// A Montgomery multiply costs more than an add; a sha256 compression
	// costs more than a multiply. A calibration that violates this is
	// measuring noise.
	if rep.Calibration.MulNs <= rep.Calibration.AddNs {
		t.Fatalf("mul %.1fns <= add %.1fns", rep.Calibration.MulNs, rep.Calibration.AddNs)
	}
	if rep.Calibration.CompressNs <= rep.Calibration.MulNs {
		t.Fatalf("compress %.1fns <= mul %.1fns", rep.Calibration.CompressNs, rep.Calibration.MulNs)
	}

	wantKernels := map[string]bool{
		"merkle/build": false, "ntt/forward": false, "sumcheck/prove": false,
		"encoder/encode": false, "field/batch-inverse": false, "msm/pippenger": false,
	}
	for _, k := range rep.Kernels {
		if _, ok := wantKernels[k.Name]; !ok {
			t.Fatalf("unexpected kernel %q", k.Name)
		}
		wantKernels[k.Name] = true
		if k.MeasuredNs <= 0 || k.NsPerElement <= 0 || k.FloorNsPerElement <= 0 {
			t.Fatalf("kernel %s: %+v", k.Name, k)
		}
		// The floor is a lower bound: no kernel beats its own arithmetic.
		// Allow a sliver of timer slack on tiny problem sizes.
		if k.PctOfCeiling > 110 {
			t.Fatalf("kernel %s at %.1f%% of its supposed ceiling", k.Name, k.PctOfCeiling)
		}
		switch k.Verdict {
		case VerdictNearALUCeiling, VerdictALUHeadroom, VerdictOverheadBound:
		default:
			t.Fatalf("kernel %s verdict %q", k.Name, k.Verdict)
		}
		// The roofline measures serially (width 1), so any kernel that did
		// route through the par runtime must have executed fully inline.
		if k.ParCalls > 0 && k.ParInline != k.ParChunks {
			t.Fatalf("kernel %s ran %d of %d chunks off-thread in a serial measurement: %+v",
				k.Name, k.ParChunks-k.ParInline, k.ParChunks, k)
		}
	}
	// Kernels below their parallel-dispatch thresholds (and the
	// inherently serial batch inverse) legitimately bypass the runtime,
	// but the big data-parallel kernels must show attribution.
	var attributed int
	for _, k := range rep.Kernels {
		if k.ParCalls > 0 && k.ParItems > 0 {
			attributed++
		}
	}
	if attributed == 0 {
		t.Fatal("no kernel carried par runtime attribution")
	}
	for name, seen := range wantKernels {
		if !seen {
			t.Fatalf("kernel %s missing from the roofline", name)
		}
	}
}

func TestRooflineRoundTripAndTable(t *testing.T) {
	rep, err := BuildRooflineReport(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRooflineReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Kernels) != len(rep.Kernels) {
		t.Fatalf("round trip lost kernels: %d vs %d", len(back.Kernels), len(rep.Kernels))
	}
	if _, err := ReadRooflineReport(strings.NewReader(`{"schema_version":1,"kind":"memory"}`)); err == nil {
		t.Fatal("foreign kind accepted")
	}

	var tbl bytes.Buffer
	rep.RenderTable(&tbl)
	out := tbl.String()
	for _, want := range []string{"merkle/build", "msm/pippenger", "%ceil", "calibrated ALU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
