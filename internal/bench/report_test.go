package bench

import (
	"bytes"
	"strings"
	"testing"

	"batchzk/internal/gpusim"
	"batchzk/internal/perfmodel"
	"batchzk/internal/telemetry"
)

func buildQuickstart(t *testing.T) *Report {
	t.Helper()
	sc, err := ScenarioByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	rep, contrast, err := BuildReport(sc, perfmodel.RTX3090Ti(), perfmodel.GPUCosts())
	if err != nil {
		t.Fatal(err)
	}
	if contrast == nil {
		t.Fatal("nil contrast")
	}
	return rep
}

// TestQuickstartReportAcceptance is the PR's acceptance gate: the
// quickstart report's utilization breakdown must show the pipelined
// scheme at least 2x as busy as the naive scheme, throughput ahead too.
func TestQuickstartReportAcceptance(t *testing.T) {
	rep := buildQuickstart(t)
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Fatalf("schema version %d", rep.SchemaVersion)
	}
	if rep.Pipelined.Util.Busy < 2*rep.Naive.Util.Busy {
		t.Fatalf("pipelined busy %.3f < 2x naive busy %.3f",
			rep.Pipelined.Util.Busy, rep.Naive.Util.Busy)
	}
	if rep.BusyGainX < 2 || rep.SpeedupX < 2 {
		t.Fatalf("headline gains too small: busy %.2fx speedup %.2fx",
			rep.BusyGainX, rep.SpeedupX)
	}
	for _, s := range []struct {
		name string
		st   SchemeStats
	}{{"pipelined", rep.Pipelined}, {"naive", rep.Naive}} {
		if s.st.ThroughputPerMs <= 0 || s.st.TotalNs <= 0 {
			t.Fatalf("%s: empty stats %+v", s.name, s.st)
		}
		if s.st.Latency.P50Ns <= 0 || s.st.Latency.P99Ns < s.st.Latency.P50Ns {
			t.Fatalf("%s: latency percentiles degenerate: %+v", s.name, s.st.Latency)
		}
		if s.st.PeakDeviceBytes <= 0 || s.st.Concurrency <= 0 {
			t.Fatalf("%s: memory/concurrency missing: %+v", s.name, s.st)
		}
		if s.st.Verdict == "" || s.st.Bottleneck == "" {
			t.Fatalf("%s: verdicts missing", s.name)
		}
	}
	if rep.Device != perfmodel.RTX3090Ti().Name || rep.Cores <= 0 {
		t.Fatalf("device identity missing: %q/%d", rep.Device, rep.Cores)
	}
}

func TestAllScenariosBuild(t *testing.T) {
	spec := perfmodel.RTX3090Ti()
	costs := perfmodel.GPUCosts()
	for _, sc := range Scenarios() {
		if testing.Short() && sc.Name != "tiny" {
			continue
		}
		rep, _, err := BuildReport(sc, spec, costs)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if rep.Scenario != sc.Name || rep.Batch != sc.Batch {
			t.Fatalf("%s: report identity %+v", sc.Name, rep)
		}
		// The paper's claim holds at real scales: pipelining never loses
		// on busy fraction. "tiny" is exempt — 2^8-block trees cannot
		// fill a 10k-core device either way.
		if sc.Name != "tiny" && rep.Pipelined.Util.Busy < rep.Naive.Util.Busy {
			t.Fatalf("%s: pipelined busy %.3f below naive %.3f",
				sc.Name, rep.Pipelined.Util.Busy, rep.Naive.Util.Busy)
		}
	}
	if _, err := ScenarioByName("no-such"); err == nil ||
		!strings.Contains(err.Error(), "quickstart") {
		t.Fatalf("unknown-scenario error should list the registry: %v", err)
	}
	if got := ReportFileName("quickstart"); got != "BENCH_quickstart.json" {
		t.Fatalf("file name %q", got)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := buildQuickstart(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != rep.Scenario || back.Pipelined.ThroughputPerMs != rep.Pipelined.ThroughputPerMs {
		t.Fatalf("round-trip drifted: %+v", back)
	}
	// Schema gate.
	bad := strings.Replace(buf.String(), `"schema_version": 1`, `"schema_version": 99`, 1)
	if _, err := ReadReport(strings.NewReader(bad)); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := ReadReport(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadReport(strings.NewReader("{}")); err == nil {
		t.Fatal("empty report accepted")
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	old := buildQuickstart(t)

	// Identical reports: clean.
	same := *old
	regs, err := Compare(old, &same, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-compare flagged %+v", regs)
	}

	// Inject a 15% throughput regression: must trip the 10% gate.
	worse := *old
	worse.Pipelined.ThroughputPerMs *= 0.85
	worse.SpeedupX *= 0.85
	regs, err = Compare(old, &worse, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 {
		t.Fatal("15%% throughput regression not flagged")
	}
	found := false
	for _, r := range regs {
		if r.Metric == "pipelined.throughput_per_ms" {
			found = true
			if r.DeltaFrac < 0.14 || r.DeltaFrac > 0.16 {
				t.Fatalf("delta %.3f, want ~0.15", r.DeltaFrac)
			}
		}
	}
	if !found {
		t.Fatalf("throughput metric missing from %+v", regs)
	}

	// The same change passes a looser 20% gate.
	regs, err = Compare(old, &worse, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("20%% gate tripped on 15%% change: %+v", regs)
	}

	// Improvements never trip: double the throughput, halve the memory.
	better := *old
	better.Pipelined.ThroughputPerMs *= 2
	better.Pipelined.PeakDeviceBytes /= 2
	if regs, _ = Compare(old, &better, 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}

	// Rising latency and memory are regressions.
	heavier := *old
	heavier.Pipelined.Latency.P50Ns *= 1.5
	heavier.Pipelined.PeakDeviceBytes *= 2
	regs, _ = Compare(old, &heavier, 0.10)
	if len(regs) != 2 {
		t.Fatalf("latency+memory regressions: got %+v", regs)
	}

	// Mismatched scenarios refuse to diff.
	other := *old
	other.Scenario = "merkle"
	if _, err := Compare(old, &other, 0.10); err == nil {
		t.Fatal("cross-scenario compare accepted")
	}
	if _, err := Compare(nil, old, 0.10); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, err := Compare(old, &same, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestSweepBatches(t *testing.T) {
	cases := map[int][]int{
		256: {64, 128, 256},
		4:   {1, 2, 4},
		1:   {1},
		2:   {1, 2},
	}
	for in, want := range cases {
		got := sweepBatches(in)
		if len(got) != len(want) {
			t.Fatalf("sweep(%d) = %v, want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sweep(%d) = %v, want %v", in, got, want)
			}
		}
	}
}

// TestReportSLOSummary checks the error-budget block: the quickstart
// run sits far inside its fixed targets, so every objective is met with
// the full budget intact.
func TestReportSLOSummary(t *testing.T) {
	rep := buildQuickstart(t)
	if rep.SLO == nil {
		t.Fatal("report has no SLO block")
	}
	if len(rep.SLO.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(rep.SLO.Objectives))
	}
	if rep.SLO.Attainment != 1 {
		t.Fatalf("attainment %.2f, want 1.0: %+v", rep.SLO.Attainment, rep.SLO.Objectives)
	}
	if rep.SLO.BudgetRemaining != 1 {
		t.Fatalf("budget remaining %.2f, want 1.0", rep.SLO.BudgetRemaining)
	}
	for _, o := range rep.SLO.Objectives {
		if !o.Met {
			t.Fatalf("objective %s not met: value %.0f", o.Name, o.Value)
		}
	}
	lat := rep.SLO.Objectives[0]
	if lat.Kind != "latency" || lat.TargetNs == 0 || lat.Value <= 0 {
		t.Fatalf("latency objective malformed: %+v", lat)
	}
}

// TestCompareGatesSLO checks that Compare flags a lost objective and a
// spent error budget even when the perf metrics hold steady.
func TestCompareGatesSLO(t *testing.T) {
	mk := func(attainment, budget float64) *Report {
		return &Report{
			SchemaVersion: ReportSchemaVersion,
			Scenario:      "quickstart",
			Pipelined:     SchemeStats{ThroughputPerMs: 10, Util: gpusimUtil(0.8), Latency: LatencySummary{P50Ns: 100}, PeakDeviceBytes: 1 << 20},
			SpeedupX:      3,
			SLO:           &SLOSummary{Attainment: attainment, BudgetRemaining: budget},
		}
	}
	regs, err := Compare(mk(1, 1), mk(0.5, -2), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range regs {
		got[r.Metric] = true
	}
	if !got["slo.attainment"] || !got["slo.budget_remaining"] {
		t.Fatalf("missing SLO regressions in %v", regs)
	}

	// Identical SLO blocks pass; an old report without one is ignored.
	if regs, _ = Compare(mk(1, 1), mk(1, 1), 0.10); len(regs) != 0 {
		t.Fatalf("clean compare flagged %v", regs)
	}
	old := mk(1, 1)
	old.SLO = nil
	if regs, _ = Compare(old, mk(0, -1), 0.10); len(regs) != 0 {
		t.Fatalf("compare against pre-SLO report flagged %v", regs)
	}
}

// TestHistFracAbove exercises the bucket interpolation the latency
// budget is computed from.
func TestHistFracAbove(t *testing.T) {
	var hist telemetry.Histogram
	for i := 0; i < 90; i++ {
		hist.Observe(100)
	}
	for i := 0; i < 10; i++ {
		hist.Observe(1 << 20)
	}
	snap := hist.Snapshot()
	if f := histFracAbove(snap, 1<<19); f < 0.05 || f > 0.15 {
		t.Fatalf("fracAbove(2^19) = %.3f, want ~0.10", f)
	}
	if f := histFracAbove(snap, 1<<30); f != 0 {
		t.Fatalf("fracAbove(huge) = %.3f, want 0", f)
	}
	if f := histFracAbove(telemetry.HistogramSnapshot{}, 1); f != 0 {
		t.Fatalf("fracAbove(empty) = %.3f, want 0", f)
	}
}

func gpusimUtil(busy float64) (u gpusim.Utilization) {
	u.Busy = busy
	return u
}
