package bench

import (
	"bytes"
	"strings"
	"testing"

	"batchzk/internal/perfmodel"
)

func buildQuickstart(t *testing.T) *Report {
	t.Helper()
	sc, err := ScenarioByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	rep, contrast, err := BuildReport(sc, perfmodel.RTX3090Ti(), perfmodel.GPUCosts())
	if err != nil {
		t.Fatal(err)
	}
	if contrast == nil {
		t.Fatal("nil contrast")
	}
	return rep
}

// TestQuickstartReportAcceptance is the PR's acceptance gate: the
// quickstart report's utilization breakdown must show the pipelined
// scheme at least 2x as busy as the naive scheme, throughput ahead too.
func TestQuickstartReportAcceptance(t *testing.T) {
	rep := buildQuickstart(t)
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Fatalf("schema version %d", rep.SchemaVersion)
	}
	if rep.Pipelined.Util.Busy < 2*rep.Naive.Util.Busy {
		t.Fatalf("pipelined busy %.3f < 2x naive busy %.3f",
			rep.Pipelined.Util.Busy, rep.Naive.Util.Busy)
	}
	if rep.BusyGainX < 2 || rep.SpeedupX < 2 {
		t.Fatalf("headline gains too small: busy %.2fx speedup %.2fx",
			rep.BusyGainX, rep.SpeedupX)
	}
	for _, s := range []struct {
		name string
		st   SchemeStats
	}{{"pipelined", rep.Pipelined}, {"naive", rep.Naive}} {
		if s.st.ThroughputPerMs <= 0 || s.st.TotalNs <= 0 {
			t.Fatalf("%s: empty stats %+v", s.name, s.st)
		}
		if s.st.Latency.P50Ns <= 0 || s.st.Latency.P99Ns < s.st.Latency.P50Ns {
			t.Fatalf("%s: latency percentiles degenerate: %+v", s.name, s.st.Latency)
		}
		if s.st.PeakDeviceBytes <= 0 || s.st.Concurrency <= 0 {
			t.Fatalf("%s: memory/concurrency missing: %+v", s.name, s.st)
		}
		if s.st.Verdict == "" || s.st.Bottleneck == "" {
			t.Fatalf("%s: verdicts missing", s.name)
		}
	}
	if rep.Device != perfmodel.RTX3090Ti().Name || rep.Cores <= 0 {
		t.Fatalf("device identity missing: %q/%d", rep.Device, rep.Cores)
	}
}

func TestAllScenariosBuild(t *testing.T) {
	spec := perfmodel.RTX3090Ti()
	costs := perfmodel.GPUCosts()
	for _, sc := range Scenarios() {
		if testing.Short() && sc.Name != "tiny" {
			continue
		}
		rep, _, err := BuildReport(sc, spec, costs)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if rep.Scenario != sc.Name || rep.Batch != sc.Batch {
			t.Fatalf("%s: report identity %+v", sc.Name, rep)
		}
		// The paper's claim holds at real scales: pipelining never loses
		// on busy fraction. "tiny" is exempt — 2^8-block trees cannot
		// fill a 10k-core device either way.
		if sc.Name != "tiny" && rep.Pipelined.Util.Busy < rep.Naive.Util.Busy {
			t.Fatalf("%s: pipelined busy %.3f below naive %.3f",
				sc.Name, rep.Pipelined.Util.Busy, rep.Naive.Util.Busy)
		}
	}
	if _, err := ScenarioByName("no-such"); err == nil ||
		!strings.Contains(err.Error(), "quickstart") {
		t.Fatalf("unknown-scenario error should list the registry: %v", err)
	}
	if got := ReportFileName("quickstart"); got != "BENCH_quickstart.json" {
		t.Fatalf("file name %q", got)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := buildQuickstart(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != rep.Scenario || back.Pipelined.ThroughputPerMs != rep.Pipelined.ThroughputPerMs {
		t.Fatalf("round-trip drifted: %+v", back)
	}
	// Schema gate.
	bad := strings.Replace(buf.String(), `"schema_version": 1`, `"schema_version": 99`, 1)
	if _, err := ReadReport(strings.NewReader(bad)); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := ReadReport(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadReport(strings.NewReader("{}")); err == nil {
		t.Fatal("empty report accepted")
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	old := buildQuickstart(t)

	// Identical reports: clean.
	same := *old
	regs, err := Compare(old, &same, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-compare flagged %+v", regs)
	}

	// Inject a 15% throughput regression: must trip the 10% gate.
	worse := *old
	worse.Pipelined.ThroughputPerMs *= 0.85
	worse.SpeedupX *= 0.85
	regs, err = Compare(old, &worse, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 {
		t.Fatal("15%% throughput regression not flagged")
	}
	found := false
	for _, r := range regs {
		if r.Metric == "pipelined.throughput_per_ms" {
			found = true
			if r.DeltaFrac < 0.14 || r.DeltaFrac > 0.16 {
				t.Fatalf("delta %.3f, want ~0.15", r.DeltaFrac)
			}
		}
	}
	if !found {
		t.Fatalf("throughput metric missing from %+v", regs)
	}

	// The same change passes a looser 20% gate.
	regs, err = Compare(old, &worse, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("20%% gate tripped on 15%% change: %+v", regs)
	}

	// Improvements never trip: double the throughput, halve the memory.
	better := *old
	better.Pipelined.ThroughputPerMs *= 2
	better.Pipelined.PeakDeviceBytes /= 2
	if regs, _ = Compare(old, &better, 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}

	// Rising latency and memory are regressions.
	heavier := *old
	heavier.Pipelined.Latency.P50Ns *= 1.5
	heavier.Pipelined.PeakDeviceBytes *= 2
	regs, _ = Compare(old, &heavier, 0.10)
	if len(regs) != 2 {
		t.Fatalf("latency+memory regressions: got %+v", regs)
	}

	// Mismatched scenarios refuse to diff.
	other := *old
	other.Scenario = "merkle"
	if _, err := Compare(old, &other, 0.10); err == nil {
		t.Fatal("cross-scenario compare accepted")
	}
	if _, err := Compare(nil, old, 0.10); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, err := Compare(old, &same, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestSweepBatches(t *testing.T) {
	cases := map[int][]int{
		256: {64, 128, 256},
		4:   {1, 2, 4},
		1:   {1},
		2:   {1, 2},
	}
	for in, want := range cases {
		got := sweepBatches(in)
		if len(got) != len(want) {
			t.Fatalf("sweep(%d) = %v, want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sweep(%d) = %v, want %v", in, got, want)
			}
		}
	}
}
