// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation (§6), each returning a rendered table
// with the same rows/columns the paper reports, produced by the
// performance models in internal/pipeline, internal/core and
// internal/baselines.
//
// Absolute numbers come from the documented cost model (DESIGN.md,
// internal/perfmodel); the quantities to compare against the paper are
// the *shapes*: who wins, by what rough factor, and how the factors move
// with size. EXPERIMENTS.md records paper-vs-measured for every row.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"batchzk/internal/baselines"
	"batchzk/internal/core"
	"batchzk/internal/encoder"
	"batchzk/internal/gpusim"
	"batchzk/internal/nn"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
	"batchzk/internal/vml"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// RenderCSV writes the table as CSV (id and notes as comment lines).
func (t *Table) RenderCSV(w io.Writer) error {
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
	return nil
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Sizes swept by the module tables (2^18 … 2^22, as in the paper).
var moduleSizes = []int{18, 19, 20, 21, 22}

// moduleBatch is the batch size used for throughput measurements.
const moduleBatch = 1024

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2x(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Table3 reproduces the Merkle-tree module throughput comparison:
// Orion (CPU), Simon (GPU, naive), Ours (GPU, pipelined), in trees/ms.
func Table3(spec gpusim.DeviceSpec) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Throughput of Merkle tree modules (trees/ms) on " + spec.Name,
		Header: []string{"Size", "Orion(CPU)", "Simon(GPU)", "Ours(GPU)", "vs CPU", "vs GPU"},
	}
	for _, logN := range moduleSizes {
		n := 1 << logN
		cpu, err := baselines.OrionMerkleCPU(n, 4)
		if err != nil {
			return nil, err
		}
		simon, err := baselines.SimonMerkleGPU(spec, n, moduleBatch)
		if err != nil {
			return nil, err
		}
		ours, err := pipeline.SimulateMerkle(spec, perfmodel.GPUCosts(), n, moduleBatch, pipeline.Pipelined, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logN),
			fmt.Sprintf("%.3e", cpu.ThroughputPerMs()),
			f3(simon.ThroughputPerMs()),
			f3(ours.ThroughputPerMs()),
			f2x(ours.ThroughputPerMs() / cpu.ThroughputPerMs()),
			f2x(ours.ThroughputPerMs() / simon.ThroughputPerMs()),
		})
	}
	return t, nil
}

// Table4 reproduces the sum-check module throughput comparison:
// Arkworks (CPU), Icicle (GPU, naive), Ours (GPU, pipelined), proofs/ms.
func Table4(spec gpusim.DeviceSpec) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "Throughput of sum-check modules (proofs/ms) on " + spec.Name,
		Header: []string{"Size", "Arkworks(CPU)", "Icicle(GPU)", "Ours(GPU)", "vs CPU", "vs GPU"},
	}
	for _, n := range moduleSizes {
		cpu, err := baselines.ArkworksSumcheckCPU(n, 4)
		if err != nil {
			return nil, err
		}
		icicle, err := baselines.IcicleSumcheckGPU(spec, n, moduleBatch)
		if err != nil {
			return nil, err
		}
		ours, err := pipeline.SimulateSumcheck(spec, perfmodel.GPUCosts(), n, moduleBatch, pipeline.Pipelined, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", n),
			fmt.Sprintf("%.3e", cpu.ThroughputPerMs()),
			f3(icicle.ThroughputPerMs()),
			f3(ours.ThroughputPerMs()),
			f2x(ours.ThroughputPerMs() / cpu.ThroughputPerMs()),
			f2x(ours.ThroughputPerMs() / icicle.ThroughputPerMs()),
		})
	}
	return t, nil
}

// Table5 reproduces the linear-time-encoder throughput comparison:
// Orion (CPU), Ours-np (GPU, non-pipelined), Ours (GPU, pipelined),
// codes/ms.
func Table5(spec gpusim.DeviceSpec) (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Throughput of linear-time encoder modules (codes/ms) on " + spec.Name,
		Header: []string{"Size", "Orion(CPU)", "Ours-np(GPU)", "Ours(GPU)", "vs CPU", "vs np"},
	}
	for _, logN := range moduleSizes {
		n := 1 << logN
		cpu, err := baselines.OrionEncoderCPU(n, 4)
		if err != nil {
			return nil, err
		}
		np, err := baselines.NonPipelinedEncoderGPU(spec, n, moduleBatch)
		if err != nil {
			return nil, err
		}
		work, err := encoder.WorkModel(n, encoder.DefaultParams())
		if err != nil {
			return nil, err
		}
		ours, err := pipeline.SimulateEncoderFromWork(spec, perfmodel.GPUCosts(), work, n, moduleBatch, pipeline.Pipelined, true, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logN),
			fmt.Sprintf("%.3e", cpu.ThroughputPerMs()),
			f3(np.ThroughputPerMs()),
			f3(ours.ThroughputPerMs()),
			f2x(ours.ThroughputPerMs() / cpu.ThroughputPerMs()),
			f2x(ours.ThroughputPerMs() / np.ThroughputPerMs()),
		})
	}
	return t, nil
}

// Table6 reproduces the latency comparison: the pipelined modules trade
// latency for throughput.
func Table6(spec gpusim.DeviceSpec) (*Table, error) {
	t := &Table{
		ID:     "table6",
		Title:  "Latency of ZKP modules (ms) on " + spec.Name,
		Header: []string{"Size", "Module", "Baseline", "Ours", "Ratio"},
		Notes:  []string{"ratio < 1: the pipelined scheme has higher latency (the paper's trade-off)"},
	}
	costs := perfmodel.GPUCosts()
	for _, logN := range []int{18, 20} {
		n := 1 << logN
		simon, err := baselines.SimonMerkleGPU(spec, n, 8)
		if err != nil {
			return nil, err
		}
		ours, err := pipeline.SimulateMerkle(spec, costs, n, 8, pipeline.Pipelined, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logN), "Merkle",
			f3(simon.LatencyNs / 1e6), f3(ours.LatencyNs / 1e6),
			f3(simon.LatencyNs / ours.LatencyNs),
		})
		icicle, err := baselines.IcicleSumcheckGPU(spec, logN, 8)
		if err != nil {
			return nil, err
		}
		oursS, err := pipeline.SimulateSumcheck(spec, costs, logN, 8, pipeline.Pipelined, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logN), "Sumcheck",
			f3(icicle.LatencyNs / 1e6), f3(oursS.LatencyNs / 1e6),
			f3(icicle.LatencyNs / oursS.LatencyNs),
		})
		np, err := baselines.NonPipelinedEncoderGPU(spec, n, 8)
		if err != nil {
			return nil, err
		}
		work, err := encoder.WorkModel(n, encoder.DefaultParams())
		if err != nil {
			return nil, err
		}
		oursE, err := pipeline.SimulateEncoderFromWork(spec, costs, work, n, 8, pipeline.Pipelined, true, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logN), "Encoder",
			f3(np.LatencyNs / 1e6), f3(oursE.LatencyNs / 1e6),
			f3(np.LatencyNs / oursE.LatencyNs),
		})
	}
	return t, nil
}

// systemScales swept by Table 7 and Table 10.
var systemScales = []int{18, 19, 20, 21, 22}

// Table7 reproduces the full-system comparison: amortized per-proof time
// of Libsnark (CPU), Bellperson (GPU), Orion&Arkworks (CPU) and Ours
// (GPU), with the per-module breakdown.
func Table7(spec gpusim.DeviceSpec) (*Table, error) {
	t := &Table{
		ID:    "table7",
		Title: "Amortized execution time per proof (ms), systems on " + spec.Name,
		Header: []string{"S", "Libsnark:MSM", "NTT", "Proof",
			"Bellperson:MSM", "NTT", "Proof",
			"O&A:Merkle", "Sum", "Enc", "Proof",
			"Ours:Merkle", "Sum", "Enc", "Proof"},
	}
	for _, logS := range systemScales {
		S := 1 << logS
		lib, err := baselines.Libsnark(S, 1)
		if err != nil {
			return nil, err
		}
		bell, err := baselines.Bellperson(spec, S, 1)
		if err != nil {
			return nil, err
		}
		oa, err := baselines.OrionArkworks(S)
		if err != nil {
			return nil, err
		}
		ours, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), S, 256, true)
		if err != nil {
			return nil, err
		}
		ms := func(ns float64) string { return fmt.Sprintf("%.3g", ns/1e6) }
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logS),
			ms(lib.MSMNs), ms(lib.NTTNs), ms(lib.ProofNs),
			ms(bell.MSMNs), ms(bell.NTTNs), ms(bell.ProofNs),
			ms(oa.MerkleNs), ms(oa.SumcheckNs), ms(oa.EncoderNs), ms(oa.ProofNs),
			ms(ours.MerkleNs), ms(ours.SumcheckNs), ms(ours.EncoderNs), ms(ours.CycleNs),
		})
	}
	return t, nil
}

// Table8 reproduces the cross-GPU comparison at S = 2^20: Bellperson vs
// Ours, latency (s) and throughput (proofs/s).
func Table8() (*Table, error) {
	t := &Table{
		ID:     "table8",
		Title:  "Throughput (proofs/s) and latency (s) across GPUs, S = 2^20",
		Header: []string{"GPU", "Bell lat", "Ours lat", "Speedup", "Bell thr", "Ours thr", "Speedup"},
	}
	const S = 1 << 20
	for _, spec := range perfmodel.GPUs() {
		bell, err := baselines.Bellperson(spec, S, 1)
		if err != nil {
			return nil, err
		}
		ours, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), S, 256, true)
		if err != nil {
			return nil, err
		}
		bellLat := bell.ProofNs / 1e9
		bellThr := 1e9 / bell.ProofNs
		oursLat := ours.LatencyNs / 1e9
		oursThr := ours.ThroughputPerMs() * 1000
		t.Rows = append(t.Rows, []string{
			spec.Name,
			f3(bellLat), f3(oursLat), f2x(bellLat / oursLat),
			f3(bellThr), fmt.Sprintf("%.2f", oursThr), f2x(oursThr / bellThr),
		})
	}
	return t, nil
}

// Table9 reproduces the communication/computation overlap study: the
// amortized per-cycle CPU↔GPU traffic and times, with multi-stream
// overlap.
func Table9() (*Table, error) {
	t := &Table{
		ID:     "table9",
		Title:  "Amortized CPU-GPU communication and computation per pipeline cycle, S = 2^20",
		Header: []string{"GPU", "Link", "Comm size", "Comm time", "Comp time", "Overall (overlap)"},
	}
	const S = 1 << 20
	shape, err := core.ShapeForScale(S)
	if err != nil {
		return nil, err
	}
	stages, err := core.SystemStages(shape, perfmodel.GPUCosts(), encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	bytesPerCycle := 0.0
	for _, st := range stages {
		bytesPerCycle += st.HostBytesIn + st.HostBytesOut
	}
	for _, spec := range perfmodel.GPUs() {
		with, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), S, 256, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%.0f GB/s", spec.LinkGBs),
			fmt.Sprintf("%.0f MB", bytesPerCycle/1e6),
			fmt.Sprintf("%.2f ms", with.TransferNsPerTask/1e6),
			fmt.Sprintf("%.2f ms", with.ComputeNsPerTask/1e6),
			fmt.Sprintf("%.2f ms", with.CycleNs/1e6),
		})
	}
	return t, nil
}

// Table10 reproduces the amortized device-memory comparison per in-flight
// proof: Bellperson vs Ours.
func Table10() (*Table, error) {
	t := &Table{
		ID:     "table10",
		Title:  "Amortized device memory per proof generation executed in parallel",
		Header: []string{"S", "Bellperson", "Ours", "Ratio"},
	}
	for _, logS := range systemScales {
		S := 1 << logS
		bell := float64(baselines.BellpersonMemBytes(S)) / (1 << 30)
		shape, err := core.ShapeForScale(S)
		if err != nil {
			return nil, err
		}
		ours := float64(core.SystemTaskBytes(shape)) / (1 << 30)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", logS),
			fmt.Sprintf("%.2f GB", bell),
			fmt.Sprintf("%.2f GB", ours),
			f2x(bell / ours),
		})
	}
	return t, nil
}

// Table11 reproduces the verifiable-ML application study: published
// throughput/latency of zkCNN, ZKML and ZENO against our simulated system
// on VGG-16 with CIFAR-10-sized inputs.
func Table11(spec gpusim.DeviceSpec) (*Table, error) {
	rep, err := vml.SimulatePerformance(spec, nn.VGG16(1), 1024)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table11",
		Title:  "Verifiable machine learning on VGG-16 / CIFAR-10-sized inputs (" + spec.Name + ")",
		Header: []string{"Scheme", "Throughput (proofs/s)", "Latency (s)", "Accuracy"},
		Notes: []string{
			"zkCNN/ZKML/ZENO rows are the published CPU numbers the paper compares against",
			fmt.Sprintf("ours uses the effective proving scale 2^%d (parameters + activations)", log2i(rep.Scale)),
			"accuracy is a property of trained weights; synthetic weights → N/A (DESIGN.md)",
		},
	}
	t.Rows = [][]string{
		{"zkCNN [35]", "0.0113", "88.3", "90.30% (published)"},
		{"ZKML [5]", "0.0017", "637", "90.37% (published)"},
		{"ZENO [13]", "0.0208", "48.0", "84.19% (published)"},
		{"Ours", fmt.Sprintf("%.2f", rep.ThroughputPerSec), fmt.Sprintf("%.1f", rep.LatencySec), "N/A (synthetic weights)"},
	}
	return t, nil
}

func log2i(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
