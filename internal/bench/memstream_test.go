package bench

import (
	"bytes"
	"testing"
)

// The streaming sweep is the repo's own acceptance check for the
// memory-bounded prover: an 8× batch under ProveStream + out-of-core
// commits must keep the working set flat. Sizes here are small — the
// CI smoke job runs the real thing — but the flatness claim itself is
// scale-free, so even the tiny sweep must pass it.
func TestStreamSweepFlat(t *testing.T) {
	sweep, err := BuildMemoryStreamSweep(64, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 || sweep.Factor != MemoryStreamFactor {
		t.Fatalf("sweep shape: %+v", sweep)
	}
	if sweep.Points[0].Batch*MemoryStreamFactor != sweep.Points[1].Batch {
		t.Fatalf("batch step: %+v", sweep.Points)
	}
	if !sweep.AllProofsOK() {
		t.Fatal("sweep proofs failed")
	}
	for _, p := range sweep.Points {
		if p.PeakHeapAllocBytes == 0 {
			t.Fatalf("empty point record: %+v", p)
		}
	}
	if !sweep.Flat {
		t.Fatalf("streaming sweep is not flat: ws %d → %d B (%+.1f%%)",
			sweep.Points[0].WorkingSetBytes, sweep.Points[1].WorkingSetBytes, sweep.GrowthFrac*100)
	}
}

// The stream block survives the BENCH_memory.json round trip and feeds
// the compare gates.
func TestStreamSweepInReport(t *testing.T) {
	rep := tinyMemorySoak(t)
	sweep, err := BuildMemoryStreamSweep(16, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep.Stream = sweep
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMemoryReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Stream == nil || back.Stream.Flat != sweep.Flat || len(back.Stream.Points) != 2 {
		t.Fatalf("stream block drifted in round trip: %+v", back.Stream)
	}
}

func TestCompareMemoryStreamGates(t *testing.T) {
	flatSweep := func() *StreamSweep {
		return &StreamSweep{
			Flat:   true,
			Points: []StreamPoint{{Batch: 8, AllProofsOK: true}, {Batch: 64, AllProofsOK: true}},
		}
	}
	old := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true, Stream: flatSweep()}
	cur := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true, Stream: flatSweep()}
	if regs, err := CompareMemory(old, cur, 0.10); err != nil || len(regs) != 0 {
		t.Fatalf("matching stream blocks flagged: %v %v", regs, err)
	}

	// Losing streaming flatness is gated.
	cur.Stream.Flat = false
	regs, _ := CompareMemory(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "stream_flat" {
		t.Fatalf("stream flatness loss not gated: %v", regs)
	}

	// Losing the block entirely is gated.
	cur2 := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true}
	regs, _ = CompareMemory(old, cur2, 0.10)
	if len(regs) != 1 || regs[0].Metric != "stream_present" {
		t.Fatalf("stream block loss not gated: %v", regs)
	}

	// A failing point is gated.
	cur3 := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true, Stream: flatSweep()}
	cur3.Stream.Points[1].AllProofsOK = false
	regs, _ = CompareMemory(old, cur3, 0.10)
	if len(regs) != 1 || regs[0].Metric != "stream_all_proofs_ok" {
		t.Fatalf("stream proof failure not gated: %v", regs)
	}

	// Baselines without the block gate nothing stream-side.
	oldV1 := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true}
	if regs, _ := CompareMemory(oldV1, cur, 0.10); len(regs) != 0 {
		t.Fatalf("v1 baseline gated stream metrics: %v", regs)
	}
}
