package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"batchzk/internal/perfmodel"
)

func fixtureTable() *Table {
	return &Table{
		ID:     "tableX",
		Title:  "fixture, with a comma",
		Header: []string{"Size", "Ours(GPU)", "vs GPU"},
		Rows: [][]string{
			{"2^18", "1.234", "5.67x"},
			{"2^20", `quoted "cell"`, "a,b"},
		},
		Notes: []string{"first note", "second, with comma"},
	}
}

// TestRenderCSVRoundTrip parses the CSV renderer's output back and
// checks the data survives, with id/title and notes on comment lines.
func TestRenderCSVRoundTrip(t *testing.T) {
	tab := fixtureTable()
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "# tableX: fixture, with a comma" {
		t.Fatalf("first comment line %q", lines[0])
	}
	wantNotes := []string{"# note: first note", "# note: second, with comma"}
	gotTail := lines[len(lines)-2:]
	for i, want := range wantNotes {
		if gotTail[i] != want {
			t.Fatalf("note line %d = %q, want %q", i, gotTail[i], want)
		}
	}

	rd := csv.NewReader(strings.NewReader(out))
	rd.Comment = '#'
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("renderer output is not valid CSV: %v", err)
	}
	if len(recs) != 1+len(tab.Rows) {
		t.Fatalf("got %d records, want %d", len(recs), 1+len(tab.Rows))
	}
	for i, want := range tab.Header {
		if recs[0][i] != want {
			t.Fatalf("header[%d] = %q, want %q", i, recs[0][i], want)
		}
	}
	for r, row := range tab.Rows {
		for c, want := range row {
			if recs[r+1][c] != want {
				t.Fatalf("cell[%d][%d] = %q, want %q (quoting lost)", r, c, recs[r+1][c], want)
			}
		}
	}
}

// TestRenderAlignedGolden pins the plain-text layout: aligned columns, a
// dash separator, indented notes, trailing blank line.
func TestRenderAlignedGolden(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "golden",
		Header: []string{"A", "Name"},
		Rows:   [][]string{{"1", "x"}, {"22", "longer"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	want := "" +
		"=== t: golden ===\n" +
		"  A   Name  \n" +
		"  --  ------\n" +
		"  1   x     \n" +
		"  22  longer\n" +
		"  note: n1\n" +
		"\n"
	if buf.String() != want {
		t.Fatalf("aligned render drifted:\ngot:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestRenderersOnAllExperiments smoke-tests both renderers over every
// registered table/figure: CSV must stay parseable with the right record
// count, text must carry the id and every header cell.
func TestRenderersOnAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tables, err := All(perfmodel.RTX3090Ti())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no experiments registered")
	}
	for _, tab := range tables {
		var txt bytes.Buffer
		tab.Render(&txt)
		if !strings.Contains(txt.String(), tab.ID) {
			t.Fatalf("%s: text render misses the id", tab.ID)
		}
		for _, h := range tab.Header {
			if !strings.Contains(txt.String(), h) {
				t.Fatalf("%s: text render misses header %q", tab.ID, h)
			}
		}

		var csvBuf bytes.Buffer
		if err := tab.RenderCSV(&csvBuf); err != nil {
			t.Fatalf("%s: %v", tab.ID, err)
		}
		rd := csv.NewReader(bytes.NewReader(csvBuf.Bytes()))
		rd.Comment = '#'
		rd.FieldsPerRecord = -1 // figures mix row widths
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("%s: CSV output unparseable: %v", tab.ID, err)
		}
		if len(recs) != 1+len(tab.Rows) {
			t.Fatalf("%s: %d CSV records, want %d", tab.ID, len(recs), 1+len(tab.Rows))
		}
	}
}
