package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestKernelsReportBuildAndRoundTrip(t *testing.T) {
	rep, err := BuildKernelsReport(6, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KernelsReportKind || rep.SchemaVersion != KernelsSchemaVersion {
		t.Fatalf("bad header: kind=%q v%d", rep.Kind, rep.SchemaVersion)
	}
	if len(rep.Kernels) != 6 {
		t.Fatalf("%d kernels measured, want 6", len(rep.Kernels))
	}
	for _, k := range rep.Kernels {
		if !k.Identical {
			t.Fatalf("kernel %s: parallel output differs from serial", k.Name)
		}
		if k.SerialNs <= 0 || k.ParallelNs <= 0 {
			t.Fatalf("kernel %s: non-positive timing", k.Name)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernelsReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shift != rep.Shift || len(got.Kernels) != len(rep.Kernels) {
		t.Fatal("round trip lost fields")
	}
}

func TestKernelsReportRejectsWrongKind(t *testing.T) {
	_, err := ReadKernelsReport(strings.NewReader(`{"schema_version":1,"kind":"scheduler"}`))
	if err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestCompareKernelsGates(t *testing.T) {
	old := &KernelsReport{
		SchemaVersion: KernelsSchemaVersion, Kind: KernelsReportKind, Cores: 4,
		Kernels: []KernelResult{
			{Name: "a", SpeedupX: 2.0, Identical: true},
			{Name: "b", SpeedupX: 3.0, Identical: true},
		},
	}
	// Identity break is gated regardless of cores.
	cur := &KernelsReport{
		SchemaVersion: KernelsSchemaVersion, Kind: KernelsReportKind, Cores: 8,
		Kernels: []KernelResult{
			{Name: "a", SpeedupX: 0.5, Identical: false},
			{Name: "b", SpeedupX: 0.5, Identical: true},
		},
	}
	regs, err := CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "a.identical" {
		t.Fatalf("cross-core compare gated %v, want only a.identical", regs)
	}
	// Same cores: the speedup collapse is also gated.
	cur.Cores = 4
	regs, err = CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("same-core compare found %d regressions, want 3 (identity + 2 speedups)", len(regs))
	}
	// A dropped kernel is a regression.
	cur.Kernels = cur.Kernels[:1]
	cur.Kernels[0].Identical = true
	cur.Kernels[0].SpeedupX = 2.0
	regs, err = CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range regs {
		if r.Metric == "b.present" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped kernel not gated: %v", regs)
	}
}
