package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestKernelsReportBuildAndRoundTrip(t *testing.T) {
	rep, err := BuildKernelsReport(6, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KernelsReportKind || rep.SchemaVersion != KernelsSchemaVersion {
		t.Fatalf("bad header: kind=%q v%d", rep.Kind, rep.SchemaVersion)
	}
	if len(rep.Kernels) != 6 {
		t.Fatalf("%d kernels measured, want 6", len(rep.Kernels))
	}
	for _, k := range rep.Kernels {
		if !k.Identical {
			t.Fatalf("kernel %s: parallel output differs from serial", k.Name)
		}
		if k.SerialNs <= 0 || k.ParallelNs <= 0 {
			t.Fatalf("kernel %s: non-positive timing", k.Name)
		}
	}
	if len(rep.FieldArith) != 7 {
		t.Fatalf("%d field-arith kernels measured, want 7", len(rep.FieldArith))
	}
	for _, f := range rep.FieldArith {
		if !f.Identical {
			t.Fatalf("field-arith %s: optimized path diverges from reference", f.Name)
		}
		if f.RefNsOp <= 0 || f.NewNsOp <= 0 || f.Ops <= 0 {
			t.Fatalf("field-arith %s: non-positive measurement: %+v", f.Name, f)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernelsReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shift != rep.Shift || len(got.Kernels) != len(rep.Kernels) {
		t.Fatal("round trip lost fields")
	}
	if len(got.FieldArith) != len(rep.FieldArith) {
		t.Fatal("round trip lost the field-arith section")
	}
}

func TestKernelsReportRejectsOldSchema(t *testing.T) {
	_, err := ReadKernelsReport(strings.NewReader(`{"schema_version":1,"kind":"kernels"}`))
	if err == nil {
		t.Fatal("schema v1 accepted by a v2 reader")
	}
}

func TestKernelsReportRejectsWrongKind(t *testing.T) {
	_, err := ReadKernelsReport(strings.NewReader(`{"schema_version":1,"kind":"scheduler"}`))
	if err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestCompareKernelsGates(t *testing.T) {
	old := &KernelsReport{
		SchemaVersion: KernelsSchemaVersion, Kind: KernelsReportKind, Cores: 4,
		Kernels: []KernelResult{
			{Name: "a", SpeedupX: 2.0, Identical: true},
			{Name: "b", SpeedupX: 3.0, Identical: true},
		},
	}
	// Identity break is gated regardless of cores.
	cur := &KernelsReport{
		SchemaVersion: KernelsSchemaVersion, Kind: KernelsReportKind, Cores: 8,
		Kernels: []KernelResult{
			{Name: "a", SpeedupX: 0.5, Identical: false},
			{Name: "b", SpeedupX: 0.5, Identical: true},
		},
	}
	regs, err := CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "a.identical" {
		t.Fatalf("cross-core compare gated %v, want only a.identical", regs)
	}
	// Same cores: the speedup collapse is also gated.
	cur.Cores = 4
	regs, err = CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("same-core compare found %d regressions, want 3 (identity + 2 speedups)", len(regs))
	}
	// A dropped kernel is a regression.
	cur.Kernels = cur.Kernels[:1]
	cur.Kernels[0].Identical = true
	cur.Kernels[0].SpeedupX = 2.0
	regs, err = CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range regs {
		if r.Metric == "b.present" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped kernel not gated: %v", regs)
	}
}

func TestCompareKernelsGatesFieldArith(t *testing.T) {
	old := &KernelsReport{
		SchemaVersion: KernelsSchemaVersion, Kind: KernelsReportKind, Cores: 4,
		FieldArith: []FieldArithResult{
			{Name: "field/mul", SpeedupX: 1.6, Identical: true},
			{Name: "fp/mul", SpeedupX: 1.5, Identical: true},
		},
	}
	// Cross-core: only the equivalence break is gated.
	cur := &KernelsReport{
		SchemaVersion: KernelsSchemaVersion, Kind: KernelsReportKind, Cores: 8,
		FieldArith: []FieldArithResult{
			{Name: "field/mul", SpeedupX: 0.9, Identical: false},
			{Name: "fp/mul", SpeedupX: 0.9, Identical: true},
		},
	}
	regs, err := CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "field-arith/field/mul.identical" {
		t.Fatalf("cross-core compare gated %v, want only the identical break", regs)
	}
	// Same cores: the speedup collapses are gated too.
	cur.Cores = 4
	regs, err = CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("same-core compare found %d regressions, want 3 (identity + 2 speedups)", len(regs))
	}
	// A dropped microkernel is a regression.
	cur.FieldArith = cur.FieldArith[:1]
	regs, err = CompareKernels(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range regs {
		if r.Metric == "field-arith/fp/mul.present" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped field-arith kernel not gated: %v", regs)
	}
}
