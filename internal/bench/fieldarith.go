package bench

import (
	"math"
	"time"

	"batchzk/internal/curve"
	"batchzk/internal/field"
	"batchzk/internal/fp"
	"batchzk/internal/msm"
)

// Field-arithmetic section of the kernels report (schema v2): the
// ALU-floor microkernels — the unrolled Montgomery multiply and square,
// the fixed-addition-chain inversions, the dedicated mixed add, and the
// batch-affine Pippenger — each timed against the retained generic
// reference it replaced, with a bit-identity check over the same inputs.
// CompareKernels gates the Identical flags and kernel presence
// unconditionally and the speedups on equal-core hosts, so a change that
// quietly reverts a kernel to reference speed (or breaks its
// equivalence) fails make bench-check.

// FieldArithResult is one microkernel's reference-vs-optimized timing.
type FieldArithResult struct {
	Name string `json:"name"`
	// Ops is the length of the timed dependency chain (for the MSM entry,
	// the point count).
	Ops int `json:"ops"`
	// RefNsOp is the retained generic reference's cost per operation.
	RefNsOp float64 `json:"ref_ns_op"`
	// NewNsOp is the optimized kernel's cost per operation.
	NewNsOp float64 `json:"new_ns_op"`
	// SpeedupX = RefNsOp / NewNsOp.
	SpeedupX float64 `json:"speedup_x"`
	// Identical reports that both paths produced bit-identical results
	// over the same inputs — the correctness half of the claim.
	Identical bool `json:"identical"`
}

// Sinks the dead-code eliminator cannot remove, so the timed dependency
// chains above really execute.
var (
	faFieldSink field.Element
	faFpSink    fp.Element
	faCurveSink curve.JacobianPoint
	faMSMSink   curve.AffinePoint
)

// faBestOf runs a timing closure reps times and keeps the minimum, so a
// scheduling hiccup cannot masquerade as a slow kernel.
func faBestOf(reps int, f func() float64) float64 {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		if v := f(); v < best {
			best = v
		}
	}
	return best
}

// faCase is one microkernel: ref and opt each time their own serial
// dependency chain and return ns/op; same replays both paths over
// identical inputs and reports bit-identity.
type faCase struct {
	name string
	ops  int
	ref  func() float64
	opt  func() float64
	same func() bool
}

// buildFieldArithSection measures every ALU-floor microkernel against its
// generic reference. All chains are serial scalar code — the par runtime
// width does not apply.
func buildFieldArithSection(reps int) ([]FieldArithResult, error) {
	if reps < 1 {
		reps = 1
	}
	const (
		mulOps   = 1 << 16
		invOps   = 1 << 9
		curveOps = 1 << 13
		sameOps  = 1 << 10
		msmN     = 1 << 9
	)
	a := field.NewElement(3)
	b := field.NewElement(0x9e3779b97f4a7c15)
	fa := fp.NewElement(3)
	fb := fp.NewElement(0x9e3779b97f4a7c15)

	p, q := curve.RandPoint(), curve.RandPoint()
	base := p.ToJacobian()
	base.Double(&base) // non-trivial Z so the Z1Z1 terms are exercised

	msmPts := make([]curve.AffinePoint, msmN)
	for i := range msmPts {
		msmPts[i] = curve.RandPoint()
	}
	msmScalars := field.RandVector(msmN)
	// The equivalence check doubles as input validation: any error from
	// either path aborts the section before timing starts.
	refPt, err := msm.PippengerJacobian(msmPts, msmScalars)
	if err != nil {
		return nil, err
	}
	optPt, err := msm.Pippenger(msmPts, msmScalars)
	if err != nil {
		return nil, err
	}
	msmIdentical := optPt.Equal(&refPt)

	cases := []faCase{
		{
			name: "field/mul", ops: mulOps,
			ref: func() float64 {
				acc := a
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					field.MulGeneric(&acc, &acc, &b)
				}
				faFieldSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			opt: func() float64 {
				acc := a
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					acc.Mul(&acc, &b)
				}
				faFieldSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			same: func() bool {
				g, u := a, a
				for i := 0; i < sameOps; i++ {
					field.MulGeneric(&g, &g, &b)
					u.Mul(&u, &b)
				}
				return g == u
			},
		},
		{
			name: "field/square", ops: mulOps,
			ref: func() float64 {
				acc := b
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					field.SquareGeneric(&acc, &acc)
				}
				faFieldSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			opt: func() float64 {
				acc := b
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					acc.Square(&acc)
				}
				faFieldSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			same: func() bool {
				g, u := b, b
				for i := 0; i < sameOps; i++ {
					field.SquareGeneric(&g, &g)
					u.Square(&u)
				}
				return g == u
			},
		},
		{
			name: "field/inverse", ops: invOps,
			ref: func() float64 {
				acc := b
				start := time.Now()
				for i := 0; i < invOps; i++ {
					field.InverseGeneric(&acc, &acc)
				}
				faFieldSink = acc
				return float64(time.Since(start).Nanoseconds()) / invOps
			},
			opt: func() float64 {
				acc := b
				start := time.Now()
				for i := 0; i < invOps; i++ {
					acc.Inverse(&acc)
				}
				faFieldSink = acc
				return float64(time.Since(start).Nanoseconds()) / invOps
			},
			same: func() bool {
				var g, u field.Element
				field.InverseGeneric(&g, &b)
				u.Inverse(&b)
				return g == u
			},
		},
		{
			name: "fp/mul", ops: mulOps,
			ref: func() float64 {
				acc := fa
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					fp.MulGeneric(&acc, &acc, &fb)
				}
				faFpSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			opt: func() float64 {
				acc := fa
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					acc.Mul(&acc, &fb)
				}
				faFpSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			same: func() bool {
				g, u := fa, fa
				for i := 0; i < sameOps; i++ {
					fp.MulGeneric(&g, &g, &fb)
					u.Mul(&u, &fb)
				}
				return g == u
			},
		},
		{
			name: "fp/square", ops: mulOps,
			ref: func() float64 {
				acc := fb
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					fp.MulGeneric(&acc, &acc, &acc)
				}
				faFpSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			opt: func() float64 {
				acc := fb
				start := time.Now()
				for i := 0; i < mulOps; i++ {
					acc.Square(&acc)
				}
				faFpSink = acc
				return float64(time.Since(start).Nanoseconds()) / mulOps
			},
			same: func() bool {
				g, u := fb, fb
				for i := 0; i < sameOps; i++ {
					fp.MulGeneric(&g, &g, &g)
					u.Square(&u)
				}
				return g == u
			},
		},
		{
			name: "curve/add-mixed", ops: curveOps,
			ref: func() float64 {
				acc := base
				start := time.Now()
				for i := 0; i < curveOps; i++ {
					curve.AddMixedGeneric(&acc, &acc, &q)
				}
				faCurveSink = acc
				return float64(time.Since(start).Nanoseconds()) / curveOps
			},
			opt: func() float64 {
				acc := base
				start := time.Now()
				for i := 0; i < curveOps; i++ {
					acc.AddMixed(&acc, &q)
				}
				faCurveSink = acc
				return float64(time.Since(start).Nanoseconds()) / curveOps
			},
			same: func() bool {
				g, u := base, base
				for i := 0; i < 256; i++ {
					curve.AddMixedGeneric(&g, &g, &q)
					u.AddMixed(&u, &q)
				}
				// Different formulas produce different Jacobian
				// representatives of the same point; compare canonically.
				ga, ua := g.ToAffine(), u.ToAffine()
				return ga.Equal(&ua)
			},
		},
		{
			name: "msm/batch-affine", ops: msmN,
			ref: func() float64 {
				start := time.Now()
				r, _ := msm.PippengerJacobian(msmPts, msmScalars)
				faMSMSink = r
				return float64(time.Since(start).Nanoseconds()) / msmN
			},
			opt: func() float64 {
				start := time.Now()
				r, _ := msm.Pippenger(msmPts, msmScalars)
				faMSMSink = r
				return float64(time.Since(start).Nanoseconds()) / msmN
			},
			same: func() bool { return msmIdentical },
		},
	}

	out := make([]FieldArithResult, 0, len(cases))
	for _, c := range cases {
		r := FieldArithResult{
			Name:      c.name,
			Ops:       c.ops,
			RefNsOp:   faBestOf(reps, c.ref),
			NewNsOp:   faBestOf(reps, c.opt),
			Identical: c.same(),
		}
		if r.NewNsOp > 0 {
			r.SpeedupX = r.RefNsOp / r.NewNsOp
		}
		out = append(out, r)
	}
	return out, nil
}
