package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/field"
	"batchzk/internal/protocol"
	"batchzk/internal/telemetry"
)

// Streaming-prover memory sweep: the working-set claim of the
// memory-bounded prover made CI-enforceable. The soak in memory.go
// checks that identical waves do not grow — a leak detector. This sweep
// checks the stronger streaming property: growing the batch 8× under
// ProveStream + the out-of-core commit path must leave the per-run heap
// working set flat, because peak memory tracks the in-flight window
// (depth), not the batch — the host-side analogue of the paper's ~2N
// device-block bound. A buffered prover fails this immediately: its
// working set is linear in the batch.

// MemoryStreamFactor is the batch-size multiplier between the sweep's
// two points.
const MemoryStreamFactor = 8

// StreamFlatTolerance is how much the big batch's working set may
// exceed the small batch's before the sweep stops counting as flat:
// growth ≤ 0.5 means the 8× batch stays under 1.5× the heap.
const StreamFlatTolerance = 0.5

// streamGCStride is how many completed proofs elapse between forced
// collections inside a phase, equalizing the allocation-churn window
// across batch sizes so the sweep compares live sets, not GC pacing.
const streamGCStride = 1

// StreamPoint is one batch size's high-water record.
type StreamPoint struct {
	Batch int `json:"batch"`
	// PeakHeapAllocBytes is the point's live-heap high-water mark.
	PeakHeapAllocBytes uint64 `json:"peak_heap_alloc_bytes"`
	// WorkingSetBytes is the heap growth attributable to the run itself
	// (peak − baseline at entry) — the gated figure, immune to resident
	// state from earlier points.
	WorkingSetBytes uint64 `json:"working_set_bytes"`
	AllProofsOK     bool   `json:"all_proofs_ok"`
}

// StreamSweep is the streaming-memory block of BENCH_memory.json.
type StreamSweep struct {
	Factor int           `json:"factor"`
	Depth  int           `json:"depth"`
	Points []StreamPoint `json:"points"`
	// GrowthFrac is ws(last)/ws(first) − 1 on working sets; ≤ 0 when the
	// larger batch needed no more memory.
	GrowthFrac float64 `json:"growth_frac"`
	// Flat is the gated claim: GrowthFrac ≤ StreamFlatTolerance.
	Flat bool `json:"flat"`
}

// AllProofsOK reports whether every point proved every job.
func (s *StreamSweep) AllProofsOK() bool {
	for _, p := range s.Points {
		if !p.AllProofsOK {
			return false
		}
	}
	return len(s.Points) > 0
}

// BuildMemoryStreamSweep proves batch and batch×MemoryStreamFactor jobs
// through fresh depth-bounded streaming provers (SetStreamingCommit +
// ProveStream, jobs generated lazily, proofs dropped on emission) and
// gates the working-set growth between the two points.
func BuildMemoryStreamSweep(gates, batch, depth int, seed int64) (*StreamSweep, error) {
	if gates < 16 {
		gates = 16
	}
	if batch < 8 {
		batch = 8
	}
	if depth < 1 {
		depth = 4
	}
	c, err := circuit.RandomCircuit(gates, 2, 2, seed)
	if err != nil {
		return nil, err
	}
	p, err := protocol.Setup(c)
	if err != nil {
		return nil, err
	}

	sweep := &StreamSweep{Factor: MemoryStreamFactor, Depth: depth}
	// Aggressive GC pacing for the duration of the sweep: with a default
	// GOGC the collector lets small heaps grow several-fold before its
	// first cycle, so the observed peak would measure allocation volume
	// (linear in batch, whatever the prover does) instead of live set.
	// This is a memory measurement, not a throughput one — trading speed
	// for a peak that tracks the prover's actual working set is the point.
	oldGC := debug.SetGCPercent(10)
	defer debug.SetGCPercent(oldGC)

	// Warm-up outside the measured region: the first prove of a process
	// builds one-time shared state (the cached encoder tables, lazily
	// grown runtime structures). Charging that build to the first phase
	// would skew the two-point ratio, so a single throwaway job pays for
	// it here.
	if wp, err := core.NewBatchProver(c, p, depth); err == nil {
		wp.SetStreamingCommit(true)
		warm := false
		wp.ProveStream(func() (core.Job, bool) {
			if warm {
				return core.Job{}, false
			}
			warm = true
			return core.Job{ID: 0, Public: field.RandVector(2), Secret: field.RandVector(2)}, true
		}, func(core.Result) {})
	}

	ms := telemetry.StartMemSampler(telemetry.NewSink(0), time.Millisecond)
	for _, b := range []int{batch, batch * MemoryStreamFactor} {
		// A fresh prover per point: no state carries across batch sizes,
		// and the boundary GC gives the phase a clean baseline.
		bp, err := core.NewBatchProver(c, p, depth)
		if err != nil {
			return nil, err
		}
		bp.SetStreamingCommit(true)
		runtime.GC()
		phase := fmt.Sprintf("stream-batch%05d", b)
		ms.SetPhase(phase)

		point := StreamPoint{Batch: b, AllProofsOK: true}
		k := 0
		next := func() (core.Job, bool) {
			if k == b {
				return core.Job{}, false
			}
			// Inputs are materialized here, on pull — batch-sized input
			// slabs would defeat the measurement.
			j := core.Job{ID: k, Public: field.RandVector(2), Secret: field.RandVector(2)}
			k++
			return j, true
		}
		done := 0
		bp.ProveStream(next, func(r core.Result) {
			if r.Err != nil {
				point.AllProofsOK = false
			}
			// The proof is dropped here, as a streaming consumer would
			// after shipping it; retaining all b proofs is the caller's
			// choice, not the prover's obligation.
			done++
			if done%streamGCStride == 0 {
				// Collect on a fixed job stride so both phases see the
				// same churn window. Without this, the gated figure is
				// how much of the GOGC allocation budget a phase happens
				// to fill before finishing — the longer phase always
				// fills it — rather than the live set the streaming
				// claim is about. Anything batch-linear still survives
				// these collections and fails the gate.
				ms.Sample()
				runtime.GC()
			}
		})
		ms.Sample()
		for _, ph := range ms.Phases() {
			if ph.Name == phase {
				point.PeakHeapAllocBytes = ph.PeakHeapAllocBytes
				point.WorkingSetBytes = ph.WorkingSetBytes
			}
		}
		sweep.Points = append(sweep.Points, point)
	}
	ms.Stop()

	first, last := sweep.Points[0], sweep.Points[len(sweep.Points)-1]
	switch {
	case first.WorkingSetBytes > 0:
		sweep.GrowthFrac = float64(last.WorkingSetBytes)/float64(first.WorkingSetBytes) - 1
	case first.PeakHeapAllocBytes > 0:
		sweep.GrowthFrac = float64(last.PeakHeapAllocBytes)/float64(first.PeakHeapAllocBytes) - 1
	}
	sweep.Flat = sweep.GrowthFrac <= StreamFlatTolerance
	return sweep, nil
}
