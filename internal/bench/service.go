package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/faults"
	"batchzk/internal/protocol"
	"batchzk/internal/service"
	"batchzk/internal/telemetry"
)

// Service bench: the gateway measured as a service. A real HTTP server
// fronts a Gateway over a ShardedProver; the load generator replays
// open-loop Poisson arrivals with heavy-tailed bursts from N tenants
// (optionally under injected faults), every accepted job is tracked to
// its terminal state, and the run must end with zero lost and zero
// duplicated jobs. Afterwards the harness probes the drain contract
// (/readyz flips to 503 while draining and recovers on resume) and
// re-verifies a sample of served proofs. Serialized as
// BENCH_service.json with kind "service".

// ServiceReportKind discriminates service reports in BENCH_*.json.
const ServiceReportKind = "service"

// ServiceSchemaVersion identifies the BENCH_service.json layout.
const ServiceSchemaVersion = 1

// ServiceFairnessFloor is the always-gated lower bound on Jain's index
// across equal tenants: below it one tenant is starving the others.
const ServiceFairnessFloor = 0.5

// ServiceTenant is one tenant's row in the report.
type ServiceTenant struct {
	Tenant     string  `json:"tenant"`
	Offered    int64   `json:"offered"`
	Accepted   int64   `json:"accepted"`
	Rejected   int64   `json:"rejected"`
	Completed  int64   `json:"completed"`
	Failed     int64   `json:"failed"`
	Timeouts   int64   `json:"timeouts"`
	Throughput float64 `json:"throughput_jobs_per_s"`
	P99Ns      int64   `json:"p99_ns"`
}

// ServiceReport is the schema-versioned content of BENCH_service.json.
type ServiceReport struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	// Cores gates which numeric metrics are comparable across hosts.
	Cores int `json:"cores"`

	// Config echo.
	Tenants       int     `json:"tenants"`
	JobsPerTenant int     `json:"jobs_per_tenant"`
	RatePerTenant float64 `json:"rate_per_tenant"`
	Gates         int     `json:"gates"`
	Shards        int     `json:"shards"`
	Depth         int     `json:"depth"`
	MaxBatch      int     `json:"max_batch"`
	MaxWaitMs     float64 `json:"max_wait_ms"`
	Faults        string  `json:"faults,omitempty"`

	// Traffic accounting. Lost (accepted but never terminal) and
	// Duplicated (terminal more than once) must both be zero — the
	// exactly-once contract, gated always.
	Offered    int64 `json:"offered"`
	Accepted   int64 `json:"accepted"`
	Rejected   int64 `json:"rejected"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Timeouts   int64 `json:"timeouts"`
	Retries    int64 `json:"retries"`
	Lost       int64 `json:"lost"`
	Duplicated int64 `json:"duplicated"`

	// End-to-end latency (admission to terminal state), nearest-rank.
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP90Ns int64 `json:"latency_p90_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`

	// Dynamic batching effectiveness.
	Batches        int64   `json:"batches"`
	BatchOccupancy float64 `json:"batch_occupancy"`

	// Multi-tenant fairness: Jain's index over per-tenant completions.
	FairnessJain float64         `json:"fairness_jain"`
	PerTenant    []ServiceTenant `json:"per_tenant"`

	// DrainOK is the gated drain contract: /readyz 200 before, 503
	// during drain, 200 again after resume, with the drain losing
	// nothing. AllVerified confirms a sample of served proofs
	// re-verified against the circuit.
	DrainOK     bool `json:"drain_ok"`
	AllVerified bool `json:"all_verified"`
	// WallSeconds is the load phase's wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
}

// ServiceReportFileName is the on-disk name of the service report.
func ServiceReportFileName() string { return "BENCH_service.json" }

// ServiceBenchConfig parameterizes BuildServiceBench.
type ServiceBenchConfig struct {
	Tenants       int
	JobsPerTenant int
	// Rate is the per-tenant mean arrival rate, jobs/second.
	Rate       float64
	BurstEvery int
	BurstMax   int
	Gates      int
	Shards     int
	Depth      int

	MaxBatch  int
	MaxWait   time.Duration
	QueueCap  int
	QuotaRate float64
	// QuotaBurst > 0 enables per-tenant token buckets.
	QuotaBurst int
	// Deadline bounds a job's time inside the prover (0 = off).
	Deadline time.Duration

	// Faults is a faults.ParseSpec expression ("" = none) applied to
	// every shard; FaultSeed seeds the injector.
	Faults    string
	FaultSeed uint64

	// Addr is the listen address ("" = an ephemeral localhost port).
	Addr string
	// Seed drives the load generator's arrival process and inputs.
	Seed int64
}

func (c ServiceBenchConfig) withDefaults() ServiceBenchConfig {
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.JobsPerTenant <= 0 {
		c.JobsPerTenant = 16
	}
	if c.Rate <= 0 {
		c.Rate = 200
	}
	if c.Gates < 16 {
		c.Gates = 64
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	return c
}

// BuildServiceBench stands up the gateway, applies the load, probes the
// drain contract, and assembles the report.
func BuildServiceBench(cfg ServiceBenchConfig) (*ServiceReport, error) {
	cfg = cfg.withDefaults()

	c, err := circuit.RandomCircuit(cfg.Gates, 2, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	p, err := protocol.Setup(c)
	if err != nil {
		return nil, err
	}
	prover, err := core.NewShardedProver(c, p, cfg.Shards, cfg.Depth)
	if err != nil {
		return nil, err
	}
	sink := telemetry.NewSink(0)
	prover.SetTelemetry(sink)

	res := core.DefaultResilience()
	if cfg.Faults != "" {
		inj, err := faults.ParseSpec(cfg.Faults, cfg.FaultSeed)
		if err != nil {
			return nil, err
		}
		res.Injector = inj
	}

	gwCfg := service.Config{
		MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait, QueueCap: cfg.QueueCap,
		JobDeadline: cfg.Deadline, Resilience: res, Telemetry: sink,
	}
	if cfg.QuotaBurst > 0 {
		gwCfg.DefaultQuota = service.QuotaSpec{Rate: cfg.QuotaRate, Burst: cfg.QuotaBurst}
	}
	gw, err := service.NewGateway(prover, gwCfg)
	if err != nil {
		return nil, err
	}

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: gw.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	load := service.LoadConfig{
		Tenants: cfg.Tenants, JobsPerTenant: cfg.JobsPerTenant,
		Rate: cfg.Rate, BurstEvery: cfg.BurstEvery, BurstMax: cfg.BurstMax,
		PublicLen: 2, SecretLen: 2, Seed: cfg.Seed,
	}
	start := time.Now()
	lr, err := load.Run(base)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)

	rep := &ServiceReport{
		SchemaVersion: ServiceSchemaVersion,
		Kind:          ServiceReportKind,
		Cores:         runtime.NumCPU(),
		Tenants:       cfg.Tenants,
		JobsPerTenant: cfg.JobsPerTenant,
		RatePerTenant: cfg.Rate,
		Gates:         cfg.Gates,
		Shards:        cfg.Shards,
		Depth:         cfg.Depth,
		MaxBatch:      cfg.MaxBatch,
		MaxWaitMs:     float64(cfg.MaxWait) / float64(time.Millisecond),
		Faults:        cfg.Faults,

		Offered: lr.Offered, Accepted: lr.Accepted, Rejected: lr.Rejected,
		Completed: lr.Completed, Failed: lr.Failed, Timeouts: lr.Timeouts,
		Lost: lr.Lost, Duplicated: lr.Duplicated,
		LatencyP50Ns: lr.Percentile(0.50),
		LatencyP90Ns: lr.Percentile(0.90),
		LatencyP99Ns: lr.Percentile(0.99),
		FairnessJain: lr.FairnessJain(),
		WallSeconds:  wall.Seconds(),
	}
	for _, t := range lr.PerTenant {
		rep.PerTenant = append(rep.PerTenant, ServiceTenant{
			Tenant: t.Tenant, Offered: t.Offered, Accepted: t.Accepted,
			Rejected: t.Rejected, Completed: t.Completed, Failed: t.Failed,
			Timeouts:   t.Timeouts,
			Throughput: float64(t.Completed) / wall.Seconds(),
			P99Ns:      t.P99Ns,
		})
	}

	// Batching counters must be read before the drain probe: Resume
	// starts a fresh admission batcher, which resets them.
	gs := gw.Stats()
	rep.Retries = gs.Retries
	rep.Batches = gs.Batches
	rep.BatchOccupancy = gs.BatchOccupancy

	// Drain contract: ready before, not ready while drained, ready
	// again after resume — and the drain itself loses nothing (the
	// load phase already resolved every job, so this is a clean drain).
	readyBefore := probeReady(base)
	gw.Drain()
	readyDuring := probeReady(base)
	gw.Resume()
	readyAfter := probeReady(base)
	rep.DrainOK = readyBefore && !readyDuring && readyAfter

	// Re-verify a sample of served proofs end-to-end.
	rep.AllVerified = true
	verified := 0
	for i := 1; verified < 8; i++ {
		id := fmt.Sprintf("j-%d", i)
		info, ok := gw.Job(id)
		if !ok {
			break
		}
		if info.Status != service.StatusDone {
			continue
		}
		if err := gw.VerifyJob(id); err != nil {
			rep.AllVerified = false
			break
		}
		verified++
	}
	if verified == 0 && lr.Completed > 0 {
		rep.AllVerified = false
	}

	gw.Drain()
	return rep, nil
}

func probeReady(base string) bool {
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// WriteJSON serializes the report, indented, trailing newline included.
func (r *ServiceReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadServiceReport parses a BENCH_service.json stream and validates
// its schema and kind.
func ReadServiceReport(rd io.Reader) (*ServiceReport, error) {
	var r ServiceReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse service report: %w", err)
	}
	if r.Kind != ServiceReportKind {
		return nil, fmt.Errorf("bench: report kind %q, want %q", r.Kind, ServiceReportKind)
	}
	if r.SchemaVersion != ServiceSchemaVersion {
		return nil, fmt.Errorf("bench: service report schema v%d, this build reads v%d", r.SchemaVersion, ServiceSchemaVersion)
	}
	return &r, nil
}

// CompareService gates a new service report against an old one.
//
// Always gated (host- and config-independent invariants):
//   - exactly-once: Lost == 0 and Duplicated == 0 in the new run;
//   - accounting closes: Completed+Failed+Timeouts == Accepted;
//   - the drain contract held and the sampled proofs verified;
//   - fairness stays above ServiceFairnessFloor (when ≥ 2 tenants).
//
// Gated only between equal-core hosts running the same fault spec,
// since both are wall-clock properties of the serving host and injected
// delays legitimately move them: p99 latency (lower is better, slack at
// least 100% — queueing percentiles are noisy across runs and configs)
// and batch occupancy (higher is better, slack at least 50%).
func CompareService(old, cur *ServiceReport, threshold float64) ([]Regression, error) {
	if old == nil || cur == nil {
		return nil, fmt.Errorf("bench: compare needs two reports")
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bench: negative threshold %v", threshold)
	}
	var regs []Regression

	exactlyOnce := func(metric string, v int64) {
		if v != 0 {
			regs = append(regs, Regression{Metric: metric, Old: 0, New: float64(v), DeltaFrac: 1})
		}
	}
	exactlyOnce("lost_jobs", cur.Lost)
	exactlyOnce("duplicated_jobs", cur.Duplicated)
	if cur.Completed+cur.Failed+cur.Timeouts != cur.Accepted {
		regs = append(regs, Regression{
			Metric:    "accounting_closure",
			Old:       float64(cur.Accepted),
			New:       float64(cur.Completed + cur.Failed + cur.Timeouts),
			DeltaFrac: 1,
		})
	}
	boolMetric := func(metric string, oldV, newV bool) {
		if oldV && !newV {
			regs = append(regs, Regression{Metric: metric, Old: 1, New: 0, DeltaFrac: 1})
		}
	}
	boolMetric("drain_ok", old.DrainOK, cur.DrainOK)
	boolMetric("all_verified", old.AllVerified, cur.AllVerified)
	if cur.Tenants >= 2 && cur.FairnessJain < ServiceFairnessFloor {
		regs = append(regs, Regression{
			Metric: "fairness_jain", Old: ServiceFairnessFloor,
			New: cur.FairnessJain, DeltaFrac: 1 - cur.FairnessJain/ServiceFairnessFloor,
		})
	}

	if old.Cores == cur.Cores && old.Faults == cur.Faults {
		if old.LatencyP99Ns > 0 && cur.LatencyP99Ns > 0 {
			slack := threshold
			if slack < 1.0 {
				slack = 1.0
			}
			delta := (float64(cur.LatencyP99Ns) - float64(old.LatencyP99Ns)) / float64(old.LatencyP99Ns)
			if delta > slack {
				regs = append(regs, Regression{
					Metric: "latency_p99_ns",
					Old:    float64(old.LatencyP99Ns), New: float64(cur.LatencyP99Ns),
					DeltaFrac: delta,
				})
			}
		}
		if old.BatchOccupancy > 0 && cur.BatchOccupancy > 0 {
			slack := threshold
			if slack < 0.5 {
				slack = 0.5
			}
			delta := (old.BatchOccupancy - cur.BatchOccupancy) / old.BatchOccupancy
			if delta > slack {
				regs = append(regs, Regression{
					Metric: "batch_occupancy",
					Old:    old.BatchOccupancy, New: cur.BatchOccupancy,
					DeltaFrac: delta,
				})
			}
		}
	}
	return regs, nil
}
