package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/field"
	"batchzk/internal/protocol"
	"batchzk/internal/telemetry"
)

// Memory soak report: the flat-memory claim of the pipelined prover —
// the dynamic-loading discipline bounds the working set to depth proofs,
// so host heap high-water marks must not grow wave after wave — made
// CI-enforceable. A soak streams W identical waves of B jobs through one
// BatchProver while a telemetry.MemSampler records per-wave heap
// high-water marks; a leak that retains per-job state across waves grows
// the per-wave peak roughly linearly in the wave index and trips the
// gate, while steady-state GC noise stays inside the documented slack.
// Serialized as BENCH_memory.json with kind "memory".

// MemoryReportKind discriminates memory reports in BENCH_*.json files.
const MemoryReportKind = "memory"

// MemorySchemaVersion identifies the BENCH_memory.json layout. v2 adds
// the optional streaming-prover sweep block ("stream"); v1 files (no
// block) still parse.
const MemorySchemaVersion = 2

// MemoryFlatTolerance is how much the last wave's heap peak may exceed
// the first wave's before the soak stops counting as flat. The slack
// absorbs GC timing noise (a collection landing mid-wave vs at its
// boundary moves the observed peak); a genuine per-wave leak compounds
// linearly in the wave count and clears this bar by a wide margin.
const MemoryFlatTolerance = 0.5

// MemoryWave is one soak wave's high-water record.
type MemoryWave struct {
	Name               string `json:"name"`
	Samples            int64  `json:"samples"`
	PeakHeapAllocBytes uint64 `json:"peak_heap_alloc_bytes"`
	PeakHeapSysBytes   uint64 `json:"peak_heap_sys_bytes"`
	GCCycles           uint32 `json:"gc_cycles"`
}

// MemoryReport is the schema-versioned content of BENCH_memory.json.
type MemoryReport struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	// Cores is the host's logical CPU count; absolute heap figures are
	// only compared between equal-core hosts (GC pacing depends on it).
	Cores int `json:"cores"`
	Gates int `json:"gates"`
	Batch int `json:"batch"`
	Waves int `json:"waves"`
	Depth int `json:"depth"`

	// PeakHeapAllocBytes is the whole soak's live-heap high-water mark.
	PeakHeapAllocBytes uint64 `json:"peak_heap_alloc_bytes"`
	// FirstWavePeakBytes / LastWavePeakBytes anchor the growth check.
	FirstWavePeakBytes uint64 `json:"first_wave_peak_bytes"`
	LastWavePeakBytes  uint64 `json:"last_wave_peak_bytes"`
	// GrowthFrac is (last − first) / first; ≤ 0 when memory shrank.
	GrowthFrac float64 `json:"growth_frac"`
	// Flat is the gated claim: GrowthFrac ≤ MemoryFlatTolerance.
	Flat bool `json:"flat"`
	// AllProofsOK confirms every soak job proved successfully.
	AllProofsOK bool `json:"all_proofs_ok"`

	WaveDetail []MemoryWave `json:"wave_detail"`

	// Stream is the streaming-prover batch sweep (batchzk-bench mem
	// -stream): working-set growth across an 8× batch-size step under
	// ProveStream and the out-of-core commit path. Nil when the sweep
	// was not run.
	Stream *StreamSweep `json:"stream,omitempty"`

	// SLO is the per-job service-level summary of the soak, from the
	// flight recorder: e2e latency percentiles and per-stage cost
	// attribution shares. Informational (host-dependent), never gated.
	SLO telemetry.SLOSummary `json:"slo"`
}

// MemoryReportFileName is the on-disk name of the memory report.
func MemoryReportFileName() string { return "BENCH_memory.json" }

// BuildMemorySoak runs the soak and returns the report along with the
// sink it recorded into, so callers (batchzk-bench mem) can also export
// the per-job timeline JSON and Chrome trace of the same run.
func BuildMemorySoak(gates, batch, waves, depth int, seed int64) (*MemoryReport, *telemetry.Sink, error) {
	if gates < 16 {
		gates = 16
	}
	if batch < 8 {
		batch = 8
	}
	if waves < 3 {
		waves = 3
	}
	if depth < 1 {
		depth = 4
	}
	c, err := circuit.RandomCircuit(gates, 2, 2, seed)
	if err != nil {
		return nil, nil, err
	}
	p, err := protocol.Setup(c)
	if err != nil {
		return nil, nil, err
	}
	bp, err := core.NewBatchProver(c, p, depth)
	if err != nil {
		return nil, nil, err
	}
	sink := telemetry.NewSink(0)
	bp.SetTelemetry(sink)

	jobs := make([]core.Job, batch)
	for i := range jobs {
		jobs[i] = core.Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}

	rep := &MemoryReport{
		SchemaVersion: MemorySchemaVersion,
		Kind:          MemoryReportKind,
		Cores:         runtime.NumCPU(),
		Gates:         gates,
		Batch:         batch,
		Waves:         waves,
		Depth:         depth,
		AllProofsOK:   true,
	}

	ms := telemetry.StartMemSampler(sink, time.Millisecond)
	for w := 0; w < waves; w++ {
		// Collect at the boundary so every wave starts from the same
		// baseline and the per-wave peak measures the wave's own traffic.
		runtime.GC()
		ms.SetPhase(fmt.Sprintf("wave%02d", w))
		for _, r := range bp.ProveBatch(jobs) {
			if r.Err != nil {
				rep.AllProofsOK = false
			}
		}
		ms.Sample()
	}
	phases := ms.Stop()
	rep.PeakHeapAllocBytes = ms.PeakHeapAllocBytes()

	for _, ph := range phases {
		if ph.Name == "init" {
			continue
		}
		rep.WaveDetail = append(rep.WaveDetail, MemoryWave{
			Name:               ph.Name,
			Samples:            ph.Samples,
			PeakHeapAllocBytes: ph.PeakHeapAllocBytes,
			PeakHeapSysBytes:   ph.PeakHeapSysBytes,
			GCCycles:           ph.GCCycles,
		})
	}
	if n := len(rep.WaveDetail); n > 0 {
		rep.FirstWavePeakBytes = rep.WaveDetail[0].PeakHeapAllocBytes
		rep.LastWavePeakBytes = rep.WaveDetail[n-1].PeakHeapAllocBytes
		if rep.FirstWavePeakBytes > 0 {
			rep.GrowthFrac = float64(rep.LastWavePeakBytes)/float64(rep.FirstWavePeakBytes) - 1
		}
		rep.Flat = rep.GrowthFrac <= MemoryFlatTolerance
	}
	rep.SLO = sink.FlightRecorder().SLO()
	return rep, sink, nil
}

// WriteJSON serializes the report, indented, trailing newline included.
func (r *MemoryReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadMemoryReport parses a BENCH_memory.json stream and validates its
// schema and kind.
func ReadMemoryReport(rd io.Reader) (*MemoryReport, error) {
	var r MemoryReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse memory report: %w", err)
	}
	if r.Kind != MemoryReportKind {
		return nil, fmt.Errorf("bench: report kind %q, want %q", r.Kind, MemoryReportKind)
	}
	if r.SchemaVersion < 1 || r.SchemaVersion > MemorySchemaVersion {
		return nil, fmt.Errorf("bench: memory report schema v%d, this build reads v1–v%d", r.SchemaVersion, MemorySchemaVersion)
	}
	return &r, nil
}

// CompareMemory gates a new memory report against an old one. The
// host-independent invariants — the soak stayed flat, every proof
// succeeded — are always gated. The absolute heap high-water mark is
// gated only between equal-core hosts (GC pacing differs with cores),
// and with at least 25% slack on top of the caller's threshold, since
// a single collection's timing moves the observed peak. The SLO block
// is informational and never gated.
func CompareMemory(old, cur *MemoryReport, threshold float64) ([]Regression, error) {
	if old == nil || cur == nil {
		return nil, fmt.Errorf("bench: compare needs two reports")
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bench: negative threshold %v", threshold)
	}
	var regs []Regression
	boolMetric := func(metric string, oldV, newV bool) {
		if oldV && !newV {
			regs = append(regs, Regression{Metric: metric, Old: 1, New: 0, DeltaFrac: 1})
		}
	}
	boolMetric("flat", old.Flat, cur.Flat)
	boolMetric("all_proofs_ok", old.AllProofsOK, cur.AllProofsOK)
	// The streaming sweep gates like the soak: losing the block, its
	// flatness, or its proof success against a baseline that had them is
	// a regression. (host-independent — working-set ratios, not bytes).
	boolMetric("stream_present", old.Stream != nil, cur.Stream != nil)
	if old.Stream != nil && cur.Stream != nil {
		boolMetric("stream_flat", old.Stream.Flat, cur.Stream.Flat)
		boolMetric("stream_all_proofs_ok", old.Stream.AllProofsOK(), cur.Stream.AllProofsOK())
	}

	if old.Cores == cur.Cores && old.PeakHeapAllocBytes > 0 {
		slack := threshold
		if slack < 0.25 {
			slack = 0.25
		}
		oldV := float64(old.PeakHeapAllocBytes)
		newV := float64(cur.PeakHeapAllocBytes)
		delta := (newV - oldV) / oldV
		if delta > slack {
			regs = append(regs, Regression{
				Metric: "peak_heap_alloc_bytes", Old: oldV, New: newV, DeltaFrac: delta,
			})
		}
	}
	return regs, nil
}
