package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"batchzk/internal/core"
	"batchzk/internal/encoder"
	"batchzk/internal/gpusim"
	"batchzk/internal/obs"
	"batchzk/internal/perfmodel"
	"batchzk/internal/pipeline"
	"batchzk/internal/telemetry"
)

// Machine-readable bench reports: a Scenario runs one workload under both
// execution schemes, a Report captures the numbers a perf trajectory
// cares about (throughput, latency percentiles, the utilization
// breakdown, peak device memory), and Compare gates regressions between
// two reports of the same scenario. Reports serialize to
// BENCH_<scenario>.json via WriteJSON/ReadReport; SchemaVersion guards
// against diffing incompatible files.

// ReportSchemaVersion identifies the BENCH_*.json layout. Bump it when a
// field changes meaning; ReadReport rejects mismatches.
const ReportSchemaVersion = 1

// Scenario is a named, reproducible workload for bench reports.
type Scenario struct {
	Name  string
	Title string
	Batch int
	// SLOTargetP99Ns is the scenario's per-task p99 latency budget for
	// the pipelined scheme — a fixed, generous bound (several times the
	// healthy measurement) so the SLO block in the report tells a drift
	// story rather than tautologically tracking the run it came from.
	SLOTargetP99Ns int64
	// build produces the stage list, the per-task device footprint, and
	// the naive scheme's per-task thread budget for a device.
	build func(spec gpusim.DeviceSpec, costs perfmodel.OpCosts) ([]gpusim.Stage, int64, int, error)
}

// SLOErrorBudget is the allowed task failure fraction every scenario
// reports against. Report runs abort on the first task error, so a
// written report is always clean here; the objective documents the
// budget the live obs engine enforces on the same workload.
const SLOErrorBudget = 0.01

// Scenarios returns the scenario registry in presentation order. "tiny"
// exists for smoke tests (seconds-scale CI); "quickstart" is the README's
// first-contact workload; the rest cover each module family plus the
// composed system pipeline.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:           "tiny",
			Title:          "smoke: Merkle trees over 2^8 blocks, batch 32",
			Batch:          32,
			SLOTargetP99Ns: 100 * int64(time.Microsecond),
			build: func(spec gpusim.DeviceSpec, costs perfmodel.OpCosts) ([]gpusim.Stage, int64, int, error) {
				stages, err := pipeline.MerkleStages(1<<8, costs)
				return stages, pipeline.MerkleTaskBytes(1 << 8), 1 << 8, err
			},
		},
		{
			Name:           "quickstart",
			Title:          "Merkle trees over 2^12 blocks, batch 256",
			Batch:          256,
			SLOTargetP99Ns: int64(time.Millisecond),
			build: func(spec gpusim.DeviceSpec, costs perfmodel.OpCosts) ([]gpusim.Stage, int64, int, error) {
				stages, err := pipeline.MerkleStages(1<<12, costs)
				return stages, pipeline.MerkleTaskBytes(1 << 12), 1 << 12, err
			},
		},
		{
			Name:           "merkle",
			Title:          "Merkle trees over 2^16 blocks, batch 512",
			Batch:          512,
			SLOTargetP99Ns: 20 * int64(time.Millisecond),
			build: func(spec gpusim.DeviceSpec, costs perfmodel.OpCosts) ([]gpusim.Stage, int64, int, error) {
				stages, err := pipeline.MerkleStages(1<<16, costs)
				return stages, pipeline.MerkleTaskBytes(1 << 16), 1 << 16, err
			},
		},
		{
			Name:           "sumcheck",
			Title:          "sum-check proofs over 2^16 tables, batch 512",
			Batch:          512,
			SLOTargetP99Ns: 5 * int64(time.Millisecond),
			build: func(spec gpusim.DeviceSpec, costs perfmodel.OpCosts) ([]gpusim.Stage, int64, int, error) {
				stages, err := pipeline.SumcheckStages(16, costs)
				return stages, pipeline.SumcheckTaskBytes(16), 1 << 15, err
			},
		},
		{
			Name:           "encoder",
			Title:          "linear-time encodings of 2^14 messages, batch 256",
			Batch:          256,
			SLOTargetP99Ns: 10 * int64(time.Millisecond),
			build: func(spec gpusim.DeviceSpec, costs perfmodel.OpCosts) ([]gpusim.Stage, int64, int, error) {
				const msgLen = 1 << 14
				work, err := encoder.WorkModel(msgLen, encoder.DefaultParams())
				if err != nil {
					return nil, 0, 0, err
				}
				stages := pipeline.EncoderStagesFromWork(work, msgLen, costs, true)
				return stages, pipeline.EncoderTaskBytesForLen(msgLen, len(work)), msgLen, nil
			},
		},
		{
			Name:           "system",
			Title:          "full proof pipeline at scale 2^12, batch 64",
			Batch:          64,
			SLOTargetP99Ns: 10 * int64(time.Millisecond),
			build: func(spec gpusim.DeviceSpec, costs perfmodel.OpCosts) ([]gpusim.Stage, int64, int, error) {
				shape, err := core.ShapeForScale(1 << 12)
				if err != nil {
					return nil, 0, 0, err
				}
				stages, err := core.SystemStages(shape, costs, encoder.DefaultParams())
				if err != nil {
					return nil, 0, 0, err
				}
				return stages, core.SystemTaskBytes(shape), shape.NumWires, nil
			},
		},
	}
}

// ScenarioByName resolves a registry entry.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("bench: unknown scenario %q (try one of %s)", name, scenarioNames())
}

func scenarioNames() string {
	s := ""
	for i, sc := range Scenarios() {
		if i > 0 {
			s += ", "
		}
		s += sc.Name
	}
	return s
}

// ReportFileName is the on-disk naming convention for a scenario report.
func ReportFileName(scenario string) string {
	return "BENCH_" + scenario + ".json"
}

// LatencySummary carries the per-task latency percentiles of a scheme,
// estimated from the telemetry latency histogram across a batch sweep.
type LatencySummary struct {
	P50Ns float64 `json:"p50_ns"`
	P90Ns float64 `json:"p90_ns"`
	P99Ns float64 `json:"p99_ns"`
}

// SchemeStats is one execution scheme's measured slice of a Report.
type SchemeStats struct {
	ThroughputPerMs float64            `json:"throughput_per_ms"`
	Latency         LatencySummary     `json:"latency"`
	Util            gpusim.Utilization `json:"utilization"`
	PeakDeviceBytes int64              `json:"peak_device_bytes"`
	Concurrency     int                `json:"concurrency"`
	TotalNs         float64            `json:"total_ns"`
	Verdict         string             `json:"verdict"`
	Bottleneck      string             `json:"bottleneck"`
}

// Report is the schema-versioned content of a BENCH_<scenario>.json file.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Scenario      string `json:"scenario"`
	Title         string `json:"title"`
	Device        string `json:"device"`
	Cores         int    `json:"cores"`
	Batch         int    `json:"batch"`

	Pipelined SchemeStats `json:"pipelined"`
	Naive     SchemeStats `json:"naive"`

	// Headline ratios (pipelined over naive) — the Figure 9 story.
	SpeedupX  float64 `json:"speedup_x"`
	BusyGainX float64 `json:"busy_gain_x"`

	// SLO summarizes the pipelined scheme against the scenario's fixed
	// objectives (absent in reports written before the block existed).
	SLO *SLOSummary `json:"slo,omitempty"`
}

// SLOObjectiveSummary is one objective's attainment in a report: the
// same objective vocabulary the live obs engine serves on
// /debug/obs/slo, evaluated over the batch sweep instead of a rolling
// window.
type SLOObjectiveSummary struct {
	Name string `json:"name"`
	// Kind is obs.KindLatency or obs.KindErrorRate.
	Kind            string  `json:"kind"`
	TargetNs        int64   `json:"target_ns,omitempty"`
	TargetRate      float64 `json:"target_rate,omitempty"`
	Value           float64 `json:"value"`
	Met             bool    `json:"met"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// SLOSummary is the report's error-budget block: per-objective
// attainment plus the roll-ups Compare gates.
type SLOSummary struct {
	Objectives []SLOObjectiveSummary `json:"objectives"`
	// Attainment is the fraction of objectives met (1.0 = all).
	Attainment float64 `json:"attainment"`
	// BudgetRemaining is the minimum error budget left across the
	// objectives; negative means an objective overspent its budget.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// buildSLO evaluates the scenario's objectives against the pipelined
// scheme's latency histogram. Latency budget: with a p99 objective 1% of
// tasks may exceed the target; the remaining budget is the unspent share
// of that allowance. The error-rate objective is clean by construction
// (BuildReport aborts on any task error) and records the budget the live
// engine enforces.
func buildSLO(sc Scenario, lat telemetry.HistogramSnapshot) *SLOSummary {
	const quantile = 0.99
	allowed := 1 - quantile
	badFrac := histFracAbove(lat, float64(sc.SLOTargetP99Ns))
	p99 := lat.Quantile(quantile)
	latency := SLOObjectiveSummary{
		Name:            "task-p99",
		Kind:            obs.KindLatency,
		TargetNs:        sc.SLOTargetP99Ns,
		Value:           p99,
		Met:             lat.Count == 0 || p99 <= float64(sc.SLOTargetP99Ns),
		BudgetRemaining: 1 - badFrac/allowed,
	}
	errors := SLOObjectiveSummary{
		Name:            "task-errors",
		Kind:            obs.KindErrorRate,
		TargetRate:      SLOErrorBudget,
		Value:           0,
		Met:             true,
		BudgetRemaining: 1,
	}
	s := &SLOSummary{Objectives: []SLOObjectiveSummary{latency, errors}}
	met := 0
	s.BudgetRemaining = math.Inf(1)
	for _, o := range s.Objectives {
		if o.Met {
			met++
		}
		s.BudgetRemaining = math.Min(s.BudgetRemaining, o.BudgetRemaining)
	}
	s.Attainment = float64(met) / float64(len(s.Objectives))
	return s
}

// histFracAbove estimates the fraction of observations above threshold
// from a log2-bucketed histogram snapshot, linearly interpolating inside
// the straddling bucket.
func histFracAbove(h telemetry.HistogramSnapshot, threshold float64) float64 {
	if h.Count == 0 {
		return 0
	}
	var above float64
	for _, b := range h.Buckets {
		lo, hi := float64(b.Lo), float64(b.Hi)
		switch {
		case lo >= threshold:
			above += float64(b.Count)
		case hi > threshold:
			above += float64(b.Count) * (hi - threshold) / (hi - lo)
		}
	}
	return above / float64(h.Count)
}

// BuildReport runs scenario sc on a device under both schemes and
// assembles the report plus the profiler contrast backing it. Each scheme
// runs a small batch sweep (¼, ½, full) into its own telemetry sink so
// the latency percentiles reflect load sensitivity rather than a single
// point; the full-batch run feeds the profile.
func BuildReport(sc Scenario, spec gpusim.DeviceSpec, costs perfmodel.OpCosts) (*Report, *gpusim.Contrast, error) {
	stages, taskBytes, naiveThreads, err := sc.build(spec, costs)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
	}
	if naiveThreads > spec.Cores {
		naiveThreads = spec.Cores
	}

	runScheme := func(scheme pipeline.Scheme) (*gpusim.Report, LatencySummary, telemetry.HistogramSnapshot, error) {
		sink := telemetry.NewSink(0)
		opts := gpusim.Options{Overlap: true, TaskBytes: taskBytes, Telemetry: sink}
		var last *gpusim.Report
		for _, batch := range sweepBatches(sc.Batch) {
			var rep *gpusim.Report
			var err error
			if scheme == pipeline.Pipelined {
				rep, err = gpusim.RunPipelined(spec, stages, batch, opts)
			} else {
				rep, err = gpusim.RunNaive(spec, stages, batch, naiveThreads, opts)
			}
			if err != nil {
				return nil, LatencySummary{}, telemetry.HistogramSnapshot{}, fmt.Errorf("bench: scenario %s (%s, batch %d): %w", sc.Name, scheme, batch, err)
			}
			last = rep
		}
		h := sink.Metrics.Snapshot().Histograms["gpusim/task/latency_ns"]
		lat := LatencySummary{P50Ns: h.Quantile(0.5), P90Ns: h.Quantile(0.9), P99Ns: h.Quantile(0.99)}
		return last, lat, h, nil
	}

	pipeRep, pipeLat, pipeHist, err := runScheme(pipeline.Pipelined)
	if err != nil {
		return nil, nil, err
	}
	naiveRep, naiveLat, _, err := runScheme(pipeline.Naive)
	if err != nil {
		return nil, nil, err
	}
	pp, err := gpusim.BuildProfile(pipeRep)
	if err != nil {
		return nil, nil, err
	}
	np, err := gpusim.BuildProfile(naiveRep)
	if err != nil {
		return nil, nil, err
	}
	contrast, err := gpusim.NewContrast(pp, np)
	if err != nil {
		return nil, nil, err
	}

	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		Scenario:      sc.Name,
		Title:         sc.Title,
		Device:        spec.Name,
		Cores:         spec.Cores,
		Batch:         sc.Batch,
		Pipelined:     schemeStats(pp, pipeLat),
		Naive:         schemeStats(np, naiveLat),
		SpeedupX:      contrast.ThroughputGainX,
		BusyGainX:     contrast.BusyGainX,
	}
	if sc.SLOTargetP99Ns > 0 {
		rep.SLO = buildSLO(sc, pipeHist)
	}
	return rep, contrast, nil
}

// sweepBatches yields the load points one scheme runs: quarter, half and
// full batch (deduplicated for tiny batches).
func sweepBatches(batch int) []int {
	pts := []int{batch / 4, batch / 2, batch}
	out := pts[:0]
	prev := 0
	for _, b := range pts {
		if b < 1 {
			b = 1
		}
		if b != prev {
			out = append(out, b)
			prev = b
		}
	}
	return out
}

func schemeStats(p *gpusim.Profile, lat LatencySummary) SchemeStats {
	return SchemeStats{
		ThroughputPerMs: p.ThroughputPerMs,
		Latency:         lat,
		Util:            p.Util,
		PeakDeviceBytes: p.PeakDeviceBytes,
		Concurrency:     p.Concurrency,
		TotalNs:         p.TotalNs,
		Verdict:         p.Verdict,
		Bottleneck:      p.Bottleneck,
	}
}

// WriteJSON serializes the report, indented, trailing newline included.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a BENCH_*.json stream and validates its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse report: %w", err)
	}
	if r.SchemaVersion != ReportSchemaVersion {
		return nil, fmt.Errorf("bench: report schema v%d, this build reads v%d", r.SchemaVersion, ReportSchemaVersion)
	}
	if r.Scenario == "" {
		return nil, fmt.Errorf("bench: report has no scenario name")
	}
	return &r, nil
}

// Regression is one gated metric that moved the wrong way past the
// threshold between two reports.
type Regression struct {
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// DeltaFrac is the fractional change in the harmful direction
	// (0.12 = 12% worse).
	DeltaFrac float64 `json:"delta_frac"`
}

// Compare diffs two reports of the same scenario and returns the metrics
// that regressed by more than threshold (a fraction, e.g. 0.10 for 10%).
// Gated metrics: pipelined throughput and busy fraction falling,
// pipelined p50 latency and peak device memory rising, and the headline
// speedup falling. Improvements never count against the gate.
func Compare(old, cur *Report, threshold float64) ([]Regression, error) {
	if old == nil || cur == nil {
		return nil, fmt.Errorf("bench: compare needs two reports")
	}
	if old.Scenario != cur.Scenario {
		return nil, fmt.Errorf("bench: scenario mismatch: %q vs %q", old.Scenario, cur.Scenario)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bench: negative threshold %v", threshold)
	}
	var regs []Regression
	check := func(metric string, oldV, newV float64, higherIsBetter bool) {
		if oldV <= 0 || math.IsNaN(oldV) || math.IsNaN(newV) {
			return
		}
		var delta float64
		if higherIsBetter {
			delta = (oldV - newV) / oldV
		} else {
			delta = (newV - oldV) / oldV
		}
		if delta > threshold {
			regs = append(regs, Regression{Metric: metric, Old: oldV, New: newV, DeltaFrac: delta})
		}
	}
	check("pipelined.throughput_per_ms", old.Pipelined.ThroughputPerMs, cur.Pipelined.ThroughputPerMs, true)
	check("pipelined.utilization.busy", old.Pipelined.Util.Busy, cur.Pipelined.Util.Busy, true)
	check("pipelined.latency.p50_ns", old.Pipelined.Latency.P50Ns, cur.Pipelined.Latency.P50Ns, false)
	check("pipelined.peak_device_bytes", float64(old.Pipelined.PeakDeviceBytes), float64(cur.Pipelined.PeakDeviceBytes), false)
	check("speedup_x", old.SpeedupX, cur.SpeedupX, true)
	if old.SLO != nil && cur.SLO != nil {
		// The SLO roll-ups gate harder than the perf metrics: losing a
		// met objective or any slice of error budget is a regression
		// regardless of threshold, because the targets are fixed bounds
		// rather than drifting measurements.
		if cur.SLO.Attainment < old.SLO.Attainment {
			regs = append(regs, Regression{
				Metric:    "slo.attainment",
				Old:       old.SLO.Attainment,
				New:       cur.SLO.Attainment,
				DeltaFrac: (old.SLO.Attainment - cur.SLO.Attainment) / old.SLO.Attainment,
			})
		}
		check("slo.budget_remaining", old.SLO.BudgetRemaining, cur.SLO.BudgetRemaining, true)
	}
	return regs, nil
}
