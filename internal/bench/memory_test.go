package bench

import (
	"bytes"
	"strings"
	"testing"
)

func tinyMemorySoak(t *testing.T) *MemoryReport {
	t.Helper()
	rep, sink, err := BuildMemorySoak(16, 8, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		t.Fatal("soak returned no sink")
	}
	return rep
}

func TestMemorySoakReport(t *testing.T) {
	rep := tinyMemorySoak(t)
	if rep.Kind != MemoryReportKind || rep.SchemaVersion != MemorySchemaVersion {
		t.Fatalf("report header: %+v", rep)
	}
	if !rep.AllProofsOK {
		t.Fatal("soak proofs failed")
	}
	if len(rep.WaveDetail) != rep.Waves {
		t.Fatalf("wave detail %d entries for %d waves", len(rep.WaveDetail), rep.Waves)
	}
	for _, w := range rep.WaveDetail {
		if w.PeakHeapAllocBytes == 0 || w.Samples == 0 {
			t.Fatalf("empty wave record: %+v", w)
		}
	}
	if rep.PeakHeapAllocBytes < rep.LastWavePeakBytes {
		t.Fatalf("soak peak %d below last wave peak %d", rep.PeakHeapAllocBytes, rep.LastWavePeakBytes)
	}
	// Every soak job flows through the flight recorder into the SLO view.
	if want := rep.Batch * rep.Waves; rep.SLO.Jobs != want {
		t.Fatalf("slo saw %d jobs, want %d", rep.SLO.Jobs, want)
	}
	if rep.SLO.P50Ns <= 0 || len(rep.SLO.StageShares) == 0 {
		t.Fatalf("slo: %+v", rep.SLO)
	}
}

func TestMemoryReportRoundTrip(t *testing.T) {
	rep := tinyMemorySoak(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMemoryReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.PeakHeapAllocBytes != rep.PeakHeapAllocBytes || back.Flat != rep.Flat {
		t.Fatalf("round trip drifted: %+v vs %+v", back, rep)
	}
	// Wrong kind is rejected.
	if _, err := ReadMemoryReport(strings.NewReader(`{"schema_version":1,"kind":"kernels"}`)); err == nil {
		t.Fatal("foreign kind accepted")
	}
	if _, err := ReadMemoryReport(strings.NewReader(`{"schema_version":99,"kind":"memory"}`)); err == nil {
		t.Fatal("future schema accepted")
	}
}

func TestCompareMemoryGates(t *testing.T) {
	old := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true, PeakHeapAllocBytes: 1000}
	cur := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true, PeakHeapAllocBytes: 1100}
	regs, err := CompareMemory(old, cur, 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("10%% growth within the 25%% floor slack flagged: %v %v", regs, err)
	}

	// Losing flatness is always gated.
	cur2 := &MemoryReport{Cores: 8, Flat: false, AllProofsOK: true, PeakHeapAllocBytes: 1000}
	regs, _ = CompareMemory(old, cur2, 0.10)
	if len(regs) != 1 || regs[0].Metric != "flat" {
		t.Fatalf("flatness loss not gated: %v", regs)
	}

	// Large absolute growth between equal-core hosts is gated.
	cur3 := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: true, PeakHeapAllocBytes: 2000}
	regs, _ = CompareMemory(old, cur3, 0.10)
	if len(regs) != 1 || regs[0].Metric != "peak_heap_alloc_bytes" {
		t.Fatalf("2x heap growth not gated: %v", regs)
	}

	// The same growth across different-core hosts is not comparable.
	cur4 := &MemoryReport{Cores: 4, Flat: true, AllProofsOK: true, PeakHeapAllocBytes: 2000}
	regs, _ = CompareMemory(old, cur4, 0.10)
	if len(regs) != 0 {
		t.Fatalf("cross-host heap comparison gated: %v", regs)
	}

	// Failing proofs are always gated.
	cur5 := &MemoryReport{Cores: 8, Flat: true, AllProofsOK: false, PeakHeapAllocBytes: 1000}
	regs, _ = CompareMemory(old, cur5, 0.10)
	if len(regs) != 1 || regs[0].Metric != "all_proofs_ok" {
		t.Fatalf("proof failure not gated: %v", regs)
	}

	if _, err := CompareMemory(nil, cur, 0.10); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, err := CompareMemory(old, cur, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}
