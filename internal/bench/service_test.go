package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func tinyServiceBench(t *testing.T) *ServiceReport {
	t.Helper()
	rep, err := BuildServiceBench(ServiceBenchConfig{
		Tenants: 2, JobsPerTenant: 6, Rate: 500,
		Gates: 32, Shards: 2, Depth: 4,
		MaxBatch: 4, MaxWait: time.Millisecond,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestServiceBenchSmoke(t *testing.T) {
	rep := tinyServiceBench(t)
	if rep.Kind != ServiceReportKind || rep.SchemaVersion != ServiceSchemaVersion {
		t.Fatalf("report header: kind=%q schema=%d", rep.Kind, rep.SchemaVersion)
	}
	if rep.Offered != 12 || rep.Accepted != 12 {
		t.Fatalf("offered=%d accepted=%d, want 12/12 with no quotas", rep.Offered, rep.Accepted)
	}
	// Exactly-once: nothing lost, nothing duplicated, accounting closes.
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Fatalf("lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	if rep.Completed+rep.Failed+rep.Timeouts != rep.Accepted {
		t.Fatalf("accounting does not close: %d+%d+%d != %d",
			rep.Completed, rep.Failed, rep.Timeouts, rep.Accepted)
	}
	if rep.Completed != 12 {
		t.Fatalf("completed=%d, want every job to prove without faults", rep.Completed)
	}
	if !rep.DrainOK {
		t.Fatal("drain contract failed on a clean run")
	}
	if !rep.AllVerified {
		t.Fatal("served proofs did not re-verify")
	}
	if rep.LatencyP50Ns <= 0 || rep.LatencyP99Ns < rep.LatencyP50Ns {
		t.Fatalf("latency percentiles p50=%d p99=%d", rep.LatencyP50Ns, rep.LatencyP99Ns)
	}
	if rep.Batches <= 0 || rep.BatchOccupancy <= 0 || rep.BatchOccupancy > 1 {
		t.Fatalf("batching: batches=%d occupancy=%v", rep.Batches, rep.BatchOccupancy)
	}
	if len(rep.PerTenant) != 2 {
		t.Fatalf("%d tenant rows, want 2", len(rep.PerTenant))
	}
	for _, tr := range rep.PerTenant {
		if tr.Offered != 6 || tr.Completed != 6 {
			t.Fatalf("tenant %s: offered=%d completed=%d, want 6/6", tr.Tenant, tr.Offered, tr.Completed)
		}
	}
	if rep.FairnessJain < ServiceFairnessFloor {
		t.Fatalf("fairness %v below floor with equal tenants", rep.FairnessJain)
	}
}

func TestServiceBenchWithFaults(t *testing.T) {
	rep, err := BuildServiceBench(ServiceBenchConfig{
		Tenants: 2, JobsPerTenant: 5, Rate: 500,
		Gates: 32, Shards: 2, Depth: 4,
		MaxBatch: 4, MaxWait: time.Millisecond,
		Faults: "kernel=0.05,straggler=0.05", FaultSeed: 11,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Under injected faults jobs may fail, but none may be lost or
	// duplicated and the accounting must still close.
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Fatalf("lost=%d duplicated=%d under faults", rep.Lost, rep.Duplicated)
	}
	if rep.Completed+rep.Failed+rep.Timeouts != rep.Accepted {
		t.Fatalf("accounting does not close under faults: %d+%d+%d != %d",
			rep.Completed, rep.Failed, rep.Timeouts, rep.Accepted)
	}
	if !rep.DrainOK {
		t.Fatal("drain contract failed under faults")
	}
}

func TestServiceReportRoundTrip(t *testing.T) {
	rep := tinyServiceBench(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadServiceReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Accepted != rep.Accepted || back.LatencyP99Ns != rep.LatencyP99Ns ||
		back.FairnessJain != rep.FairnessJain || len(back.PerTenant) != len(rep.PerTenant) {
		t.Fatalf("round trip drifted: %+v vs %+v", back, rep)
	}
	if _, err := ReadServiceReport(strings.NewReader(`{"schema_version":1,"kind":"memory"}`)); err == nil {
		t.Fatal("foreign kind accepted")
	}
	if _, err := ReadServiceReport(strings.NewReader(`{"schema_version":99,"kind":"service"}`)); err == nil {
		t.Fatal("future schema accepted")
	}
}

func serviceReportFixture() *ServiceReport {
	return &ServiceReport{
		SchemaVersion: ServiceSchemaVersion, Kind: ServiceReportKind,
		Cores: 8, Tenants: 2,
		Offered: 32, Accepted: 32, Completed: 32,
		LatencyP99Ns: 1_000_000, Batches: 8, BatchOccupancy: 0.8,
		FairnessJain: 0.95, DrainOK: true, AllVerified: true,
	}
}

func TestCompareServiceGates(t *testing.T) {
	old := serviceReportFixture()

	// A clean equal run passes.
	if regs, err := CompareService(old, serviceReportFixture(), 0.10); err != nil || len(regs) != 0 {
		t.Fatalf("identical reports flagged: %v %v", regs, err)
	}

	// Lost or duplicated jobs are always gated.
	cur := serviceReportFixture()
	cur.Lost = 1
	if regs, _ := CompareService(old, cur, 0.10); len(regs) != 1 || regs[0].Metric != "lost_jobs" {
		t.Fatalf("lost job not gated: %v", regs)
	}
	cur = serviceReportFixture()
	cur.Duplicated = 2
	regs, _ := CompareService(old, cur, 0.10)
	if len(regs) == 0 || regs[0].Metric != "duplicated_jobs" {
		t.Fatalf("duplicated job not gated: %v", regs)
	}

	// Accounting must close even when nothing is lost per the stream.
	cur = serviceReportFixture()
	cur.Completed = 30
	regs, _ = CompareService(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "accounting_closure" {
		t.Fatalf("open accounting not gated: %v", regs)
	}

	// Losing the drain contract or verification is always gated.
	cur = serviceReportFixture()
	cur.DrainOK = false
	regs, _ = CompareService(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "drain_ok" {
		t.Fatalf("drain regression not gated: %v", regs)
	}
	cur = serviceReportFixture()
	cur.AllVerified = false
	regs, _ = CompareService(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "all_verified" {
		t.Fatalf("verification regression not gated: %v", regs)
	}

	// Fairness collapse below the floor is always gated for ≥ 2 tenants.
	cur = serviceReportFixture()
	cur.FairnessJain = 0.3
	regs, _ = CompareService(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "fairness_jain" {
		t.Fatalf("fairness collapse not gated: %v", regs)
	}
	cur = serviceReportFixture()
	cur.Tenants = 1
	cur.FairnessJain = 0.3
	if regs, _ := CompareService(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("single-tenant fairness gated: %v", regs)
	}

	// Latency: 50% growth sits inside the 100% floor slack; 3x is gated —
	// but only between equal-core hosts.
	cur = serviceReportFixture()
	cur.LatencyP99Ns = 1_500_000
	if regs, _ := CompareService(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("50%% latency growth inside the floor slack flagged: %v", regs)
	}
	cur = serviceReportFixture()
	cur.LatencyP99Ns = 3_000_000
	regs, _ = CompareService(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "latency_p99_ns" {
		t.Fatalf("3x latency growth not gated: %v", regs)
	}
	cur.Cores = 4
	if regs, _ := CompareService(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("cross-host latency comparison gated: %v", regs)
	}
	// A fault-injected run is not latency-comparable to a clean baseline:
	// the injected delays legitimately inflate its wall-clock numbers.
	cur.Cores = old.Cores
	cur.Faults = "kernel=0.1,slowshard=0.05"
	if regs, _ := CompareService(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("cross-fault-spec latency comparison gated: %v", regs)
	}

	// Occupancy: a 30% drop sits inside the 50% floor slack; a 75% drop
	// is gated on equal cores.
	cur = serviceReportFixture()
	cur.BatchOccupancy = 0.56
	if regs, _ := CompareService(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("30%% occupancy drop inside the floor slack flagged: %v", regs)
	}
	cur = serviceReportFixture()
	cur.BatchOccupancy = 0.2
	regs, _ = CompareService(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "batch_occupancy" {
		t.Fatalf("75%% occupancy drop not gated: %v", regs)
	}

	if _, err := CompareService(nil, old, 0.10); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, err := CompareService(old, old, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}
