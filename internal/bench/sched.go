package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/gpusim"
	"batchzk/internal/perfmodel"
	"batchzk/internal/protocol"
)

// Scheduler bench report: throughput of the real batch prover under
// three worker allocations (the 1/1/1/1 baseline, the §4 proportional
// split of a worker budget, and the elastic autobalanced split), plus a
// deterministic simulated contrast (work-proportional vs equal core
// shares on the simulated device) that is independent of the host's core
// count. Serialized as BENCH_scheduler.json with a "kind" discriminator
// so tooling can dispatch between this report and the scenario reports.

// SchedulerReportKind discriminates scheduler reports from scenario
// reports in BENCH_*.json files.
const SchedulerReportKind = "scheduler"

// SchedulerSchemaVersion identifies the BENCH_scheduler.json layout.
const SchedulerSchemaVersion = 1

// SchedulerAlloc is one measured allocation point.
type SchedulerAlloc struct {
	Name    string `json:"name"`
	Workers [4]int `json:"workers"`
	// JobsPerSec is the measured end-to-end batch throughput.
	JobsPerSec float64 `json:"jobs_per_sec"`
	TotalNs    int64   `json:"total_ns"`
}

// SchedulerReport is the schema-versioned content of
// BENCH_scheduler.json.
type SchedulerReport struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	// Cores is the host's logical CPU count. Measured throughput is only
	// comparable between reports from equal-core hosts; the simulated
	// contrast below is host-independent.
	Cores int `json:"cores"`
	Gates int `json:"gates"`
	Batch int `json:"batch"`
	Depth int `json:"depth"`
	// Budget is the total worker count of the proportional and
	// autobalanced allocations.
	Budget int `json:"budget"`

	Baseline     SchedulerAlloc `json:"baseline"`
	Proportional SchedulerAlloc `json:"proportional"`
	Autobalanced SchedulerAlloc `json:"autobalanced"`
	// MeasuredSpeedupX is proportional over baseline jobs/sec.
	MeasuredSpeedupX float64 `json:"measured_speedup_x"`

	// Correctness invariants checked during the measurement runs.
	OrderOK      bool `json:"order_ok"`
	BitIdentical bool `json:"bit_identical"`

	// Deterministic simulated contrast (3090Ti profile, system pipeline):
	// the §4 work-proportional core allocation vs the equal-shares
	// ablation. Pure function of the device model — identical on every
	// host, so it is always gated.
	SimProportionalPerMs float64 `json:"sim_proportional_per_ms"`
	SimEqualPerMs        float64 `json:"sim_equal_per_ms"`
	SimGainX             float64 `json:"sim_gain_x"`
}

// SchedulerReportFileName is the on-disk name of the scheduler report.
func SchedulerReportFileName() string { return "BENCH_scheduler.json" }

// BuildSchedulerReport measures the batch prover's throughput under the
// three worker allocations on a deterministic circuit, verifies the
// ordering and bit-identity invariants against the sequential reference
// prover, and attaches the simulated allocation contrast.
func BuildSchedulerReport(gates, batch, depth, budget int, seed int64) (*SchedulerReport, error) {
	if gates < 16 {
		gates = 16
	}
	if batch < 8 {
		batch = 8
	}
	if budget < 4 {
		budget = 4
	}
	if depth < budget {
		depth = budget
	}
	c, err := circuit.RandomCircuit(gates, 2, 2, seed)
	if err != nil {
		return nil, err
	}
	p, err := protocol.Setup(c)
	if err != nil {
		return nil, err
	}
	jobs := make([]core.Job, batch)
	for i := range jobs {
		jobs[i] = core.Job{ID: i, Public: field.RandVector(2), Secret: field.RandVector(2)}
	}
	// Sequential reference proofs, computed once, compared against every
	// allocation's output.
	refs := make([]*protocol.Proof, batch)
	for i := range jobs {
		refs[i], err = protocol.Prove(c, p, jobs[i].Public, jobs[i].Secret)
		if err != nil {
			return nil, fmt.Errorf("bench: reference proof %d: %w", i, err)
		}
	}

	rep := &SchedulerReport{
		SchemaVersion: SchedulerSchemaVersion,
		Kind:          SchedulerReportKind,
		Cores:         runtime.NumCPU(),
		Gates:         gates,
		Batch:         batch,
		Depth:         depth,
		Budget:        budget,
		OrderOK:       true,
		BitIdentical:  true,
	}

	run := func(name string, schedule *core.Schedule) (SchedulerAlloc, error) {
		bp, err := core.NewBatchProver(c, p, depth)
		if err != nil {
			return SchedulerAlloc{}, err
		}
		bp.SetSchedule(schedule)
		start := time.Now()
		results := bp.ProveBatch(jobs)
		elapsed := time.Since(start)
		if len(results) != batch {
			return SchedulerAlloc{}, fmt.Errorf("bench: %s lost results: %d of %d", name, len(results), batch)
		}
		for i, r := range results {
			if r.Err != nil {
				return SchedulerAlloc{}, fmt.Errorf("bench: %s job %d: %w", name, i, r.Err)
			}
			if r.ID != i {
				rep.OrderOK = false
			}
			if r.Proof.Commitment.Root != refs[i].Commitment.Root ||
				!r.Proof.OTau.Equal(&refs[i].OTau) || !r.Proof.WSigma.Equal(&refs[i].WSigma) {
				rep.BitIdentical = false
			}
		}
		return SchedulerAlloc{
			Name:       name,
			Workers:    bp.StageWorkers(),
			JobsPerSec: float64(batch) / elapsed.Seconds(),
			TotalNs:    elapsed.Nanoseconds(),
		}, nil
	}

	// Calibrate the proportional split from the prover's own amortized
	// stage times (the §4 offline profiling step).
	calib, err := core.NewBatchProver(c, p, depth)
	if err != nil {
		return nil, err
	}
	prop, err := calib.CalibrateSchedule(budget, 4)
	if err != nil {
		return nil, err
	}

	if rep.Baseline, err = run("baseline", nil); err != nil {
		return nil, err
	}
	if rep.Proportional, err = run("proportional", &prop); err != nil {
		return nil, err
	}
	auto := prop
	auto.Autobalance = true
	auto.Budget = budget
	auto.RebalanceEvery = 5 * time.Millisecond
	if rep.Autobalanced, err = run("autobalanced", &auto); err != nil {
		return nil, err
	}
	if rep.Baseline.JobsPerSec > 0 {
		rep.MeasuredSpeedupX = rep.Proportional.JobsPerSec / rep.Baseline.JobsPerSec
	}

	// Simulated contrast: host-independent, so the regression gate can
	// hold it to a hard line on any CI machine.
	shape, err := core.ShapeForScale(1 << 12)
	if err != nil {
		return nil, err
	}
	stages, err := core.SystemStages(shape, perfmodel.GPUCosts(), encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	spec := perfmodel.RTX3090Ti()
	simOpts := gpusim.Options{Overlap: true, TaskBytes: core.SystemTaskBytes(shape), TraceCap: -1}
	propRep, err := gpusim.RunPipelined(spec, stages, 64, simOpts)
	if err != nil {
		return nil, err
	}
	eqOpts := simOpts
	eqOpts.EqualShares = true
	eqRep, err := gpusim.RunPipelined(spec, stages, 64, eqOpts)
	if err != nil {
		return nil, err
	}
	rep.SimProportionalPerMs = propRep.ThroughputPerMs()
	rep.SimEqualPerMs = eqRep.ThroughputPerMs()
	if rep.SimEqualPerMs > 0 {
		rep.SimGainX = rep.SimProportionalPerMs / rep.SimEqualPerMs
	}
	return rep, nil
}

// WriteJSON serializes the report, indented, trailing newline included.
func (r *SchedulerReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadSchedulerReport parses a BENCH_scheduler.json stream and validates
// its schema and kind.
func ReadSchedulerReport(rd io.Reader) (*SchedulerReport, error) {
	var r SchedulerReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse scheduler report: %w", err)
	}
	if r.Kind != SchedulerReportKind {
		return nil, fmt.Errorf("bench: report kind %q, want %q", r.Kind, SchedulerReportKind)
	}
	if r.SchemaVersion != SchedulerSchemaVersion {
		return nil, fmt.Errorf("bench: scheduler report schema v%d, this build reads v%d", r.SchemaVersion, SchedulerSchemaVersion)
	}
	return &r, nil
}

// CompareScheduler gates a new scheduler report against an old one. The
// correctness invariants (order, bit-identity) and the deterministic
// simulated allocation gain are always gated. Measured throughput is
// hardware-dependent, so those metrics are gated only when both reports
// come from hosts with the same core count — a report regenerated on a
// different machine can't spuriously fail the gate.
func CompareScheduler(old, cur *SchedulerReport, threshold float64) ([]Regression, error) {
	if old == nil || cur == nil {
		return nil, fmt.Errorf("bench: compare needs two reports")
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bench: negative threshold %v", threshold)
	}
	var regs []Regression
	boolMetric := func(metric string, oldV, newV bool) {
		if oldV && !newV {
			regs = append(regs, Regression{Metric: metric, Old: 1, New: 0, DeltaFrac: 1})
		}
	}
	boolMetric("order_ok", old.OrderOK, cur.OrderOK)
	boolMetric("bit_identical", old.BitIdentical, cur.BitIdentical)

	check := func(metric string, oldV, newV float64, higherIsBetter bool) {
		if oldV <= 0 {
			return
		}
		delta := (oldV - newV) / oldV
		if !higherIsBetter {
			delta = -delta
		}
		if delta > threshold {
			regs = append(regs, Regression{Metric: metric, Old: oldV, New: newV, DeltaFrac: delta})
		}
	}
	check("sim_gain_x", old.SimGainX, cur.SimGainX, true)
	check("sim_proportional_per_ms", old.SimProportionalPerMs, cur.SimProportionalPerMs, true)
	if old.Cores == cur.Cores {
		check("proportional.jobs_per_sec", old.Proportional.JobsPerSec, cur.Proportional.JobsPerSec, true)
		check("measured_speedup_x", old.MeasuredSpeedupX, cur.MeasuredSpeedupX, true)
	}
	return regs, nil
}
