package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/ntt"
	"batchzk/internal/par"
	"batchzk/internal/pcs"
	"batchzk/internal/poly"
	"batchzk/internal/sha2"
	"batchzk/internal/sumcheck"
	"batchzk/internal/transcript"
)

// Kernels bench report: serial-vs-parallel timings of every hot kernel
// that runs on the par runtime (Merkle build, Spielman encode, sum-check
// prove, NTT, PCS commit, batch inversion), each with a bit-identity
// check between the two runs, plus the field-arith section (schema v2)
// pinning the ALU-floor microkernels against their generic references.
// Serialized as BENCH_kernels.json with the same "kind" discriminator
// convention as the scheduler report, so batchzk-profile compare can
// dispatch on file content.

// KernelsReportKind discriminates kernel reports in BENCH_*.json files.
const KernelsReportKind = "kernels"

// KernelsSchemaVersion identifies the BENCH_kernels.json layout.
// v2 added the field_arith section of ALU-floor microkernel timings.
const KernelsSchemaVersion = 2

// KernelResult is one kernel's serial-vs-parallel measurement. Identical
// reports whether the parallel run produced bit-identical output — the
// runtime's core contract, gated unconditionally by CompareKernels.
type KernelResult struct {
	Name       string  `json:"name"`
	Size       int     `json:"size"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	SpeedupX   float64 `json:"speedup_x"`
	Identical  bool    `json:"identical"`
}

// KernelsReport is the schema-versioned content of BENCH_kernels.json.
type KernelsReport struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	// Cores is the host's logical CPU count. Speedups are only comparable
	// between reports from equal-core hosts; the Identical flags are
	// host-independent and always gated.
	Cores   int            `json:"cores"`
	Workers int            `json:"workers"`
	Shift   int            `json:"shift"`
	Reps    int            `json:"reps"`
	Kernels []KernelResult `json:"kernels"`
	// FieldArith holds the serial ALU-floor microkernel timings (unrolled
	// Montgomery arithmetic, dedicated mixed add, batch-affine Pippenger)
	// against the retained generic references (fieldarith.go).
	FieldArith []FieldArithResult `json:"field_arith"`
}

// KernelsReportFileName is the on-disk name of the kernels report.
func KernelsReportFileName() string { return "BENCH_kernels.json" }

// kernelCase is one measurable kernel: run executes it at the current
// runtime width and returns a digest fingerprinting the full output.
type kernelCase struct {
	name string
	size int
	run  func() (sha2.Digest, error)
}

// elementsFP fingerprints a vector of field elements.
func elementsFP(es []field.Element) sha2.Digest {
	return merkle.HashElements(es)
}

// kernelCases assembles the kernel suite at 2^shift problem sizes. All
// inputs are drawn deterministically from seed so serial and parallel
// runs (and reruns on other hosts) see identical data.
func kernelCases(shift int, seed int64) ([]kernelCase, error) {
	if shift < 6 || shift > ntt.MaxLogSize {
		return nil, fmt.Errorf("bench: kernel shift %d out of [6, %d]", shift, ntt.MaxLogSize)
	}
	rng := rand.New(rand.NewSource(seed))
	randVec := func(n int) []field.Element {
		out := make([]field.Element, n)
		for i := range out {
			var b [64]byte
			rng.Read(b[:])
			out[i].SetBytesWide(b[:])
		}
		return out
	}
	n := 1 << shift

	blocks := make([]merkle.Block, n)
	for i := range blocks {
		rng.Read(blocks[i][:])
	}

	encMsg := randVec(n)
	enc, err := encoder.New(n, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}

	scTable := randVec(n)
	nttVec := randVec(n)
	invVec := randVec(n)

	pcsParams := pcs.NewParams(shift)
	pcsParams.NumOpenings = 16
	pcsVals := randVec(n)

	return []kernelCase{
		{name: "merkle/build", size: n, run: func() (sha2.Digest, error) {
			t, err := merkle.Build(blocks)
			if err != nil {
				return sha2.Digest{}, err
			}
			return t.Root(), nil
		}},
		{name: "encoder/encode", size: n, run: func() (sha2.Digest, error) {
			cw, err := enc.Encode(encMsg)
			if err != nil {
				return sha2.Digest{}, err
			}
			return elementsFP(cw), nil
		}},
		{name: "sumcheck/prove", size: n, run: func() (sha2.Digest, error) {
			m, err := poly.NewMultilinear(scTable)
			if err != nil {
				return sha2.Digest{}, err
			}
			proof, _, _ := sumcheck.Prove(m, transcript.New("bench/kernels"))
			flat := make([]field.Element, 0, 2*len(proof.Rounds))
			for _, rd := range proof.Rounds {
				flat = append(flat, rd.P1, rd.P2)
			}
			return elementsFP(flat), nil
		}},
		{name: "ntt/forward", size: n, run: func() (sha2.Digest, error) {
			a := append([]field.Element(nil), nttVec...)
			if err := ntt.Forward(a); err != nil {
				return sha2.Digest{}, err
			}
			return elementsFP(a), nil
		}},
		{name: "pcs/commit", size: n, run: func() (sha2.Digest, error) {
			s, err := pcs.Commit(pcsVals, pcsParams)
			if err != nil {
				return sha2.Digest{}, err
			}
			return s.Commitment().Root, nil
		}},
		{name: "field/batch-inverse", size: n, run: func() (sha2.Digest, error) {
			s := par.GetScratch()
			defer par.PutScratch(s)
			dst := make([]field.Element, len(invVec))
			s.BatchInverse(dst, invVec)
			return elementsFP(dst), nil
		}},
	}, nil
}

// BuildKernelsReport measures every kernel serial (width 1) and parallel
// (the given worker count; ≤ 0 selects the GOMAXPROCS default), taking
// the best of reps runs, and checks the outputs are bit-identical. The
// global runtime width is restored to the default on return.
func BuildKernelsReport(shift, reps, workers int, seed int64) (*KernelsReport, error) {
	if reps < 1 {
		reps = 1
	}
	cases, err := kernelCases(shift, seed)
	if err != nil {
		return nil, err
	}
	defer par.SetWidth(0)

	measure := func(k kernelCase) (best int64, fp sha2.Digest, err error) {
		for r := 0; r < reps; r++ {
			start := time.Now()
			d, err := k.run()
			elapsed := time.Since(start).Nanoseconds()
			if err != nil {
				return 0, sha2.Digest{}, fmt.Errorf("bench: kernel %s: %w", k.name, err)
			}
			if r == 0 {
				fp = d
			} else if d != fp {
				return 0, sha2.Digest{}, fmt.Errorf("bench: kernel %s: nondeterministic across reps", k.name)
			}
			if r == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, fp, nil
	}

	rep := &KernelsReport{
		SchemaVersion: KernelsSchemaVersion,
		Kind:          KernelsReportKind,
		Cores:         runtime.NumCPU(),
		Workers:       workers,
		Shift:         shift,
		Reps:          reps,
	}
	if rep.Workers <= 0 {
		rep.Workers = runtime.GOMAXPROCS(0)
	}
	for _, k := range cases {
		par.SetWidth(1)
		serialNs, serialFP, err := measure(k)
		if err != nil {
			return nil, err
		}
		par.SetWidth(workers)
		parNs, parFP, err := measure(k)
		if err != nil {
			return nil, err
		}
		res := KernelResult{
			Name:       k.name,
			Size:       k.size,
			SerialNs:   serialNs,
			ParallelNs: parNs,
			Identical:  serialFP == parFP,
		}
		if parNs > 0 {
			res.SpeedupX = float64(serialNs) / float64(parNs)
		}
		rep.Kernels = append(rep.Kernels, res)
	}
	// The field-arith chains are serial scalar code; pin width 1 anyway so
	// nothing parallel runs underneath the timings.
	par.SetWidth(1)
	fa, err := buildFieldArithSection(reps)
	if err != nil {
		return nil, err
	}
	rep.FieldArith = fa
	return rep, nil
}

// WriteJSON serializes the report, indented, trailing newline included.
func (r *KernelsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadKernelsReport parses a BENCH_kernels.json stream and validates its
// schema and kind.
func ReadKernelsReport(rd io.Reader) (*KernelsReport, error) {
	var r KernelsReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse kernels report: %w", err)
	}
	if r.Kind != KernelsReportKind {
		return nil, fmt.Errorf("bench: report kind %q, want %q", r.Kind, KernelsReportKind)
	}
	if r.SchemaVersion != KernelsSchemaVersion {
		return nil, fmt.Errorf("bench: kernels report schema v%d, this build reads v%d", r.SchemaVersion, KernelsSchemaVersion)
	}
	return &r, nil
}

// CompareKernels gates a new kernels report against an old one. The
// bit-identity flags are host-independent and always gated: a kernel that
// was Identical and no longer is fails at any threshold. Speedups are
// hardware-dependent, so per-kernel speedup regressions are gated only
// when both reports come from hosts with the same core count — and only
// on multi-core hosts, since a single core offers no parallelism to
// protect and its serial/parallel ratio is pure timing noise.
func CompareKernels(old, cur *KernelsReport, threshold float64) ([]Regression, error) {
	if old == nil || cur == nil {
		return nil, fmt.Errorf("bench: compare needs two reports")
	}
	if threshold < 0 {
		return nil, fmt.Errorf("bench: negative threshold %v", threshold)
	}
	oldByName := make(map[string]KernelResult, len(old.Kernels))
	for _, k := range old.Kernels {
		oldByName[k.Name] = k
	}
	var regs []Regression
	sameHost := old.Cores == cur.Cores && old.Cores > 1
	for _, k := range cur.Kernels {
		o, ok := oldByName[k.Name]
		if !ok {
			continue // new kernel: nothing to regress against
		}
		if o.Identical && !k.Identical {
			regs = append(regs, Regression{
				Metric: k.Name + ".identical", Old: 1, New: 0, DeltaFrac: 1,
			})
		}
		if sameHost && o.SpeedupX > 0 {
			delta := (o.SpeedupX - k.SpeedupX) / o.SpeedupX
			if delta > threshold {
				regs = append(regs, Regression{
					Metric: k.Name + ".speedup_x", Old: o.SpeedupX, New: k.SpeedupX, DeltaFrac: delta,
				})
			}
		}
	}
	for _, o := range old.Kernels {
		found := false
		for _, k := range cur.Kernels {
			if k.Name == o.Name {
				found = true
				break
			}
		}
		if !found {
			regs = append(regs, Regression{Metric: o.Name + ".present", Old: 1, New: 0, DeltaFrac: 1})
		}
	}

	// Field-arith section: same gating discipline — equivalence and
	// presence are host-independent and unconditional, the ref-vs-new
	// speedup only comparable between equal-core hosts.
	oldFA := make(map[string]FieldArithResult, len(old.FieldArith))
	for _, f := range old.FieldArith {
		oldFA[f.Name] = f
	}
	for _, f := range cur.FieldArith {
		o, ok := oldFA[f.Name]
		if !ok {
			continue
		}
		if o.Identical && !f.Identical {
			regs = append(regs, Regression{
				Metric: "field-arith/" + f.Name + ".identical", Old: 1, New: 0, DeltaFrac: 1,
			})
		}
		if sameHost && o.SpeedupX > 0 {
			delta := (o.SpeedupX - f.SpeedupX) / o.SpeedupX
			if delta > threshold {
				regs = append(regs, Regression{
					Metric: "field-arith/" + f.Name + ".speedup_x", Old: o.SpeedupX, New: f.SpeedupX, DeltaFrac: delta,
				})
			}
		}
	}
	curFA := make(map[string]bool, len(cur.FieldArith))
	for _, f := range cur.FieldArith {
		curFA[f.Name] = true
	}
	for _, o := range old.FieldArith {
		if !curFA[o.Name] {
			regs = append(regs, Regression{Metric: "field-arith/" + o.Name + ".present", Old: 1, New: 0, DeltaFrac: 1})
		}
	}
	return regs, nil
}
