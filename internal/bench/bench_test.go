package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"batchzk/internal/perfmodel"
)

func TestAllExperimentsRun(t *testing.T) {
	tables, err := All(perfmodel.GH200())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Experiments()) {
		t.Fatalf("%d tables for %d experiments", len(tables), len(Experiments()))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s has no rows", tb.ID)
		}
		var buf bytes.Buffer
		tb.Render(&buf)
		if !strings.Contains(buf.String(), tb.ID) {
			t.Fatalf("%s render missing id", tb.ID)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("table99", perfmodel.GH200()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// parse a "12.34x" speedup cell.
func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", cell, err)
	}
	return v
}

func TestTable3Shape(t *testing.T) {
	tb, err := Table3(perfmodel.GH200())
	if err != nil {
		t.Fatal(err)
	}
	// Every row: ours beats both baselines; the GPU-vs-GPU advantage
	// grows as trees shrink (paper: 2.01× at 2^22 → 6.17× at 2^18).
	var prevGPU float64
	for i, row := range tb.Rows {
		cpu := parseSpeedup(t, row[4])
		gpu := parseSpeedup(t, row[5])
		if cpu < 10 {
			t.Fatalf("row %s: CPU speedup %.1f too small", row[0], cpu)
		}
		if gpu <= 1 {
			t.Fatalf("row %s: no GPU speedup", row[0])
		}
		if i > 0 && gpu > prevGPU*1.05 {
			t.Fatalf("GPU speedup should shrink as trees grow: %v", tb.Rows)
		}
		prevGPU = gpu
	}
	// Smallest size must have the largest GPU advantage.
	first := parseSpeedup(t, tb.Rows[0][5])
	last := parseSpeedup(t, tb.Rows[len(tb.Rows)-1][5])
	if first <= last {
		t.Fatalf("advantage should shrink with size: 2^18=%.2f 2^22=%.2f", first, last)
	}
}

func TestTable4And5Shapes(t *testing.T) {
	tb4, err := Table4(perfmodel.GH200())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb4.Rows {
		if parseSpeedup(t, row[4]) < 100 {
			t.Fatalf("sumcheck CPU speedup too small: %v", row)
		}
		if parseSpeedup(t, row[5]) <= 1 {
			t.Fatalf("sumcheck GPU speedup missing: %v", row)
		}
	}
	tb5, err := Table5(perfmodel.GH200())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb5.Rows {
		if parseSpeedup(t, row[4]) < 10 {
			t.Fatalf("encoder CPU speedup too small: %v", row)
		}
		if parseSpeedup(t, row[5]) <= 1 {
			t.Fatalf("encoder np speedup missing: %v", row)
		}
	}
}

func TestTable6LatencyTradeoff(t *testing.T) {
	tb, err := Table6(perfmodel.GH200())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio >= 1 {
			t.Fatalf("%s %s: pipelined latency should be higher (ratio %v ≥ 1)", row[0], row[1], ratio)
		}
	}
}

func TestTable8CrossGPUs(t *testing.T) {
	tb, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 GPUs, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		thr := parseSpeedup(t, row[6])
		if thr < 50 {
			t.Fatalf("%s: throughput speedup %.1f below 50×", row[0], thr)
		}
		lat := parseSpeedup(t, row[3])
		if lat <= 1 {
			t.Fatalf("%s: ours should also win on latency vs Bellperson (paper Table 8)", row[0])
		}
	}
}

func TestTable10MemoryShape(t *testing.T) {
	tb, err := Table10()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if parseSpeedup(t, row[3]) <= 1 {
			t.Fatalf("%s: ours should use less memory", row[0])
		}
	}
}

func TestTable11SubSecond(t *testing.T) {
	tb, err := Table11(perfmodel.GH200())
	if err != nil {
		t.Fatal(err)
	}
	ours := tb.Rows[len(tb.Rows)-1]
	thr, err := strconv.ParseFloat(ours[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 1 {
		t.Fatalf("ours throughput %.3f proofs/s — not sub-second amortized generation", thr)
	}
}

func TestSparklineHelpers(t *testing.T) {
	s := sparkline([]float64{0, 0.5, 1, 2, -1})
	if len([]rune(s)) != 5 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	if resample(nil, 10) != nil {
		t.Fatal("resample of empty trace should be nil")
	}
	if traceStats(nil) != 0 {
		t.Fatal("traceStats of empty trace should be 0")
	}
}
