package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"batchzk/internal/curve"
	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/msm"
	"batchzk/internal/ntt"
	"batchzk/internal/par"
	"batchzk/internal/poly"
	"batchzk/internal/sha2"
	"batchzk/internal/sumcheck"
	"batchzk/internal/transcript"
)

// Host-kernel roofline: the CPU analogue of gpusim's bandwidth-roofline
// verdicts, answering ZKProphet's question for this codebase — after the
// kernels are tuned, how far is each one from the arithmetic it cannot
// avoid? The ceiling is calibrated, not assumed: we measure this host's
// Montgomery multiply, add, and SHA-256 compression costs, multiply them
// by each kernel's analytic per-element operation counts, and compare
// against the kernel's measured serial ns/element. A kernel at a high
// percentage of its ALU ceiling is arithmetic-bound (further speedups
// need parallelism or algorithmic change); a low percentage means the
// time goes to memory traffic, bookkeeping, or dispatch overhead.

// RooflineReportKind discriminates roofline reports in BENCH_*.json
// files.
const RooflineReportKind = "roofline"

// RooflineSchemaVersion identifies the roofline report layout.
const RooflineSchemaVersion = 1

// Roofline verdicts, mirroring the gpusim profile verdict convention.
const (
	// VerdictNearALUCeiling: ≥ 60% of the calibrated ALU bound — the
	// kernel's time is the arithmetic itself.
	VerdictNearALUCeiling = "near-alu-ceiling"
	// VerdictALUHeadroom: 25–60% — arithmetic dominates but per-element
	// overhead (loads, index math, function calls) is visible.
	VerdictALUHeadroom = "alu-headroom"
	// VerdictOverheadBound: < 25% — the ALU is mostly idle; memory
	// traffic or bookkeeping owns the time.
	VerdictOverheadBound = "overhead-bound"
)

// ALUCalibration holds the measured per-operation costs of this host's
// scalar arithmetic — the quantities the theoretical floors multiply.
type ALUCalibration struct {
	// MulNs is one 254-bit Montgomery field multiplication.
	MulNs float64 `json:"mul_ns"`
	// AddNs is one field addition (with conditional reduction).
	AddNs float64 `json:"add_ns"`
	// CompressNs is one SHA-256 compression (sha2.Compress2).
	CompressNs float64 `json:"compress_ns"`
}

// RooflineKernel is one kernel's measurement against its ALU floor.
type RooflineKernel struct {
	Name string `json:"name"`
	Size int    `json:"size"`
	// MeasuredNs is the serial (width-1) wall time, best of reps — the
	// fair comparison point for a single ALU's theoretical floor.
	MeasuredNs   int64   `json:"measured_ns"`
	NsPerElement float64 `json:"ns_per_element"`
	// Per-element operation counts of the analytic work model.
	MulsPerElement     float64 `json:"muls_per_element"`
	AddsPerElement     float64 `json:"adds_per_element"`
	CompressPerElement float64 `json:"compress_per_element"`
	// FloorNsPerElement = muls·MulNs + adds·AddNs + compress·CompressNs.
	FloorNsPerElement float64 `json:"floor_ns_per_element"`
	// PctOfCeiling is floor/measured × 100: how much of the kernel's
	// time is the arithmetic it cannot avoid.
	PctOfCeiling float64 `json:"pct_of_ceiling"`
	Verdict      string  `json:"verdict"`
	// Model documents the op-count model (and whether it is exact).
	Model string `json:"model"`
	// Dispatch counters from the par runtime for the measured run.
	ParCalls  int64 `json:"par_calls"`
	ParItems  int64 `json:"par_items"`
	ParChunks int64 `json:"par_chunks"`
	ParInline int64 `json:"par_inline"`
}

// RooflineReport is the schema-versioned roofline output.
type RooflineReport struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	Cores         int    `json:"cores"`
	Shift         int    `json:"shift"`
	Reps          int    `json:"reps"`

	Calibration ALUCalibration   `json:"calibration"`
	Kernels     []RooflineKernel `json:"kernels"`
}

// rooflineVerdict classifies a pct-of-ceiling figure.
func rooflineVerdict(pct float64) string {
	switch {
	case pct >= 60:
		return VerdictNearALUCeiling
	case pct >= 25:
		return VerdictALUHeadroom
	default:
		return VerdictOverheadBound
	}
}

// calibrateALU measures the host's per-operation costs. Each primitive
// runs as a serial dependency chain over enough iterations to swamp
// timer resolution, best of three runs so a scheduling hiccup cannot
// inflate the ceiling.
func calibrateALU() ALUCalibration {
	const (
		fieldOps = 1 << 17
		hashOps  = 1 << 13
		runs     = 3
	)
	bestNs := func(run func() float64) float64 {
		best := math.Inf(1)
		for r := 0; r < runs; r++ {
			if ns := run(); ns < best {
				best = ns
			}
		}
		return best
	}
	a := field.NewElement(3)
	b := field.NewElement(0x9e3779b97f4a7c15)
	cal := ALUCalibration{}
	cal.MulNs = bestNs(func() float64 {
		acc := a
		start := time.Now()
		for i := 0; i < fieldOps; i++ {
			acc.Mul(&acc, &b)
		}
		calibrationSink = acc
		return float64(time.Since(start).Nanoseconds()) / fieldOps
	})
	cal.AddNs = bestNs(func() float64 {
		acc := a
		start := time.Now()
		for i := 0; i < fieldOps; i++ {
			acc.Add(&acc, &b)
		}
		calibrationSink = acc
		return float64(time.Since(start).Nanoseconds()) / fieldOps
	})
	var l, r sha2.Digest
	l[0], r[0] = 1, 2
	cal.CompressNs = bestNs(func() float64 {
		d := l
		start := time.Now()
		for i := 0; i < hashOps; i++ {
			d = sha2.Compress2(&d, &r)
		}
		calibrationDigest = d
		return float64(time.Since(start).Nanoseconds()) / hashOps
	})
	return cal
}

// Calibration sinks: stores the dead-code eliminator cannot remove, so
// the dependency chains above are really executed.
var (
	calibrationSink   field.Element
	calibrationDigest sha2.Digest
)

// rooflineCase is one kernel with its analytic per-element op model.
type rooflineCase struct {
	name     string
	size     int
	muls     float64 // field multiplications per element
	adds     float64 // field additions per element
	compress float64 // SHA-256 compressions per element
	model    string
	run      func() error
}

// rooflineCases assembles the kernel suite with deterministic inputs.
// Op models are exact where the code admits exact counting (merkle,
// NTT, encoder, batch-inverse) and documented approximations elsewhere
// (sum-check, MSM).
func rooflineCases(shift int, seed int64) ([]rooflineCase, error) {
	if shift < 6 || shift > ntt.MaxLogSize {
		return nil, fmt.Errorf("bench: roofline shift %d out of [6, %d]", shift, ntt.MaxLogSize)
	}
	rng := rand.New(rand.NewSource(seed))
	randVec := func(n int) []field.Element {
		out := make([]field.Element, n)
		for i := range out {
			var b [64]byte
			rng.Read(b[:])
			out[i].SetBytesWide(b[:])
		}
		return out
	}
	n := 1 << shift
	logN := float64(shift)

	blocks := make([]merkle.Block, n)
	for i := range blocks {
		rng.Read(blocks[i][:])
	}

	encMsg := randVec(n)
	enc, err := encoder.New(n, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	// Exact encoder arithmetic: every nonzero of both sparse phases is
	// one mul-add.
	workStages, err := encoder.WorkModel(n, encoder.DefaultParams())
	if err != nil {
		return nil, err
	}
	var encNNZ float64
	for _, st := range workStages {
		encNNZ += float64(st.FirstNNZ + st.SecondNNZ)
	}

	scTable := randVec(n)
	nttVec := randVec(n)
	invVec := randVec(n)

	// MSM at a quarter of the base size: curve setup is itself a few
	// thousand scalar multiplications, and the op model scales exactly.
	msmN := n / 4
	if msmN < 64 {
		msmN = 64
	}
	msmPoints := make([]curve.AffinePoint, msmN)
	for i := range msmPoints {
		msmPoints[i] = curve.RandPoint()
	}
	msmScalars := randVec(msmN)
	// Pippenger's op counts are exact per cost class (msm.WorkBreakdown);
	// the field cost per class is the approximation. Batch-affine bucket
	// additions amortize to ~6 mul-equivalents + ~6 adds (2M+1S chord plus
	// the addition's share of the round's shared inversion); sweep bucket
	// visits average a mixed add (7M+4S) and a full Jacobian add (11M+5S),
	// ~13.5 muls + 7 adds each; the per-window doublings (2M+5S) are the
	// remainder. Squares are costed as muls — the calibration measures Mul.
	msmBucketAdds, msmSweepAdds, msmDoublings := msm.WorkBreakdown(msmN)
	msmMuls := (6*float64(msmBucketAdds) + 13.5*float64(msmSweepAdds) + 7*float64(msmDoublings)) / float64(msmN)
	msmAdds := (6*float64(msmBucketAdds) + 7*float64(msmSweepAdds) + 4*float64(msmDoublings)) / float64(msmN)

	return []rooflineCase{
		{
			name: "merkle/build", size: n,
			compress: (2*float64(n) - 1) / float64(n),
			model:    "exact: 2n-1 SHA-256 compressions per n-block tree",
			run: func() error {
				_, err := merkle.Build(blocks)
				return err
			},
		},
		{
			name: "ntt/forward", size: n,
			muls:  logN / 2,
			adds:  logN,
			model: "exact: (n/2)·log2(n) butterflies, 1 mul + 2 add each; twiddles from cached tables (no per-transform root chains)",
			run: func() error {
				a := append([]field.Element(nil), nttVec...)
				return ntt.Forward(a)
			},
		},
		{
			name: "sumcheck/prove", size: n,
			muls:  1,
			adds:  3,
			model: "approx: n-1 fold lerps (1 mul + 2 add) + 2 partial-sum adds per surviving entry",
			run: func() error {
				m, err := poly.NewMultilinear(scTable)
				if err != nil {
					return err
				}
				sumcheck.Prove(m, transcript.New("bench/roofline"))
				return nil
			},
		},
		{
			name: "encoder/encode", size: n,
			muls:  encNNZ / float64(n),
			adds:  encNNZ / float64(n),
			model: "exact: one mul-add per sparse-matrix nonzero (encoder.WorkModel)",
			run: func() error {
				_, err := enc.Encode(encMsg)
				return err
			},
		},
		{
			name: "field/batch-inverse", size: n,
			muls:  3,
			adds:  0,
			model: "exact: Montgomery batch trick, 3(n-1) muls + 1 inversion",
			run: func() error {
				s := par.GetScratch()
				defer par.PutScratch(s)
				dst := make([]field.Element, len(invVec))
				s.BatchInverse(dst, invVec)
				return nil
			},
		},
		{
			name: "msm/pippenger", size: msmN,
			muls:  msmMuls,
			adds:  msmAdds,
			model: "approx: msm.WorkBreakdown × per-class costs (batch-affine bucket add ~6 mul-eq + 6 add; sweep visit ~13.5 mul + 7 add; doubling ~7 mul + 4 add)",
			run: func() error {
				_, err := msm.Parallel(msmPoints, msmScalars, 0)
				return err
			},
		},
	}, nil
}

// BuildRooflineReport calibrates the host ALU and measures every kernel
// serially (width 1, best of reps) against its analytic floor. The
// global runtime width is restored to the default on return.
func BuildRooflineReport(shift, reps int, seed int64) (*RooflineReport, error) {
	if reps < 1 {
		reps = 1
	}
	cases, err := rooflineCases(shift, seed)
	if err != nil {
		return nil, err
	}
	rep := &RooflineReport{
		SchemaVersion: RooflineSchemaVersion,
		Kind:          RooflineReportKind,
		Cores:         runtime.NumCPU(),
		Shift:         shift,
		Reps:          reps,
		Calibration:   calibrateALU(),
	}

	par.SetWidth(1)
	defer par.SetWidth(0)
	for _, k := range cases {
		var best int64
		var stats par.RuntimeStats
		for r := 0; r < reps; r++ {
			before := par.Stats()
			start := time.Now()
			if err := k.run(); err != nil {
				return nil, fmt.Errorf("bench: roofline kernel %s: %w", k.name, err)
			}
			elapsed := time.Since(start).Nanoseconds()
			if r == 0 || elapsed < best {
				best = elapsed
				stats = par.Stats().Delta(before)
			}
		}
		res := RooflineKernel{
			Name:               k.name,
			Size:               k.size,
			MeasuredNs:         best,
			NsPerElement:       float64(best) / float64(k.size),
			MulsPerElement:     k.muls,
			AddsPerElement:     k.adds,
			CompressPerElement: k.compress,
			Model:              k.model,
			ParCalls:           stats.Calls,
			ParItems:           stats.Items,
			ParChunks:          stats.Chunks,
			ParInline:          stats.Inline,
		}
		res.FloorNsPerElement = k.muls*rep.Calibration.MulNs +
			k.adds*rep.Calibration.AddNs +
			k.compress*rep.Calibration.CompressNs
		if res.NsPerElement > 0 {
			res.PctOfCeiling = res.FloorNsPerElement / res.NsPerElement * 100
		}
		res.Verdict = rooflineVerdict(res.PctOfCeiling)
		rep.Kernels = append(rep.Kernels, res)
	}
	return rep, nil
}

// WriteJSON serializes the report, indented, trailing newline included.
func (r *RooflineReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRooflineReport parses a roofline report stream and validates its
// schema and kind.
func ReadRooflineReport(rd io.Reader) (*RooflineReport, error) {
	var r RooflineReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse roofline report: %w", err)
	}
	if r.Kind != RooflineReportKind {
		return nil, fmt.Errorf("bench: report kind %q, want %q", r.Kind, RooflineReportKind)
	}
	if r.SchemaVersion != RooflineSchemaVersion {
		return nil, fmt.Errorf("bench: roofline report schema v%d, this build reads v%d", r.SchemaVersion, RooflineSchemaVersion)
	}
	return &r, nil
}

// Floors returns kernel name → calibrated ALU floor in ns/element — the
// map the obs anomaly sentinel judges live per-kernel measurements
// against (obs.Engine.SetFloors).
func (r *RooflineReport) Floors() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64, len(r.Kernels))
	for _, k := range r.Kernels {
		if k.FloorNsPerElement > 0 {
			out[k.Name] = k.FloorNsPerElement
		}
	}
	return out
}

// RenderTable writes the human-readable roofline table.
func (r *RooflineReport) RenderTable(w io.Writer) {
	fmt.Fprintf(w, "host-kernel roofline (serial, %d cores, shift %d)\n", r.Cores, r.Shift)
	fmt.Fprintf(w, "calibrated ALU: mul %.1f ns · add %.1f ns · sha256-compress %.1f ns\n\n",
		r.Calibration.MulNs, r.Calibration.AddNs, r.Calibration.CompressNs)
	fmt.Fprintf(w, "%-20s %10s %12s %12s %8s  %s\n",
		"kernel", "size", "ns/elem", "floor ns", "%ceil", "verdict")
	for _, k := range r.Kernels {
		fmt.Fprintf(w, "%-20s %10d %12.1f %12.1f %7.1f%%  %s\n",
			k.Name, k.Size, k.NsPerElement, k.FloorNsPerElement, k.PctOfCeiling, k.Verdict)
	}
}
