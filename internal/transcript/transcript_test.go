package transcript

import (
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/sha2"
)

func TestDeterminism(t *testing.T) {
	mk := func() []field.Element {
		tr := New("test")
		tr.AppendBytes("msg", []byte("hello"))
		e := field.NewElement(42)
		tr.AppendElement("e", &e)
		tr.AppendUint64("n", 7)
		return tr.ChallengeElements("c", 3)
	}
	a, b := mk(), mk()
	if !field.VectorEqual(a, b) {
		t.Fatal("identical transcripts diverged")
	}
}

func TestDomainSeparation(t *testing.T) {
	t1 := New("proto-a")
	t2 := New("proto-b")
	c1 := t1.ChallengeElement("x")
	c2 := t2.ChallengeElement("x")
	if c1.Equal(&c2) {
		t.Fatal("different domains produced the same challenge")
	}
}

func TestOrderSensitivity(t *testing.T) {
	t1 := New("t")
	t1.AppendBytes("a", []byte{1})
	t1.AppendBytes("b", []byte{2})
	t2 := New("t")
	t2.AppendBytes("b", []byte{2})
	t2.AppendBytes("a", []byte{1})
	c1 := t1.ChallengeElement("x")
	c2 := t2.ChallengeElement("x")
	if c1.Equal(&c2) {
		t.Fatal("transcript is not order-sensitive")
	}
}

func TestLabelAndDataBoundaries(t *testing.T) {
	// ("ab", "c") must differ from ("a", "bc") — length prefixing.
	t1 := New("t")
	t1.AppendBytes("ab", []byte("c"))
	t2 := New("t")
	t2.AppendBytes("a", []byte("bc"))
	c1 := t1.ChallengeElement("x")
	c2 := t2.ChallengeElement("x")
	if c1.Equal(&c2) {
		t.Fatal("label/data boundary is ambiguous")
	}
}

func TestChallengesAdvanceState(t *testing.T) {
	tr := New("t")
	c1 := tr.ChallengeElement("x")
	c2 := tr.ChallengeElement("x")
	if c1.Equal(&c2) {
		t.Fatal("successive challenges repeated")
	}
	cs := tr.ChallengeElements("y", 4)
	seen := map[string]bool{}
	for _, c := range cs {
		s := c.String()
		if seen[s] {
			t.Fatal("duplicate challenge in batch")
		}
		seen[s] = true
	}
}

func TestChallengeIndices(t *testing.T) {
	tr := New("t")
	idx := tr.ChallengeIndices("cols", 100, 37)
	if len(idx) != 100 {
		t.Fatalf("got %d indices", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 37 {
			t.Fatalf("index %d out of range", i)
		}
	}
	if got := tr.ChallengeIndices("z", 5, 0); got != nil {
		t.Fatal("bound 0 should give nil")
	}
	// Distribution smoke test: over 100 draws from 37 buckets we should
	// see a reasonable spread.
	distinct := map[int]bool{}
	for _, i := range idx {
		distinct[i] = true
	}
	if len(distinct) < 20 {
		t.Fatalf("suspiciously few distinct indices: %d", len(distinct))
	}
}

func TestAppendVariants(t *testing.T) {
	tr1 := New("t")
	tr1.AppendDigest("d", sha2.Sum256([]byte("x")))
	tr2 := New("t")
	tr2.AppendDigest("d", sha2.Sum256([]byte("y")))
	c1 := tr1.ChallengeElement("c")
	c2 := tr2.ChallengeElement("c")
	if c1.Equal(&c2) {
		t.Fatal("digest content ignored")
	}

	es := []field.Element{field.NewElement(1), field.NewElement(2)}
	tr3 := New("t")
	tr3.AppendElements("v", es)
	tr4 := New("t")
	tr4.AppendElements("v", es[:1])
	c3 := tr3.ChallengeElement("c")
	c4 := tr4.ChallengeElement("c")
	if c3.Equal(&c4) {
		t.Fatal("element vector content ignored")
	}
}
