// Package transcript implements the Fiat–Shamir transform used to make
// BatchZK's proofs non-interactive.
//
// The paper (§4) derives the sum-check random numbers from pseudo-random
// generators seeded with either the final Merkle root or the output of
// other sum-check modules. Transcript realizes that as a SHA-256 duplex:
// every prover message is absorbed with a domain-separation label, and
// challenges are squeezed as field elements by hashing the running state
// with a counter. Prover and verifier run the identical sequence of
// Append/Challenge calls, so they derive the identical randomness.
package transcript

import (
	"encoding/binary"

	"batchzk/internal/field"
	"batchzk/internal/sha2"
)

// Transcript is a Fiat–Shamir sponge over SHA-256. The zero value is not
// usable; create one with New.
type Transcript struct {
	state   sha2.Digest
	counter uint64
}

// New returns a transcript bound to a protocol domain label.
func New(domain string) *Transcript {
	t := &Transcript{}
	t.state = sha2.Sum256(append([]byte("batchzk/v1/"), domain...))
	return t
}

// absorb folds labeled data into the running state.
func (t *Transcript) absorb(label string, data []byte) {
	h := sha2.NewHasher()
	h.Write(t.state[:])
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(label)))
	h.Write(lenb[:])
	h.Write([]byte(label))
	binary.BigEndian.PutUint64(lenb[:], uint64(len(data)))
	h.Write(lenb[:])
	h.Write(data)
	t.state = h.Sum()
	t.counter = 0
}

// AppendBytes absorbs raw bytes under a label.
func (t *Transcript) AppendBytes(label string, data []byte) {
	t.absorb(label, data)
}

// AppendDigest absorbs a 256-bit digest (e.g. a Merkle root).
func (t *Transcript) AppendDigest(label string, d sha2.Digest) {
	t.absorb(label, d[:])
}

// AppendElement absorbs one field element.
func (t *Transcript) AppendElement(label string, e *field.Element) {
	b := e.ToBytes()
	t.absorb(label, b[:])
}

// AppendElements absorbs a vector of field elements.
func (t *Transcript) AppendElements(label string, es []field.Element) {
	h := sha2.NewHasher()
	for i := range es {
		b := es[i].ToBytes()
		h.Write(b[:])
	}
	d := h.Sum()
	t.absorb(label, d[:])
}

// AppendUint64 absorbs an integer (batch indices, sizes, …).
func (t *Transcript) AppendUint64(label string, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	t.absorb(label, b[:])
}

// squeeze produces 48 pseudo-random bytes tied to the state and counter.
func (t *Transcript) squeeze() [48]byte {
	var out [48]byte
	for i := 0; i < 2; i++ {
		h := sha2.NewHasher()
		h.Write(t.state[:])
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], t.counter)
		h.Write(c[:])
		d := h.Sum()
		copy(out[i*24:], d[:24])
		t.counter++
	}
	return out
}

// ChallengeElement derives one verifier challenge as a field element.
func (t *Transcript) ChallengeElement(label string) field.Element {
	t.absorb("challenge/"+label, nil)
	b := t.squeeze()
	var e field.Element
	e.SetBytesWide(b[:])
	return e
}

// ChallengeElements derives n challenges at once.
func (t *Transcript) ChallengeElements(label string, n int) []field.Element {
	out := make([]field.Element, n)
	t.absorb("challenge/"+label, nil)
	for i := range out {
		b := t.squeeze()
		out[i].SetBytesWide(b[:])
	}
	return out
}

// ChallengeIndices derives n indices in [0, bound) — used to pick the
// random columns opened in the polynomial-commitment proximity test.
func (t *Transcript) ChallengeIndices(label string, n, bound int) []int {
	if bound <= 0 {
		return nil
	}
	out := make([]int, n)
	t.absorb("challenge/"+label, nil)
	for i := range out {
		b := t.squeeze()
		v := binary.BigEndian.Uint64(b[:8])
		out[i] = int(v % uint64(bound))
	}
	return out
}
