package transcript

import (
	"testing"

	"batchzk/internal/field"
)

// FuzzChallengeDerivation drives the Fiat–Shamir sponge with arbitrary
// absorb sequences and checks the soundness-critical invariants:
//
//   - determinism: prover and verifier running the identical sequence
//     derive the identical challenges;
//   - binding: perturbing any absorbed byte, the label, or the domain
//     changes the next challenge (a transcript that ignores part of its
//     input lets a prover grind);
//   - framing: absorbing (a, b) as two messages differs from absorbing
//     the concatenation as one (length-prefix framing works);
//   - well-formedness: squeezed indices respect their bound.
func FuzzChallengeDerivation(f *testing.F) {
	f.Add("domain", "label", []byte("data"), uint16(4))
	f.Add("", "", []byte{}, uint16(1))
	f.Add("sumcheck", "round", []byte{0xff, 0x00, 0xff}, uint16(64))
	f.Fuzz(func(t *testing.T, domain, label string, data []byte, bound uint16) {
		run := func(dom, lab string, payload []byte) field.Element {
			tr := New(dom)
			tr.AppendBytes(lab, payload)
			return tr.ChallengeElement("fuzz")
		}

		// Determinism.
		c1 := run(domain, label, data)
		c2 := run(domain, label, data)
		if !c1.Equal(&c2) {
			t.Fatal("identical transcripts derived different challenges")
		}

		// Binding to the payload, label, and domain. (SHA-256 collisions
		// are beyond the fuzzer's reach, so inequality is a fair oracle.)
		mut := append(append([]byte{}, data...), 0x5a)
		if c := run(domain, label, mut); c.Equal(&c1) {
			t.Fatal("challenge ignores appended payload bytes")
		}
		if c := run(domain, label+"x", data); c.Equal(&c1) {
			t.Fatal("challenge ignores the absorb label")
		}
		if c := run(domain+"x", label, data); c.Equal(&c1) {
			t.Fatal("challenge ignores the protocol domain")
		}

		// Framing: two absorbs never alias one concatenated absorb.
		split := len(data) / 2
		two := New(domain)
		two.AppendBytes(label, data[:split])
		two.AppendBytes(label, data[split:])
		ctwo := two.ChallengeElement("fuzz")
		if ctwo.Equal(&c1) {
			t.Fatal("split absorb aliases concatenated absorb")
		}

		// Consecutive challenges from one transcript differ (the counter
		// advances) and batch derivation matches itself run-to-run.
		tr := New(domain)
		tr.AppendBytes(label, data)
		a := tr.ChallengeElement("x")
		b := tr.ChallengeElement("x")
		if a.Equal(&b) {
			t.Fatal("consecutive challenges repeated")
		}

		n := int(bound%8) + 1
		lim := int(bound) + 1
		tr2 := New(domain)
		tr2.AppendBytes(label, data)
		for _, idx := range tr2.ChallengeIndices("cols", n, lim) {
			if idx < 0 || idx >= lim {
				t.Fatalf("index %d outside [0,%d)", idx, lim)
			}
		}
	})
}
