package pcs

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/transcript"
)

// Streaming-vs-buffered bit-identity: a commitment streamed in odd-sized
// chunks through a StreamingCommitter, then opened out-of-core through
// StreamState.ProveEval, must reproduce the buffered path byte for byte —
// same root, same proof, same transcript evolution — at widths
// 1/2/GOMAXPROCS and with flush blocks forced to odd boundaries.

func lowerStreamGrains(t *testing.T) {
	t.Helper()
	lowerGrains(t)
	oldB := streamRowBlock
	streamRowBlock = 3 // odd, so block boundaries land mid-matrix
	t.Cleanup(func() { streamRowBlock = oldB })
}

// streamCommit pushes values through a committer in chunks of the given
// size (0 = all at once).
func streamCommit(t *testing.T, values []field.Element, p Params, chunk int, mode CommitMode) *StreamState {
	t.Helper()
	sc, err := NewStreamingCommitter(p, mode)
	if err != nil {
		t.Fatal(err)
	}
	if chunk <= 0 {
		chunk = len(values)
	}
	for off := 0; off < len(values); off += chunk {
		end := off + chunk
		if end > len(values) {
			end = len(values)
		}
		if err := sc.AddChunk(values[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStreamingCommitRootBitIdentical(t *testing.T) {
	lowerStreamGrains(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logN := 6 + rng.Intn(3) // 64..256 values
		p := testParams(logN)
		values := field.RandVector(1 << logN)
		ref, err := Commit(values, p)
		if err != nil {
			return false
		}
		// Odd chunk sizes cross row boundaries; the carved carry path and
		// the whole-row fast path must agree with the buffered root.
		chunks := []int{0, 1 + rng.Intn(7), p.NumCols, p.NumCols + 3}
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			par.SetWidth(w)
			for _, chunk := range chunks {
				for _, mode := range []CommitMode{RetainTree, RootOnly} {
					st := streamCommit(t, values, p, chunk, mode)
					if st.Commitment() != ref.Commitment() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingProveEvalBitIdentical(t *testing.T) {
	lowerStreamGrains(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logN := 6 + rng.Intn(3)
		p := testParams(logN)
		values := field.RandVector(1 << logN)
		point := field.RandVector(logN)

		ref, err := Commit(values, p)
		if err != nil {
			return false
		}
		refTr := transcript.New("pcs")
		refProof, refValue, err := ref.ProveEval(point, refTr)
		if err != nil {
			return false
		}
		// The transcripts must have evolved identically, or a later
		// protocol phase would diverge: a post-proof challenge probes it.
		// Drawn once here; it advances refTr, so each (fresh) streaming
		// transcript below must land on the same value.
		refProbe := refTr.ChallengeElements("probe", 1)
		rowAt := func(r int) []field.Element {
			return values[r*p.NumCols : (r+1)*p.NumCols]
		}
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			par.SetWidth(w)
			st := streamCommit(t, values, p, 5, RetainTree)
			tr := transcript.New("pcs")
			proof, value, err := st.ProveEval(rowAt, point, tr)
			if err != nil {
				return false
			}
			if !value.Equal(&refValue) || !reflect.DeepEqual(proof, refProof) {
				return false
			}
			probe := tr.ChallengeElements("probe", 1)
			if !probe[0].Equal(&refProbe[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// The streamed proof must also verify — the end-to-end check that the
// out-of-core openings really open the streamed root.
func TestStreamingProofVerifies(t *testing.T) {
	lowerStreamGrains(t)
	p := testParams(8)
	values := field.RandVector(1 << 8)
	point := field.RandVector(8)
	st := streamCommit(t, values, p, 7, RetainTree)
	rowAt := func(r int) []field.Element {
		return values[r*p.NumCols : (r+1)*p.NumCols]
	}
	proof, value, err := st.ProveEval(rowAt, point, transcript.New("pcs"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEval(st.Commitment(), point, value, proof, p, transcript.New("pcs")); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingCommitterErrors(t *testing.T) {
	p := testParams(6)
	sc, err := NewStreamingCommitter(p, RetainTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.AddChunk(field.RandVector(p.NumCols + 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Finish(); err == nil {
		t.Fatal("Finish accepted a mid-row stream")
	}

	sc2, _ := NewStreamingCommitter(p, RetainTree)
	if err := sc2.AddChunk(field.RandVector(p.NumRows*p.NumCols + p.NumCols)); err == nil {
		t.Fatal("AddChunk accepted more rows than the layout holds")
	}

	// RootOnly states cannot open.
	values := field.RandVector(1 << 6)
	st := streamCommit(t, values, p, 0, RootOnly)
	rowAt := func(r int) []field.Element { return values[r*p.NumCols : (r+1)*p.NumCols] }
	if _, _, err := st.ProveEval(rowAt, field.RandVector(6), transcript.New("pcs")); err == nil {
		t.Fatal("RootOnly state answered an opening")
	}
}
