package pcs

import (
	"errors"
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

func TestCompactEvalRoundTrip(t *testing.T) {
	p := testParams(10)
	values := field.RandVector(1 << 10)
	st, err := Commit(values, p)
	if err != nil {
		t.Fatal(err)
	}
	point := field.RandVector(10)
	proof, value, err := st.ProveEvalCompact(point, transcript.New("pcsc"))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := poly.NewMultilinear(values)
	want, _ := m.Evaluate(point)
	if !want.Equal(&value) {
		t.Fatal("compact value != MLE evaluation")
	}
	if err := VerifyEvalCompact(st.Commitment(), point, value, proof, p, transcript.New("pcsc")); err != nil {
		t.Fatal(err)
	}
	// The shared paths must be strictly smaller than independent ones.
	compact, independent := proof.PathDigests()
	if compact >= independent {
		t.Fatalf("shared paths (%d digests) not smaller than independent (%d)", compact, independent)
	}
	t.Logf("path digests: %d shared vs %d independent (%.0f%% saved)",
		compact, independent, 100*(1-float64(compact)/float64(independent)))
}

func TestCompactEvalRejections(t *testing.T) {
	p := testParams(10)
	values := field.RandVector(1 << 10)
	st, _ := Commit(values, p)
	point := field.RandVector(10)
	proof, value, _ := st.ProveEvalCompact(point, transcript.New("pcsc"))
	comm := st.Commitment()

	var bad field.Element
	bad.Add(&value, &values[0])
	bad.Add(&bad, &values[1]) // very unlikely to equal value
	if err := VerifyEvalCompact(comm, point, bad, proof, p, transcript.New("pcsc")); err == nil {
		t.Fatal("wrong value accepted")
	}

	tampered := *proof
	tampered.ColumnValues = append([][]field.Element{}, proof.ColumnValues...)
	tampered.ColumnValues[1] = append([]field.Element{}, proof.ColumnValues[1]...)
	tampered.ColumnValues[1][0] = field.NewElement(9)
	if err := VerifyEvalCompact(comm, point, value, &tampered, p, transcript.New("pcsc")); !errors.Is(err, ErrReject) {
		t.Fatal("tampered column accepted")
	}

	tampered = *proof
	tampered.ColumnIndex = append([]int{}, proof.ColumnIndex...)
	tampered.ColumnIndex[0] = tampered.ColumnIndex[0] + 1
	if err := VerifyEvalCompact(comm, point, value, &tampered, p, transcript.New("pcsc")); err == nil {
		t.Fatal("wrong index set accepted")
	}

	tampered = *proof
	mp := *proof.Paths
	mp.Siblings = append(mp.Siblings[:0:0], proof.Paths.Siblings...)
	mp.Siblings[0][3] ^= 1
	tampered.Paths = &mp
	if err := VerifyEvalCompact(comm, point, value, &tampered, p, transcript.New("pcsc")); err == nil {
		t.Fatal("tampered shared path accepted")
	}

	if err := VerifyEvalCompact(comm, point, value, nil, p, transcript.New("pcsc")); err == nil {
		t.Fatal("nil proof accepted")
	}
	badRoot := comm
	badRoot.Root[2] ^= 1
	if err := VerifyEvalCompact(badRoot, point, value, proof, p, transcript.New("pcsc")); err == nil {
		t.Fatal("wrong root accepted")
	}
	if err := VerifyEvalCompact(comm, point[:3], value, proof, p, transcript.New("pcsc")); err == nil {
		t.Fatal("short point accepted")
	}
}

func TestCompactMatchesRegularValue(t *testing.T) {
	p := testParams(8)
	values := field.RandVector(1 << 8)
	st, _ := Commit(values, p)
	point := field.RandVector(8)
	_, v1, err := st.ProveEval(point, transcript.New("a"))
	if err != nil {
		t.Fatal(err)
	}
	_, v2, err := st.ProveEvalCompact(point, transcript.New("b"))
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Equal(&v2) {
		t.Fatal("compact and regular values differ")
	}
}
