package pcs

import (
	"fmt"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/transcript"
)

// MultiEvalProof proves evaluations of the committed polynomial at
// several points while sharing one proximity test and one set of opened
// columns across all of them — the batched-opening optimization that
// keeps the proof's Merkle part constant as the number of query points
// grows.
type MultiEvalProof struct {
	TestRow      []field.Element
	CombinedRows [][]field.Element // one eqHiᵀ·M row per point
	Columns      []OpenedColumn
}

// ProveEvalMulti produces one batched proof for all points (each of
// arity NumVars, x_1..x_n order) and returns the evaluation values.
func (s *ProverState) ProveEvalMulti(points [][]field.Element, tr *transcript.Transcript) (*MultiEvalProof, []field.Element, error) {
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("pcs: no evaluation points")
	}
	n := s.comm.NumVars()
	tr.AppendDigest("pcs/root", s.comm.Root)
	tr.AppendUint64("pcs/numpoints", uint64(len(points)))
	for _, pt := range points {
		if len(pt) != n {
			return nil, nil, fmt.Errorf("pcs: point arity %d, want %d", len(pt), n)
		}
		tr.AppendElements("pcs/point", pt)
	}

	gamma := tr.ChallengeElements("pcs/gamma", s.params.NumRows)
	testRow := combineRows(gamma, s.rows, s.params.NumCols)
	tr.AppendElements("pcs/testrow", testRow)

	proof := &MultiEvalProof{TestRow: testRow}
	values := make([]field.Element, len(points))
	for i, pt := range points {
		lo, hi := splitPoint(pt, s.params.NumCols)
		eqHi := eqTableOf(hi)
		combined := combineRows(eqHi, s.rows, s.params.NumCols)
		tr.AppendElements("pcs/evalrow", combined)
		proof.CombinedRows = append(proof.CombinedRows, combined)
		values[i] = field.InnerProduct(combined, eqTableOf(lo))
	}

	idx := tr.ChallengeIndices("pcs/cols", s.params.NumOpenings, s.enc.CodewordLen())
	for _, j := range idx {
		col := make([]field.Element, s.params.NumRows)
		for r := 0; r < s.params.NumRows; r++ {
			col[r] = s.encoded[r][j]
		}
		mp, err := s.tree.Prove(j)
		if err != nil {
			return nil, nil, err
		}
		proof.Columns = append(proof.Columns, OpenedColumn{Index: j, Values: col, Proof: mp})
	}
	return proof, values, nil
}

// VerifyEvalMulti checks a batched evaluation proof against a commitment,
// the points, and the claimed values.
func VerifyEvalMulti(comm Commitment, points [][]field.Element, values []field.Element, proof *MultiEvalProof, params Params, tr *transcript.Transcript) error {
	if err := params.Validate(); err != nil {
		return err
	}
	if len(points) == 0 || len(points) != len(values) {
		return fmt.Errorf("pcs: %d points vs %d values", len(points), len(values))
	}
	if proof == nil || len(proof.CombinedRows) != len(points) || len(proof.TestRow) != params.NumCols {
		return fmt.Errorf("%w: malformed multi-eval proof", ErrReject)
	}
	if comm.NumRows != params.NumRows || comm.NumCols != params.NumCols {
		return fmt.Errorf("pcs: commitment layout mismatch")
	}
	enc, err := encoder.Cached(params.NumCols, params.Enc)
	if err != nil {
		return err
	}

	n := comm.NumVars()
	tr.AppendDigest("pcs/root", comm.Root)
	tr.AppendUint64("pcs/numpoints", uint64(len(points)))
	for _, pt := range points {
		if len(pt) != n {
			return fmt.Errorf("pcs: point arity %d, want %d", len(pt), n)
		}
		tr.AppendElements("pcs/point", pt)
	}
	gamma := tr.ChallengeElements("pcs/gamma", params.NumRows)
	tr.AppendElements("pcs/testrow", proof.TestRow)

	encRows := make([][]field.Element, 0, len(points)+1)
	encTest, err := enc.Encode(proof.TestRow)
	if err != nil {
		return err
	}
	encRows = append(encRows, encTest)
	eqHis := make([][]field.Element, len(points))
	for i, pt := range points {
		if len(proof.CombinedRows[i]) != params.NumCols {
			return fmt.Errorf("%w: eval row %d malformed", ErrReject, i)
		}
		tr.AppendElements("pcs/evalrow", proof.CombinedRows[i])
		encEval, err := enc.Encode(proof.CombinedRows[i])
		if err != nil {
			return err
		}
		encRows = append(encRows, encEval)
		_, hi := splitPoint(pt, params.NumCols)
		eqHis[i] = eqTableOf(hi)
	}

	idx := tr.ChallengeIndices("pcs/cols", params.NumOpenings, enc.CodewordLen())
	if len(proof.Columns) != len(idx) {
		return fmt.Errorf("%w: %d opened columns, want %d", ErrReject, len(proof.Columns), len(idx))
	}
	for k, col := range proof.Columns {
		if col.Index != idx[k] || len(col.Values) != params.NumRows ||
			col.Proof == nil || col.Proof.Index != col.Index {
			return fmt.Errorf("%w: column %d malformed", ErrReject, k)
		}
		if !merkle.VerifyElements(comm.Root, col.Proof, col.Values) {
			return fmt.Errorf("%w: column %d Merkle path invalid", ErrReject, k)
		}
		got := field.InnerProduct(gamma, col.Values)
		if !got.Equal(&encRows[0][col.Index]) {
			return fmt.Errorf("%w: column %d fails proximity check", ErrReject, k)
		}
		for i := range points {
			got := field.InnerProduct(eqHis[i], col.Values)
			if !got.Equal(&encRows[i+1][col.Index]) {
				return fmt.Errorf("%w: column %d fails evaluation check for point %d", ErrReject, k, i)
			}
		}
	}

	for i, pt := range points {
		lo, _ := splitPoint(pt, params.NumCols)
		want := field.InnerProduct(proof.CombinedRows[i], eqTableOf(lo))
		if !want.Equal(&values[i]) {
			return fmt.Errorf("%w: point %d value mismatch", ErrReject, i)
		}
	}
	return nil
}
