package pcs

import (
	"errors"
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

func TestMultiEvalRoundTrip(t *testing.T) {
	p := testParams(10)
	values := field.RandVector(1 << 10)
	st, err := Commit(values, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, numPoints := range []int{1, 2, 4} {
		points := make([][]field.Element, numPoints)
		for i := range points {
			points[i] = field.RandVector(10)
		}
		proof, vals, err := st.ProveEvalMulti(points, transcript.New("pcsm"))
		if err != nil {
			t.Fatal(err)
		}
		// Each value equals the MLE evaluation.
		m, _ := poly.NewMultilinear(values)
		for i := range points {
			want, _ := m.Evaluate(points[i])
			if !want.Equal(&vals[i]) {
				t.Fatalf("point %d value mismatch", i)
			}
		}
		if err := VerifyEvalMulti(st.Commitment(), points, vals, proof, p, transcript.New("pcsm")); err != nil {
			t.Fatalf("numPoints=%d: %v", numPoints, err)
		}
		// Column sharing: the Merkle part does not grow with the number
		// of points.
		if len(proof.Columns) != p.NumOpenings {
			t.Fatalf("opened %d columns, want %d", len(proof.Columns), p.NumOpenings)
		}
	}
}

func TestMultiEvalRejections(t *testing.T) {
	p := testParams(10)
	values := field.RandVector(1 << 10)
	st, _ := Commit(values, p)
	points := [][]field.Element{field.RandVector(10), field.RandVector(10)}
	proof, vals, err := st.ProveEvalMulti(points, transcript.New("pcsm"))
	if err != nil {
		t.Fatal(err)
	}
	comm := st.Commitment()

	// Wrong value.
	bad := append([]field.Element{}, vals...)
	bad[1].Add(&bad[1], &vals[0])
	if err := VerifyEvalMulti(comm, points, bad, proof, p, transcript.New("pcsm")); !errors.Is(err, ErrReject) {
		t.Fatalf("wrong value accepted: %v", err)
	}
	// Swapped points (order is transcript-bound).
	swapped := [][]field.Element{points[1], points[0]}
	if err := VerifyEvalMulti(comm, swapped, vals, proof, p, transcript.New("pcsm")); err == nil {
		t.Fatal("swapped points accepted")
	}
	// Tampered combined row.
	tampered := *proof
	tampered.CombinedRows = append([][]field.Element{}, proof.CombinedRows...)
	tampered.CombinedRows[0] = append([]field.Element{}, proof.CombinedRows[0]...)
	tampered.CombinedRows[0][5] = field.NewElement(1)
	if err := VerifyEvalMulti(comm, points, vals, &tampered, p, transcript.New("pcsm")); err == nil {
		t.Fatal("tampered row accepted")
	}
	// Count mismatches.
	if err := VerifyEvalMulti(comm, points[:1], vals, proof, p, transcript.New("pcsm")); err == nil {
		t.Fatal("point/value count mismatch accepted")
	}
	if err := VerifyEvalMulti(comm, nil, nil, proof, p, transcript.New("pcsm")); err == nil {
		t.Fatal("empty points accepted")
	}
	if err := VerifyEvalMulti(comm, points, vals, nil, p, transcript.New("pcsm")); err == nil {
		t.Fatal("nil proof accepted")
	}
	// Prover-side arity errors.
	if _, _, err := st.ProveEvalMulti(nil, transcript.New("pcsm")); err == nil {
		t.Fatal("no points accepted")
	}
	if _, _, err := st.ProveEvalMulti([][]field.Element{field.RandVector(3)}, transcript.New("pcsm")); err == nil {
		t.Fatal("short point accepted")
	}
}

func TestMultiEvalConsistentWithSingle(t *testing.T) {
	// A single-point multi-eval must accept exactly the values the
	// single-point protocol produces.
	p := testParams(8)
	values := field.RandVector(1 << 8)
	st, _ := Commit(values, p)
	point := field.RandVector(8)
	_, v1, err := st.ProveEval(point, transcript.New("a"))
	if err != nil {
		t.Fatal(err)
	}
	_, vm, err := st.ProveEvalMulti([][]field.Element{point}, transcript.New("b"))
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Equal(&vm[0]) {
		t.Fatal("multi and single evaluation values differ")
	}
}
