package pcs

import (
	"fmt"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/par"
	"batchzk/internal/sha2"
	"batchzk/internal/transcript"
)

// Out-of-core commitment. Commit materializes the full encoded matrix —
// RateInv× the message — and retains it until the opening phase. The
// streaming path below is the host-side analogue of the paper's dynamic
// per-cycle loading (§4): message rows arrive in chunks, each chunk is
// encoded, absorbed into per-column incremental hashers, and discarded.
// Peak memory is one chunk of codewords plus one SHA-256 state per
// encoded column (plus the column tree in proving mode) instead of the
// whole rows×cwLen matrix; the opening phase re-encodes rows on demand,
// trading recompute for working set. Roots, openings, and the transcript
// evolution are bit-identical to the buffered path — the property tests
// enforce it.

// CommitMode selects what a StreamingCommitter retains.
type CommitMode int

const (
	// RetainTree keeps the Merkle column tree (2·cwLen digests), enabling
	// ProveEval on the resulting StreamState. The encoded matrix is still
	// never materialized.
	RetainTree CommitMode = iota
	// RootOnly folds the finalized leaves straight through a
	// merkle.FrontierBuilder: beyond the per-column hasher states, only
	// O(log cwLen) digests are ever live. The StreamState can answer
	// Commitment() but not ProveEval.
	RootOnly
)

// streamRowBlock is how many rows a streaming committer encodes per
// internal flush: enough to amortize parallel dispatch, small enough
// that the block's codewords stay a rounding error next to the matrix.
// Package var so tests can force block boundaries at odd offsets.
var streamRowBlock = 16

// StreamingCommitter absorbs a committed vector in row-major chunks of
// any size and produces the same commitment as Commit, without ever
// holding the encoded matrix. Not safe for concurrent use (it models one
// ordered ingest stream); the parallelism lives inside each flush.
type StreamingCommitter struct {
	params Params
	mode   CommitMode
	enc    *encoder.Encoder

	colHash []sha2.Hasher // one running state per encoded column
	rowsIn  int           // complete rows absorbed
	carry   []field.Element

	block [][]field.Element // reusable per-flush codeword buffer
}

// NewStreamingCommitter prepares a streaming commitment for the given
// layout. Feed it exactly NumRows·NumCols elements via AddChunk, then
// call Finish.
func NewStreamingCommitter(params Params, mode CommitMode) (*StreamingCommitter, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	enc, err := encoder.Cached(params.NumCols, params.Enc)
	if err != nil {
		return nil, err
	}
	sc := &StreamingCommitter{
		params:  params,
		mode:    mode,
		enc:     enc,
		colHash: make([]sha2.Hasher, enc.CodewordLen()),
	}
	for j := range sc.colHash {
		sc.colHash[j].Reset()
	}
	return sc, nil
}

// Rows returns how many complete rows have been absorbed.
func (sc *StreamingCommitter) Rows() int { return sc.rowsIn }

// AddChunk absorbs the next chunk of the committed vector, in index
// order. Chunks need not align to row boundaries; a partial row is
// carried until its remainder arrives.
func (sc *StreamingCommitter) AddChunk(values []field.Element) error {
	cols := sc.params.NumCols
	for len(values) > 0 {
		if len(sc.carry) == 0 && len(values) >= cols {
			// Fast path: whole rows straight from the caller's slice.
			nRows := len(values) / cols
			if err := sc.flushRows(values[:nRows*cols], nRows); err != nil {
				return err
			}
			values = values[nRows*cols:]
			continue
		}
		take := cols - len(sc.carry)
		if take > len(values) {
			take = len(values)
		}
		sc.carry = append(sc.carry, values[:take]...)
		values = values[take:]
		if len(sc.carry) == cols {
			if err := sc.flushRows(sc.carry, 1); err != nil {
				return err
			}
			sc.carry = sc.carry[:0]
		}
	}
	return nil
}

// flushRows encodes nRows rows held contiguously in vals and absorbs
// their codewords into the column hashers, block by block.
func (sc *StreamingCommitter) flushRows(vals []field.Element, nRows int) error {
	if sc.rowsIn+nRows > sc.params.NumRows {
		return fmt.Errorf("pcs: streamed %d rows into a %d-row layout",
			sc.rowsIn+nRows, sc.params.NumRows)
	}
	cols := sc.params.NumCols
	for off := 0; off < nRows; off += streamRowBlock {
		b := nRows - off
		if b > streamRowBlock {
			b = streamRowBlock
		}
		if cap(sc.block) < b {
			sc.block = make([][]field.Element, b)
		}
		block := sc.block[:b]
		// Row-parallel encoding, as in Commit.
		k := par.Chunks(0, b)
		encErrs := make([]error, k)
		par.ForChunks(k, b, func(c, lo, hi int) {
			for i := lo; i < hi; i++ {
				r := off + i
				cw, err := sc.enc.Encode(vals[r*cols : (r+1)*cols])
				if err != nil {
					encErrs[c] = err
					return
				}
				block[i] = cw
			}
		})
		for _, err := range encErrs {
			if err != nil {
				return err
			}
		}
		// Column-parallel absorption: each worker owns a disjoint column
		// range and feeds its hashers in row order, so every column sees
		// exactly the byte stream HashElementsWith would have.
		par.For(len(sc.colHash), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				h := &sc.colHash[j]
				for i := 0; i < b; i++ {
					eb := block[i][j].ToBytes()
					h.Write(eb[:])
				}
			}
		})
		for i := range block {
			block[i] = nil // release this flush's codewords
		}
	}
	sc.rowsIn += nRows
	return nil
}

// StreamState is the prover-side result of a streaming commitment: the
// public commitment plus (in RetainTree mode) the column tree needed to
// open it. The message and encoded matrices are not retained; the
// opening phase re-reads message rows through a RowAt callback.
type StreamState struct {
	params Params
	enc    *encoder.Encoder
	tree   *merkle.Tree
	comm   Commitment
}

// Commitment returns the public commitment.
func (s *StreamState) Commitment() Commitment { return s.comm }

// Finish finalizes the commitment. In RetainTree mode the column leaves
// are hashed in parallel and the tree above them is kept; in RootOnly
// mode leaves fold through a Merkle frontier and only the root survives.
func (sc *StreamingCommitter) Finish() (*StreamState, error) {
	if len(sc.carry) != 0 {
		return nil, fmt.Errorf("pcs: stream ended mid-row (%d of %d elements)",
			len(sc.carry), sc.params.NumCols)
	}
	if sc.rowsIn != sc.params.NumRows {
		return nil, fmt.Errorf("pcs: streamed %d rows, layout wants %d",
			sc.rowsIn, sc.params.NumRows)
	}
	st := &StreamState{params: sc.params, enc: sc.enc}
	switch sc.mode {
	case RootOnly:
		fb := merkle.NewFrontierBuilder()
		for j := range sc.colHash {
			fb.Add(sc.colHash[j].Sum())
		}
		root, err := fb.Root()
		if err != nil {
			return nil, err
		}
		st.comm = Commitment{Root: root, NumRows: sc.params.NumRows, NumCols: sc.params.NumCols}
	default:
		leaves := make([]sha2.Digest, len(sc.colHash))
		par.For(len(leaves), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				leaves[j] = sc.colHash[j].Sum()
			}
		})
		tree, err := merkle.BuildFromDigests(leaves)
		if err != nil {
			return nil, err
		}
		st.tree = tree
		st.comm = Commitment{Root: tree.Root(), NumRows: sc.params.NumRows, NumCols: sc.params.NumCols}
	}
	sc.colHash = nil // hasher states are dead weight from here on
	return st, nil
}

// RowAt returns message-matrix row r (length NumCols). The opening phase
// calls it from multiple goroutines and may fetch the same row twice, so
// it must be safe for concurrent use and pure — typically a re-slice of
// the witness vector, or a re-read from wherever the row was spilled.
type RowAt func(r int) []field.Element

// ProveEval is ProverState.ProveEval for a streamed commitment: the same
// transcript choreography and a bit-identical proof, with the message
// matrix re-read through rows and the opened columns re-encoded on
// demand instead of served from a retained encoded matrix.
func (s *StreamState) ProveEval(rows RowAt, point []field.Element, tr *transcript.Transcript) (*EvalProof, field.Element, error) {
	if s.tree == nil {
		return nil, field.Element{}, fmt.Errorf("pcs: commitment was streamed RootOnly; openings unavailable")
	}
	n := s.comm.NumVars()
	if len(point) != n {
		return nil, field.Element{}, fmt.Errorf("pcs: point arity %d, want %d", len(point), n)
	}
	numRows, numCols := s.params.NumRows, s.params.NumCols
	tr.AppendDigest("pcs/root", s.comm.Root)
	tr.AppendElements("pcs/point", point)

	gamma := tr.ChallengeElements("pcs/gamma", numRows)
	lo, hi := splitPoint(point, numCols)
	eqHi := eqTableOf(hi)

	// One pass over the message rows computes both combined rows. Each
	// output column accumulates row terms top-to-bottom in exactly
	// combineRows' order, so the results are bit-identical; chunking by
	// column keeps the accumulator writes disjoint.
	testRow := make([]field.Element, numCols)
	combined := make([]field.Element, numCols)
	pw := 0
	if numCols*numRows < parallelCombine {
		pw = 1
	}
	par.ForWidth(pw, numCols, func(cLo, cHi int) {
		var t field.Element
		for r := 0; r < numRows; r++ {
			row := rows(r)
			if !gamma[r].IsZero() {
				for c := cLo; c < cHi; c++ {
					t.Mul(&gamma[r], &row[c])
					testRow[c].Add(&testRow[c], &t)
				}
			}
			if !eqHi[r].IsZero() {
				for c := cLo; c < cHi; c++ {
					t.Mul(&eqHi[r], &row[c])
					combined[c].Add(&combined[c], &t)
				}
			}
		}
	})
	tr.AppendElements("pcs/testrow", testRow)
	tr.AppendElements("pcs/evalrow", combined)

	idx := tr.ChallengeIndices("pcs/cols", s.params.NumOpenings, s.enc.CodewordLen())
	proof := &EvalProof{TestRow: testRow, CombinedRow: combined}
	proof.Columns = make([]OpenedColumn, len(idx))
	for k, j := range idx {
		proof.Columns[k] = OpenedColumn{
			Index:  j,
			Values: make([]field.Element, numRows),
		}
	}
	// Re-encode each message row once and scatter the challenged codeword
	// positions into the open columns: O(openings·rows) proof data live,
	// one row's codeword per worker in flight.
	k := par.Chunks(0, numRows)
	openErrs := make([]error, k)
	par.ForChunks(k, numRows, func(c, rLo, rHi int) {
		for r := rLo; r < rHi; r++ {
			cw, err := s.enc.Encode(rows(r))
			if err != nil {
				openErrs[c] = err
				return
			}
			for ki := range idx {
				proof.Columns[ki].Values[r] = cw[idx[ki]]
			}
		}
	})
	for _, err := range openErrs {
		if err != nil {
			return nil, field.Element{}, err
		}
	}
	for ki, j := range idx {
		mp, err := s.tree.Prove(j)
		if err != nil {
			return nil, field.Element{}, err
		}
		proof.Columns[ki].Proof = mp
	}

	eqLo := eqTableOf(lo)
	value := field.InnerProduct(combined, eqLo)
	return proof, value, nil
}
