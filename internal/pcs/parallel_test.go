package pcs

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/transcript"
)

// Parallel-vs-serial bit-identity for the commitment pipeline end to end:
// row encoding, column hashing, row combination, and column openings must
// all reproduce the serial bytes at any width — the commitment root and
// the entire evaluation proof are compared structurally.

func lowerGrains(t *testing.T) {
	t.Helper()
	oldR, oldC := parallelCommitRows, parallelCombine
	parallelCommitRows, parallelCombine = 1, 1
	t.Cleanup(func() {
		parallelCommitRows, parallelCombine = oldR, oldC
		par.SetWidth(0)
	})
}

func TestCommitProveBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrains(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logN := 6 + rng.Intn(3) // 64..256 values
		p := testParams(logN)
		values := make([]field.Element, 1<<logN)
		for i := range values {
			var b [64]byte
			rng.Read(b[:])
			values[i].SetBytesWide(b[:])
		}
		point := make([]field.Element, logN)
		for i := range point {
			var b [64]byte
			rng.Read(b[:])
			point[i].SetBytesWide(b[:])
		}
		var wantComm Commitment
		var wantProof *EvalProof
		var wantValue field.Element
		for wi, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			par.SetWidth(w)
			s, err := Commit(values, p)
			if err != nil {
				return false
			}
			proof, value, err := s.ProveEval(point, transcript.New("pcs"))
			if err != nil {
				return false
			}
			if wi == 0 {
				wantComm, wantProof, wantValue = s.Commitment(), proof, value
				continue
			}
			if s.Commitment() != wantComm || !value.Equal(&wantValue) {
				return false
			}
			if !reflect.DeepEqual(proof, wantProof) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCommitSerial65536 / BenchmarkCommitParallel65536 measure the
// ISSUE's headline kernel — a 2^16-value commitment — with the runtime
// forced serial vs. at full width. The parallel run first asserts the
// commitment root is bit-identical to the serial one.
func BenchmarkCommitSerial65536(b *testing.B) {
	benchCommit65536(b, 1)
}

func BenchmarkCommitParallel65536(b *testing.B) {
	benchCommit65536(b, 0)
}

func benchCommit65536(b *testing.B, width int) {
	p := testParams(16)
	values := field.RandVector(1 << 16)
	par.SetWidth(1)
	ref, err := Commit(values, p)
	if err != nil {
		b.Fatal(err)
	}
	par.SetWidth(width)
	defer par.SetWidth(0)
	s, err := Commit(values, p)
	if err != nil {
		b.Fatal(err)
	}
	if s.Commitment() != ref.Commitment() {
		b.Fatal("parallel commitment differs from serial")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Commit(values, p); err != nil {
			b.Fatal(err)
		}
	}
}
