package pcs

import (
	"errors"
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

func testParams(logN int) Params {
	p := NewParams(logN)
	p.NumOpenings = 16 // keep unit tests fast; soundness knobs tested separately
	return p
}

func TestNewParamsLayout(t *testing.T) {
	for logN := 8; logN <= 14; logN++ {
		p := NewParams(logN)
		if err := p.Validate(); err != nil {
			t.Fatalf("logN=%d: %v", logN, err)
		}
		if p.NumRows*p.NumCols != 1<<logN {
			t.Fatalf("logN=%d: layout %dx%d", logN, p.NumRows, p.NumCols)
		}
		if p.NumCols < p.Enc.BaseSize {
			t.Fatalf("logN=%d: cols below encoder base", logN)
		}
	}
}

func TestValidate(t *testing.T) {
	p := testParams(8)
	bad := p
	bad.NumRows = 3
	if bad.Validate() == nil {
		t.Fatal("accepted non-power-of-two rows")
	}
	bad = p
	bad.NumCols = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero cols")
	}
	bad = p
	bad.NumOpenings = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero openings")
	}
}

func TestCommitValidation(t *testing.T) {
	p := testParams(8)
	if _, err := Commit(field.RandVector(100), p); err == nil {
		t.Fatal("accepted wrong vector length")
	}
}

func TestEvalRoundTrip(t *testing.T) {
	for _, logN := range []int{8, 10, 12} {
		p := testParams(logN)
		values := field.RandVector(1 << logN)
		st, err := Commit(values, p)
		if err != nil {
			t.Fatal(err)
		}
		comm := st.Commitment()
		if comm.NumVars() != logN {
			t.Fatalf("NumVars = %d", comm.NumVars())
		}
		point := field.RandVector(logN)
		proof, value, err := st.ProveEval(point, transcript.New("pcs"))
		if err != nil {
			t.Fatal(err)
		}
		// The claimed value must match direct multilinear evaluation.
		m, _ := poly.NewMultilinear(values)
		want, _ := m.Evaluate(point)
		if !want.Equal(&value) {
			t.Fatalf("logN=%d: PCS value != MLE evaluation", logN)
		}
		if err := VerifyEval(comm, point, value, proof, p, transcript.New("pcs")); err != nil {
			t.Fatalf("logN=%d: verify: %v", logN, err)
		}
	}
}

func TestVerifyRejectsWrongValue(t *testing.T) {
	p := testParams(10)
	values := field.RandVector(1 << 10)
	st, _ := Commit(values, p)
	point := field.RandVector(10)
	proof, value, _ := st.ProveEval(point, transcript.New("pcs"))
	var bad field.Element
	bad.Add(&value, &[]field.Element{field.One()}[0])
	err := VerifyEval(st.Commitment(), point, bad, proof, p, transcript.New("pcs"))
	if !errors.Is(err, ErrReject) {
		t.Fatalf("wrong value accepted: %v", err)
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	p := testParams(10)
	values := field.RandVector(1 << 10)
	st, _ := Commit(values, p)
	point := field.RandVector(10)
	proof, value, _ := st.ProveEval(point, transcript.New("pcs"))
	comm := st.Commitment()

	// Tampered evaluation row.
	bad := *proof
	bad.CombinedRow = append([]field.Element{}, proof.CombinedRow...)
	bad.CombinedRow[3] = field.NewElement(123)
	if err := VerifyEval(comm, point, value, &bad, p, transcript.New("pcs")); err == nil {
		t.Fatal("tampered CombinedRow accepted")
	}

	// Tampered test row.
	bad = *proof
	bad.TestRow = append([]field.Element{}, proof.TestRow...)
	bad.TestRow[0] = field.NewElement(5)
	if err := VerifyEval(comm, point, value, &bad, p, transcript.New("pcs")); err == nil {
		t.Fatal("tampered TestRow accepted")
	}

	// Tampered opened column value.
	bad = *proof
	bad.Columns = append([]OpenedColumn{}, proof.Columns...)
	col := bad.Columns[2]
	col.Values = append([]field.Element{}, col.Values...)
	col.Values[0] = field.NewElement(77)
	bad.Columns[2] = col
	if err := VerifyEval(comm, point, value, &bad, p, transcript.New("pcs")); err == nil {
		t.Fatal("tampered column accepted")
	}

	// Dropped column.
	bad = *proof
	bad.Columns = proof.Columns[:len(proof.Columns)-1]
	if err := VerifyEval(comm, point, value, &bad, p, transcript.New("pcs")); err == nil {
		t.Fatal("dropped column accepted")
	}

	// Wrong root.
	badComm := comm
	badComm.Root[0] ^= 1
	if err := VerifyEval(badComm, point, value, proof, p, transcript.New("pcs")); err == nil {
		t.Fatal("wrong root accepted")
	}

	// Nil proof and arity errors.
	if err := VerifyEval(comm, point, value, nil, p, transcript.New("pcs")); err == nil {
		t.Fatal("nil proof accepted")
	}
	if err := VerifyEval(comm, point[:4], value, proof, p, transcript.New("pcs")); err == nil {
		t.Fatal("short point accepted")
	}
	wrongLayout := p
	wrongLayout.NumRows *= 2
	if err := VerifyEval(comm, point, value, proof, wrongLayout, transcript.New("pcs")); err == nil {
		t.Fatal("mismatched layout accepted")
	}
}

func TestSoundnessWrongMatrix(t *testing.T) {
	// Commit to v1, then try to convince the verifier of v2's evaluation
	// by substituting v2's rows in the proof: the Merkle/column checks
	// must catch it.
	p := testParams(10)
	v1 := field.RandVector(1 << 10)
	v2 := field.RandVector(1 << 10)
	st1, _ := Commit(v1, p)
	st2, _ := Commit(v2, p)
	point := field.RandVector(10)
	proof2, value2, _ := st2.ProveEval(point, transcript.New("pcs"))
	err := VerifyEval(st1.Commitment(), point, value2, proof2, p, transcript.New("pcs"))
	if err == nil {
		t.Fatal("proof for a different committed matrix accepted")
	}
}

func TestProveEvalArity(t *testing.T) {
	p := testParams(8)
	st, _ := Commit(field.RandVector(1<<8), p)
	if _, _, err := st.ProveEval(field.RandVector(3), transcript.New("pcs")); err == nil {
		t.Fatal("short point accepted by prover")
	}
}

func TestDeterministicCommitment(t *testing.T) {
	p := testParams(8)
	values := field.RandVector(1 << 8)
	s1, _ := Commit(values, p)
	s2, _ := Commit(values, p)
	if s1.Commitment().Root != s2.Commitment().Root {
		t.Fatal("commitment not deterministic")
	}
}

func TestSingleRowLayout(t *testing.T) {
	// Degenerate layout: one row (no row variables).
	p := Params{NumRows: 1, NumCols: 64, NumOpenings: 8, Enc: testParams(8).Enc}
	values := field.RandVector(64)
	st, err := Commit(values, p)
	if err != nil {
		t.Fatal(err)
	}
	point := field.RandVector(6)
	proof, value, err := st.ProveEval(point, transcript.New("pcs"))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := poly.NewMultilinear(values)
	want, _ := m.Evaluate(point)
	if !want.Equal(&value) {
		t.Fatal("single-row value mismatch")
	}
	if err := VerifyEval(st.Commitment(), point, value, proof, p, transcript.New("pcs")); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCommit4096(b *testing.B) {
	p := testParams(12)
	values := field.RandVector(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Commit(values, p); err != nil {
			b.Fatal(err)
		}
	}
}
