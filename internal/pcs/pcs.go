// Package pcs implements the Brakedown/Orion-style polynomial commitment
// scheme that BatchZK's proof generation pipeline computes (Figure 7 of
// the paper): the committed vector is arranged as a matrix, every row is
// encoded with the linear-time encoder, the columns of the encoded matrix
// are hashed into a Merkle tree, and evaluation/proximity claims are
// settled by random row combinations plus spot-checked column openings.
//
// The commitment is binding under the collision resistance of SHA-256 and
// the minimum distance of the code; it is not hiding (the paper's
// protocols share this property in their unmasked form — see DESIGN.md).
//
// Index convention: for a committed vector of length rows·cols, entry
// index b = r·cols + c, so the low log₂(cols) variables of the multilinear
// extension select the column and the high variables select the row. The
// eq table then factors as eqLo ⊗ eqHi, which is what makes the
// matrix-shaped evaluation protocol work.
package pcs

import (
	"errors"
	"fmt"
	"math/bits"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/par"
	"batchzk/internal/poly"
	"batchzk/internal/sha2"
	"batchzk/internal/transcript"
)

// Parallel grain thresholds (package vars so the bit-identity tests can
// force the parallel paths at small sizes).
var (
	parallelCommitRows = 2    // rows encoded in parallel in Commit
	parallelCombine    = 1024 // matrix cells below which combineRows is serial
)

// Params configures the matrix layout and security of the scheme.
type Params struct {
	NumRows     int // power of two
	NumCols     int // power of two, ≥ encoder base size
	NumOpenings int // spot-checked columns (t)
	Enc         encoder.Params
}

// DefaultNumOpenings is the default column-opening count.
const DefaultNumOpenings = 64

// NewParams picks a near-square matrix layout for a vector of length
// 2^logN and the default encoder/security parameters.
func NewParams(logN int) Params {
	logCols := (logN + 1) / 2
	enc := encoder.DefaultParams()
	// Columns must be at least the encoder's base size.
	for 1<<logCols < enc.BaseSize {
		logCols++
	}
	if logCols > logN {
		logCols = logN
	}
	return Params{
		NumRows:     1 << (logN - logCols),
		NumCols:     1 << logCols,
		NumOpenings: DefaultNumOpenings,
		Enc:         enc,
	}
}

// Validate checks structural parameter constraints.
func (p Params) Validate() error {
	if p.NumRows <= 0 || p.NumRows&(p.NumRows-1) != 0 {
		return fmt.Errorf("pcs: rows %d not a positive power of two", p.NumRows)
	}
	if p.NumCols <= 0 || p.NumCols&(p.NumCols-1) != 0 {
		return fmt.Errorf("pcs: cols %d not a positive power of two", p.NumCols)
	}
	if p.NumOpenings <= 0 {
		return fmt.Errorf("pcs: need at least one column opening")
	}
	return nil
}

// Commitment is the verifier-side commitment: a Merkle root over the
// encoded matrix's columns plus the public layout.
type Commitment struct {
	Root    sha2.Digest
	NumRows int
	NumCols int
}

// NumVars returns the arity of the committed multilinear polynomial.
func (c *Commitment) NumVars() int {
	return bits.TrailingZeros(uint(c.NumRows)) + bits.TrailingZeros(uint(c.NumCols))
}

// ProverState holds everything the prover needs to answer evaluation
// queries: the message matrix, the encoded matrix, and the column tree.
type ProverState struct {
	params  Params
	enc     *encoder.Encoder
	rows    [][]field.Element // message matrix M: NumRows × NumCols
	encoded [][]field.Element // U: NumRows × (RateInv·NumCols)
	tree    *merkle.Tree
	comm    Commitment
}

// Commitment returns the public commitment.
func (s *ProverState) Commitment() Commitment { return s.comm }

// Commit arranges values (length NumRows·NumCols) into a matrix, encodes
// every row, and Merkle-commits the encoded columns.
func Commit(values []field.Element, params Params) (*ProverState, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	want := params.NumRows * params.NumCols
	if len(values) != want {
		return nil, fmt.Errorf("pcs: %d values, layout wants %d", len(values), want)
	}
	enc, err := encoder.Cached(params.NumCols, params.Enc)
	if err != nil {
		return nil, err
	}
	s := &ProverState{params: params, enc: enc}
	s.rows = make([][]field.Element, params.NumRows)
	s.encoded = make([][]field.Element, params.NumRows)
	// Row-parallel Spielman encoding: every row encodes independently
	// (the Encoder is safe for concurrent use once constructed).
	w := 0
	if params.NumRows < parallelCommitRows {
		w = 1
	}
	k := par.Chunks(w, params.NumRows)
	encErrs := make([]error, k)
	par.ForChunks(k, params.NumRows, func(c, lo, hi int) {
		for r := lo; r < hi; r++ {
			s.rows[r] = values[r*params.NumCols : (r+1)*params.NumCols]
			cw, err := enc.Encode(s.rows[r])
			if err != nil {
				encErrs[c] = err
				return
			}
			s.encoded[r] = cw
		}
	})
	for _, err := range encErrs {
		if err != nil {
			return nil, err
		}
	}
	// Columns of U become Merkle leaves: gather each column into a
	// per-worker scratch buffer and hash it with a reused hasher, without
	// materializing the transposed matrix.
	cwLen := enc.CodewordLen()
	leaves := make([]sha2.Digest, cwLen)
	hw := 0
	if cwLen*params.NumRows < parallelCombine {
		hw = 1
	}
	par.ForScratch(hw, cwLen, func(sc *par.Scratch, lo, hi int) {
		col := sc.Elements(0, params.NumRows)
		for j := lo; j < hi; j++ {
			for r := 0; r < params.NumRows; r++ {
				col[r] = s.encoded[r][j]
			}
			leaves[j] = merkle.HashElementsWith(sc.Hasher(), col)
		}
	})
	tree, err := merkle.BuildFromDigests(leaves)
	if err != nil {
		return nil, err
	}
	s.tree = tree
	s.comm = Commitment{Root: tree.Root(), NumRows: params.NumRows, NumCols: params.NumCols}
	return s, nil
}

// OpenedColumn is one spot-checked column of the encoded matrix.
type OpenedColumn struct {
	Index  int
	Values []field.Element
	Proof  *merkle.Proof
}

// EvalProof proves that the committed polynomial evaluates to a claimed
// value at a point: a proximity-test row, the evaluation row, and the
// opened columns supporting both.
type EvalProof struct {
	TestRow     []field.Element // γᵀ·M for the transcript-derived γ
	CombinedRow []field.Element // eqHiᵀ·M for the query point
	Columns     []OpenedColumn
}

// splitPoint separates an evaluation point into (column vars, row vars).
func splitPoint(point []field.Element, numCols int) (lo, hi []field.Element) {
	logCols := bits.TrailingZeros(uint(numCols))
	return point[:logCols], point[logCols:]
}

// combineRows computes wᵀ·M over the message matrix. Chunking is by
// column: each chunk owns a disjoint out[lo:hi] window and accumulates
// rows in the same top-to-bottom order as the serial loop, so the result
// is bit-identical for any chunk count.
func combineRows(w []field.Element, rows [][]field.Element, width int) []field.Element {
	out := make([]field.Element, width)
	pw := 0
	if width*len(rows) < parallelCombine {
		pw = 1
	}
	par.ForWidth(pw, width, func(lo, hi int) {
		var t field.Element
		for r := range rows {
			if w[r].IsZero() {
				continue
			}
			row := rows[r]
			for c := lo; c < hi; c++ {
				t.Mul(&w[r], &row[c])
				out[c].Add(&out[c], &t)
			}
		}
	})
	return out
}

// ProveEval produces an evaluation proof for the committed polynomial at
// point (length NumVars, x_1..x_n order) and returns the evaluation value.
// The transcript binds the commitment, the point, and both combined rows
// before the column challenge, making the openings non-adaptive.
func (s *ProverState) ProveEval(point []field.Element, tr *transcript.Transcript) (*EvalProof, field.Element, error) {
	n := s.comm.NumVars()
	if len(point) != n {
		return nil, field.Element{}, fmt.Errorf("pcs: point arity %d, want %d", len(point), n)
	}
	tr.AppendDigest("pcs/root", s.comm.Root)
	tr.AppendElements("pcs/point", point)

	gamma := tr.ChallengeElements("pcs/gamma", s.params.NumRows)
	testRow := combineRows(gamma, s.rows, s.params.NumCols)
	tr.AppendElements("pcs/testrow", testRow)

	lo, hi := splitPoint(point, s.params.NumCols)
	eqHi := eqTableOf(hi)
	combined := combineRows(eqHi, s.rows, s.params.NumCols)
	tr.AppendElements("pcs/evalrow", combined)

	idx := tr.ChallengeIndices("pcs/cols", s.params.NumOpenings, s.enc.CodewordLen())
	proof := &EvalProof{TestRow: testRow, CombinedRow: combined}
	// Column openings are independent (tree reads + disjoint writes into
	// the preallocated slice keep the idx order of the serial loop).
	proof.Columns = make([]OpenedColumn, len(idx))
	ow := 0
	if len(idx)*s.params.NumRows < parallelCombine {
		ow = 1
	}
	ck := par.Chunks(ow, len(idx))
	openErrs := make([]error, ck)
	par.ForChunks(ck, len(idx), func(c, lo, hi int) {
		for k := lo; k < hi; k++ {
			j := idx[k]
			col := make([]field.Element, s.params.NumRows)
			for r := 0; r < s.params.NumRows; r++ {
				col[r] = s.encoded[r][j]
			}
			mp, err := s.tree.Prove(j)
			if err != nil {
				openErrs[c] = err
				return
			}
			proof.Columns[k] = OpenedColumn{Index: j, Values: col, Proof: mp}
		}
	})
	for _, err := range openErrs {
		if err != nil {
			return nil, field.Element{}, err
		}
	}

	eqLo := eqTableOf(lo)
	value := field.InnerProduct(combined, eqLo)
	return proof, value, nil
}

// ErrReject is returned when an evaluation proof fails.
var ErrReject = errors.New("pcs: proof rejected")

// VerifyEval checks an evaluation proof against a commitment, point, and
// claimed value. The verifier re-encodes the two combined rows (O(cols)
// work) and checks them against the opened columns.
func VerifyEval(comm Commitment, point []field.Element, value field.Element, proof *EvalProof, params Params, tr *transcript.Transcript) error {
	if err := params.Validate(); err != nil {
		return err
	}
	if comm.NumRows != params.NumRows || comm.NumCols != params.NumCols {
		return fmt.Errorf("pcs: commitment layout %dx%d does not match params %dx%d",
			comm.NumRows, comm.NumCols, params.NumRows, params.NumCols)
	}
	if len(point) != comm.NumVars() {
		return fmt.Errorf("pcs: point arity %d, want %d", len(point), comm.NumVars())
	}
	if proof == nil || len(proof.TestRow) != params.NumCols || len(proof.CombinedRow) != params.NumCols {
		return fmt.Errorf("%w: malformed proof rows", ErrReject)
	}
	enc, err := encoder.Cached(params.NumCols, params.Enc)
	if err != nil {
		return err
	}

	tr.AppendDigest("pcs/root", comm.Root)
	tr.AppendElements("pcs/point", point)
	gamma := tr.ChallengeElements("pcs/gamma", params.NumRows)
	tr.AppendElements("pcs/testrow", proof.TestRow)
	tr.AppendElements("pcs/evalrow", proof.CombinedRow)
	idx := tr.ChallengeIndices("pcs/cols", params.NumOpenings, enc.CodewordLen())

	if len(proof.Columns) != len(idx) {
		return fmt.Errorf("%w: %d opened columns, want %d", ErrReject, len(proof.Columns), len(idx))
	}

	encTest, err := enc.Encode(proof.TestRow)
	if err != nil {
		return err
	}
	encEval, err := enc.Encode(proof.CombinedRow)
	if err != nil {
		return err
	}

	lo, hi := splitPoint(point, params.NumCols)
	eqHi := eqTableOf(hi)

	for k, col := range proof.Columns {
		if col.Index != idx[k] {
			return fmt.Errorf("%w: column %d opened at index %d, challenged %d", ErrReject, k, col.Index, idx[k])
		}
		if len(col.Values) != params.NumRows {
			return fmt.Errorf("%w: column %d has %d values", ErrReject, k, len(col.Values))
		}
		if col.Proof == nil || col.Proof.Index != col.Index {
			return fmt.Errorf("%w: column %d proof index mismatch", ErrReject, k)
		}
		if !merkle.VerifyElements(comm.Root, col.Proof, col.Values) {
			return fmt.Errorf("%w: column %d Merkle path invalid", ErrReject, k)
		}
		// γᵀ·col must equal encode(testRow)[j]; eqHiᵀ·col must equal
		// encode(evalRow)[j] — linearity of the code makes both hold for
		// an honest matrix.
		got := field.InnerProduct(gamma, col.Values)
		if !got.Equal(&encTest[col.Index]) {
			return fmt.Errorf("%w: column %d fails proximity check", ErrReject, k)
		}
		got = field.InnerProduct(eqHi, col.Values)
		if !got.Equal(&encEval[col.Index]) {
			return fmt.Errorf("%w: column %d fails evaluation check", ErrReject, k)
		}
	}

	eqLo := eqTableOf(lo)
	want := field.InnerProduct(proof.CombinedRow, eqLo)
	if !want.Equal(&value) {
		return fmt.Errorf("%w: combined row does not yield the claimed value", ErrReject)
	}
	return nil
}

// eqTableOf is poly.EqTable (which returns [1] for an empty point).
func eqTableOf(point []field.Element) []field.Element {
	return poly.EqTable(point)
}
